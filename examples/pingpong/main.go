// MPI messaging probe: the Fig. 8 comparison as a runnable example.
//
// Two ranks exchange messages of increasing size over both transports the
// library provides — the in-process channel fabric (standing in for the
// vendor-native Blue Gene messaging) and TCP sockets bootstrapped through
// PMI (the MPICH2-over-ZeptoOS path JETS launches). The output shows the
// paper's shape: sockets pay a large fixed per-message cost that amortizes
// as messages grow.
//
// Run with: go run ./examples/pingpong
package main

import (
	"fmt"
	"log"
	"time"

	"jets/internal/mpi"
)

func main() {
	fmt.Printf("%10s %14s %14s %14s %14s\n",
		"bytes", "native lat", "sockets lat", "native MB/s", "sockets MB/s")
	for _, size := range []int{1, 16, 256, 4 << 10, 64 << 10, 1 << 20, 4 << 20} {
		nat, err := measure(size, false)
		if err != nil {
			log.Fatal(err)
		}
		soc, err := measure(size, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %14s %14s %14.1f %14.1f\n",
			size, nat, soc, bandwidth(size, nat), bandwidth(size, soc))
	}
}

func bandwidth(size int, perMsg time.Duration) float64 {
	if perMsg <= 0 {
		return 0
	}
	return float64(size) / perMsg.Seconds() / 1e6
}

func measure(size int, tcp bool) (time.Duration, error) {
	rounds := 1000
	if size >= 1<<20 {
		rounds = 50
	}
	payload := make([]byte, size)
	var perMsg time.Duration
	body := func(c *mpi.Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if c.Rank() == 0 {
				if err := c.Send(1, 1, payload); err != nil {
					return err
				}
				if _, err := c.Recv(1, 2); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(0, 1); err != nil {
					return err
				}
				if err := c.Send(0, 2, payload); err != nil {
					return err
				}
			}
		}
		if c.Rank() == 0 {
			perMsg = time.Since(start) / time.Duration(2*rounds)
		}
		return nil
	}
	var err error
	if tcp {
		err = mpi.RunTCP(2, body)
	} else {
		err = mpi.RunLocal(2, body)
	}
	return perMsg, err
}

// Collective I/O from an MPTC workload — the paper's §1.2 argument made
// concrete: "given N MTC processes, the filesystem would be accessed by N
// clients; however, for 16-process MPTC tasks using MPI-IO, the number of
// clients would be N/16."
//
// A 16-rank MPI job is launched through JETS; every rank produces one block
// of a shared output file. First the ranks write directly (16 filesystem
// clients), then through the two-phase collective layer with one aggregator
// (1 client, adjacent extents coalesced into a single write).
//
// Run with: go run ./examples/collectiveio
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"sync/atomic"

	"jets/internal/core"
	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/mpi"
)

const (
	ranks = 16
	block = 4096
)

// countingFile wraps an os.File and counts the accesses that reach it — the
// "filesystem clients" of the paper's argument.
type countingFile struct {
	f        *os.File
	accesses *atomic.Int64
}

func (c *countingFile) WriteAt(p []byte, off int64) (int, error) {
	c.accesses.Add(1)
	return c.f.WriteAt(p, off)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	out, err := os.CreateTemp("", "jets-collective-*.dat")
	if err != nil {
		return err
	}
	defer os.Remove(out.Name())
	defer out.Close()

	var accesses atomic.Int64
	shared := &countingFile{f: out, accesses: &accesses}

	runner := hydra.NewFuncRunner()
	runner.Register("writer", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		comm, err := mpi.InitEnvFrom(env)
		if err != nil {
			return 1
		}
		defer comm.Close()
		data := bytes.Repeat([]byte{byte(comm.Rank() + 1)}, block)
		off := int64(comm.Rank() * block)
		switch args[0] {
		case "direct":
			// Uncoordinated MTC-style output: every rank is a client.
			if _, err := shared.WriteAt(data, off); err != nil {
				return 1
			}
			if err := comm.Barrier(); err != nil {
				return 1
			}
		case "collective":
			st, err := comm.WriteAtAll(shared, off, data, 1)
			if err != nil {
				return 1
			}
			if st.Aggregator && comm.Rank() == 0 {
				fmt.Fprintf(stdout, "aggregator issued %d write(s), %d bytes\n", st.Accesses, st.Bytes)
			}
		}
		return 0
	})

	eng, err := core.NewEngine(core.Options{
		LocalWorkers: ranks,
		Runner:       runner,
		OnOutput: func(taskID, stream string, data []byte) {
			fmt.Printf("  [%s] %s", taskID, data)
		},
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	for _, mode := range []string{"direct", "collective"} {
		accesses.Store(0)
		h, err := eng.Submit(dispatch.Job{
			Spec: hydra.JobSpec{
				JobID: "io-" + mode, NProcs: ranks,
				Cmd: "writer", Args: []string{mode},
			},
			Type: dispatch.MPI,
		})
		if err != nil {
			return err
		}
		if res := h.Wait(); res.Failed {
			return fmt.Errorf("%s job failed: %s", mode, res.Err)
		}
		fmt.Printf("%-11s %2d ranks -> %d filesystem client accesses\n", mode, ranks, accesses.Load())
	}

	// Verify the collective pass left the file correct.
	buf := make([]byte, ranks*block)
	if _, err := out.ReadAt(buf, 0); err != nil {
		return err
	}
	for r := 0; r < ranks; r++ {
		for i := 0; i < block; i++ {
			if buf[r*block+i] != byte(r+1) {
				return fmt.Errorf("corruption at rank %d byte %d", r, i)
			}
		}
	}
	fmt.Println("file contents verified: every rank's block intact")
	return nil
}

// Quickstart: the smallest complete JETS program.
//
// It starts an engine with eight in-process pilot workers, registers one
// MPI application (a barrier-synchronized "hello" that wires up through the
// real PMI/socket path), and runs a batch written in the stand-alone input
// format of the paper:
//
//	MPI: 4 hello alpha
//	MPI: 2 hello beta
//	SEQ: hello gamma
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"strings"

	"jets/internal/core"
	"jets/internal/hydra"
	"jets/internal/mpi"
)

func main() {
	// 1. Register applications. In production these are real executables
	// (hydra.ExecRunner); in-process functions keep the example
	// self-contained.
	runner := hydra.NewFuncRunner()
	runner.Register("hello", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		if _, isMPI := env["PMI_PORT"]; !isMPI {
			fmt.Fprintf(stdout, "sequential hello %s\n", args[0])
			return 0
		}
		comm, err := mpi.InitEnvFrom(env) // PMI wire-up, socket connect
		if err != nil {
			return 1
		}
		defer comm.Close()
		if err := comm.Barrier(); err != nil {
			return 1
		}
		sum, err := comm.AllreduceInt64(mpi.OpSum, []int64{int64(comm.Rank())})
		if err != nil {
			return 1
		}
		if comm.Rank() == 0 {
			fmt.Fprintf(stdout, "hello %s from %d ranks (ranksum=%d)\n", args[0], comm.Size(), sum[0])
		}
		return 0
	})

	// 2. Start the engine: dispatcher plus local pilot-job workers.
	eng, err := core.NewEngine(core.Options{
		LocalWorkers: 8,
		Runner:       runner,
		OnOutput: func(taskID, stream string, data []byte) {
			fmt.Printf("[%s] %s", taskID, data)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// 3. Run a batch from the paper's input format.
	input := `
MPI: 4 hello alpha
MPI: 2 hello beta
SEQ: hello gamma
`
	rep, err := eng.RunFile(context.Background(), strings.NewReader(input))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(core.FormatReport(rep))
}

// Parameter sweep with fault injection: the stand-alone JETS usage pattern
// the paper cites (§6.1, parameter sweeps as in Nimrod/APST) combined with
// the §6.1.5 fault scenario.
//
// A batch of MPI jobs sweeps a simulated parameter (temperature); halfway
// through, pilot workers start dying one at a time. JETS disregards the dead
// workers, retries the jobs they were running, and finishes the sweep on the
// survivors.
//
// Run with: go run ./examples/paramsweep
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math"
	"sort"
	"sync"
	"time"

	"jets/internal/core"
	"jets/internal/dispatch"
	"jets/internal/faults"
	"jets/internal/hydra"
	"jets/internal/mpi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The swept application: each MPI job integrates a toy observable at
	// one temperature and allreduces the result.
	var mu sync.Mutex
	results := map[string]float64{}

	runner := hydra.NewFuncRunner()
	runner.Register("measure", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		temp := args[0]
		comm, err := mpi.InitEnvFrom(env)
		if err != nil {
			return 1
		}
		defer comm.Close()
		var t float64
		fmt.Sscanf(temp, "%f", &t)
		// Per-rank partial observable.
		local := math.Exp(-1.0/t) * float64(comm.Rank()+1)
		select {
		case <-time.After(30 * time.Millisecond): // simulated work
		case <-ctx.Done():
			return 1
		}
		sum, err := comm.AllreduceFloat64(mpi.OpSum, []float64{local})
		if err != nil {
			return 1
		}
		if comm.Rank() == 0 {
			mu.Lock()
			results[temp] = sum[0]
			mu.Unlock()
		}
		return 0
	})

	eng, err := core.NewEngine(core.Options{
		LocalWorkers:  12,
		Runner:        runner,
		MaxJobRetries: 3, // survive worker loss
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	// Sweep: 24 temperatures, 3-process jobs.
	var handles []*dispatch.Handle
	var temps []string
	for i := 0; i < 24; i++ {
		temp := fmt.Sprintf("%.1f", 0.5+0.25*float64(i))
		temps = append(temps, temp)
		h, err := eng.Submit(dispatch.Job{
			Spec: hydra.JobSpec{
				JobID:  fmt.Sprintf("sweep-T%s", temp),
				NProcs: 3,
				Cmd:    "measure",
				Args:   []string{temp},
			},
			Type: dispatch.MPI,
		})
		if err != nil {
			return err
		}
		handles = append(handles, h)
	}

	// Fault injection: kill 4 of the 12 workers while the sweep runs.
	inj := faults.NewInjector(eng.Workers()[:4], 40*time.Millisecond, 7)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	go inj.Run(ctx)

	completed, failed := 0, 0
	for _, h := range handles {
		res := h.Wait()
		if res.Failed {
			failed++
			fmt.Printf("  lost %s: %s\n", res.JobID, res.Err)
		} else {
			completed++
		}
	}

	fmt.Printf("\nsweep finished: %d/%d points, %d workers killed mid-run\n",
		completed, len(handles), inj.Killed())
	st := eng.Dispatcher().Stats()
	fmt.Printf("dispatcher: %d retries, %d workers lost, %d tasks dispatched\n",
		st.JobsRetried, st.WorkersLost, st.TasksDispatched)

	mu.Lock()
	defer mu.Unlock()
	sort.Strings(temps)
	fmt.Println("\n  T      <O>")
	for _, temp := range temps {
		if v, ok := results[temp]; ok {
			fmt.Printf("  %-6s %.4f\n", temp, v)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d sweep points lost despite retries", failed)
	}
	return nil
}

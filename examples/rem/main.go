// Replica-exchange molecular dynamics through the mini-Swift dataflow
// language — the paper's flagship use case (§3, §6.2.2, Figs. 16-17).
//
// The script below mirrors the Fig. 17 core loop: NAMD segments chained per
// replica through state files, alternating-parity neighbour exchanges
// (selected with the %% modulus operator) gating the next segments, and the
// whole graph executing asynchronously — each segment launches as soon as
// its own inputs exist, independent of the rest of the workflow.
//
// Run with: go run ./examples/rem
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"strconv"
	"sync/atomic"

	"jets/internal/core"
	"jets/internal/hydra"
	"jets/internal/namd"
	"jets/internal/rem"
	"jets/internal/swiftlang"
)

const script = `
# Asynchronous REM dataflow (Fig. 17 structure).
int nreps = 4;
int rounds = 3;

app (file co) namd0 (int rep) mpi 2 {
    "namd2" "-atoms" 300 "-steps" 2 "-temp" 300+rep*20 "-seed" rep "-scale" 0.01 "-out" @co;
}
app (file co) namd (int rep, int round, file ci) mpi 2 {
    "namd2" "-atoms" 300 "-steps" 2 "-temp" 300+rep*20 "-seed" rep+round*10 "-scale" 0.01 "-in" @ci "-out" @co;
}
app (file oa, file ob, file tok) exchange (int round, file a, file b) {
    "exchange" round @a @b @oa @ob @tok;
}

file c[] <"state/c_%d.state">;   # segment outputs, index rep*100+round
file e[] <"state/e_%d.state">;   # post-exchange restart files
file x[] <"state/x_%d.tok">;     # exchange tokens (synchronization)

# Initial segments.
foreach rep in [0:nreps-1] {
    c[rep*100] = namd0(rep);
}

foreach round in [0:rounds-1] {
    # Exchanges: alternating parity; odd rounds wrap around the ring.
    foreach rep in [0:nreps-1] {
        if (rep %% 2 == round %% 2) {
            int p = (rep+1) %% nreps;
            (e[rep*100+round], e[p*100+round], x[round*10+rep]) =
                exchange(round, c[rep*100+round], c[p*100+round]);
        }
    }
    # Next segments restart from the exchanged snapshots.
    foreach rep in [0:nreps-1] {
        c[rep*100+round+1] = namd(rep, round+1, e[rep*100+round]);
    }
}
trace("REM dataflow constructed:", nreps, "replicas,", rounds, "exchange rounds");
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := os.MkdirAll("state", 0o755); err != nil {
		return err
	}
	defer os.RemoveAll("state")

	var exchanges, accepted atomic.Int64

	runner := hydra.NewFuncRunner()
	namd.RegisterApp(runner, 0.01)
	// The exchange step: a small filesystem-bound script (run on the login
	// node in the paper) that applies the Metropolis criterion and swaps the
	// snapshots on acceptance.
	runner.Register("exchange", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		if len(args) != 6 {
			fmt.Fprintf(stdout, "exchange: want 6 args, got %d\n", len(args))
			return 2
		}
		round, err := strconv.Atoi(args[0])
		if err != nil {
			return 2
		}
		a, err := namd.LoadState(args[1])
		if err != nil {
			fmt.Fprintf(stdout, "exchange: %v\n", err)
			return 1
		}
		b, err := namd.LoadState(args[2])
		if err != nil {
			fmt.Fprintf(stdout, "exchange: %v\n", err)
			return 1
		}
		u := rand.New(rand.NewSource(int64(round)*7919 + 17)).Float64()
		exchanges.Add(1)
		if rem.Accept(a.Energy, a.Temperature, b.Energy, b.Temperature, u) {
			a, b = b, a
			accepted.Add(1)
		}
		if err := namd.SaveState(args[3], a); err != nil {
			return 1
		}
		if err := namd.SaveState(args[4], b); err != nil {
			return 1
		}
		return writeToken(args[5])
	})

	exec := swiftlang.NewJETSExecutor()
	eng, err := core.NewEngine(core.Options{
		LocalWorkers: 8,
		Runner:       runner,
		OnOutput:     exec.OutputSink,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	exec.Bind(eng)

	fmt.Println("running REM dataflow through mini-Swift + JETS...")
	err = swiftlang.RunScript(context.Background(), script, swiftlang.Config{
		Executor: exec,
		WorkDir:  "state",
		Stdout:   os.Stdout,
	})
	if err != nil {
		return err
	}

	// Report: final energies per replica and exchange statistics.
	fmt.Println("\nfinal replica states:")
	for rep := 0; rep < 4; rep++ {
		st, err := namd.LoadState(fmt.Sprintf("state/c_%d.state", rep*100+3))
		if err != nil {
			return err
		}
		fmt.Printf("  replica %d: T=%.0fK  E=%.2f  steps=%d\n", rep, st.Temperature, st.Energy, st.Step)
	}
	st := eng.Dispatcher().Stats()
	fmt.Printf("\nexchanges: %d attempted, %d accepted\n", exchanges.Load(), accepted.Load())
	fmt.Printf("jobs: %d completed (%d MPI proxy tasks dispatched)\n", st.JobsCompleted, st.TasksDispatched)
	return nil
}

func writeToken(path string) int {
	if err := os.WriteFile(path, []byte("ok\n"), 0o644); err != nil {
		return 1
	}
	return 0
}

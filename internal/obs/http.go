package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the observability HTTP endpoint: /metrics (Prometheus text),
// /debug/vars (expvar plus the registry snapshot), and /debug/pprof/*.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (use "127.0.0.1:0" for an ephemeral port) and serves the
// registry. It returns immediately; Close shuts the listener down.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Handler builds the endpoint mux, for embedding in an existing server.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	// Hand-rolled /debug/vars instead of expvar.Handler so the registry
	// snapshot appears under "jets" without a process-global expvar.Publish
	// (which panics on re-registration when tests run several endpoints).
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		if reg != nil {
			snap, err := json.Marshal(reg.Snapshot())
			if err == nil {
				if !first {
					fmt.Fprintf(w, ",\n")
				}
				first = false
				fmt.Fprintf(w, "%q: %s", "jets", snap)
			}
		}
		fmt.Fprintf(w, "\n}\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

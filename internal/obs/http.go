package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// HealthVar is an atomically swappable health check backing a /healthz
// endpoint: nil (or an unset function) means healthy, a non-nil error means
// the process should be reported unhealthy (HTTP 503). The alert engine
// wires its critical-rule state here; anything else with a notion of "ready"
// (a worker's dispatcher connection) can too.
type HealthVar struct {
	fn atomic.Value // of func() error
}

// Set installs (or replaces) the health check.
func (h *HealthVar) Set(fn func() error) {
	if fn == nil {
		fn = func() error { return nil }
	}
	h.fn.Store(fn)
}

// Check runs the installed health check; nil when none is installed.
func (h *HealthVar) Check() error {
	if h == nil {
		return nil
	}
	if fn, ok := h.fn.Load().(func() error); ok {
		return fn()
	}
	return nil
}

// Server is the observability HTTP endpoint: /metrics (Prometheus text),
// /debug/vars (expvar plus the registry snapshot), /debug/pprof/*, and
// /healthz (200 until SetHealth installs a check that returns an error).
type Server struct {
	ln     net.Listener
	srv    *http.Server
	health *HealthVar
}

// Serve binds addr (use "127.0.0.1:0" for an ephemeral port) and serves the
// registry. It returns immediately; Close shuts the listener down.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	health := &HealthVar{}
	srv := &http.Server{Handler: HandlerWithHealth(reg, health), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv, health: health}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetHealth installs the /healthz check (see HealthVar).
func (s *Server) SetHealth(fn func() error) { s.health.Set(fn) }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Handler builds the endpoint mux, for embedding in an existing server.
// /healthz always reports healthy; use HandlerWithHealth to wire a check.
func Handler(reg *Registry) http.Handler { return HandlerWithHealth(reg, nil) }

// HandlerWithHealth builds the endpoint mux with /healthz backed by the
// given HealthVar (nil behaves as always-healthy).
func HandlerWithHealth(reg *Registry, health *HealthVar) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := health.Check(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "unhealthy: %v\n", err)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	// Hand-rolled /debug/vars instead of expvar.Handler so the registry
	// snapshot appears under "jets" without a process-global expvar.Publish
	// (which panics on re-registration when tests run several endpoints).
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		if reg != nil {
			snap, err := json.Marshal(reg.Snapshot())
			if err == nil {
				if !first {
					fmt.Fprintf(w, ",\n")
				}
				first = false
				fmt.Fprintf(w, "%q: %s", "jets", snap)
			}
		}
		fmt.Fprintf(w, "\n}\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

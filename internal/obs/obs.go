// Package obs is the runtime observability layer: a lock-cheap registry of
// counters, gauges, and fixed-bucket latency histograms that live systems
// (the jets dispatcher, the pilot-job worker) export over HTTP in Prometheus
// text format, alongside expvar and pprof (http.go).
//
// The package complements internal/metrics, which computes the paper's
// post-hoc figures (Eq. 1 utilization, load-level series) from completed job
// records: obs answers "what is the dispatcher doing right now" — queue
// depth, idle workers per shard, dispatch latency distribution — the
// per-job lifecycle instrumentation that pilot-system characterizations
// (RADICAL-Pilot on Titan/Summit) use to find scheduler bottlenecks.
//
// Every instrument is safe for concurrent use and allocation-free on the
// update path: counters and gauges are single atomics, histograms are a
// preallocated bucket array of atomics. Instruments work detached from any
// registry (a nil *Registry is a valid constructor receiver), so hot paths
// never branch on whether observability is enabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jets/internal/metrics"
)

// Metric is one exportable instrument.
type Metric interface {
	// Desc returns the instrument's static description.
	Desc() Desc
	// writeValue renders the sample lines (without HELP/TYPE headers).
	writeValue(b *strings.Builder)
	// expvarValue returns the instrument's value for /debug/vars.
	expvarValue() any
}

// Desc describes a metric series.
type Desc struct {
	// Name is the base series name, e.g. "jets_jobs_submitted_total".
	Name string
	// Labels is a rendered Prometheus label set without braces, e.g.
	// `shard="3"`; empty for an unlabeled series.
	Labels string
	// Help is the one-line HELP text.
	Help string
	// Type is "counter", "gauge", or "histogram".
	Type string
}

// series is the full identity: name plus label set.
func (d Desc) series() string {
	if d.Labels == "" {
		return d.Name
	}
	return d.Name + "{" + d.Labels + "}"
}

// Registry is an ordered collection of metrics. Registration is locked (cold
// path); instrument updates never touch the registry.
type Registry struct {
	mu      sync.Mutex
	metrics []Metric
	seen    map[string]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]bool)}
}

// Register adds instruments to the registry. A duplicate series (same name
// and labels) keeps the first registration and is reported through the
// returned error rather than panicking or replacing — a second engine in the
// same process (tests, simjets) re-registering package-level instruments
// must not crash, and the first registration stays authoritative. A nil
// receiver is a no-op, so constructors can thread an optional registry
// without branching.
func (r *Registry) Register(ms ...Metric) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var dups []string
	for _, m := range ms {
		key := m.Desc().series()
		if r.seen[key] {
			dups = append(dups, key)
			continue
		}
		r.seen[key] = true
		r.metrics = append(r.metrics, m)
	}
	if dups != nil {
		return fmt.Errorf("obs: duplicate series kept first registration: %s", strings.Join(dups, ", "))
	}
	return nil
}

// Lookup returns the registered metric for a full series identity (base name
// plus rendered label set, e.g. `jets_shard_idle_workers{shard="3"}`), or nil
// when no such series is registered. Cold path; used by the alert engine to
// resolve rule sources by name.
func (r *Registry) Lookup(series string) Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.seen[series] {
		return nil
	}
	for _, m := range r.metrics {
		if m.Desc().series() == series {
			return m
		}
	}
	return nil
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, grouping serieses that share a base name under one
// HELP/TYPE header.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := append([]Metric(nil), r.metrics...)
	r.mu.Unlock()
	// Stable output: sort by base name, then label set, preserving the
	// grouping the format requires.
	sort.SliceStable(ms, func(i, j int) bool {
		di, dj := ms[i].Desc(), ms[j].Desc()
		if di.Name != dj.Name {
			return di.Name < dj.Name
		}
		return di.Labels < dj.Labels
	})
	var b strings.Builder
	lastName := ""
	for _, m := range ms {
		d := m.Desc()
		if d.Name != lastName {
			fmt.Fprintf(&b, "# HELP %s %s\n", d.Name, d.Help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", d.Name, d.Type)
			lastName = d.Name
		}
		m.writeValue(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns series name -> value for every registered metric, the
// /debug/vars payload. Histogram values are {count, sum, mean} objects.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	ms := append([]Metric(nil), r.metrics...)
	r.mu.Unlock()
	out := make(map[string]any, len(ms))
	for _, m := range ms {
		out[m.Desc().series()] = m.expvarValue()
	}
	return out
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
	d Desc
}

// NewCounter creates a detached counter (register it explicitly, or use
// Registry.Counter).
func NewCounter(name, help string) *Counter {
	return &Counter{d: Desc{Name: name, Help: help, Type: "counter"}}
}

// Counter creates and registers a counter. Valid on a nil registry (the
// counter still works, it is just not exported).
func (r *Registry) Counter(name, help string) *Counter {
	c := NewCounter(name, help)
	r.Register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error but not checked on the
// hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Desc implements Metric.
func (c *Counter) Desc() Desc { return c.d }

func (c *Counter) writeValue(b *strings.Builder) {
	fmt.Fprintf(b, "%s %d\n", c.d.series(), c.v.Load())
}

func (c *Counter) expvarValue() any { return c.v.Load() }

// CounterFunc exports an externally maintained monotonic count — e.g. an
// atomic a subsystem already keeps — sampled at scrape time, so enabling
// export adds no second increment to the subsystem's hot path.
type CounterFunc struct {
	fn func() int64
	d  Desc
}

// CounterFunc creates and registers a sampled counter.
func (r *Registry) CounterFunc(name, help string, fn func() int64) *CounterFunc {
	return r.CounterFuncL(name, "", help, fn)
}

// CounterFuncL creates and registers a sampled counter with a label set
// (e.g. `instance="2"`), so several subsystem instances in one process can
// export the same base name without colliding in the registry.
func (r *Registry) CounterFuncL(name, labels, help string, fn func() int64) *CounterFunc {
	c := &CounterFunc{fn: fn, d: Desc{Name: name, Labels: labels, Help: help, Type: "counter"}}
	r.Register(c)
	return c
}

// Value samples the underlying count.
func (c *CounterFunc) Value() int64 { return c.fn() }

// Desc implements Metric.
func (c *CounterFunc) Desc() Desc { return c.d }

func (c *CounterFunc) writeValue(b *strings.Builder) {
	fmt.Fprintf(b, "%s %d\n", c.d.series(), c.fn())
}

func (c *CounterFunc) expvarValue() any { return c.fn() }

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a settable atomic level.
type Gauge struct {
	v atomic.Int64
	d Desc
}

// NewGauge creates a detached gauge.
func NewGauge(name, help string) *Gauge {
	return &Gauge{d: Desc{Name: name, Help: help, Type: "gauge"}}
}

// Gauge creates and registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := NewGauge(name, help)
	r.Register(g)
	return g
}

// Set stores the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Desc implements Metric.
func (g *Gauge) Desc() Desc { return g.d }

func (g *Gauge) writeValue(b *strings.Builder) {
	fmt.Fprintf(b, "%s %d\n", g.d.series(), g.v.Load())
}

func (g *Gauge) expvarValue() any { return g.v.Load() }

// GaugeFunc samples a live value at scrape time (queue depth, idle workers):
// the instrumented subsystem keeps its own state and pays nothing until
// someone scrapes.
type GaugeFunc struct {
	fn func() float64
	d  Desc
}

// GaugeFunc creates and registers a sampled gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	return r.GaugeFuncL(name, "", help, fn)
}

// GaugeFuncL creates and registers a sampled gauge with a label set (e.g.
// `shard="3"`), for per-shard series sharing one base name.
func (r *Registry) GaugeFuncL(name, labels, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{fn: fn, d: Desc{Name: name, Labels: labels, Help: help, Type: "gauge"}}
	r.Register(g)
	return g
}

// Value samples the underlying level.
func (g *GaugeFunc) Value() float64 { return g.fn() }

// Desc implements Metric.
func (g *GaugeFunc) Desc() Desc { return g.d }

func (g *GaugeFunc) writeValue(b *strings.Builder) {
	fmt.Fprintf(b, "%s %s\n", g.d.series(), formatFloat(g.fn()))
}

func (g *GaugeFunc) expvarValue() any { return g.fn() }

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// ---------------------------------------------------------------------------
// Histogram

// DefLatencyBounds are the default duration histogram bucket upper bounds:
// exponential coverage from 100µs (sub-millisecond dispatch decisions) to
// 30s (slow PMI wire-ups on congested networks).
var DefLatencyBounds = []time.Duration{
	100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2500 * time.Millisecond, 5 * time.Second,
	10 * time.Second, 30 * time.Second,
}

// LinearBounds derives n equal-width bucket upper bounds over (lo, hi] in
// seconds using the same bucket-edge math as metrics.Histogram, so a live
// obs histogram lines up bucket-for-bucket with the post-hoc fixed-width
// figures (e.g. the Fig. 11 NAMD wall-time distribution).
func LinearBounds(lo, hi float64, n int) []time.Duration {
	h := metrics.NewHistogram(lo, hi, n)
	out := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		upper := h.BucketLo(i) + (hi-lo)/float64(n)
		out[i] = time.Duration(upper * float64(time.Second))
	}
	return out
}

// Hist is a fixed-bucket duration histogram with atomic bucket counters:
// the concurrent, preallocated sibling of metrics.Histogram, sharing its
// under/over bucket accounting (the final implicit bucket is +Inf, so
// "over" samples land there). Observe is allocation-free.
type Hist struct {
	d      Desc
	bounds []float64      // upper bounds in seconds, ascending
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sumNs  atomic.Int64
}

// NewHist creates a detached histogram over the given bucket upper bounds
// (nil uses DefLatencyBounds). Bounds must be ascending.
func NewHist(name, help string, bounds []time.Duration) *Hist {
	return NewHistL(name, "", help, bounds)
}

// NewHistL creates a detached histogram with a label set (e.g.
// `instance="2"`), so per-instance histograms share one base name.
func NewHistL(name, labels, help string, bounds []time.Duration) *Hist {
	if bounds == nil {
		bounds = DefLatencyBounds
	}
	h := &Hist{
		d:      Desc{Name: name, Labels: labels, Help: help, Type: "histogram"},
		bounds: make([]float64, len(bounds)),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	for i, b := range bounds {
		h.bounds[i] = b.Seconds()
		if i > 0 && h.bounds[i] <= h.bounds[i-1] {
			panic("obs: histogram bounds must be ascending")
		}
	}
	return h
}

// Hist creates and registers a duration histogram.
func (r *Registry) Hist(name, help string, bounds []time.Duration) *Hist {
	h := NewHist(name, help, bounds)
	r.Register(h)
	return h
}

// Observe records one duration. Allocation-free: a bounded scan over the
// preallocated bucket array plus three atomic adds.
func (h *Hist) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Quantile estimates the q-quantile (0 < q < 1) of everything observed so
// far, linearly interpolated within the bucket holding the target rank —
// the standard Prometheus histogram_quantile estimate computed directly
// from the atomic bucket counters. Allocation-free: two bounded scans over
// the preallocated bucket array. Samples in the implicit +Inf bucket clamp
// to the highest finite bound. Returns 0 when nothing has been observed.
func (h *Hist) Quantile(q float64) time.Duration {
	total := int64(0)
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total == 0 {
		return 0
	}
	target := rankFor(q, total)
	cum := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		cum += c
		if cum < target {
			continue
		}
		return h.interp(i, c, cum, target)
	}
	return h.maxBound()
}

// maxBound is the highest finite bucket edge, the clamp for +Inf samples.
func (h *Hist) maxBound() time.Duration {
	if len(h.bounds) == 0 {
		return 0
	}
	return time.Duration(h.bounds[len(h.bounds)-1] * float64(time.Second))
}

// Buckets copies the current per-bucket counts (len NumBuckets, final entry
// the implicit +Inf bucket) into dst, reusing it when it has capacity. The
// snapshots feed QuantileOfDelta for windowed quantiles.
func (h *Hist) Buckets(dst []int64) []int64 {
	n := len(h.counts)
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	for i := range h.counts {
		dst[i] = h.counts[i].Load()
	}
	return dst
}

// NumBuckets reports the bucket count including the implicit +Inf bucket.
func (h *Hist) NumBuckets() int { return len(h.counts) }

// QuantileOfDelta estimates the q-quantile of the observations made between
// two Buckets snapshots (prev may be nil, meaning "since creation"): the
// sliding-window form of Quantile used by alert rules, so a long-lived
// histogram's ancient samples cannot mask a current regression — or keep an
// alert firing after the regression recovered. Returns 0 when the window
// holds no observations.
func (h *Hist) QuantileOfDelta(prev, cur []int64, q float64) time.Duration {
	if len(cur) != len(h.counts) || (prev != nil && len(prev) != len(h.counts)) {
		return 0
	}
	at := func(i int) int64 {
		d := cur[i]
		if prev != nil {
			d -= prev[i]
		}
		return d
	}
	total := int64(0)
	for i := range cur {
		total += at(i)
	}
	if total <= 0 {
		return 0
	}
	target := rankFor(q, total)
	cum := int64(0)
	for i := range cur {
		c := at(i)
		cum += c
		if cum < target {
			continue
		}
		return h.interp(i, c, cum, target)
	}
	return h.maxBound()
}

// rankFor maps a quantile to a 1-based target rank, clamped to [1, total].
func rankFor(q float64, total int64) int64 {
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	return target
}

// interp linearly interpolates the target rank inside bucket i, where c is
// the bucket's count and cum the cumulative count through it (c > 0, since
// cum first reached target here).
func (h *Hist) interp(i int, c, cum, target int64) time.Duration {
	if i == len(h.bounds) {
		// +Inf bucket: no finite upper edge to interpolate toward.
		return h.maxBound()
	}
	lo := 0.0
	if i > 0 {
		lo = h.bounds[i-1]
	}
	hi := h.bounds[i]
	frac := float64(target-(cum-c)) / float64(c)
	return time.Duration((lo + frac*(hi-lo)) * float64(time.Second))
}

// Count reports the number of observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Sum reports the total observed duration.
func (h *Hist) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Desc implements Metric.
func (h *Hist) Desc() Desc { return h.d }

func (h *Hist) writeValue(b *strings.Builder) {
	labels := func(le string) string {
		if h.d.Labels == "" {
			return `le="` + le + `"`
		}
		return h.d.Labels + `,le="` + le + `"`
	}
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%s} %d\n", h.d.Name, labels(formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{%s} %d\n", h.d.Name, labels("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %g\n", h.d.Name, bracedLabels(h.d.Labels), h.Sum().Seconds())
	fmt.Fprintf(b, "%s_count%s %d\n", h.d.Name, bracedLabels(h.d.Labels), h.count.Load())
}

func bracedLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func (h *Hist) expvarValue() any {
	n := h.count.Load()
	mean := 0.0
	if n > 0 {
		mean = h.Sum().Seconds() / float64(n)
	}
	return map[string]any{"count": n, "sum_seconds": h.Sum().Seconds(), "mean_seconds": mean}
}

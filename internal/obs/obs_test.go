package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeRender(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("jets_widgets_total", "widgets produced")
	c.Add(3)
	c.Inc()
	g := reg.Gauge("jets_level", "current level")
	g.Set(7)
	g.Add(-2)
	reg.GaugeFunc("jets_live", "sampled", func() float64 { return 2.5 })
	reg.CounterFunc("jets_sampled_total", "sampled counter", func() int64 { return 42 })

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP jets_widgets_total widgets produced",
		"# TYPE jets_widgets_total counter",
		"jets_widgets_total 4",
		"jets_level 5",
		"jets_live 2.5",
		"jets_sampled_total 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLabeledGaugeGrouping(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFuncL("jets_shard_idle", `shard="1"`, "idle per shard", func() float64 { return 2 })
	reg.GaugeFuncL("jets_shard_idle", `shard="0"`, "idle per shard", func() float64 { return 1 })
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE jets_shard_idle gauge") != 1 {
		t.Errorf("labeled series must share one TYPE header:\n%s", out)
	}
	if !strings.Contains(out, `jets_shard_idle{shard="0"} 1`) ||
		!strings.Contains(out, `jets_shard_idle{shard="1"} 2`) {
		t.Errorf("missing labeled serieses:\n%s", out)
	}
}

func TestHistBuckets(t *testing.T) {
	h := NewHist("jets_lat_seconds", "latency", []time.Duration{
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	})
	reg := NewRegistry()
	reg.Register(h)
	h.Observe(500 * time.Microsecond) // <= 1ms
	h.Observe(time.Millisecond)       // le is inclusive: still the 1ms bucket
	h.Observe(2 * time.Millisecond)   // <= 10ms
	h.Observe(time.Second)            // +Inf
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`jets_lat_seconds_bucket{le="0.001"} 2`,
		`jets_lat_seconds_bucket{le="0.01"} 3`,
		`jets_lat_seconds_bucket{le="0.1"} 3`,
		`jets_lat_seconds_bucket{le="+Inf"} 4`,
		`jets_lat_seconds_count 4`,
		"# TYPE jets_lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLinearBounds(t *testing.T) {
	bounds := LinearBounds(0, 10, 5)
	want := []time.Duration{2 * time.Second, 4 * time.Second, 6 * time.Second, 8 * time.Second, 10 * time.Second}
	if len(bounds) != len(want) {
		t.Fatalf("got %v", bounds)
	}
	for i := range want {
		if d := bounds[i] - want[i]; d > time.Microsecond || d < -time.Microsecond {
			t.Errorf("bound %d = %v, want %v", i, bounds[i], want[i])
		}
	}
}

func TestNilRegistryAndDetachedInstruments(t *testing.T) {
	var reg *Registry
	c := reg.Counter("jets_detached_total", "works unregistered")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("detached counter must still count")
	}
	h := reg.Hist("jets_detached_seconds", "works unregistered", nil)
	h.Observe(time.Millisecond)
	if h.Count() != 1 {
		t.Fatal("detached histogram must still observe")
	}
	reg.Register(c) // nil receiver: no-op, no panic
}

func TestDuplicateRegistrationKeepsFirst(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("jets_dup_total", "first")
	a.Add(5)
	b := reg.Counter("jets_dup_total", "second")
	b.Add(100)
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "jets_dup_total 5") {
		t.Errorf("duplicate registration must keep the first instrument:\n%s", out.String())
	}
	if strings.Contains(out.String(), "jets_dup_total 100") {
		t.Errorf("second registration must not export:\n%s", out.String())
	}
}

func TestDuplicateRegistrationReturnsError(t *testing.T) {
	reg := NewRegistry()
	first := NewCounter("jets_dup_err_total", "first")
	if err := reg.Register(first); err != nil {
		t.Fatalf("first registration errored: %v", err)
	}
	second := NewCounter("jets_dup_err_total", "second")
	err := reg.Register(second, NewCounter("jets_dup_other_total", "fine"))
	if err == nil {
		t.Fatal("duplicate registration must return an error")
	}
	if !strings.Contains(err.Error(), "jets_dup_err_total") {
		t.Errorf("error must name the duplicate series: %v", err)
	}
	// The non-duplicate metric in the same call still registers, and lookup
	// keeps resolving to the first instrument.
	if reg.Lookup("jets_dup_other_total") == nil {
		t.Error("non-duplicate metric in the same Register call was dropped")
	}
	if got := reg.Lookup("jets_dup_err_total"); got != Metric(first) {
		t.Errorf("Lookup resolved to %v, want the first registration", got)
	}
}

func TestLookup(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("jets_lookup_total", "c")
	reg.GaugeFuncL("jets_lookup_idle", `shard="0"`, "g", func() float64 { return 1 })
	if m := reg.Lookup("jets_lookup_total"); m != Metric(c) {
		t.Errorf("Lookup(plain) = %v", m)
	}
	if m := reg.Lookup(`jets_lookup_idle{shard="0"}`); m == nil {
		t.Error("Lookup must resolve labeled serieses by full name")
	}
	if m := reg.Lookup("jets_absent_total"); m != nil {
		t.Errorf("Lookup(absent) = %v, want nil", m)
	}
	var nilReg *Registry
	if m := nilReg.Lookup("jets_lookup_total"); m != nil {
		t.Errorf("nil registry Lookup = %v, want nil", m)
	}
}

func TestHistQuantile(t *testing.T) {
	h := NewHist("jets_q_seconds", "q", []time.Duration{
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// Ten samples in the first bucket: the median interpolates to the middle
	// of [0, 1ms].
	for i := 0; i < 10; i++ {
		h.Observe(500 * time.Microsecond)
	}
	if got, want := h.Quantile(0.5), 500*time.Microsecond; !within(got, want, 50*time.Microsecond) {
		t.Errorf("p50 = %v, want ~%v", got, want)
	}
	// The max rank lands at the first bucket's upper edge.
	if got, want := h.Quantile(0.999), time.Millisecond; !within(got, want, 50*time.Microsecond) {
		t.Errorf("p99.9 = %v, want ~%v", got, want)
	}
	// Push ten samples into (1ms, 10ms]: p75 now interpolates inside the
	// second bucket (rank 15 of 20 -> halfway through [1ms, 10ms]).
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	if got, want := h.Quantile(0.75), 5500*time.Microsecond; !within(got, want, 100*time.Microsecond) {
		t.Errorf("p75 = %v, want ~%v", got, want)
	}
}

func TestHistQuantileInfClampAndNilBounds(t *testing.T) {
	h := NewHist("jets_qinf_seconds", "q", []time.Duration{10 * time.Millisecond})
	h.Observe(time.Hour) // +Inf bucket
	if got, want := h.Quantile(0.99), 10*time.Millisecond; got != want {
		t.Errorf("+Inf sample must clamp to the highest finite bound: %v, want %v", got, want)
	}
	// A histogram with no finite bounds (empty, not nil, which selects the
	// default latency bounds) has only the +Inf bucket.
	nb := NewHist("jets_qnil_seconds", "q", []time.Duration{})
	nb.Observe(time.Second)
	if got := nb.Quantile(0.5); got != 0 {
		t.Errorf("no-bounds quantile = %v, want 0 (no finite edge to clamp to)", got)
	}
}

func TestQuantileOfDelta(t *testing.T) {
	h := NewHist("jets_qd_seconds", "q", []time.Duration{
		time.Millisecond, 10 * time.Millisecond,
	})
	// Ancient fast samples that a windowed quantile must not see.
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Microsecond)
	}
	base := h.Buckets(nil)
	// Empty window: no observations since the snapshot.
	if got := h.QuantileOfDelta(base, h.Buckets(nil), 0.99); got != 0 {
		t.Errorf("empty-window quantile = %v, want 0", got)
	}
	// The window holds only slow samples, so its p50 must sit in the second
	// bucket even though the lifetime p50 is in the first.
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	cur := h.Buckets(nil)
	if got, want := h.QuantileOfDelta(base, cur, 0.5), 5500*time.Microsecond; !within(got, want, 100*time.Microsecond) {
		t.Errorf("windowed p50 = %v, want ~%v", got, want)
	}
	if got := h.Quantile(0.5); got >= time.Millisecond {
		t.Errorf("lifetime p50 = %v, expected < 1ms (sanity)", got)
	}
	// nil prev means "since creation".
	if got := h.QuantileOfDelta(nil, cur, 0.5); got != h.Quantile(0.5) {
		t.Errorf("nil-prev delta %v != lifetime quantile %v", h.QuantileOfDelta(nil, cur, 0.5), h.Quantile(0.5))
	}
	// Length mismatch is rejected, not misread.
	if got := h.QuantileOfDelta(base[:1], cur, 0.5); got != 0 {
		t.Errorf("mismatched snapshot quantile = %v, want 0", got)
	}
	// Buckets reuses capacity.
	reused := h.Buckets(base)
	if &reused[0] != &base[0] {
		t.Error("Buckets must reuse dst capacity")
	}
	if h.NumBuckets() != 3 {
		t.Errorf("NumBuckets = %d, want 3 (2 finite + Inf)", h.NumBuckets())
	}
}

func within(got, want, tol time.Duration) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestConcurrentUpdatesRaceClean(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("jets_conc_total", "c")
	g := reg.Gauge("jets_conc_level", "g")
	h := reg.Hist("jets_conc_seconds", "h", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Set(int64(j))
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}(i)
	}
	// Scrape concurrently with the updates.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b strings.Builder
			reg.WritePrometheus(&b)
			reg.Snapshot()
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("hist count = %d, want 8000", h.Count())
	}
}

func TestHTTPEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jets_http_total", "served").Add(9)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "jets_http_total 9") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}

	code, body = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	jets, ok := vars["jets"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars missing jets object: %s", body)
	}
	if v, _ := jets["jets_http_total"].(float64); v != 9 {
		t.Errorf("jets_http_total in vars = %v, want 9", jets["jets_http_total"])
	}
	if _, ok := vars["memstats"]; !ok {
		t.Errorf("/debug/vars missing standard expvar memstats")
	}

	code, body = get("/debug/pprof/goroutine?debug=1")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/goroutine = %d:\n%.200s", code, body)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func() (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Healthy by default, before any SetHealth call.
	if code, body := get(); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("default /healthz = %d %q, want 200 ok", code, body)
	}
	srv.SetHealth(func() error { return fmt.Errorf("critical alert firing: [no-workers]") })
	code, body := get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz = %d, want 503", code)
	}
	if !strings.Contains(body, "no-workers") {
		t.Errorf("unhealthy body must carry the cause: %q", body)
	}
	// Recovery flips it back; nil check means healthy again.
	srv.SetHealth(nil)
	if code, _ := get(); code != 200 {
		t.Fatalf("recovered /healthz = %d, want 200", code)
	}
}

func TestHealthVarNilSafety(t *testing.T) {
	var hv *HealthVar
	if err := hv.Check(); err != nil {
		t.Errorf("nil HealthVar must report healthy, got %v", err)
	}
	hv = &HealthVar{}
	if err := hv.Check(); err != nil {
		t.Errorf("zero HealthVar must report healthy, got %v", err)
	}
	hv.Set(func() error { return fmt.Errorf("down") })
	if err := hv.Check(); err == nil {
		t.Error("set HealthVar must propagate the error")
	}
}

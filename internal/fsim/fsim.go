// Package fsim models storage for the discrete-event simulator: a shared
// parallel filesystem (GPFS/PVFS-like) whose metadata and data services
// congest under many simultaneous clients, and unconstrained node-local
// storage (the ZeptoOS RAM filesystem the JETS start scripts use to cache
// proxy and application binaries).
//
// The distinction drives several of the paper's results: Fig. 15's
// utilization loss as processes-per-node rises (the application binary is
// re-read per process from GPFS), and the single-process REM case's loss to
// simultaneous small-file accesses (§6.2.2).
package fsim

import (
	"fmt"
	"time"

	"jets/internal/event"
)

// FS is the simulated storage interface.
type FS interface {
	// Read schedules a read of size bytes by one client; done runs at
	// completion.
	Read(size int, done func())
	// Write schedules a write of size bytes; done runs at completion.
	Write(size int, done func())
	// Open schedules a metadata operation (open/stat); done runs at
	// completion.
	Open(done func())
	// Name identifies the model.
	Name() string
}

// SharedFS models a parallel filesystem: a metadata station with a fixed
// service rate (the scarce resource under small-file loads) and a data
// station with aggregate bandwidth divided among concurrent streams.
type SharedFS struct {
	name string
	sim  *event.Sim
	meta *event.Station
	data *event.Station

	// BytesPerSec is the aggregate data bandwidth.
	BytesPerSec float64
	// MetaService is the per-metadata-op service time.
	MetaService time.Duration

	reads, writes, opens int
}

// SharedConfig parameterizes a shared filesystem.
type SharedConfig struct {
	Name string
	// MetaServers is the number of concurrent metadata operations served.
	MetaServers int
	// MetaService is the service time of one metadata operation.
	MetaService time.Duration
	// DataStreams is the number of concurrent full-rate data streams.
	DataStreams int
	// BytesPerSec is the per-stream data bandwidth.
	BytesPerSec float64
}

// NewShared creates a shared filesystem model.
func NewShared(sim *event.Sim, cfg SharedConfig) (*SharedFS, error) {
	if cfg.MetaServers <= 0 || cfg.DataStreams <= 0 {
		return nil, fmt.Errorf("fsim: invalid server counts %+v", cfg)
	}
	if cfg.BytesPerSec <= 0 {
		return nil, fmt.Errorf("fsim: invalid bandwidth %v", cfg.BytesPerSec)
	}
	return &SharedFS{
		name:        cfg.Name,
		sim:         sim,
		meta:        event.NewStation(sim, cfg.MetaServers),
		data:        event.NewStation(sim, cfg.DataStreams),
		BytesPerSec: cfg.BytesPerSec,
		MetaService: cfg.MetaService,
	}, nil
}

// Name implements FS.
func (f *SharedFS) Name() string { return f.name }

// Open implements FS: one metadata service.
func (f *SharedFS) Open(done func()) {
	f.opens++
	f.meta.Request(f.MetaService, done)
}

// Read implements FS: metadata then data transfer.
func (f *SharedFS) Read(size int, done func()) {
	f.reads++
	f.meta.Request(f.MetaService, func() {
		f.data.Request(f.xfer(size), done)
	})
}

// Write implements FS: metadata then data transfer.
func (f *SharedFS) Write(size int, done func()) {
	f.writes++
	f.meta.Request(f.MetaService, func() {
		f.data.Request(f.xfer(size), done)
	})
}

func (f *SharedFS) xfer(size int) time.Duration {
	if size < 0 {
		size = 0
	}
	return time.Duration(float64(size) / f.BytesPerSec * float64(time.Second))
}

// Ops reports (reads, writes, opens) so experiments can assert I/O volume.
func (f *SharedFS) Ops() (reads, writes, opens int) { return f.reads, f.writes, f.opens }

// MetaQueueMax reports the metadata station's wait-queue high-water mark —
// the congestion signal for the small-file analyses.
func (f *SharedFS) MetaQueueMax() int { return f.meta.MaxQueue }

// LocalFS models node-local RAM storage: constant small latency, no
// cross-client contention (each node has its own device, so one instance is
// shared safely across simulated nodes).
type LocalFS struct {
	name    string
	sim     *event.Sim
	Latency time.Duration
	// BytesPerSec is effectively memory bandwidth.
	BytesPerSec float64
}

// NewLocal creates a node-local storage model.
func NewLocal(sim *event.Sim, latency time.Duration, bytesPerSec float64) (*LocalFS, error) {
	if bytesPerSec <= 0 {
		return nil, fmt.Errorf("fsim: invalid bandwidth %v", bytesPerSec)
	}
	return &LocalFS{name: "local-ram", sim: sim, Latency: latency, BytesPerSec: bytesPerSec}, nil
}

// Name implements FS.
func (f *LocalFS) Name() string { return f.name }

func nop() {}

func orNop(done func()) func() {
	if done == nil {
		return nop
	}
	return done
}

// Open implements FS.
func (f *LocalFS) Open(done func()) { f.sim.After(f.Latency, orNop(done)) }

// Read implements FS.
func (f *LocalFS) Read(size int, done func()) {
	if size < 0 {
		size = 0
	}
	f.sim.After(f.Latency+time.Duration(float64(size)/f.BytesPerSec*float64(time.Second)), orNop(done))
}

// Write implements FS.
func (f *LocalFS) Write(size int, done func()) {
	if size < 0 {
		size = 0
	}
	f.sim.After(f.Latency+time.Duration(float64(size)/f.BytesPerSec*float64(time.Second)), orNop(done))
}

// GPFS returns a model calibrated to the paper's GPFS installations:
// metadata ops cost ~3 ms each with modest parallelism; aggregate streaming
// bandwidth is high but shared.
func GPFS(sim *event.Sim) *SharedFS {
	f, err := NewShared(sim, SharedConfig{
		Name:        "gpfs",
		MetaServers: 8,
		MetaService: 3 * time.Millisecond,
		DataStreams: 8,
		BytesPerSec: 80e6, // ~640 MB/s aggregate
	})
	if err != nil {
		panic(err)
	}
	return f
}

// PVFS returns a model of the Surveyor PVFS volume used by the NAMD runs.
func PVFS(sim *event.Sim) *SharedFS {
	f, err := NewShared(sim, SharedConfig{
		Name:        "pvfs",
		MetaServers: 4,
		MetaService: 2 * time.Millisecond,
		DataStreams: 16,
		BytesPerSec: 300e6,
	})
	if err != nil {
		panic(err)
	}
	return f
}

// RAMDisk returns the ZeptoOS node-local RAM filesystem model.
func RAMDisk(sim *event.Sim) *LocalFS {
	f, err := NewLocal(sim, 30*time.Microsecond, 1.5e9)
	if err != nil {
		panic(err)
	}
	return f
}

package fsim

import (
	"testing"
	"time"

	"jets/internal/event"
)

func TestLocalFSTiming(t *testing.T) {
	sim := event.New(1)
	fs, err := NewLocal(sim, time.Millisecond, 1e6) // 1 MB/s for easy math
	if err != nil {
		t.Fatal(err)
	}
	var doneAt time.Duration
	fs.Read(500_000, func() { doneAt = sim.Now() }) // 0.5s transfer + 1ms
	sim.Run(0)
	want := 501 * time.Millisecond
	if doneAt != want {
		t.Fatalf("doneAt=%v want %v", doneAt, want)
	}
}

func TestLocalFSNoContention(t *testing.T) {
	sim := event.New(1)
	fs, _ := NewLocal(sim, time.Millisecond, 1e6)
	var finishes []time.Duration
	for i := 0; i < 10; i++ {
		fs.Read(1_000_000, func() { finishes = append(finishes, sim.Now()) })
	}
	sim.Run(0)
	for _, f := range finishes {
		if f != 1001*time.Millisecond {
			t.Fatalf("local reads should not contend: %v", finishes)
		}
	}
}

func TestSharedFSMetadataContention(t *testing.T) {
	sim := event.New(1)
	fs, err := NewShared(sim, SharedConfig{
		Name: "t", MetaServers: 1, MetaService: 10 * time.Millisecond,
		DataStreams: 100, BytesPerSec: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	const n = 20
	for i := 0; i < n; i++ {
		fs.Open(func() { last = sim.Now() })
	}
	sim.Run(0)
	if last != n*10*time.Millisecond {
		t.Fatalf("metadata serialized wrong: last=%v", last)
	}
	if fs.MetaQueueMax() != n-1 {
		t.Fatalf("queue max=%d", fs.MetaQueueMax())
	}
}

func TestSharedFSDataContention(t *testing.T) {
	sim := event.New(1)
	fs, _ := NewShared(sim, SharedConfig{
		Name: "t", MetaServers: 100, MetaService: 0,
		DataStreams: 2, BytesPerSec: 1e6,
	})
	var last time.Duration
	// 4 reads of 1 MB on 2 streams at 1 MB/s each: two waves => 2s.
	for i := 0; i < 4; i++ {
		fs.Read(1_000_000, func() { last = sim.Now() })
	}
	sim.Run(0)
	if last != 2*time.Second {
		t.Fatalf("last=%v want 2s", last)
	}
}

func TestOpsCounting(t *testing.T) {
	sim := event.New(1)
	fs := GPFS(sim)
	fs.Read(10, nil)
	fs.Read(10, nil)
	fs.Write(10, nil)
	fs.Open(nil)
	sim.Run(0)
	r, w, o := fs.Ops()
	if r != 2 || w != 1 || o != 1 {
		t.Fatalf("ops=(%d,%d,%d)", r, w, o)
	}
}

func TestNilDoneCallbacks(t *testing.T) {
	sim := event.New(1)
	fs := RAMDisk(sim)
	fs.Read(100, nil)
	fs.Write(100, nil)
	fs.Open(nil)
	sim.Run(0) // must not panic
}

func TestConfigValidation(t *testing.T) {
	sim := event.New(1)
	if _, err := NewShared(sim, SharedConfig{MetaServers: 0, DataStreams: 1, BytesPerSec: 1}); err == nil {
		t.Error("zero meta servers accepted")
	}
	if _, err := NewShared(sim, SharedConfig{MetaServers: 1, DataStreams: 1, BytesPerSec: 0}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := NewLocal(sim, 0, 0); err == nil {
		t.Error("zero local bandwidth accepted")
	}
}

func TestLocalFasterThanSharedSmallFiles(t *testing.T) {
	// The paper's local-storage optimization exists because node-local
	// lookups are much cheaper than GPFS lookups; verify the models agree.
	sim := event.New(1)
	shared := GPFS(sim)
	local := RAMDisk(sim)
	var sharedDone, localDone time.Duration
	for i := 0; i < 64; i++ { // 64 concurrent small reads (binary loads)
		shared.Read(4096, func() { sharedDone = sim.Now() })
		local.Read(4096, func() { localDone = sim.Now() })
	}
	sim.Run(0)
	if localDone*5 > sharedDone {
		t.Fatalf("local=%v shared=%v; local should be much faster under load", localDone, sharedDone)
	}
}

func TestNegativeSizeClamped(t *testing.T) {
	sim := event.New(1)
	fs := GPFS(sim)
	fired := false
	fs.Read(-100, func() { fired = true })
	sim.Run(0)
	if !fired {
		t.Fatal("negative size read never completed")
	}
}

// Package metrics implements the measurement primitives used throughout the
// JETS evaluation: the allocation-utilization formula of Eq. (1) in the
// paper, load-level time series computed from job start/stop records, and
// fixed-width histograms such as the NAMD wall-time distribution (Fig. 11).
//
// All times are expressed as time.Duration offsets from an arbitrary epoch
// so the package works identically for wall-clock runs and for the
// discrete-event simulator's virtual clock.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Utilization computes Eq. (1) of the paper:
//
//	utilization = duration × jobs × n / (allocation size × time)
//
// where duration is the useful per-job run time, jobs is the number of jobs
// completed, n is the number of processors per job, allocation is the number
// of processors in the allocation, and total is the wall time the allocation
// was held. The result is clamped to [0, 1]; a zero allocation or total
// yields 0.
func Utilization(duration time.Duration, jobs, n, allocation int, total time.Duration) float64 {
	if allocation <= 0 || total <= 0 {
		return 0
	}
	u := duration.Seconds() * float64(jobs) * float64(n) / (float64(allocation) * total.Seconds())
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// WeightedUtilization computes utilization for a batch of jobs with varying
// durations and sizes: the sum of busy processor-seconds divided by the
// processor-seconds held by the allocation.
func WeightedUtilization(jobs []JobRecord, allocation int, total time.Duration) float64 {
	if allocation <= 0 || total <= 0 {
		return 0
	}
	var busy float64
	for _, j := range jobs {
		busy += j.Duration().Seconds() * float64(j.Procs)
	}
	u := busy / (float64(allocation) * total.Seconds())
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// JobRecord is one job execution interval on some number of processors.
type JobRecord struct {
	ID    string
	Procs int
	Start time.Duration // offset from epoch
	Stop  time.Duration // offset from epoch; Stop >= Start
}

// Duration returns the job's run time. A record with Stop < Start reports 0.
func (j JobRecord) Duration() time.Duration {
	if j.Stop < j.Start {
		return 0
	}
	return j.Stop - j.Start
}

// Series is a step function sampled at event boundaries, e.g. "busy cores at
// time t" (Fig. 13) or "nodes available" (Fig. 10).
type Series struct {
	T []time.Duration
	V []float64
}

// Len reports the number of points in the series.
func (s *Series) Len() int { return len(s.T) }

// At returns the series value at offset t using step semantics: the value of
// the latest point at or before t, or 0 before the first point.
func (s *Series) At(t time.Duration) float64 {
	i := sort.Search(len(s.T), func(i int) bool { return s.T[i] > t })
	if i == 0 {
		return 0
	}
	return s.V[i-1]
}

// Max returns the maximum value in the series, or 0 for an empty series.
func (s *Series) Max() float64 {
	m := 0.0
	for _, v := range s.V {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the time-weighted mean value of the series over [first, end].
// end must be at or after the last point; typically it is the allocation end
// time. An empty series reports 0.
func (s *Series) Mean(end time.Duration) float64 {
	if len(s.T) == 0 {
		return 0
	}
	var area float64
	for i := 0; i < len(s.T); i++ {
		t0 := s.T[i]
		t1 := end
		if i+1 < len(s.T) {
			t1 = s.T[i+1]
		}
		if t1 < t0 {
			t1 = t0
		}
		area += s.V[i] * (t1 - t0).Seconds()
	}
	span := (end - s.T[0]).Seconds()
	if span <= 0 {
		return 0
	}
	return area / span
}

// LoadLevel converts job records into a "busy processors over time" step
// series: at each start event the level rises by the job's processor count,
// at each stop it falls. This reproduces the Fig. 13 load-level plot.
func LoadLevel(jobs []JobRecord) *Series {
	type edge struct {
		t     time.Duration
		delta int
	}
	edges := make([]edge, 0, 2*len(jobs))
	for _, j := range jobs {
		edges = append(edges, edge{j.Start, j.Procs}, edge{j.Stop, -j.Procs})
	}
	sort.Slice(edges, func(i, k int) bool {
		if edges[i].t != edges[k].t {
			return edges[i].t < edges[k].t
		}
		// Process stops before starts at the same instant so the peak is not
		// overstated.
		return edges[i].delta < edges[k].delta
	})
	s := &Series{}
	level := 0
	for i := 0; i < len(edges); {
		t := edges[i].t
		for i < len(edges) && edges[i].t == t {
			level += edges[i].delta
			i++
		}
		s.T = append(s.T, t)
		s.V = append(s.V, float64(level))
	}
	return s
}

// Histogram is a fixed-width bucket histogram over float64 samples.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
	N      int
	sum    float64
	sumsq  float64
	min    float64
	max    float64
}

// NewHistogram creates a histogram with nbuckets equal-width buckets over
// [lo, hi). It panics if nbuckets <= 0 or hi <= lo, which indicate
// programming errors rather than data errors.
func NewHistogram(lo, hi float64, nbuckets int) *Histogram {
	if nbuckets <= 0 {
		panic("metrics: NewHistogram nbuckets must be positive")
	}
	if hi <= lo {
		panic("metrics: NewHistogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbuckets),
		min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.N++
	h.sum += x
	h.sumsq += x * x
	if x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		w := (h.Hi - h.Lo) / float64(len(h.Counts))
		i := int((x - h.Lo) / w)
		if i >= len(h.Counts) { // guard float rounding at the upper edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.sum / float64(h.N)
}

// Stddev returns the population standard deviation, or 0 with <2 samples.
func (h *Histogram) Stddev() float64 {
	if h.N < 2 {
		return 0
	}
	m := h.Mean()
	v := h.sumsq/float64(h.N) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	if h.N == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if h.N == 0 {
		return 0
	}
	return h.max
}

// BucketLo returns the lower edge of bucket i.
func (h *Histogram) BucketLo(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w
}

// String renders the histogram as rows of "lo..hi count", one per bucket,
// suitable for the jets-bench text harness.
func (h *Histogram) String() string {
	var b strings.Builder
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		fmt.Fprintf(&b, "%8.1f..%-8.1f %d\n", h.BucketLo(i), h.BucketLo(i)+w, c)
	}
	return b.String()
}

// Quantile returns the q-quantile (0 <= q <= 1) of a sample slice. The input
// is not modified. Empty input reports 0.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// Summary aggregates job records into the figures the harness prints.
type Summary struct {
	Jobs        int
	Procs       int // total busy proc count summed over jobs
	MeanRun     time.Duration
	Makespan    time.Duration
	Utilization float64
	Rate        float64 // jobs per second over the makespan
}

// Summarize computes a Summary for a batch run on an allocation of the given
// processor count. Makespan is measured from the earliest start to the
// latest stop.
func Summarize(jobs []JobRecord, allocation int) Summary {
	var s Summary
	if len(jobs) == 0 {
		return s
	}
	first := jobs[0].Start
	last := jobs[0].Stop
	var totalRun time.Duration
	for _, j := range jobs {
		if j.Start < first {
			first = j.Start
		}
		if j.Stop > last {
			last = j.Stop
		}
		totalRun += j.Duration()
		s.Procs += j.Procs
	}
	s.Jobs = len(jobs)
	s.MeanRun = totalRun / time.Duration(len(jobs))
	s.Makespan = last - first
	s.Utilization = WeightedUtilization(jobs, allocation, s.Makespan)
	if s.Makespan > 0 {
		s.Rate = float64(s.Jobs) / s.Makespan.Seconds()
	}
	return s
}

package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestUtilizationEq1(t *testing.T) {
	// Eq (1): duration*jobs*n / (alloc*time).
	// 10s jobs, 20 jobs, 4 procs each, on 8 procs for 100s: 10*20*4/(8*100)=1.0
	u := Utilization(10*time.Second, 20, 4, 8, 100*time.Second)
	if u != 1.0 {
		t.Fatalf("got %v want 1.0", u)
	}
	u = Utilization(10*time.Second, 10, 4, 8, 100*time.Second)
	if math.Abs(u-0.5) > 1e-12 {
		t.Fatalf("got %v want 0.5", u)
	}
}

func TestUtilizationClampsAndGuards(t *testing.T) {
	if u := Utilization(time.Second, 1000, 1000, 1, time.Second); u != 1 {
		t.Errorf("over-unity not clamped: %v", u)
	}
	if u := Utilization(time.Second, 1, 1, 0, time.Second); u != 0 {
		t.Errorf("zero allocation: %v", u)
	}
	if u := Utilization(time.Second, 1, 1, 1, 0); u != 0 {
		t.Errorf("zero total: %v", u)
	}
}

func TestWeightedUtilization(t *testing.T) {
	jobs := []JobRecord{
		{Procs: 4, Start: 0, Stop: 10 * time.Second},
		{Procs: 2, Start: 0, Stop: 5 * time.Second},
	}
	// busy = 40 + 10 = 50 proc-s; held = 10 procs * 10 s = 100
	u := WeightedUtilization(jobs, 10, 10*time.Second)
	if math.Abs(u-0.5) > 1e-12 {
		t.Fatalf("got %v want 0.5", u)
	}
}

func TestJobRecordDuration(t *testing.T) {
	j := JobRecord{Start: 5 * time.Second, Stop: 3 * time.Second}
	if d := j.Duration(); d != 0 {
		t.Fatalf("inverted record should report 0, got %v", d)
	}
}

func TestLoadLevel(t *testing.T) {
	jobs := []JobRecord{
		{Procs: 4, Start: 0, Stop: 10 * time.Second},
		{Procs: 4, Start: 5 * time.Second, Stop: 15 * time.Second},
	}
	s := LoadLevel(jobs)
	if got := s.At(1 * time.Second); got != 4 {
		t.Errorf("t=1s: got %v want 4", got)
	}
	if got := s.At(7 * time.Second); got != 8 {
		t.Errorf("t=7s: got %v want 8", got)
	}
	if got := s.At(12 * time.Second); got != 4 {
		t.Errorf("t=12s: got %v want 4", got)
	}
	if got := s.At(20 * time.Second); got != 0 {
		t.Errorf("t=20s: got %v want 0", got)
	}
	if got := s.Max(); got != 8 {
		t.Errorf("max: got %v want 8", got)
	}
}

func TestLoadLevelStopBeforeStartAtSameInstant(t *testing.T) {
	jobs := []JobRecord{
		{Procs: 4, Start: 0, Stop: 10 * time.Second},
		{Procs: 4, Start: 10 * time.Second, Stop: 20 * time.Second},
	}
	s := LoadLevel(jobs)
	// At t=10s the stop is applied before the start, so the level never
	// exceeds 4.
	if got := s.Max(); got != 4 {
		t.Fatalf("max: got %v want 4", got)
	}
}

func TestSeriesAtBeforeFirst(t *testing.T) {
	s := &Series{T: []time.Duration{time.Second}, V: []float64{7}}
	if got := s.At(0); got != 0 {
		t.Fatalf("before first point: got %v want 0", got)
	}
}

func TestSeriesMean(t *testing.T) {
	s := &Series{
		T: []time.Duration{0, 10 * time.Second},
		V: []float64{4, 0},
	}
	// 4 for 10s then 0 for 10s => mean 2 over 20s
	if got := s.Mean(20 * time.Second); math.Abs(got-2) > 1e-12 {
		t.Fatalf("got %v want 2", got)
	}
}

func TestSeriesMeanEmpty(t *testing.T) {
	s := &Series{}
	if got := s.Mean(time.Second); got != 0 {
		t.Fatalf("got %v want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(100, 160, 6)
	for _, x := range []float64{100, 105, 110, 119.9, 120, 159, 160, 99, 50} {
		h.Add(x)
	}
	if h.N != 9 {
		t.Fatalf("N=%d", h.N)
	}
	if h.Counts[0] != 2 { // 100..110 -> 100,105
		t.Errorf("bucket0=%d want 2", h.Counts[0])
	}
	if h.Counts[1] != 2 { // 110..120 -> 110,119.9
		t.Errorf("bucket1=%d want 2", h.Counts[1])
	}
	if h.Under != 2 || h.Over != 1 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Min() != 50 || h.Max() != 160 {
		t.Errorf("min=%v max=%v", h.Min(), h.Max())
	}
}

func TestHistogramUpperEdgeRounding(t *testing.T) {
	h := NewHistogram(0, 0.3, 3)
	h.Add(0.3 - 1e-16) // float rounding can index past the last bucket
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total+h.Over != 1 {
		t.Fatalf("sample lost: counts=%v over=%d", h.Counts, h.Over)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, tc := range []struct {
		lo, hi float64
		n      int
	}{{0, 1, 0}, {1, 1, 4}, {2, 1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) did not panic", tc.lo, tc.hi, tc.n)
				}
			}()
			NewHistogram(tc.lo, tc.hi, tc.n)
		}()
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{2, 4, 6, 8} {
		h.Add(x)
	}
	if m := h.Mean(); math.Abs(m-5) > 1e-12 {
		t.Errorf("mean=%v", m)
	}
	if sd := h.Stddev(); math.Abs(sd-math.Sqrt(5)) > 1e-9 {
		t.Errorf("stddev=%v want %v", sd, math.Sqrt(5))
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if q := Quantile(s, 0); q != 1 {
		t.Errorf("q0=%v", q)
	}
	if q := Quantile(s, 1); q != 5 {
		t.Errorf("q1=%v", q)
	}
	if q := Quantile(s, 0.5); q != 3 {
		t.Errorf("q0.5=%v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Errorf("empty=%v", q)
	}
	// input must not be reordered
	s2 := []float64{5, 1, 3}
	Quantile(s2, 0.5)
	if s2[0] != 5 || s2[1] != 1 || s2[2] != 3 {
		t.Errorf("input mutated: %v", s2)
	}
}

func TestSummarize(t *testing.T) {
	jobs := []JobRecord{
		{Procs: 4, Start: 0, Stop: 10 * time.Second},
		{Procs: 4, Start: 2 * time.Second, Stop: 12 * time.Second},
	}
	s := Summarize(jobs, 8)
	if s.Jobs != 2 || s.Procs != 8 {
		t.Errorf("jobs=%d procs=%d", s.Jobs, s.Procs)
	}
	if s.Makespan != 12*time.Second {
		t.Errorf("makespan=%v", s.Makespan)
	}
	if s.MeanRun != 10*time.Second {
		t.Errorf("meanrun=%v", s.MeanRun)
	}
	// busy = 80 proc-s over 8*12 = 96 proc-s
	if math.Abs(s.Utilization-80.0/96.0) > 1e-12 {
		t.Errorf("util=%v", s.Utilization)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 8)
	if s.Jobs != 0 || s.Utilization != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

// Property: utilization is always in [0,1] for arbitrary inputs.
func TestUtilizationRangeProperty(t *testing.T) {
	f := func(durMS uint16, jobs, n uint8, alloc uint8, totalMS uint16) bool {
		u := Utilization(time.Duration(durMS)*time.Millisecond, int(jobs), int(n),
			int(alloc), time.Duration(totalMS)*time.Millisecond)
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LoadLevel never goes negative and ends at zero for well-formed
// records.
func TestLoadLevelProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var jobs []JobRecord
		for i := 0; i+2 < len(raw); i += 3 {
			start := time.Duration(raw[i]) * time.Millisecond
			dur := time.Duration(raw[i+1]%1000) * time.Millisecond
			procs := int(raw[i+2]%16) + 1
			jobs = append(jobs, JobRecord{Procs: procs, Start: start, Stop: start + dur})
		}
		s := LoadLevel(jobs)
		for _, v := range s.V {
			if v < 0 {
				return false
			}
		}
		if len(s.V) > 0 && s.V[len(s.V)-1] != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if math.IsNaN(qa) || math.IsNaN(qb) {
			return true
		}
		lo, hi := qa, qb
		if lo > hi {
			lo, hi = hi, lo
		}
		return Quantile(xs, lo) <= Quantile(xs, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

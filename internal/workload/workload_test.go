package workload

import (
	"context"
	"testing"
	"time"

	"jets/internal/core"
	"jets/internal/dispatch"
	"jets/internal/hydra"
)

func TestSequentialBatch(t *testing.T) {
	jobs := SequentialBatch(10)
	if len(jobs) != 10 {
		t.Fatalf("len=%d", len(jobs))
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if j.Type != dispatch.Sequential || j.Spec.NProcs != 1 || j.Spec.Cmd != NoopApp {
			t.Fatalf("job %+v", j)
		}
		if seen[j.Spec.JobID] {
			t.Fatalf("dup id %s", j.Spec.JobID)
		}
		seen[j.Spec.JobID] = true
	}
}

func TestMPIBatchShape(t *testing.T) {
	jobs := MPIBatch(5, 4, 250*time.Millisecond)
	if len(jobs) != 5 {
		t.Fatalf("len=%d", len(jobs))
	}
	for _, j := range jobs {
		if j.Type != dispatch.MPI || j.Spec.NProcs != 4 {
			t.Fatalf("job %+v", j)
		}
		if j.Spec.Args[0] != "250" {
			t.Fatalf("args %v", j.Spec.Args)
		}
	}
}

func TestNAMDBatchSizing(t *testing.T) {
	// 256 nodes, 6 jobs/node, 4-proc jobs => 384 jobs (the paper's batch
	// construction for Fig. 12).
	jobs := NAMDBatch(256, 6, 4, 1000, 10, 0.01, 1)
	if len(jobs) != 384 {
		t.Fatalf("len=%d want 384", len(jobs))
	}
}

func TestDurationsDeterministic(t *testing.T) {
	a := Durations(50, 9)
	b := Durations(50, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	for _, d := range a {
		if d < 100*time.Second || d > 166*time.Second {
			t.Fatalf("duration %v outside Fig 11 range", d)
		}
	}
}

// TestWorkloadAppsEndToEnd drives all three synthetic apps through a real
// engine.
func TestWorkloadAppsEndToEnd(t *testing.T) {
	runner := hydra.NewFuncRunner()
	RegisterApps(runner)
	eng, err := core.NewEngine(core.Options{LocalWorkers: 4, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	jobs := SequentialBatch(8)
	jobs = append(jobs, MPIBatch(3, 2, 10*time.Millisecond)...)
	jobs = append(jobs, dispatch.Job{
		Spec: hydra.JobSpec{JobID: "synth", NProcs: 4, Cmd: SyntheApp, Args: []string{"5"}},
		Type: dispatch.MPI,
	})
	rep, err := eng.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 0 {
		for _, r := range rep.Results {
			if r.Failed {
				t.Logf("failed: %+v", r)
			}
		}
		t.Fatalf("failed=%d", rep.Failed())
	}
}

func TestBarrierAppBadArgs(t *testing.T) {
	runner := hydra.NewFuncRunner()
	RegisterApps(runner)
	eng, err := core.NewEngine(core.Options{LocalWorkers: 1, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	h, err := eng.Submit(dispatch.Job{
		Spec: hydra.JobSpec{JobID: "bad", NProcs: 1, Cmd: BarrierApp, Args: []string{"not-a-number"}},
		Type: dispatch.MPI,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Wait(); !res.Failed {
		t.Fatal("bad duration accepted")
	}
}

// Package workload generates the benchmark task batches of the paper's
// evaluation: no-op sequential tasks (Fig. 6), the barrier-sleep-barrier MPI
// app (Figs. 7, 9, 15), and NAMD-like batches (Figs. 11-13). It also
// registers the corresponding in-process applications with a FuncRunner.
package workload

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"time"

	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/mpi"
	"jets/internal/namd"
)

// App names registered by RegisterApps.
const (
	NoopApp    = "noop"         // exits immediately (Fig. 6 sequential test)
	BarrierApp = "barrier-wait" // barrier, sleep <ms>, barrier (Figs. 7/9)
	SyntheApp  = "synthetic"    // barrier, sleep, write rank file, barrier (Fig. 15)
)

// RegisterApps installs the synthetic benchmark applications.
func RegisterApps(runner *hydra.FuncRunner) {
	runner.Register(NoopApp, func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	runner.Register(BarrierApp, barrierWait)
	runner.Register(SyntheApp, synthetic)
}

// barrierWait is the paper's benchmark MPI app (§6.1.2): "starts up,
// performs an MPI barrier on all processes, waits for a given time, performs
// a second MPI barrier, and exits." Arg 0 is the wait in milliseconds.
func barrierWait(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
	waitMS := 1000
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 0 {
			fmt.Fprintf(stdout, "barrier-wait: bad duration %q\n", args[0])
			return 2
		}
		waitMS = v
	}
	comm, err := mpi.InitEnvFrom(env)
	if err != nil {
		fmt.Fprintf(stdout, "barrier-wait: init: %v\n", err)
		return 1
	}
	defer comm.Close()
	if err := comm.Barrier(); err != nil {
		return 1
	}
	select {
	case <-time.After(time.Duration(waitMS) * time.Millisecond):
	case <-ctx.Done():
		return 1
	}
	if err := comm.Barrier(); err != nil {
		return 1
	}
	return 0
}

// synthetic is the §6.2.1 task: barrier, sleep, each process "creates and/or
// writes its MPI rank to a single output file", barrier, exit. The write is
// reported on stdout so the harness can observe it without a shared
// filesystem.
func synthetic(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
	waitMS := 1000
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 0 {
			return 2
		}
		waitMS = v
	}
	comm, err := mpi.InitEnvFrom(env)
	if err != nil {
		return 1
	}
	defer comm.Close()
	if err := comm.Barrier(); err != nil {
		return 1
	}
	select {
	case <-time.After(time.Duration(waitMS) * time.Millisecond):
	case <-ctx.Done():
		return 1
	}
	fmt.Fprintf(stdout, "rank %d\n", comm.Rank())
	if err := comm.Barrier(); err != nil {
		return 1
	}
	return 0
}

// SequentialBatch builds n no-op sequential jobs (Fig. 6 workload).
func SequentialBatch(n int) []dispatch.Job {
	jobs := make([]dispatch.Job, n)
	for i := range jobs {
		jobs[i] = dispatch.Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("noop%d", i), NProcs: 1, Cmd: NoopApp},
			Type: dispatch.Sequential,
		}
	}
	return jobs
}

// MPIBatch builds count barrier-wait jobs of nprocs processes each, with the
// given wait duration (the Figs. 7/9 workload).
func MPIBatch(count, nprocs int, wait time.Duration) []dispatch.Job {
	jobs := make([]dispatch.Job, count)
	ms := fmt.Sprint(int(wait / time.Millisecond))
	for i := range jobs {
		jobs[i] = dispatch.Job{
			Spec: hydra.JobSpec{
				JobID:  fmt.Sprintf("mpi%dx%d-%d", nprocs, int(wait/time.Millisecond), i),
				NProcs: nprocs,
				Cmd:    BarrierApp,
				Args:   []string{ms},
			},
			Type: dispatch.MPI,
		}
	}
	return jobs
}

// NAMDBatch builds the §6.1.6 workload: a round-robin batch of NAMD segment
// jobs "that would require jobsPerNode executions per node on average" for
// the given allocation, each on procs nodes.
func NAMDBatch(allocation, jobsPerNode, procs, atoms, steps int, scale float64, seed int64) []dispatch.Job {
	count := allocation * jobsPerNode / procs
	jobs := make([]dispatch.Job, count)
	for i := range jobs {
		jobs[i] = dispatch.Job{
			Spec: hydra.JobSpec{
				JobID:  fmt.Sprintf("namd-%d", i),
				NProcs: procs,
				Cmd:    namd.AppName,
				Args: []string{
					"-atoms", fmt.Sprint(atoms),
					"-steps", fmt.Sprint(steps),
					"-seed", fmt.Sprint(seed + int64(i)),
					"-scale", fmt.Sprintf("%.6f", scale),
				},
			},
			Type: dispatch.MPI,
		}
	}
	return jobs
}

// Durations draws n wall times from the Fig. 11 NAMD distribution.
func Durations(n int, seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = namd.SampleWallTime(rng)
	}
	return out
}

package dataflow

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNewFutures(t *testing.T) {
	names := []string{"a", "b", "c"}
	futs := NewFutures(names)
	if len(futs) != 3 {
		t.Fatalf("got %d futures", len(futs))
	}
	for i, f := range futs {
		if f.Name() != names[i] {
			t.Fatalf("future %d named %q", i, f.Name())
		}
		if f.IsSet() {
			t.Fatalf("future %q born set", f.Name())
		}
	}
	// Futures are independent despite the shared backing allocation.
	if err := futs[1].Set(7); err != nil {
		t.Fatal(err)
	}
	if futs[0].IsSet() || futs[2].IsSet() {
		t.Fatal("setting one future leaked into a sibling")
	}
	v, err := futs[1].Get(context.Background())
	if err != nil || v != 7 {
		t.Fatalf("got %v, %v", v, err)
	}
}

func TestEngineHoldBlocksWait(t *testing.T) {
	eng := NewEngine(context.Background())
	release := eng.Hold()
	done := make(chan error, 1)
	go func() { done <- eng.Wait() }()
	select {
	case <-done:
		t.Fatal("Wait returned while a hold was outstanding")
	case <-time.After(50 * time.Millisecond):
	}
	release(nil)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait never returned after release")
	}
}

func TestEngineHoldReleaseError(t *testing.T) {
	eng := NewEngine(context.Background())
	release := eng.Hold()
	boom := errors.New("boom")
	release(boom)
	// Releasing twice must be a no-op, not a WaitGroup underflow.
	release(nil)
	if err := eng.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait() = %v, want %v", err, boom)
	}
}

func TestEngineFail(t *testing.T) {
	eng := NewEngine(context.Background())
	boom := errors.New("boom")
	eng.Fail(boom)
	eng.Fail(errors.New("second error loses"))
	eng.Fail(nil) // no-op
	if err := eng.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait() = %v, want first failure %v", err, boom)
	}
	select {
	case <-eng.Context().Done():
	default:
		t.Fatal("Fail did not cancel the engine context")
	}
}

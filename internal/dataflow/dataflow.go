// Package dataflow provides the single-assignment variables under the
// mini-Swift interpreter (internal/swiftlang). Swift semantics: every
// variable is a future that is written exactly once; statements execute
// concurrently, limited only by data dependencies; reading an unset variable
// blocks until some other statement sets it.
package dataflow

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrAlreadySet is returned when a single-assignment variable is written
// twice — in Swift this is a program error.
var ErrAlreadySet = errors.New("dataflow: variable already set")

// Future is a single-assignment cell.
type Future struct {
	mu   sync.Mutex
	done chan struct{}
	val  interface{}
	set  bool
	name string
}

// NewFuture creates an unset future; name is used in error messages.
func NewFuture(name string) *Future {
	return &Future{done: make(chan struct{}), name: name}
}

// Name returns the future's diagnostic name.
func (f *Future) Name() string { return f.name }

// NewFutures creates one unset future per name in a single backing
// allocation — the bulk form of NewFuture. Compiled frames materialize every
// future-backed slot of a block at once, so per-future allocations dominate
// frame setup in tight foreach loops without this.
func NewFutures(names []string) []*Future {
	backing := make([]Future, len(names))
	futs := make([]*Future, len(names))
	for i, n := range names {
		backing[i].done = make(chan struct{})
		backing[i].name = n
		futs[i] = &backing[i]
	}
	return futs
}

// Set writes the value, waking all readers. Setting twice fails.
func (f *Future) Set(v interface{}) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.set {
		return fmt.Errorf("%w: %s", ErrAlreadySet, f.name)
	}
	f.val = v
	f.set = true
	close(f.done)
	return nil
}

// Get blocks until the value is set or ctx ends.
func (f *Future) Get(ctx context.Context) (interface{}, error) {
	select {
	case <-f.done:
		return f.val, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("dataflow: waiting for %s: %w", f.name, ctx.Err())
	}
}

// TryGet returns the value if already set.
func (f *Future) TryGet() (interface{}, bool) {
	select {
	case <-f.done:
		return f.val, true
	default:
		return nil, false
	}
}

// IsSet reports whether the future has been written.
func (f *Future) IsSet() bool {
	_, ok := f.TryGet()
	return ok
}

// Array is a sparse single-assignment array: each element is itself a
// future, created on first reference (Swift's open arrays). An array is
// "closed" when no more writes will occur; readers of the whole array block
// until closure.
type Array struct {
	mu     sync.Mutex
	elems  map[int]*Future
	closed chan struct{}
	once   sync.Once
	name   string
}

// NewArray creates an open array.
func NewArray(name string) *Array {
	return &Array{elems: make(map[int]*Future), closed: make(chan struct{}), name: name}
}

// Name returns the array's diagnostic name.
func (a *Array) Name() string { return a.name }

// Elem returns (creating if needed) the future for index i.
func (a *Array) Elem(i int) *Future {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, ok := a.elems[i]
	if !ok {
		f = NewFuture(fmt.Sprintf("%s[%d]", a.name, i))
		a.elems[i] = f
	}
	return f
}

// Close marks the array complete; idempotent.
func (a *Array) Close() { a.once.Do(func() { close(a.closed) }) }

// Closed reports whether the array is closed.
func (a *Array) Closed() bool {
	select {
	case <-a.closed:
		return true
	default:
		return false
	}
}

// Wait blocks until the array is closed, then returns the sorted indices of
// set elements.
func (a *Array) Wait(ctx context.Context) ([]int, error) {
	select {
	case <-a.closed:
	case <-ctx.Done():
		return nil, fmt.Errorf("dataflow: waiting for array %s: %w", a.name, ctx.Err())
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	idx := make([]int, 0, len(a.elems))
	for i, f := range a.elems {
		if f.IsSet() {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	return idx, nil
}

// Len reports the number of referenced elements (set or pending).
func (a *Array) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.elems)
}

// Engine tracks the concurrent statements of one dataflow program run: a
// wait group plus first-error capture with cancellation.
type Engine struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewEngine creates an engine under the parent context.
func NewEngine(parent context.Context) *Engine {
	ctx, cancel := context.WithCancel(parent)
	return &Engine{ctx: ctx, cancel: cancel}
}

// Context returns the engine's cancellation context.
func (e *Engine) Context() context.Context { return e.ctx }

// Go runs fn concurrently; a returned error (other than the cancellation
// it caused) is recorded and cancels the whole run.
func (e *Engine) Go(fn func(ctx context.Context) error) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		if err := fn(e.ctx); err != nil {
			e.fail(err)
		}
	}()
}

func (e *Engine) fail(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
		e.cancel()
	}
	e.mu.Unlock()
}

// Fail records err as the run's failure (first error wins) and cancels the
// engine, exactly as an error returned from Go would. It lets callers that
// execute statements inline — outside Go — report into the same funnel.
func (e *Engine) Fail(err error) {
	if err != nil {
		e.fail(err)
	}
}

// Hold registers one external in-flight operation with the engine — e.g. a
// batched task submission whose completion arrives on an executor thread —
// and returns a release function reporting its outcome. Wait blocks until
// every hold is released. Calls to release beyond the first are no-ops.
func (e *Engine) Hold() func(error) {
	e.wg.Add(1)
	var once sync.Once
	return func(err error) {
		once.Do(func() {
			if err != nil {
				e.fail(err)
			}
			e.wg.Done()
		})
	}
}

// Wait blocks until all statements finish and returns the first error.
func (e *Engine) Wait() error {
	e.wg.Wait()
	e.cancel()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

package dataflow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestFutureSetGet(t *testing.T) {
	f := NewFuture("x")
	if f.IsSet() {
		t.Fatal("new future set")
	}
	done := make(chan interface{}, 1)
	go func() {
		v, err := f.Get(context.Background())
		if err != nil {
			t.Error(err)
		}
		done <- v
	}()
	if err := f.Set(42); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != 42 {
			t.Fatalf("got %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader never woke")
	}
}

func TestFutureDoubleSet(t *testing.T) {
	f := NewFuture("x")
	f.Set(1)
	if err := f.Set(2); !errors.Is(err, ErrAlreadySet) {
		t.Fatalf("got %v", err)
	}
	if v, _ := f.TryGet(); v != 1 {
		t.Fatalf("second set overwrote: %v", v)
	}
}

func TestFutureGetCancel(t *testing.T) {
	f := NewFuture("x")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := f.Get(ctx); err == nil {
		t.Fatal("want context error")
	}
}

func TestFutureManyReaders(t *testing.T) {
	f := NewFuture("x")
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := f.Get(context.Background())
			if err != nil || v != "v" {
				errs <- fmt.Errorf("v=%v err=%v", v, err)
			}
		}()
	}
	f.Set("v")
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestArrayElemIdentity(t *testing.T) {
	a := NewArray("a")
	if a.Elem(3) != a.Elem(3) {
		t.Fatal("Elem not stable")
	}
	if a.Len() != 1 {
		t.Fatalf("len=%d", a.Len())
	}
}

func TestArrayWaitAfterClose(t *testing.T) {
	a := NewArray("a")
	a.Elem(2).Set("x")
	a.Elem(0).Set("y")
	a.Elem(5) // referenced, never set
	a.Close()
	a.Close() // idempotent
	idx, err := a.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Fatalf("idx=%v", idx)
	}
	if !a.Closed() {
		t.Fatal("not closed")
	}
}

func TestArrayWaitBlocksUntilClose(t *testing.T) {
	a := NewArray("a")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Wait(ctx); err == nil {
		t.Fatal("wait returned before close")
	}
}

func TestEngineCollectsFirstError(t *testing.T) {
	e := NewEngine(context.Background())
	boom := errors.New("boom")
	e.Go(func(ctx context.Context) error { return boom })
	e.Go(func(ctx context.Context) error {
		<-ctx.Done() // must be cancelled by the failure
		return ctx.Err()
	})
	if err := e.Wait(); !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
}

func TestEngineSuccess(t *testing.T) {
	e := NewEngine(context.Background())
	var n sync.WaitGroup
	count := 0
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		n.Add(1)
		e.Go(func(ctx context.Context) error {
			defer n.Done()
			mu.Lock()
			count++
			mu.Unlock()
			return nil
		})
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if count != 20 {
		t.Fatalf("count=%d", count)
	}
}

// TestDataflowDiamond wires the classic diamond dependency a -> (b, c) -> d
// through futures and engine statements declared in arbitrary order.
func TestDataflowDiamond(t *testing.T) {
	a, b, c, d := NewFuture("a"), NewFuture("b"), NewFuture("c"), NewFuture("d")
	e := NewEngine(context.Background())
	// Declare d's statement first: dependencies alone must order execution.
	e.Go(func(ctx context.Context) error {
		bv, err := b.Get(ctx)
		if err != nil {
			return err
		}
		cv, err := c.Get(ctx)
		if err != nil {
			return err
		}
		return d.Set(bv.(int) + cv.(int))
	})
	e.Go(func(ctx context.Context) error {
		av, err := a.Get(ctx)
		if err != nil {
			return err
		}
		return b.Set(av.(int) * 2)
	})
	e.Go(func(ctx context.Context) error {
		av, err := a.Get(ctx)
		if err != nil {
			return err
		}
		return c.Set(av.(int) + 1)
	})
	e.Go(func(ctx context.Context) error { return a.Set(10) })
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	v, _ := d.TryGet()
	if v != 31 {
		t.Fatalf("d=%v want 31", v)
	}
}

// Property: futures deliver exactly the value set, for arbitrary payloads.
func TestFutureRoundTripProperty(t *testing.T) {
	f := func(s string, i int64) bool {
		fut := NewFuture("p")
		if fut.Set([2]interface{}{s, i}) != nil {
			return false
		}
		v, err := fut.Get(context.Background())
		if err != nil {
			return false
		}
		arr := v.([2]interface{})
		return arr[0] == s && arr[1] == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent double-set never loses the first value and exactly
// one setter wins.
func TestFutureRaceProperty(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		f := NewFuture("r")
		var wins sync.Map
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if f.Set(i) == nil {
					wins.Store(i, true)
				}
			}(i)
		}
		wg.Wait()
		count := 0
		wins.Range(func(k, v interface{}) bool { count++; return true })
		if count != 1 {
			t.Fatalf("trial %d: %d winners", trial, count)
		}
	}
}

// Package worker implements the JETS pilot-job worker agent: the persistent
// process started on each compute node by the allocation scripts. A worker
// connects to the central dispatcher, registers, and then cycles through the
// paper's Fig. 4 protocol: report readiness, receive a task (a sequential
// command or one Hydra proxy of a decomposed MPI job), execute it, stream
// its output, report the result, and request more work.
//
// The worker is deliberately decomposable (architecture principle 3): it
// can run against any proto-speaking service and is used on its own as a
// benchmarking component.
package worker

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"jets/internal/hydra"
	"jets/internal/obs"
	"jets/internal/proto"
)

// Package-level instrumentation over every worker agent in the process (the
// in-process runtime hosts many). The counters work detached; RegisterMetrics
// exports them through a registry.
var (
	tasksExecutedTotal = obs.NewCounter("jets_worker_tasks_executed_total",
		"tasks executed by workers in this process")
	heartbeatsTotal = obs.NewCounter("jets_worker_heartbeats_total",
		"heartbeat frames sent by workers in this process")
	noWorkBackoffsTotal = obs.NewCounter("jets_worker_nowork_backoffs_total",
		"no-work replies answered with a backoff sleep")
)

// RegisterMetrics exports this package's worker instrumentation.
func RegisterMetrics(reg *obs.Registry) {
	reg.Register(tasksExecutedTotal, heartbeatsTotal, noWorkBackoffsTotal)
}

// Config parameterizes a worker agent.
type Config struct {
	ID    string
	Host  string
	Cores int
	Coord []int // interconnect coordinates for topology-aware grouping

	// DispatcherAddr is the TCP endpoint of the JETS service. At least one of
	// DispatcherAddr, DispatcherAddrs, or Conn must be set.
	DispatcherAddr string
	// DispatcherAddrs lists additional endpoints tried in rotation when an
	// attempt fails before reaching registration (federated deployments hand
	// every worker the full instance list). DispatcherAddr, when set, leads
	// the rotation. A worker that registered successfully stays on its
	// current endpoint across reconnects — a restarted dispatcher at the
	// same address gets its workers back — and rotates only when an endpoint
	// fails it before the registered ack.
	DispatcherAddrs []string
	// Conn, when non-nil, is a pre-established connection (in-process
	// runtime and tests).
	Conn *proto.Codec

	// Runner executes user processes; defaults to hydra.ExecRunner.
	Runner hydra.Runner

	// HeartbeatInterval between liveness reports; default 1s.
	HeartbeatInterval time.Duration

	// CacheDir is node-local storage for staged files (the paper's local
	// storage optimization). Empty disables staging.
	CacheDir string

	// DialTimeout bounds the initial connection; default 10s.
	DialTimeout time.Duration

	// NoWorkBackoff is the initial sleep after a no-work reply (dispatcher
	// draining); default 10ms, the seed's fixed poll interval. Consecutive
	// no-work replies double the sleep up to NoWorkBackoffMax; receiving real
	// work resets it.
	NoWorkBackoff time.Duration
	// NoWorkBackoffMax caps the exponential no-work backoff; default 500ms.
	NoWorkBackoffMax time.Duration

	// JSONOnly disables the binary wire fast path: the worker announces no
	// protocol version at registration and keeps speaking length-prefixed
	// JSON (the v1 seed format). Used for old-peer interop testing and for
	// A/B measurements of the codec.
	JSONOnly bool

	// Reconnect makes Run redial and re-register after a lost connection
	// instead of returning, so a pool of pilot jobs survives a dispatcher
	// restart (crash recovery): the restarted service sees the same worker
	// IDs rejoin and hands them the recovered workload. A dispatcher-ordered
	// shutdown or a context cancellation still ends Run. Ignored when Conn
	// is set — a pre-established connection cannot be redialed.
	Reconnect bool
	// ReconnectBackoff is the initial redial delay; default 250ms, doubling
	// per consecutive failure up to ReconnectBackoffMax and resetting once a
	// registration succeeds.
	ReconnectBackoff time.Duration
	// ReconnectBackoffMax caps the redial backoff; default 5s.
	ReconnectBackoffMax time.Duration
}

// Worker is one pilot-job agent.
type Worker struct {
	cfg Config

	// addrs is the dial rotation (DispatcherAddr + DispatcherAddrs); addrIdx
	// is advanced only by Run's retry loop, which owns it.
	addrs   []string
	addrIdx int

	// codec is the current connection; codecMu orders its replacement on a
	// reconnect against Kill reading it from another goroutine.
	codecMu sync.Mutex
	codec   *proto.Codec

	started    time.Time
	busy       atomic.Bool
	connected  atomic.Bool  // registered with the dispatcher and serving
	registered atomic.Bool  // this attempt reached registration (resets redial backoff)
	tasks      atomic.Int64 // tasks completed

	killOnce sync.Once
	killed   chan struct{}
}

// New creates a worker agent from cfg, applying defaults.
func New(cfg Config) (*Worker, error) {
	if cfg.ID == "" {
		return nil, errors.New("worker: empty ID")
	}
	var addrs []string
	if cfg.DispatcherAddr != "" {
		addrs = append(addrs, cfg.DispatcherAddr)
	}
	addrs = append(addrs, cfg.DispatcherAddrs...)
	if len(addrs) == 0 && cfg.Conn == nil {
		return nil, errors.New("worker: no dispatcher address or connection")
	}
	if cfg.Runner == nil {
		cfg.Runner = hydra.ExecRunner{}
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.NoWorkBackoff <= 0 {
		cfg.NoWorkBackoff = 10 * time.Millisecond
	}
	// Default the cap only when unset, then clamp it to the initial backoff:
	// an explicitly configured cap below NoWorkBackoff means "don't grow",
	// not "silently take the 500ms default".
	if cfg.NoWorkBackoffMax <= 0 {
		cfg.NoWorkBackoffMax = 500 * time.Millisecond
	}
	if cfg.NoWorkBackoffMax < cfg.NoWorkBackoff {
		cfg.NoWorkBackoffMax = cfg.NoWorkBackoff
	}
	if cfg.ReconnectBackoff <= 0 {
		cfg.ReconnectBackoff = 250 * time.Millisecond
	}
	if cfg.ReconnectBackoffMax <= 0 {
		cfg.ReconnectBackoffMax = 5 * time.Second
	}
	if cfg.ReconnectBackoffMax < cfg.ReconnectBackoff {
		cfg.ReconnectBackoffMax = cfg.ReconnectBackoff
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.Host == "" {
		cfg.Host, _ = os.Hostname()
	}
	return &Worker{cfg: cfg, addrs: addrs, killed: make(chan struct{})}, nil
}

// TasksCompleted reports how many tasks this worker has finished.
func (w *Worker) TasksCompleted() int64 { return w.tasks.Load() }

// Busy reports whether a task is currently executing.
func (w *Worker) Busy() bool { return w.busy.Load() }

// Healthy implements the /healthz contract for the worker binary: nil while
// the worker is registered with its dispatcher and serving the work cycle.
func (w *Worker) Healthy() error {
	if w.connected.Load() {
		return nil
	}
	return errors.New("worker is not connected to a dispatcher")
}

// Kill abruptly severs the worker, simulating a node failure (used by the
// fault-injection experiments, §6.1.5). A reconnecting worker stays dead:
// the redial loop observes the kill and exits.
func (w *Worker) Kill() {
	w.killOnce.Do(func() {
		close(w.killed)
		w.codecMu.Lock()
		c := w.codec
		w.codecMu.Unlock()
		if c != nil {
			c.Close()
		}
	})
}

// Run connects (if needed), registers, and serves the work cycle until the
// dispatcher shuts the worker down, the context is canceled, or the
// connection fails. A clean shutdown returns nil. With Config.Reconnect set,
// a connection failure redials with capped exponential backoff instead of
// returning, so the worker rejoins a restarted dispatcher.
func (w *Worker) Run(ctx context.Context) error {
	if !w.cfg.Reconnect || w.cfg.Conn != nil {
		return w.runOnce(ctx)
	}
	backoff := w.cfg.ReconnectBackoff
	for {
		w.registered.Store(false)
		err := w.runOnce(ctx)
		if err == nil || ctx.Err() != nil {
			return err // dispatcher-ordered shutdown or canceled context
		}
		select {
		case <-w.killed:
			return err
		default:
		}
		if w.registered.Load() {
			// The backoff resets only here, on an attempt that reached the
			// registered ack — not on dial success. A dispatcher that accepts
			// connections but refuses registration (full restart loop, wrong
			// endpoint behind a load balancer) must keep the backoff growing,
			// or a large worker pool hammers it at the initial rate forever.
			// The reset applies regardless of which address in the rotation
			// served the successful attempt.
			backoff = w.cfg.ReconnectBackoff
		} else {
			// The endpoint failed us before registration: rotate to the next
			// one. A worker that did register stays put, so a dispatcher
			// restarting at the same address gets its workers back.
			w.addrIdx++
		}
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-w.killed:
			t.Stop()
			return errors.New("worker killed")
		}
		t.Stop()
		backoff *= 2
		if backoff > w.cfg.ReconnectBackoffMax {
			backoff = w.cfg.ReconnectBackoffMax
		}
	}
}

// runOnce is one connect-register-serve cycle.
func (w *Worker) runOnce(ctx context.Context) error {
	codec := w.cfg.Conn
	if codec == nil {
		addr := w.addrs[w.addrIdx%len(w.addrs)]
		var err error
		codec, err = proto.Dial(addr, w.cfg.DialTimeout)
		if err != nil {
			return fmt.Errorf("worker %s: dial %s: %w", w.cfg.ID, addr, err)
		}
	}
	w.codecMu.Lock()
	w.codec = codec
	w.codecMu.Unlock()
	defer codec.Close()
	w.started = time.Now()

	// Unblock any pending Recv when the context ends; otherwise a canceled
	// worker would sit parked in the dispatcher forever.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			codec.Close()
		case <-w.killed:
			codec.Close()
		case <-stop:
		}
	}()

	var announce uint8
	if !w.cfg.JSONOnly {
		announce = proto.MaxVersion
	}
	if err := codec.Send(&proto.Envelope{Kind: proto.KindRegister, Proto: announce, Register: &proto.Register{
		WorkerID: w.cfg.ID, Host: w.cfg.Host, Cores: w.cfg.Cores, Coord: w.cfg.Coord,
	}}); err != nil {
		return fmt.Errorf("worker %s: register: %w", w.cfg.ID, err)
	}
	ack, err := codec.Recv()
	if err != nil {
		return fmt.Errorf("worker %s: registration ack: %w", w.cfg.ID, err)
	}
	if ack.Kind != proto.KindRegistered {
		return fmt.Errorf("worker %s: unexpected registration reply %q: %s", w.cfg.ID, ack.Kind, ack.Error)
	}
	// The dispatcher confirmed the negotiated wire version; switch our send
	// side to the binary fast path if both ends speak it (proto/binary.go).
	if !w.cfg.JSONOnly && ack.Proto >= proto.VersionBinary {
		codec.EnableBinary()
	}
	w.connected.Store(true)
	w.registered.Store(true)
	defer w.connected.Store(false)

	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	go w.heartbeatLoop(hbCtx, codec)

	// One reusable timer serves every no-work backoff in the cycle below; it
	// is created lazily (most workers never see a no-work reply) and stopped
	// on return so an armed timer never outlives the worker.
	backoff := w.cfg.NoWorkBackoff
	var backoffTimer *time.Timer
	defer func() {
		if backoffTimer != nil {
			backoffTimer.Stop()
		}
	}()

	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-w.killed:
			return errors.New("worker killed")
		default:
		}
		if err := codec.Send(&proto.Envelope{Kind: proto.KindWorkRequest}); err != nil {
			return w.runErr(err)
		}
		// The dispatcher parks work requests until a task exists, so this
		// Recv is the idle state of the pilot job.
		env, err := codec.Recv()
		if err != nil {
			return w.runErr(err)
		}
		switch env.Kind {
		case proto.KindTask:
			if env.Task == nil {
				return fmt.Errorf("worker %s: task frame without payload", w.cfg.ID)
			}
			backoff = w.cfg.NoWorkBackoff
			w.execute(ctx, env.Task)
		case proto.KindStage:
			backoff = w.cfg.NoWorkBackoff
			if err := w.stage(env.Stage); err != nil {
				codec.Send(&proto.Envelope{Kind: proto.KindError, Error: err.Error()})
			} else {
				codec.Send(&proto.Envelope{Kind: proto.KindStaged, Stage: &proto.Stage{Name: env.Stage.Name}})
			}
		case proto.KindShutdown:
			return nil
		case proto.KindNoWork:
			// Dispatcher is draining: back off before re-requesting, doubling
			// up to the cap so an idle worker polls ever more gently instead
			// of hammering a service that has nothing for it. The seed slept a
			// fixed 10ms through a fresh time.After channel per reply, leaking
			// a timer per poll and holding the poll rate at 100/s per worker.
			noWorkBackoffsTotal.Inc()
			if backoffTimer == nil {
				backoffTimer = time.NewTimer(backoff)
			} else {
				backoffTimer.Reset(backoff)
			}
			select {
			case <-backoffTimer.C:
			case <-ctx.Done():
				return ctx.Err()
			case <-w.killed:
				return errors.New("worker killed")
			}
			backoff *= 2
			if backoff > w.cfg.NoWorkBackoffMax {
				backoff = w.cfg.NoWorkBackoffMax
			}
		default:
			return fmt.Errorf("worker %s: unexpected message %q", w.cfg.ID, env.Kind)
		}
	}
}

func (w *Worker) runErr(err error) error {
	select {
	case <-w.killed:
		return errors.New("worker killed")
	default:
		return fmt.Errorf("worker %s: connection: %w", w.cfg.ID, err)
	}
}

// heartbeatLoop reports liveness on its attempt's connection. The codec is
// passed in rather than read from the Worker: a reconnect replaces w.codec,
// and a previous attempt's loop may still be winding down when it does.
func (w *Worker) heartbeatLoop(ctx context.Context, codec *proto.Codec) {
	t := time.NewTicker(w.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-w.killed:
			return
		case <-t.C:
			err := codec.Send(&proto.Envelope{Kind: proto.KindHeartbeat, Heartbeat: &proto.Heartbeat{
				WorkerID: w.cfg.ID,
				Busy:     w.busy.Load(),
				Uptime:   time.Since(w.started),
			}})
			if err != nil {
				return
			}
			heartbeatsTotal.Inc()
		}
	}
}

// outputForwarder streams task output back through the service in chunks,
// implementing the paper's application -> proxy -> mpiexec -> JETS routing.
type outputForwarder struct {
	codec  *proto.Codec
	taskID string
	stream string
}

func (f *outputForwarder) Write(p []byte) (int, error) {
	// No defensive copy: Send encodes the envelope into the codec's write
	// buffer synchronously under its lock and never retains p, so aliasing
	// the caller's buffer for the duration of the call is safe.
	err := f.codec.Send(&proto.Envelope{Kind: proto.KindOutput, Output: &proto.Output{
		TaskID: f.taskID, Stream: f.stream, Data: p,
	}})
	if err != nil {
		// Losing output must not kill the user process; swallow and drop.
		return len(p), nil
	}
	return len(p), nil
}

var _ io.Writer = (*outputForwarder)(nil)

func (w *Worker) execute(ctx context.Context, task *proto.Task) {
	w.busy.Store(true)
	defer w.busy.Store(false)

	// Expose the local cache to user processes, as the start scripts expose
	// node-local storage paths in the paper.
	if w.cfg.CacheDir != "" {
		task.Env = append(task.Env, "JETS_CACHE="+w.cfg.CacheDir)
	}

	runCtx, cancel := context.WithCancel(ctx)
	go func() {
		select {
		case <-w.killed:
			cancel()
		case <-runCtx.Done():
		}
	}()
	res := hydra.RunProxy(runCtx, task, w.cfg.Runner, &outputForwarder{codec: w.codec, taskID: task.TaskID, stream: "stdout"})
	cancel()

	w.tasks.Add(1)
	tasksExecutedTotal.Inc()
	w.codec.Send(&proto.Envelope{Kind: proto.KindResult, Result: &res})
}

func (w *Worker) stage(s *proto.Stage) error {
	if s == nil {
		return errors.New("worker: stage frame without payload")
	}
	if w.cfg.CacheDir == "" {
		return fmt.Errorf("worker %s: staging disabled (no cache dir)", w.cfg.ID)
	}
	name := s.Path
	if name == "" {
		name = s.Name
	}
	dst := filepath.Join(w.cfg.CacheDir, filepath.Clean("/"+name))
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	return os.WriteFile(dst, s.Data, 0o755)
}

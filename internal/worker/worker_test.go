package worker

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jets/internal/hydra"
	"jets/internal/proto"
)

// fakeDispatcher is a minimal proto-speaking service for driving a worker
// directly (the worker is designed to be usable as a stand-alone
// benchmarking component against any service).
type fakeDispatcher struct {
	ln    net.Listener
	conns chan *proto.Codec
}

func newFakeDispatcher(t *testing.T) *fakeDispatcher {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fd := &fakeDispatcher{ln: ln, conns: make(chan *proto.Codec, 4)}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			fd.conns <- proto.NewCodec(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return fd
}

func (fd *fakeDispatcher) addr() string { return fd.ln.Addr().String() }

// accept performs the registration handshake and returns the codec.
func (fd *fakeDispatcher) accept(t *testing.T) (*proto.Codec, *proto.Register) {
	t.Helper()
	select {
	case codec := <-fd.conns:
		env, err := codec.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if env.Kind != proto.KindRegister {
			t.Fatalf("first frame %q", env.Kind)
		}
		if err := codec.Send(&proto.Envelope{Kind: proto.KindRegistered}); err != nil {
			t.Fatal(err)
		}
		return codec, env.Register
	case <-time.After(5 * time.Second):
		t.Fatal("worker never connected")
		return nil, nil
	}
}

// drainUntil reads frames until one matches kind, failing on timeout.
func drainUntil(t *testing.T, codec *proto.Codec, kind proto.Kind) *proto.Envelope {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no %q frame", kind)
		}
		env, err := codec.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if env.Kind == kind {
			return env
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{ID: "w"}); err == nil {
		t.Error("config without endpoint accepted")
	}
	w, err := New(Config{ID: "w", DispatcherAddr: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults applied.
	if w.cfg.Cores != 1 || w.cfg.Runner == nil || w.cfg.HeartbeatInterval <= 0 {
		t.Fatalf("defaults not applied: %+v", w.cfg)
	}
}

func TestDialFailure(t *testing.T) {
	w, err := New(Config{ID: "w", DispatcherAddr: "127.0.0.1:1", DialTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(context.Background()); err == nil {
		t.Fatal("run succeeded against closed port")
	}
}

func TestRegistrationFieldsAndWorkCycle(t *testing.T) {
	fd := newFakeDispatcher(t)
	runner := hydra.NewFuncRunner()
	runner.Register("echo", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		fmt.Fprintf(stdout, "ran %s\n", args[0])
		return 0
	})
	w, err := New(Config{
		ID: "node7", Host: "h7", Cores: 4, Coord: []int{1, 2, 3},
		DispatcherAddr: fd.addr(), Runner: runner,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	codec, reg := fd.accept(t)
	defer codec.Close()
	if reg.WorkerID != "node7" || reg.Host != "h7" || reg.Cores != 4 || len(reg.Coord) != 3 {
		t.Fatalf("register %+v", reg)
	}
	// Worker must request work.
	drainUntil(t, codec, proto.KindWorkRequest)
	// Assign a task; expect output then result.
	codec.Send(&proto.Envelope{Kind: proto.KindTask, Task: &proto.Task{
		TaskID: "t1", JobID: "j1", Cmd: "echo", Args: []string{"hello"},
	}})
	sawOutput := false
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no result")
		}
		env, err := codec.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if env.Kind == proto.KindOutput && strings.Contains(string(env.Output.Data), "ran hello") {
			sawOutput = true
		}
		if env.Kind == proto.KindResult {
			if env.Result.ExitCode != 0 || env.Result.TaskID != "t1" {
				t.Fatalf("result %+v", env.Result)
			}
			break
		}
	}
	if !sawOutput {
		t.Error("task output not forwarded")
	}
	if w.TasksCompleted() != 1 {
		t.Errorf("completed=%d", w.TasksCompleted())
	}
	// Worker cycles back to requesting work.
	drainUntil(t, codec, proto.KindWorkRequest)
	// Shutdown terminates Run cleanly.
	codec.Send(&proto.Envelope{Kind: proto.KindShutdown})
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not shut down")
	}
}

func TestHeartbeatsFlow(t *testing.T) {
	fd := newFakeDispatcher(t)
	w, err := New(Config{ID: "hb", DispatcherAddr: fd.addr(),
		Runner: hydra.NewFuncRunner(), HeartbeatInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)
	codec, _ := fd.accept(t)
	defer codec.Close()
	hb := drainUntil(t, codec, proto.KindHeartbeat)
	if hb.Heartbeat.WorkerID != "hb" || hb.Heartbeat.Busy {
		t.Fatalf("heartbeat %+v", hb.Heartbeat)
	}
}

func TestStageWritesCache(t *testing.T) {
	dir := t.TempDir()
	fd := newFakeDispatcher(t)
	w, err := New(Config{ID: "c", DispatcherAddr: fd.addr(),
		Runner: hydra.NewFuncRunner(), CacheDir: dir, HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)
	codec, _ := fd.accept(t)
	defer codec.Close()
	drainUntil(t, codec, proto.KindWorkRequest)
	codec.Send(&proto.Envelope{Kind: proto.KindStage, Stage: &proto.Stage{
		Name: "lib/app.so", Data: []byte("bits"),
	}})
	ack := drainUntil(t, codec, proto.KindStaged)
	if ack.Stage.Name != "lib/app.so" {
		t.Fatalf("ack %+v", ack.Stage)
	}
	data, err := os.ReadFile(filepath.Join(dir, "lib/app.so"))
	if err != nil || string(data) != "bits" {
		t.Fatalf("cache file: %v %q", err, data)
	}
}

func TestStagePathTraversalContained(t *testing.T) {
	dir := t.TempDir()
	fd := newFakeDispatcher(t)
	w, err := New(Config{ID: "c2", DispatcherAddr: fd.addr(),
		Runner: hydra.NewFuncRunner(), CacheDir: dir, HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)
	codec, _ := fd.accept(t)
	defer codec.Close()
	drainUntil(t, codec, proto.KindWorkRequest)
	codec.Send(&proto.Envelope{Kind: proto.KindStage, Stage: &proto.Stage{
		Name: "../../escape.txt", Data: []byte("x"),
	}})
	drainUntil(t, codec, proto.KindStaged)
	// The file must land inside the cache dir, not beside it.
	if _, err := os.Stat(filepath.Join(dir, "..", "..", "escape.txt")); err == nil {
		t.Fatal("stage escaped the cache directory")
	}
	if _, err := os.Stat(filepath.Join(dir, "escape.txt")); err != nil {
		t.Fatalf("contained file missing: %v", err)
	}
}

func TestStageWithoutCacheDirReportsError(t *testing.T) {
	fd := newFakeDispatcher(t)
	w, err := New(Config{ID: "nc", DispatcherAddr: fd.addr(),
		Runner: hydra.NewFuncRunner(), HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)
	codec, _ := fd.accept(t)
	defer codec.Close()
	drainUntil(t, codec, proto.KindWorkRequest)
	codec.Send(&proto.Envelope{Kind: proto.KindStage, Stage: &proto.Stage{Name: "f", Data: []byte("x")}})
	drainUntil(t, codec, proto.KindError)
}

func TestKillCancelsRunningTask(t *testing.T) {
	fd := newFakeDispatcher(t)
	runner := hydra.NewFuncRunner()
	started := make(chan struct{})
	runner.Register("block", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		close(started)
		<-ctx.Done()
		return 9
	})
	w, err := New(Config{ID: "k", DispatcherAddr: fd.addr(), Runner: runner,
		HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	codec, _ := fd.accept(t)
	defer codec.Close()
	drainUntil(t, codec, proto.KindWorkRequest)
	codec.Send(&proto.Envelope{Kind: proto.KindTask, Task: &proto.Task{TaskID: "t", JobID: "j", Cmd: "block"}})
	<-started
	if !w.Busy() {
		t.Error("worker not busy during task")
	}
	w.Kill()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("killed worker returned nil")
		}
		if !errors.Is(err, errors.New("worker killed")) && !strings.Contains(err.Error(), "killed") {
			t.Fatalf("err=%v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("kill did not stop the worker")
	}
}

func TestContextCancelStopsParkedWorker(t *testing.T) {
	fd := newFakeDispatcher(t)
	w, err := New(Config{ID: "p", DispatcherAddr: fd.addr(),
		Runner: hydra.NewFuncRunner(), HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	codec, _ := fd.accept(t)
	defer codec.Close()
	drainUntil(t, codec, proto.KindWorkRequest) // parked now
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unpark the worker")
	}
}

func TestNoWorkBackoffMaxDefaultsAndClamp(t *testing.T) {
	build := func(backoff, max time.Duration) Config {
		w, err := New(Config{ID: "clamp", DispatcherAddr: "127.0.0.1:1",
			Runner:        hydra.NewFuncRunner(),
			NoWorkBackoff: backoff, NoWorkBackoffMax: max})
		if err != nil {
			t.Fatal(err)
		}
		return w.cfg
	}
	// Unset: both take their documented defaults.
	cfg := build(0, 0)
	if cfg.NoWorkBackoff != 10*time.Millisecond || cfg.NoWorkBackoffMax != 500*time.Millisecond {
		t.Errorf("defaults = %v/%v, want 10ms/500ms", cfg.NoWorkBackoff, cfg.NoWorkBackoffMax)
	}
	// An explicit cap below the initial backoff means "don't grow": it is
	// clamped up to the initial value, not silently rewritten to 500ms
	// (which would make the worker back off 5x longer than configured).
	cfg = build(100*time.Millisecond, 20*time.Millisecond)
	if cfg.NoWorkBackoffMax != 100*time.Millisecond {
		t.Errorf("cap below initial: max = %v, want clamp to initial 100ms", cfg.NoWorkBackoffMax)
	}
	// A cap at or above the initial value is preserved verbatim.
	cfg = build(10*time.Millisecond, 40*time.Millisecond)
	if cfg.NoWorkBackoffMax != 40*time.Millisecond {
		t.Errorf("explicit max = %v, want 40ms untouched", cfg.NoWorkBackoffMax)
	}
}

func TestNoWorkBacksOff(t *testing.T) {
	fd := newFakeDispatcher(t)
	w, err := New(Config{ID: "nw", DispatcherAddr: fd.addr(),
		Runner: hydra.NewFuncRunner(), HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)
	codec, _ := fd.accept(t)
	defer codec.Close()
	drainUntil(t, codec, proto.KindWorkRequest)
	codec.Send(&proto.Envelope{Kind: proto.KindNoWork})
	// The worker must come back with another request.
	drainUntil(t, codec, proto.KindWorkRequest)
}

func TestNoWorkBackoffGrowsCapsAndResets(t *testing.T) {
	const initial, max = 10 * time.Millisecond, 40 * time.Millisecond
	fd := newFakeDispatcher(t)
	runner := hydra.NewFuncRunner()
	runner.Register("noop", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	w, err := New(Config{ID: "nwb", DispatcherAddr: fd.addr(),
		Runner: runner, HeartbeatInterval: time.Hour,
		NoWorkBackoff: initial, NoWorkBackoffMax: max})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)
	codec, _ := fd.accept(t)
	defer codec.Close()

	// Invariant across gap calls: the worker's current work request has been
	// consumed and it is parked in Recv. gap replies no-work and measures how
	// long the worker sleeps before its next request arrives.
	drainUntil(t, codec, proto.KindWorkRequest)
	gap := func() time.Duration {
		start := time.Now()
		codec.Send(&proto.Envelope{Kind: proto.KindNoWork})
		drainUntil(t, codec, proto.KindWorkRequest)
		return time.Since(start)
	}
	// Consecutive no-work replies: 10ms, 20ms, 40ms, 40ms (capped). Timer
	// scheduling only adds delay, so lower bounds are safe to assert; the
	// upper bound on the first gap just has to beat the cap.
	first := gap()
	if first < initial {
		t.Fatalf("first backoff %v < configured initial %v", first, initial)
	}
	var last time.Duration
	for i := 0; i < 3; i++ {
		last = gap()
	}
	// After four consecutive no-work replies the sleep must be at the cap
	// (>= 40ms), clearly above the initial 10ms.
	if last < max {
		t.Fatalf("capped backoff %v < configured max %v", last, max)
	}

	// Real work resets the backoff to the initial value: answer the parked
	// request with a task, wait for its result, re-park, and measure again.
	codec.Send(&proto.Envelope{Kind: proto.KindTask, Task: &proto.Task{
		TaskID: "t1", JobID: "j1", Cmd: "noop"}})
	drainUntil(t, codec, proto.KindResult)
	drainUntil(t, codec, proto.KindWorkRequest)
	afterReset := gap()
	if afterReset >= max {
		t.Fatalf("backoff after real work = %v, want reset toward %v", afterReset, initial)
	}
}

// TestWorkerReconnects: with Config.Reconnect, a severed connection (the
// dispatcher crashed) makes the worker redial and register again, while a
// dispatcher-ordered shutdown still ends Run cleanly.
func TestWorkerReconnects(t *testing.T) {
	fd := newFakeDispatcher(t)
	w, err := New(Config{
		ID: "rc", Cores: 1, DispatcherAddr: fd.addr(), Runner: hydra.NewFuncRunner(),
		Reconnect: true, ReconnectBackoff: 5 * time.Millisecond,
		ReconnectBackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()

	codec, reg := fd.accept(t)
	if reg.WorkerID != "rc" {
		t.Fatalf("register %+v", reg)
	}
	// Crash: sever the connection without a shutdown frame.
	codec.Close()

	// The worker must redial and re-register under the same ID.
	codec2, reg2 := fd.accept(t)
	if reg2.WorkerID != "rc" {
		t.Fatalf("re-register %+v", reg2)
	}
	drainUntil(t, codec2, proto.KindWorkRequest)
	if err := codec2.Send(&proto.Envelope{Kind: proto.KindShutdown}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run after ordered shutdown = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit on shutdown")
	}
}

// TestWorkerFailsOverToSecondaryAddr: with DispatcherAddrs, an endpoint
// that fails before registration rotates the worker to the next address in
// the list (federated deployments hand every worker the full instance
// rotation).
func TestWorkerFailsOverToSecondaryAddr(t *testing.T) {
	fd := newFakeDispatcher(t)
	w, err := New(Config{
		ID: "fo", Cores: 1,
		DispatcherAddr:  "127.0.0.1:1", // nothing listens here
		DispatcherAddrs: []string{fd.addr()},
		Runner:          hydra.NewFuncRunner(),
		DialTimeout:     200 * time.Millisecond,
		Reconnect:       true, ReconnectBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()

	codec, reg := fd.accept(t)
	if reg.WorkerID != "fo" {
		t.Fatalf("register %+v", reg)
	}
	drainUntil(t, codec, proto.KindWorkRequest)
	if err := codec.Send(&proto.Envelope{Kind: proto.KindShutdown}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run after shutdown on failover addr = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit on shutdown")
	}
}

// TestReconnectBackoffResetsOnRegisteredAckAfterFailover is the satellite-3
// regression: the redial backoff must reset when an attempt reaches the
// registered ack — even when that ack came from a *different* address than
// the one the worker first dialed (the router failover path). Before the
// fix the reset was tied to the primary endpoint, so a worker that failed
// over kept its grown backoff forever and recovered from every subsequent
// blip at the maximum delay.
//
// The test grows the backoff through six refused registrations (dial
// succeeds, registration is refused — so this is not a dial-success reset
// either), lets the worker register on the secondary address, severs the
// connection, and requires the re-register to arrive far sooner than the
// grown backoff would allow.
func TestReconnectBackoffResetsOnRegisteredAckAfterFailover(t *testing.T) {
	primary := newFakeDispatcher(t)
	secondary := newFakeDispatcher(t)
	w, err := New(Config{
		ID: "bk", Cores: 1,
		DispatcherAddr:   primary.addr(),
		DispatcherAddrs:  []string{secondary.addr()},
		Runner:           hydra.NewFuncRunner(),
		Reconnect:        true,
		ReconnectBackoff: 10 * time.Millisecond, ReconnectBackoffMax: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	// Six refusals across the rotation: backoff 10→20→40→80→160→320→640ms.
	// Attempts alternate primary/secondary, so drain whichever connects.
	for i := 0; i < 6; i++ {
		select {
		case codec := <-primary.conns:
			refuseOn(t, codec)
		case codec := <-secondary.conns:
			refuseOn(t, codec)
		case <-time.After(10 * time.Second):
			t.Fatalf("refusal %d: worker stopped dialing", i)
		}
	}

	// Now accept: the next attempt registers (on whichever address the
	// rotation is at — by construction at least one acceptance is against
	// the secondary rotation slot over this test's lifetime).
	var codec *proto.Codec
	select {
	case codec = <-primary.conns:
	case codec = <-secondary.conns:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never redialed after refusals")
	}
	if env, err := codec.Recv(); err != nil || env.Kind != proto.KindRegister {
		t.Fatalf("recv %v %v", env, err)
	}
	if err := codec.Send(&proto.Envelope{Kind: proto.KindRegistered}); err != nil {
		t.Fatal(err)
	}
	drainUntil(t, codec, proto.KindWorkRequest)

	// Sever. The registered ack above must have reset the backoff to 10ms;
	// without the fix the worker sleeps its grown 640ms before redialing.
	severed := time.Now()
	codec.Close()
	select {
	case c := <-primary.conns:
		c.Close()
	case c := <-secondary.conns:
		c.Close()
	case <-time.After(10 * time.Second):
		t.Fatal("worker never redialed after sever")
	}
	if gap := time.Since(severed); gap > 400*time.Millisecond {
		t.Fatalf("redial after registered-ack took %v; backoff did not reset", gap)
	}
}

func refuseOn(t *testing.T, codec *proto.Codec) {
	t.Helper()
	if _, err := codec.Recv(); err == nil {
		codec.Send(&proto.Envelope{Kind: proto.KindError, Error: "not accepting registrations"})
	}
	codec.Close()
}

// TestWorkerNoReconnectByDefault: without the opt-in, a severed connection
// still ends Run with an error (the seed behavior).
func TestWorkerNoReconnectByDefault(t *testing.T) {
	fd := newFakeDispatcher(t)
	w, err := New(Config{ID: "once", Cores: 1, DispatcherAddr: fd.addr(), Runner: hydra.NewFuncRunner()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	codec, _ := fd.accept(t)
	codec.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil after a severed connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("non-reconnecting worker kept running")
	}
}

package dispatch

// Tests for the durable-state PR: the live-ID duplicate check, handles
// stranded by Close, the retry-backoff zero-vs-negative contract, and the
// journal recovery path (see recovery.go and internal/journal).

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"jets/internal/hydra"
	"jets/internal/journal"
	"jets/internal/worker"
)

func seqJob(id string) Job {
	return Job{Spec: hydra.JobSpec{JobID: id, NProcs: 1, Cmd: "noop"}, Type: Sequential}
}

// TestSubmitDuplicateQueuedJobID is the regression test for the duplicate
// check that consulted only the running table: with no workers the first
// submission sits in a shard queue, so the old code accepted a second job
// under the same ID and two handles fought over one identity.
func TestSubmitDuplicateQueuedJobID(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	if _, err := d.Submit(seqJob("dup")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(seqJob("dup")); err == nil {
		t.Fatal("duplicate of a queued job accepted")
	}
	if _, err := d.SubmitBatch([]Job{seqJob("dup")}); err == nil {
		t.Fatal("SubmitBatch accepted a duplicate of a queued job")
	}
	// A rejected batch must roll back the reservations it already made.
	if _, err := d.SubmitBatch([]Job{seqJob("fresh"), seqJob("dup")}); err == nil {
		t.Fatal("batch containing a duplicate accepted")
	}
	if _, err := d.Submit(seqJob("fresh")); err != nil {
		t.Fatalf("ID from a rolled-back batch still reserved: %v", err)
	}
}

// TestSubmitDuplicateRace pins the check-and-reserve atomicity: the old code
// released d.mu between the duplicate check and placement, so two racing
// submits of one ID could both pass.
func TestSubmitDuplicateRace(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("race-%d", i)
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for k := range errs {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				_, errs[k] = d.Submit(seqJob(id))
			}(k)
		}
		wg.Wait()
		accepted := 0
		for _, err := range errs {
			if err == nil {
				accepted++
			}
		}
		if accepted != 1 {
			t.Fatalf("id %s: %d of 2 racing submits accepted, want exactly 1", id, accepted)
		}
	}
}

// TestCloseFailsQueuedHandle: a job still in a shard queue at Close used to
// leave its handle unresolved forever, leaking every goroutine parked on
// Done. It must now fail with ErrDispatcherClosed.
func TestCloseFailsQueuedHandle(t *testing.T) {
	d := New(Config{})
	h, err := d.Submit(seqJob("stranded"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan JobResult, 1)
	go func() { done <- h.Wait() }()
	d.Close()
	select {
	case res := <-done:
		if !res.Failed || res.Err != ErrDispatcherClosed.Error() {
			t.Fatalf("stranded result = %+v, want ErrDispatcherClosed failure", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued handle still unresolved after Close")
	}
}

// TestCloseFailsPendingRetryHandle: a faulted job parked in its retry-backoff
// timer when Close runs had its timer aborted via retryQuit with the handle
// left unresolved. The waiter must unblock with ErrDispatcherClosed.
func TestCloseFailsPendingRetryHandle(t *testing.T) {
	tc := startCluster(t, 1, Config{
		MaxJobRetries: 1, HeartbeatTimeout: 5 * time.Second,
		RetryBackoff: time.Minute, RetryBackoffMax: time.Minute,
	})
	faulted := make(chan struct{})
	var once sync.Once
	tc.runner.Register("victim", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		once.Do(func() {
			tc.workers[0].Kill()
			close(faulted)
		})
		<-ctx.Done()
		return 1
	})
	h, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "parked", NProcs: 1, Cmd: "victim"}, Type: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	<-faulted
	deadline := time.Now().Add(5 * time.Second)
	for tc.d.pendingRetries.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("faulted job never entered retry backoff")
		}
		time.Sleep(time.Millisecond)
	}
	tc.d.Close()
	select {
	case <-h.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("backoff-parked handle unresolved after Close")
	}
	if res := h.Wait(); !res.Failed || res.Err != ErrDispatcherClosed.Error() {
		t.Fatalf("result = %+v, want ErrDispatcherClosed failure", res)
	}
}

// TestRetryDelayZeroTreatedAsDefault pins the retryDelay contract directly
// (bypassing New's normalization): zero means the 100ms default, matching
// core.Options, and only a negative value disables the delay. The old <= 0
// test conflated the two, so a zero silently meant "no backoff".
func TestRetryDelayZeroTreatedAsDefault(t *testing.T) {
	d := &Dispatcher{cfg: Config{RetryBackoff: 0, RetryBackoffMax: 5 * time.Second}}
	if got := d.retryDelay(1); got != 100*time.Millisecond {
		t.Fatalf("retryDelay(1) with zero backoff = %v, want the 100ms default", got)
	}
	d = &Dispatcher{cfg: Config{RetryBackoff: -1}}
	if got := d.retryDelay(1); got != 0 {
		t.Fatalf("retryDelay(1) with negative backoff = %v, want 0 (disabled)", got)
	}
}

// TestJournalRecoveryLifecycle runs one workload across three dispatcher
// lives sharing a WAL directory: jobs stranded by Close in the first life
// are rebuilt in the second (where their IDs are reserved like any live
// job's), complete normally once workers arrive, and are deduped by their
// Completed records in the third.
func TestJournalRecoveryLifecycle(t *testing.T) {
	dir := t.TempDir()
	open := func() journal.Journal {
		w, err := journal.OpenWAL(journal.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	// Life 1: two jobs accepted, no workers to run them, stranded by Close.
	d1 := New(Config{Journal: open()})
	h1, err := d1.Submit(seqJob("q1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d1.SubmitBatch([]Job{seqJob("q2")}); err != nil {
		t.Fatal(err)
	}
	d1.Close()
	if res := h1.Wait(); res.Err != ErrDispatcherClosed.Error() {
		t.Fatalf("stranded result = %+v", res)
	}

	// Life 2: both jobs come back and run to completion.
	d2 := New(Config{Journal: open()})
	if err := d2.RecoveryError(); err != nil {
		t.Fatal(err)
	}
	rec := d2.RecoveredJobs()
	if len(rec) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(rec))
	}
	if rec[0].JobID() != "q1" || rec[1].JobID() != "q2" {
		t.Fatalf("recovery lost submission order: %s, %s", rec[0].JobID(), rec[1].JobID())
	}
	if _, err := d2.Submit(seqJob("q1")); err == nil {
		t.Fatal("duplicate of a recovered job accepted")
	}
	addr, err := d2.Start()
	if err != nil {
		t.Fatal(err)
	}
	runner := hydra.NewFuncRunner()
	runner.Register("noop", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w, err := worker.New(worker.Config{
			ID: fmt.Sprintf("rw%d", i), Host: "local", Cores: 1,
			DispatcherAddr: addr, Runner: runner,
			HeartbeatInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	for _, h := range rec {
		if res := h.Wait(); res.Failed {
			t.Fatalf("recovered job %s failed: %s", res.JobID, res.Err)
		}
	}
	d2.Close()
	cancel()
	wg.Wait()

	// Life 3: nothing left — the Completed records dedupe both jobs.
	d3 := New(Config{Journal: open()})
	defer d3.Close()
	if got := d3.RecoveredJobs(); len(got) != 0 {
		t.Fatalf("recovered %d jobs after completion, want 0", len(got))
	}
}

// TestJournalRecoveryResubmitAfterComplete: an ID submitted, completed, and
// resubmitted within one run appears twice in the journal's submission
// order. Recovery used to rebuild that *Job twice — placing it twice, and
// letting two completions race to close one handle's done channel (panic:
// close of closed channel). Exactly one live instance must come back.
func TestJournalRecoveryResubmitAfterComplete(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.OpenWAL(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	records := []journal.Record{
		{Kind: journal.Submitted, JobID: "re", NProcs: 1, Cmd: "noop"},
		{Kind: journal.Dispatched, JobID: "re"},
		{Kind: journal.Completed, JobID: "re"},
		{Kind: journal.Submitted, JobID: "re", NProcs: 1, Cmd: "noop"},
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := journal.OpenWAL(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	d := New(Config{Journal: w2})
	defer d.Close()
	if rec := d.RecoveredJobs(); len(rec) != 1 {
		t.Fatalf("recovered %d instances of the resubmitted job, want 1", len(rec))
	}
	if got := d.QueuedJobs(); got != 1 {
		t.Fatalf("queued after recovery = %d, want 1", got)
	}
	if got := d.stats.jobsReplayed.Load(); got != 1 {
		t.Fatalf("jobsReplayed = %d, want 1", got)
	}
}

// faultJournal wraps a Nop journal with scripted failures, for exercising
// the dispatcher's error paths without a real disk fault.
type faultJournal struct {
	journal.Nop
	appendErr error
	syncErr   error
	records   []journal.Record // replayed to the dispatcher
	compacted bool
}

func (f *faultJournal) Append(journal.Record) error { return f.appendErr }
func (f *faultJournal) Sync() error                 { return f.syncErr }
func (f *faultJournal) Compact() error              { f.compacted = true; return nil }
func (f *faultJournal) Replay(fn func(journal.Record) error) error {
	for _, r := range f.records {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// TestRecoverySyncFailureSkipsCompact: if the fsync of the re-journaled live
// set fails, the replayed segments are the only durable copy of the workload
// — Compact must not run, and the failure must be visible via RecoveryError.
func TestRecoverySyncFailureSkipsCompact(t *testing.T) {
	jnl := &faultJournal{
		syncErr: fmt.Errorf("disk full"),
		records: []journal.Record{{Kind: journal.Submitted, JobID: "j", NProcs: 1, Cmd: "noop"}},
	}
	d := New(Config{Journal: jnl})
	defer d.Close()
	if jnl.compacted {
		t.Fatal("Compact ran after Sync failed; replayed segments were the only durable copy")
	}
	if err := d.RecoveryError(); err == nil {
		t.Fatal("RecoveryError nil after re-journal fsync failure")
	}
	if rec := d.RecoveredJobs(); len(rec) != 1 {
		t.Fatalf("recovered %d jobs, want 1 (recovery itself still succeeds)", len(rec))
	}
}

// TestJournalAppendErrorCounted: a broken journal (sticky write/fsync error)
// must not silently drop records — every failed append bumps the
// JournalErrors counter exported as jets_journal_errors_total.
func TestJournalAppendErrorCounted(t *testing.T) {
	jnl := &faultJournal{appendErr: fmt.Errorf("io error")}
	d := New(Config{Journal: jnl})
	defer d.Close()
	if _, err := d.Submit(seqJob("a")); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().JournalErrors; got != 1 {
		t.Fatalf("JournalErrors after one failed append = %d, want 1", got)
	}
}

// TestJournalRecoveryRequeuesDispatched: a job with a Dispatched record but
// no Completed record was running when the process died; recovery must
// route it back through the requeue path, while completed jobs dedupe.
func TestJournalRecoveryRequeuesDispatched(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.OpenWAL(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	records := []journal.Record{
		{Kind: journal.Submitted, JobID: "ran", NProcs: 1, Cmd: "noop"},
		{Kind: journal.Dispatched, JobID: "ran"},
		{Kind: journal.Submitted, JobID: "done", NProcs: 1, Cmd: "noop"},
		{Kind: journal.Dispatched, JobID: "done"},
		{Kind: journal.Completed, JobID: "done"},
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := journal.OpenWAL(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Negative backoff: the requeue is immediate, so the job is observable
	// in a shard queue right after New.
	d := New(Config{Journal: w2, RetryBackoff: -1})
	defer d.Close()
	rec := d.RecoveredJobs()
	if len(rec) != 1 || rec[0].JobID() != "ran" {
		ids := make([]string, len(rec))
		for i, h := range rec {
			ids[i] = h.JobID()
		}
		t.Fatalf("recovered %v, want only the uncompleted job", ids)
	}
	if got := d.QueuedJobs(); got != 1 {
		t.Fatalf("queued after recovery = %d, want 1 (dispatched job requeued)", got)
	}
	if got := d.stats.jobsReplayed.Load(); got != 1 {
		t.Fatalf("jobsReplayed = %d, want 1", got)
	}
}

// Package dispatch implements the central JETS scheduler: the service that
// pilot-job workers connect to and that transforms MPI job specifications
// into sets of Hydra proxy tasks streamed to available workers (paper §5,
// Fig. 4).
//
// The dispatcher observes the paper's architecture principles: socket
// handling, request handling, and process management are separate concurrent
// stages; workers that fail or hang are disregarded automatically; and the
// component composes into the stand-alone jets tool (internal/core), the
// Coasters service (internal/coasters), or custom frameworks.
//
// Scheduling state is sharded (shard.go, steal.go): idle workers and queued
// jobs are spread over N independently locked shards keyed by worker
// coordinate plane, with sequence-arbitrated work stealing between shards.
// Dispatcher.mu guards only the worker registry, the running-job table, and
// the completed-job records.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"jets/internal/hydra"
	"jets/internal/journal"
	"jets/internal/metrics"
	"jets/internal/obs"
	"jets/internal/proto"
)

// ErrDispatcherClosed resolves the handle of any job stranded by Close — a
// job still in a shard queue, parked in a retry-backoff timer, or requeued
// after the sweep. Before it existed those handles never completed, leaking
// every goroutine parked on Done()/OnDone. With a journal configured the
// job itself is not lost: it stays live in the journal and is recovered on
// the next start.
var ErrDispatcherClosed = errors.New("dispatch: dispatcher closed")

// Config parameterizes the dispatcher.
type Config struct {
	// Addr to listen on; default "127.0.0.1:0".
	Addr string
	// Instance names this dispatcher when several share one process (and one
	// obs registry): every exported series gets an `instance="<name>"` label,
	// so a second instance no longer collides with the first's registrations
	// and silently loses its metrics. Empty keeps the unlabeled single-
	// instance series names.
	Instance string
	// HeartbeatTimeout after which a silent worker is declared dead;
	// default 10s. A worker whose connection has been silent for half this
	// long is also evicted eagerly when a new connection registers under
	// the same worker ID (reconnect after a network blip).
	HeartbeatTimeout time.Duration
	// MaxJobRetries bounds automatic resubmission of jobs that failed due
	// to worker loss (not application error); default 0.
	MaxJobRetries int
	// RetryBackoff delays each faulted job's resubmission, doubling per
	// attempt up to RetryBackoffMax. Without it a job that reliably kills
	// or faults its workers respins through the pool as fast as workers
	// rejoin — the §6.1.5 retry storm. The delay is timer-driven off the
	// dispatch path and honors Shutdown: Drain counts a backoff-pending job
	// as live, and Close aborts the timers (resolving their handles with
	// ErrDispatcherClosed). Zero means the 100ms default, consistent with
	// core.Options; only a negative value disables the delay entirely (the
	// pre-backoff immediate requeue).
	RetryBackoff time.Duration
	// RetryBackoffMax caps the per-attempt doubling; default 5s, clamped
	// up to RetryBackoff.
	RetryBackoffMax time.Duration
	// Shards is the number of scheduling shards (idle-set + job-queue
	// slices with independent locks); default DefaultShards(), i.e.
	// GOMAXPROCS-derived. Forced to 1 when Queue is set, since a single
	// policy instance cannot be split.
	Shards int
	// NewQueue constructs one queue policy per shard; default NewFIFOQueue.
	NewQueue func() QueuePolicy
	// Queue is the legacy single-instance policy knob (pre-sharding API).
	// Setting it forces Shards to 1 and uses the instance as that shard's
	// queue. Prefer NewQueue with sharding.
	Queue QueuePolicy
	// Group policy for MPI worker aggregation; default first-come-first-
	// served (the paper's policy).
	Group GroupPolicy
	// JobTimeout bounds each job's total wall time; 0 disables. MPI jobs
	// get it as the mpiexec watchdog, sequential jobs as the per-task
	// WallLimit, so a hung task cannot wedge a worker forever either way.
	JobTimeout time.Duration
	// OnOutput receives task output chunks; nil discards them.
	OnOutput func(taskID, stream string, data []byte)
	// OnOutputFrame receives each raw output frame before OnOutput, for
	// zero-copy relay to downstream connections. The frame is borrowed for
	// the duration of the call: a callee that keeps it past return (for
	// example by queueing it on a subscriber connection) must Retain it
	// first and Release after its write completes. nil disables the raw
	// path; OnOutput still sees decoded chunks either way.
	OnOutputFrame func(*proto.Frame)
	// OnEvent receives life-cycle trace events (see events.go); nil
	// disables tracing. Delivery is ordered but asynchronous.
	OnEvent func(Event)
	// WriteCoalesce is the maximum number of outbound frames each worker's
	// writer goroutine batches into one flush (one syscall) when the send
	// queue has backlog. Values <= 1 flush every frame, the seed behavior.
	// Latency is unaffected when the queue is empty: the first frame always
	// flushes as soon as no more are immediately available.
	WriteCoalesce int
	// Obs, when non-nil, exports the dispatcher's live counters, gauges,
	// and latency histograms through the registry (see instruments.go).
	// The histograms are maintained either way; export is sampling-only.
	Obs *obs.Registry
	// Journal, when non-nil, makes job state durable: accepted submissions,
	// dispatches, retries, and completions are appended to it, and New
	// replays any prior records — completed jobs are deduped, queued ones
	// rebuilt, and formerly running ones requeued through the retry path
	// (see recovery.go and internal/journal). The dispatcher takes
	// ownership and closes the journal on Close. nil keeps the seed's
	// in-memory-only behavior.
	//
	// Durability window: Submit/SubmitBatch return as soon as the Submitted
	// record is buffered; it becomes durable at the journal's next group
	// commit (the WAL's FsyncInterval, default 2 ms). A crash inside that
	// window can lose acked-but-unsynced submissions. Callers that need
	// acked-implies-durable should Sync the journal after submitting;
	// re-submitting after a crash is always safe because completed jobs
	// dedupe by ID at recovery.
	Journal journal.Journal
	// HotQueueJobs bounds the fully-hydrated jobs held in memory per
	// scheduling shard. Beyond it, newly placed jobs are spilled: the queue
	// keeps only the job's ID and scheduling metadata while the full spec is
	// persisted in a SpillStore, and a read-ahead path rehydrates specs in
	// batches as the hot window drains (spill.go). Zero means the default
	// (131072 per shard — generous enough that ordinary workloads never
	// spill); negative disables spilling entirely, restoring the unbounded
	// in-memory queue.
	HotQueueJobs int
	// SpillDir is the spill store's directory. Set it alongside Journal
	// (the engine uses <DataDir>/spill) so spilled specs survive restarts —
	// required for journal checkpoints to reference them via SpillRef
	// records. Empty uses a throwaway temp directory created on first
	// spill and removed at Close: spilling still bounds memory, but
	// checkpoints then re-journal cold specs in full.
	SpillDir string
	// CompactSegments triggers an online journal checkpoint (re-journal the
	// live state, drop older segments) whenever the journal spans more than
	// this many segment files, bounding WAL growth over a long uptime —
	// without it, segments were only compacted during restart recovery.
	// Zero means the default (8); negative disables online checkpoints.
	// Effective only when the journal implements journal.Checkpointer.
	CompactSegments int
}

// DefaultHotQueueJobs is the per-shard hot-window bound applied when
// Config.HotQueueJobs is zero.
const DefaultHotQueueJobs = 131072

// defaultCompactSegments is the checkpoint threshold applied when
// Config.CompactSegments is zero.
const defaultCompactSegments = 8

// Stats are cumulative dispatcher counters.
type Stats struct {
	JobsSubmitted   int
	JobsCompleted   int
	JobsFailed      int
	JobsRetried     int
	TasksDispatched int
	WorkersJoined   int
	WorkersLost     int
	// Steals counts jobs launched through the cross-shard multi-lock path
	// (work stealing or cross-shard MPI group assembly).
	Steals int
	// JournalErrors counts records dropped because the journal's append
	// failed with its retry buffer full: those records are gone for good,
	// so nonzero means the dispatcher lost durability for part of its
	// workload. (A transient write/fsync failure alone no longer counts —
	// the WAL buffers and retries; see Dispatcher.JournalDegraded for the
	// live signal.)
	JournalErrors int
	// JobsSpilled counts jobs whose specs were written to the spill store
	// (cold-queue tail); SpillReads counts rehydration read batches.
	JobsSpilled int
	SpillReads  int
}

// statsCounters is the lock-free internal form of Stats.
type statsCounters struct {
	jobsSubmitted   atomic.Int64
	jobsCompleted   atomic.Int64
	jobsFailed      atomic.Int64
	jobsRetried     atomic.Int64
	tasksDispatched atomic.Int64
	workersJoined   atomic.Int64
	workersLost     atomic.Int64
	steals          atomic.Int64
	jobsReplayed    atomic.Int64
	journalErrors   atomic.Int64
	jobsSpilled     atomic.Int64
	spillBytes      atomic.Int64
	spillReads      atomic.Int64
}

// outFrame is one entry in a worker's send queue: either a typed envelope
// the writer encodes, or a raw relayed frame (stage/output passthrough) the
// writer forwards byte-for-byte when the connection's encoding allows it.
type outFrame struct {
	env *proto.Envelope
	raw *proto.Frame // holds one reference owned by the queue entry
}

// workerConn is the dispatcher-side state of one pilot-job connection.
type workerConn struct {
	id    string
	reg   proto.Register
	codec *proto.Codec
	shard *shard // home scheduling shard, fixed at registration

	sendq chan outFrame
	quit  chan struct{} // closed when the worker is declared gone

	// lastSeen is the unix-nano time of the last inbound frame. It is
	// written by the connection's reader goroutine and read by the janitor
	// and the duplicate-registration eviction path without any lock, so
	// heartbeats never contend with dispatch.
	lastSeen atomic.Int64

	// gone flips once, when the worker is declared dead. Checked under the
	// shard lock by markIdle and under Dispatcher.mu by the dispatch path,
	// so a worker can never be parked or tasked after teardown began.
	gone atomic.Bool

	// tasks (taskID -> job currently on this worker) is guarded by
	// Dispatcher.mu.
	tasks map[string]*runningJob
}

// touch records inbound traffic for the janitor's liveness check.
func (wc *workerConn) touch() { wc.lastSeen.Store(time.Now().UnixNano()) }

// enqueue hands a frame to the worker's writer goroutine without blocking;
// a worker too slow to drain its queue is treated as faulty. sendq is never
// closed — the writer exits through quit — so enqueue is race-free against
// worker teardown.
func (wc *workerConn) enqueue(e *proto.Envelope) bool {
	return wc.push(outFrame{env: e})
}

// enqueueRaw queues a relayed frame for this worker, taking a reference for
// the queue entry (released by the writer after the bytes are on the wire)
// and giving it back if the queue rejects the frame.
func (wc *workerConn) enqueueRaw(f *proto.Frame) bool {
	f.Retain()
	if !wc.push(outFrame{raw: f}) {
		f.Release()
		return false
	}
	return true
}

func (wc *workerConn) push(of outFrame) bool {
	select {
	case <-wc.quit:
		return false
	default:
	}
	select {
	case wc.sendq <- of:
		return true
	default:
		return false
	}
}

// runningJob tracks one dispatched job until every rank reports.
type runningJob struct {
	job     *Job
	exec    *hydra.MPIExec // nil for sequential jobs
	pending map[string]*workerConn
	results []proto.Result
	workers []string
	failed  bool
	faulted bool // failure caused by worker loss rather than the application
	errMsg  string
	start   time.Time
}

// Dispatcher is the central JETS scheduler.
type Dispatcher struct {
	cfg   Config
	ln    net.Listener
	epoch time.Time

	shards []*shard
	subSeq atomic.Int64 // per-submit sequence numbers (FIFO/steal arbitration)
	subRR  atomic.Int64 // round-robin placement fallback

	// Lifecycle flags. draining is set first by Shutdown, before the drain
	// wait, so no Submit can slip a job in behind the drain; stopping is
	// set once the drain completes and tells newly idle workers to exit.
	draining atomic.Bool
	stopping atomic.Bool
	closed   atomic.Bool

	// subMu serializes the Submit-side draining check against Shutdown
	// setting draining: Submit holds it shared across its check-and-push,
	// Shutdown exclusively while flipping the flag, so when Shutdown's
	// drain begins no submission can still be mid-push.
	subMu sync.RWMutex

	mu      sync.Mutex
	workers map[string]*workerConn
	running map[string]*runningJob
	records []metrics.JobRecord
	staged  []proto.Stage
	// live holds every job ID the dispatcher considers in flight: queued,
	// running, or waiting in a retry backoff. Submit reserves an ID here
	// atomically with its duplicate check and the reservation is held
	// through placement, so a duplicate of a *queued* job and two racing
	// submits of one ID are both rejected (the old check consulted only the
	// running table and dropped the lock before placement).
	live map[string]struct{}
	// handles indexes the live jobs' handles by ID (same lifetime as the
	// live reservation), so a federation peer link can re-subscribe to jobs
	// this instance recovered from its journal after a restart.
	handles map[string]*Handle

	// Durable state (recovery.go): the journal, the handles of jobs
	// rebuilt from it at startup, and the first replay error if any.
	// journalLogOnce gates the one-time log line when appends start failing
	// (the count is in stats.journalErrors).
	jnl            journal.Journal
	recovered      []*Handle
	recoveryErr    error
	journalLogOnce sync.Once

	// Queue spill (spill.go): the hot-window bound, the spill store holding
	// cold jobs' specs, and the checkpoint trigger state. spillMu guards the
	// lazy ephemeral open; spill itself is internally synchronized and, once
	// set, never changes. retrying holds the jobs parked in retry-backoff
	// timers (under mu) so checkpoints can re-journal their specs — the
	// timer closures alone made them unreachable.
	hotMax       int
	spillMu      sync.Mutex // guards the lazy ephemeral open (spill writes, spillFailed, spillTmpDir)
	spill        atomic.Pointer[journal.SpillStore]
	spillDurable bool   // SpillDir configured: specs survive restarts
	spillFailed  bool   // ephemeral open failed once; don't retry every push
	spillTmpDir  string // ephemeral dir to remove at Close
	spillErrOnce sync.Once
	retrying     map[string]*Job
	checkpointMu      sync.Mutex // serializes CompactJournal runs
	checkpointLogOnce sync.Once

	stats statsCounters
	ins   *instruments

	idleWait chan struct{} // closed+recreated on completion transitions (for Drain)
	wg       sync.WaitGroup

	// pendingRetries counts faulted jobs sitting in a retry-backoff timer:
	// in neither a shard queue nor the running table, but still live for
	// Drain. retryQuit aborts the timers on Close.
	pendingRetries atomic.Int64
	retryQuit      chan struct{}

	events        chan Event
	eventsQuit    chan struct{}
	evWG          sync.WaitGroup // tracks the drainer; Close waits for its flush
	droppedEvents atomic.Int64

	// peerOut routes output chunks of peer-submitted jobs back to the
	// attached router (federate.go). peerOutN mirrors len(peerOut) so the
	// per-chunk check on the output hot path is one atomic load when no
	// peer is attached.
	peerOutMu sync.Mutex
	peerOut   map[string]*peerSender
	peerOutN  atomic.Int64
}

// New creates a dispatcher with defaults applied. Call Start to serve.
func New(cfg Config) *Dispatcher {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 10 * time.Second
	}
	if cfg.NewQueue == nil {
		if cfg.Queue != nil {
			q := cfg.Queue
			cfg.Shards = 1
			cfg.NewQueue = func() QueuePolicy { return q }
		} else {
			cfg.NewQueue = func() QueuePolicy { return NewFIFOQueue() }
		}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards()
	}
	if cfg.Group == nil {
		cfg.Group = FirstComeFirstServed
	}
	if cfg.WriteCoalesce < 1 {
		cfg.WriteCoalesce = 1
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = 5 * time.Second
	}
	if cfg.RetryBackoffMax < cfg.RetryBackoff {
		cfg.RetryBackoffMax = cfg.RetryBackoff
	}
	if cfg.HotQueueJobs == 0 {
		cfg.HotQueueJobs = DefaultHotQueueJobs
	}
	if cfg.CompactSegments == 0 {
		cfg.CompactSegments = defaultCompactSegments
	}
	d := &Dispatcher{
		cfg:       cfg,
		shards:    newShards(cfg.Shards, func() QueuePolicy { return cfg.NewQueue() }),
		workers:   make(map[string]*workerConn),
		running:   make(map[string]*runningJob),
		live:      make(map[string]struct{}),
		handles:   make(map[string]*Handle),
		retrying:  make(map[string]*Job),
		jnl:       cfg.Journal,
		hotMax:    cfg.HotQueueJobs,
		idleWait:  make(chan struct{}),
		retryQuit: make(chan struct{}),
		ins:       newInstruments(cfg.Instance),
	}
	if cfg.SpillDir != "" && d.hotMax > 0 {
		// A configured spill directory opens eagerly: recovery may need it to
		// resolve SpillRef records from a checkpointed journal, and its
		// surviving entries are swept against the recovered live set.
		sp, err := journal.OpenSpill(cfg.SpillDir, 0)
		if err != nil {
			d.recoveryErr = fmt.Errorf("dispatch: opening spill store: %w", err)
		} else {
			d.spill.Store(sp)
			d.spillDurable = true
		}
	}
	if cfg.Obs != nil {
		d.registerObs(cfg.Obs)
	}
	if d.jnl != nil {
		d.recoverJournal()
	} else if sp := d.spill.Load(); sp != nil {
		// No journal: nothing on disk is live. Drop leftovers from a
		// previous run so stale specs cannot accumulate.
		sp.RetainOnly(nil)
	}
	return d
}

// Shards reports the number of scheduling shards.
func (d *Dispatcher) Shards() int { return len(d.shards) }

// Start binds the listener and begins serving workers. It returns the bound
// address.
func (d *Dispatcher) Start() (string, error) {
	ln, err := net.Listen("tcp", d.cfg.Addr)
	if err != nil {
		return "", err
	}
	d.ln = ln
	d.epoch = time.Now()
	if d.cfg.OnEvent != nil {
		d.events = make(chan Event, 8192)
		d.eventsQuit = make(chan struct{})
		d.evWG.Add(1)
		go d.drainEvents()
	}
	d.wg.Add(2)
	go d.acceptLoop()
	go d.janitor()
	return ln.Addr().String(), nil
}

// Addr returns the listen address (valid after Start).
func (d *Dispatcher) Addr() string { return d.ln.Addr().String() }

// Epoch returns the dispatcher start time; job records are relative to it.
func (d *Dispatcher) Epoch() time.Time { return d.epoch }

func (d *Dispatcher) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.serveWorker(proto.NewCodec(conn))
		}()
	}
}

// ServeConn attaches a pre-established connection as a worker transport,
// used by the in-process runtime.
func (d *Dispatcher) ServeConn(codec *proto.Codec) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.serveWorker(codec)
	}()
}

// register admits the worker into the registry, evicting a stale predecessor
// holding the same ID (a worker reconnecting after a network blip must not
// wait out the full heartbeat timeout behind its dead previous connection).
// It reports whether the worker was admitted.
func (d *Dispatcher) register(wc *workerConn) bool {
	staleAfter := int64(d.cfg.HeartbeatTimeout / 2)
	d.mu.Lock()
	for {
		if d.closed.Load() {
			d.mu.Unlock()
			return false
		}
		old, dup := d.workers[wc.id]
		if !dup {
			break
		}
		if time.Now().UnixNano()-old.lastSeen.Load() < staleAfter {
			// The existing connection is live: genuine duplicate ID.
			d.mu.Unlock()
			wc.codec.Send(&proto.Envelope{Kind: proto.KindError, Error: "duplicate worker id " + wc.id})
			return false
		}
		// The existing connection went silent (network blip, half-open
		// socket): evict it and admit the newcomer.
		d.mu.Unlock()
		old.codec.Close()
		d.workerGone(old)
		d.mu.Lock()
	}
	wc.shard = d.shardFor(wc)
	d.workers[wc.id] = wc
	d.stats.workersJoined.Add(1)
	d.emit(Event{Kind: EvWorkerJoined, WorkerID: wc.id, Detail: wc.reg.Host})
	d.mu.Unlock()
	return true
}

func (d *Dispatcher) serveWorker(codec *proto.Codec) {
	defer codec.Close()
	first, err := codec.Recv()
	if err != nil {
		return
	}
	if first.Kind == proto.KindPeerAttach && first.PeerAttach != nil {
		// A router attaching as a federation peer, not a worker registering.
		// Same listener, same wire protocol — the first frame's kind is the
		// only discriminator, so existing workers and clients need no changes.
		d.servePeer(codec, first)
		return
	}
	if first.Kind != proto.KindRegister || first.Register == nil {
		codec.Send(&proto.Envelope{Kind: proto.KindError, Error: "expected register"})
		return
	}
	wc := &workerConn{
		id:    first.Register.WorkerID,
		reg:   *first.Register,
		codec: codec,
		sendq: make(chan outFrame, 1024),
		quit:  make(chan struct{}),
		tasks: make(map[string]*runningJob),
	}
	wc.touch()

	// Wire-version negotiation (proto/binary.go): the worker announced its
	// maximum supported version on the register frame; confirm the minimum
	// of the two and enable the fast path for our own sends. Pre-v2 peers
	// announce nothing and stay on JSON.
	ver := proto.Negotiate(first.Proto)
	if ver >= proto.VersionBinary {
		codec.EnableBinary()
	}

	if !d.register(wc) {
		return
	}
	d.mu.Lock()
	staged := append([]proto.Stage(nil), d.staged...)
	d.mu.Unlock()

	// Writer stage: drains the outbound queue so scheduling never blocks on
	// a slow connection. Under backlog, up to WriteCoalesce frames are
	// batched into the codec's write buffer before one flush, amortizing
	// the syscall; an empty queue still flushes every frame immediately.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		// Release any relayed frames still queued when the writer exits, so
		// their pooled buffers go back even for a worker that died mid-burst.
		// (A frame enqueued after this final sweep — the enqueue raced the
		// quit close — is simply collected by the GC; only pool reuse is
		// lost, never correctness.)
		defer func() {
			for {
				select {
				case of := <-wc.sendq:
					if of.raw != nil {
						of.raw.Release()
					}
				default:
					return
				}
			}
		}()
		batch := d.cfg.WriteCoalesce
		// writeOut buffers one queue entry. A relayed frame goes out raw
		// when this connection can read it — JSON always, binary only after
		// the peer negotiated VersionBinary — and is re-encoded through the
		// typed path otherwise. Its queue reference is dropped once the
		// bytes are in the write buffer (SendRawBuffered copies them).
		writeOut := func(of outFrame) error {
			if of.raw == nil {
				return codec.SendBuffered(of.env)
			}
			defer of.raw.Release()
			if !of.raw.Binary() || codec.BinaryEnabled() {
				return codec.SendRawBuffered(of.raw.Payload())
			}
			env, err := of.raw.Envelope()
			if err != nil {
				return nil // corrupt relay frame: drop it, keep the worker
			}
			// The decoded envelope is shared by every relay of this frame;
			// send a shallow copy because Send stamps Seq on its argument.
			e := *env
			return codec.SendBuffered(&e)
		}
		drain := func(of outFrame) error {
			if err := writeOut(of); err != nil {
				return err
			}
			for n := 1; n < batch; n++ {
				select {
				case more := <-wc.sendq:
					if err := writeOut(more); err != nil {
						return err
					}
				default:
					return codec.Flush()
				}
			}
			return codec.Flush()
		}
		for {
			select {
			case of := <-wc.sendq:
				if err := drain(of); err != nil {
					return
				}
			case <-wc.quit:
				// Flush anything already queued (best effort), then exit.
				for {
					select {
					case of := <-wc.sendq:
						if err := drain(of); err != nil {
							return
						}
					default:
						return
					}
				}
			}
		}
	}()

	wc.enqueue(&proto.Envelope{Kind: proto.KindRegistered, Proto: ver})
	for i := range staged {
		wc.enqueue(&proto.Envelope{Kind: proto.KindStage, Stage: &staged[i]})
	}

	// Inbound hot loop: work requests touch only the worker's shard lock,
	// results only Dispatcher.mu; heartbeat and output frames take none.
	// RecvFrame classifies binary frames from their two-byte prefix, so the
	// kinds that carry no payload the dispatcher reads (work-request,
	// heartbeat) and the relayed kinds (output) skip body decoding entirely.
	for {
		f, err := codec.RecvFrame()
		if err != nil {
			break
		}
		wc.touch()
		switch f.Kind() {
		case proto.KindWorkRequest:
			d.markIdle(wc)
		case proto.KindResult:
			if env, derr := f.Envelope(); derr == nil && env.Result != nil {
				d.handleResult(wc, *env.Result)
			}
		case proto.KindOutput:
			d.handleOutput(f)
		case proto.KindHeartbeat:
			// Liveness only; touch above already recorded it lock-free.
		case proto.KindStaged, proto.KindError:
			// acks and diagnostics; nothing to do
		default:
		}
		f.Release()
	}
	d.workerGone(wc)
	<-writerDone
}

// markIdle parks a worker's work request in its home shard and schedules.
func (d *Dispatcher) markIdle(wc *workerConn) {
	if d.stopping.Load() || d.closed.Load() {
		wc.enqueue(&proto.Envelope{Kind: proto.KindShutdown})
		return
	}
	s := wc.shard
	s.mu.Lock()
	if wc.gone.Load() {
		s.mu.Unlock()
		return
	}
	s.addIdle(wc)
	s.mu.Unlock()
	d.schedule()
}

// registerRunning inserts the popped job into the running table. Called with
// the popping shard's lock held (lock order shard -> mu), so Drain can never
// observe the job in neither the queue nor the table.
func (d *Dispatcher) registerRunning(job *Job) *runningJob {
	rj := &runningJob{
		job:     job,
		pending: make(map[string]*workerConn, job.Procs()),
		start:   time.Now(),
	}
	d.ins.queueWait.Observe(rj.start.Sub(job.submitted))
	d.mu.Lock()
	d.running[job.Spec.JobID] = rj
	d.mu.Unlock()
	d.journal(journal.Record{Kind: journal.Dispatched, JobID: job.Spec.JobID})
	return rj
}

// dispatchJob builds the popped job's tasks and streams them to the selected
// group. Runs outside all scheduling locks — mpiexec startup is slow — and
// re-checks each worker's liveness under Dispatcher.mu when binding tasks.
func (d *Dispatcher) dispatchJob(rj *runningJob, group []*workerConn) {
	job := rj.job
	var tasks []proto.Task
	var exec *hydra.MPIExec
	if job.Type == MPI {
		spec := job.Spec
		if spec.WallLimit == 0 && d.cfg.JobTimeout > 0 {
			spec.WallLimit = d.cfg.JobTimeout
		}
		var err error
		exec, err = hydra.StartMPIExec(spec)
		if err != nil {
			var retry *Job
			d.mu.Lock()
			retry = d.finalizeLocked(rj, fmt.Sprintf("mpiexec start: %v", err))
			d.kickLocked()
			d.mu.Unlock()
			d.releaseGroup(group)
			if retry != nil {
				d.requeue(retry)
			}
			return
		}
		tasks = exec.ProxyTasks()
		// Fires when the last rank connects to the PMI endpoint. Set before
		// any task is enqueued, so it cannot race its own registration; it
		// cannot fire before EvJobStarted below because no rank can dial in
		// until its proxy task reaches a worker.
		jobID := job.Spec.JobID
		exec.OnWired(func() {
			d.emit(Event{Kind: EvPMIWired, JobID: jobID})
		})
	} else {
		wall := job.Spec.WallLimit
		if wall == 0 && d.cfg.JobTimeout > 0 {
			// Sequential jobs get the watchdog too; only the MPI branch
			// defaulted it before, so a hung sequential task wedged its
			// worker forever.
			wall = d.cfg.JobTimeout
		}
		tasks = []proto.Task{{
			TaskID:    job.Spec.JobID + "/seq",
			JobID:     job.Spec.JobID,
			Cmd:       job.Spec.Cmd,
			Args:      append([]string(nil), job.Spec.Args...),
			Env:       append([]string(nil), job.Spec.Env...),
			Dir:       job.Spec.Dir,
			WallLimit: wall,
		}}
	}

	d.emit(Event{Kind: EvJobStarted, JobID: job.Spec.JobID})
	var retry *Job
	d.mu.Lock()
	rj.exec = exec
	for i := range tasks {
		wc := group[i]
		taskID := tasks[i].TaskID
		rj.pending[taskID] = wc
		rj.workers = append(rj.workers, wc.id)
		d.stats.tasksDispatched.Add(1)
		d.emit(Event{Kind: EvTaskSent, JobID: job.Spec.JobID, TaskID: taskID, WorkerID: wc.id})
		if wc.gone.Load() {
			// The worker died between group selection and task binding; its
			// workerGone pass cannot see this task, so record the loss here.
			d.failTaskLocked(rj, taskID, wc)
			continue
		}
		wc.tasks[taskID] = rj
		task := tasks[i]
		if !wc.enqueue(&proto.Envelope{Kind: proto.KindTask, Task: &task}) {
			// Writer queue overflow: treat the worker as faulty. The result
			// path will synthesize the failure when workerGone runs.
			go wc.codec.Close()
		}
	}
	if len(rj.pending) == 0 {
		retry = d.finalizeLocked(rj, "")
		d.kickLocked()
	}
	d.mu.Unlock()
	d.ins.assembly.Observe(time.Since(rj.start))
	if retry != nil {
		d.requeue(retry)
	}
}

// failTaskLocked records the loss of one dispatched task. Caller holds d.mu
// and has verified rj.pending[taskID] maps to wc.
func (d *Dispatcher) failTaskLocked(rj *runningJob, taskID string, wc *workerConn) {
	delete(rj.pending, taskID)
	rj.failed = true
	rj.faulted = true
	if rj.errMsg == "" {
		rj.errMsg = fmt.Sprintf("worker %s lost while running %s", wc.id, taskID)
	}
	rj.results = append(rj.results, proto.Result{
		TaskID: taskID, JobID: rj.job.Spec.JobID, ExitCode: -1,
		Err: "worker lost",
	})
	if rj.exec != nil {
		rj.exec.Abort()
	}
}

// releaseGroup returns workers to their shards' idle sets after a launch
// that never bound tasks to them, then reschedules.
func (d *Dispatcher) releaseGroup(group []*workerConn) {
	for _, wc := range group {
		s := wc.shard
		s.mu.Lock()
		if !wc.gone.Load() {
			s.addIdle(wc)
		}
		s.mu.Unlock()
	}
	d.schedule()
}

// requeue returns a faulted job to the scheduling state and reschedules,
// after the attempt's capped exponential backoff. The immediate path (no
// delay configured) was a fault-retry hot loop: a job that reliably kills
// or faults its workers respun through the pool as fast as workers
// rejoined. Never called with locks held (finalizeLocked only marks the
// retry).
func (d *Dispatcher) requeue(j *Job) {
	if d.closed.Load() {
		d.failStranded(j)
		return
	}
	delay := d.retryDelay(j.retries)
	if delay <= 0 {
		d.placeJob(j, true)
		if d.closed.Load() {
			// Close may have swept the queues before the placement landed.
			d.failQueued()
		}
		d.schedule()
		return
	}
	// The job is visible to Drain through pendingRetries until placeJob has
	// pushed it (the decrement happens after the push, and both Drain's
	// check and the push run under the shard locks, so Drain can never see
	// the job in neither place). The retrying map keeps the parked job's
	// spec reachable for journal checkpoints — the timer closure alone made
	// it unreachable; it is cleared only after the placement lands, so a
	// checkpoint snapshot always sees the job somewhere (the overlap
	// window is deduped by ID).
	d.pendingRetries.Add(1)
	d.mu.Lock()
	d.retrying[j.Spec.JobID] = j
	d.mu.Unlock()
	go func() {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
			d.placeJob(j, true)
			d.pendingRetries.Add(-1)
			d.mu.Lock()
			delete(d.retrying, j.Spec.JobID)
			d.kickLocked()
			d.mu.Unlock()
			if d.closed.Load() {
				d.failQueued()
			}
			d.schedule()
		case <-d.retryQuit:
			// Close aborted this backoff: resolve the handle with
			// ErrDispatcherClosed instead of stranding its waiters forever.
			// With a journal the job is still durably live and recovers on
			// the next start.
			d.pendingRetries.Add(-1)
			d.mu.Lock()
			delete(d.retrying, j.Spec.JobID)
			d.mu.Unlock()
			d.failStranded(j)
			d.mu.Lock()
			d.kickLocked()
			d.mu.Unlock()
		}
	}()
}

// retryDelay is the backoff before attempt number `attempt` (1-based: set
// by finalizeLocked before requeue), doubling from RetryBackoff up to
// RetryBackoffMax. Only a negative RetryBackoff disables the delay; zero
// means "use the default", matching core.Options — New normalizes zero
// before this runs, and the check here mirrors that so a zero can never
// silently mean "no backoff" (the old <= 0 test conflated the two).
func (d *Dispatcher) retryDelay(attempt int) time.Duration {
	delay := d.cfg.RetryBackoff
	if delay < 0 {
		return 0
	}
	if delay == 0 {
		delay = 100 * time.Millisecond
	}
	for i := 1; i < attempt && delay < d.cfg.RetryBackoffMax; i++ {
		delay *= 2
	}
	if delay > d.cfg.RetryBackoffMax {
		delay = d.cfg.RetryBackoffMax
	}
	return delay
}

// handleResult processes a rank's completion report.
func (d *Dispatcher) handleResult(wc *workerConn, res proto.Result) {
	var retry *Job
	d.mu.Lock()
	rj, ok := d.running[res.JobID]
	if !ok {
		d.mu.Unlock()
		return
	}
	if rj.pending[res.TaskID] != wc {
		// The task is not pending on THIS worker: a late result from a
		// prior faulted attempt's surviving worker (the retried attempt's
		// task with the same job/task ID is owned by someone else), or a
		// frame from a connection that was never assigned the task. Credit
		// nothing.
		d.mu.Unlock()
		return
	}
	delete(rj.pending, res.TaskID)
	delete(wc.tasks, res.TaskID)
	rj.results = append(rj.results, res)
	d.emit(Event{Kind: EvTaskDone, JobID: res.JobID, TaskID: res.TaskID, WorkerID: wc.id})
	if res.ExitCode != 0 {
		rj.failed = true
		if rj.errMsg == "" {
			rj.errMsg = fmt.Sprintf("task %s exited %d: %s", res.TaskID, res.ExitCode, res.Err)
		}
		// Unblock sibling ranks that may be stuck in MPI operations.
		if rj.exec != nil && len(rj.pending) > 0 {
			rj.exec.Abort()
		}
	}
	if len(rj.pending) == 0 {
		retry = d.finalizeLocked(rj, "")
	}
	d.kickLocked()
	d.mu.Unlock()
	if retry != nil {
		d.requeue(retry)
	}
}

// handleOutput routes one output frame from a worker. The raw-frame hook
// runs first with borrow semantics (it Retains to keep the frame past the
// call); the decoded callback then sees the chunk only if it is wired,
// paying the decode exactly when someone wants typed data. The caller still
// owns its reference and releases it afterwards.
func (d *Dispatcher) handleOutput(f *proto.Frame) {
	if d.cfg.OnOutputFrame != nil {
		d.cfg.OnOutputFrame(f)
	}
	relay := d.peerOutN.Load() > 0
	if d.cfg.OnOutput == nil && !relay {
		return
	}
	env, err := f.Envelope()
	if err != nil || env.Output == nil {
		return
	}
	if d.cfg.OnOutput != nil {
		d.cfg.OnOutput(env.Output.TaskID, env.Output.Stream, env.Output.Data)
	}
	if relay {
		d.relayPeerOutput(env.Output)
	}
}

// workerGone removes a dead worker and fails its in-flight tasks (paper
// §6.1.5: JETS automatically disregards workers that fail or hang).
// Idempotent; safe to call from both the reader loop and the eviction path.
func (d *Dispatcher) workerGone(wc *workerConn) {
	if !wc.gone.CompareAndSwap(false, true) {
		return
	}
	close(wc.quit)
	s := wc.shard
	if s != nil {
		s.mu.Lock()
		s.removeIdle(wc)
		s.mu.Unlock()
	}
	var retries []*Job
	d.mu.Lock()
	// The registry may already hold the worker's replacement (eviction on
	// reconnect); only remove the entry if it is still this connection.
	if d.workers[wc.id] == wc {
		delete(d.workers, wc.id)
	}
	d.stats.workersLost.Add(1)
	d.emit(Event{Kind: EvWorkerLost, WorkerID: wc.id})
	for taskID, rj := range wc.tasks {
		delete(wc.tasks, taskID)
		if rj.pending[taskID] != wc {
			continue
		}
		d.failTaskLocked(rj, taskID, wc)
		if len(rj.pending) == 0 {
			if r := d.finalizeLocked(rj, ""); r != nil {
				retries = append(retries, r)
			}
		}
	}
	d.kickLocked()
	d.mu.Unlock()
	for _, j := range retries {
		d.requeue(j)
	}
}

// finalizeLocked completes a finished job, or marks it for retry by
// returning the job (the caller requeues it after releasing d.mu — pushing
// to a shard queue under the dispatcher lock would invert the lock order).
// Caller holds d.mu.
func (d *Dispatcher) finalizeLocked(rj *runningJob, overrideErr string) *Job {
	d.ins.jobDur.Observe(time.Since(rj.start))
	delete(d.running, rj.job.Spec.JobID)
	if rj.exec != nil {
		rj.exec.Close()
	}
	if overrideErr != "" {
		rj.failed = true
		rj.errMsg = overrideErr
	}

	if rj.failed && rj.faulted && rj.job.retries < d.cfg.MaxJobRetries {
		rj.job.retries++
		d.stats.jobsRetried.Add(1)
		d.journal(journal.Record{Kind: journal.Retried, JobID: rj.job.Spec.JobID, Attempt: rj.job.retries})
		d.emit(Event{Kind: EvJobRetried, JobID: rj.job.Spec.JobID, Detail: rj.errMsg})
		return rj.job
	}

	stop := time.Since(d.epoch)
	start := rj.start.Sub(d.epoch)
	if !rj.failed {
		d.records = append(d.records, metrics.JobRecord{
			ID:    rj.job.Spec.JobID,
			Procs: rj.job.Procs(),
			Start: start,
			Stop:  stop,
		})
		d.stats.jobsCompleted.Add(1)
		d.emit(Event{Kind: EvJobCompleted, JobID: rj.job.Spec.JobID})
	} else {
		d.stats.jobsFailed.Add(1)
		d.emit(Event{Kind: EvJobFailed, JobID: rj.job.Spec.JobID, Detail: rj.errMsg})
	}
	// Terminal: the Completed record dedupes the job at recovery, and the ID
	// becomes submittable again. A once-spilled job's spec leaves the spill
	// store's custody here (Remove is a no-op for never-spilled jobs).
	delete(d.live, rj.job.Spec.JobID)
	delete(d.handles, rj.job.Spec.JobID)
	d.journal(journal.Record{Kind: journal.Completed, JobID: rj.job.Spec.JobID, Failed: rj.failed})
	if sp := d.spillLoaded(); sp != nil {
		sp.Remove(rj.job.Spec.JobID)
	}
	rj.job.handle.complete(JobResult{
		JobID:       rj.job.Spec.JobID,
		Failed:      rj.failed,
		Err:         rj.errMsg,
		Retries:     rj.job.retries,
		Start:       start,
		Stop:        stop,
		TaskResults: rj.results,
		Workers:     rj.workers,
	})
	return nil
}

// janitor expires workers whose heartbeats stopped.
func (d *Dispatcher) janitor() {
	defer d.wg.Done()
	interval := d.cfg.HeartbeatTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for range t.C {
		if d.closed.Load() {
			return
		}
		d.maybeCheckpoint()
		cutoff := time.Now().Add(-d.cfg.HeartbeatTimeout).UnixNano()
		var expired []*workerConn
		d.mu.Lock()
		for _, wc := range d.workers {
			if wc.lastSeen.Load() < cutoff {
				expired = append(expired, wc)
			}
		}
		d.mu.Unlock()
		for _, wc := range expired {
			// Closing the connection pops the reader loop, which runs the
			// full workerGone path.
			wc.codec.Close()
		}
	}
}

// kickLocked wakes Drain waiters. Caller holds d.mu.
func (d *Dispatcher) kickLocked() {
	close(d.idleWait)
	d.idleWait = make(chan struct{})
}

// Submit enqueues a job and returns its handle. With a journal configured,
// acceptance is not yet durability: the Submitted record group-commits on
// the journal's fsync cadence (see Config.Journal for the window and how to
// close it).
func (d *Dispatcher) Submit(job Job) (*Handle, error) {
	if err := job.Spec.Validate(); err != nil {
		return nil, err
	}
	if job.Type == Sequential && job.Spec.NProcs != 1 {
		return nil, fmt.Errorf("dispatch: sequential job %q must have NProcs 1", job.Spec.JobID)
	}
	h := newHandle(job.Spec.JobID)
	j := &job
	j.handle = h
	j.submitted = time.Now()

	// The shared lock spans the draining check and the queue push, so
	// Shutdown (which takes it exclusively before draining) can never
	// observe an empty queue while a submission is still mid-flight.
	d.subMu.RLock()
	if d.closed.Load() || d.draining.Load() {
		d.subMu.RUnlock()
		return nil, errors.New("dispatch: dispatcher is shut down")
	}
	if !d.reserveID(job.Spec.JobID, h) {
		d.subMu.RUnlock()
		return nil, fmt.Errorf("dispatch: duplicate job id %q", job.Spec.JobID)
	}
	j.seq = d.subSeq.Add(1)
	d.stats.jobsSubmitted.Add(1)
	d.emit(Event{Kind: EvJobSubmitted, JobID: job.Spec.JobID, Detail: job.Type.String()})
	d.journal(submittedRecord(j))
	d.placeJob(j, false)
	if d.closed.Load() {
		// Close does not take subMu, so it may have swept the queues between
		// our check and the placement; sweep again so the handle resolves.
		d.failQueued()
	}
	d.subMu.RUnlock()
	d.schedule()
	return h, nil
}

// SubmitBatch enqueues a group of jobs under one submission-lock acquisition
// and a single scheduling pass — the submit-side analogue of the wire
// protocol's write coalescing. All jobs are validated before any is placed,
// so the batch is accepted or rejected as a whole. Acceptance inherits
// Submit's journal durability window (see Config.Journal).
func (d *Dispatcher) SubmitBatch(jobs []Job) ([]*Handle, error) {
	for i := range jobs {
		if err := jobs[i].Spec.Validate(); err != nil {
			return nil, err
		}
		if jobs[i].Type == Sequential && jobs[i].Spec.NProcs != 1 {
			return nil, fmt.Errorf("dispatch: sequential job %q must have NProcs 1", jobs[i].Spec.JobID)
		}
	}
	d.subMu.RLock()
	if d.closed.Load() || d.draining.Load() {
		d.subMu.RUnlock()
		return nil, errors.New("dispatch: dispatcher is shut down")
	}
	// Reserve every ID before placing any, under one lock acquisition, so the
	// batch is accepted or rejected as a whole: a duplicate (against any live
	// job — queued, running, retry-pending — or within the batch itself)
	// rolls back the reservations already made. Handles are created first so
	// the index entry lands atomically with the reservation.
	handles := make([]*Handle, len(jobs))
	for i := range jobs {
		handles[i] = newHandle(jobs[i].Spec.JobID)
	}
	d.mu.Lock()
	for i := range jobs {
		id := jobs[i].Spec.JobID
		if _, dup := d.live[id]; dup {
			for k := 0; k < i; k++ {
				delete(d.live, jobs[k].Spec.JobID)
				delete(d.handles, jobs[k].Spec.JobID)
			}
			d.mu.Unlock()
			d.subMu.RUnlock()
			return nil, fmt.Errorf("dispatch: duplicate job id %q", id)
		}
		d.live[id] = struct{}{}
		d.handles[id] = handles[i]
	}
	d.mu.Unlock()

	now := time.Now()
	for i := range jobs {
		job := jobs[i]
		j := &job
		j.handle = handles[i]
		j.submitted = now
		j.seq = d.subSeq.Add(1)
		d.stats.jobsSubmitted.Add(1)
		d.emit(Event{Kind: EvJobSubmitted, JobID: job.Spec.JobID, Detail: job.Type.String()})
		d.journal(submittedRecord(j))
		d.placeJob(j, false)
	}
	if d.closed.Load() {
		// Same race as Submit: Close's sweep may have run mid-batch.
		d.failQueued()
	}
	d.subMu.RUnlock()
	d.schedule()
	return handles, nil
}

// Drain blocks until the queue and all running jobs are empty, or ctx ends.
func (d *Dispatcher) Drain(ctx context.Context) error {
	for {
		// Consistent snapshot: with every shard lock held no job can be
		// mid-pop (pops hold their shard lock across the running-table
		// insert), so queued+running covers every live job.
		d.lockAll()
		queued := 0
		for _, s := range d.shards {
			queued += s.depthLocked()
		}
		// Read inside the locked region: a retry's decrement happens after
		// its placeJob push, which needs a shard lock held here — so a zero
		// means the job is already visible as queued (or running).
		retrying := d.pendingRetries.Load()
		d.mu.Lock()
		empty := queued == 0 && len(d.running) == 0 && retrying == 0
		wait := d.idleWait
		d.mu.Unlock()
		d.unlockAll()
		if empty {
			return nil
		}
		select {
		case <-wait:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Shutdown stops accepting submissions, drains queued and running jobs
// (bounded by ctx), tells all workers to exit, and closes the listener.
// Draining is flagged before the drain wait begins, so a concurrent Submit
// cannot slip a job in that would run against workers already being told to
// exit.
func (d *Dispatcher) Shutdown(ctx context.Context) error {
	d.subMu.Lock()
	d.draining.Store(true)
	d.subMu.Unlock()
	err := d.Drain(ctx)
	d.stopping.Store(true)
	d.mu.Lock()
	workers := make([]*workerConn, 0, len(d.workers))
	for _, wc := range d.workers {
		workers = append(workers, wc)
	}
	d.mu.Unlock()
	for _, wc := range workers {
		wc.enqueue(&proto.Envelope{Kind: proto.KindShutdown})
	}
	d.Close()
	return err
}

// Close releases the listener immediately. Every handle still live
// resolves: jobs stranded in a shard queue or a retry-backoff timer fail
// with ErrDispatcherClosed (they used to hang forever, leaking every
// goroutine parked on Done), and running jobs complete with failures as
// connections drop. A configured journal is flushed and closed last, so
// the stranded jobs — journaled without a Completed record — recover on
// the next start.
func (d *Dispatcher) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(d.retryQuit) // abort retry-backoff timers; each resolves its handle
	d.failQueued()
	if d.eventsQuit != nil {
		// Signal the drainer and wait for it to flush the buffered tail, so
		// an observer (e.g. a trace file written after Close) sees every
		// event emitted before shutdown. The drainer never blocks — it only
		// empties the channel and returns — so this wait is bounded.
		close(d.eventsQuit)
		d.evWG.Wait()
	}
	var err error
	if d.ln != nil {
		err = d.ln.Close()
	}
	if d.jnl != nil {
		if jerr := d.jnl.Close(); err == nil {
			err = jerr
		}
	}
	d.spillMu.Lock()
	sp, tmp := d.spill.Load(), d.spillTmpDir
	d.spillMu.Unlock()
	if sp != nil {
		if serr := sp.Close(); err == nil {
			err = serr
		}
	}
	if tmp != "" {
		os.RemoveAll(tmp) // ephemeral spill: nothing durable referenced it
	}
	return err
}

// reserveID claims a job ID against every live job — queued, running, or
// parked in a retry backoff. The reservation is made atomically with the
// duplicate check and held until the job reaches a terminal state, so two
// racing submits of one ID cannot both pass, and a duplicate of a job that
// is queued but not yet running is rejected (the old check consulted only
// the running table, and released the lock before placement). The handle is
// indexed under the same lifetime so federation peers can look live jobs up
// by ID.
func (d *Dispatcher) reserveID(id string, h *Handle) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.live[id]; dup {
		return false
	}
	d.live[id] = struct{}{}
	d.handles[id] = h
	return true
}

// failQueued drains every shard queue and resolves the stranded handles
// with ErrDispatcherClosed. Called by Close once the closed flag is up, and
// by any placer that observes the flag after pushing (the placement may
// have raced past Close's sweep) — between the two, no queued job can
// outlive Close unresolved.
func (d *Dispatcher) failQueued() {
	var stranded []*Job
	var cold []coldJob
	d.lockAll()
	for _, s := range d.shards {
		for {
			j := s.queue.Next(math.MaxInt)
			if j == nil {
				break
			}
			stranded = append(stranded, j)
		}
		// The cold tail strands too; entries mid-refill stay with the refill
		// goroutine, whose own post-push closed check re-runs this sweep.
		cold = append(cold, s.cold...)
		s.cold = nil
		s.refreshHead()
	}
	d.unlockAll()
	if len(stranded) == 0 && len(cold) == 0 {
		return
	}
	for _, j := range stranded {
		d.failStranded(j)
	}
	for _, cj := range cold {
		d.failColdStranded(cj)
	}
	d.mu.Lock()
	d.kickLocked()
	d.mu.Unlock()
}

// failColdStranded resolves a spilled job Close stranded in the cold tail.
// Like failStranded, no Completed record is cut and the spill entry is kept:
// with a durable journal the job recovers on the next start. The handle is
// claimed by deleting its index entry, so a racing sweep (failQueued runs
// from several paths) completes it exactly once.
func (d *Dispatcher) failColdStranded(cj coldJob) {
	d.mu.Lock()
	h, ok := d.handles[cj.id]
	delete(d.live, cj.id)
	delete(d.handles, cj.id)
	d.mu.Unlock()
	if !ok {
		return
	}
	d.stats.jobsFailed.Add(1)
	d.emit(Event{Kind: EvJobFailed, JobID: cj.id, Detail: ErrDispatcherClosed.Error()})
	h.complete(JobResult{
		JobID:   cj.id,
		Failed:  true,
		Err:     ErrDispatcherClosed.Error(),
		Retries: int(cj.retries),
	})
}

// failStranded resolves the handle of one job Close stranded (in a queue or
// a retry timer) with ErrDispatcherClosed. No Completed record is cut: with
// a journal configured the job is still durably live and is rebuilt on the
// next start.
func (d *Dispatcher) failStranded(j *Job) {
	d.mu.Lock()
	delete(d.live, j.Spec.JobID)
	delete(d.handles, j.Spec.JobID)
	d.mu.Unlock()
	d.stats.jobsFailed.Add(1)
	d.emit(Event{Kind: EvJobFailed, JobID: j.Spec.JobID, Detail: ErrDispatcherClosed.Error()})
	j.handle.complete(JobResult{
		JobID:   j.Spec.JobID,
		Failed:  true,
		Err:     ErrDispatcherClosed.Error(),
		Retries: j.retries,
	})
}

// StageFile distributes a file to every current and future worker's local
// cache (the paper's local-storage optimization: proxy binaries, user
// executables, and reused data files).
func (d *Dispatcher) StageFile(name string, data []byte) {
	s := proto.Stage{Name: name, Data: data}
	d.mu.Lock()
	d.staged = append(d.staged, s)
	workers := make([]*workerConn, 0, len(d.workers))
	for _, wc := range d.workers {
		workers = append(workers, wc)
	}
	d.mu.Unlock()
	for _, wc := range workers {
		wc.enqueue(&proto.Envelope{Kind: proto.KindStage, Stage: &s})
	}
}

// StageFrame distributes an already-encoded stage frame — typically received
// from a data-plane client — to every current and future worker. The payload
// is decoded once to record the Stage for replay to late-joining workers;
// live workers get the original frame bytes relayed without re-encoding
// (workers that have not negotiated binary fall back to the typed path in
// their writer). Borrow semantics: the relay takes its own references, so
// the caller keeps ownership of f.
func (d *Dispatcher) StageFrame(f *proto.Frame) error {
	env, err := f.Envelope()
	if err != nil {
		return err
	}
	if env.Kind != proto.KindStage || env.Stage == nil {
		return fmt.Errorf("dispatch: StageFrame on %q frame", f.Kind())
	}
	d.mu.Lock()
	d.staged = append(d.staged, *env.Stage)
	workers := make([]*workerConn, 0, len(d.workers))
	for _, wc := range d.workers {
		workers = append(workers, wc)
	}
	d.mu.Unlock()
	for _, wc := range workers {
		wc.enqueueRaw(f)
	}
	return nil
}

// Stats returns a snapshot of the cumulative counters.
func (d *Dispatcher) Stats() Stats {
	return Stats{
		JobsSubmitted:   int(d.stats.jobsSubmitted.Load()),
		JobsCompleted:   int(d.stats.jobsCompleted.Load()),
		JobsFailed:      int(d.stats.jobsFailed.Load()),
		JobsRetried:     int(d.stats.jobsRetried.Load()),
		TasksDispatched: int(d.stats.tasksDispatched.Load()),
		WorkersJoined:   int(d.stats.workersJoined.Load()),
		WorkersLost:     int(d.stats.workersLost.Load()),
		Steals:          int(d.stats.steals.Load()),
		JournalErrors:   int(d.stats.journalErrors.Load()),
		JobsSpilled:     int(d.stats.jobsSpilled.Load()),
		SpillReads:      int(d.stats.spillReads.Load()),
	}
}

// Workers reports the number of live registered workers.
func (d *Dispatcher) Workers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.workers)
}

// IdleWorkers reports workers currently parked waiting for tasks.
func (d *Dispatcher) IdleWorkers() int { return d.idleCount() }

// QueuedJobs reports jobs waiting for workers.
func (d *Dispatcher) QueuedJobs() int { return d.queuedCount() }

// RunningJobs reports jobs currently executing.
func (d *Dispatcher) RunningJobs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.running)
}

// Records returns a copy of the completed-job records (offsets from Epoch),
// the raw material for the utilization and load-level figures.
func (d *Dispatcher) Records() []metrics.JobRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]metrics.JobRecord(nil), d.records...)
}

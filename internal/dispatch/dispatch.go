// Package dispatch implements the central JETS scheduler: the service that
// pilot-job workers connect to and that transforms MPI job specifications
// into sets of Hydra proxy tasks streamed to available workers (paper §5,
// Fig. 4).
//
// The dispatcher observes the paper's architecture principles: socket
// handling, request handling, and process management are separate concurrent
// stages; workers that fail or hang are disregarded automatically; and the
// component composes into the stand-alone jets tool (internal/core), the
// Coasters service (internal/coasters), or custom frameworks.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"jets/internal/hydra"
	"jets/internal/metrics"
	"jets/internal/proto"
)

// Config parameterizes the dispatcher.
type Config struct {
	// Addr to listen on; default "127.0.0.1:0".
	Addr string
	// HeartbeatTimeout after which a silent worker is declared dead;
	// default 10s.
	HeartbeatTimeout time.Duration
	// MaxJobRetries bounds automatic resubmission of jobs that failed due
	// to worker loss (not application error); default 0.
	MaxJobRetries int
	// Queue policy; default FIFO (the paper's policy).
	Queue QueuePolicy
	// Group policy for MPI worker aggregation; default first-come-first-
	// served (the paper's policy).
	Group GroupPolicy
	// JobTimeout bounds each MPI job's total wall time (mpiexec watchdog);
	// 0 disables.
	JobTimeout time.Duration
	// OnOutput receives task output chunks; nil discards them.
	OnOutput func(taskID, stream string, data []byte)
	// OnEvent receives life-cycle trace events (see events.go); nil
	// disables tracing. Delivery is ordered but asynchronous.
	OnEvent func(Event)
	// WriteCoalesce is the maximum number of outbound frames each worker's
	// writer goroutine batches into one flush (one syscall) when the send
	// queue has backlog. Values <= 1 flush every frame, the seed behavior.
	// Latency is unaffected when the queue is empty: the first frame always
	// flushes as soon as no more are immediately available.
	WriteCoalesce int
}

// Stats are cumulative dispatcher counters.
type Stats struct {
	JobsSubmitted   int
	JobsCompleted   int
	JobsFailed      int
	JobsRetried     int
	TasksDispatched int
	WorkersJoined   int
	WorkersLost     int
}

// workerConn is the dispatcher-side state of one pilot-job connection.
type workerConn struct {
	id    string
	reg   proto.Register
	codec *proto.Codec

	sendq chan *proto.Envelope
	quit  chan struct{} // closed when the worker is declared gone

	// lastSeen is the unix-nano time of the last inbound frame. It is
	// written by the connection's reader goroutine and read by the janitor
	// without taking the scheduling lock, so heartbeats never contend with
	// dispatch (idle membership lives in Dispatcher.idle).
	lastSeen atomic.Int64

	// Fields below are guarded by the dispatcher mutex.
	tasks map[string]*runningJob // taskID -> job currently on this worker
	gone  bool
}

// touch records inbound traffic for the janitor's liveness check.
func (wc *workerConn) touch() { wc.lastSeen.Store(time.Now().UnixNano()) }

// enqueue hands a frame to the worker's writer goroutine without blocking;
// a worker too slow to drain its queue is treated as faulty. sendq is never
// closed — the writer exits through quit — so enqueue is race-free against
// worker teardown.
func (wc *workerConn) enqueue(e *proto.Envelope) bool {
	select {
	case <-wc.quit:
		return false
	default:
	}
	select {
	case wc.sendq <- e:
		return true
	default:
		return false
	}
}

// runningJob tracks one dispatched job until every rank reports.
type runningJob struct {
	job     *Job
	exec    *hydra.MPIExec // nil for sequential jobs
	pending map[string]*workerConn
	results []proto.Result
	workers []string
	failed  bool
	faulted bool // failure caused by worker loss rather than the application
	errMsg  string
	start   time.Time
}

// Dispatcher is the central JETS scheduler.
type Dispatcher struct {
	cfg   Config
	ln    net.Listener
	epoch time.Time

	mu       sync.Mutex
	workers  map[string]*workerConn
	idle     *idleSet
	queue    QueuePolicy
	running  map[string]*runningJob
	records  []metrics.JobRecord
	stats    Stats
	staged   []proto.Stage
	draining bool
	closed   bool

	idleWait chan struct{} // closed+recreated whenever state changes (for Drain)
	wg       sync.WaitGroup

	events        chan Event
	eventsQuit    chan struct{}
	droppedEvents int
}

// New creates a dispatcher with defaults applied. Call Start to serve.
func New(cfg Config) *Dispatcher {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 10 * time.Second
	}
	if cfg.Queue == nil {
		cfg.Queue = NewFIFOQueue()
	}
	if cfg.Group == nil {
		cfg.Group = FirstComeFirstServed
	}
	if cfg.WriteCoalesce < 1 {
		cfg.WriteCoalesce = 1
	}
	return &Dispatcher{
		cfg:      cfg,
		workers:  make(map[string]*workerConn),
		idle:     newIdleSet(),
		queue:    cfg.Queue,
		running:  make(map[string]*runningJob),
		idleWait: make(chan struct{}),
	}
}

// Start binds the listener and begins serving workers. It returns the bound
// address.
func (d *Dispatcher) Start() (string, error) {
	ln, err := net.Listen("tcp", d.cfg.Addr)
	if err != nil {
		return "", err
	}
	d.ln = ln
	d.epoch = time.Now()
	if d.cfg.OnEvent != nil {
		d.events = make(chan Event, 8192)
		d.eventsQuit = make(chan struct{})
		d.wg.Add(1)
		go d.drainEvents()
	}
	d.wg.Add(2)
	go d.acceptLoop()
	go d.janitor()
	return ln.Addr().String(), nil
}

// Addr returns the listen address (valid after Start).
func (d *Dispatcher) Addr() string { return d.ln.Addr().String() }

// Epoch returns the dispatcher start time; job records are relative to it.
func (d *Dispatcher) Epoch() time.Time { return d.epoch }

func (d *Dispatcher) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.serveWorker(proto.NewCodec(conn))
		}()
	}
}

// ServeConn attaches a pre-established connection as a worker transport,
// used by the in-process runtime.
func (d *Dispatcher) ServeConn(codec *proto.Codec) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.serveWorker(codec)
	}()
}

func (d *Dispatcher) serveWorker(codec *proto.Codec) {
	defer codec.Close()
	first, err := codec.Recv()
	if err != nil || first.Kind != proto.KindRegister || first.Register == nil {
		codec.Send(&proto.Envelope{Kind: proto.KindError, Error: "expected register"})
		return
	}
	wc := &workerConn{
		id:    first.Register.WorkerID,
		reg:   *first.Register,
		codec: codec,
		sendq: make(chan *proto.Envelope, 1024),
		quit:  make(chan struct{}),
		tasks: make(map[string]*runningJob),
	}
	wc.touch()

	// Wire-version negotiation (proto/binary.go): the worker announced its
	// maximum supported version on the register frame; confirm the minimum
	// of the two and enable the fast path for our own sends. Pre-v2 peers
	// announce nothing and stay on JSON.
	ver := proto.Negotiate(first.Proto)
	if ver >= proto.VersionBinary {
		codec.EnableBinary()
	}

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	if _, dup := d.workers[wc.id]; dup {
		d.mu.Unlock()
		codec.Send(&proto.Envelope{Kind: proto.KindError, Error: "duplicate worker id " + wc.id})
		return
	}
	d.workers[wc.id] = wc
	d.stats.WorkersJoined++
	d.emit(Event{Kind: EvWorkerJoined, WorkerID: wc.id, Detail: wc.reg.Host})
	staged := append([]proto.Stage(nil), d.staged...)
	d.mu.Unlock()

	// Writer stage: drains the outbound queue so scheduling never blocks on
	// a slow connection. Under backlog, up to WriteCoalesce frames are
	// batched into the codec's write buffer before one flush, amortizing
	// the syscall; an empty queue still flushes every frame immediately.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		batch := d.cfg.WriteCoalesce
		drain := func(e *proto.Envelope) error {
			if err := codec.SendBuffered(e); err != nil {
				return err
			}
			for n := 1; n < batch; n++ {
				select {
				case more := <-wc.sendq:
					if err := codec.SendBuffered(more); err != nil {
						return err
					}
				default:
					return codec.Flush()
				}
			}
			return codec.Flush()
		}
		for {
			select {
			case e := <-wc.sendq:
				if err := drain(e); err != nil {
					return
				}
			case <-wc.quit:
				// Flush anything already queued (best effort), then exit.
				for {
					select {
					case e := <-wc.sendq:
						if err := drain(e); err != nil {
							return
						}
					default:
						return
					}
				}
			}
		}
	}()

	wc.enqueue(&proto.Envelope{Kind: proto.KindRegistered, Proto: ver})
	for i := range staged {
		wc.enqueue(&proto.Envelope{Kind: proto.KindStage, Stage: &staged[i]})
	}

	// Inbound hot loop: at most one d.mu acquisition per frame (inside
	// markIdle/handleResult); heartbeat and output frames take none at all.
	for {
		env, err := codec.Recv()
		if err != nil {
			break
		}
		wc.touch()
		switch env.Kind {
		case proto.KindWorkRequest:
			d.markIdle(wc)
		case proto.KindResult:
			if env.Result != nil {
				d.handleResult(wc, *env.Result)
			}
		case proto.KindOutput:
			if env.Output != nil && d.cfg.OnOutput != nil {
				d.cfg.OnOutput(env.Output.TaskID, env.Output.Stream, env.Output.Data)
			}
		case proto.KindHeartbeat:
			// Liveness only; touch above already recorded it lock-free.
		case proto.KindStaged, proto.KindError:
			// acks and diagnostics; nothing to do
		default:
		}
	}
	d.workerGone(wc)
	<-writerDone
}

// markIdle parks a worker's work request and schedules.
func (d *Dispatcher) markIdle(wc *workerConn) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if wc.gone {
		return
	}
	if d.draining {
		wc.enqueue(&proto.Envelope{Kind: proto.KindShutdown})
		return
	}
	d.idle.Add(wc)
	d.trySchedule()
	d.kick()
}

// trySchedule starts as many queued jobs as the idle workers allow. Caller
// holds d.mu.
func (d *Dispatcher) trySchedule() {
	for {
		job := d.queue.Next(d.idle.Len())
		if job == nil {
			return
		}
		d.launch(job)
	}
}

// launch assembles a worker group and streams the job's tasks. Caller holds
// d.mu.
func (d *Dispatcher) launch(job *Job) {
	n := job.Procs()
	sel := d.cfg.Group(d.idle.Coords(), n)
	group := d.idle.Take(sel)

	rj := &runningJob{
		job:     job,
		pending: make(map[string]*workerConn, n),
		start:   time.Now(),
	}
	var tasks []proto.Task
	if job.Type == MPI {
		spec := job.Spec
		if spec.WallLimit == 0 && d.cfg.JobTimeout > 0 {
			spec.WallLimit = d.cfg.JobTimeout
		}
		exec, err := hydra.StartMPIExec(spec)
		if err != nil {
			d.finalizeLocked(rj, fmt.Sprintf("mpiexec start: %v", err))
			// return the group to the idle pool
			for _, wc := range group {
				d.idle.Add(wc)
			}
			return
		}
		rj.exec = exec
		tasks = exec.ProxyTasks()
	} else {
		tasks = []proto.Task{{
			TaskID:    job.Spec.JobID + "/seq",
			JobID:     job.Spec.JobID,
			Cmd:       job.Spec.Cmd,
			Args:      append([]string(nil), job.Spec.Args...),
			Env:       append([]string(nil), job.Spec.Env...),
			Dir:       job.Spec.Dir,
			WallLimit: job.Spec.WallLimit,
		}}
	}

	d.running[job.Spec.JobID] = rj
	d.emit(Event{Kind: EvJobStarted, JobID: job.Spec.JobID})
	for i := range tasks {
		wc := group[i]
		rj.pending[tasks[i].TaskID] = wc
		rj.workers = append(rj.workers, wc.id)
		wc.tasks[tasks[i].TaskID] = rj
		d.stats.TasksDispatched++
		d.emit(Event{Kind: EvTaskSent, JobID: job.Spec.JobID, TaskID: tasks[i].TaskID, WorkerID: wc.id})
		task := tasks[i]
		if !wc.enqueue(&proto.Envelope{Kind: proto.KindTask, Task: &task}) {
			// Writer queue overflow: treat the worker as faulty. The result
			// path will synthesize the failure when workerGone runs.
			go wc.codec.Close()
		}
	}
}

// handleResult processes a rank's completion report.
func (d *Dispatcher) handleResult(wc *workerConn, res proto.Result) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rj, ok := d.running[res.JobID]
	if !ok {
		return
	}
	if _, mine := rj.pending[res.TaskID]; !mine {
		return
	}
	delete(rj.pending, res.TaskID)
	delete(wc.tasks, res.TaskID)
	rj.results = append(rj.results, res)
	d.emit(Event{Kind: EvTaskDone, JobID: res.JobID, TaskID: res.TaskID, WorkerID: wc.id})
	if res.ExitCode != 0 {
		rj.failed = true
		if rj.errMsg == "" {
			rj.errMsg = fmt.Sprintf("task %s exited %d: %s", res.TaskID, res.ExitCode, res.Err)
		}
		// Unblock sibling ranks that may be stuck in MPI operations.
		if rj.exec != nil && len(rj.pending) > 0 {
			rj.exec.Abort()
		}
	}
	if len(rj.pending) == 0 {
		d.finalizeLocked(rj, "")
	}
	d.kick()
}

// workerGone removes a dead worker and fails its in-flight tasks (paper
// §6.1.5: JETS automatically disregards workers that fail or hang).
func (d *Dispatcher) workerGone(wc *workerConn) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if wc.gone {
		return
	}
	wc.gone = true
	close(wc.quit)
	delete(d.workers, wc.id)
	d.stats.WorkersLost++
	d.emit(Event{Kind: EvWorkerLost, WorkerID: wc.id})
	d.idle.Remove(wc)
	for taskID, rj := range wc.tasks {
		delete(wc.tasks, taskID)
		if _, mine := rj.pending[taskID]; !mine {
			continue
		}
		delete(rj.pending, taskID)
		rj.failed = true
		rj.faulted = true
		if rj.errMsg == "" {
			rj.errMsg = fmt.Sprintf("worker %s lost while running %s", wc.id, taskID)
		}
		rj.results = append(rj.results, proto.Result{
			TaskID: taskID, JobID: rj.job.Spec.JobID, ExitCode: -1,
			Err: "worker lost",
		})
		if rj.exec != nil {
			rj.exec.Abort()
		}
		if len(rj.pending) == 0 {
			d.finalizeLocked(rj, "")
		}
	}
	d.kick()
}

// finalizeLocked completes or retries a finished job. Caller holds d.mu.
func (d *Dispatcher) finalizeLocked(rj *runningJob, overrideErr string) {
	delete(d.running, rj.job.Spec.JobID)
	if rj.exec != nil {
		rj.exec.Close()
	}
	if overrideErr != "" {
		rj.failed = true
		rj.errMsg = overrideErr
	}

	if rj.failed && rj.faulted && rj.job.retries < d.cfg.MaxJobRetries {
		rj.job.retries++
		d.stats.JobsRetried++
		d.emit(Event{Kind: EvJobRetried, JobID: rj.job.Spec.JobID, Detail: rj.errMsg})
		d.queue.Requeue(rj.job)
		d.trySchedule()
		return
	}

	stop := time.Since(d.epoch)
	start := rj.start.Sub(d.epoch)
	if !rj.failed {
		d.records = append(d.records, metrics.JobRecord{
			ID:    rj.job.Spec.JobID,
			Procs: rj.job.Procs(),
			Start: start,
			Stop:  stop,
		})
		d.stats.JobsCompleted++
		d.emit(Event{Kind: EvJobCompleted, JobID: rj.job.Spec.JobID})
	} else {
		d.stats.JobsFailed++
		d.emit(Event{Kind: EvJobFailed, JobID: rj.job.Spec.JobID, Detail: rj.errMsg})
	}
	rj.job.handle.complete(JobResult{
		JobID:       rj.job.Spec.JobID,
		Failed:      rj.failed,
		Err:         rj.errMsg,
		Retries:     rj.job.retries,
		Start:       start,
		Stop:        stop,
		TaskResults: rj.results,
		Workers:     rj.workers,
	})
}

// janitor expires workers whose heartbeats stopped.
func (d *Dispatcher) janitor() {
	defer d.wg.Done()
	interval := d.cfg.HeartbeatTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for range t.C {
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return
		}
		cutoff := time.Now().Add(-d.cfg.HeartbeatTimeout).UnixNano()
		var expired []*workerConn
		for _, wc := range d.workers {
			if wc.lastSeen.Load() < cutoff {
				expired = append(expired, wc)
			}
		}
		d.mu.Unlock()
		for _, wc := range expired {
			// Closing the connection pops the reader loop, which runs the
			// full workerGone path.
			wc.codec.Close()
		}
	}
}

// kick wakes Drain waiters. Caller holds d.mu.
func (d *Dispatcher) kick() {
	close(d.idleWait)
	d.idleWait = make(chan struct{})
}

// Submit enqueues a job and returns its handle.
func (d *Dispatcher) Submit(job Job) (*Handle, error) {
	if err := job.Spec.Validate(); err != nil {
		return nil, err
	}
	if job.Type == Sequential && job.Spec.NProcs != 1 {
		return nil, fmt.Errorf("dispatch: sequential job %q must have NProcs 1", job.Spec.JobID)
	}
	h := newHandle(job.Spec.JobID)
	j := &job
	j.handle = h
	j.submitted = time.Now()

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.draining {
		return nil, errors.New("dispatch: dispatcher is shut down")
	}
	if _, dup := d.running[job.Spec.JobID]; dup {
		return nil, fmt.Errorf("dispatch: duplicate job id %q", job.Spec.JobID)
	}
	d.stats.JobsSubmitted++
	d.emit(Event{Kind: EvJobSubmitted, JobID: job.Spec.JobID, Detail: job.Type.String()})
	d.queue.Push(j)
	d.trySchedule()
	d.kick()
	return h, nil
}

// Drain blocks until the queue and all running jobs are empty, or ctx ends.
func (d *Dispatcher) Drain(ctx context.Context) error {
	for {
		d.mu.Lock()
		empty := d.queue.Len() == 0 && len(d.running) == 0
		wait := d.idleWait
		d.mu.Unlock()
		if empty {
			return nil
		}
		select {
		case <-wait:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Shutdown drains (bounded by ctx), tells all workers to exit, and closes
// the listener.
func (d *Dispatcher) Shutdown(ctx context.Context) error {
	err := d.Drain(ctx)
	d.mu.Lock()
	d.draining = true
	workers := make([]*workerConn, 0, len(d.workers))
	for _, wc := range d.workers {
		workers = append(workers, wc)
	}
	d.mu.Unlock()
	for _, wc := range workers {
		wc.enqueue(&proto.Envelope{Kind: proto.KindShutdown})
	}
	d.Close()
	return err
}

// Close releases the listener immediately. Outstanding handles complete
// with failures as connections drop.
func (d *Dispatcher) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	if d.eventsQuit != nil {
		close(d.eventsQuit)
	}
	if d.ln != nil {
		return d.ln.Close()
	}
	return nil
}

// StageFile distributes a file to every current and future worker's local
// cache (the paper's local-storage optimization: proxy binaries, user
// executables, and reused data files).
func (d *Dispatcher) StageFile(name string, data []byte) {
	s := proto.Stage{Name: name, Data: data}
	d.mu.Lock()
	d.staged = append(d.staged, s)
	workers := make([]*workerConn, 0, len(d.workers))
	for _, wc := range d.workers {
		workers = append(workers, wc)
	}
	d.mu.Unlock()
	for _, wc := range workers {
		wc.enqueue(&proto.Envelope{Kind: proto.KindStage, Stage: &s})
	}
}

// Stats returns a snapshot of the cumulative counters.
func (d *Dispatcher) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Workers reports the number of live registered workers.
func (d *Dispatcher) Workers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.workers)
}

// IdleWorkers reports workers currently parked waiting for tasks.
func (d *Dispatcher) IdleWorkers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.idle.Len()
}

// QueuedJobs reports jobs waiting for workers.
func (d *Dispatcher) QueuedJobs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.queue.Len()
}

// RunningJobs reports jobs currently executing.
func (d *Dispatcher) RunningJobs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.running)
}

// Records returns a copy of the completed-job records (offsets from Epoch),
// the raw material for the utilization and load-level figures.
func (d *Dispatcher) Records() []metrics.JobRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]metrics.JobRecord(nil), d.records...)
}

package dispatch

import "sort"

// QueuePolicy orders the job queue. The paper's JETS uses simple FIFO for
// speed (§7 notes priority scheduling and backfill as planned work; both are
// implemented here as extensions and compared in an ablation benchmark).
type QueuePolicy interface {
	// Push appends a newly submitted job.
	Push(j *Job)
	// Requeue returns a previously dispatched job (e.g. after a worker
	// fault) to the front of consideration.
	Requeue(j *Job)
	// Next removes and returns a job that can start on idle free workers,
	// or nil if none can.
	Next(idle int) *Job
	// Peek returns the next job FIFO/priority-wise without removing it, or
	// nil when empty.
	Peek() *Job
	// Len reports queued jobs.
	Len() int
	// Jobs returns the queued jobs in any order, without removing them. The
	// dispatcher's online journal checkpoint enumerates live state through
	// it; the returned slice must not alias the queue's internal storage.
	Jobs() []*Job
}

// ---------------------------------------------------------------------------

// FIFOQueue is strict first-in-first-out with head-of-line blocking: if the
// head job does not fit the free workers, nothing runs. This is the paper's
// production policy — MPTC workloads are typically uniform, so the
// simplicity buys dispatch speed.
type FIFOQueue struct {
	jobs []*Job
}

// NewFIFOQueue returns an empty FIFO queue.
func NewFIFOQueue() *FIFOQueue { return &FIFOQueue{} }

// Push implements QueuePolicy.
func (q *FIFOQueue) Push(j *Job) { q.jobs = append(q.jobs, j) }

// Requeue implements QueuePolicy.
func (q *FIFOQueue) Requeue(j *Job) { q.jobs = append([]*Job{j}, q.jobs...) }

// Next implements QueuePolicy.
func (q *FIFOQueue) Next(idle int) *Job {
	if len(q.jobs) == 0 || q.jobs[0].Procs() > idle {
		return nil
	}
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	return j
}

// Peek implements QueuePolicy.
func (q *FIFOQueue) Peek() *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	return q.jobs[0]
}

// Len implements QueuePolicy.
func (q *FIFOQueue) Len() int { return len(q.jobs) }

// Jobs implements QueuePolicy.
func (q *FIFOQueue) Jobs() []*Job { return append([]*Job(nil), q.jobs...) }

// ---------------------------------------------------------------------------

// PriorityQueue orders by (priority desc, submission order asc) and can
// optionally backfill: when the top job does not fit the free workers, a
// lower-priority job that does fit may run instead. This implements the §7
// extension.
type PriorityQueue struct {
	Backfill bool
	jobs     []*Job // maintained sorted
	seq      int
	seqs     map[*Job]int
}

// NewPriorityQueue returns an empty priority queue; backfill selects whether
// smaller jobs may overtake a blocked head job.
func NewPriorityQueue(backfill bool) *PriorityQueue {
	return &PriorityQueue{Backfill: backfill, seqs: make(map[*Job]int)}
}

func (q *PriorityQueue) less(a, b *Job) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return q.seqs[a] < q.seqs[b]
}

func (q *PriorityQueue) insert(j *Job) {
	i := sort.Search(len(q.jobs), func(i int) bool { return q.less(j, q.jobs[i]) })
	q.jobs = append(q.jobs, nil)
	copy(q.jobs[i+1:], q.jobs[i:])
	q.jobs[i] = j
}

// Push implements QueuePolicy.
func (q *PriorityQueue) Push(j *Job) {
	q.seq++
	q.seqs[j] = q.seq
	q.insert(j)
}

// Requeue implements QueuePolicy: the job keeps its original submission
// order so a retried job re-enters ahead of later submissions of equal
// priority.
func (q *PriorityQueue) Requeue(j *Job) {
	if _, ok := q.seqs[j]; !ok {
		q.seq++
		q.seqs[j] = -q.seq // ahead of everything submitted so far
	}
	q.insert(j)
}

// Next implements QueuePolicy.
func (q *PriorityQueue) Next(idle int) *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	limit := 1
	if q.Backfill {
		limit = len(q.jobs)
	}
	for i := 0; i < limit; i++ {
		if q.jobs[i].Procs() <= idle {
			j := q.jobs[i]
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			delete(q.seqs, j)
			return j
		}
	}
	return nil
}

// Peek implements QueuePolicy.
func (q *PriorityQueue) Peek() *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	return q.jobs[0]
}

// Len implements QueuePolicy.
func (q *PriorityQueue) Len() int { return len(q.jobs) }

// Jobs implements QueuePolicy.
func (q *PriorityQueue) Jobs() []*Job { return append([]*Job(nil), q.jobs...) }

// ---------------------------------------------------------------------------

// GroupPolicy selects which n idle workers form an MPI job's group, given
// the interconnect coordinates of each idle worker (nil for workers that
// did not report coordinates). It returns n distinct indexes into the idle
// list.
//
// The paper's default is first-come-first-served; topology-aware grouping
// is listed as future work (§7) and implemented here as an extension.
type GroupPolicy func(coords [][]int, n int) []int

// FirstComeFirstServed picks the n longest-idle workers — the paper's
// default behavior ("group nodes in first come, first served order").
func FirstComeFirstServed(coords [][]int, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// TopologyAware greedily grows a group with minimal total Manhattan distance
// on the interconnect: seed with the longest-idle worker, then repeatedly
// add the idle worker closest to the current group. Workers without
// coordinates are treated as maximally distant.
func TopologyAware(coords [][]int, n int) []int {
	if n <= 0 {
		return nil
	}
	chosen := []int{0}
	used := map[int]bool{0: true}
	for len(chosen) < n {
		best, bestDist := -1, int(^uint(0)>>1)
		for i := range coords {
			if used[i] {
				continue
			}
			d := 0
			for _, c := range chosen {
				d += manhattan(coords[i], coords[c])
			}
			if d < bestDist {
				best, bestDist = i, d
			}
		}
		chosen = append(chosen, best)
		used[best] = true
	}
	return chosen
}

// manhattan returns the L1 distance between coordinate vectors; missing or
// mismatched coordinates count as a large penalty so ungrouped workers are
// chosen last.
func manhattan(a, b []int) int {
	const penalty = 1 << 20
	if len(a) == 0 || len(b) == 0 || len(a) != len(b) {
		return penalty
	}
	d := 0
	for i := range a {
		x := a[i] - b[i]
		if x < 0 {
			x = -x
		}
		d += x
	}
	return d
}

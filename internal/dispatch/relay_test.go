package dispatch

import (
	"bytes"
	"context"
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"jets/internal/hydra"
	"jets/internal/proto"
	"jets/internal/worker"
)

// recvStageFrame builds a real stage Frame the way a data-plane endpoint
// would: encoded by a binary peer, received with RecvFrame.
func recvStageFrame(t *testing.T, s *proto.Stage) *proto.Frame {
	t.Helper()
	a, b := proto.Pipe()
	defer a.Close()
	defer b.Close()
	a.EnableBinary()
	errc := make(chan error, 1)
	go func() { errc <- a.Send(&proto.Envelope{Kind: proto.KindStage, Stage: s}) }()
	f, err := b.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !f.Binary() || f.Kind() != proto.KindStage {
		t.Fatalf("kind=%s binary=%v", f.Kind(), f.Binary())
	}
	return f
}

// TestOnOutputFrameRelay checks the raw output hook: it must observe the
// same chunks as the decoded callback, as binary frames when the producing
// worker negotiated v2, and retained payloads must stay intact after the
// dispatcher releases its own reference (the refcount, not the dispatch
// loop, owns the buffer).
func TestOnOutputFrameRelay(t *testing.T) {
	proto.PoisonFrames(true)
	defer proto.PoisonFrames(false)

	type rawChunk struct {
		bin  bool
		data []byte
		f    *proto.Frame
	}
	var mu sync.Mutex
	var raws []rawChunk
	var decoded []string
	tc := startCluster(t, 1, Config{
		OnOutputFrame: func(f *proto.Frame) {
			env, err := f.Envelope()
			if err != nil || env.Output == nil {
				return
			}
			f.Retain() // keep the frame past the borrow, like a relay queue
			mu.Lock()
			raws = append(raws, rawChunk{bin: f.Binary(), data: env.Output.Data, f: f})
			mu.Unlock()
		},
		OnOutput: func(taskID, stream string, data []byte) {
			mu.Lock()
			decoded = append(decoded, string(data))
			mu.Unlock()
		},
	})
	payload := bytes.Repeat([]byte{0xA7}, 2048)
	tc.runner.Register("emit", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		stdout.Write(payload)
		return 0
	})
	h, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "e", NProcs: 1, Cmd: "emit"}, Type: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	h.Wait()

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(raws)
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(raws) == 0 {
		t.Fatal("OnOutputFrame never fired")
	}
	if len(raws) != len(decoded) {
		t.Fatalf("raw hook saw %d chunks, decoded hook %d", len(raws), len(decoded))
	}
	for i, rc := range raws {
		if !rc.bin {
			t.Errorf("chunk %d: v2 worker produced a non-binary output frame", i)
		}
		if !bytes.Equal(rc.data, payload) {
			t.Errorf("chunk %d: payload corrupted (poisoned=%v)", i, bytes.Contains(rc.data, []byte{0xDB, 0xDB}))
		}
		rc.f.Release()
	}
}

// TestStageFrameFansOutAndReplays covers Dispatcher.StageFrame: the raw
// frame reaches a connected worker's cache, and the decoded record replays
// to a worker that joins afterwards.
func TestStageFrameFansOutAndReplays(t *testing.T) {
	d := New(Config{})
	addr, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	runner := hydra.NewFuncRunner()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	payload := []byte{0x00, 0xBF, 0x7B, 0x01, 0xDB, 0xFF}
	startWorker := func(id string, jsonOnly bool) string {
		dir := t.TempDir()
		w, werr := worker.New(worker.Config{
			ID: id, DispatcherAddr: addr, Runner: runner,
			HeartbeatInterval: 20 * time.Millisecond, CacheDir: dir, JSONOnly: jsonOnly,
		})
		if werr != nil {
			t.Fatal(werr)
		}
		go w.Run(ctx)
		deadline := time.Now().Add(5 * time.Second)
		for d.Workers() == 0 || !workerKnown(d, id) {
			if time.Now().After(deadline) {
				t.Fatalf("worker %s never registered", id)
			}
			time.Sleep(time.Millisecond)
		}
		return dir
	}

	// One binary and one JSON-only worker up front: the raw relay must reach
	// the first verbatim and fall back to re-encoding for the second.
	binDir := startWorker("bin-worker", false)
	jsonDir := startWorker("json-worker", true)

	f := recvStageFrame(t, &proto.Stage{Name: "weights.bin", Data: payload})
	if err := d.StageFrame(f); err != nil {
		t.Fatal(err)
	}
	f.Release()

	lateDir := startWorker("late-worker", false)
	for name, dir := range map[string]string{"bin": binDir, "json": jsonDir, "late": lateDir} {
		deadline := time.Now().Add(5 * time.Second)
		for {
			data, rerr := os.ReadFile(dir + "/weights.bin")
			if rerr == nil && bytes.Equal(data, payload) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s worker never cached the staged frame: %v", name, rerr)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Misuse: a non-stage frame is rejected.
	a, b := proto.Pipe()
	defer a.Close()
	defer b.Close()
	go a.Send(&proto.Envelope{Kind: proto.KindWorkRequest})
	wf, err := b.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	defer wf.Release()
	if err := d.StageFrame(wf); err == nil {
		t.Fatal("StageFrame accepted a work-request frame")
	}
}

func workerKnown(d *Dispatcher, id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.workers[id]
	return ok
}

// TestRawRelaySkipsDecodeForJSONPeer: a JSON origin frame relays raw even
// to a JSON-only worker (JSON is readable by every peer), keeping the bytes
// identical. Driven through a worker-style connection speaking directly to
// the dispatcher wire.
func TestRawRelayJSONOriginToJSONWorker(t *testing.T) {
	d := New(Config{})
	addr, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	runner := hydra.NewFuncRunner()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dir := t.TempDir()
	w, err := worker.New(worker.Config{
		ID: "v1", DispatcherAddr: addr, Runner: runner,
		HeartbeatInterval: 20 * time.Millisecond, CacheDir: dir, JSONOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	go w.Run(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for !workerKnown(d, "v1") {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(time.Millisecond)
	}

	// JSON-encoded stage frame (origin codec never enabled binary).
	a, b := proto.Pipe()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() {
		errc <- a.Send(&proto.Envelope{Kind: proto.KindStage, Stage: &proto.Stage{Name: "cfg", Data: []byte("k=v\n")}})
	}()
	f, err := b.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if f.Binary() {
		t.Fatal("origin frame unexpectedly binary")
	}
	if err := d.StageFrame(f); err != nil {
		t.Fatal(err)
	}
	f.Release()
	deadline = time.Now().Add(5 * time.Second)
	for {
		data, rerr := os.ReadFile(dir + "/cfg")
		if rerr == nil && string(data) == "k=v\n" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("staged file never appeared: %v", rerr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

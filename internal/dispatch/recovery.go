package dispatch

import (
	"time"

	"jets/internal/hydra"
	"jets/internal/journal"
)

// Crash recovery over the dispatcher journal (internal/journal). New replays
// the journal before serving: jobs with a Completed record are deduped and
// dropped; jobs that were queued are rebuilt and placed; jobs that were
// Dispatched when the previous process died are requeued through the
// existing retry/backoff path, exactly like a job whose workers were lost.
// The rebuilt live set is then re-journaled into fresh segments and the
// consumed history compacted away, so replay cost stays proportional to the
// live workload, not to everything the dispatcher ever ran.
//
// Recovered jobs get fresh handles (the submitting process is gone);
// RecoveredJobs exposes them so a restarted engine can wait for — and
// report — the workload it inherited.

// journal appends one record when a journal is configured. Append never
// touches the disk (group commit happens on the WAL's flush cadence), so
// callers may hold scheduling locks.
func (d *Dispatcher) journal(r journal.Record) {
	if d.jnl == nil {
		return
	}
	d.jnl.Append(r)
}

// submittedRecord flattens a job into its durable Submitted record.
func submittedRecord(j *Job) journal.Record {
	return journal.Record{
		Kind:      journal.Submitted,
		JobID:     j.Spec.JobID,
		JobType:   int(j.Type),
		Priority:  j.Priority,
		NProcs:    j.Spec.NProcs,
		Cmd:       j.Spec.Cmd,
		Args:      j.Spec.Args,
		Env:       j.Spec.Env,
		Dir:       j.Spec.Dir,
		WallLimit: j.Spec.WallLimit,
	}
}

// recoverJournal rebuilds the scheduling state from the journal. Called from
// New before any concurrency exists; placement still takes the shard locks
// it would under load.
func (d *Dispatcher) recoverJournal() {
	type jobState struct {
		job        *Job
		dispatched bool
	}
	var order []string // first-submission order, preserved on requeue
	live := make(map[string]*jobState)
	d.recoveryErr = d.jnl.Replay(func(r journal.Record) error {
		switch r.Kind {
		case journal.Submitted:
			j := &Job{
				Spec: hydra.JobSpec{
					JobID:     r.JobID,
					NProcs:    r.NProcs,
					Cmd:       r.Cmd,
					Args:      r.Args,
					Env:       r.Env,
					Dir:       r.Dir,
					WallLimit: r.WallLimit,
				},
				Type:     JobType(r.JobType),
				Priority: r.Priority,
			}
			if _, seen := live[r.JobID]; !seen {
				order = append(order, r.JobID)
			}
			live[r.JobID] = &jobState{job: j}
		case journal.Dispatched:
			if s := live[r.JobID]; s != nil {
				s.dispatched = true
			}
		case journal.Retried:
			if s := live[r.JobID]; s != nil {
				s.job.retries = r.Attempt
				s.dispatched = false // back in a queue when the record was cut
			}
		case journal.Completed:
			delete(live, r.JobID)
		}
		return nil
	})

	for _, id := range order {
		s, ok := live[id]
		if !ok {
			continue // completed in a previous life
		}
		j := s.job
		j.handle = newHandle(id)
		j.submitted = time.Now()
		j.seq = d.subSeq.Add(1)
		d.live[id] = struct{}{}
		d.stats.jobsReplayed.Add(1)
		d.recovered = append(d.recovered, j.handle)
		// Re-journal into the fresh post-open segment so Compact below can
		// drop the consumed history without losing the live set.
		d.journal(submittedRecord(j))
		if j.retries > 0 {
			d.journal(journal.Record{Kind: journal.Retried, JobID: id, Attempt: j.retries})
		}
		if s.dispatched {
			// Formerly running: the old process died with this job on
			// workers whose results can never be credited. Route it through
			// the same backoff'd requeue a worker fault would.
			d.requeue(j)
		} else {
			d.placeJob(j, false)
		}
	}
	d.jnl.Sync()
	d.jnl.Compact()
}

// RecoveredJobs returns the handles of jobs rebuilt from the journal at
// startup, in their original submission order. The handles behave exactly
// like freshly submitted ones; a restarted engine waits on them to finish
// the inherited workload.
func (d *Dispatcher) RecoveredJobs() []*Handle {
	return append([]*Handle(nil), d.recovered...)
}

// RecoveryError reports a failure reading the journal during New. Recovery
// is best-effort past the error point: everything replayed before it is
// live, anything after is lost (re-submission is safe — completed records
// that did replay still dedupe).
func (d *Dispatcher) RecoveryError() error { return d.recoveryErr }

package dispatch

import (
	"errors"
	"fmt"
	"log"
	"time"

	"jets/internal/hydra"
	"jets/internal/journal"
)

// Crash recovery over the dispatcher journal (internal/journal). New replays
// the journal before serving: jobs with a Completed record are deduped and
// dropped; jobs that were queued are rebuilt and placed; jobs that were
// Dispatched when the previous process died are requeued through the
// existing retry/backoff path, exactly like a job whose workers were lost.
// The rebuilt live set is then re-journaled into fresh segments and the
// consumed history compacted away, so replay cost stays proportional to the
// live workload, not to everything the dispatcher ever ran.
//
// Recovered jobs get fresh handles (the submitting process is gone);
// RecoveredJobs exposes them so a restarted engine can wait for — and
// report — the workload it inherited.

// journal appends one record when a journal is configured. Append never
// touches the disk (group commit happens on the WAL's flush cadence), so
// callers may hold scheduling locks. An append failure is the WAL's sticky
// write/fsync error: from that point the dispatcher is effectively running
// in-memory again, so every dropped record bumps jets_journal_errors_total
// and the first one is logged.
func (d *Dispatcher) journal(r journal.Record) {
	if d.jnl == nil {
		return
	}
	if err := d.jnl.Append(r); err != nil {
		d.stats.journalErrors.Add(1)
		d.journalLogOnce.Do(func() {
			log.Printf("dispatch: journal append failed, job state is no longer durable: %v", err)
		})
	}
}

// submittedRecord flattens a job into its durable Submitted record.
func submittedRecord(j *Job) journal.Record {
	return journal.Record{
		Kind:      journal.Submitted,
		JobID:     j.Spec.JobID,
		JobType:   int(j.Type),
		Priority:  j.Priority,
		NProcs:    j.Spec.NProcs,
		Cmd:       j.Spec.Cmd,
		Args:      j.Spec.Args,
		Env:       j.Spec.Env,
		Dir:       j.Spec.Dir,
		WallLimit: j.Spec.WallLimit,
	}
}

// jobFromRecord rebuilds a job from its durable Submitted record (the exact
// inverse of submittedRecord); used by replay and by spill rehydration.
func jobFromRecord(r journal.Record) *Job {
	return &Job{
		Spec: hydra.JobSpec{
			JobID:     r.JobID,
			NProcs:    r.NProcs,
			Cmd:       r.Cmd,
			Args:      r.Args,
			Env:       r.Env,
			Dir:       r.Dir,
			WallLimit: r.WallLimit,
		},
		Type:     JobType(r.JobType),
		Priority: r.Priority,
	}
}

// recoverJournal rebuilds the scheduling state from the journal. Called from
// New before any concurrency exists; placement still takes the shard locks
// it would under load.
func (d *Dispatcher) recoverJournal() {
	type jobState struct {
		job        *Job // nil for spill-resident jobs (spec lives in the spill store)
		dispatched bool
		spilled    bool
		attempt    int
	}
	var order []string // first-submission order, preserved on requeue
	live := make(map[string]*jobState)
	if err := d.jnl.Replay(func(r journal.Record) error {
		switch r.Kind {
		case journal.Submitted:
			if _, seen := live[r.JobID]; !seen {
				order = append(order, r.JobID)
			}
			live[r.JobID] = &jobState{job: jobFromRecord(r)}
		case journal.SpillRef:
			// Checkpoint reference: the job is live, its spec in the spill
			// store. Re-placement below keeps it cold — a million-job backlog
			// recovers without reading (or re-journaling) a million specs.
			if _, seen := live[r.JobID]; !seen {
				order = append(order, r.JobID)
			}
			live[r.JobID] = &jobState{spilled: true, attempt: r.Attempt}
		case journal.Dispatched:
			if s := live[r.JobID]; s != nil {
				s.dispatched = true
			}
		case journal.Retried:
			if s := live[r.JobID]; s != nil {
				s.attempt = r.Attempt
				s.dispatched = false // back in a queue when the record was cut
			}
		case journal.Completed:
			delete(live, r.JobID)
		case journal.Migrated:
			// Terminal locally: the job now lives on (and is journaled by)
			// the destination instance named in the record.
			delete(live, r.JobID)
		}
		return nil
	}); err != nil {
		d.recoveryErr = errors.Join(d.recoveryErr, err)
	}

	for _, id := range order {
		s, ok := live[id]
		if !ok {
			continue // completed in a previous life
		}
		// An ID submitted, completed, and resubmitted in one run appears in
		// order once per submission (the Completed record deletes the live
		// entry, so the resubmission passes the !seen check again). Consume
		// the entry so the later occurrence hits the !ok path above instead
		// of recovering — and double-completing — the same *Job twice.
		delete(live, id)
		j := s.job
		if j == nil {
			// Spill-resident. A still-cold job goes straight back to a cold
			// tail by reference; one the old process had rehydrated and
			// dispatched needs its spec now, to ride the requeue path.
			if sp := d.spillLoaded(); sp == nil {
				d.recoveryErr = errors.Join(d.recoveryErr,
					fmt.Errorf("dispatch: journal references spilled job %q but no spill store is configured", id))
				continue
			}
			if !s.dispatched {
				h := newHandle(id)
				d.live[id] = struct{}{}
				d.handles[id] = h
				d.stats.jobsReplayed.Add(1)
				d.recovered = append(d.recovered, h)
				d.journal(journal.Record{Kind: journal.SpillRef, JobID: id, Attempt: s.attempt})
				d.placeCold(coldJob{
					id:        id,
					seq:       d.subSeq.Add(1),
					submitted: time.Now().UnixNano(),
					retries:   int32(s.attempt),
				})
				continue
			}
			rec, found, err := d.spillLoaded().Get(id)
			if err != nil || !found {
				d.recoveryErr = errors.Join(d.recoveryErr,
					fmt.Errorf("dispatch: spilled spec for recovered job %q unreadable (err=%v)", id, err))
				// Cut a terminal record so the unresolvable reference does not
				// replay forever.
				d.journal(journal.Record{Kind: journal.Completed, JobID: id, Failed: true})
				continue
			}
			j = jobFromRecord(rec)
			// The spec re-enters memory for the requeue; its spill entry stays
			// until a terminal record exists, like any rehydration.
		}
		j.retries = s.attempt
		j.handle = newHandle(id)
		j.submitted = time.Now()
		j.seq = d.subSeq.Add(1)
		d.live[id] = struct{}{}
		d.handles[id] = j.handle
		d.stats.jobsReplayed.Add(1)
		d.recovered = append(d.recovered, j.handle)
		// Re-journal into the fresh post-open segment so Compact below can
		// drop the consumed history without losing the live set.
		d.journal(submittedRecord(j))
		if j.retries > 0 {
			d.journal(journal.Record{Kind: journal.Retried, JobID: id, Attempt: j.retries})
		}
		if s.dispatched {
			// Formerly running: the old process died with this job on
			// workers whose results can never be credited. Route it through
			// the same backoff'd requeue a worker fault would.
			d.requeue(j)
		} else {
			d.placeJob(j, false)
		}
	}
	if sp := d.spillLoaded(); sp != nil {
		// Sweep spill entries whose jobs the journal shows terminal — without
		// this, completed-then-compacted history leaks specs forever.
		keep := make(map[string]struct{}, len(d.live))
		for id := range d.live {
			keep[id] = struct{}{}
		}
		sp.RetainOnly(keep)
		// Cold tails placed above refill lazily; kick the first pass so a
		// worker arriving before any pop still finds hot work.
		for _, s := range d.shards {
			s.mu.Lock()
			d.maybeRefillLocked(s)
			s.mu.Unlock()
		}
	}
	// The replayed history may only be compacted away once the re-journaled
	// live set is durable: if the fsync fails (disk full, IO error), Compact
	// would delete the only surviving copy of the workload. Skip it and
	// surface the failure — the old segments stay on disk and replay again,
	// idempotently, on the next start.
	if err := d.jnl.Sync(); err != nil {
		d.recoveryErr = errors.Join(d.recoveryErr,
			fmt.Errorf("dispatch: re-journaled live set not durable, keeping replayed segments: %w", err))
		return
	}
	if err := d.jnl.Compact(); err != nil {
		// Correctness-benign — leftover segments replay again next start and
		// dedupe per job ID — but worth surfacing.
		d.recoveryErr = errors.Join(d.recoveryErr,
			fmt.Errorf("dispatch: compacting replayed journal segments: %w", err))
	}
}

// RecoveredJobs returns the handles of jobs rebuilt from the journal at
// startup, in their original submission order. The handles behave exactly
// like freshly submitted ones; a restarted engine waits on them to finish
// the inherited workload.
func (d *Dispatcher) RecoveredJobs() []*Handle {
	return append([]*Handle(nil), d.recovered...)
}

// RecoveryError reports a failure during journal recovery in New: either a
// replay error — recovery is best-effort past the error point: everything
// replayed before it is live, anything after is lost (re-submission is safe,
// completed records that did replay still dedupe) — or a failure to fsync
// the re-journaled live set, in which case the replayed segments are kept so
// no state is lost but durability of this run's journal is not established.
func (d *Dispatcher) RecoveryError() error { return d.recoveryErr }

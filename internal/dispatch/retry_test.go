package dispatch

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"jets/internal/hydra"
)

func TestRetryDelaySchedule(t *testing.T) {
	d := New(Config{RetryBackoff: 100 * time.Millisecond, RetryBackoffMax: 450 * time.Millisecond})
	want := []time.Duration{
		100 * time.Millisecond, // attempt 1
		200 * time.Millisecond, // attempt 2
		400 * time.Millisecond, // attempt 3
		450 * time.Millisecond, // attempt 4: capped
		450 * time.Millisecond, // attempt 5: stays capped
	}
	for i, w := range want {
		if got := d.retryDelay(i + 1); got != w {
			t.Errorf("retryDelay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Negative RetryBackoff disables the delay entirely (pre-backoff
	// immediate requeue, for tests and A/B measurement).
	d = New(Config{RetryBackoff: -1})
	if got := d.retryDelay(1); got != 0 {
		t.Errorf("disabled retryDelay = %v, want 0", got)
	}
	if got := d.retryDelay(7); got != 0 {
		t.Errorf("disabled retryDelay(7) = %v, want 0", got)
	}
}

func TestRetryBackoffDefaults(t *testing.T) {
	d := New(Config{})
	if d.cfg.RetryBackoff != 100*time.Millisecond || d.cfg.RetryBackoffMax != 5*time.Second {
		t.Errorf("defaults = %v/%v, want 100ms/5s", d.cfg.RetryBackoff, d.cfg.RetryBackoffMax)
	}
	// An explicit cap below the base backoff means "don't grow", so it is
	// clamped up to the base, not silently rewritten to the default.
	d = New(Config{RetryBackoff: time.Second, RetryBackoffMax: 10 * time.Millisecond})
	if d.cfg.RetryBackoffMax != time.Second {
		t.Errorf("RetryBackoffMax = %v, want clamp to RetryBackoff (1s)", d.cfg.RetryBackoffMax)
	}
}

// TestRetryBackoffSpacesAttempts is the regression test for the fault-retry
// hot loop: before the backoff existed, a faulted job was requeued
// immediately, so a job that reliably killed its worker respun through the
// pool as fast as workers rejoined. With RetryBackoff configured, the second
// attempt must start no sooner than the backoff after the fault.
func TestRetryBackoffSpacesAttempts(t *testing.T) {
	const backoff = 250 * time.Millisecond
	tc := startCluster(t, 2, Config{
		MaxJobRetries: 2, HeartbeatTimeout: 5 * time.Second,
		RetryBackoff: backoff, RetryBackoffMax: 2 * time.Second,
	})
	var mu sync.Mutex
	runs := 0
	var faultAt, retryAt time.Time
	tc.runner.Register("victim", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		mu.Lock()
		runs++
		first := runs == 1
		if !first && retryAt.IsZero() {
			retryAt = time.Now()
		}
		mu.Unlock()
		if first {
			mu.Lock()
			faultAt = time.Now()
			mu.Unlock()
			for _, w := range tc.workers {
				if w.Busy() {
					w.Kill()
				}
			}
			<-ctx.Done()
			return 1
		}
		return 0
	})
	h, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "spaced", NProcs: 1, Cmd: "victim"}, Type: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if res.Failed {
		t.Fatalf("retried job failed: %+v", res)
	}
	if res.Retries != 1 {
		t.Fatalf("retries = %d, want 1", res.Retries)
	}
	mu.Lock()
	gap := retryAt.Sub(faultAt)
	mu.Unlock()
	// The fault is detected when the killed worker's connection closes,
	// which happens at (or just after) faultAt; the requeue timer then
	// waits the full backoff. Scheduling only adds delay, so the lower
	// bound is safe to assert; a pre-fix immediate requeue restarts within
	// a few milliseconds and fails it clearly.
	if gap < backoff-20*time.Millisecond {
		t.Fatalf("retry started %v after the fault, want >= ~%v (hot-loop regression)", gap, backoff)
	}
}

// TestDrainWaitsForPendingRetry pins the backoff's interaction with Drain: a
// job parked in its retry timer is in neither a queue nor the running table,
// and Drain must not declare the dispatcher empty while it is pending.
func TestDrainWaitsForPendingRetry(t *testing.T) {
	tc := startCluster(t, 2, Config{
		MaxJobRetries: 2, HeartbeatTimeout: 5 * time.Second,
		RetryBackoff: 300 * time.Millisecond, RetryBackoffMax: 300 * time.Millisecond,
	})
	var mu sync.Mutex
	runs := 0
	tc.runner.Register("victim", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		mu.Lock()
		runs++
		first := runs == 1
		mu.Unlock()
		if first {
			for _, w := range tc.workers {
				if w.Busy() {
					w.Kill()
				}
			}
			<-ctx.Done()
			return 1
		}
		return 0
	})
	h, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "drain-me", NProcs: 1, Cmd: "victim"}, Type: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the fault to be detected (worker loss) so the job is likely
	// inside its backoff window when Drain starts.
	deadline := time.Now().Add(5 * time.Second)
	for tc.d.Stats().WorkersLost == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fault never detected")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tc.d.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	res, done := h.TryResult()
	if !done {
		t.Fatal("Drain returned while the job was still pending its retry")
	}
	if res.Failed {
		t.Fatalf("retried job failed: %+v", res)
	}
}

package dispatch

// Tests for the federation surface (ISSUE 9): the instance-level steal/
// submit hooks the router tier builds on, the steal-vs-shutdown draining
// gate, and the per-instance obs namespacing that lets several dispatchers
// share one process-wide registry.

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"jets/internal/hydra"
	"jets/internal/journal"
	"jets/internal/obs"
)

// memJournal captures appended records for assertions.
type memJournal struct {
	mu   sync.Mutex
	recs []journal.Record
}

func (m *memJournal) Append(r journal.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs = append(m.recs, r)
	return nil
}
func (m *memJournal) Sync() error                                { return nil }
func (m *memJournal) Replay(fn func(journal.Record) error) error { return nil }
func (m *memJournal) Compact() error                             { return nil }
func (m *memJournal) Close() error                               { return nil }

func (m *memJournal) byKind(k journal.Kind) []journal.Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []journal.Record
	for _, r := range m.recs {
		if r.Kind == k {
			out = append(out, r)
		}
	}
	return out
}

// TestInstanceLabelsKeepSharedRegistryCollisionFree is the satellite-1
// regression: before Config.Instance existed, the second dispatcher in a
// process re-registered every series name and Registry's first-wins rule
// silently froze its metrics. With instance labels both export.
func TestInstanceLabelsKeepSharedRegistryCollisionFree(t *testing.T) {
	reg := obs.NewRegistry()
	da := New(Config{Instance: "a", Obs: reg})
	db := New(Config{Instance: "b", Obs: reg})
	defer da.Close()
	defer db.Close()
	if _, err := da.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Start(); err != nil {
		t.Fatal(err)
	}
	// One submission on each instance; no workers, the jobs just queue.
	for i, d := range []*Dispatcher{da, db} {
		if _, err := d.Submit(Job{Spec: hydra.JobSpec{JobID: fmt.Sprintf("col%d", i), NProcs: 1, Cmd: "x"}, Type: Sequential}); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`jets_jobs_submitted_total{instance="a"} 1`,
		`jets_jobs_submitted_total{instance="b"} 1`,
		`jets_queued_jobs{instance="a"} 1`,
		`jets_queued_jobs{instance="b"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// Both instances' shard gauges must be present too (instance label
	// composed with the shard label).
	if !strings.Contains(text, `jets_shard_queued_jobs{instance="a",shard="0"}`) ||
		!strings.Contains(text, `jets_shard_queued_jobs{instance="b",shard="0"}`) {
		t.Errorf("per-shard series not instance-qualified:\n%s", text)
	}
}

// TestEmptyInstanceKeepsUnlabeledSeries pins the back-compat contract: a
// dispatcher without an instance name exports the exact historical series
// names (the CI metrics smoke greps `^jets_jobs_submitted_total <n>`).
func TestEmptyInstanceKeepsUnlabeledSeries(t *testing.T) {
	reg := obs.NewRegistry()
	d := New(Config{Obs: reg})
	defer d.Close()
	if _, err := d.Submit(Job{Spec: hydra.JobSpec{JobID: "plain", NProcs: 1, Cmd: "x"}, Type: Sequential}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "jets_jobs_submitted_total 1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unlabeled series renamed:\n%s", sb.String())
	}
}

// TestStealQueuedTakesOldestAndReleasesIDs covers the victim half of a
// migration: the oldest queued jobs leave in submit order, their IDs and
// handles are released locally, running jobs are untouched, and each exit is
// journaled as Migrated with the destination recorded.
func TestStealQueuedTakesOldestAndReleasesIDs(t *testing.T) {
	jnl := &memJournal{}
	tc := startCluster(t, 1, Config{Journal: jnl})
	release := make(chan struct{})
	tc.runner.Register("blocker", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return 0
	})
	defer close(release)
	hRun, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "running", NProcs: 1, Cmd: "blocker"}, Type: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tc.d.RunningJobs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		if _, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: fmt.Sprintf("q%d", i), NProcs: 1, Cmd: "blocker"}, Type: Sequential}); err != nil {
			t.Fatal(err)
		}
	}

	stolen := tc.d.StealQueued(2, "inst-east")
	if len(stolen) != 2 || stolen[0].Spec.JobID != "q0" || stolen[1].Spec.JobID != "q1" {
		t.Fatalf("stole %+v, want q0,q1 oldest-first", stolen)
	}
	if got := tc.d.QueuedJobs(); got != 2 {
		t.Fatalf("queued=%d after steal, want 2", got)
	}
	// The running job was never a candidate.
	if _, ok := tc.d.HandleOf("running"); !ok {
		t.Fatal("running job stolen")
	}
	// Stolen IDs are fully released: no handle, and the ID is reusable.
	if _, ok := tc.d.HandleOf("q0"); ok {
		t.Fatal("stolen job still has a local handle")
	}
	if _, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "q0", NProcs: 1, Cmd: "blocker"}, Type: Sequential}); err != nil {
		t.Fatalf("stolen ID not released: %v", err)
	}
	migrated := jnl.byKind(journal.Migrated)
	if len(migrated) != 2 || migrated[0].JobID != "q0" || migrated[0].Node != "inst-east" {
		t.Fatalf("migrated records %+v", migrated)
	}
	_ = hRun
}

// TestSubmitStolenPreservesRetryBudget: migration must not reset a job's
// attempt accounting, and the journaled Retried record makes the budget
// crash-durable on the thief.
func TestSubmitStolenPreservesRetryBudget(t *testing.T) {
	jnl := &memJournal{}
	tc := startCluster(t, 1, Config{Journal: jnl, MaxJobRetries: 3})
	tc.runner.Register("ok", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int { return 0 })
	h, err := tc.d.SubmitStolen(StolenJob{
		Spec: hydra.JobSpec{JobID: "moved", NProcs: 1, Cmd: "ok"},
		Type: Sequential, Retries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if res.Failed || res.Retries != 2 {
		t.Fatalf("result %+v, want success with retries=2 preserved", res)
	}
	retried := jnl.byKind(journal.Retried)
	if len(retried) != 1 || retried[0].Attempt != 2 {
		t.Fatalf("retried records %+v", retried)
	}
}

// TestSubmitStolenRefusedWhileDraining is the satellite-2 regression: a
// steal placement that lands after Shutdown flipped the draining flag must
// be refused with ErrDraining, not resurrect a job behind the drain wait.
// Before the gate, SubmitStolen would enqueue the job while Shutdown was
// already waiting for the queues to empty — the job either hung its handle
// forever (no workers left) or ran against workers being told to exit.
func TestSubmitStolenRefusedWhileDraining(t *testing.T) {
	tc := startCluster(t, 1, Config{})
	release := make(chan struct{})
	tc.runner.Register("blocker", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return 0
	})
	if _, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "slow", NProcs: 1, Cmd: "blocker"}, Type: Sequential}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tc.d.RunningJobs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Shutdown blocks on the running job; the draining flag flips first.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- tc.d.Shutdown(ctx)
	}()
	for !tc.d.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("Shutdown never entered draining")
		}
		time.Sleep(time.Millisecond)
	}

	h, err := tc.d.SubmitStolen(StolenJob{
		Spec: hydra.JobSpec{JobID: "late-steal", NProcs: 1, Cmd: "blocker"},
		Type: Sequential,
	})
	if err != ErrDraining {
		t.Fatalf("SubmitStolen during drain = (%v, %v), want ErrDraining", h, err)
	}
	// The refused job left no trace: no reservation, no queue entry.
	if _, ok := tc.d.HandleOf("late-steal"); ok {
		t.Fatal("refused steal left a handle behind")
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := tc.d.Stats(); st.JobsCompleted != 1 {
		t.Fatalf("stats %+v: drain must complete exactly the pre-drain job", st)
	}
}

// TestStealQueuedRespectsRunningOnly: with nothing queued there is nothing
// to steal, whatever max says.
func TestStealQueuedNothingQueued(t *testing.T) {
	tc := startCluster(t, 2, Config{})
	if got := tc.d.StealQueued(8, "elsewhere"); got != nil {
		t.Fatalf("stole %+v from an empty queue", got)
	}
}

package dispatch

// Tests for the disk-backed cold queue (spill.go): hot-window threshold
// accounting, duplicate-ID reservation against cold jobs, spilled-vs-unspilled
// completion equivalence, cold-aware federation stealing, bounded WAL segment
// counts under online checkpointing, and recovery of spilled jobs across a
// restart (by SpillRef, without rehydrating the backlog).

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"jets/internal/hydra"
	"jets/internal/journal"
	"jets/internal/worker"
)

func newTestWorker(id, addr string, runner hydra.Runner) (*worker.Worker, error) {
	return worker.New(worker.Config{
		ID: id, Host: "local", Cores: 1,
		DispatcherAddr: addr, Runner: runner,
		HeartbeatInterval: 20 * time.Millisecond,
	})
}

// TestSpillThresholdAndStats: with a hot window of 2 on one shard, a burst of
// 10 queued jobs keeps 2 hydrated and spills 8, and the depth accounting
// (QueuedJobs, SpilledJobs, Stats) sees all of them.
func TestSpillThresholdAndStats(t *testing.T) {
	d := New(Config{HotQueueJobs: 2, Shards: 1})
	defer d.Close()
	for i := 0; i < 10; i++ {
		if _, err := d.Submit(seqJob(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.QueuedJobs(); got != 10 {
		t.Fatalf("QueuedJobs = %d, want 10 (hot + cold)", got)
	}
	if got := d.SpilledJobs(); got != 8 {
		t.Fatalf("SpilledJobs = %d, want 8", got)
	}
	st := d.Stats()
	if st.JobsSpilled != 8 {
		t.Fatalf("Stats.JobsSpilled = %d, want 8", st.JobsSpilled)
	}
	if d.SpillBytes() <= 0 {
		t.Fatal("SpillBytes = 0 with 8 jobs spilled")
	}
}

// TestSubmitDuplicateSpilledJobID: the duplicate reservation must see jobs
// whose specs live only on disk — a cold job is as live as a hot one.
func TestSubmitDuplicateSpilledJobID(t *testing.T) {
	d := New(Config{HotQueueJobs: 1, Shards: 1})
	defer d.Close()
	for i := 0; i < 4; i++ {
		if _, err := d.Submit(seqJob(fmt.Sprintf("f%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Submit(seqJob("colddup")); err != nil {
		t.Fatal(err)
	}
	if d.SpilledJobs() == 0 {
		t.Fatal("test setup broken: nothing spilled")
	}
	if _, err := d.Submit(seqJob("colddup")); err == nil {
		t.Fatal("duplicate of a spilled job accepted")
	}
	if _, err := d.SubmitBatch([]Job{seqJob("colddup")}); err == nil {
		t.Fatal("SubmitBatch accepted a duplicate of a spilled job")
	}
}

// TestSpillEquivalence runs one workload far larger than the hot window and
// checks every job completes exactly once — the same completion set an
// unspilled dispatcher produces. Run under -race this also exercises the
// refill loop against concurrent scheduling.
func TestSpillEquivalence(t *testing.T) {
	const jobs = 400
	run := func(hot int) map[string]bool {
		tc := startCluster(t, 4, Config{HotQueueJobs: hot, Shards: 2})
		var mu sync.Mutex
		ran := map[string]bool{}
		tc.runner.Register("mark", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
			mu.Lock()
			if ran[args[0]] {
				mu.Unlock()
				t.Errorf("job %s ran twice", args[0])
				return 1
			}
			ran[args[0]] = true
			mu.Unlock()
			return 0
		})
		var handles []*Handle
		for i := 0; i < jobs; i++ {
			id := fmt.Sprintf("eq-%d", i)
			h, err := tc.d.Submit(Job{
				Spec: hydra.JobSpec{JobID: id, NProcs: 1, Cmd: "mark", Args: []string{id}},
				Type: Sequential,
			})
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		for _, h := range handles {
			if res := h.Wait(); res.Failed {
				t.Fatalf("hot=%d: job %s failed: %s", hot, res.JobID, res.Err)
			}
		}
		mu.Lock()
		defer mu.Unlock()
		out := make(map[string]bool, len(ran))
		for id := range ran {
			out[id] = true
		}
		return out
	}

	spilled := run(8) // tiny window: the backlog spills heavily
	plain := run(-1)  // spilling disabled: the unbounded in-memory baseline
	if len(spilled) != jobs || len(plain) != jobs {
		t.Fatalf("completion sets: spilled=%d plain=%d, want %d each", len(spilled), len(plain), jobs)
	}
	for id := range plain {
		if !spilled[id] {
			t.Fatalf("job %s completed unspilled but not spilled", id)
		}
	}
}

// TestSpillRefillPreservesShardFIFO: cold jobs rehydrate in submission order
// behind the hot window — on a single shard with a single-core worker, a
// spilled backlog must complete strictly oldest-first.
func TestSpillRefillPreservesShardFIFO(t *testing.T) {
	d := New(Config{HotQueueJobs: 2, Shards: 1})
	defer d.Close()
	var handles []*Handle
	for i := 0; i < 50; i++ {
		h, err := d.Submit(seqJob(fmt.Sprintf("fifo-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if d.SpilledJobs() == 0 {
		t.Fatal("test setup broken: nothing spilled")
	}
	// Steal everything through the exact path: StealQueued returns jobs
	// oldest-first, which is the order a worker would have launched them in.
	stolen := d.StealQueued(50, "order-probe")
	if len(stolen) != 50 {
		t.Fatalf("stole %d jobs, want 50", len(stolen))
	}
	for i, sj := range stolen {
		want := fmt.Sprintf("fifo-%02d", i)
		if sj.Spec.JobID != want {
			t.Fatalf("steal order[%d] = %s, want %s (cold tail broke FIFO)", i, sj.Spec.JobID, want)
		}
		if sj.Spec.Cmd == "" {
			t.Fatalf("stolen cold job %s lost its spec", sj.Spec.JobID)
		}
	}
	_ = handles
}

// TestStealQueuedReleasesSpilledEntries: migrating a cold job out ends the
// spill store's custody — the entry is removed and the ID becomes reusable.
func TestStealQueuedReleasesSpilledEntries(t *testing.T) {
	d := New(Config{HotQueueJobs: 1, Shards: 1})
	defer d.Close()
	for i := 0; i < 6; i++ {
		if _, err := d.Submit(seqJob(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	spilledBefore := d.SpilledJobs()
	if spilledBefore < 4 {
		t.Fatalf("SpilledJobs before steal = %d, want >= 4", spilledBefore)
	}
	stolen := d.StealQueued(6, "peer")
	if len(stolen) != 6 {
		t.Fatalf("stole %d, want 6", len(stolen))
	}
	if got := d.SpilledJobs(); got != 0 {
		t.Fatalf("SpilledJobs after stealing everything = %d, want 0", got)
	}
	if sp := d.spillLoaded(); sp != nil && sp.Len() != 0 {
		t.Fatalf("spill store holds %d entries after their jobs migrated, want 0", sp.Len())
	}
	if _, err := d.Submit(seqJob("m3")); err != nil {
		t.Fatalf("migrated cold ID not released: %v", err)
	}
}

// TestJournalSegmentsBounded is the unbounded-WAL-growth regression test: a
// long-lived dispatcher churning jobs must checkpoint online and keep its
// segment count at the configured bound — before online compaction, segments
// only ever grew until restart.
func TestJournalSegmentsBounded(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.OpenWAL(journal.Options{Dir: dir, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	tc := startCluster(t, 2, Config{
		Journal:          w,
		CompactSegments:  3,
		HeartbeatTimeout: 200 * time.Millisecond, // janitor (checkpoint) tick every 50ms
	})
	tc.runner.Register("noop", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	maxSeen := 0
	for round := 0; round < 20; round++ {
		var handles []*Handle
		for i := 0; i < 50; i++ {
			h, err := tc.d.Submit(seqJob(fmt.Sprintf("churn-%d-%d", round, i)))
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		for _, h := range handles {
			if res := h.Wait(); res.Failed {
				t.Fatalf("churn job failed: %s", res.Err)
			}
		}
		if n := tc.d.JournalSegments(); n > maxSeen {
			maxSeen = n
		}
	}
	// Give the janitor one more window to checkpoint the tail.
	deadline := time.Now().Add(5 * time.Second)
	for tc.d.JournalSegments() > 3 {
		if time.Now().After(deadline) {
			t.Fatalf("JournalSegments = %d still above the bound 3", tc.d.JournalSegments())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The churn wrote ~1000 jobs × three records each through 4KiB segments —
	// roughly 40 segments' worth of frames. Without online compaction the
	// count grows monotonically to that; with it, the peak stays within the
	// threshold plus however much one janitor window (50ms) accumulates.
	if maxSeen > 25 {
		t.Fatalf("segment count peaked at %d with CompactSegments=3; online checkpointing is not bounding growth", maxSeen)
	}
}

// TestSpillRecoveryBySpillRef: a durable spill directory plus a checkpointed
// journal recovers cold jobs from their SpillRef records — re-placed cold,
// without reading the backlog's specs — and they still complete once workers
// arrive.
func TestSpillRecoveryBySpillRef(t *testing.T) {
	walDir, spillDir := t.TempDir(), t.TempDir()
	open := func() journal.Journal {
		w, err := journal.OpenWAL(journal.Options{Dir: walDir})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	// Life 1: spill a backlog, checkpoint (cutting SpillRef records), crash.
	d1 := New(Config{Journal: open(), SpillDir: spillDir, HotQueueJobs: 2, Shards: 1})
	const jobs = 40
	for i := 0; i < jobs; i++ {
		if _, err := d1.Submit(Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("cold-%02d", i), NProcs: 1, Cmd: "noop", Args: []string{"a"}},
			Type: Sequential,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if d1.SpilledJobs() < jobs-4 {
		t.Fatalf("SpilledJobs = %d, want most of %d", d1.SpilledJobs(), jobs)
	}
	if err := d1.CompactJournal(); err != nil {
		t.Fatal(err)
	}
	d1.Close()

	// Life 2: everything recovers; the cold backlog must come back cold
	// (SpillRef re-placement), not hydrated into memory.
	d2 := New(Config{Journal: open(), SpillDir: spillDir, HotQueueJobs: 2, Shards: 1})
	if err := d2.RecoveryError(); err != nil {
		t.Fatal(err)
	}
	rec := d2.RecoveredJobs()
	if len(rec) != jobs {
		t.Fatalf("recovered %d jobs, want %d", len(rec), jobs)
	}
	if got := d2.QueuedJobs(); got != jobs {
		t.Fatalf("QueuedJobs after recovery = %d, want %d", got, jobs)
	}
	if got := d2.SpilledJobs(); got < jobs-4 {
		t.Fatalf("SpilledJobs after recovery = %d; the cold backlog was hydrated instead of re-placed cold", got)
	}
	if _, err := d2.Submit(seqJob("cold-10")); err == nil {
		t.Fatal("duplicate of a recovered spilled job accepted")
	}

	addr, err := d2.Start()
	if err != nil {
		t.Fatal(err)
	}
	runWorkers(t, d2, addr, 2)
	for _, h := range rec {
		if res := h.Wait(); res.Failed {
			t.Fatalf("recovered spilled job %s failed: %s", res.JobID, res.Err)
		}
	}
	d2.Close()

	// Life 3: all terminal; nothing recovers, and the spill store is swept.
	d3 := New(Config{Journal: open(), SpillDir: spillDir})
	defer d3.Close()
	if got := d3.RecoveredJobs(); len(got) != 0 {
		t.Fatalf("recovered %d jobs after completion, want 0", len(got))
	}
	if sp := d3.spillLoaded(); sp != nil && sp.Len() != 0 {
		t.Fatalf("spill store holds %d entries after all jobs completed, want 0 (RetainOnly sweep)", sp.Len())
	}
}

// runWorkers attaches n single-core workers running a universal no-op runner
// to an already-started dispatcher and tears them down with the test.
func runWorkers(t *testing.T, d *Dispatcher, addr string, n int) {
	t.Helper()
	runner := hydra.NewFuncRunner()
	runner.Register("noop", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w, err := newTestWorker(fmt.Sprintf("sw%d", i), addr, runner)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
}

// TestMillionQueuedJobsFlatRSS is the headline demo for the disk-backed cold
// queue: one million queued jobs held by a single dispatcher while resident
// memory stays far under 1 GiB, because beyond the hot window only the job ID
// and a spill reference stay on the heap — the specs live in the spill store.
// It submits real batches (so the duplicate reservation, depth accounting,
// and spill encoder all run at full scale) and reads VmRSS from the kernel.
// Gated behind JETS_SPILL_MILLION=1: it takes tens of seconds and ~10⁶ disk
// records, far too heavy for the default test run.
func TestMillionQueuedJobsFlatRSS(t *testing.T) {
	if os.Getenv("JETS_SPILL_MILLION") == "" {
		t.Skip("set JETS_SPILL_MILLION=1 to run the million-job spill demo")
	}
	const total = 1_000_000
	const batch = 10_000
	d := New(Config{HotQueueJobs: 1024, Shards: 4, SpillDir: t.TempDir()})
	defer d.Close()
	start := time.Now()
	jobs := make([]Job, batch)
	for off := 0; off < total; off += batch {
		for i := range jobs {
			jobs[i] = seqJob(fmt.Sprintf("m%07d", off+i))
		}
		if _, err := d.SubmitBatch(jobs); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if got := d.QueuedJobs(); got != total {
		t.Fatalf("QueuedJobs = %d, want %d", got, total)
	}
	spilled := d.SpilledJobs()
	if spilled < total*9/10 {
		t.Fatalf("SpilledJobs = %d, want the vast majority of %d cold", spilled, total)
	}
	debug.FreeOSMemory() // measure the live set, not collectable submit garbage
	rss := readRSSBytes(t)
	t.Logf("queued %d jobs in %v (%.0f jobs/s): %d spilled, %.1f MiB on disk, RSS %.1f MiB",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(),
		spilled, float64(d.SpillBytes())/(1<<20), float64(rss)/(1<<20))
	if rss > 1<<30 {
		t.Fatalf("RSS = %.1f MiB with %d queued jobs, want well under 1 GiB", float64(rss)/(1<<20), total)
	}
}

// readRSSBytes reads the process's resident set size from /proc/self/status.
func readRSSBytes(t *testing.T) int64 {
	t.Helper()
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			kb, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 10, 64)
			if err != nil {
				t.Fatalf("parse VmRSS from %q: %v", line, err)
			}
			return kb << 10
		}
	}
	t.Fatal("no VmRSS line in /proc/self/status")
	return 0
}

package dispatch

// The scheduling pass over the sharded state. Two paths:
//
//   - launchLocal: the shard holding the lowest-sequence queued job can
//     satisfy it from its own idle set. One shard lock; no cross-shard
//     coordination. This is the hot path when jobs land in the shard whose
//     workers are free (Submit places them there deliberately).
//
//   - launchStolen: the lowest-sequence job sits in a shard without enough
//     idle workers, so the pass takes the short-lived ordered multi-lock
//     (ascending shard index, see shard.go), re-derives the exact global
//     minimum, and assembles the worker group across shards. This is both
//     the work-stealing path (a shard with idle workers and an empty queue
//     pulls the oldest job from a victim shard before going idle) and the
//     cross-shard MPI group-assembly path.
//
// Per-submit sequence numbers arbitrate which job is taken: the pass always
// launches the queued job with the lowest sequence, so the paper's
// FIFO/first-come-first-served order stays observable regardless of which
// shard a job was queued in. Head-of-line blocking is likewise preserved:
// if the oldest job does not fit the whole idle pool, nothing runs.

// schedule launches queued jobs until none fits the idle pool.
func (d *Dispatcher) schedule() {
	for d.scheduleOnce() {
	}
}

// scheduleOnce launches at most one job, reporting whether it did.
func (d *Dispatcher) scheduleOnce() bool {
	if d.closed.Load() || d.stopping.Load() {
		return false
	}
	// Advisory scan: find the shard whose queue head has the lowest submit
	// sequence. Lock-free; validated under locks below.
	best, bestSeq := -1, noJob
	for i, s := range d.shards {
		if h := s.headSeq.Load(); h < bestSeq {
			best, bestSeq = i, h
		}
	}
	if best < 0 {
		return false
	}
	c := d.shards[best]
	if need := c.headProcs.Load(); need > 0 && c.nIdle.Load() >= need {
		if d.launchLocal(c) {
			return true
		}
		// Raced with a concurrent pass; fall through to the exact pass.
	}
	if d.idleCount() == 0 {
		// Advisory reject: no idle workers anywhere. A worker parking
		// concurrently re-runs the pass itself (markIdle schedules), so a
		// stale zero here costs nothing.
		return false
	}
	return d.launchStolen()
}

// launchLocal pops the shard's head job and seats it on the shard's own idle
// workers. Returns false when a concurrent pass won the race.
func (d *Dispatcher) launchLocal(c *shard) bool {
	c.mu.Lock()
	job := c.queue.Next(c.idle.Len())
	if job == nil {
		c.refreshHead()
		c.mu.Unlock()
		return false
	}
	sel := d.cfg.Group(c.idle.Coords(), job.Procs())
	group := c.idle.Take(sel)
	c.nIdle.Store(int64(c.idle.Len()))
	rj := d.registerRunning(job)
	c.refreshHead()
	d.maybeRefillLocked(c)
	// Emitted before the unlock: the pop held the same shard lock the queued
	// event was emitted under, so the pair cannot reorder.
	d.emit(Event{Kind: EvGroupAssembled, JobID: job.Spec.JobID, Detail: "local"})
	c.mu.Unlock()
	d.dispatchJob(rj, group)
	return true
}

// launchStolen performs the exact scheduling decision under the ordered
// multi-lock: find the globally oldest queued job, and if the aggregate idle
// pool seats it, assemble its worker group across shards.
func (d *Dispatcher) launchStolen() bool {
	d.lockAll()
	best, bestSeq := -1, noJob
	totalIdle := 0
	for i, s := range d.shards {
		totalIdle += s.idle.Len()
		if j := s.queue.Peek(); j != nil && j.seq < bestSeq {
			best, bestSeq = i, j.seq
		}
	}
	if best < 0 {
		d.unlockAll()
		return false
	}
	c := d.shards[best]
	job := c.queue.Next(totalIdle)
	if job == nil {
		// Head-of-line blocking: the oldest job does not fit the pool.
		d.unlockAll()
		return false
	}

	// Combined idle view in shard-index order, the GroupPolicy input. The
	// job's own shard leads so FCFS selection favors co-keyed workers.
	var flat []*workerConn
	appendShard := func(s *shard) {
		flat = append(flat, s.idle.list...)
	}
	appendShard(c)
	for _, s := range d.shards {
		if s != c {
			appendShard(s)
		}
	}
	coords := make([][]int, len(flat))
	for i, wc := range flat {
		coords[i] = wc.reg.Coord
	}
	sel := d.cfg.Group(coords, job.Procs())
	group := make([]*workerConn, len(sel))
	for i, idx := range sel {
		group[i] = flat[idx]
	}
	for _, wc := range group {
		wc.shard.removeIdle(wc)
	}
	rj := d.registerRunning(job)
	c.refreshHead()
	d.maybeRefillLocked(c)
	d.stats.steals.Add(1)
	d.emit(Event{Kind: EvGroupAssembled, JobID: job.Spec.JobID, Detail: "stolen"})
	d.unlockAll()
	d.dispatchJob(rj, group)
	return true
}

// placeJob queues a submitted (or retried) job. Placement is a performance
// decision only — completion order is arbitrated by the submit sequence, not
// by queue position — so the job goes where it will most likely launch via
// the single-shard fast path: the shard with the most idle workers, falling
// back to round-robin when the pool is saturated.
func (d *Dispatcher) placeJob(j *Job, retry bool) {
	s := d.shards[0]
	if n := len(d.shards); n > 1 {
		bestIdle := int64(0)
		bestAt := -1
		for i, cand := range d.shards {
			if idle := cand.nIdle.Load(); idle > bestIdle {
				bestIdle, bestAt = idle, i
			}
		}
		if bestAt < 0 {
			bestAt = int(d.subRR.Add(1)-1) % n
		}
		s = d.shards[bestAt]
	}
	s.mu.Lock()
	if retry {
		// Retries bypass the spill decision: they are old by definition and
		// bounded by in-flight work, so they always re-enter the hot window
		// at the front of consideration.
		s.requeueJob(j)
		// Emitted under the shard lock: a pop needs this same lock, so the
		// queued event always precedes the attempt's group-assembled event.
		d.emit(Event{Kind: EvJobQueued, JobID: j.Spec.JobID, Detail: "retry"})
	} else if d.pushJob(s, j) {
		d.emit(Event{Kind: EvJobQueued, JobID: j.Spec.JobID, Detail: "spilled"})
	} else {
		d.emit(Event{Kind: EvJobQueued, JobID: j.Spec.JobID})
	}
	s.mu.Unlock()
}

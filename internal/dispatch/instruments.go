package dispatch

import (
	"fmt"

	"jets/internal/obs"
)

// instruments are the dispatcher's live observability hooks. The histograms
// always exist (detached when no registry is configured) so the scheduling
// code never branches on whether export is enabled; everything else is
// sampled from state the dispatcher already maintains — the stats atomics
// and the per-shard advisory mirrors — so enabling export adds nothing to
// the hot dispatch path.
type instruments struct {
	// queueWait is submit-to-pop: how long a job sat queued before the
	// scheduling pass seated it on workers.
	queueWait *obs.Hist
	// assembly is pop-to-dispatched: group binding plus (for MPI jobs)
	// mpiexec/PMI-server startup, ending when every task is handed to a
	// worker's writer.
	assembly *obs.Hist
	// jobDur is the seated lifetime: pop to final rank report.
	jobDur *obs.Hist
}

func newInstruments(instance string) *instruments {
	label := instanceLabel(instance)
	return &instruments{
		queueWait: obs.NewHistL("jets_dispatch_queue_wait_seconds", label,
			"time jobs spent queued before being seated on workers", nil),
		assembly: obs.NewHistL("jets_dispatch_assembly_seconds", label,
			"time from queue pop to all tasks dispatched (group binding plus mpiexec startup)", nil),
		jobDur: obs.NewHistL("jets_job_duration_seconds", label,
			"seated job lifetime from pop to final rank report", nil),
	}
}

// instanceLabel renders Config.Instance as an obs label clause. The empty
// instance keeps every series at its exact historical unlabeled name, which
// the CI metrics smoke and existing dashboards grep for.
func instanceLabel(instance string) string {
	if instance == "" {
		return ""
	}
	return fmt.Sprintf("instance=%q", instance)
}

// QueueWaitHist exposes the submit-to-seat latency histogram, maintained
// whether or not a registry is attached — the self-monitoring alert rules
// (internal/alerts) watch its windowed quantiles.
func (d *Dispatcher) QueueWaitHist() *obs.Hist { return d.ins.queueWait }

// AssemblyHist exposes the pop-to-dispatched latency histogram.
func (d *Dispatcher) AssemblyHist() *obs.Hist { return d.ins.assembly }

// JobDurationHist exposes the seated-job lifetime histogram.
func (d *Dispatcher) JobDurationHist() *obs.Hist { return d.ins.jobDur }

// registerObs exports the dispatcher through the registry: the histograms
// above, counter views over the stats atomics, and gauge views over the
// advisory scheduling state (global and per shard).
func (d *Dispatcher) registerObs(reg *obs.Registry) {
	reg.Register(d.ins.queueWait, d.ins.assembly, d.ins.jobDur)

	// Instance-qualified series names keep two dispatchers in one process
	// (federation) from colliding in the shared registry: the second
	// registration of a duplicate series is rejected by Register, which
	// silently froze the second instance's metrics before Instance existed.
	il := instanceLabel(d.cfg.Instance)

	reg.CounterFuncL("jets_jobs_submitted_total", il, "jobs accepted by Submit", d.stats.jobsSubmitted.Load)
	reg.CounterFuncL("jets_jobs_completed_total", il, "jobs that finished successfully", d.stats.jobsCompleted.Load)
	reg.CounterFuncL("jets_jobs_failed_total", il, "jobs that finished failed (after retries)", d.stats.jobsFailed.Load)
	reg.CounterFuncL("jets_jobs_retried_total", il, "jobs requeued after a worker fault", d.stats.jobsRetried.Load)
	reg.CounterFuncL("jets_tasks_dispatched_total", il, "tasks handed to workers", d.stats.tasksDispatched.Load)
	reg.CounterFuncL("jets_workers_joined_total", il, "worker registrations accepted", d.stats.workersJoined.Load)
	reg.CounterFuncL("jets_workers_lost_total", il, "workers declared dead", d.stats.workersLost.Load)
	reg.CounterFuncL("jets_steals_total", il, "jobs launched through the cross-shard multi-lock path", d.stats.steals.Load)
	reg.CounterFuncL("jets_recovery_jobs_replayed", il, "jobs rebuilt from the journal at startup", d.stats.jobsReplayed.Load)
	reg.CounterFuncL("jets_journal_errors_total", il, "journal records dropped because the WAL's degraded-mode retry buffer overflowed (durability lost for those records)", d.stats.journalErrors.Load)
	reg.CounterFuncL("jets_trace_events_dropped_total", il, "lifecycle trace events lost to observer backpressure", d.droppedEvents.Load)
	reg.CounterFuncL("jets_spill_jobs_total", il, "queued jobs spilled to the cold on-disk tail", d.stats.jobsSpilled.Load)
	reg.CounterFuncL("jets_spill_bytes_total", il, "bytes of job specs written to the spill store", d.stats.spillBytes.Load)
	reg.CounterFuncL("jets_spill_reads_total", il, "job specs rehydrated from the spill store", d.stats.spillReads.Load)

	reg.GaugeFuncL("jets_workers", il, "live registered workers", func() float64 { return float64(d.Workers()) })
	reg.GaugeFuncL("jets_idle_workers", il, "workers parked waiting for tasks", func() float64 { return float64(d.idleCount()) })
	reg.GaugeFuncL("jets_queued_jobs", il, "jobs waiting for workers", func() float64 { return float64(d.queuedCount()) })
	reg.GaugeFuncL("jets_running_jobs", il, "jobs currently executing", func() float64 { return float64(d.RunningJobs()) })
	reg.GaugeFuncL("jets_hot_queued_jobs", il, "queued jobs fully hydrated in the in-memory hot window", func() float64 {
		return float64(d.queuedCount() - int(d.SpilledJobs()))
	})
	reg.GaugeFuncL("jets_cold_queued_jobs", il, "queued jobs resident only in the spill store", func() float64 {
		return float64(d.SpilledJobs())
	})
	reg.GaugeFuncL("jets_journal_segments", il, "WAL segment files on disk (checkpointing keeps this bounded)", func() float64 {
		return float64(d.JournalSegments())
	})
	reg.GaugeFuncL("jets_journal_degraded", il, "1 while the WAL is buffering appends after an I/O failure, 0 when healthy", func() float64 {
		if d.JournalDegraded() {
			return 1
		}
		return 0
	})

	for _, s := range d.shards {
		s := s
		label := fmt.Sprintf("shard=%q", fmt.Sprint(s.idx))
		if il != "" {
			label = il + "," + label
		}
		reg.GaugeFuncL("jets_shard_idle_workers", label,
			"idle workers per scheduling shard", func() float64 { return float64(s.nIdle.Load()) })
		reg.GaugeFuncL("jets_shard_queued_jobs", label,
			"queued jobs per scheduling shard", func() float64 { return float64(s.qlen.Load()) })
	}
}

package dispatch

import (
	"fmt"

	"jets/internal/obs"
)

// instruments are the dispatcher's live observability hooks. The histograms
// always exist (detached when no registry is configured) so the scheduling
// code never branches on whether export is enabled; everything else is
// sampled from state the dispatcher already maintains — the stats atomics
// and the per-shard advisory mirrors — so enabling export adds nothing to
// the hot dispatch path.
type instruments struct {
	// queueWait is submit-to-pop: how long a job sat queued before the
	// scheduling pass seated it on workers.
	queueWait *obs.Hist
	// assembly is pop-to-dispatched: group binding plus (for MPI jobs)
	// mpiexec/PMI-server startup, ending when every task is handed to a
	// worker's writer.
	assembly *obs.Hist
	// jobDur is the seated lifetime: pop to final rank report.
	jobDur *obs.Hist
}

func newInstruments() *instruments {
	return &instruments{
		queueWait: obs.NewHist("jets_dispatch_queue_wait_seconds",
			"time jobs spent queued before being seated on workers", nil),
		assembly: obs.NewHist("jets_dispatch_assembly_seconds",
			"time from queue pop to all tasks dispatched (group binding plus mpiexec startup)", nil),
		jobDur: obs.NewHist("jets_job_duration_seconds",
			"seated job lifetime from pop to final rank report", nil),
	}
}

// QueueWaitHist exposes the submit-to-seat latency histogram, maintained
// whether or not a registry is attached — the self-monitoring alert rules
// (internal/alerts) watch its windowed quantiles.
func (d *Dispatcher) QueueWaitHist() *obs.Hist { return d.ins.queueWait }

// AssemblyHist exposes the pop-to-dispatched latency histogram.
func (d *Dispatcher) AssemblyHist() *obs.Hist { return d.ins.assembly }

// JobDurationHist exposes the seated-job lifetime histogram.
func (d *Dispatcher) JobDurationHist() *obs.Hist { return d.ins.jobDur }

// registerObs exports the dispatcher through the registry: the histograms
// above, counter views over the stats atomics, and gauge views over the
// advisory scheduling state (global and per shard).
func (d *Dispatcher) registerObs(reg *obs.Registry) {
	reg.Register(d.ins.queueWait, d.ins.assembly, d.ins.jobDur)

	reg.CounterFunc("jets_jobs_submitted_total", "jobs accepted by Submit", d.stats.jobsSubmitted.Load)
	reg.CounterFunc("jets_jobs_completed_total", "jobs that finished successfully", d.stats.jobsCompleted.Load)
	reg.CounterFunc("jets_jobs_failed_total", "jobs that finished failed (after retries)", d.stats.jobsFailed.Load)
	reg.CounterFunc("jets_jobs_retried_total", "jobs requeued after a worker fault", d.stats.jobsRetried.Load)
	reg.CounterFunc("jets_tasks_dispatched_total", "tasks handed to workers", d.stats.tasksDispatched.Load)
	reg.CounterFunc("jets_workers_joined_total", "worker registrations accepted", d.stats.workersJoined.Load)
	reg.CounterFunc("jets_workers_lost_total", "workers declared dead", d.stats.workersLost.Load)
	reg.CounterFunc("jets_steals_total", "jobs launched through the cross-shard multi-lock path", d.stats.steals.Load)
	reg.CounterFunc("jets_recovery_jobs_replayed", "jobs rebuilt from the journal at startup", d.stats.jobsReplayed.Load)
	reg.CounterFunc("jets_journal_errors_total", "journal records dropped after the WAL's sticky write/fsync failure (durability lost)", d.stats.journalErrors.Load)
	reg.CounterFunc("jets_trace_events_dropped_total", "lifecycle trace events lost to observer backpressure", d.droppedEvents.Load)

	reg.GaugeFunc("jets_workers", "live registered workers", func() float64 { return float64(d.Workers()) })
	reg.GaugeFunc("jets_idle_workers", "workers parked waiting for tasks", func() float64 { return float64(d.idleCount()) })
	reg.GaugeFunc("jets_queued_jobs", "jobs waiting for workers", func() float64 { return float64(d.queuedCount()) })
	reg.GaugeFunc("jets_running_jobs", "jobs currently executing", func() float64 { return float64(d.RunningJobs()) })

	for _, s := range d.shards {
		s := s
		label := fmt.Sprintf("shard=%q", fmt.Sprint(s.idx))
		reg.GaugeFuncL("jets_shard_idle_workers", label,
			"idle workers per scheduling shard", func() float64 { return float64(s.nIdle.Load()) })
		reg.GaugeFuncL("jets_shard_queued_jobs", label,
			"queued jobs per scheduling shard", func() float64 { return float64(s.qlen.Load()) })
	}
}

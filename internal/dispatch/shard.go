package dispatch

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// The dispatcher's scheduling state — the idle-worker set and the job queue —
// is split into N shards, each guarded by its own mutex, so that markIdle,
// Submit, and the scheduling pass stop serializing on one lock at high worker
// counts (the scheduler-centric bottleneck pilot-job characterizations
// identify as the limiting component at scale).
//
// Workers are keyed to a shard by their interconnect coordinate plane (the
// first coordinate), so that topologically close workers — the ones an MPI
// group policy wants to co-select — share a shard and the single-shard fast
// path. Workers without coordinates fall back to a hash of their worker ID.
//
// Jobs are pushed to the shard with the most idle workers (round-robin when
// the pool is saturated). Observable FIFO order does not depend on placement:
// every job carries a per-submit sequence number, and the scheduling pass
// always launches the lowest-sequence queued job, stealing it across shards
// when it sits in a different shard than the idle workers (steal.go).
//
// Lock order: shard mutexes strictly in ascending shard index, then
// Dispatcher.mu. Code holding Dispatcher.mu must never acquire a shard mutex.

// noJob is the headSeq sentinel for an empty shard queue.
const noJob = int64(math.MaxInt64)

// coldJob is the in-memory footprint of a spilled job: the identity, the
// submit sequence that arbitrates global order, and the retry budget. The
// full spec lives in the dispatcher's spill store; the handle stays reachable
// through d.handles (every live job is indexed there for its whole life).
type coldJob struct {
	id        string
	seq       int64
	submitted int64 // unix nanos, restored on rehydration for queue-wait stats
	retries   int32
}

// shard is one slice of the scheduling state.
type shard struct {
	idx int

	mu    sync.Mutex
	idle  *idleSet
	queue QueuePolicy

	// The cold tail (spill.go): jobs past the hot-window bound, FIFO by
	// submission. Invariant: once cold is non-empty every new push goes
	// cold, so within a shard all cold seqs exceed all hot pushed seqs
	// (requeued retries go hot at the front regardless — they are old by
	// definition and bounded by in-flight work, not backlog). refill holds
	// the batch an in-flight rehydration pass has claimed: out of cold, not
	// yet pushed hot, but still counted queued and snapshot-visible.
	cold         []coldJob
	refill       []coldJob
	refillActive bool

	// Advisory mirrors of the locked state, maintained under mu and read
	// lock-free by the scheduling pass and the stats accessors. headSeq and
	// headProcs mirror only the hot window: a shard whose hot queue drained
	// while the cold tail waits on a refill looks empty to the advisory
	// scan until the refill lands and reschedules.
	headSeq   atomic.Int64 // submit seq of queue.Peek(), noJob when empty
	headProcs atomic.Int64 // Procs() of queue.Peek(), 0 when empty
	nIdle     atomic.Int64 // idle.Len()
	qlen      atomic.Int64 // hot + cold + mid-refill depth
	coldN     atomic.Int64 // cold + mid-refill depth
}

// depthLocked is the shard's full queued depth: hot window, cold tail, and
// any batch mid-rehydration. Caller holds s.mu.
func (s *shard) depthLocked() int {
	return s.queue.Len() + len(s.cold) + len(s.refill)
}

func newShards(n int, newQueue func() QueuePolicy) []*shard {
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = &shard{idx: i, idle: newIdleSet(), queue: newQueue()}
		shards[i].headSeq.Store(noJob)
	}
	return shards
}

// DefaultShards derives the shard count from GOMAXPROCS: the largest power
// of two not exceeding it, capped at 16. A power of two spreads coordinate
// planes evenly; the cap bounds the ordered multi-lock taken by cross-shard
// group assembly.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	s := 1
	for s*2 <= n {
		s *= 2
	}
	return s
}

// refreshHead re-derives the advisory mirrors after a queue mutation.
// Caller holds s.mu.
func (s *shard) refreshHead() {
	if j := s.queue.Peek(); j != nil {
		s.headSeq.Store(j.seq)
		s.headProcs.Store(int64(j.Procs()))
	} else {
		s.headSeq.Store(noJob)
		s.headProcs.Store(0)
	}
	s.qlen.Store(int64(s.depthLocked()))
	s.coldN.Store(int64(len(s.cold) + len(s.refill)))
}

// addIdle parks a worker. Caller holds s.mu.
func (s *shard) addIdle(wc *workerConn) bool {
	if !s.idle.Add(wc) {
		return false
	}
	s.nIdle.Store(int64(s.idle.Len()))
	return true
}

// removeIdle unparks a worker. Caller holds s.mu.
func (s *shard) removeIdle(wc *workerConn) bool {
	if !s.idle.Remove(wc) {
		return false
	}
	s.nIdle.Store(int64(s.idle.Len()))
	return true
}

// push appends a submitted job. Caller holds s.mu.
func (s *shard) push(j *Job) {
	s.queue.Push(j)
	s.refreshHead()
}

// requeueJob returns a faulted job to the front of consideration; the job
// keeps its original submit sequence, so the steal arbitration schedules it
// before anything submitted later. Caller holds s.mu.
func (s *shard) requeueJob(j *Job) {
	s.queue.Requeue(j)
	s.refreshHead()
}

// shardFor maps a registered worker to its home shard: coordinate plane
// when the worker reported interconnect coordinates, hash of the worker ID
// otherwise.
func (d *Dispatcher) shardFor(wc *workerConn) *shard {
	n := len(d.shards)
	if n == 1 {
		return d.shards[0]
	}
	if len(wc.reg.Coord) > 0 {
		p := wc.reg.Coord[0] % n
		if p < 0 {
			p += n
		}
		return d.shards[p]
	}
	return d.shards[int(fnv32(wc.id)%uint32(n))]
}

// fnv32 is the FNV-1a hash, the worker-ID fallback shard key.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// lockAll acquires every shard mutex in ascending index order (the global
// lock order that makes cross-shard group assembly deadlock-free).
func (d *Dispatcher) lockAll() {
	for _, s := range d.shards {
		s.mu.Lock()
	}
}

// unlockAll releases every shard mutex.
func (d *Dispatcher) unlockAll() {
	for _, s := range d.shards {
		s.mu.Unlock()
	}
}

// queuedCount sums the advisory queue lengths (exact once shard mutations
// quiesce; use the multi-lock in Drain for a consistent snapshot).
func (d *Dispatcher) queuedCount() int {
	n := int64(0)
	for _, s := range d.shards {
		n += s.qlen.Load()
	}
	return int(n)
}

// idleCount sums the advisory idle counts.
func (d *Dispatcher) idleCount() int {
	n := int64(0)
	for _, s := range d.shards {
		n += s.nIdle.Load()
	}
	return int(n)
}

package dispatch

import (
	"math/rand"
	"testing"

	"jets/internal/proto"
)

func TestIdleSetBasics(t *testing.T) {
	s := newIdleSet()
	ws := make([]*workerConn, 8)
	for i := range ws {
		ws[i] = &workerConn{id: string(rune('a' + i)), reg: protoRegister(i)}
	}
	for _, w := range ws {
		if !s.Add(w) {
			t.Fatalf("fresh Add(%s) = false", w.id)
		}
	}
	if s.Add(ws[3]) {
		t.Fatal("duplicate Add accepted")
	}
	if s.Len() != 8 {
		t.Fatalf("len=%d", s.Len())
	}
	if !s.Remove(ws[2]) || s.Remove(ws[2]) {
		t.Fatal("Remove semantics broken")
	}
	if s.Contains(ws[2]) || !s.Contains(ws[4]) {
		t.Fatal("Contains out of sync")
	}
	// Invariant: pos matches list after swap-removal.
	checkIdleInvariant(t, s)
	coords := s.Coords()
	if len(coords) != s.Len() {
		t.Fatalf("coords len %d != %d", len(coords), s.Len())
	}
	for i, wc := range s.list {
		if &coords[i][0] != &wc.reg.Coord[0] {
			t.Fatalf("coords[%d] not slice-ordered", i)
		}
	}
}

func TestIdleSetTake(t *testing.T) {
	s := newIdleSet()
	ws := make([]*workerConn, 10)
	for i := range ws {
		ws[i] = &workerConn{reg: protoRegister(i)}
		s.Add(ws[i])
	}
	group := s.Take([]int{9, 0, 4})
	if len(group) != 3 || group[0] != ws[9] || group[1] != ws[0] || group[2] != ws[4] {
		t.Fatalf("Take returned wrong workers")
	}
	if s.Len() != 7 {
		t.Fatalf("len=%d after Take", s.Len())
	}
	for _, wc := range group {
		if s.Contains(wc) {
			t.Fatal("taken worker still idle")
		}
	}
	checkIdleInvariant(t, s)
}

// TestIdleSetRandomized churns the set with a mixed add/remove/take workload
// and checks the index-map invariant after every operation — the regression
// guard for the O(n) slice-scan bugs this structure replaced.
func TestIdleSetRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := newIdleSet()
	pool := make([]*workerConn, 256)
	for i := range pool {
		pool[i] = &workerConn{reg: protoRegister(i)}
	}
	for step := 0; step < 5000; step++ {
		switch rng.Intn(3) {
		case 0:
			s.Add(pool[rng.Intn(len(pool))])
		case 1:
			s.Remove(pool[rng.Intn(len(pool))])
		case 2:
			if n := s.Len(); n > 0 {
				k := rng.Intn(n) + 1
				sel := rng.Perm(n)[:k]
				s.Take(sel)
			}
		}
		checkIdleInvariant(t, s)
	}
}

func checkIdleInvariant(t *testing.T, s *idleSet) {
	t.Helper()
	if len(s.list) != len(s.pos) {
		t.Fatalf("list len %d != pos len %d", len(s.list), len(s.pos))
	}
	for i, wc := range s.list {
		if s.pos[wc] != i {
			t.Fatalf("pos[%v]=%d want %d", wc, s.pos[wc], i)
		}
	}
}

func protoRegister(i int) proto.Register {
	return proto.Register{Coord: []int{i%8 + 1, (i/8)%8 + 1, i/64 + 1}}
}

package dispatch

// Queue spill: the machinery that bounds the dispatcher's memory footprint
// under a cold backlog far larger than the worker pool can drain. Each shard
// keeps a *hot window* of at most Config.HotQueueJobs fully hydrated jobs;
// beyond it, a newly placed job's spec is persisted in a journal.SpillStore
// and the shard remembers only a coldJob — ID, submit sequence, and retry
// budget. A read-ahead pass (refillLoop) rehydrates specs in batches as the
// hot window drains, off the scheduler locks, so placement latency never pays
// for a disk read.
//
// Ordering: within a shard, cold jobs refill into the hot queue in submission
// order, and the hot/cold split preserves per-shard FIFO (pushes go cold
// whenever the cold tail is non-empty, so no new job overtakes a spilled
// one). Across shards, the global sequence arbitration only sees hot heads:
// once backlogs are deep enough to spill, cross-shard FIFO is approximate —
// a deliberate trade, since a spilling dispatcher is by definition running
// days ahead of its workers. Priority policies likewise apply within the hot
// window only; the cold tail is strictly FIFO.
//
// Durability: spilled specs are the Submitted record encoding. When
// Config.SpillDir is set the store survives restarts and online journal
// checkpoints reference spilled jobs with tiny SpillRef records instead of
// re-copying a million specs into the WAL; with an ephemeral (temp-dir)
// store, checkpoints read the cold specs back and re-journal them in full.
// A spill entry is removed only when the job leaves the spill's custody for
// good — terminal state, migration to a peer, or recovery re-placement —
// never on rehydration, because after a checkpoint the spill entry is the
// only durable copy of a once-spilled job's spec.
//
// This file also owns the online WAL checkpoint (CompactJournal /
// maybeCheckpoint): re-journal the live state into a fresh segment and drop
// the older ones, bounding journal growth over an arbitrarily long uptime.

import (
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"jets/internal/journal"
)

// refillBatch bounds how many cold jobs one rehydration pass claims — and
// therefore the largest GetBatch read and the burst of hot pushes taken under
// one shard-lock acquisition.
const refillBatch = 1024

// refillLow is the hot-window watermark below which a pop triggers
// rehydration of the cold tail.
func (d *Dispatcher) refillLow() int {
	low := d.hotMax / 2
	if low < 1 {
		low = 1
	}
	return low
}

// pushJob places a submitted job in the shard: hot while the window has room
// and the cold tail is empty, spilled otherwise. A spill failure (store
// unavailable, disk error) degrades to the unbounded in-memory queue rather
// than losing the job. Caller holds s.mu; reports whether the job spilled.
func (d *Dispatcher) pushJob(s *shard, j *Job) bool {
	if d.hotMax > 0 && (len(s.cold) > 0 || len(s.refill) > 0 || s.queue.Len() >= d.hotMax) {
		if d.spillLocked(s, j) {
			return true
		}
	}
	s.push(j)
	return false
}

// spillLocked persists j's spec and appends its coldJob to the shard's cold
// tail. Caller holds s.mu; reports false when the spec could not be stored.
func (d *Dispatcher) spillLocked(s *shard, j *Job) bool {
	sp := d.spillStore()
	if sp == nil {
		return false
	}
	n, err := sp.Put(submittedRecord(j))
	if err != nil {
		d.spillFailure(err)
		return false
	}
	d.stats.jobsSpilled.Add(1)
	d.stats.spillBytes.Add(int64(n))
	s.cold = append(s.cold, coldJob{
		id:        j.Spec.JobID,
		seq:       j.seq,
		submitted: j.submitted.UnixNano(),
		retries:   int32(j.retries),
	})
	s.refreshHead()
	return true
}

// placeCold appends an already-spilled job (recovery re-placement of a
// SpillRef) to a shard's cold tail without touching the spill store: the
// entry written by the previous process is still the spec's durable home.
func (d *Dispatcher) placeCold(cj coldJob) {
	s := d.shards[int(d.subRR.Add(1)-1)%len(d.shards)]
	s.mu.Lock()
	s.cold = append(s.cold, cj)
	s.refreshHead()
	s.mu.Unlock()
	d.emit(Event{Kind: EvJobQueued, JobID: cj.id, Detail: "spilled"})
}

// spillLoaded returns the spill store if one is open, without creating it.
func (d *Dispatcher) spillLoaded() *journal.SpillStore { return d.spill.Load() }

// spillStore returns the spill store, opening the ephemeral temp-directory
// one on first use when no SpillDir was configured. nil means spilling is
// unavailable (open failed, or the dispatcher is closing).
func (d *Dispatcher) spillStore() *journal.SpillStore {
	if sp := d.spill.Load(); sp != nil {
		return sp
	}
	d.spillMu.Lock()
	defer d.spillMu.Unlock()
	if sp := d.spill.Load(); sp != nil {
		return sp
	}
	if d.closed.Load() || d.spillFailed {
		return nil
	}
	dir, err := os.MkdirTemp("", "jets-spill-*")
	if err != nil {
		d.spillFailed = true
		d.spillFailure(err)
		return nil
	}
	sp, err := journal.OpenSpill(dir, 0)
	if err != nil {
		os.RemoveAll(dir)
		d.spillFailed = true
		d.spillFailure(err)
		return nil
	}
	d.spillTmpDir = dir
	d.spill.Store(sp)
	return sp
}

// spillFailure logs the first spill-path error; the dispatcher keeps running
// with in-memory queueing.
func (d *Dispatcher) spillFailure(err error) {
	d.spillErrOnce.Do(func() {
		log.Printf("dispatch: queue spill degraded, falling back to in-memory queueing: %v", err)
	})
}

// maybeRefillLocked starts a rehydration pass when the hot window has drained
// below the watermark and cold jobs are waiting. Caller holds s.mu; the pass
// itself runs on its own goroutine so no disk read happens under the lock.
func (d *Dispatcher) maybeRefillLocked(s *shard) {
	if s.refillActive || len(s.cold) == 0 || s.queue.Len() >= d.refillLow() {
		return
	}
	s.refillActive = true
	go d.refillLoop(s)
}

// refillLoop claims cold batches and pushes their rehydrated jobs into the
// hot window until the window is back above the watermark (or the tail is
// empty). Exactly one loop runs per shard (refillActive); the claimed batch
// sits in s.refill while its specs are read, so Drain and checkpoint
// snapshots never lose sight of it.
func (d *Dispatcher) refillLoop(s *shard) {
	for {
		s.mu.Lock()
		if len(s.cold) == 0 || s.queue.Len() >= d.refillLow() {
			s.refillActive = false
			s.mu.Unlock()
			return
		}
		n := len(s.cold)
		if n > refillBatch {
			n = refillBatch
		}
		batch := make([]coldJob, n)
		copy(batch, s.cold[:n])
		s.cold = s.cold[:copy(s.cold, s.cold[n:])]
		s.refill = batch
		s.mu.Unlock()

		jobs := d.hydrateBatch(batch)

		s.mu.Lock()
		for _, j := range jobs {
			s.queue.Push(j)
		}
		s.refill = nil
		s.refreshHead()
		s.mu.Unlock()

		if d.closed.Load() {
			// Close may have swept the queues while the batch was being read;
			// sweep again so the just-pushed jobs resolve, then stop.
			s.mu.Lock()
			s.refillActive = false
			s.mu.Unlock()
			d.failQueued()
			return
		}
		d.schedule()
	}
}

// hydrateBatch reads a claimed cold batch's specs back and rebuilds the jobs.
// The spill entries are deliberately left in place (see the package comment:
// after a checkpoint they are the specs' only durable copy). An entry whose
// spec cannot be read is failed terminally — unless the dispatcher is
// closing, in which case the job is stranded like any other queued work and
// recovers on the next start.
func (d *Dispatcher) hydrateBatch(batch []coldJob) []*Job {
	ids := make([]string, len(batch))
	for i, cj := range batch {
		ids[i] = cj.id
	}
	var recs map[string]journal.Record
	var err error
	if sp := d.spillLoaded(); sp != nil {
		recs, err = sp.GetBatch(ids)
		d.stats.spillReads.Add(1)
	} else {
		err = errors.New("dispatch: spill store unavailable")
	}
	if err != nil {
		d.spillFailure(err)
	}
	type lostEntry struct {
		cj coldJob
		h  *Handle
	}
	jobs := make([]*Job, 0, len(batch))
	var lost []lostEntry
	d.mu.Lock()
	for _, cj := range batch {
		h, ok := d.handles[cj.id]
		if !ok {
			continue // already resolved by a concurrent sweep
		}
		rec, found := recs[cj.id]
		if !found {
			// Claim the handle under the lock so exactly one path completes it.
			delete(d.live, cj.id)
			delete(d.handles, cj.id)
			lost = append(lost, lostEntry{cj, h})
			continue
		}
		j := jobFromRecord(rec)
		j.handle = h
		j.seq = cj.seq
		j.retries = int(cj.retries)
		j.submitted = time.Unix(0, cj.submitted)
		jobs = append(jobs, j)
	}
	d.mu.Unlock()
	for _, le := range lost {
		d.failSpillLost(le.cj, le.h)
	}
	if len(lost) > 0 {
		d.mu.Lock()
		d.kickLocked()
		d.mu.Unlock()
	}
	return jobs
}

// failSpillLost resolves a cold job whose spilled spec could not be read.
func (d *Dispatcher) failSpillLost(cj coldJob, h *Handle) {
	d.stats.jobsFailed.Add(1)
	if d.closed.Load() {
		// The store is closing under us, not corrupt: strand the job so a
		// durable journal recovers it on the next start.
		d.emit(Event{Kind: EvJobFailed, JobID: cj.id, Detail: ErrDispatcherClosed.Error()})
		h.complete(JobResult{
			JobID:   cj.id,
			Failed:  true,
			Err:     ErrDispatcherClosed.Error(),
			Retries: int(cj.retries),
		})
		return
	}
	d.journal(journal.Record{Kind: journal.Completed, JobID: cj.id, Failed: true})
	d.emit(Event{Kind: EvJobFailed, JobID: cj.id, Detail: "spilled job spec unreadable"})
	h.complete(JobResult{
		JobID:   cj.id,
		Failed:  true,
		Err:     "dispatch: spilled job spec unreadable",
		Retries: int(cj.retries),
	})
}

// ---------------------------------------------------------------------------
// Online journal checkpoint

// maybeCheckpoint, called from the janitor tick, triggers an online
// checkpoint once the journal spans more than Config.CompactSegments segment
// files. Failures are retried on the next tick (and logged once): a degraded
// journal refuses to checkpoint until its commit retry succeeds.
func (d *Dispatcher) maybeCheckpoint() {
	if d.jnl == nil || d.cfg.CompactSegments < 0 {
		return
	}
	ck, ok := d.jnl.(journal.Checkpointer)
	if !ok {
		return
	}
	if ck.Segments() <= d.cfg.CompactSegments {
		return
	}
	if err := d.CompactJournal(); err != nil {
		d.checkpointLogOnce.Do(func() {
			log.Printf("dispatch: online journal checkpoint failed (will retry): %v", err)
		})
	}
}

// CompactJournal re-journals the dispatcher's live state through an online
// checkpoint (journal.Checkpointer), dropping the journal's older segments.
// Scheduling keeps running: appends made while the snapshot is taken buffer
// in the WAL and land after the snapshot records, replaying on top of them.
// Safe to call at any time; concurrent calls serialize.
func (d *Dispatcher) CompactJournal() error {
	if d.jnl == nil {
		return nil
	}
	ck, ok := d.jnl.(journal.Checkpointer)
	if !ok {
		return errors.New("dispatch: journal does not support online checkpoints")
	}
	d.checkpointMu.Lock()
	defer d.checkpointMu.Unlock()
	return ck.Checkpoint(d.snapshotLive)
}

// snapshotLive emits a self-contained durable snapshot of every live job:
// queued (hot and cold), running, and parked in a retry backoff. The state is
// gathered under the scheduling locks into memory first, then emitted after
// they are released, so the disk writes never stall dispatch. Consistency
// does not depend on holding the locks through the emit: the checkpoint holds
// the WAL's commit mutex, so any transition journaled concurrently lands
// after the snapshot in replay order and applies on top of it.
func (d *Dispatcher) snapshotLive(emit func(journal.Record) error) error {
	var recs []journal.Record
	var cold []coldJob
	seen := make(map[string]struct{})
	// A job mid-transition (retry placement, queue pop) can be visible in two
	// tables at once; first sighting wins and the duplicates carry the same
	// state, so the snapshot stays consistent either way.
	mark := func(id string) bool {
		if _, dup := seen[id]; dup {
			return false
		}
		seen[id] = struct{}{}
		return true
	}
	addJob := func(j *Job, dispatched bool) {
		if !mark(j.Spec.JobID) {
			return
		}
		recs = append(recs, submittedRecord(j))
		if j.retries > 0 {
			recs = append(recs, journal.Record{Kind: journal.Retried, JobID: j.Spec.JobID, Attempt: j.retries})
		}
		if dispatched {
			recs = append(recs, journal.Record{Kind: journal.Dispatched, JobID: j.Spec.JobID})
		}
	}
	d.lockAll()
	for _, s := range d.shards {
		for _, j := range s.queue.Jobs() {
			addJob(j, false)
		}
		for _, cj := range s.cold {
			if mark(cj.id) {
				cold = append(cold, cj)
			}
		}
		for _, cj := range s.refill {
			if mark(cj.id) {
				cold = append(cold, cj)
			}
		}
	}
	d.mu.Lock()
	for _, rj := range d.running {
		addJob(rj.job, true)
	}
	for _, j := range d.retrying {
		addJob(j, false)
	}
	d.mu.Unlock()
	d.unlockAll()

	for _, r := range recs {
		if err := emit(r); err != nil {
			return err
		}
	}
	if len(cold) == 0 {
		return nil
	}
	sp := d.spillLoaded()
	if sp == nil {
		return errors.New("dispatch: cold-queued jobs but no spill store")
	}
	if d.spillDurable {
		// The spill store survives restarts: reference each cold job with a
		// tiny SpillRef instead of copying a (possibly million-entry) backlog
		// of specs into the WAL. The Sync below makes every referenced entry
		// durable before the checkpoint commits — it runs inside the
		// checkpoint callback, so no entry written after it can be referenced
		// by this snapshot.
		for _, cj := range cold {
			if err := emit(journal.Record{Kind: journal.SpillRef, JobID: cj.id, Attempt: int(cj.retries)}); err != nil {
				return err
			}
		}
		return sp.Sync()
	}
	// Ephemeral spill: the temp directory dies with the process, so cold
	// specs must be re-journaled in full for the snapshot to stand alone.
	for start := 0; start < len(cold); start += refillBatch {
		end := start + refillBatch
		if end > len(cold) {
			end = len(cold)
		}
		chunk := cold[start:end]
		ids := make([]string, len(chunk))
		for i, cj := range chunk {
			ids[i] = cj.id
		}
		got, err := sp.GetBatch(ids)
		if err != nil {
			return fmt.Errorf("dispatch: reading spilled specs for checkpoint: %w", err)
		}
		for _, cj := range chunk {
			r, ok := got[cj.id]
			if !ok {
				continue // left the spill's custody since the gather (stolen/terminal)
			}
			if err := emit(r); err != nil {
				return err
			}
			if cj.retries > 0 {
				if err := emit(journal.Record{Kind: journal.Retried, JobID: cj.id, Attempt: int(cj.retries)}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Introspection

// SpilledJobs reports jobs currently in the cold tails (including batches
// mid-rehydration).
func (d *Dispatcher) SpilledJobs() int {
	n := int64(0)
	for _, s := range d.shards {
		n += s.coldN.Load()
	}
	return int(n)
}

// SpillBytes reports the on-disk footprint of the live spilled specs.
func (d *Dispatcher) SpillBytes() int64 {
	if sp := d.spillLoaded(); sp != nil {
		return sp.Bytes()
	}
	return 0
}

// JournalSegments reports how many segment files the journal spans; 0 when no
// journal is configured or it does not expose segmentation.
func (d *Dispatcher) JournalSegments() int {
	if ck, ok := d.jnl.(journal.Checkpointer); ok {
		return ck.Segments()
	}
	return 0
}

// JournalDegraded reports whether the journal's last commit attempt failed —
// appends are buffering and retrying, but nothing new is reaching the disk.
func (d *Dispatcher) JournalDegraded() bool {
	type degrader interface{ Degraded() bool }
	if dg, ok := d.jnl.(degrader); ok {
		return dg.Degraded()
	}
	return false
}

package dispatch

import (
	"fmt"
	"testing"
	"testing/quick"

	"jets/internal/hydra"
)

func mkJob(id string, procs, prio int) *Job {
	return &Job{Spec: hydra.JobSpec{JobID: id, NProcs: procs, Cmd: "x"}, Type: MPI, Priority: prio}
}

func TestFIFOOrder(t *testing.T) {
	q := NewFIFOQueue()
	q.Push(mkJob("a", 2, 0))
	q.Push(mkJob("b", 1, 9)) // priority ignored by FIFO
	if q.Len() != 2 {
		t.Fatalf("len=%d", q.Len())
	}
	if j := q.Next(4); j.Spec.JobID != "a" {
		t.Fatalf("got %s", j.Spec.JobID)
	}
	if j := q.Next(4); j.Spec.JobID != "b" {
		t.Fatalf("got %s", j.Spec.JobID)
	}
	if q.Next(4) != nil {
		t.Fatal("empty queue returned job")
	}
}

func TestFIFOHeadOfLineBlocking(t *testing.T) {
	q := NewFIFOQueue()
	q.Push(mkJob("big", 8, 0))
	q.Push(mkJob("small", 1, 0))
	if j := q.Next(4); j != nil {
		t.Fatalf("FIFO must not overtake: got %s", j.Spec.JobID)
	}
	if j := q.Next(8); j.Spec.JobID != "big" {
		t.Fatalf("got %v", j)
	}
}

func TestFIFORequeueFront(t *testing.T) {
	q := NewFIFOQueue()
	q.Push(mkJob("a", 1, 0))
	q.Push(mkJob("b", 1, 0))
	r := mkJob("retry", 1, 0)
	q.Requeue(r)
	if j := q.Next(1); j.Spec.JobID != "retry" {
		t.Fatalf("got %s", j.Spec.JobID)
	}
}

func TestPriorityOrdering(t *testing.T) {
	q := NewPriorityQueue(false)
	q.Push(mkJob("low", 1, 1))
	q.Push(mkJob("high", 1, 5))
	q.Push(mkJob("mid", 1, 3))
	var got []string
	for j := q.Next(8); j != nil; j = q.Next(8) {
		got = append(got, j.Spec.JobID)
	}
	want := []string{"high", "mid", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestPriorityStableWithinLevel(t *testing.T) {
	q := NewPriorityQueue(false)
	for i := 0; i < 5; i++ {
		q.Push(mkJob(fmt.Sprintf("j%d", i), 1, 7))
	}
	for i := 0; i < 5; i++ {
		j := q.Next(8)
		if j.Spec.JobID != fmt.Sprintf("j%d", i) {
			t.Fatalf("position %d: got %s", i, j.Spec.JobID)
		}
	}
}

func TestPriorityNoBackfillBlocks(t *testing.T) {
	q := NewPriorityQueue(false)
	q.Push(mkJob("big-high", 8, 5))
	q.Push(mkJob("small-low", 1, 1))
	if j := q.Next(4); j != nil {
		t.Fatalf("no-backfill queue overtook head: %s", j.Spec.JobID)
	}
}

func TestPriorityBackfill(t *testing.T) {
	q := NewPriorityQueue(true)
	q.Push(mkJob("big-high", 8, 5))
	q.Push(mkJob("small-low", 1, 1))
	j := q.Next(4)
	if j == nil || j.Spec.JobID != "small-low" {
		t.Fatalf("backfill did not pick fitting job: %v", j)
	}
	// The blocked head is still there.
	if q.Peek().Spec.JobID != "big-high" {
		t.Fatalf("head lost")
	}
}

func TestPriorityRequeueAhead(t *testing.T) {
	q := NewPriorityQueue(false)
	q.Push(mkJob("a", 1, 3))
	r := mkJob("retry", 1, 3)
	q.Requeue(r)
	if j := q.Next(8); j.Spec.JobID != "retry" {
		t.Fatalf("got %s", j.Spec.JobID)
	}
}

func TestFCFSGroup(t *testing.T) {
	idx := FirstComeFirstServed(make([][]int, 5), 3)
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 1 || idx[2] != 2 {
		t.Fatalf("got %v", idx)
	}
}

func TestTopologyAwarePrefersNearby(t *testing.T) {
	// Workers at torus coordinates; index 0 seeds the group. Indexes 2,3 are
	// adjacent to 0; index 1 is far away.
	coords := [][]int{
		{0, 0, 0}, // seed
		{7, 7, 7}, // far
		{0, 0, 1}, // near
		{1, 0, 0}, // near
	}
	idx := TopologyAware(coords, 3)
	if len(idx) != 3 {
		t.Fatalf("got %v", idx)
	}
	chosen := map[int]bool{}
	for _, i := range idx {
		chosen[i] = true
	}
	if !chosen[0] || !chosen[2] || !chosen[3] || chosen[1] {
		t.Fatalf("got %v; want {0,2,3}", idx)
	}
}

func TestTopologyAwareHandlesMissingCoords(t *testing.T) {
	coords := [][]int{{0, 0}, nil, {0, 1}, nil}
	idx := TopologyAware(coords, 2)
	chosen := map[int]bool{}
	for _, i := range idx {
		chosen[i] = true
	}
	if !chosen[0] || !chosen[2] {
		t.Fatalf("got %v; workers with coordinates should group first", idx)
	}
}

func TestManhattan(t *testing.T) {
	if d := manhattan([]int{1, 2, 3}, []int{4, 0, 3}); d != 5 {
		t.Fatalf("d=%d", d)
	}
	if d := manhattan(nil, []int{1}); d < 1<<19 {
		t.Fatalf("missing coords should be penalized, d=%d", d)
	}
	if d := manhattan([]int{1}, []int{1, 2}); d < 1<<19 {
		t.Fatalf("mismatched dims should be penalized, d=%d", d)
	}
}

// Property: both queue policies conserve jobs — everything pushed comes out
// exactly once given enough capacity.
func TestQueueConservationProperty(t *testing.T) {
	f := func(sizes []uint8, usePrio, backfill bool) bool {
		var q QueuePolicy
		if usePrio {
			q = NewPriorityQueue(backfill)
		} else {
			q = NewFIFOQueue()
		}
		n := len(sizes)
		for i, s := range sizes {
			q.Push(mkJob(fmt.Sprintf("j%d", i), int(s%8)+1, int(s%3)))
		}
		seen := map[string]bool{}
		for j := q.Next(8); j != nil; j = q.Next(8) {
			if seen[j.Spec.JobID] {
				return false
			}
			seen[j.Spec.JobID] = true
		}
		return len(seen) == n && q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopologyAware always returns n distinct valid indexes.
func TestTopologyAwareValidProperty(t *testing.T) {
	f := func(raw []uint8, nRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		coords := make([][]int, len(raw))
		for i, v := range raw {
			coords[i] = []int{int(v % 8), int(v / 8 % 8), int(v / 64)}
		}
		n := int(nRaw)%len(coords) + 1
		idx := TopologyAware(coords, n)
		if len(idx) != n {
			return false
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= len(coords) || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

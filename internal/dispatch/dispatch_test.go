package dispatch

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"jets/internal/hydra"
	"jets/internal/mpi"
	"jets/internal/proto"
	"jets/internal/worker"
)

// testCluster spins up a dispatcher and n workers sharing one in-process
// runner, the real-runtime equivalent of an allocation of pilot jobs.
type testCluster struct {
	d       *Dispatcher
	addr    string
	runner  *hydra.FuncRunner
	workers []*worker.Worker
	wg      sync.WaitGroup
	cancel  context.CancelFunc
}

func startCluster(t *testing.T, n int, cfg Config) *testCluster {
	t.Helper()
	tc := &testCluster{d: New(cfg), runner: hydra.NewFuncRunner()}
	addr, err := tc.d.Start()
	if err != nil {
		t.Fatal(err)
	}
	tc.addr = addr
	ctx, cancel := context.WithCancel(context.Background())
	tc.cancel = cancel
	for i := 0; i < n; i++ {
		w, err := worker.New(worker.Config{
			ID:                fmt.Sprintf("w%d", i),
			Host:              fmt.Sprintf("node%d", i),
			Cores:             4,
			Coord:             []int{i % 8, (i / 8) % 8, i / 64},
			DispatcherAddr:    addr,
			Runner:            tc.runner,
			HeartbeatInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.workers = append(tc.workers, w)
		tc.wg.Add(1)
		go func(w *worker.Worker) {
			defer tc.wg.Done()
			w.Run(ctx)
		}(w)
	}
	t.Cleanup(func() {
		tc.d.Close()
		cancel()
		tc.wg.Wait()
	})
	// Wait for all workers to register and park.
	deadline := time.Now().Add(5 * time.Second)
	for tc.d.IdleWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers became idle", tc.d.IdleWorkers(), n)
		}
		time.Sleep(time.Millisecond)
	}
	return tc
}

func TestSequentialJobs(t *testing.T) {
	tc := startCluster(t, 4, Config{})
	var mu sync.Mutex
	ran := map[string]bool{}
	tc.runner.Register("touch", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		mu.Lock()
		ran[args[0]] = true
		mu.Unlock()
		fmt.Fprintf(stdout, "touched %s\n", args[0])
		return 0
	})
	var handles []*Handle
	for i := 0; i < 20; i++ {
		h, err := tc.d.Submit(Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("seq%d", i), NProcs: 1, Cmd: "touch",
				Args: []string{fmt.Sprintf("f%d", i)}},
			Type: Sequential,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		res := h.Wait()
		if res.Failed {
			t.Fatalf("job %s failed: %s", res.JobID, res.Err)
		}
		if len(res.Workers) != 1 {
			t.Fatalf("job %s workers=%v", res.JobID, res.Workers)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ran) != 20 {
		t.Fatalf("ran %d/20 tasks", len(ran))
	}
	st := tc.d.Stats()
	if st.JobsCompleted != 20 || st.JobsFailed != 0 || st.TasksDispatched != 20 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMPIJobEndToEnd(t *testing.T) {
	tc := startCluster(t, 8, Config{})
	tc.runner.Register("allreduce-app", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		comm, err := mpi.InitEnvFrom(env)
		if err != nil {
			fmt.Fprintf(stdout, "init: %v\n", err)
			return 1
		}
		defer comm.Close()
		out, err := comm.AllreduceInt64(mpi.OpSum, []int64{1})
		if err != nil {
			return 1
		}
		if int(out[0]) != comm.Size() {
			return 2
		}
		return 0
	})
	// Several concurrent MPI jobs of varying sizes, exercising worker-group
	// aggregation.
	sizes := []int{4, 8, 6, 2, 3}
	var handles []*Handle
	for i, n := range sizes {
		h, err := tc.d.Submit(Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("mpi%d", i), NProcs: n, Cmd: "allreduce-app"},
			Type: MPI,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for i, h := range handles {
		res := h.Wait()
		if res.Failed {
			t.Fatalf("job %d failed: %s (results %+v)", i, res.Err, res.TaskResults)
		}
		if len(res.TaskResults) != sizes[i] {
			t.Fatalf("job %d results=%d want %d", i, len(res.TaskResults), sizes[i])
		}
		if len(res.Workers) != sizes[i] {
			t.Fatalf("job %d ran on %d workers", i, len(res.Workers))
		}
	}
}

func TestMPIJobLargerThanAllocationQueues(t *testing.T) {
	tc := startCluster(t, 2, Config{})
	tc.runner.Register("noop", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	h, err := tc.d.Submit(Job{
		Spec: hydra.JobSpec{JobID: "toobig", NProcs: 4, Cmd: "noop"},
		Type: MPI,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, done := h.TryResult(); done {
		t.Fatal("4-proc job ran on a 2-worker allocation")
	}
	if tc.d.QueuedJobs() != 1 {
		t.Fatalf("queued=%d", tc.d.QueuedJobs())
	}
}

func TestApplicationFailurePropagates(t *testing.T) {
	tc := startCluster(t, 4, Config{})
	tc.runner.Register("failer", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		if env["PMI_RANK"] == "1" {
			return 42
		}
		comm, err := mpi.InitEnvFrom(env)
		if err != nil {
			return 3 // expected: abort tears down PMI
		}
		defer comm.Close()
		if err := comm.Barrier(); err != nil {
			return 3
		}
		return 0
	})
	h, err := tc.d.Submit(Job{
		Spec: hydra.JobSpec{JobID: "f1", NProcs: 4, Cmd: "failer"},
		Type: MPI,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if !res.Failed {
		t.Fatal("job with failing rank reported success")
	}
	if !strings.Contains(res.Err, "exited 42") && !strings.Contains(res.Err, "exited 3") {
		t.Fatalf("err=%q", res.Err)
	}
	// The allocation must remain usable.
	tc.runner.Register("ok", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int { return 0 })
	h2, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "after", NProcs: 1, Cmd: "ok"}, Type: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if res := h2.Wait(); res.Failed {
		t.Fatalf("follow-up job failed: %s", res.Err)
	}
}

func TestWorkerDeathFailsJobAndFreesOthers(t *testing.T) {
	tc := startCluster(t, 4, Config{HeartbeatTimeout: 200 * time.Millisecond})
	release := make(chan struct{})
	tc.runner.Register("blocker", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		comm, err := mpi.InitEnvFrom(env)
		if err != nil {
			return 3
		}
		defer comm.Close()
		select {
		case <-release:
		case <-ctx.Done():
		}
		if err := comm.Barrier(); err != nil {
			return 3
		}
		return 0
	})
	h, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "doomed", NProcs: 4, Cmd: "blocker"}, Type: MPI})
	if err != nil {
		t.Fatal(err)
	}
	// Let the job start, then kill one of its workers.
	deadline := time.Now().Add(5 * time.Second)
	for tc.d.RunningJobs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	tc.workers[0].Kill()
	close(release)
	res := h.Wait()
	if !res.Failed {
		t.Fatal("job survived worker death")
	}
	st := tc.d.Stats()
	if st.WorkersLost == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFaultedJobRetriesPrecise(t *testing.T) {
	tc := startCluster(t, 3, Config{MaxJobRetries: 3, HeartbeatTimeout: 5 * time.Second})
	var mu sync.Mutex
	runs := 0
	tc.runner.Register("victim", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		mu.Lock()
		runs++
		first := runs == 1
		mu.Unlock()
		if first {
			// Kill the hosting worker abruptly; the dispatcher should
			// requeue the job onto a surviving worker.
			for _, w := range tc.workers {
				if w.Busy() {
					w.Kill()
				}
			}
			// Block until the context is torn down with the worker.
			<-ctx.Done()
			return 1
		}
		return 0
	})
	h, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "retry-me", NProcs: 1, Cmd: "victim"}, Type: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if res.Failed {
		t.Fatalf("retried job failed: %+v", res)
	}
	if res.Retries != 1 {
		t.Fatalf("retries=%d want 1", res.Retries)
	}
	st := tc.d.Stats()
	if st.JobsRetried != 1 || st.JobsCompleted != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHeartbeatTimeoutExpiresSilentWorker(t *testing.T) {
	d := New(Config{HeartbeatTimeout: 100 * time.Millisecond})
	addr, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// A raw codec that registers and then goes silent (no heartbeats).
	codec, err := proto.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer codec.Close()
	codec.Send(&proto.Envelope{Kind: proto.KindRegister, Register: &proto.Register{WorkerID: "ghost"}})
	codec.Recv() // registered
	deadline := time.Now().Add(5 * time.Second)
	for d.Workers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("silent worker not expired; workers=%d", d.Workers())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := d.Stats(); st.WorkersLost != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDuplicateWorkerIDRejected(t *testing.T) {
	tc := startCluster(t, 1, Config{})
	codec, err := proto.Dial(tc.addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer codec.Close()
	codec.Send(&proto.Envelope{Kind: proto.KindRegister, Register: &proto.Register{WorkerID: "w0"}})
	e, err := codec.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != proto.KindError {
		t.Fatalf("duplicate id accepted: %+v", e)
	}
}

func TestSubmitValidation(t *testing.T) {
	tc := startCluster(t, 1, Config{})
	if _, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "x", NProcs: 0, Cmd: "c"}}); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "x", NProcs: 2, Cmd: "c"}, Type: Sequential}); err == nil {
		t.Error("sequential with 2 procs accepted")
	}
	tc.runner.Register("slow", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		time.Sleep(50 * time.Millisecond)
		return 0
	})
	if _, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "dup", NProcs: 1, Cmd: "slow"}, Type: Sequential}); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "dup", NProcs: 1, Cmd: "slow"}, Type: Sequential}); err == nil {
		t.Error("duplicate running job id accepted")
	}
}

func TestOutputRouting(t *testing.T) {
	var mu sync.Mutex
	var chunks []string
	tc := startCluster(t, 1, Config{OnOutput: func(taskID, stream string, data []byte) {
		mu.Lock()
		chunks = append(chunks, string(data))
		mu.Unlock()
	}})
	tc.runner.Register("printer", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		fmt.Fprintln(stdout, "hello from task")
		return 0
	})
	h, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "p", NProcs: 1, Cmd: "printer"}, Type: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	h.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		joined := strings.Join(chunks, "")
		mu.Unlock()
		if strings.Contains(joined, "hello from task") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("output not routed: %q", joined)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDrainAndShutdown(t *testing.T) {
	tc := startCluster(t, 2, Config{})
	tc.runner.Register("quick", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		time.Sleep(10 * time.Millisecond)
		return 0
	})
	for i := 0; i < 6; i++ {
		if _, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: fmt.Sprintf("q%d", i), NProcs: 1, Cmd: "quick"}, Type: Sequential}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tc.d.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if st := tc.d.Stats(); st.JobsCompleted != 6 {
		t.Fatalf("stats %+v", st)
	}
	if _, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "late", NProcs: 1, Cmd: "quick"}, Type: Sequential}); err == nil {
		t.Error("submit after shutdown accepted")
	}
}

func TestRecordsProduced(t *testing.T) {
	tc := startCluster(t, 2, Config{})
	tc.runner.Register("r", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		time.Sleep(20 * time.Millisecond)
		return 0
	})
	h, _ := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "rec", NProcs: 2, Cmd: "r"}, Type: MPI})
	h.Wait()
	recs := tc.d.Records()
	if len(recs) != 1 {
		t.Fatalf("records=%d", len(recs))
	}
	if recs[0].Procs != 2 || recs[0].Duration() < 15*time.Millisecond {
		t.Fatalf("record %+v", recs[0])
	}
}

func TestPriorityPolicyIntegration(t *testing.T) {
	tc := startCluster(t, 1, Config{Queue: NewPriorityQueue(false)})
	var mu sync.Mutex
	var order []string
	block := make(chan struct{})
	tc.runner.Register("ordered", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		<-block
		mu.Lock()
		order = append(order, args[0])
		mu.Unlock()
		return 0
	})
	// Occupy the only worker so later submissions queue.
	first, _ := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "first", NProcs: 1, Cmd: "ordered", Args: []string{"first"}}, Type: Sequential})
	time.Sleep(20 * time.Millisecond)
	lo, _ := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "lo", NProcs: 1, Cmd: "ordered", Args: []string{"lo"}}, Type: Sequential, Priority: 1})
	hi, _ := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "hi", NProcs: 1, Cmd: "ordered", Args: []string{"hi"}}, Type: Sequential, Priority: 9})
	close(block)
	first.Wait()
	lo.Wait()
	hi.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[1] != "hi" || order[2] != "lo" {
		t.Fatalf("order=%v", order)
	}
}

func TestStageFileReachesWorkers(t *testing.T) {
	dir := t.TempDir()
	d := New(Config{})
	addr, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	runner := hydra.NewFuncRunner()
	w, err := worker.New(worker.Config{
		ID: "cacher", DispatcherAddr: addr, Runner: runner,
		HeartbeatInterval: 20 * time.Millisecond, CacheDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)

	d.StageFile("libapp.so", []byte("binary-bits"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		data, err := readFile(dir + "/libapp.so")
		if err == nil && string(data) == "binary-bits" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("staged file never appeared: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Tasks see JETS_CACHE pointing at the cache dir.
	got := make(chan string, 1)
	runner.Register("check-cache", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		got <- env["JETS_CACHE"]
		return 0
	})
	h, err := d.Submit(Job{Spec: hydra.JobSpec{JobID: "cc", NProcs: 1, Cmd: "check-cache"}, Type: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	h.Wait()
	select {
	case v := <-got:
		if v != dir {
			t.Fatalf("JETS_CACHE=%q want %q", v, dir)
		}
	default:
		t.Fatal("task did not run")
	}
}

func readFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// TestJSONWorkerInteropsWithBinaryDispatcher is the negotiation test: a
// v1-only worker (announces no protocol version) registers against a
// binary-capable dispatcher and runs jobs alongside a v2 worker. The
// dispatcher must keep that connection on JSON frames end to end.
func TestJSONWorkerInteropsWithBinaryDispatcher(t *testing.T) {
	d := New(Config{WriteCoalesce: 8})
	addr, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	runner := hydra.NewFuncRunner()
	var ran sync.Map
	runner.Register("mark", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		ran.Store(args[0], true)
		fmt.Fprintln(stdout, "output via", args[0])
		return 0
	})

	var wg sync.WaitGroup
	defer wg.Wait() // runs after cancel below (defers are LIFO)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, cfg := range []worker.Config{
		{ID: "legacy", DispatcherAddr: addr, Runner: runner, HeartbeatInterval: 20 * time.Millisecond, JSONOnly: true},
		{ID: "modern", DispatcherAddr: addr, Runner: runner, HeartbeatInterval: 20 * time.Millisecond},
	} {
		w, err := worker.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.IdleWorkers() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("workers idle: %d", d.IdleWorkers())
		}
		time.Sleep(time.Millisecond)
	}

	// Enough single-proc jobs that both workers must serve some.
	var handles []*Handle
	for i := 0; i < 40; i++ {
		h, err := d.Submit(Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("mix%d", i), NProcs: 1, Cmd: "mark",
				Args: []string{fmt.Sprintf("t%d", i)}},
			Type: Sequential,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	workersUsed := map[string]bool{}
	for _, h := range handles {
		res := h.Wait()
		if res.Failed {
			t.Fatalf("job %s failed: %s", res.JobID, res.Err)
		}
		for _, w := range res.Workers {
			workersUsed[w] = true
		}
	}
	if !workersUsed["legacy"] || !workersUsed["modern"] {
		t.Fatalf("both wire versions must serve jobs; used=%v", workersUsed)
	}
	count := 0
	ran.Range(func(_, _ any) bool { count++; return true })
	if count != 40 {
		t.Fatalf("ran %d/40 tasks", count)
	}
}

// TestManyWorkersIdleChurn is the regression test for the idle-set
// complexity fix: a large pool cycles through park/dispatch/death and the
// idle accounting must stay exact throughout. Run at both shard extremes so
// the single-lock and sharded+stealing schedulers face the same churn.
func TestManyWorkersIdleChurn(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			manyWorkersIdleChurn(t, shards)
		})
	}
}

func manyWorkersIdleChurn(t *testing.T, shards int) {
	const n = 64
	tc := startCluster(t, n, Config{HeartbeatTimeout: 30 * time.Second, WriteCoalesce: 16, Shards: shards})
	tc.runner.Register("spin", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		time.Sleep(time.Millisecond)
		return 0
	})
	// Saturating waves of MPI jobs of varied widths exercise Take() with
	// nontrivial group selections.
	var handles []*Handle
	for wave := 0; wave < 3; wave++ {
		for i, procs := range []int{1, 2, 4, 8, 16, 32} {
			h, err := tc.d.Submit(Job{
				Spec: hydra.JobSpec{JobID: fmt.Sprintf("w%d-j%d", wave, i), NProcs: procs, Cmd: "spin"},
				Type: MPI,
			})
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
	}
	for _, h := range handles {
		if res := h.Wait(); res.Failed {
			t.Fatalf("job %s failed: %s", res.JobID, res.Err)
		}
	}
	// Kill a third of the pool; the dispatcher must drop exactly those from
	// both the worker table and the idle set.
	for i := 0; i < n/3; i++ {
		tc.workers[i].Kill()
	}
	deadline := time.Now().Add(10 * time.Second)
	for tc.d.Workers() != n-n/3 || tc.d.IdleWorkers() != n-n/3 {
		if time.Now().After(deadline) {
			t.Fatalf("workers=%d idle=%d want %d", tc.d.Workers(), tc.d.IdleWorkers(), n-n/3)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The surviving pool still dispatches.
	h, err := tc.d.Submit(Job{
		Spec: hydra.JobSpec{JobID: "after-churn", NProcs: 16, Cmd: "spin"},
		Type: MPI,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Wait(); res.Failed {
		t.Fatalf("post-churn job failed: %s", res.Err)
	}
}

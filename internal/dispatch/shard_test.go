package dispatch

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"jets/internal/hydra"
	"jets/internal/proto"
)

// rawWorker registers a bare codec as a worker, bypassing the worker agent,
// so tests can script the wire protocol frame by frame.
func rawWorker(t *testing.T, addr, id string, coord []int) *proto.Codec {
	t.Helper()
	codec, err := proto.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { codec.Close() })
	codec.Send(&proto.Envelope{Kind: proto.KindRegister, Register: &proto.Register{WorkerID: id, Coord: coord}})
	e, err := codec.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != proto.KindRegistered {
		t.Fatalf("worker %s: register reply %+v", id, e)
	}
	return codec
}

// recvKind reads frames until one of the wanted kind arrives (skipping
// staged-file pushes etc.).
func recvKind(t *testing.T, codec *proto.Codec, kind proto.Kind) *proto.Envelope {
	t.Helper()
	for {
		e, err := codec.Recv()
		if err != nil {
			t.Fatalf("waiting for %s: %v", kind, err)
		}
		if e.Kind == kind {
			return e
		}
	}
}

// TestStaleResultFromWrongWorkerRejected is the regression test for the
// stale-result race: a result frame for a pending task ID must only be
// credited when it comes from the worker the task is pending ON. Before the
// fix, any connection could complete any pending task, so a late result from
// a prior faulted attempt's surviving worker completed the retried attempt's
// identically-named task.
func TestStaleResultFromWrongWorkerRejected(t *testing.T) {
	d := New(Config{})
	addr, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	wa := rawWorker(t, addr, "wa", nil)
	wa.Send(&proto.Envelope{Kind: proto.KindWorkRequest})

	h, err := d.Submit(Job{Spec: hydra.JobSpec{JobID: "j1", NProcs: 1, Cmd: "app"}, Type: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	task := recvKind(t, wa, proto.KindTask)
	if task.Task.TaskID != "j1/seq" {
		t.Fatalf("task id %q", task.Task.TaskID)
	}

	// A different connection forges a result for wa's in-flight task.
	wb := rawWorker(t, addr, "wb", nil)
	wb.Send(&proto.Envelope{Kind: proto.KindResult, Result: &proto.Result{JobID: "j1", TaskID: "j1/seq", ExitCode: 0}})

	// The forged result must not complete the job.
	select {
	case <-h.Done():
		res, _ := h.TryResult()
		t.Fatalf("job completed from the wrong worker's result: %+v", res)
	case <-time.After(150 * time.Millisecond):
	}

	// The real worker's result still completes it.
	wa.Send(&proto.Envelope{Kind: proto.KindResult, Result: &proto.Result{JobID: "j1", TaskID: "j1/seq", ExitCode: 0}})
	select {
	case <-h.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job never completed from the owning worker")
	}
	res, _ := h.TryResult()
	if res.Failed || len(res.Workers) != 1 || res.Workers[0] != "wa" {
		t.Fatalf("result %+v", res)
	}
}

// TestSubmitDuringShutdownRejected is the regression test for the
// shutdown/submit race: Shutdown must flag draining BEFORE waiting out the
// drain, so no submission can slip in while it blocks on running jobs.
func TestSubmitDuringShutdownRejected(t *testing.T) {
	tc := startCluster(t, 1, Config{})
	release := make(chan struct{})
	tc.runner.Register("blocker", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return 0
	})
	if _, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "hold", NProcs: 1, Cmd: "blocker"}, Type: Sequential}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tc.d.RunningJobs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownErr <- tc.d.Shutdown(ctx) }()

	// While Shutdown blocks on the running job, submissions must start
	// failing. Pre-fix, draining was only set after Drain returned, so this
	// loop accepted jobs until the deadline.
	deadline = time.Now().Add(2 * time.Second)
	i := 0
	for {
		_, err := tc.d.Submit(Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("slip%d", i), NProcs: 1, Cmd: "blocker"},
			Type: Sequential,
		})
		i++
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions still accepted while Shutdown is draining")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestSequentialJobTimeoutDefaulted is the regression test for the missing
// sequential wall limit: cfg.JobTimeout must bound sequential tasks too, not
// just the MPI branch, or a hung task wedges its worker forever.
func TestSequentialJobTimeoutDefaulted(t *testing.T) {
	tc := startCluster(t, 1, Config{JobTimeout: 100 * time.Millisecond})
	tc.runner.Register("hang", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		<-ctx.Done()
		return 1
	})
	h, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "hung", NProcs: 1, Cmd: "hang"}, Type: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("sequential job ignored JobTimeout and hung")
	}
	if res, _ := h.TryResult(); !res.Failed {
		t.Fatalf("timed-out job reported success: %+v", res)
	}
}

// TestReconnectAfterBlipEvicted is the regression test for the reconnect
// race: a worker re-registering after a network blip must not be refused as
// a duplicate while its dead previous connection waits out the heartbeat
// timeout. A stale predecessor (silent for half the timeout) is evicted.
func TestReconnectAfterBlipEvicted(t *testing.T) {
	d := New(Config{HeartbeatTimeout: time.Second})
	addr, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	old := rawWorker(t, addr, "node7", nil)
	_ = old
	// The connection goes silent — no heartbeats — simulating a network
	// blip. After HeartbeatTimeout/2 it is stale but not yet janitor-expired.
	time.Sleep(600 * time.Millisecond)

	// The worker reconnects under the same ID; rawWorker fails the test if
	// the register is answered with anything but KindRegistered (pre-fix it
	// got KindError "duplicate worker id").
	fresh := rawWorker(t, addr, "node7", nil)

	if n := d.Workers(); n != 1 {
		t.Fatalf("workers=%d after eviction", n)
	}
	if st := d.Stats(); st.WorkersJoined != 2 || st.WorkersLost != 1 {
		t.Fatalf("stats %+v", st)
	}

	// The admitted connection is live: it can park and receive work.
	fresh.Send(&proto.Envelope{Kind: proto.KindWorkRequest})
	if _, err := d.Submit(Job{Spec: hydra.JobSpec{JobID: "post", NProcs: 1, Cmd: "app"}, Type: Sequential}); err != nil {
		t.Fatal(err)
	}
	recvKind(t, fresh, proto.KindTask)
}

// TestActiveDuplicateStillRejected pins the other side of the eviction rule:
// a duplicate register while the existing connection is heartbeating stays an
// error (see also TestDuplicateWorkerIDRejected, which goes through the full
// worker agent).
func TestActiveDuplicateStillRejected(t *testing.T) {
	d := New(Config{HeartbeatTimeout: 10 * time.Second})
	addr, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rawWorker(t, addr, "w", nil)
	codec, err := proto.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer codec.Close()
	codec.Send(&proto.Envelope{Kind: proto.KindRegister, Register: &proto.Register{WorkerID: "w"}})
	e, err := codec.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != proto.KindError {
		t.Fatalf("live duplicate admitted: %+v", e)
	}
}

// TestNoWorkerInTwoShards checks the shard-partition invariant: every parked
// worker sits in exactly one shard's idle set, the shard its key maps to —
// for both coordinate-keyed and hash-keyed (coordinate-less) workers.
func TestNoWorkerInTwoShards(t *testing.T) {
	d := New(Config{Shards: 4, HeartbeatTimeout: 30 * time.Second})
	addr, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const n = 32
	for i := 0; i < n; i++ {
		var coord []int
		if i%3 != 0 { // every third worker exercises the hash fallback
			coord = []int{i % 8, (i / 8) % 8, 0}
		}
		codec := rawWorker(t, addr, fmt.Sprintf("p%d", i), coord)
		codec.Send(&proto.Envelope{Kind: proto.KindWorkRequest})
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.IdleWorkers() != n {
		if time.Now().After(deadline) {
			t.Fatalf("idle=%d want %d", d.IdleWorkers(), n)
		}
		time.Sleep(time.Millisecond)
	}

	d.lockAll()
	defer d.unlockAll()
	seen := map[*workerConn]int{}
	total := 0
	for _, s := range d.shards {
		for _, wc := range s.idle.list {
			if prev, dup := seen[wc]; dup {
				t.Errorf("worker %s parked in shards %d and %d", wc.id, prev, s.idx)
			}
			seen[wc] = s.idx
			if wc.shard != s {
				t.Errorf("worker %s parked in shard %d but homed to %d", wc.id, s.idx, wc.shard.idx)
			}
			if want := d.shardFor(wc); want != wc.shard {
				t.Errorf("worker %s homed to shard %d, key maps to %d", wc.id, wc.shard.idx, want.idx)
			}
			total++
		}
	}
	if total != n {
		t.Errorf("parked=%d want %d", total, n)
	}
	used := map[int]bool{}
	for _, idx := range seen {
		used[idx] = true
	}
	if len(used) < 2 {
		t.Errorf("all workers landed in %d shard(s); keying is degenerate", len(used))
	}
}

// TestStealPreservesFIFOOrder: with shards > workers, most submissions land
// in shards with no idle workers and must be stolen; the per-submit sequence
// arbitration has to keep completion order equal to submission order anyway.
func TestStealPreservesFIFOOrder(t *testing.T) {
	tc := startCluster(t, 1, Config{Shards: 4})
	var mu sync.Mutex
	var order []string
	release := make(chan struct{})
	tc.runner.Register("hold", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		<-release
		return 0
	})
	tc.runner.Register("ordered", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		mu.Lock()
		order = append(order, args[0])
		mu.Unlock()
		return 0
	})
	// Occupy the only worker so the batch below queues across shards.
	hold, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "hold", NProcs: 1, Cmd: "hold"}, Type: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tc.d.RunningJobs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hold job never started")
		}
		time.Sleep(time.Millisecond)
	}
	const batch = 12
	var handles []*Handle
	for i := 0; i < batch; i++ {
		h, err := tc.d.Submit(Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("j%d", i), NProcs: 1, Cmd: "ordered",
				Args: []string{fmt.Sprintf("j%d", i)}},
			Type: Sequential,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	close(release)
	hold.Wait()
	for _, h := range handles {
		if res := h.Wait(); res.Failed {
			t.Fatalf("job %s failed: %s", res.JobID, res.Err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != batch {
		t.Fatalf("ran %d/%d", len(order), batch)
	}
	for i, id := range order {
		if want := fmt.Sprintf("j%d", i); id != want {
			t.Fatalf("completion order %v: position %d is %s, want %s", order, i, id, want)
		}
	}
}

// TestCrossShardGroupAssembly: an MPI job wider than any single shard's idle
// pool must assemble its group across shards under the multi-lock.
func TestCrossShardGroupAssembly(t *testing.T) {
	tc := startCluster(t, 8, Config{Shards: 4})
	tc.runner.Register("noop", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	// 8 workers with coord[0] = i%8 spread 2 per shard; a 6-wide job cannot
	// be seated by any one shard.
	h, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "wide", NProcs: 6, Cmd: "noop"}, Type: MPI})
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if res.Failed {
		t.Fatalf("cross-shard job failed: %s", res.Err)
	}
	if len(res.Workers) != 6 {
		t.Fatalf("ran on %d workers", len(res.Workers))
	}
}

// TestDefaultShards pins the GOMAXPROCS derivation: a power of two, at least
// one, at most 16.
func TestDefaultShards(t *testing.T) {
	n := DefaultShards()
	if n < 1 || n > 16 || n&(n-1) != 0 {
		t.Fatalf("DefaultShards()=%d", n)
	}
	if New(Config{}).Shards() != n {
		t.Fatal("default config did not adopt DefaultShards")
	}
	if got := New(Config{Queue: NewPriorityQueue(false)}).Shards(); got != 1 {
		t.Fatalf("legacy Queue config got %d shards, want 1", got)
	}
	if got := New(Config{Shards: 3}).Shards(); got != 3 {
		t.Fatalf("explicit shard count not honored: %d", got)
	}
}

package dispatch

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one dispatcher life-cycle occurrence, for observability and
// post-run analysis (the §6.1.5 experiment's "worker and user task start
// and stop times were recorded" instrumentation).
type Event struct {
	// T is the offset from the dispatcher epoch.
	T    time.Duration `json:"t"`
	Kind EventKind     `json:"kind"`

	WorkerID string `json:"worker,omitempty"`
	JobID    string `json:"job,omitempty"`
	TaskID   string `json:"task,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// EventKind enumerates trace event types.
type EventKind string

// Event kinds. A job's life cycle traces as submitted → queued →
// group-assembled → started → task-sent* → pmi-wired (MPI jobs) →
// task-done* → completed | failed | retried, with retried feeding back into
// queued for the next attempt.
const (
	EvWorkerJoined EventKind = "worker-joined"
	EvWorkerLost   EventKind = "worker-lost"
	EvJobSubmitted EventKind = "job-submitted"
	// EvJobQueued marks the job entering a scheduling shard's queue, both on
	// first submission and on each retry requeue (Detail "retry").
	EvJobQueued EventKind = "job-queued"
	// EvGroupAssembled marks the scheduling pass seating the job on its
	// worker group (Detail names the path: "local" or "stolen").
	EvGroupAssembled EventKind = "group-assembled"
	EvJobStarted     EventKind = "job-started"
	EvTaskSent       EventKind = "task-sent"
	// EvPMIWired marks all ranks of an MPI job having connected to the job's
	// PMI server: the point where MPI_Init can complete.
	EvPMIWired     EventKind = "pmi-wired"
	EvTaskDone     EventKind = "task-done"
	EvJobCompleted EventKind = "job-completed"
	EvJobFailed    EventKind = "job-failed"
	EvJobRetried   EventKind = "job-retried"
	// EvJobMigrated marks a queued job leaving this dispatcher for a
	// federation peer (Detail names the destination instance). Terminal
	// locally; the job's life cycle continues on the destination.
	EvJobMigrated EventKind = "job-migrated"
)

// emit records an event; safe from any goroutine, with or without locks
// held. The event is buffered and delivered by a dedicated drainer goroutine
// so the observer can never deadlock the scheduler. A full buffer drops
// events (counted in DroppedEvents) rather than blocking dispatch.
func (d *Dispatcher) emit(e Event) {
	if d.events == nil {
		return
	}
	e.T = time.Since(d.epoch)
	select {
	case d.events <- e:
	default:
		d.droppedEvents.Add(1)
	}
}

func (d *Dispatcher) drainEvents() {
	defer d.evWG.Done()
	for {
		select {
		case e := <-d.events:
			d.cfg.OnEvent(e)
		case <-d.eventsQuit:
			// Deliver anything already buffered, then exit.
			for {
				select {
				case e := <-d.events:
					d.cfg.OnEvent(e)
				default:
					return
				}
			}
		}
	}
}

// DroppedEvents reports events lost to observer backpressure.
func (d *Dispatcher) DroppedEvents() int {
	return int(d.droppedEvents.Load())
}

// TraceRecorder is an OnEvent sink that retains the full event sequence.
type TraceRecorder struct {
	mu     sync.Mutex
	events []Event
}

// Record is the Config.OnEvent callback.
func (t *TraceRecorder) Record(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded sequence.
func (t *TraceRecorder) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Count returns how many events of the kind were recorded (all kinds when
// kind is empty).
func (t *TraceRecorder) Count(kind EventKind) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if kind == "" {
		return len(t.events)
	}
	n := 0
	for _, e := range t.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// WriteJSON renders the trace as JSON lines.
func (t *TraceRecorder) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, e := range t.events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"

	"jets/internal/hydra"
)

func TestEventTraceLifecycle(t *testing.T) {
	rec := &TraceRecorder{}
	tc := startCluster(t, 2, Config{OnEvent: rec.Record})
	tc.runner.Register("app", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	h, err := tc.d.Submit(Job{
		Spec: hydra.JobSpec{JobID: "traced", NProcs: 2, Cmd: "app"},
		Type: MPI,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Wait(); res.Failed {
		t.Fatalf("job failed: %+v", res)
	}
	// Events are asynchronous; wait for the completion event.
	deadline := time.Now().Add(5 * time.Second)
	for rec.Count(EvJobCompleted) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no completion event; trace: %+v", rec.Events())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := rec.Count(EvWorkerJoined); got != 2 {
		t.Errorf("worker-joined=%d", got)
	}
	if got := rec.Count(EvJobSubmitted); got != 1 {
		t.Errorf("job-submitted=%d", got)
	}
	if got := rec.Count(EvTaskSent); got != 2 {
		t.Errorf("task-sent=%d", got)
	}
	if got := rec.Count(EvTaskDone); got != 2 {
		t.Errorf("task-done=%d", got)
	}
	// Ordering: submitted before started before completed for the job.
	var order []EventKind
	for _, e := range rec.Events() {
		if e.JobID == "traced" && (e.Kind == EvJobSubmitted || e.Kind == EvJobStarted || e.Kind == EvJobCompleted) {
			order = append(order, e.Kind)
		}
	}
	want := []EventKind{EvJobSubmitted, EvJobStarted, EvJobCompleted}
	if len(order) != 3 {
		t.Fatalf("order=%v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v", order)
		}
	}
	// Monotone timestamps.
	events := rec.Events()
	for i := 1; i < len(events); i++ {
		if events[i].T < events[i-1].T {
			t.Fatalf("timestamps not monotone at %d: %v", i, events)
		}
	}
	if tc.d.DroppedEvents() != 0 {
		t.Errorf("dropped=%d", tc.d.DroppedEvents())
	}
}

func TestEventTraceFailureAndLoss(t *testing.T) {
	rec := &TraceRecorder{}
	tc := startCluster(t, 2, Config{OnEvent: rec.Record, HeartbeatTimeout: 5 * time.Second})
	tc.runner.Register("fail", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 3
	})
	h, _ := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "f", NProcs: 1, Cmd: "fail"}, Type: Sequential})
	h.Wait()
	tc.workers[0].Kill()
	deadline := time.Now().Add(5 * time.Second)
	for rec.Count(EvJobFailed) == 0 || rec.Count(EvWorkerLost) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("missing failure/loss events: %+v", rec.Events())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTraceWriteJSON(t *testing.T) {
	rec := &TraceRecorder{}
	rec.Record(Event{T: time.Second, Kind: EvJobSubmitted, JobID: "j1"})
	rec.Record(Event{T: 2 * time.Second, Kind: EvJobCompleted, JobID: "j1"})
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines=%v", lines)
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != EvJobSubmitted || e.JobID != "j1" {
		t.Fatalf("decoded %+v", e)
	}
}

func TestNoTracingByDefault(t *testing.T) {
	tc := startCluster(t, 1, Config{})
	tc.runner.Register("x", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int { return 0 })
	h, _ := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "q", NProcs: 1, Cmd: "x"}, Type: Sequential})
	if res := h.Wait(); res.Failed {
		t.Fatal("job failed")
	}
	if tc.d.DroppedEvents() != 0 {
		t.Fatal("events counted with tracing disabled")
	}
}

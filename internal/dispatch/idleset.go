package dispatch

// idleSet tracks parked workers (those with an unanswered work request).
// The seed kept a bare slice, which made workerGone's removal O(n) and
// launch's group extraction an O(n·m) rebuild — measurable churn once the
// pool reaches paper scale (thousands of pilots). The index map makes
// membership, add, and remove O(1) while preserving a stable slice for the
// grouping policies, which select workers by index into Coords().
//
// Not safe for concurrent use; every method is called under Dispatcher.mu.
type idleSet struct {
	list []*workerConn
	pos  map[*workerConn]int
}

func newIdleSet() *idleSet {
	return &idleSet{pos: make(map[*workerConn]int)}
}

func (s *idleSet) Len() int { return len(s.list) }

// Contains reports membership.
func (s *idleSet) Contains(wc *workerConn) bool {
	_, ok := s.pos[wc]
	return ok
}

// Add parks a worker; it reports false if the worker was already parked.
func (s *idleSet) Add(wc *workerConn) bool {
	if _, ok := s.pos[wc]; ok {
		return false
	}
	s.pos[wc] = len(s.list)
	s.list = append(s.list, wc)
	return true
}

// Remove unparks a worker by swapping the tail into its slot.
func (s *idleSet) Remove(wc *workerConn) bool {
	i, ok := s.pos[wc]
	if !ok {
		return false
	}
	last := len(s.list) - 1
	if i != last {
		moved := s.list[last]
		s.list[i] = moved
		s.pos[moved] = i
	}
	s.list[last] = nil // don't pin the dropped worker
	s.list = s.list[:last]
	delete(s.pos, wc)
	return true
}

// Coords snapshots the parked workers' interconnect coordinates in slice
// order, the input contract of GroupPolicy.
func (s *idleSet) Coords() [][]int {
	coords := make([][]int, len(s.list))
	for i, wc := range s.list {
		coords[i] = wc.reg.Coord
	}
	return coords
}

// Take removes and returns the workers at the given indices (a GroupPolicy
// selection over the Coords() snapshot). Indices refer to the pre-removal
// slice, so workers are collected first and removed after.
func (s *idleSet) Take(sel []int) []*workerConn {
	group := make([]*workerConn, len(sel))
	for i, idx := range sel {
		group[i] = s.list[idx]
	}
	for _, wc := range group {
		s.Remove(wc)
	}
	return group
}

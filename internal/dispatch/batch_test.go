package dispatch

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"jets/internal/hydra"
)

func TestSubmitBatch(t *testing.T) {
	tc := startCluster(t, 4, Config{})
	var mu sync.Mutex
	ran := map[string]bool{}
	tc.runner.Register("touch", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		mu.Lock()
		ran[args[0]] = true
		mu.Unlock()
		return 0
	})
	jobs := make([]Job, 20)
	for i := range jobs {
		jobs[i] = Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("b%d", i), NProcs: 1, Cmd: "touch",
				Args: []string{fmt.Sprintf("f%d", i)}},
			Type: Sequential,
		}
	}
	handles, err := tc.d.SubmitBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) != len(jobs) {
		t.Fatalf("got %d handles for %d jobs", len(handles), len(jobs))
	}
	for _, h := range handles {
		res := h.Wait()
		if res.Failed {
			t.Fatalf("job %s failed: %s", res.JobID, res.Err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ran) != 20 {
		t.Fatalf("ran %d/20 jobs", len(ran))
	}
}

func TestSubmitBatchValidation(t *testing.T) {
	tc := startCluster(t, 1, Config{})
	// A duplicate ID inside the batch rejects the whole batch atomically.
	jobs := []Job{
		{Spec: hydra.JobSpec{JobID: "dup", NProcs: 1, Cmd: "x"}, Type: Sequential},
		{Spec: hydra.JobSpec{JobID: "dup", NProcs: 1, Cmd: "x"}, Type: Sequential},
	}
	if _, err := tc.d.SubmitBatch(jobs); err == nil || !strings.Contains(err.Error(), "duplicate job id") {
		t.Fatalf("err = %v, want duplicate job id", err)
	}
	if got := tc.d.Stats().JobsSubmitted; got != 0 {
		t.Fatalf("rejected batch still submitted %d jobs", got)
	}
	// A sequential job with NProcs > 1 is invalid.
	bad := []Job{{Spec: hydra.JobSpec{JobID: "s", NProcs: 2, Cmd: "x"}, Type: Sequential}}
	if _, err := tc.d.SubmitBatch(bad); err == nil || !strings.Contains(err.Error(), "NProcs 1") {
		t.Fatalf("err = %v, want NProcs validation", err)
	}
}

func TestHandleOnDone(t *testing.T) {
	h := newHandle("j")
	var mu sync.Mutex
	var got []string
	h.OnDone(func(res JobResult) {
		mu.Lock()
		got = append(got, "before:"+res.JobID)
		mu.Unlock()
	})
	h.complete(JobResult{JobID: "j"})
	// Registered after completion: must fire immediately with the result.
	fired := make(chan struct{})
	h.OnDone(func(res JobResult) {
		mu.Lock()
		got = append(got, "after:"+res.JobID)
		mu.Unlock()
		close(fired)
	})
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("late OnDone callback never fired")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != "before:j" || got[1] != "after:j" {
		t.Fatalf("callbacks = %v", got)
	}
}

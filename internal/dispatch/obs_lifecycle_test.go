package dispatch

// Lifecycle-trace ordering tests: the per-job event sequence the observability
// layer documents (events.go) must hold exactly, including across a
// faulted-worker retry, and the instrumentation histograms must see every job.

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"jets/internal/faults"
	"jets/internal/hydra"
	"jets/internal/mpi"
	"jets/internal/worker"
)

// jobKindIndexes returns, for one job, the event-stream index of the first
// occurrence of each kind (and the last index of repeatable kinds).
func jobEvents(rec *TraceRecorder, jobID string) []Event {
	var out []Event
	for _, e := range rec.Events() {
		if e.JobID == jobID {
			out = append(out, e)
		}
	}
	return out
}

func waitForEvent(t *testing.T, rec *TraceRecorder, kind EventKind, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for rec.Count(kind) < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d %q events; trace: %+v", n, kind, rec.Events())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertOrdered checks that the kinds occur in the given order within the
// job's event slice, each appearing exactly the expected number of times.
func assertOrdered(t *testing.T, events []Event, want []EventKind) {
	t.Helper()
	var got []EventKind
	for _, e := range events {
		got = append(got, e.Kind)
	}
	if len(got) != len(want) {
		t.Fatalf("event sequence length %d, want %d:\ngot  %v\nwant %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %q, want %q:\ngot  %v\nwant %v", i, got[i], want[i], got, want)
		}
	}
}

func TestLifecycleTraceOrderingMPI(t *testing.T) {
	rec := &TraceRecorder{}
	tc := startCluster(t, 2, Config{OnEvent: rec.Record})
	tc.runner.Register("wired-app", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		comm, err := mpi.InitEnvFrom(env)
		if err != nil {
			return 1
		}
		defer comm.Close()
		if err := comm.Barrier(); err != nil {
			return 2
		}
		return 0
	})
	h, err := tc.d.Submit(Job{
		Spec: hydra.JobSpec{JobID: "lifecycle", NProcs: 2, Cmd: "wired-app"},
		Type: MPI,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Wait(); res.Failed {
		t.Fatalf("job failed: %+v", res)
	}
	waitForEvent(t, rec, EvJobCompleted, 1)

	// The full documented sequence for a healthy 2-rank MPI job. pmi-wired
	// must land after both task-sent events (ranks can only dial once their
	// proxy task reached a worker) and before any task-done (the barrier
	// cannot release until every rank has initialized).
	assertOrdered(t, jobEvents(rec, "lifecycle"), []EventKind{
		EvJobSubmitted, EvJobQueued, EvGroupAssembled, EvJobStarted,
		EvTaskSent, EvTaskSent, EvPMIWired, EvTaskDone, EvTaskDone,
		EvJobCompleted,
	})

	// The queue-wait, assembly, and duration histograms all saw the job.
	for _, h := range []struct {
		name  string
		count int64
	}{
		{"queueWait", tc.d.ins.queueWait.Count()},
		{"assembly", tc.d.ins.assembly.Count()},
		{"jobDur", tc.d.ins.jobDur.Count()},
	} {
		if h.count != 1 {
			t.Errorf("%s histogram count = %d, want 1", h.name, h.count)
		}
	}
	if tc.d.DroppedEvents() != 0 {
		t.Errorf("dropped=%d", tc.d.DroppedEvents())
	}
}

func TestLifecycleTraceFaultedRetry(t *testing.T) {
	rec := &TraceRecorder{}
	tc := startCluster(t, 2, Config{OnEvent: rec.Record, MaxJobRetries: 2, HeartbeatTimeout: 5 * time.Second})
	var mu sync.Mutex
	runs := 0
	tc.runner.Register("victim", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		mu.Lock()
		runs++
		first := runs == 1
		mu.Unlock()
		if first {
			// First attempt: the hosting worker is killed by the fault
			// injector below; block until its context tears down.
			<-ctx.Done()
			return 1
		}
		return 0
	})
	h, err := tc.d.Submit(Job{Spec: hydra.JobSpec{JobID: "faulted", NProcs: 1, Cmd: "victim"}, Type: Sequential})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the first attempt to be running, then inject a §6.1.5-style
	// fault targeted at the busy worker.
	var busy *worker.Worker
	deadline := time.Now().Add(5 * time.Second)
	for busy == nil {
		if time.Now().After(deadline) {
			t.Fatal("first attempt never started")
		}
		for _, w := range tc.workers {
			if w.Busy() {
				busy = w
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	inj := faults.NewInjector([]*worker.Worker{busy}, time.Hour, 1)
	if !inj.KillOne() {
		t.Fatal("injector had no worker to kill")
	}

	res := h.Wait()
	if res.Failed {
		t.Fatalf("retried job failed: %+v", res)
	}
	if res.Retries != 1 {
		t.Fatalf("retries=%d want 1", res.Retries)
	}
	waitForEvent(t, rec, EvJobCompleted, 1)

	// Full sequence across the fault: the first attempt ends in job-retried,
	// which feeds back into job-queued (Detail "retry") for the second.
	events := jobEvents(rec, "faulted")
	assertOrdered(t, events, []EventKind{
		EvJobSubmitted, EvJobQueued, EvGroupAssembled, EvJobStarted, EvTaskSent,
		EvJobRetried,
		EvJobQueued, EvGroupAssembled, EvJobStarted, EvTaskSent, EvTaskDone,
		EvJobCompleted,
	})
	// The requeue must be distinguishable from the first placement.
	queued := 0
	for _, e := range events {
		if e.Kind == EvJobQueued {
			queued++
			if queued == 1 && e.Detail != "" {
				t.Errorf("first queued event carries detail %q", e.Detail)
			}
			if queued == 2 && e.Detail != "retry" {
				t.Errorf("requeue event detail = %q, want \"retry\"", e.Detail)
			}
		}
	}
	// Both attempts were seated, so the seated-lifetime histogram saw two
	// pops while queue-wait saw both waits.
	if got := tc.d.ins.jobDur.Count(); got != 2 {
		t.Errorf("jobDur count = %d, want 2 (one per attempt)", got)
	}
	if got := tc.d.ins.queueWait.Count(); got != 2 {
		t.Errorf("queueWait count = %d, want 2 (one per attempt)", got)
	}
}

func TestStealEventAndCounter(t *testing.T) {
	// Force the multi-shard path: jobs land in shards without idle workers,
	// so group assembly crosses shards and counts as a steal.
	rec := &TraceRecorder{}
	tc := startCluster(t, 4, Config{OnEvent: rec.Record, Shards: 4})
	tc.runner.Register("noop", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	var handles []*Handle
	for i := 0; i < 8; i++ {
		h, err := tc.d.Submit(Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("s%d", i), NProcs: 3, Cmd: "noop"},
			Type: MPI,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		if res := h.Wait(); res.Failed {
			t.Fatalf("job failed: %+v", res)
		}
	}
	// A 3-proc group over 4 workers spread across 4 shards cannot assemble
	// from any single shard's idle set, so at least one launch went through
	// the stolen path — and the counter must agree with the events.
	st := tc.d.Stats()
	if st.Steals == 0 {
		t.Fatal("no steals recorded for cross-shard group assembly")
	}
	stolen := 0
	for _, e := range rec.Events() {
		if e.Kind == EvGroupAssembled && e.Detail == "stolen" {
			stolen++
		}
	}
	if stolen != st.Steals {
		t.Errorf("stolen group-assembled events = %d, Stats().Steals = %d", stolen, st.Steals)
	}
}

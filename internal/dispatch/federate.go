package dispatch

// Federation surface: what one dispatcher instance exposes to the work
// router tier (internal/router). The router partitions submissions across N
// instances and rebalances queued work between them; this file provides the
// instance side of that contract:
//
//   - StealQueued / SubmitStolen move *queued* (never running) jobs between
//     instances, generalizing the intra-dispatcher shard steal (steal.go)
//     one level up. The victim journals a Migrated record — terminal locally
//     — and the thief journals a fresh Submitted record, so each instance's
//     WAL stays self-contained across migrations.
//
//   - servePeer speaks the existing v2 wire protocol on the same listener
//     workers use: a KindPeerAttach first frame (instead of KindRegister)
//     selects the peer path, so remote routers need no new port and workers
//     and clients need no changes.
//
//   - LiveJobs / HandleOf / Load expose the reconciliation and balancing
//     inputs the router needs; in-process federation calls them directly,
//     remote federation gets them via PeerAttached and LoadReport frames.

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"jets/internal/hydra"
	"jets/internal/journal"
	"jets/internal/proto"
)

// ErrDraining rejects work arriving at an instance that has begun shutting
// down. SubmitStolen returns it so a routing tier can distinguish "re-place
// this job elsewhere" from a fatal submission error: the job never entered
// this instance's state.
var ErrDraining = errors.New("dispatch: dispatcher is draining")

// StolenJob is a queued job extracted from one instance for placement on
// another: the durable submission payload plus the retry budget already
// consumed, which the thief preserves so migration never resets a job's
// attempt accounting.
type StolenJob struct {
	Spec     hydra.JobSpec
	Type     JobType
	Priority int
	Retries  int
}

// StealQueued extracts up to max queued jobs — oldest first, by submit
// sequence — for migration to the instance named dest. Running jobs are
// never taken: their workers, PMI wiring, and results live here. Each taken
// job is journaled as Migrated (terminal locally, so a crash between steal
// and re-placement recovers it on the destination, not twice), its local
// handle is abandoned, and its ID becomes free locally.
//
// Only a routing tier that owns completion delivery may call this: whoever
// holds the returned jobs is responsible for re-submitting them (thief-side
// SubmitStolen) and routing their completions back to the original
// submitter's handle. Directly submitted jobs must not be stolen out from
// under a caller waiting on the instance handle.
func (d *Dispatcher) StealQueued(max int, dest string) []StolenJob {
	if max <= 0 {
		return nil
	}
	// One extracted job: a hydrated hot job, or a cold-tail entry whose spec
	// is read back after the locks drop. Cold entries are moved by ID under
	// the multi-lock — stealing never forces a disk read into the locked
	// region — and hydrated in a single batched spill read below. Entries a
	// refill pass has already claimed (s.refill) stay put.
	type stealEntry struct {
		j    *Job
		cj   coldJob
		cold bool
	}
	var entries []stealEntry
	d.lockAll()
	for len(entries) < max {
		// Exact global minimum under the full multi-lock, mirroring
		// launchStolen: steal the oldest queued work so the destination's
		// front-of-queue placement approximates the federation-wide FIFO.
		best, bestSeq, bestCold := -1, noJob, false
		for i, s := range d.shards {
			if j := s.queue.Peek(); j != nil && j.seq < bestSeq {
				best, bestSeq, bestCold = i, j.seq, false
			}
			if len(s.cold) > 0 && s.cold[0].seq < bestSeq {
				best, bestSeq, bestCold = i, s.cold[0].seq, true
			}
		}
		if best < 0 {
			break
		}
		s := d.shards[best]
		if bestCold {
			cj := s.cold[0]
			s.cold = s.cold[:copy(s.cold, s.cold[1:])]
			s.refreshHead()
			entries = append(entries, stealEntry{cj: cj, cold: true})
			continue
		}
		j := s.queue.Next(math.MaxInt)
		s.refreshHead()
		if j == nil {
			break
		}
		entries = append(entries, stealEntry{j: j})
	}
	d.unlockAll()
	if len(entries) == 0 {
		return nil
	}
	var coldIDs []string
	for _, e := range entries {
		if e.cold {
			coldIDs = append(coldIDs, e.cj.id)
		}
	}
	var recs map[string]journal.Record
	sp := d.spillLoaded()
	if len(coldIDs) > 0 && sp != nil {
		var err error
		recs, err = sp.GetBatch(coldIDs)
		d.stats.spillReads.Add(1)
		if err != nil {
			d.spillFailure(err)
		}
	}
	d.mu.Lock()
	for _, e := range entries {
		// Release the ID reservation and the handle index: the job is no
		// longer this instance's. The local handle is abandoned unresolved —
		// the routing tier owns the client-facing handle (see NewHandle).
		id := e.cj.id
		if !e.cold {
			id = e.j.Spec.JobID
		}
		delete(d.live, id)
		delete(d.handles, id)
	}
	d.mu.Unlock()
	out := make([]StolenJob, 0, len(entries))
	for _, e := range entries {
		if e.cold {
			rec, ok := recs[e.cj.id]
			if !ok {
				// Spec unreadable: terminal-fail locally so neither instance
				// resurrects a job nobody can reconstruct.
				d.stats.jobsFailed.Add(1)
				d.journal(journal.Record{Kind: journal.Completed, JobID: e.cj.id, Failed: true})
				d.emit(Event{Kind: EvJobFailed, JobID: e.cj.id, Detail: "spilled job spec unreadable"})
				continue
			}
			j := jobFromRecord(rec)
			j.retries = int(e.cj.retries)
			e.j = j
		}
		d.journal(journal.Record{Kind: journal.Migrated, JobID: e.j.Spec.JobID, Node: dest})
		if sp != nil {
			// Migration ends the spill's custody: the Migrated record is
			// terminal locally and the destination journals its own Submitted.
			sp.Remove(e.j.Spec.JobID)
		}
		d.emit(Event{Kind: EvJobMigrated, JobID: e.j.Spec.JobID, Detail: dest})
		out = append(out, StolenJob{Spec: e.j.Spec, Type: e.j.Type, Priority: e.j.Priority, Retries: e.j.retries})
	}
	return out
}

// SubmitStolen places a job stolen from a peer instance. It differs from
// Submit in three ways: the job keeps its consumed retry budget (journaled
// as a Retried record so the budget survives a crash), it is placed at the
// front of a shard queue — it was the victim's oldest work — and a
// dispatcher that has begun draining refuses it with ErrDraining.
//
// The draining gate matters: Shutdown flips the draining flag under subMu
// and then waits for the queues to empty. A steal placement that landed
// after that flip would resurrect a job behind the drain wait, running it
// against workers already being told to exit (or hanging its handle
// forever). Taking subMu shared across the check-and-place — exactly like
// Submit — makes the gate race-free; the caller re-places the job on
// another instance.
func (d *Dispatcher) SubmitStolen(sj StolenJob) (*Handle, error) {
	if err := sj.Spec.Validate(); err != nil {
		return nil, err
	}
	if sj.Type == Sequential && sj.Spec.NProcs != 1 {
		return nil, fmt.Errorf("dispatch: sequential job %q must have NProcs 1", sj.Spec.JobID)
	}
	h := newHandle(sj.Spec.JobID)
	j := &Job{
		Spec:      sj.Spec,
		Type:      sj.Type,
		Priority:  sj.Priority,
		retries:   sj.Retries,
		handle:    h,
		submitted: time.Now(),
	}
	d.subMu.RLock()
	if d.closed.Load() || d.draining.Load() {
		d.subMu.RUnlock()
		return nil, ErrDraining
	}
	if !d.reserveID(sj.Spec.JobID, h) {
		d.subMu.RUnlock()
		return nil, fmt.Errorf("dispatch: duplicate job id %q", sj.Spec.JobID)
	}
	j.seq = d.subSeq.Add(1)
	d.stats.jobsSubmitted.Add(1)
	d.emit(Event{Kind: EvJobSubmitted, JobID: sj.Spec.JobID, Detail: "stolen"})
	d.journal(submittedRecord(j))
	if j.retries > 0 {
		d.journal(journal.Record{Kind: journal.Retried, JobID: sj.Spec.JobID, Attempt: j.retries})
	}
	d.placeJob(j, true)
	if d.closed.Load() {
		// Same race as Submit: Close's sweep may have run between the check
		// and the placement.
		d.failQueued()
	}
	d.subMu.RUnlock()
	d.schedule()
	return h, nil
}

// LiveJobs returns the IDs of every job this instance considers in flight:
// queued, running, or parked in a retry backoff. The router reconciles its
// routing table against this set after an instance restarts.
func (d *Dispatcher) LiveJobs() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]string, 0, len(d.live))
	for id := range d.live {
		ids = append(ids, id)
	}
	return ids
}

// HandleOf returns the live job's handle. A router re-attaching after a
// restart subscribes to recovered jobs through this; a false return means
// the job is not live here (never arrived, or already terminal).
func (d *Dispatcher) HandleOf(id string) (*Handle, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.handles[id]
	return h, ok
}

// Load samples the balancing inputs the router's least-loaded and steal
// decisions run on. Advisory (lock-free mirrors), like the scheduling pass
// itself.
func (d *Dispatcher) Load() (queued, running, idle, workers int) {
	return d.queuedCount(), d.RunningJobs(), d.idleCount(), d.Workers()
}

// Draining reports whether Shutdown has begun: a draining instance refuses
// stolen work and should stop being offered new placements.
func (d *Dispatcher) Draining() bool { return d.draining.Load() }

// Instance returns the configured instance name (Config.Instance); the
// router uses it as the member's stable routing name.
func (d *Dispatcher) Instance() string { return d.cfg.Instance }

// ---------------------------------------------------------------------------
// Remote peer links (router process ≠ dispatcher process)

// peerSender serializes outbound frames to an attached router. Completion
// callbacks run on the dispatcher's completion goroutine and must not block,
// so they append under a mutex and a writer goroutine drains — the peer-link
// analogue of a worker's sendq, unbounded because dropping a JobDone would
// strand the router-side handle forever (the backlog is bounded by the
// number of live jobs).
type peerSender struct {
	codec *proto.Codec

	mu      sync.Mutex
	pending []*proto.Envelope

	kick chan struct{}
	quit chan struct{}
	once sync.Once
	done chan struct{}
}

func newPeerSender(codec *proto.Codec) *peerSender {
	p := &peerSender{
		codec: codec,
		kick:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *peerSender) enqueue(e *proto.Envelope) {
	p.mu.Lock()
	p.pending = append(p.pending, e)
	p.mu.Unlock()
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

func (p *peerSender) stop() { p.once.Do(func() { close(p.quit) }) }

func (p *peerSender) run() {
	defer close(p.done)
	flush := func() error {
		p.mu.Lock()
		batch := p.pending
		p.pending = nil
		p.mu.Unlock()
		for _, e := range batch {
			if err := p.codec.SendBuffered(e); err != nil {
				return err
			}
		}
		if len(batch) == 0 {
			return nil
		}
		return p.codec.Flush()
	}
	for {
		select {
		case <-p.kick:
			if flush() != nil {
				return
			}
		case <-p.quit:
			flush() // best-effort final drain
			return
		}
	}
}

// registerPeerOutput subscribes an attached router to the output chunks of
// one peer-submitted job. Without this, a job routed to an out-of-process
// member would run fine but its stdout would stay on the executing instance,
// invisible to the router-side client.
func (d *Dispatcher) registerPeerOutput(jobID string, snd *peerSender) {
	d.peerOutMu.Lock()
	if d.peerOut == nil {
		d.peerOut = make(map[string]*peerSender)
	}
	if _, ok := d.peerOut[jobID]; !ok {
		d.peerOutN.Add(1)
	}
	d.peerOut[jobID] = snd
	d.peerOutMu.Unlock()
}

// unregisterPeerOutput drops the subscription at job completion. The sender
// identity check keeps a stale link's teardown (callbacks wired before a
// reattach) from dropping the subscription the new link just registered.
func (d *Dispatcher) unregisterPeerOutput(jobID string, snd *peerSender) {
	d.peerOutMu.Lock()
	if d.peerOut[jobID] == snd {
		delete(d.peerOut, jobID)
		d.peerOutN.Add(-1)
	}
	d.peerOutMu.Unlock()
}

// dropPeerOutputs sweeps every subscription held by a disconnecting link;
// the router's reconcile-on-reattach re-registers the jobs still live here.
func (d *Dispatcher) dropPeerOutputs(snd *peerSender) {
	d.peerOutMu.Lock()
	for id, s := range d.peerOut {
		if s == snd {
			delete(d.peerOut, id)
			d.peerOutN.Add(-1)
		}
	}
	d.peerOutMu.Unlock()
}

// relayPeerOutput forwards one decoded output chunk to the router attached
// to its job, if any. Task IDs are jobID+"/seq" or jobID+"/rankN" (see
// launch and hydra.Decompose). The data slice aliases the worker frame's
// buffer, which the caller releases after this returns, so the relay copy
// is mandatory, not defensive.
func (d *Dispatcher) relayPeerOutput(out *proto.Output) {
	jobID := out.TaskID
	if i := strings.LastIndexByte(jobID, '/'); i >= 0 {
		jobID = jobID[:i]
	}
	d.peerOutMu.Lock()
	snd := d.peerOut[jobID]
	d.peerOutMu.Unlock()
	if snd == nil {
		return
	}
	snd.enqueue(&proto.Envelope{Kind: proto.KindOutput, Output: &proto.Output{
		TaskID: out.TaskID,
		Stream: out.Stream,
		Data:   append([]byte(nil), out.Data...),
	}})
}

// servePeer runs one attached router connection. The first frame (already
// read by serveWorker) carries the router's outstanding-job set; the reply
// reports which of those are live here, wiring completion callbacks for
// each in the same pass — OnDone fires immediately for a handle that
// completed between lookup and wiring, so no completion can fall in a gap.
// Thereafter the link carries PeerSubmit/StealRequest inbound and
// JobDone/LoadReport outbound until either side closes.
func (d *Dispatcher) servePeer(codec *proto.Codec, first *proto.Envelope) {
	attach := first.PeerAttach
	ver := proto.Negotiate(first.Proto)
	if ver >= proto.VersionBinary {
		codec.EnableBinary()
	}
	snd := newPeerSender(codec)
	defer func() {
		d.dropPeerOutputs(snd)
		snd.stop()
		<-snd.done
	}()

	notify := func(h *Handle) {
		d.registerPeerOutput(h.JobID(), snd)
		h.OnDone(func(res JobResult) {
			d.unregisterPeerOutput(res.JobID, snd)
			snd.enqueue(&proto.Envelope{Kind: proto.KindJobDone, JobDone: &proto.JobDone{
				JobID:   res.JobID,
				Failed:  res.Failed,
				Err:     res.Err,
				Retries: res.Retries,
			}})
		})
	}

	info := &proto.PeerInfo{}
	for _, id := range attach.Outstanding {
		if h, ok := d.HandleOf(id); ok {
			info.Live = append(info.Live, id)
			notify(h)
		}
	}
	if err := codec.Send(&proto.Envelope{Kind: proto.KindPeerAttached, Proto: ver, PeerInfo: info}); err != nil {
		return
	}

	// Periodic load reports drive the router's least-loaded placement and
	// steal scheduling without a request round trip per decision.
	loadEvery := attach.LoadEvery
	if loadEvery <= 0 {
		loadEvery = 50 * time.Millisecond
	}
	tickerQuit := make(chan struct{})
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		t := time.NewTicker(loadEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				q, r, i, w := d.Load()
				snd.enqueue(&proto.Envelope{Kind: proto.KindLoadReport, LoadReport: &proto.LoadReport{
					Queued: q, Running: r, Idle: i, Workers: w,
				}})
			case <-tickerQuit:
				return
			}
		}
	}()
	defer close(tickerQuit)
	defer func() { <-tickerDone }()

	for {
		env, err := codec.Recv()
		if err != nil {
			return
		}
		switch env.Kind {
		case proto.KindPeerSubmit:
			if env.PeerSubmit == nil {
				continue
			}
			d.handlePeerSubmit(env.PeerSubmit, snd, notify)
		case proto.KindStealRequest:
			if env.StealRequest == nil {
				continue
			}
			jobs := d.StealQueued(env.StealRequest.Max, env.StealRequest.Dest)
			reply := &proto.StealReply{Jobs: make([]proto.PeerSubmit, len(jobs))}
			for i, sj := range jobs {
				reply.Jobs[i] = peerSubmitOf(sj)
			}
			snd.enqueue(&proto.Envelope{Kind: proto.KindStealReply, StealReply: reply})
		case proto.KindHeartbeat:
			// liveness only
		default:
		}
	}
}

// handlePeerSubmit places one routed job, replying with a Rejected JobDone
// if it cannot enter this instance (the router re-places or fails it —
// either way the job never ran here). A submit for an ID already live here
// is idempotent: it re-wires the completion callback instead of erroring,
// which is what a router retrying over a link that dropped mid-submit needs.
func (d *Dispatcher) handlePeerSubmit(ps *proto.PeerSubmit, snd *peerSender, notify func(*Handle)) {
	if h, ok := d.HandleOf(ps.JobID); ok {
		notify(h)
		return
	}
	var (
		h   *Handle
		err error
	)
	if ps.Stolen {
		h, err = d.SubmitStolen(stolenJobOf(ps))
	} else {
		sj := stolenJobOf(ps)
		h, err = d.Submit(Job{Spec: sj.Spec, Type: sj.Type, Priority: sj.Priority})
	}
	if err != nil {
		snd.enqueue(&proto.Envelope{Kind: proto.KindJobDone, JobDone: &proto.JobDone{
			JobID:    ps.JobID,
			Failed:   true,
			Rejected: true,
			Err:      err.Error(),
		}})
		return
	}
	notify(h)
}

// stolenJobOf rebuilds the dispatch-level job from its wire form.
func stolenJobOf(ps *proto.PeerSubmit) StolenJob {
	return StolenJob{
		Spec: hydra.JobSpec{
			JobID:     ps.JobID,
			NProcs:    ps.NProcs,
			Cmd:       ps.Cmd,
			Args:      ps.Args,
			Env:       ps.Env,
			Dir:       ps.Dir,
			WallLimit: ps.WallLimit,
		},
		Type:     JobType(ps.JobType),
		Priority: ps.Priority,
		Retries:  ps.Retries,
	}
}

// peerSubmitOf flattens a stolen job into its wire form.
func peerSubmitOf(sj StolenJob) proto.PeerSubmit {
	return proto.PeerSubmit{
		JobID:     sj.Spec.JobID,
		JobType:   int(sj.Type),
		Priority:  sj.Priority,
		NProcs:    sj.Spec.NProcs,
		Cmd:       sj.Spec.Cmd,
		Args:      sj.Spec.Args,
		Env:       sj.Spec.Env,
		Dir:       sj.Spec.Dir,
		WallLimit: sj.Spec.WallLimit,
		// Every StolenJob came out of StealQueued, so the destination uses
		// the front-of-queue stolen placement; a router's first placement of
		// a fresh submission sends Stolen false and goes through Submit.
		Stolen:  true,
		Retries: sj.Retries,
	}
}

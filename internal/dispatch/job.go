package dispatch

import (
	"sync"
	"time"

	"jets/internal/hydra"
	"jets/internal/proto"
)

// JobType distinguishes plain sequential tasks (Falkon-style single-process
// mode) from MPI jobs that go through the mpiexec decomposition.
type JobType int

// Job types.
const (
	Sequential JobType = iota
	MPI
)

func (t JobType) String() string {
	if t == MPI {
		return "MPI"
	}
	return "sequential"
}

// Job is one unit of user work submitted to the dispatcher.
type Job struct {
	Spec hydra.JobSpec
	Type JobType
	// Priority orders jobs under the priority queue policy; higher runs
	// first. Ignored by FIFO.
	Priority int

	retries   int
	submitted time.Time
	handle    *Handle
	// seq is the per-submit sequence number; the sharded scheduling pass
	// always launches the lowest-seq queued job (steal.go), which keeps
	// FIFO/FCFS order observable independent of shard placement. Retried
	// jobs keep their original seq.
	seq int64
}

// Procs returns the number of workers the job needs.
func (j *Job) Procs() int {
	if j.Type == Sequential {
		return 1
	}
	return j.Spec.NProcs
}

// JobResult is the final outcome of one job.
type JobResult struct {
	JobID   string
	Failed  bool
	Err     string
	Retries int
	// Start/Stop are offsets from the dispatcher epoch; Start is the moment
	// the job's tasks were handed to workers.
	Start, Stop time.Duration
	// TaskResults holds the per-rank results in completion order.
	TaskResults []proto.Result
	// Workers lists the worker IDs the job ran on.
	Workers []string
}

// Handle tracks an in-flight job.
type Handle struct {
	jobID string
	done  chan struct{}

	mu  sync.Mutex
	res JobResult
	cbs []func(JobResult)
}

func newHandle(jobID string) *Handle {
	return &Handle{jobID: jobID, done: make(chan struct{})}
}

// JobID returns the job's identifier.
func (h *Handle) JobID() string { return h.jobID }

// Done is closed when the job reaches a terminal state.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Wait blocks until the job completes and returns its result.
func (h *Handle) Wait() JobResult {
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res
}

// TryResult returns the result if the job has completed.
func (h *Handle) TryResult() (JobResult, bool) {
	select {
	case <-h.done:
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.res, true
	default:
		return JobResult{}, false
	}
}

// OnDone registers fn to run once when the job reaches a terminal state; if
// it already has, fn runs immediately on the caller's goroutine, otherwise on
// the dispatcher's completion goroutine. This is the shared completion demux
// for batched submitters: one callback per job instead of one goroutine
// parked on Done() per job. fn must not block.
func (h *Handle) OnDone(fn func(JobResult)) {
	h.mu.Lock()
	select {
	case <-h.done:
		res := h.res
		h.mu.Unlock()
		fn(res)
		return
	default:
	}
	h.cbs = append(h.cbs, fn)
	h.mu.Unlock()
}

func (h *Handle) complete(res JobResult) {
	h.mu.Lock()
	h.res = res
	cbs := h.cbs
	h.cbs = nil
	close(h.done)
	h.mu.Unlock()
	for _, fn := range cbs {
		fn(res)
	}
}

package dispatch

import (
	"sync"
	"time"

	"jets/internal/hydra"
	"jets/internal/proto"
)

// JobType distinguishes plain sequential tasks (Falkon-style single-process
// mode) from MPI jobs that go through the mpiexec decomposition.
type JobType int

// Job types.
const (
	Sequential JobType = iota
	MPI
)

func (t JobType) String() string {
	if t == MPI {
		return "MPI"
	}
	return "sequential"
}

// Job is one unit of user work submitted to the dispatcher.
type Job struct {
	Spec hydra.JobSpec
	Type JobType
	// Priority orders jobs under the priority queue policy; higher runs
	// first. Ignored by FIFO.
	Priority int

	retries   int
	submitted time.Time
	handle    *Handle
	// seq is the per-submit sequence number; the sharded scheduling pass
	// always launches the lowest-seq queued job (steal.go), which keeps
	// FIFO/FCFS order observable independent of shard placement. Retried
	// jobs keep their original seq.
	seq int64
}

// Procs returns the number of workers the job needs.
func (j *Job) Procs() int {
	if j.Type == Sequential {
		return 1
	}
	return j.Spec.NProcs
}

// JobResult is the final outcome of one job.
type JobResult struct {
	JobID   string
	Failed  bool
	Err     string
	Retries int
	// Start/Stop are offsets from the dispatcher epoch; Start is the moment
	// the job's tasks were handed to workers.
	Start, Stop time.Duration
	// TaskResults holds the per-rank results in completion order.
	TaskResults []proto.Result
	// Workers lists the worker IDs the job ran on.
	Workers []string
}

// Handle tracks an in-flight job.
type Handle struct {
	jobID string

	mu        sync.Mutex
	done      chan struct{} // lazily allocated: callers on the OnDone demux never pay for it
	completed bool
	res       JobResult
	cbs       []func(JobResult)
}

// closedChan is the shared already-closed channel handed to Done() callers
// who ask after completion but before any waiter forced an allocation.
var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

func newHandle(jobID string) *Handle {
	return &Handle{jobID: jobID}
}

// NewHandle creates a detached handle not owned by any dispatcher. The
// federation router uses these as the stable client-facing handle for a job
// whose execution may migrate between instances: the router re-wires
// instance-level handles underneath and resolves the detached handle exactly
// once via Complete.
func NewHandle(jobID string) *Handle { return newHandle(jobID) }

// Complete resolves a detached handle (see NewHandle). It must be called at
// most once, and never on a handle returned by a dispatcher's Submit — the
// owning dispatcher resolves those itself.
func (h *Handle) Complete(res JobResult) { h.complete(res) }

// JobID returns the job's identifier.
func (h *Handle) JobID() string { return h.jobID }

// Done is closed when the job reaches a terminal state.
func (h *Handle) Done() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done == nil {
		if h.completed {
			h.done = closedChan
		} else {
			h.done = make(chan struct{})
		}
	}
	return h.done
}

// Wait blocks until the job completes and returns its result.
func (h *Handle) Wait() JobResult {
	<-h.Done()
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res
}

// TryResult returns the result if the job has completed.
func (h *Handle) TryResult() (JobResult, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.completed {
		return h.res, true
	}
	return JobResult{}, false
}

// OnDone registers fn to run once when the job reaches a terminal state; if
// it already has, fn runs immediately on the caller's goroutine, otherwise on
// the dispatcher's completion goroutine. This is the shared completion demux
// for batched submitters: one callback per job instead of one goroutine
// parked on Done() per job. fn must not block.
func (h *Handle) OnDone(fn func(JobResult)) {
	h.mu.Lock()
	if h.completed {
		res := h.res
		h.mu.Unlock()
		fn(res)
		return
	}
	h.cbs = append(h.cbs, fn)
	h.mu.Unlock()
}

func (h *Handle) complete(res JobResult) {
	h.mu.Lock()
	h.res = res
	h.completed = true
	cbs := h.cbs
	h.cbs = nil
	if h.done != nil {
		close(h.done)
	}
	h.mu.Unlock()
	for _, fn := range cbs {
		fn(res)
	}
}

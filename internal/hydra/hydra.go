// Package hydra reimplements the role MPICH2's Hydra process manager plays
// in JETS. The paper's key enabling change was a Hydra bootstrap mode,
// launcher=manual, in which mpiexec does not launch proxies itself: it
// reports the proxy commands and keeps providing its ordinary network
// services (PMI, stdout routing), so that an external scheduler — JETS —
// can place the proxies on whatever nodes it has available.
//
// Here, MPIExec is the background mpiexec process: starting one yields a
// set of per-rank proxy task specifications (ProxyTasks) that the JETS
// dispatcher sends to workers. Each worker executes the proxy (RunProxy in
// proxy.go), which dials back to the MPIExec control endpoint, sets up the
// PMI environment, and launches the user process. MPIExec observes job
// completion through PMI finalization.
package hydra

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"jets/internal/obs"
	"jets/internal/pmi"
	"jets/internal/proto"
)

// Package-level instrumentation over every mpiexec instance in the process.
// The counters work detached; RegisterMetrics exports them (and the PMI
// layer's) through a registry.
var (
	startsTotal = obs.NewCounter("jets_mpiexec_starts_total",
		"mpiexec instances started (one per MPI job attempt)")
	abortsTotal = obs.NewCounter("jets_mpiexec_aborts_total",
		"MPI jobs aborted (worker loss, rank failure, or watchdog timeout)")
)

// RegisterMetrics exports this package's instrumentation plus the embedded
// PMI server's histograms.
func RegisterMetrics(reg *obs.Registry) {
	reg.Register(startsTotal, abortsTotal)
	pmi.RegisterMetrics(reg)
}

// JobSpec describes one MPI job: the unit of the paper's input files
// ("MPI: 4 namd2.sh input-1.pdb output-1.log").
type JobSpec struct {
	JobID     string
	NProcs    int
	Cmd       string
	Args      []string
	Env       []string // extra KEY=VALUE pairs for the user process
	Dir       string
	WallLimit time.Duration
}

// Validate reports whether the spec is runnable.
func (s *JobSpec) Validate() error {
	if s.NProcs <= 0 {
		return fmt.Errorf("hydra: job %q has nonpositive process count %d", s.JobID, s.NProcs)
	}
	if s.Cmd == "" {
		return fmt.Errorf("hydra: job %q has empty command", s.JobID)
	}
	return nil
}

var mpiexecSeq atomic.Uint64

// MPIExec is one background mpiexec instance managing a single MPI job.
// JETS runs many of these concurrently; the paper notes that hundreds of
// mpiexec processes place no noticeable load on the submit site.
type MPIExec struct {
	Spec JobSpec

	kvsName string
	addr    string
	srv     *pmi.Server

	mu      sync.Mutex
	aborted bool
	err     error
}

// StartMPIExec launches the mpiexec network services for the job: a PMI
// server bound to a loopback ephemeral port. It corresponds to JETS forking
// `mpiexec -launcher manual` in the background.
func StartMPIExec(spec JobSpec) (*MPIExec, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	kvs := fmt.Sprintf("kvs_%s_%d", sanitizeToken(spec.JobID), mpiexecSeq.Add(1))
	srv, err := pmi.NewServer(kvs, spec.NProcs)
	if err != nil {
		return nil, err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	startsTotal.Inc()
	return &MPIExec{Spec: spec, kvsName: kvs, addr: addr, srv: srv}, nil
}

func sanitizeToken(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "job"
	}
	return string(out)
}

// ControlAddr returns the endpoint proxies dial back to (the merged
// control/PMI channel).
func (m *MPIExec) ControlAddr() string { return m.addr }

// KVSName returns the job's PMI key-value-space name.
func (m *MPIExec) KVSName() string { return m.kvsName }

// ProxyTasks renders the launcher=manual output: one proxy task per rank,
// ready for the dispatcher to hand to workers.
func (m *MPIExec) ProxyTasks() []proto.Task {
	tasks := make([]proto.Task, m.Spec.NProcs)
	for rank := 0; rank < m.Spec.NProcs; rank++ {
		tasks[rank] = proto.Task{
			TaskID:    fmt.Sprintf("%s/rank%d", m.Spec.JobID, rank),
			JobID:     m.Spec.JobID,
			Cmd:       m.Spec.Cmd,
			Args:      append([]string(nil), m.Spec.Args...),
			Env:       append([]string(nil), m.Spec.Env...),
			Dir:       m.Spec.Dir,
			Rank:      rank,
			Size:      m.Spec.NProcs,
			Control:   m.addr,
			KVS:       m.kvsName,
			WallLimit: m.Spec.WallLimit,
		}
	}
	return tasks
}

// Wait blocks until every rank has finalized through PMI or the timeout
// elapses. On timeout the job is aborted so stuck ranks unblock with
// errors (TCP fault recoverability, §6.1.3).
func (m *MPIExec) Wait(timeout time.Duration) error {
	// An explicit timer, stopped on return: time.After would pin its timer
	// until expiry even for jobs that finish in milliseconds, and with one
	// Wait per job that leak scales with the submission rate.
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-m.srv.Done():
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.err
	case <-t.C:
		m.AbortErr(fmt.Errorf("hydra: job %s timed out after %v", m.Spec.JobID, timeout))
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.err
	}
}

// OnWired registers fn to run once every rank has dialed back to the PMI
// endpoint — the launcher=manual analogue of mpiexec seeing all proxies
// connect. If already wired, fn runs immediately.
func (m *MPIExec) OnWired(fn func()) { m.srv.OnWired(fn) }

// Done exposes the PMI completion channel.
func (m *MPIExec) Done() <-chan struct{} { return m.srv.Done() }

// Abort tears down the mpiexec network services; user processes blocked in
// PMI operations fail promptly. It is called when a worker running one of
// the job's proxies dies.
func (m *MPIExec) Abort() { m.AbortErr(fmt.Errorf("hydra: job %s aborted", m.Spec.JobID)) }

// AbortErr aborts with a specific cause.
func (m *MPIExec) AbortErr(cause error) {
	m.mu.Lock()
	if m.aborted {
		m.mu.Unlock()
		return
	}
	m.aborted = true
	m.err = cause
	m.mu.Unlock()
	abortsTotal.Inc()
	m.srv.Close()
}

// Aborted reports whether the job was aborted.
func (m *MPIExec) Aborted() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.aborted
}

// Close releases mpiexec resources after the job completes.
func (m *MPIExec) Close() error { return m.srv.Close() }

package hydra

import (
	"context"
	"fmt"
	"io"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"time"

	"jets/internal/pmi"
	"jets/internal/proto"
)

// This file is the hydra_pmi_proxy equivalent: the program a JETS worker
// executes for one rank of an MPI job. The proxy is "given sufficient
// environment and arguments to connect back to mpiexec" (paper §4.2); it
// prepares the PMI environment and launches the user executable, forwarding
// its standard output back up the chain.

// Runner launches the user process of one proxy. Two implementations are
// provided: ExecRunner forks a real OS process, and FuncRunner dispatches to
// a registered in-process application function (used by tests, examples, and
// benchmarks, where forking thousands of processes would measure the host
// machine rather than the system design).
type Runner interface {
	// Run executes the task's user command with the merged environment and
	// returns its exit code. Output must be written to stdout as it is
	// produced.
	Run(ctx context.Context, task *proto.Task, env []string, stdout io.Writer) (int, error)
}

// AppFunc is an in-process stand-in for a user executable: argv-style
// arguments, environment map, and a stdout stream. The returned int is the
// exit code.
type AppFunc func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int

// FuncRunner runs registered AppFuncs by command name.
type FuncRunner struct {
	mu   sync.RWMutex
	apps map[string]AppFunc
}

// NewFuncRunner creates an empty in-process runner.
func NewFuncRunner() *FuncRunner {
	return &FuncRunner{apps: make(map[string]AppFunc)}
}

// Register installs fn under the given command name, replacing any previous
// registration.
func (r *FuncRunner) Register(name string, fn AppFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.apps[name] = fn
}

// Names returns the registered command names, sorted.
func (r *FuncRunner) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.apps))
	for n := range r.apps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run implements Runner.
func (r *FuncRunner) Run(ctx context.Context, task *proto.Task, env []string, stdout io.Writer) (int, error) {
	r.mu.RLock()
	fn, ok := r.apps[task.Cmd]
	r.mu.RUnlock()
	if !ok {
		return -1, fmt.Errorf("hydra: no registered app %q", task.Cmd)
	}
	envMap := make(map[string]string, len(env))
	for _, kv := range env {
		if i := strings.IndexByte(kv, '='); i >= 0 {
			envMap[kv[:i]] = kv[i+1:]
		}
	}
	return fn(ctx, task.Args, envMap, stdout), nil
}

// ExecRunner forks the user command as a real OS process.
type ExecRunner struct{}

// Run implements Runner via os/exec.
func (ExecRunner) Run(ctx context.Context, task *proto.Task, env []string, stdout io.Writer) (int, error) {
	cmd := exec.CommandContext(ctx, task.Cmd, task.Args...)
	cmd.Env = env
	cmd.Dir = task.Dir
	cmd.Stdout = stdout
	cmd.Stderr = stdout
	err := cmd.Run()
	if err == nil {
		return 0, nil
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), nil
	}
	return -1, err
}

// RunProxy executes one rank's proxy: build the PMI bootstrap environment,
// run the user process, and return the task result. It corresponds to the
// Hydra proxy's lifecycle in Fig. 4 steps 4-6.
func RunProxy(ctx context.Context, task *proto.Task, runner Runner, stdout io.Writer) proto.Result {
	start := time.Now()
	res := proto.Result{TaskID: task.TaskID, JobID: task.JobID}

	env := append([]string(nil), task.Env...)
	if task.Control != "" {
		env = append(env, pmi.Env(task.Control, task.Rank, task.Size, task.KVS)...)
	}

	if task.WallLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, task.WallLimit)
		defer cancel()
	}

	code, err := runner.Run(ctx, task, env, stdout)
	res.ExitCode = code
	res.Elapsed = time.Since(start)
	if err != nil {
		res.Err = err.Error()
		if res.ExitCode == 0 {
			res.ExitCode = -1
		}
	} else if ctxErr := ctx.Err(); ctxErr != nil && code != 0 {
		res.Err = ctxErr.Error()
	}
	return res
}

package hydra

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"jets/internal/mpi"
	"jets/internal/proto"
)

func TestJobSpecValidate(t *testing.T) {
	cases := []struct {
		spec JobSpec
		ok   bool
	}{
		{JobSpec{JobID: "j", NProcs: 4, Cmd: "app"}, true},
		{JobSpec{JobID: "j", NProcs: 0, Cmd: "app"}, false},
		{JobSpec{JobID: "j", NProcs: -1, Cmd: "app"}, false},
		{JobSpec{JobID: "j", NProcs: 2, Cmd: ""}, false},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%+v: err=%v", tc.spec, err)
		}
	}
}

func TestSanitizeToken(t *testing.T) {
	if got := sanitizeToken("job 1/x"); got != "job_1_x" {
		t.Errorf("got %q", got)
	}
	if got := sanitizeToken(""); got != "job" {
		t.Errorf("empty: got %q", got)
	}
}

func TestProxyTasksShape(t *testing.T) {
	m, err := StartMPIExec(JobSpec{JobID: "j1", NProcs: 4, Cmd: "app", Args: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	tasks := m.ProxyTasks()
	if len(tasks) != 4 {
		t.Fatalf("got %d tasks", len(tasks))
	}
	for rank, task := range tasks {
		if task.Rank != rank || task.Size != 4 {
			t.Errorf("task %d: rank=%d size=%d", rank, task.Rank, task.Size)
		}
		if task.Control != m.ControlAddr() || task.KVS != m.KVSName() {
			t.Errorf("task %d control/kvs mismatch", rank)
		}
		if task.JobID != "j1" || task.Cmd != "app" || len(task.Args) != 2 {
			t.Errorf("task %d spec fields wrong: %+v", rank, task)
		}
	}
	// Args slices must be independent copies.
	tasks[0].Args[0] = "mutated"
	if m.Spec.Args[0] != "a" {
		t.Error("ProxyTasks aliased spec args")
	}
}

func TestKVSNamesUnique(t *testing.T) {
	a, err := StartMPIExec(JobSpec{JobID: "same", NProcs: 1, Cmd: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := StartMPIExec(JobSpec{JobID: "same", NProcs: 1, Cmd: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.KVSName() == b.KVSName() {
		t.Fatalf("duplicate kvs name %q", a.KVSName())
	}
}

// TestFullMPIJobThroughProxies is the core integration test of the JETS
// launch mechanism: start mpiexec, run each proxy concurrently (as workers
// would), have the user app wire up with internal/mpi and do real
// communication, and observe completion via PMI finalization.
func TestFullMPIJobThroughProxies(t *testing.T) {
	const n = 6
	m, err := StartMPIExec(JobSpec{JobID: "mpijob", NProcs: n, Cmd: "barrier-app"})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	runner := NewFuncRunner()
	runner.Register("barrier-app", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		comm, err := mpi.InitEnvFrom(env)
		if err != nil {
			fmt.Fprintf(stdout, "init error: %v\n", err)
			return 1
		}
		defer comm.Close()
		if err := comm.Barrier(); err != nil {
			return 1
		}
		out, err := comm.AllreduceInt64(mpi.OpSum, []int64{1})
		if err != nil || out[0] != n {
			fmt.Fprintf(stdout, "allreduce got %v err %v\n", out, err)
			return 1
		}
		fmt.Fprintf(stdout, "rank %s ok\n", env["PMI_RANK"])
		return 0
	})

	var wg sync.WaitGroup
	results := make([]proto.Result, n)
	outputs := make([]bytes.Buffer, n)
	for i, task := range m.ProxyTasks() {
		wg.Add(1)
		go func(i int, task proto.Task) {
			defer wg.Done()
			results[i] = RunProxy(context.Background(), &task, runner, &outputs[i])
		}(i, task)
	}
	wg.Wait()
	if err := m.Wait(5 * time.Second); err != nil {
		t.Fatalf("mpiexec wait: %v", err)
	}
	for i, r := range results {
		if r.ExitCode != 0 {
			t.Errorf("rank %d exit=%d err=%q out=%q", i, r.ExitCode, r.Err, outputs[i].String())
		}
		if !strings.Contains(outputs[i].String(), fmt.Sprintf("rank %d ok", i)) {
			t.Errorf("rank %d output %q", i, outputs[i].String())
		}
		if r.Elapsed <= 0 {
			t.Errorf("rank %d elapsed %v", i, r.Elapsed)
		}
	}
}

func TestAbortUnblocksRanks(t *testing.T) {
	// Start a 2-proc job but run only rank 0; it blocks in the PMI barrier
	// during wire-up. Abort must unblock it with an error (the paper's
	// fault-recoverability property of the TCP stack).
	m, err := StartMPIExec(JobSpec{JobID: "stuck", NProcs: 2, Cmd: "app"})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	runner := NewFuncRunner()
	runner.Register("app", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		comm, err := mpi.InitEnvFrom(env)
		if err != nil {
			return 3 // expected path: wire-up fails after abort
		}
		comm.Close()
		return 0
	})
	task := m.ProxyTasks()[0]
	done := make(chan proto.Result, 1)
	go func() {
		done <- RunProxy(context.Background(), &task, runner, io.Discard)
	}()
	time.Sleep(100 * time.Millisecond)
	m.Abort()
	select {
	case r := <-done:
		if r.ExitCode == 0 {
			t.Fatalf("aborted rank reported success: %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rank did not unblock after abort")
	}
	if !m.Aborted() {
		t.Error("Aborted() false after Abort")
	}
}

func TestWaitTimeoutAborts(t *testing.T) {
	m, err := StartMPIExec(JobSpec{JobID: "never", NProcs: 2, Cmd: "app"})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Wait(50 * time.Millisecond); err == nil {
		t.Fatal("want timeout error")
	}
	if !m.Aborted() {
		t.Error("timeout should abort the job")
	}
}

func TestFuncRunnerUnknownApp(t *testing.T) {
	runner := NewFuncRunner()
	task := proto.Task{TaskID: "t", Cmd: "missing"}
	res := RunProxy(context.Background(), &task, runner, io.Discard)
	if res.ExitCode == 0 || res.Err == "" {
		t.Fatalf("unknown app should fail: %+v", res)
	}
}

func TestFuncRunnerNames(t *testing.T) {
	r := NewFuncRunner()
	r.Register("b", nil)
	r.Register("a", nil)
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names=%v", names)
	}
}

func TestProxyWallLimit(t *testing.T) {
	runner := NewFuncRunner()
	runner.Register("sleepy", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		select {
		case <-ctx.Done():
			return 9
		case <-time.After(10 * time.Second):
			return 0
		}
	})
	task := proto.Task{TaskID: "t", Cmd: "sleepy", WallLimit: 50 * time.Millisecond}
	start := time.Now()
	res := RunProxy(context.Background(), &task, runner, io.Discard)
	if time.Since(start) > 5*time.Second {
		t.Fatal("wall limit not enforced")
	}
	if res.ExitCode != 9 {
		t.Fatalf("exit=%d", res.ExitCode)
	}
	if res.Err == "" {
		t.Fatal("wall-limit violation should carry an error")
	}
}

func TestSequentialTaskNoPMI(t *testing.T) {
	// A plain sequential task (no Control endpoint) must run without any
	// PMI environment, as in Falkon-style single-process mode.
	runner := NewFuncRunner()
	runner.Register("seq", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		if _, ok := env["PMI_PORT"]; ok {
			return 1
		}
		fmt.Fprintln(stdout, "seq done")
		return 0
	})
	task := proto.Task{TaskID: "t", Cmd: "seq"}
	var out bytes.Buffer
	res := RunProxy(context.Background(), &task, runner, &out)
	if res.ExitCode != 0 {
		t.Fatalf("exit=%d err=%s", res.ExitCode, res.Err)
	}
	if !strings.Contains(out.String(), "seq done") {
		t.Fatalf("out=%q", out.String())
	}
}

func TestExecRunner(t *testing.T) {
	var out bytes.Buffer
	task := proto.Task{TaskID: "t", Cmd: "/bin/sh", Args: []string{"-c", "echo real-process"}}
	res := RunProxy(context.Background(), &task, ExecRunner{}, &out)
	if res.ExitCode != 0 {
		t.Skipf("no /bin/sh available: %+v", res)
	}
	if !strings.Contains(out.String(), "real-process") {
		t.Fatalf("out=%q", out.String())
	}
}

func TestExecRunnerExitCode(t *testing.T) {
	task := proto.Task{TaskID: "t", Cmd: "/bin/sh", Args: []string{"-c", "exit 7"}}
	res := RunProxy(context.Background(), &task, ExecRunner{}, io.Discard)
	if res.ExitCode != 7 {
		t.Skipf("expected exit 7, got %+v (no shell?)", res)
	}
}

//go:build !linux

package journal

import "os"

// fsyncFile commits the file's data; without a portable fdatasync this is
// a full fsync.
func fsyncFile(f *os.File) error { return f.Sync() }

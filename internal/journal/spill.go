package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// SpillStore holds the full specifications of cold-queued jobs on disk so
// the in-memory queue tail can shrink to bare job IDs (the dispatcher's
// hot-window spill, see internal/dispatch). It is an indexed sibling of the
// WAL: records use the same frame format (u32 length | u32 CRC | body) and
// the Submitted record encoding, written append-only into numbered segment
// files, with an in-memory id → (segment, offset, length) index for random
// reads. Segments are reference-counted by their live records and deleted as
// soon as the last one is removed, so the store's footprint tracks the cold
// backlog, not everything ever spilled.
//
// Writes go through a buffered writer under the store's mutex — a Put is a
// frame encode plus a memcpy, cheap enough to call under a scheduling shard
// lock. Reads (GetBatch) snapshot the index under the mutex, then pread the
// frames outside it, sorted by (segment, offset) so a refill batch costs one
// sequential sweep per touched segment. Durability is explicit: Sync flushes
// and fsyncs the active segment (rotation fsyncs a segment before it is
// retired), which the dispatcher invokes before a journal checkpoint makes
// SpillRef records — whose only spec copy lives here — durable truth.
//
// Reopening a directory rescans the surviving segments to rebuild the index,
// so spilled jobs recover across restarts exactly like queued ones.
type SpillStore struct {
	dir      string
	segBytes int64

	mu       sync.Mutex
	closed   bool
	seg      int           // active segment number
	f        *os.File      // active segment, append handle
	w        *bufio.Writer // buffers Puts; flushed before reads and Sync
	buffered bool          // w holds unflushed bytes
	size     int64         // bytes written (incl. buffered) to the active segment
	enc      []byte        // reusable Put frame-encode scratch
	idx      map[string]spillRef
	segRefs  map[int]int // live records per segment
	bytes    int64       // sum of live frame lengths

	liveN atomic.Int64 // len(idx) mirror, for lock-free emptiness checks
}

// spillRef locates one live record.
type spillRef struct {
	seg int
	off int64
	n   int32 // full frame length (header + body)
}

const spillMagic = "JETSSPL1"

func spillSegmentName(n int) string { return fmt.Sprintf("spill-%08d.seg", n) }

// OpenSpill opens (or creates) a spill directory, rebuilding the index from
// any surviving segments. segBytes rotates the active segment past that
// size; <= 0 means 64 MiB.
func OpenSpill(dir string, segBytes int64) (*SpillStore, error) {
	if dir == "" {
		return nil, errors.New("journal: empty spill directory")
	}
	if segBytes <= 0 {
		segBytes = 64 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var nums []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "spill-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "spill-"), ".seg"))
		if err != nil {
			continue
		}
		nums = append(nums, n)
	}
	sort.Ints(nums)
	s := &SpillStore{
		dir:      dir,
		segBytes: segBytes,
		idx:      make(map[string]spillRef),
		segRefs:  make(map[int]int),
	}
	last := 0
	for _, n := range nums {
		s.scanSegment(n)
		if n > last {
			last = n
		}
	}
	// Drop segments the scan left empty (every record superseded or torn).
	for _, n := range nums {
		if s.segRefs[n] == 0 {
			delete(s.segRefs, n)
			os.Remove(filepath.Join(dir, spillSegmentName(n)))
		}
	}
	s.seg = last + 1
	if err := s.openSegment(); err != nil {
		return nil, err
	}
	s.liveN.Store(int64(len(s.idx)))
	return s, nil
}

// scanSegment rebuilds index entries from one surviving segment. A torn or
// corrupt frame ends the segment's scan quietly (the unsynced tail of the
// crash being recovered from).
func (s *SpillStore) scanSegment(n int) {
	data, err := os.ReadFile(filepath.Join(s.dir, spillSegmentName(n)))
	if err != nil {
		return
	}
	if len(data) < len(spillMagic) || string(data[:len(spillMagic)]) != spillMagic {
		return
	}
	off := int64(len(spillMagic))
	data = data[len(spillMagic):]
	for len(data) >= frameHeaderLen {
		bodyLen := binary.LittleEndian.Uint32(data[0:4])
		crc := binary.LittleEndian.Uint32(data[4:8])
		if bodyLen > maxBodyLen || int(bodyLen) > len(data)-frameHeaderLen {
			return
		}
		body := data[frameHeaderLen : frameHeaderLen+int(bodyLen)]
		if crc32.ChecksumIEEE(body) != crc {
			return
		}
		rec, derr := decodeRecord(body)
		if derr != nil {
			return
		}
		frame := int64(frameHeaderLen) + int64(bodyLen)
		s.setRefLocked(rec.JobID, spillRef{seg: n, off: off, n: int32(frame)})
		off += frame
		data = data[frame:]
	}
}

// openSegment starts the next active segment. Caller holds s.mu (or is the
// single-threaded Open path).
func (s *SpillStore) openSegment() error {
	f, err := os.OpenFile(filepath.Join(s.dir, spillSegmentName(s.seg)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(spillMagic); err != nil {
		f.Close()
		return err
	}
	s.f = f
	if s.w == nil {
		s.w = bufio.NewWriterSize(f, 1<<16)
	} else {
		s.w.Reset(f)
	}
	s.buffered = false
	s.size = int64(len(spillMagic))
	return nil
}

// setRefLocked installs (or replaces) the index entry for id. Caller holds
// s.mu (or is the single-threaded Open path).
func (s *SpillStore) setRefLocked(id string, ref spillRef) {
	if old, ok := s.idx[id]; ok {
		s.bytes -= int64(old.n)
		s.dropSegRefLocked(old.seg)
	}
	s.idx[id] = ref
	s.bytes += int64(ref.n)
	s.segRefs[ref.seg]++
}

// dropSegRefLocked releases one record's hold on a segment, deleting the
// file once nothing live remains in it (never the active segment — rotation
// retires that naturally).
func (s *SpillStore) dropSegRefLocked(seg int) {
	s.segRefs[seg]--
	if s.segRefs[seg] <= 0 {
		delete(s.segRefs, seg)
		if seg != s.seg {
			os.Remove(filepath.Join(s.dir, spillSegmentName(seg)))
		}
	}
}

// Put persists one record (keyed by its JobID, replacing any previous entry)
// and returns the frame size written. It buffers — durability comes from
// Sync — and is cheap enough to call under a scheduling lock.
func (s *SpillStore) Put(r Record) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.enc = s.enc[:0]
	s.enc = append(s.enc, make([]byte, frameHeaderLen)...)
	s.enc = encodeRecord(s.enc, r)
	body := s.enc[frameHeaderLen:]
	binary.LittleEndian.PutUint32(s.enc[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(s.enc[4:8], crc32.ChecksumIEEE(body))
	if s.size+int64(len(s.enc)) > s.segBytes && s.size > int64(len(spillMagic)) {
		if err := s.rotateLocked(); err != nil {
			return 0, err
		}
	}
	off := s.size
	if _, err := s.w.Write(s.enc); err != nil {
		return 0, err
	}
	s.buffered = true
	s.size += int64(len(s.enc))
	s.setRefLocked(r.JobID, spillRef{seg: s.seg, off: off, n: int32(len(s.enc))})
	s.liveN.Store(int64(len(s.idx)))
	return len(s.enc), nil
}

// rotateLocked retires the active segment (flushed and fsynced, so only the
// active segment is ever non-durable) and opens the next. Caller holds s.mu.
func (s *SpillStore) rotateLocked() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	s.buffered = false
	if err := fsyncFile(s.f); err != nil {
		return err
	}
	old, oldSeg := s.f, s.seg
	s.seg++
	if err := s.openSegment(); err != nil {
		s.seg--
		s.f = old
		s.w.Reset(old) // keep appending to the old segment; Reset discards nothing (flushed above)
		return err
	}
	old.Close()
	if s.segRefs[oldSeg] == 0 {
		os.Remove(filepath.Join(s.dir, spillSegmentName(oldSeg)))
	}
	return nil
}

// Get reads one record back. ok is false when the id has no live entry.
func (s *SpillStore) Get(id string) (Record, bool, error) {
	recs, err := s.GetBatch([]string{id})
	r, ok := recs[id]
	return r, ok, err
}

// GetBatch reads the live records for ids, sorted by (segment, offset) so a
// cold-tail refill costs one sequential sweep per touched segment. IDs with
// no live entry are simply absent from the result; the first read error is
// returned alongside whatever was read successfully.
func (s *SpillStore) GetBatch(ids []string) (map[string]Record, error) {
	type refID struct {
		ref spillRef
		id  string
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	refs := make([]refID, 0, len(ids))
	needActive := false
	for _, id := range ids {
		if ref, ok := s.idx[id]; ok {
			refs = append(refs, refID{ref, id})
			if ref.seg == s.seg {
				needActive = true
			}
		}
	}
	if needActive && s.buffered {
		if err := s.w.Flush(); err != nil {
			s.mu.Unlock()
			return nil, err
		}
		s.buffered = false
	}
	s.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].ref.seg != refs[j].ref.seg {
			return refs[i].ref.seg < refs[j].ref.seg
		}
		return refs[i].ref.off < refs[j].ref.off
	})
	// The reads run outside the mutex: every target record is live (the
	// caller holds its job), so its segment cannot be reclaimed underneath
	// us, and a concurrent rotation never mutates already-written bytes.
	out := make(map[string]Record, len(refs))
	var firstErr error
	var f *os.File
	cur := -1
	var buf []byte
	for _, r := range refs {
		if r.ref.seg != cur {
			if f != nil {
				f.Close()
			}
			var err error
			f, err = os.Open(filepath.Join(s.dir, spillSegmentName(r.ref.seg)))
			cur = r.ref.seg
			if err != nil {
				f = nil
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
		}
		if f == nil {
			continue
		}
		if int(r.ref.n) > cap(buf) {
			buf = make([]byte, r.ref.n)
		}
		b := buf[:r.ref.n]
		if _, err := f.ReadAt(b, r.ref.off); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		bodyLen := binary.LittleEndian.Uint32(b[0:4])
		crc := binary.LittleEndian.Uint32(b[4:8])
		if int(bodyLen) != len(b)-frameHeaderLen || crc32.ChecksumIEEE(b[frameHeaderLen:]) != crc {
			if firstErr == nil {
				firstErr = fmt.Errorf("journal: corrupt spill frame for %q", r.id)
			}
			continue
		}
		rec, err := decodeRecord(b[frameHeaderLen:])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out[r.id] = rec
	}
	if f != nil {
		f.Close()
	}
	return out, firstErr
}

// Remove drops id's entry, reclaiming its segment once empty. Call it when
// the job leaves the spill's custody for good (terminal state, migration to
// a peer, or recovery re-placement) — not on rehydration into the hot
// window: a checkpointed journal may hold only a SpillRef for the job, so
// the spilled spec stays its durable copy until a terminal record exists.
func (s *SpillStore) Remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.idx[id]
	if !ok {
		return
	}
	delete(s.idx, id)
	s.bytes -= int64(ref.n)
	s.dropSegRefLocked(ref.seg)
	s.liveN.Store(int64(len(s.idx)))
}

// RetainOnly drops every entry whose id is not in keep — the post-recovery
// sweep that discards records belonging to jobs the journal shows terminal.
func (s *SpillStore) RetainOnly(keep map[string]struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, ref := range s.idx {
		if _, ok := keep[id]; ok {
			continue
		}
		delete(s.idx, id)
		s.bytes -= int64(ref.n)
		s.dropSegRefLocked(ref.seg)
	}
	s.liveN.Store(int64(len(s.idx)))
}

// Sync makes every Put so far durable (rotation already fsynced the retired
// segments; this flushes and fsyncs the active one).
func (s *SpillStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.buffered {
		if err := s.w.Flush(); err != nil {
			return err
		}
		s.buffered = false
	}
	return fsyncFile(s.f)
}

// Len reports live records.
func (s *SpillStore) Len() int { return int(s.liveN.Load()) }

// Bytes reports the byte footprint of the live records.
func (s *SpillStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Segments reports how many segment files hold live records (plus the
// active segment).
func (s *SpillStore) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.segRefs)
	if s.segRefs[s.seg] == 0 {
		n++ // active segment not yet counted
	}
	return n
}

// Close flushes and releases the active segment. The files are left on disk:
// a durable spill directory is recovered by the next OpenSpill, and an
// ephemeral one is the caller's to delete.
func (s *SpillStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.w.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// WAL is the durable Journal: an append-only log split into numbered
// segment files. Each record is framed as
//
//	u32 body length | u32 CRC-32 (IEEE) of the body | body
//
// and each segment starts with an 8-byte magic. Appends go into an
// in-memory buffer under a short mutex; a flusher goroutine group-commits
// the buffer — one write plus one fsync — on a fixed cadence (default 2 ms,
// deliberately matching the engine's batch-flush cadence so the durable
// submit path amortizes the same way the wire path does). A crash loses at
// most one flush interval of appends; everything behind the last fsync
// replays exactly.
//
// Replay scans the segments that existed at Open in name order. A torn or
// corrupt frame ends that segment's scan (the unsynced tail of a crash, or a
// segment abandoned by the degraded-commit retry below); later segments
// still replay. Records appended after Open land in a fresh segment, so
// Compact can drop the replayed history once the caller has re-journaled the
// live state.
//
// A failed commit (write or fsync error) does not permanently disable the
// log: the flush buffer is kept, the error is held in w.err, and the flusher
// retries on a capped exponential backoff — rotating to a fresh segment
// first, since the failed segment may end in a torn frame. A successful
// retry clears the error. While degraded, Append keeps buffering (bounded by
// maxPendingBytes) so a transient blip loses nothing; only records that
// arrive with the buffer full are dropped, and those return the error so the
// caller can count them.
type WAL struct {
	opts Options

	mu      sync.Mutex // guards pending, spare, size, f, seg, first, closed, err, retry*
	pending []byte
	spare   []byte // recycled flush buffer, reused by the next Append
	f       *os.File
	seg     int
	first   int   // oldest segment still on disk (Segments gauge, Checkpoint sweep)
	size    int64 // bytes written + pending in the active segment
	closed  bool
	err     error // last commit failure; cleared when a retry commits

	retryAt      time.Time     // earliest next commit attempt while degraded
	retryBackoff time.Duration // doubles per failed attempt, capped
	failCommits  int           // test hook: fail the next n commit attempts

	flushMu sync.Mutex // serializes flush bodies (writer goroutine + Sync + Checkpoint)

	replay    []string // segments present at Open, consumed by Replay/Compact
	openFresh int      // first post-Open segment number (what Compact keeps)

	quit chan struct{}
	done chan struct{}
}

// Options parameterizes a WAL.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this size;
	// default 64 MiB. Rotation happens on frame boundaries.
	SegmentBytes int64
	// FsyncInterval is the group-commit cadence; default 2ms. Appends are
	// durable after the flush tick that follows them (or an explicit Sync).
	FsyncInterval time.Duration
}

const (
	walMagic       = "JETSWAL1"
	frameHeaderLen = 8
	// maxBodyLen rejects absurd frame lengths when a corrupt header happens
	// to pass the length read (the CRC catches corrupt bodies; this catches
	// a corrupt length that would otherwise allocate gigabytes).
	maxBodyLen = 16 << 20
	// maxPendingBytes bounds the pending buffer while commits are failing:
	// past it, new appends are dropped (and reported) instead of growing the
	// heap without bound waiting for the disk to come back.
	maxPendingBytes = 16 << 20
	// retryBackoffMin/Max bracket the degraded-commit retry cadence.
	retryBackoffMin = 10 * time.Millisecond
	retryBackoffMax = 5 * time.Second
)

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("journal: WAL is closed")

func segmentName(n int) string { return fmt.Sprintf("wal-%08d.log", n) }

// OpenWAL opens (or creates) the journal directory, records the existing
// segments for Replay, starts a fresh active segment, and begins the
// flusher.
func OpenWAL(opts Options) (*WAL, error) {
	if opts.Dir == "" {
		return nil, errors.New("journal: empty WAL directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 2 * time.Millisecond
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	last, first := 0, 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"))
		if err != nil {
			continue
		}
		segs = append(segs, filepath.Join(opts.Dir, name))
		if n > last {
			last = n
		}
		if first == 0 || n < first {
			first = n
		}
	}
	sort.Strings(segs)
	if first == 0 {
		first = last + 1
	}
	w := &WAL{
		opts:      opts,
		seg:       last + 1,
		first:     first,
		replay:    segs,
		openFresh: last + 1,
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if err := w.openSegment(); err != nil {
		return nil, err
	}
	go w.flusher()
	return w, nil
}

// openSegment creates the next active segment and writes its magic. Caller
// is single-threaded (Open) or holds both flushMu and mu (rotation).
func (w *WAL) openSegment() error {
	f, err := os.OpenFile(filepath.Join(w.opts.Dir, segmentName(w.seg)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return err
	}
	if w.f != nil {
		w.f.Close()
	}
	w.f = f
	w.size = int64(len(walMagic))
	return nil
}

// Append implements Journal: encode and buffer the record. The record is
// encoded straight into the pending buffer (header patched in afterwards),
// so the submit hot path pays no per-record allocation. The disk is never
// touched here; durability comes from the flusher cadence or Sync.
func (w *WAL) Append(r Record) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.err != nil && len(w.pending) >= maxPendingBytes {
		// Degraded and the retry buffer is full: drop the record and report
		// it. Below the cap, degraded appends keep buffering and return nil —
		// a commit retry will land them, so they are not (yet) lost.
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.pending == nil && w.spare != nil {
		w.pending, w.spare = w.spare, nil
	}
	start := len(w.pending)
	w.pending = append(w.pending, make([]byte, frameHeaderLen)...)
	w.pending = encodeRecord(w.pending, r)
	body := w.pending[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(w.pending[start:start+4], uint32(len(body)))
	binary.LittleEndian.PutUint32(w.pending[start+4:start+8], crc32.ChecksumIEEE(body))
	w.size += int64(len(w.pending) - start)
	w.mu.Unlock()
	appendsTotal.Inc()
	return nil
}

// Sync implements Journal: force a group commit now. An explicit Sync
// ignores the degraded-retry backoff and attempts the commit immediately.
func (w *WAL) Sync() error { return w.flush(true) }

// bumpRetryLocked schedules the next degraded-commit attempt, doubling the
// backoff per failure up to retryBackoffMax. Caller holds w.mu.
func (w *WAL) bumpRetryLocked() {
	if w.retryBackoff < retryBackoffMin {
		w.retryBackoff = retryBackoffMin
	} else if w.retryBackoff < retryBackoffMax {
		w.retryBackoff *= 2
		if w.retryBackoff > retryBackoffMax {
			w.retryBackoff = retryBackoffMax
		}
	}
	w.retryAt = time.Now().Add(w.retryBackoff)
}

// flush writes and fsyncs the pending buffer, then rotates the segment if
// it outgrew SegmentBytes. Serialized by flushMu so the ticker goroutine
// and explicit Syncs never interleave writes.
//
// On a commit failure the buffer is restored to the front of pending and the
// error parked in w.err; the next attempt (flusher tick past retryAt, or any
// forced flush) first rotates to a fresh segment — the failed one may hold a
// torn or partially duplicated frame, which Replay's per-segment skip
// tolerates — and a successful commit clears the error.
func (w *WAL) flush(force bool) error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	if w.err != nil {
		if !force && time.Now().Before(w.retryAt) {
			err := w.err
			w.mu.Unlock()
			return err
		}
		// Retry: abandon the possibly-torn active segment.
		w.seg++
		if oerr := w.openSegment(); oerr != nil {
			w.seg--
			w.bumpRetryLocked()
			err := w.err
			w.mu.Unlock()
			return err
		}
		w.size = int64(len(walMagic)) + int64(len(w.pending))
	}
	buf := w.pending
	w.pending = nil
	f := w.f
	rotate := w.size > w.opts.SegmentBytes
	degraded := w.err != nil
	inject := w.failCommits > 0
	if inject {
		w.failCommits--
	}
	w.mu.Unlock()
	if len(buf) == 0 && !rotate && !degraded {
		return nil
	}
	if len(buf) > 0 || inject {
		start := time.Now()
		var err error
		if inject {
			err = errInjectedCommit
		} else if _, err = f.Write(buf); err == nil {
			err = fsyncFile(f)
		}
		fsyncSeconds.Observe(time.Since(start))
		if err != nil {
			w.mu.Lock()
			// Keep the records: restore the buffer ahead of anything appended
			// since it was taken out, preserving order for the retry.
			if len(w.pending) == 0 {
				w.pending = buf
			} else {
				w.pending = append(buf, w.pending...)
			}
			w.err = err
			w.bumpRetryLocked()
			w.mu.Unlock()
			return err
		}
		if cap(buf) <= 1<<20 { // recycle the buffer unless a burst bloated it
			w.mu.Lock()
			w.spare = buf[:0]
			w.mu.Unlock()
		}
	}
	w.mu.Lock()
	if w.err != nil {
		// The commit that just succeeded (or the empty buffer on a fresh
		// segment) ends the degraded episode.
		w.err = nil
		w.retryBackoff = 0
	}
	if rotate && !w.closed {
		w.seg++
		if err := w.openSegment(); err != nil {
			w.err = err
			w.bumpRetryLocked()
		}
	}
	err := w.err
	w.mu.Unlock()
	return err
}

// errInjectedCommit is the test hook's synthetic commit failure.
var errInjectedCommit = errors.New("journal: injected commit failure")

// Degraded reports whether the last commit attempt failed — the WAL is
// buffering appends and retrying, but nothing new is reaching the disk.
func (w *WAL) Degraded() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err != nil
}

func (w *WAL) flusher() {
	defer close(w.done)
	t := time.NewTicker(w.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.flush(false)
		case <-w.quit:
			return
		}
	}
}

// Replay implements Journal: stream the records of the segments that
// existed at Open, oldest first. A torn or corrupt frame ends that
// *segment's* scan quietly and replay continues with the next segment: a
// torn tail is either the unsynced end of the crash the WAL exists to
// survive (final segment — nothing follows anyway) or a segment the
// degraded-commit retry abandoned mid-write, whose records were re-committed
// into the segment that follows.
func (w *WAL) Replay(fn func(Record) error) error {
	for _, path := range w.replay {
		if _, err := replaySegment(path, fn); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment decodes one segment. It reports stop=true on a torn or
// corrupt frame (the rest of this segment is untrusted) and err only when fn
// itself fails; unreadable files count as torn.
func replaySegment(path string, fn func(Record) error) (stop bool, err error) {
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		return true, nil
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return true, nil
	}
	data = data[len(walMagic):]
	for len(data) > 0 {
		if len(data) < frameHeaderLen {
			return true, nil // torn header
		}
		bodyLen := binary.LittleEndian.Uint32(data[0:4])
		crc := binary.LittleEndian.Uint32(data[4:8])
		if bodyLen > maxBodyLen || int(bodyLen) > len(data)-frameHeaderLen {
			return true, nil // torn or corrupt body
		}
		body := data[frameHeaderLen : frameHeaderLen+int(bodyLen)]
		if crc32.ChecksumIEEE(body) != crc {
			return true, nil
		}
		rec, derr := decodeRecord(body)
		if derr != nil {
			return true, nil
		}
		if err := fn(rec); err != nil {
			return false, err
		}
		data = data[frameHeaderLen+int(bodyLen):]
	}
	return false, nil
}

// Compact implements Journal: delete the segments Replay consumed. Call it
// only after re-journaling the live state and Syncing — the fresh segments
// started at Open are never touched, so a crash between Sync and Compact
// merely replays some records twice (replay is idempotent per job ID).
func (w *WAL) Compact() error {
	var first error
	for _, path := range w.replay {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	w.replay = nil
	w.mu.Lock()
	if w.openFresh > w.first {
		w.first = w.openFresh
	}
	w.mu.Unlock()
	return first
}

// Segments implements Checkpointer: the number of segments currently on
// disk, the threshold signal for an online checkpoint.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seg - w.first + 1
}

// Checkpoint implements Checkpointer: rotate to a fresh segment, stream the
// caller's snapshot of the live state into it, fsync, and delete every older
// segment. flushMu is held throughout, so no group commit can land records
// in a segment about to be dropped — appends made while the snapshot is
// being taken stay in the pending buffer and flush into the checkpoint
// segment *after* the snapshot records, replaying on top of them.
//
// The crash-safety argument is Compact's: the snapshot is fsynced before
// anything is deleted, and a crash between the fsync and the deletions
// merely replays some records twice (replay is idempotent per job ID).
func (w *WAL) Checkpoint(write func(emit func(Record) error) error) error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.err != nil {
		// Degraded: dropping history while new commits are failing could
		// delete the only durable copy of the live state. Let the flusher's
		// retry clear the error first.
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.seg++
	if err := w.openSegment(); err != nil {
		w.seg--
		w.err = err
		w.bumpRetryLocked()
		w.mu.Unlock()
		return err
	}
	ckSeg := w.seg
	f := w.f
	w.mu.Unlock()

	var buf []byte
	written := 0
	var ioErr error
	flushBuf := func() error {
		if len(buf) == 0 {
			return nil
		}
		if _, err := f.Write(buf); err != nil {
			ioErr = err
			return err
		}
		written += len(buf)
		buf = buf[:0]
		return nil
	}
	emit := func(r Record) error {
		start := len(buf)
		buf = append(buf, make([]byte, frameHeaderLen)...)
		buf = encodeRecord(buf, r)
		body := buf[start+frameHeaderLen:]
		binary.LittleEndian.PutUint32(buf[start:start+4], uint32(len(body)))
		binary.LittleEndian.PutUint32(buf[start+4:start+8], crc32.ChecksumIEEE(body))
		if len(buf) >= 1<<20 {
			return flushBuf()
		}
		return nil
	}
	err := write(emit)
	if err == nil {
		err = flushBuf()
	}
	if err == nil {
		if ferr := fsyncFile(f); ferr != nil {
			err, ioErr = ferr, ferr
		}
	}
	if err != nil {
		// Abort: the old segments are untouched and still cover everything;
		// the partial snapshot in the new segment replays idempotently. Only
		// a WAL I/O failure marks the log degraded — a snapshot-side error
		// (the callback's) is the caller's to handle.
		if ioErr != nil {
			w.mu.Lock()
			if w.err == nil {
				w.err = ioErr
				w.bumpRetryLocked()
			}
			w.mu.Unlock()
		}
		return err
	}
	w.mu.Lock()
	first := w.first
	w.first = ckSeg
	if w.openFresh < ckSeg {
		w.openFresh = ckSeg
	}
	w.size += int64(written)
	w.mu.Unlock()
	for n := first; n < ckSeg; n++ {
		os.Remove(filepath.Join(w.opts.Dir, segmentName(n)))
	}
	w.replay = nil
	return nil
}

// Close implements Journal: stop the flusher, commit the tail, and release
// the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.quit)
	<-w.done
	err := w.flush(true)
	w.mu.Lock()
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	w.mu.Unlock()
	return err
}

// ---------------------------------------------------------------------------
// Record encoding. Strings are u32 length + bytes; integers little-endian
// fixed width. Only the fields the record's Kind uses are written.

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func encodeRecord(b []byte, r Record) []byte {
	b = append(b, byte(r.Kind))
	b = appendString(b, r.JobID)
	switch r.Kind {
	case Submitted:
		b = append(b, byte(r.JobType))
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(r.Priority)))
		b = binary.LittleEndian.AppendUint32(b, uint32(r.NProcs))
		b = binary.LittleEndian.AppendUint64(b, uint64(r.WallLimit))
		b = appendString(b, r.Cmd)
		b = appendString(b, r.Dir)
		b = appendStrings(b, r.Args)
		b = appendStrings(b, r.Env)
	case Completed:
		failed := byte(0)
		if r.Failed {
			failed = 1
		}
		b = append(b, failed)
	case Retried:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Attempt))
	case Migrated:
		b = appendString(b, r.Node)
	case SpillRef:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Attempt))
	}
	return b
}

// decoder is a bounds-checked cursor over a record body. The CRC already
// vouches for the bytes; the checks here guard against records written by a
// future, incompatible version.
type decoder struct {
	b   []byte
	err error
}

var errShortRecord = errors.New("journal: short record")

func (d *decoder) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.err = errShortRecord
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.err = errShortRecord
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.err = errShortRecord
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil || uint32(len(d.b)) < n {
		d.err = errShortRecord
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) strs() []string {
	n := d.u32()
	if d.err == nil && n > uint32(len(d.b)) { // each entry needs at least a length prefix
		d.err = errShortRecord
	}
	if d.err != nil {
		return nil
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, d.str())
		if d.err != nil {
			return nil
		}
	}
	return out
}

func decodeRecord(body []byte) (Record, error) {
	d := &decoder{b: body}
	var r Record
	r.Kind = Kind(d.u8())
	r.JobID = d.str()
	switch r.Kind {
	case Submitted:
		r.JobType = int(d.u8())
		r.Priority = int(int32(d.u32()))
		r.NProcs = int(d.u32())
		r.WallLimit = time.Duration(d.u64())
		r.Cmd = d.str()
		r.Dir = d.str()
		r.Args = d.strs()
		r.Env = d.strs()
	case Completed:
		r.Failed = d.u8() != 0
	case Retried:
		r.Attempt = int(d.u32())
	case Migrated:
		r.Node = d.str()
	case SpillRef:
		r.Attempt = int(d.u32())
	case Dispatched:
	default:
		return r, fmt.Errorf("journal: unknown record kind %d", r.Kind)
	}
	return r, d.err
}

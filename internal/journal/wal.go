package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// WAL is the durable Journal: an append-only log split into numbered
// segment files. Each record is framed as
//
//	u32 body length | u32 CRC-32 (IEEE) of the body | body
//
// and each segment starts with an 8-byte magic. Appends go into an
// in-memory buffer under a short mutex; a flusher goroutine group-commits
// the buffer — one write plus one fsync — on a fixed cadence (default 2 ms,
// deliberately matching the engine's batch-flush cadence so the durable
// submit path amortizes the same way the wire path does). A crash loses at
// most one flush interval of appends; everything behind the last fsync
// replays exactly.
//
// Replay scans the segments that existed at Open in name order, stopping at
// the first torn or corrupt frame (the unsynced tail of a crash). Records
// appended after Open land in a fresh segment, so Compact can drop the
// replayed history once the caller has re-journaled the live state.
type WAL struct {
	opts Options

	mu      sync.Mutex // guards pending, spare, size, f, seg, closed, err
	pending []byte
	spare   []byte // recycled flush buffer, reused by the next Append
	f       *os.File
	seg     int
	size    int64 // bytes written + pending in the active segment
	closed  bool
	err     error // sticky first write/fsync failure

	flushMu sync.Mutex // serializes flush bodies (writer goroutine + Sync)

	replay []string // segments present at Open, consumed by Replay/Compact

	quit chan struct{}
	done chan struct{}
}

// Options parameterizes a WAL.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this size;
	// default 64 MiB. Rotation happens on frame boundaries.
	SegmentBytes int64
	// FsyncInterval is the group-commit cadence; default 2ms. Appends are
	// durable after the flush tick that follows them (or an explicit Sync).
	FsyncInterval time.Duration
}

const (
	walMagic       = "JETSWAL1"
	frameHeaderLen = 8
	// maxBodyLen rejects absurd frame lengths when a corrupt header happens
	// to pass the length read (the CRC catches corrupt bodies; this catches
	// a corrupt length that would otherwise allocate gigabytes).
	maxBodyLen = 16 << 20
)

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("journal: WAL is closed")

func segmentName(n int) string { return fmt.Sprintf("wal-%08d.log", n) }

// OpenWAL opens (or creates) the journal directory, records the existing
// segments for Replay, starts a fresh active segment, and begins the
// flusher.
func OpenWAL(opts Options) (*WAL, error) {
	if opts.Dir == "" {
		return nil, errors.New("journal: empty WAL directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 2 * time.Millisecond
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	last := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"))
		if err != nil {
			continue
		}
		segs = append(segs, filepath.Join(opts.Dir, name))
		if n > last {
			last = n
		}
	}
	sort.Strings(segs)
	w := &WAL{
		opts:   opts,
		seg:    last + 1,
		replay: segs,
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if err := w.openSegment(); err != nil {
		return nil, err
	}
	go w.flusher()
	return w, nil
}

// openSegment creates the next active segment and writes its magic. Caller
// is single-threaded (Open) or holds both flushMu and mu (rotation).
func (w *WAL) openSegment() error {
	f, err := os.OpenFile(filepath.Join(w.opts.Dir, segmentName(w.seg)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return err
	}
	if w.f != nil {
		w.f.Close()
	}
	w.f = f
	w.size = int64(len(walMagic))
	return nil
}

// Append implements Journal: encode and buffer the record. The record is
// encoded straight into the pending buffer (header patched in afterwards),
// so the submit hot path pays no per-record allocation. The disk is never
// touched here; durability comes from the flusher cadence or Sync.
func (w *WAL) Append(r Record) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.pending == nil && w.spare != nil {
		w.pending, w.spare = w.spare, nil
	}
	start := len(w.pending)
	w.pending = append(w.pending, make([]byte, frameHeaderLen)...)
	w.pending = encodeRecord(w.pending, r)
	body := w.pending[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(w.pending[start:start+4], uint32(len(body)))
	binary.LittleEndian.PutUint32(w.pending[start+4:start+8], crc32.ChecksumIEEE(body))
	w.size += int64(len(w.pending) - start)
	w.mu.Unlock()
	appendsTotal.Inc()
	return nil
}

// Sync implements Journal: force a group commit now.
func (w *WAL) Sync() error { return w.flush() }

// flush writes and fsyncs the pending buffer, then rotates the segment if
// it outgrew SegmentBytes. Serialized by flushMu so the ticker goroutine
// and explicit Syncs never interleave writes.
func (w *WAL) flush() error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	buf := w.pending
	w.pending = nil
	f := w.f
	rotate := w.size > w.opts.SegmentBytes
	w.mu.Unlock()
	if len(buf) == 0 && !rotate {
		return nil
	}
	if len(buf) > 0 {
		start := time.Now()
		_, err := f.Write(buf)
		if err == nil {
			err = fsyncFile(f)
		}
		fsyncSeconds.Observe(time.Since(start))
		if err != nil {
			w.mu.Lock()
			if w.err == nil {
				w.err = err
			}
			w.mu.Unlock()
			return err
		}
		if cap(buf) <= 1<<20 { // recycle the buffer unless a burst bloated it
			w.mu.Lock()
			w.spare = buf[:0]
			w.mu.Unlock()
		}
	}
	if rotate {
		w.mu.Lock()
		if !w.closed {
			w.seg++
			if err := w.openSegment(); err != nil && w.err == nil {
				w.err = err
			}
		}
		err := w.err
		w.mu.Unlock()
		return err
	}
	return nil
}

func (w *WAL) flusher() {
	defer close(w.done)
	t := time.NewTicker(w.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.flush()
		case <-w.quit:
			return
		}
	}
}

// Replay implements Journal: stream the records of the segments that
// existed at Open, oldest first. A torn or corrupt frame ends the scan
// quietly — it is the unsynced tail of the crash the WAL exists to survive.
func (w *WAL) Replay(fn func(Record) error) error {
	for _, path := range w.replay {
		stop, err := replaySegment(path, fn)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// replaySegment decodes one segment. It reports stop=true on a torn or
// corrupt frame (the rest of the log is untrusted) and err only when fn
// itself fails; unreadable files count as torn.
func replaySegment(path string, fn func(Record) error) (stop bool, err error) {
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		return true, nil
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return true, nil
	}
	data = data[len(walMagic):]
	for len(data) > 0 {
		if len(data) < frameHeaderLen {
			return true, nil // torn header
		}
		bodyLen := binary.LittleEndian.Uint32(data[0:4])
		crc := binary.LittleEndian.Uint32(data[4:8])
		if bodyLen > maxBodyLen || int(bodyLen) > len(data)-frameHeaderLen {
			return true, nil // torn or corrupt body
		}
		body := data[frameHeaderLen : frameHeaderLen+int(bodyLen)]
		if crc32.ChecksumIEEE(body) != crc {
			return true, nil
		}
		rec, derr := decodeRecord(body)
		if derr != nil {
			return true, nil
		}
		if err := fn(rec); err != nil {
			return false, err
		}
		data = data[frameHeaderLen+int(bodyLen):]
	}
	return false, nil
}

// Compact implements Journal: delete the segments Replay consumed. Call it
// only after re-journaling the live state and Syncing — the fresh segments
// started at Open are never touched, so a crash between Sync and Compact
// merely replays some records twice (replay is idempotent per job ID).
func (w *WAL) Compact() error {
	var first error
	for _, path := range w.replay {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	w.replay = nil
	return first
}

// Close implements Journal: stop the flusher, commit the tail, and release
// the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.quit)
	<-w.done
	err := w.flush()
	w.mu.Lock()
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	w.mu.Unlock()
	return err
}

// ---------------------------------------------------------------------------
// Record encoding. Strings are u32 length + bytes; integers little-endian
// fixed width. Only the fields the record's Kind uses are written.

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func encodeRecord(b []byte, r Record) []byte {
	b = append(b, byte(r.Kind))
	b = appendString(b, r.JobID)
	switch r.Kind {
	case Submitted:
		b = append(b, byte(r.JobType))
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(r.Priority)))
		b = binary.LittleEndian.AppendUint32(b, uint32(r.NProcs))
		b = binary.LittleEndian.AppendUint64(b, uint64(r.WallLimit))
		b = appendString(b, r.Cmd)
		b = appendString(b, r.Dir)
		b = appendStrings(b, r.Args)
		b = appendStrings(b, r.Env)
	case Completed:
		failed := byte(0)
		if r.Failed {
			failed = 1
		}
		b = append(b, failed)
	case Retried:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Attempt))
	case Migrated:
		b = appendString(b, r.Node)
	}
	return b
}

// decoder is a bounds-checked cursor over a record body. The CRC already
// vouches for the bytes; the checks here guard against records written by a
// future, incompatible version.
type decoder struct {
	b   []byte
	err error
}

var errShortRecord = errors.New("journal: short record")

func (d *decoder) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.err = errShortRecord
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.err = errShortRecord
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.err = errShortRecord
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil || uint32(len(d.b)) < n {
		d.err = errShortRecord
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) strs() []string {
	n := d.u32()
	if d.err == nil && n > uint32(len(d.b)) { // each entry needs at least a length prefix
		d.err = errShortRecord
	}
	if d.err != nil {
		return nil
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, d.str())
		if d.err != nil {
			return nil
		}
	}
	return out
}

func decodeRecord(body []byte) (Record, error) {
	d := &decoder{b: body}
	var r Record
	r.Kind = Kind(d.u8())
	r.JobID = d.str()
	switch r.Kind {
	case Submitted:
		r.JobType = int(d.u8())
		r.Priority = int(int32(d.u32()))
		r.NProcs = int(d.u32())
		r.WallLimit = time.Duration(d.u64())
		r.Cmd = d.str()
		r.Dir = d.str()
		r.Args = d.strs()
		r.Env = d.strs()
	case Completed:
		r.Failed = d.u8() != 0
	case Retried:
		r.Attempt = int(d.u32())
	case Migrated:
		r.Node = d.str()
	case Dispatched:
	default:
		return r, fmt.Errorf("journal: unknown record kind %d", r.Kind)
	}
	return r, d.err
}

package journal

import (
	"fmt"
	"testing"
	"time"
)

// openTestWAL opens a WAL with a fast flush cadence in a fresh temp dir.
func openTestWAL(t *testing.T, opts Options) *WAL {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.FsyncInterval == 0 {
		opts.FsyncInterval = time.Millisecond
	}
	w, err := OpenWAL(opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWALDegradedRetryRecovers is the regression test for the sticky journal
// error: a failed commit used to latch w.err forever, so one transient disk
// blip silently dropped every subsequent record until restart. The flusher
// must retry, clear the error on success, and land the buffered records.
func TestWALDegradedRetryRecovers(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, Options{Dir: dir})

	if err := w.Append(Record{Kind: Submitted, JobID: "before", NProcs: 1, Cmd: "noop"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	// Inject two commit failures and append: the record buffers through the
	// failed commits (no error — it is not lost yet), the WAL reports
	// degraded, and the retry eventually commits it and clears the error.
	w.mu.Lock()
	w.failCommits = 2
	w.mu.Unlock()
	if err := w.Append(Record{Kind: Submitted, JobID: "during", NProcs: 1, Cmd: "noop"}); err != nil {
		t.Fatalf("append below the buffer cap must buffer, not fail: %v", err)
	}
	if err := w.Sync(); err == nil {
		t.Fatal("injected commit failure not surfaced by Sync")
	}
	if !w.Degraded() {
		t.Fatal("WAL not degraded after a failed commit")
	}

	deadline := time.Now().Add(5 * time.Second)
	for w.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("degraded error still sticky 5s after the fault cleared")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Append(Record{Kind: Submitted, JobID: "after", NProcs: 1, Cmd: "noop"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync after recovery: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Every record — before, buffered during, and after the episode — replays.
	w2 := openTestWAL(t, Options{Dir: dir})
	defer w2.Close()
	seen := map[string]bool{}
	if err := w2.Replay(func(r Record) error {
		seen[r.JobID] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"before", "during", "after"} {
		if !seen[id] {
			t.Fatalf("record %q lost across the degraded episode (replayed: %v)", id, seen)
		}
	}
}

// TestWALDegradedBufferCapDrops: while degraded, appends past maxPendingBytes
// must return the commit error (the caller counts them as dropped) instead of
// growing the heap without bound.
func TestWALDegradedBufferCapDrops(t *testing.T) {
	w := openTestWAL(t, Options{FsyncInterval: time.Hour}) // no flusher interference
	defer w.Close()
	w.mu.Lock()
	w.failCommits = 1 << 30 // never recovers during the test
	w.mu.Unlock()
	if err := w.Append(Record{Kind: Submitted, JobID: "seed", NProcs: 1, Cmd: "noop"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err == nil {
		t.Fatal("injected commit failure not surfaced")
	}
	big := Record{Kind: Submitted, JobID: "x", NProcs: 1, Cmd: string(make([]byte, 1<<20))}
	var dropErr error
	for i := 0; i < 64; i++ {
		big.JobID = fmt.Sprintf("x%d", i)
		if err := w.Append(big); err != nil {
			dropErr = err
			break
		}
	}
	if dropErr == nil {
		t.Fatal("appends past the degraded buffer cap never reported the drop")
	}
	w.mu.Lock()
	pending := len(w.pending)
	w.mu.Unlock()
	if pending > maxPendingBytes+2<<20 {
		t.Fatalf("pending buffer grew to %d bytes, cap is %d", pending, maxPendingBytes)
	}
}

// TestWALCheckpointBoundsSegments: the online checkpoint must rewrite the
// live state into one fresh segment and delete the older ones.
func TestWALCheckpointBoundsSegments(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, Options{Dir: dir, SegmentBytes: 512})
	defer w.Close()
	for i := 0; i < 500; i++ {
		if err := w.Append(Record{Kind: Submitted, JobID: fmt.Sprintf("j%03d", i), NProcs: 1, Cmd: "noop"}); err != nil {
			t.Fatal(err)
		}
		if i%50 == 49 {
			if err := w.Sync(); err != nil { // force rotations
				t.Fatal(err)
			}
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	before := w.Segments()
	if before < 5 {
		t.Fatalf("expected many segments before checkpoint, got %d", before)
	}

	err := w.Checkpoint(func(emit func(Record) error) error {
		return emit(Record{Kind: Submitted, JobID: "live", NProcs: 1, Cmd: "noop"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if after := w.Segments(); after >= before || after > 2 {
		t.Fatalf("Segments after checkpoint = %d (was %d), want the history dropped", after, before)
	}
	if n := countFiles(t, dir, ".log"); n > 2 {
		t.Fatalf("%d segment files on disk after checkpoint, want <= 2", n)
	}

	// Records appended after the checkpoint land after the snapshot.
	if err := w.Append(Record{Kind: Completed, JobID: "live"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openTestWAL(t, Options{Dir: dir})
	defer w2.Close()
	liveSet := map[string]bool{}
	if err := w2.Replay(func(r Record) error {
		switch r.Kind {
		case Submitted:
			liveSet[r.JobID] = true
		case Completed:
			delete(liveSet, r.JobID)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(liveSet) != 0 {
		t.Fatalf("replay after checkpoint left live set %v, want empty (snapshot + completion)", liveSet)
	}
}

// TestWALCheckpointRefusedWhileDegraded: checkpointing while commits are
// failing would delete the only durable copy of the live state; it must
// refuse until the retry clears the error.
func TestWALCheckpointRefusedWhileDegraded(t *testing.T) {
	w := openTestWAL(t, Options{FsyncInterval: time.Hour})
	defer w.Close()
	if err := w.Append(Record{Kind: Submitted, JobID: "j", NProcs: 1, Cmd: "noop"}); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	w.failCommits = 1
	w.mu.Unlock()
	if err := w.Sync(); err == nil {
		t.Fatal("injected commit failure not surfaced")
	}
	if err := w.Checkpoint(func(emit func(Record) error) error { return nil }); err == nil {
		t.Fatal("Checkpoint succeeded while the WAL was degraded")
	}
	if err := w.Sync(); err != nil { // retry clears the episode (forced Sync ignores backoff)
		t.Fatal(err)
	}
	if err := w.Checkpoint(func(emit func(Record) error) error { return nil }); err != nil {
		t.Fatalf("Checkpoint after recovery: %v", err)
	}
}

// TestWALCheckpointConcurrentAppends: appends racing a checkpoint must land
// in the checkpoint segment after the snapshot and survive replay.
func TestWALCheckpointConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, Options{Dir: dir})
	for i := 0; i < 10; i++ {
		if err := w.Append(Record{Kind: Submitted, JobID: fmt.Sprintf("old%d", i), NProcs: 1, Cmd: "noop"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	appended := make(chan error, 1)
	err := w.Checkpoint(func(emit func(Record) error) error {
		// An append made mid-snapshot: it must not deadlock (Append never
		// takes flushMu) and must survive the checkpoint.
		appended <- w.Append(Record{Kind: Submitted, JobID: "racer", NProcs: 1, Cmd: "noop"})
		for i := 0; i < 10; i++ {
			if err := emit(Record{Kind: Submitted, JobID: fmt.Sprintf("old%d", i), NProcs: 1, Cmd: "noop"}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-appended; err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openTestWAL(t, Options{Dir: dir})
	defer w2.Close()
	var got []string
	if err := w2.Replay(func(r Record) error {
		got = append(got, r.JobID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 || got[len(got)-1] != "racer" {
		t.Fatalf("replay after racing append = %v, want 10 snapshot records then \"racer\"", got)
	}
}

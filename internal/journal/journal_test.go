package journal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func collect(t *testing.T, j Journal) []Record {
	t.Helper()
	var out []Record
	if err := j.Replay(func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: Submitted, JobID: "job1", JobType: 1, Priority: -3, NProcs: 8,
			Cmd: "namd2.sh", Args: []string{"input-1.pdb", "output-1.log"},
			Env: []string{"A=1", "B=2"}, Dir: "/tmp/wd", WallLimit: 90 * time.Second},
		{Kind: Submitted, JobID: "job2", NProcs: 1, Cmd: "noop"},
		{Kind: Dispatched, JobID: "job1"},
		{Kind: Retried, JobID: "job1", Attempt: 2},
		{Kind: Completed, JobID: "job1", Failed: true},
		{Kind: Completed, JobID: "job2"},
	}
	for _, want := range recs {
		got, err := decodeRecord(encodeRecord(nil, want))
		if err != nil {
			t.Fatalf("decode %v: %v", want.Kind, err)
		}
		// Encoding only carries the fields the kind uses; normalize the
		// expectation the same way.
		norm := Record{Kind: want.Kind, JobID: want.JobID}
		switch want.Kind {
		case Submitted:
			norm = want
		case Completed:
			norm.Failed = want.Failed
		case Retried:
			norm.Attempt = want.Attempt
		}
		if len(got.Args) == 0 {
			got.Args = nil
		}
		if len(got.Env) == 0 {
			got.Env = nil
		}
		if !reflect.DeepEqual(got, norm) {
			t.Errorf("round trip %v:\n got %+v\nwant %+v", want.Kind, got, norm)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := decodeRecord([]byte{99, 0, 0, 0, 0}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := decodeRecord([]byte{byte(Submitted), 200, 0, 0, 0}); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Kind: Submitted, JobID: "a", NProcs: 1, Cmd: "x"},
		{Kind: Dispatched, JobID: "a"},
		{Kind: Completed, JobID: "a"},
	}
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := collect(t, w2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].JobID != want[i].JobID {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWALSyncMakesRecordsDurable(t *testing.T) {
	dir := t.TempDir()
	// A huge flush interval proves durability comes from Sync, not the
	// ticker.
	w, err := OpenWAL(Options{Dir: dir, FsyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(Record{Kind: Submitted, JobID: "s", NProcs: 1, Cmd: "c"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// A second WAL over the same directory sees the synced record without
	// the first ever closing — the kill -9 case.
	w2, err := OpenWAL(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := collect(t, w2); len(got) != 1 || got[0].JobID != "s" {
		t.Fatalf("replay after Sync = %+v, want the one synced record", got)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w.Append(Record{Kind: Submitted, JobID: fmt.Sprintf("j%d", i), NProcs: 1, Cmd: "c"})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a torn frame: a header promising more bytes than exist.
	seg := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1000)
	f.Write(hdr[:])
	f.Write([]byte("partial"))
	f.Close()

	w2, err := OpenWAL(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := collect(t, w2); len(got) != 3 {
		t.Fatalf("replayed %d records through a torn tail, want 3", len(got))
	}
}

func TestWALCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w.Append(Record{Kind: Submitted, JobID: fmt.Sprintf("j%d", i), NProcs: 1, Cmd: "c"})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the file: the CRC of that frame fails
	// and replay must stop there rather than hand back corrupt state.
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := collect(t, w2); len(got) >= 3 {
		t.Fatalf("replayed %d records across a corrupt frame", len(got))
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(Options{Dir: dir, SegmentBytes: 256, FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := w.Append(Record{Kind: Submitted, JobID: fmt.Sprintf("job-%04d", i), NProcs: 1, Cmd: "cmd"}); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			w.Sync() // force flushes so rotation actually triggers
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %v", segs)
	}
	w2, err := OpenWAL(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := collect(t, w2)
	if len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}
	for i, r := range got {
		if want := fmt.Sprintf("job-%04d", i); r.JobID != want {
			t.Fatalf("record %d = %q, want %q (order lost across rotation)", i, r.JobID, want)
		}
	}
}

func TestWALCompactDropsHistoryKeepsNewAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Record{Kind: Submitted, JobID: "old", NProcs: 1, Cmd: "c"})
	w.Append(Record{Kind: Completed, JobID: "old"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, w2); len(got) != 2 {
		t.Fatalf("replay before compact = %d records, want 2", len(got))
	}
	// Re-journal the live state (nothing live here beyond one fresh job),
	// then drop the history.
	w2.Append(Record{Kind: Submitted, JobID: "live", NProcs: 1, Cmd: "c"})
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	w3, err := OpenWAL(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	got := collect(t, w3)
	if len(got) != 1 || got[0].JobID != "live" {
		t.Fatalf("replay after compact = %+v, want only the re-journaled record", got)
	}
}

func TestWALAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w.Append(Record{Kind: Dispatched, JobID: "x"}); err == nil {
		t.Error("append after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close = %v, want nil (idempotent)", err)
	}
}

func TestNopJournal(t *testing.T) {
	var j Journal = Nop{}
	if err := j.Append(Record{Kind: Submitted, JobID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, j); len(got) != 0 {
		t.Fatalf("Nop replayed %d records", len(got))
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

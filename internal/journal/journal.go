// Package journal persists the dispatcher's job state transitions so a
// crashed dispatcher can be restarted without losing its workload. The
// model follows the pilot-system line of work (RADICAL-Pilot and kin),
// where restartable bookkeeping is table stakes for many-task runs on real
// machines: every accepted submission, dispatch, retry, and completion is
// appended to a write-ahead log, and a recovery scan at startup rebuilds
// the queues, drops already-completed jobs, and requeues the ones that
// were running when the process died.
//
// Two implementations ship here: WAL (wal.go), an append-only segmented
// log with CRC-framed records and group-committed fsync, and Nop, the
// default that keeps the seed's in-memory-only behavior.
package journal

import (
	"time"

	"jets/internal/obs"
)

// Package-level instrumentation, following the worker/hydra pattern: the
// counters work detached and RegisterMetrics exports them on demand.
var (
	appendsTotal = obs.NewCounter("jets_journal_appends_total",
		"records appended to the dispatcher journal")
	fsyncSeconds = obs.NewHist("jets_journal_fsync_seconds",
		"time per group-committed journal flush (write + fsync)", nil)
)

// RegisterMetrics exports this package's instrumentation through a registry.
func RegisterMetrics(reg *obs.Registry) {
	reg.Register(appendsTotal, fsyncSeconds)
}

// Kind enumerates journal record types: the dispatcher's job state
// transitions.
type Kind uint8

// Record kinds. A job's durable life cycle is Submitted → Dispatched →
// (Retried → Dispatched)* → Completed; only jobs without a Completed record
// survive a recovery scan.
const (
	// Submitted records an accepted job with its full specification — the
	// only record that carries enough to rebuild the job at recovery.
	Submitted Kind = 1
	// Dispatched records the job being seated on workers. A job with a
	// Dispatched but no Completed record was running when the process died
	// and is requeued through the retry path at recovery.
	Dispatched Kind = 2
	// Completed records the job reaching a terminal state (Failed
	// distinguishes the outcome). Completed jobs are deduped at recovery.
	Completed Kind = 3
	// Retried records a faulted job re-entering the queue; Attempt keeps
	// the retry budget accounting across restarts.
	Retried Kind = 4
	// Migrated records the job leaving this journal's owner for another node
	// (federation steal/rebalance, Node naming the destination). Terminal
	// locally — recovery treats it like Completed — while the destination's
	// own Submitted record carries the job's durability from then on.
	Migrated Kind = 5
	// SpillRef marks a job live whose full specification resides in the
	// dispatcher's spill store (SpillStore) rather than in the log. Only
	// online checkpoints write it: re-journaling a million-job cold backlog
	// as full Submitted records would copy the entire spill store into the
	// WAL, so a checkpoint emits one small SpillRef per spilled job instead.
	// Attempt carries the retry budget; recovery resolves the spec through
	// SpillStore.Get.
	SpillRef Kind = 6
)

func (k Kind) String() string {
	switch k {
	case Submitted:
		return "submitted"
	case Dispatched:
		return "dispatched"
	case Completed:
		return "completed"
	case Retried:
		return "retried"
	case Migrated:
		return "migrated"
	case SpillRef:
		return "spillref"
	}
	return "unknown"
}

// Record is one journaled state transition. Only the fields relevant to the
// record's Kind are encoded (see the per-kind comments above).
type Record struct {
	Kind  Kind
	JobID string

	// Submitted payload: the job specification, flattened so this package
	// does not depend on the dispatcher's types.
	JobType   int // dispatch.JobType ordinal (0 sequential, 1 MPI)
	Priority  int
	NProcs    int
	Cmd       string
	Args      []string
	Env       []string
	Dir       string
	WallLimit time.Duration

	// Completed payload.
	Failed bool

	// Retried payload.
	Attempt int

	// Migrated payload — and, in a router's routing-table journal, the
	// instance a Submitted record assigned the job to.
	Node string
}

// Journal persists dispatcher state transitions. Appends are buffered and
// become durable at the next flush tick or Sync; the dispatcher owns its
// journal and closes it on Close.
type Journal interface {
	// Append buffers one record for the next group commit. It never blocks
	// on the disk: durability is provided by the flusher's fsync cadence
	// (or an explicit Sync), which is the property that keeps the submit
	// hot path within the benchmark gate.
	Append(Record) error
	// Sync forces every buffered record to stable storage.
	Sync() error
	// Replay streams every durable record, oldest first, to fn. It must be
	// called before the first Append, and stops early if fn errors.
	Replay(fn func(Record) error) error
	// Compact drops the history consumed by Replay once the caller has
	// re-journaled the live state (appends made after open land in fresh
	// segments that Compact never touches).
	Compact() error
	// Close flushes buffered records and releases resources.
	Close() error
}

// Checkpointer is the optional online-compaction interface a Journal may
// implement (WAL does). Checkpoint atomically begins a fresh segment, writes
// the records the callback emits — a self-contained snapshot of all live
// state — fsyncs them, and drops every older segment, bounding the journal's
// size over an arbitrarily long uptime. Group-commit flushes are held off
// for the duration, so records appended concurrently land after the snapshot
// in replay order and apply on top of it (replay is idempotent per job ID).
type Checkpointer interface {
	// Segments reports how many segment files the journal currently spans —
	// the threshold signal for triggering a checkpoint.
	Segments() int
	// Checkpoint re-journals the live state: write must emit every record
	// the caller needs to survive a restart, then return nil. emit is valid
	// only until write returns. On error nothing is dropped — the old
	// segments are kept and replay still covers the full history.
	Checkpoint(write func(emit func(Record) error) error) error
}

// Nop is the default journal: no durability, every operation succeeds, and
// Replay yields nothing. It preserves the engine's original in-memory-only
// behavior.
type Nop struct{}

// Append implements Journal.
func (Nop) Append(Record) error { return nil }

// Sync implements Journal.
func (Nop) Sync() error { return nil }

// Replay implements Journal.
func (Nop) Replay(func(Record) error) error { return nil }

// Compact implements Journal.
func (Nop) Compact() error { return nil }

// Close implements Journal.
func (Nop) Close() error { return nil }

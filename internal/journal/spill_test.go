package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func spillRecord(id string) Record {
	return Record{Kind: Submitted, JobID: id, NProcs: 1, Cmd: "noop", Args: []string{"-x", id}}
}

func countFiles(t *testing.T, dir, suffix string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == suffix {
			n++
		}
	}
	return n
}

func TestSpillPutGetRoundTrip(t *testing.T) {
	s, err := OpenSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := Record{
		Kind: Submitted, JobID: "j1", JobType: 1, Priority: 3, NProcs: 4,
		Cmd: "namd2.sh", Args: []string{"in.pdb", "out.log"},
		Env: []string{"A=1"}, Dir: "/tmp",
	}
	if _, err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("j1")
	if err != nil || !ok {
		t.Fatalf("Get = ok=%v err=%v", ok, err)
	}
	if got.Cmd != want.Cmd || got.NProcs != want.NProcs || len(got.Args) != 2 || got.Args[1] != "out.log" {
		t.Fatalf("Get = %+v, want %+v", got, want)
	}
	if _, ok, _ := s.Get("absent"); ok {
		t.Fatal("Get found a record never put")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestSpillGetBatchAndRemove(t *testing.T) {
	s, err := OpenSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var ids []string
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("j%03d", i)
		ids = append(ids, id)
		if _, err := s.Put(spillRecord(id)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.GetBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("GetBatch returned %d records, want 100", len(got))
	}
	for _, id := range ids {
		if got[id].Args[1] != id {
			t.Fatalf("record %s round-tripped wrong: %+v", id, got[id])
		}
	}
	before := s.Bytes()
	for _, id := range ids[:50] {
		s.Remove(id)
	}
	if s.Len() != 50 {
		t.Fatalf("Len after removals = %d, want 50", s.Len())
	}
	if s.Bytes() >= before {
		t.Fatalf("Bytes did not shrink after removals: %d -> %d", before, s.Bytes())
	}
	got, err = s.GetBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("GetBatch after removals = %d records, want 50", len(got))
	}
}

// TestSpillSegmentsReclaimed: segments are reference-counted by live records;
// removing every job spilled into a retired segment must delete its file, so
// the store's disk footprint tracks the cold backlog.
func TestSpillSegmentsReclaimed(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpill(dir, 256) // tiny segments: a few records each
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var ids []string
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("j%03d", i)
		ids = append(ids, id)
		if _, err := s.Put(spillRecord(id)); err != nil {
			t.Fatal(err)
		}
	}
	grown := countFiles(t, dir, ".seg")
	if grown < 10 {
		t.Fatalf("expected many tiny segments, got %d", grown)
	}
	for _, id := range ids {
		s.Remove(id)
	}
	if n := countFiles(t, dir, ".seg"); n > 2 {
		t.Fatalf("segments after removing everything = %d, want <= 2 (active + maybe one empty)", n)
	}
	if s.Bytes() != 0 {
		t.Fatalf("Bytes after removing everything = %d, want 0", s.Bytes())
	}
}

// TestSpillReopenRecovers: a Sync'd store reopened from the same directory
// serves every live record; RetainOnly sweeps the rest.
func TestSpillReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpill(dir, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Put(spillRecord(fmt.Sprintf("j%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Remove("j10")
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSpill(dir, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// The rescan sees every record still in a segment file — including the
	// Removed one, whose removal was index-only. RetainOnly is the sweep that
	// makes the index match the journal's live set after recovery.
	if _, ok, _ := s2.Get("j20"); !ok {
		t.Fatal("reopened store lost a live record")
	}
	keep := map[string]struct{}{"j20": {}, "j30": {}}
	s2.RetainOnly(keep)
	if s2.Len() != 2 {
		t.Fatalf("Len after RetainOnly = %d, want 2", s2.Len())
	}
	if _, ok, _ := s2.Get("j10"); ok {
		t.Fatal("RetainOnly kept a swept record")
	}
	if rec, ok, err := s2.Get("j30"); err != nil || !ok || rec.Args[1] != "j30" {
		t.Fatalf("kept record unreadable: ok=%v err=%v rec=%+v", ok, err, rec)
	}
}

// TestSpillReopenTornTail: a torn frame at the tail of a segment (the crash
// the store exists to survive) ends that segment's rescan without failing
// the open; records before the tear survive.
func TestSpillReopenTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpill(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(spillRecord("ok")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, spillSegmentName(1))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0, 0, 0, 0xde, 0xad}); err != nil { // torn header+body
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenSpill(dir, 0)
	if err != nil {
		t.Fatalf("open over a torn tail failed: %v", err)
	}
	defer s2.Close()
	if _, ok, err := s2.Get("ok"); err != nil || !ok {
		t.Fatalf("record before the tear lost: ok=%v err=%v", ok, err)
	}
}

// TestSpillPutReplacesEntry: re-putting an ID (a retried job spilling again)
// replaces the index entry instead of growing the live set.
func TestSpillPutReplacesEntry(t *testing.T) {
	s, err := OpenSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Put(spillRecord("dup")); err != nil {
		t.Fatal(err)
	}
	upd := spillRecord("dup")
	upd.Cmd = "updated"
	if _, err := s.Put(upd); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len after re-put = %d, want 1", s.Len())
	}
	rec, ok, err := s.Get("dup")
	if err != nil || !ok || rec.Cmd != "updated" {
		t.Fatalf("Get after re-put = %+v ok=%v err=%v, want the updated record", rec, ok, err)
	}
}

//go:build linux

package journal

import (
	"os"
	"syscall"
)

// fsyncFile commits the file's data with fdatasync: the WAL never reads
// back timestamps, so the pure-metadata (mtime) commit that a full fsync
// adds on every group commit is skipped. Block allocations made by the
// preceding write are still flushed — fdatasync includes all metadata
// required to retrieve the data.
func fsyncFile(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}

package event

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"jets/internal/event/legacy"
)

// TestFIFOTieBreakUnderChurn pins FIFO tie-breaking for equal timestamps
// through heap churn: events scheduled at identical times — including from
// inside other events, interleaved with pops of earlier timestamps — must
// execute in scheduling order. This test predates the 4-ary heap swap and
// gates it.
func TestFIFOTieBreakUnderChurn(t *testing.T) {
	s := New(1)
	var order []int
	at := 10 * time.Second
	n := 0
	add := func() {
		n++
		id := n
		s.At(at, func() { order = append(order, id) })
	}
	// A burst scheduled up front...
	for i := 0; i < 100; i++ {
		add()
	}
	// ...interleaved with earlier events that schedule more ties while the
	// heap is draining, and with unrelated churn at other timestamps.
	for i := 0; i < 50; i++ {
		d := time.Duration(i) * time.Millisecond
		s.At(d, func() { add() })
		s.At(d, func() {})
	}
	s.Run(0)
	if len(order) != 150 {
		t.Fatalf("executed %d tied events, want 150", len(order))
	}
	for i, id := range order {
		if id != i+1 {
			t.Fatalf("tie-break not FIFO at %d: got id %d\norder=%v", i, id, order)
		}
	}
}

// op is one step of a randomized schedule, replayed identically against the
// optimized core and the frozen legacy core.
type op struct {
	delay   time.Duration
	spawn   int           // children scheduled when this event fires
	service time.Duration // station request issued when this event fires
}

func genOps(rng *rand.Rand, n int) []op {
	ops := make([]op, n)
	for i := range ops {
		// Delays mix scales deliberately: zero delays exercise insertion into
		// the live calendar bucket, millisecond delays make timestamp ties
		// likely, and occasional minute-scale delays force traffic through
		// the far heap and its epoch migration into the calendar window.
		var d time.Duration
		switch rng.Intn(10) {
		case 0:
			d = 0
		case 1, 2:
			d = time.Duration(rng.Intn(2000)) * time.Microsecond
		case 3:
			d = time.Duration(rng.Intn(3)) * time.Minute
		default:
			d = time.Duration(rng.Intn(50)) * time.Millisecond
		}
		ops[i] = op{
			delay:   d,
			spawn:   rng.Intn(3),
			service: time.Duration(rng.Intn(20)) * time.Millisecond,
		}
	}
	return ops
}

// TestDifferentialAgainstLegacy drives an identical randomized workload —
// timers spawning timers, single-server station traffic, pool handoffs —
// through the optimized core and the legacy container/heap core, and
// requires the execution traces (callback identity and virtual timestamp)
// to match exactly. This is the ordering oracle for the heap replacement.
func TestDifferentialAgainstLegacy(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		ops := genOps(rand.New(rand.NewSource(seed)), 200)

		type hit struct {
			id int
			at time.Duration
		}
		runNew := func() []hit {
			var trace []hit
			s := New(seed)
			st := NewStation(s, 1)
			p := NewPool(s, 2)
			next := 0
			var fire func(id int)
			fire = func(id int) {
				trace = append(trace, hit{id, s.Now()})
				o := ops[id%len(ops)]
				for k := 0; k < o.spawn && next < len(ops); k++ {
					child := next
					next++
					s.After(ops[child].delay, func() { fire(child) })
				}
				st.Request(o.service, func() {
					trace = append(trace, hit{-id, s.Now()})
					p.Acquire(func() { s.After(time.Millisecond, p.Release) })
				})
			}
			for i := 0; i < 20 && next < len(ops); i++ {
				child := next
				next++
				s.After(ops[child].delay, func() { fire(child) })
			}
			s.Run(0)
			return trace
		}
		runLegacy := func() []hit {
			var trace []hit
			s := legacy.New(seed)
			st := legacy.NewStation(s, 1)
			p := legacy.NewPool(s, 2)
			next := 0
			var fire func(id int)
			fire = func(id int) {
				trace = append(trace, hit{id, s.Now()})
				o := ops[id%len(ops)]
				for k := 0; k < o.spawn && next < len(ops); k++ {
					child := next
					next++
					s.After(ops[child].delay, func() { fire(child) })
				}
				st.Request(o.service, func() {
					trace = append(trace, hit{-id, s.Now()})
					p.Acquire(func() { s.After(time.Millisecond, p.Release) })
				})
			}
			for i := 0; i < 20 && next < len(ops); i++ {
				child := next
				next++
				s.After(ops[child].delay, func() { fire(child) })
			}
			s.Run(0)
			return trace
		}

		a, b := runNew(), runLegacy()
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ: new=%d legacy=%d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at %d: new=%+v legacy=%+v", seed, i, a[i], b[i])
			}
		}
	}
}

// TestDifferentialRunUntilStepping replays the same randomized workload
// through both cores, but advances virtual time in uneven RunUntil steps
// instead of a single Run. Stepping stops and restarts the scheduler at
// arbitrary deadlines — between calendar epochs, mid-bucket, with the far
// heap partially migrated — and the traces must still match legacy exactly.
func TestDifferentialRunUntilStepping(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		ops := genOps(rand.New(rand.NewSource(seed^0x5eed)), 200)

		type hit struct {
			id int
			at time.Duration
		}
		type stepper interface {
			RunUntil(time.Duration)
			Pending() int
		}
		step := func(s stepper, rng *rand.Rand) {
			deadline := time.Duration(0)
			for s.Pending() > 0 {
				deadline += time.Duration(1+rng.Intn(7000)) * time.Millisecond
				s.RunUntil(deadline)
			}
		}
		runNew := func() []hit {
			var trace []hit
			s := New(seed)
			st := NewStation(s, 2)
			next := 0
			var fire func(id int)
			fire = func(id int) {
				trace = append(trace, hit{id, s.Now()})
				o := ops[id%len(ops)]
				for k := 0; k < o.spawn && next < len(ops); k++ {
					child := next
					next++
					s.After(ops[child].delay, func() { fire(child) })
				}
				st.Request(o.service, func() { trace = append(trace, hit{-id, s.Now()}) })
			}
			for i := 0; i < 20 && next < len(ops); i++ {
				child := next
				next++
				s.After(ops[child].delay, func() { fire(child) })
			}
			step(s, rand.New(rand.NewSource(seed)))
			return trace
		}
		runLegacy := func() []hit {
			var trace []hit
			s := legacy.New(seed)
			st := legacy.NewStation(s, 2)
			next := 0
			var fire func(id int)
			fire = func(id int) {
				trace = append(trace, hit{id, s.Now()})
				o := ops[id%len(ops)]
				for k := 0; k < o.spawn && next < len(ops); k++ {
					child := next
					next++
					s.After(ops[child].delay, func() { fire(child) })
				}
				st.Request(o.service, func() { trace = append(trace, hit{-id, s.Now()}) })
			}
			for i := 0; i < 20 && next < len(ops); i++ {
				child := next
				next++
				s.After(ops[child].delay, func() { fire(child) })
			}
			step(s, rand.New(rand.NewSource(seed)))
			return trace
		}

		a, b := runNew(), runLegacy()
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ: new=%d legacy=%d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at %d: new=%+v legacy=%+v", seed, i, a[i], b[i])
			}
		}
	}
}

// TestStationConservation checks request conservation under randomized
// multi-server traffic: at every completion, Requested == Served + QueueLen
// + InService, and at drain everything requested has been served.
func TestStationConservation(t *testing.T) {
	for _, servers := range []int{1, 2, 7} {
		s := New(11)
		st := NewStation(s, servers)
		rng := rand.New(rand.NewSource(int64(servers)))
		const n = 500
		check := func() {
			got := st.Served() + uint64(st.QueueLen()) + uint64(st.InService())
			if st.Requested() != got {
				t.Fatalf("servers=%d: conservation violated: requested=%d served=%d queued=%d busy=%d",
					servers, st.Requested(), st.Served(), st.QueueLen(), st.InService())
			}
		}
		for i := 0; i < n; i++ {
			at := time.Duration(rng.Intn(1000)) * time.Millisecond
			svc := time.Duration(rng.Intn(50)) * time.Millisecond
			s.At(at, func() {
				st.Request(svc, check)
				check()
			})
		}
		s.Run(0)
		check()
		if st.Requested() != n || st.Served() != n {
			t.Fatalf("servers=%d: requested=%d served=%d, want %d", servers, st.Requested(), st.Served(), n)
		}
		if st.QueueLen() != 0 || st.InService() != 0 {
			t.Fatalf("servers=%d: drain left queue=%d busy=%d", servers, st.QueueLen(), st.InService())
		}
	}
}

// TestStationBusyTimeBounded checks BusyTime never exceeds the elapsed span
// (it is normalized by server count), sampled throughout a randomized run.
func TestStationBusyTimeBounded(t *testing.T) {
	f := func(nRaw, svcRaw, serversRaw uint8) bool {
		servers := int(serversRaw%4) + 1
		n := int(nRaw%50) + 1
		svc := time.Duration(svcRaw) * time.Millisecond
		s := New(5)
		st := NewStation(s, servers)
		ok := true
		for i := 0; i < n; i++ {
			at := time.Duration(i%7) * 10 * time.Millisecond
			s.At(at, func() {
				st.Request(svc, func() {
					if st.BusyTime() > s.Now() {
						ok = false
					}
				})
			})
		}
		s.Run(0)
		return ok && st.BusyTime() <= s.Now()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolConservation checks token conservation across arbitrary
// Acquire/Release interleavings: Available + held + Waiting-satisfied
// bookkeeping always balances back to the initial token count at drain, and
// Available never exceeds what has been released.
func TestPoolConservation(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		const tokens = 3
		s := New(seed)
		p := NewPool(s, tokens)
		rng := rand.New(rand.NewSource(seed))
		held := 0
		const n = 400
		for i := 0; i < n; i++ {
			at := time.Duration(rng.Intn(2000)) * time.Millisecond
			hold := time.Duration(rng.Intn(30)) * time.Millisecond
			s.At(at, func() {
				p.Acquire(func() {
					held++
					if held > tokens {
						t.Fatalf("seed %d: %d tokens held, pool has %d", seed, held, tokens)
					}
					s.After(hold, func() {
						held--
						p.Release()
					})
				})
				if p.Available()+held != tokens && p.Waiting() == 0 {
					t.Fatalf("seed %d: available=%d held=%d waiting=%d", seed, p.Available(), held, p.Waiting())
				}
			})
		}
		s.Run(0)
		if held != 0 || p.Available() != tokens || p.Waiting() != 0 {
			t.Fatalf("seed %d: drain left held=%d available=%d waiting=%d", seed, held, p.Available(), p.Waiting())
		}
	}
}

// TestMonotonicTimeWithHandlers is the nondecreasing-time property over the
// no-alloc AtCall path.
type monotonicHandler struct {
	s    *Sim
	last time.Duration
	ok   bool
	n    int
}

func (m *monotonicHandler) Fire(arg int) {
	if m.s.Now() < m.last {
		m.ok = false
	}
	m.last = m.s.Now()
	m.n++
}

func TestMonotonicTimeWithHandlers(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		h := &monotonicHandler{s: s, ok: true}
		for i, d := range delays {
			s.AtCall(time.Duration(d)*time.Millisecond, h, i)
		}
		s.Run(0)
		return h.ok && h.n == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestRing exercises the ring buffer through growth and wraparound.
func TestRing(t *testing.T) {
	var r Ring[int]
	next, out := 0, 0
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 10000; step++ {
		if r.Len() == 0 || rng.Intn(3) > 0 {
			r.Push(next)
			next++
		} else {
			if *r.Front() != out {
				t.Fatalf("front=%d want %d", *r.Front(), out)
			}
			if got := r.Pop(); got != out {
				t.Fatalf("pop=%d want %d", got, out)
			}
			out++
		}
	}
	for r.Len() > 0 {
		if got := r.Pop(); got != out {
			t.Fatalf("drain pop=%d want %d", got, out)
		}
		out++
	}
	if out != next {
		t.Fatalf("popped %d of %d", out, next)
	}
}

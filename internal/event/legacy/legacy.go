// Package legacy is the pre-optimization event core, frozen when
// internal/event moved to the flat 4-ary value heap: a container/heap of
// *event pointers with closure-only callbacks and append-slice Station/Pool
// queues. It is kept for two reasons: the root BenchmarkSimEvents
// heap=legacy variant is the recorded "before" number for the event-core
// optimization (EXPERIMENTS.md BENCH_8), and the differential tests in
// internal/event pin the optimized core's execution order — including FIFO
// tie-breaking for equal timestamps — against this reference
// implementation. Do not use it in new model code.
package legacy

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Sim is one simulation instance. It is not safe for concurrent use: all
// model code runs inside event callbacks on a single goroutine.
type Sim struct {
	now    time.Duration
	pq     eventHeap
	seq    uint64
	rng    *rand.Rand
	events uint64
}

// New creates a simulator with a deterministic random source.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand exposes the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Events reports how many events have executed.
func (s *Sim) Events() uint64 { return s.events }

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// At schedules fn to run at absolute virtual time t; scheduling in the past
// panics, as that is always a model bug.
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.pq, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now; negative d panics.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("event: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Run executes events until the queue empties or the limit of executed
// events is reached (0 = no limit). It returns the number executed.
func (s *Sim) Run(limit uint64) uint64 {
	var n uint64
	for len(s.pq) > 0 {
		if limit > 0 && n >= limit {
			break
		}
		e := heap.Pop(&s.pq).(*event)
		s.now = e.at
		s.events++
		n++
		e.fn()
	}
	return n
}

// RunUntil executes events with timestamps <= deadline; later events remain
// queued and the clock advances to exactly deadline.
func (s *Sim) RunUntil(deadline time.Duration) {
	for len(s.pq) > 0 && s.pq[0].at <= deadline {
		e := heap.Pop(&s.pq).(*event)
		s.now = e.at
		s.events++
		e.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending reports how many events are queued.
func (s *Sim) Pending() int { return len(s.pq) }

// ---------------------------------------------------------------------------

// Station is a first-come-first-served queueing resource with c servers and
// a per-request service time: the model of the central JETS dispatcher (one
// server, per-message service cost) and of filesystem metadata servers.
type Station struct {
	sim     *Sim
	servers int
	busy    int
	queue   []stationReq

	// Busy time accounting for utilization reporting.
	busyTime   time.Duration
	lastChange time.Duration

	// MaxQueue tracks the high-water mark of the wait queue.
	MaxQueue int
}

type stationReq struct {
	service time.Duration
	done    func()
}

// NewStation creates a station with the given server count.
func NewStation(sim *Sim, servers int) *Station {
	if servers <= 0 {
		panic("event: station needs at least one server")
	}
	return &Station{sim: sim, servers: servers}
}

// Request enqueues work needing the given service time; done runs when the
// service completes.
func (st *Station) Request(service time.Duration, done func()) {
	if service < 0 {
		panic("event: negative service time")
	}
	if st.busy < st.servers {
		st.start(service, done)
		return
	}
	st.queue = append(st.queue, stationReq{service, done})
	if len(st.queue) > st.MaxQueue {
		st.MaxQueue = len(st.queue)
	}
}

func (st *Station) start(service time.Duration, done func()) {
	st.account()
	st.busy++
	st.sim.After(service, func() {
		st.account()
		st.busy--
		if len(st.queue) > 0 {
			next := st.queue[0]
			st.queue = st.queue[1:]
			st.start(next.service, next.done)
		}
		if done != nil {
			done()
		}
	})
}

func (st *Station) account() {
	dt := st.sim.Now() - st.lastChange
	st.busyTime += dt * time.Duration(st.busy) / time.Duration(st.servers)
	st.lastChange = st.sim.Now()
}

// BusyTime returns accumulated normalized busy time (virtual seconds a
// fully-busy station would accumulate).
func (st *Station) BusyTime() time.Duration {
	st.account()
	return st.busyTime
}

// QueueLen reports requests waiting (not in service).
func (st *Station) QueueLen() int { return len(st.queue) }

// InService reports requests currently being served.
func (st *Station) InService() int { return st.busy }

// ---------------------------------------------------------------------------

// Pool is a counting-token resource: acquire blocks (queues) until a token
// frees. It models bounded resources like worker slots.
type Pool struct {
	sim     *Sim
	tokens  int
	waiters []func()
}

// NewPool creates a pool with n tokens.
func NewPool(sim *Sim, n int) *Pool {
	if n < 0 {
		panic("event: negative pool size")
	}
	return &Pool{sim: sim, tokens: n}
}

// Acquire runs fn (immediately, this event) once a token is available.
func (p *Pool) Acquire(fn func()) {
	if p.tokens > 0 {
		p.tokens--
		fn()
		return
	}
	p.waiters = append(p.waiters, fn)
}

// Release returns a token, handing it to the oldest waiter if any.
func (p *Pool) Release() {
	if len(p.waiters) > 0 {
		next := p.waiters[0]
		p.waiters = p.waiters[1:]
		next()
		return
	}
	p.tokens++
}

// Available reports free tokens.
func (p *Pool) Available() int { return p.tokens }

// Waiting reports queued acquirers.
func (p *Pool) Waiting() int { return len(p.waiters) }

// Package event is a discrete-event simulation core with virtual time. It
// drives the paper-scale experiments (hundreds to thousands of Blue Gene/P
// nodes, multi-hour workloads) that cannot run as real processes — and,
// since the million-agent scenario work, workloads three orders of magnitude
// past the paper: 10⁶ pilot workers over multi-day virtual horizons.
//
// The engine is a classic event-queue design: callbacks scheduled at virtual
// timestamps, executed in nondecreasing time order, with FIFO tie-breaking
// for equal timestamps. Convenience types provide queueing resources
// (stations with service times) and token pools.
//
// The implementation is tuned for event throughput on large models:
//
//   - The pending-event queue is a flat slice-backed 4-ary min-heap of
//     pointer-free 16-byte keys (timestamp, tie-break sequence, payload
//     reference), with callbacks parked in a freelist arena beside it — no
//     per-event allocation, no interface boxing, no GC write barriers during
//     sift, and half the levels of a binary heap, so a million-entry queue
//     stays cache-friendly.
//   - Handler/arg callbacks (AtCall, Station.RequestCall, Pool.AcquireCall)
//     let steady-state model code schedule work with zero closure
//     allocations; the fn func() forms remain for cold paths.
//   - Station and Pool wait queues are growable ring buffers, and Station
//     in-service completions run through a freelist of slots instead of a
//     fresh closure per request.
//
// internal/event/legacy preserves the pre-optimization core; the
// differential tests in this package pin execution order (including FIFO
// tie-breaking) against it.
package event

import (
	"fmt"
	"math/rand"
	"slices"
	"time"
)

// Handler is the allocation-free callback form: the simulator invokes
// Fire(arg) when the event executes. Model types implement Handler once and
// pass themselves with an integer argument (a worker index, a job slot)
// instead of allocating a closure per scheduled event.
type Handler interface {
	Fire(arg int)
}

// eventKey is one scheduled event's heap entry: timestamp plus the FIFO
// tie-break sequence and payload-arena reference packed into one word
// (seq<<refBits | ref). Packing keeps keys pointer-free and 16 bytes, so a
// 4-ary node's four children fill exactly one cache line and sift operations
// move small scalars with no GC write barriers. Comparing the packed word
// compares seq first (high bits); sequences are unique, so the ref bits never
// influence ordering.
type eventKey struct {
	at time.Duration
	sr uint64
}

// refBits bounds concurrently pending events to 2^26 (67M — a 10⁶-worker
// model keeps a few million in flight) and total events per run to 2^38.
const refBits = 26

func (k eventKey) ref() int32 { return int32(k.sr & (1<<refBits - 1)) }

// payload is an event's callback, held in a freelist arena beside the heap.
// Exactly one of fn and h is set; next links free slots.
type payload struct {
	fn   func()
	h    Handler
	arg  int
	next int32
}

// minCalBuckets/maxCalBuckets bound the calendar window's bucket count,
// which tracks the pending-event population (power of two) so occupancy
// stays at a few events per bucket from paper-scale runs to million-worker
// sweeps. The window spans nbuckets x width, with width adapted each epoch.
const (
	minCalBuckets = 256
	maxCalBuckets = 1 << 20
)

// Sim is one simulation instance. It is not safe for concurrent use: all
// model code runs inside event callbacks on a single goroutine.
//
// The pending queue is two-tier. A calendar window of calBuckets buckets
// holds near-horizon events: scheduling appends to a bucket unsorted in
// O(1), and each bucket is sorted once when the clock reaches it. Events
// beyond the window go to the 4-ary far heap and migrate into the calendar
// at epoch changes. Short-delay events — the bulk of a scheduling model's
// traffic — therefore never pay a log(pending) heap walk.
type Sim struct {
	now    time.Duration
	heap   []eventKey // far tier: events beyond the calendar window
	pay    []payload
	free   int32 // head of payload freelist, -1 when empty
	seq    uint64
	rng    *rand.Rand
	events uint64
	npend  int

	// Calendar window state (valid while calActive).
	calActive bool
	base      time.Duration // window start
	width     time.Duration // bucket width
	curBucket int           // bucket currently draining
	cur       []eventKey    // sorted contents of curBucket
	curIdx    int           // drain position in cur
	buckets   [][]eventKey
	// nearCnt/farCnt classify enqueues while the window is active (landed in
	// window vs overflowed to the heap); refill adapts width from the ratio.
	nearCnt, farCnt int
	// maxPend is the high-water pending count since the last refill: the
	// bucket array is sized from it (with hysteresis), not from the pending
	// count at refill time, which is only the inter-epoch overflow.
	maxPend int
}

// New creates a simulator with a deterministic random source.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed)), free: -1, width: 64 * time.Microsecond}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand exposes the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Events reports how many events have executed.
func (s *Sim) Events() uint64 { return s.events }

// Pending reports how many events are queued.
func (s *Sim) Pending() int { return s.npend }

// keyLess orders keys by (timestamp, sequence). It is written without
// short-circuit control flow so the compiler lowers it to flag materialization
// and conditional moves: heap sift compares are data-dependent coin flips, and
// a branchy compare pays a misprediction on nearly every level.
func keyLess(a, b *eventKey) bool {
	lt := a.at < b.at
	eq := a.at == b.at
	sl := a.sr < b.sr
	return lt || (eq && sl)
}

// alloc stores a callback in the payload arena and returns its reference.
func (s *Sim) alloc(fn func(), h Handler, arg int) int32 {
	ref := s.free
	if ref < 0 {
		if len(s.pay) >= 1<<refBits {
			panic("event: too many pending events")
		}
		s.pay = append(s.pay, payload{fn: fn, h: h, arg: arg})
		return int32(len(s.pay) - 1)
	}
	s.free = s.pay[ref].next
	s.pay[ref] = payload{fn: fn, h: h, arg: arg}
	return ref
}

// key builds the next event key for the given payload reference.
func (s *Sim) key(at time.Duration, ref int32) eventKey {
	s.seq++
	if s.seq >= 1<<(64-refBits) {
		panic("event: sequence number overflow")
	}
	return eventKey{at: at, sr: s.seq<<refBits | uint64(ref)}
}

// heapPush inserts a key into the far heap, sifting up through the 4-ary
// heap with a hole (parents are copied down once instead of swapped).
func (s *Sim) heapPush(e eventKey) {
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !keyLess(&e, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	s.heap = h
}

// heapPop removes and returns the far heap's minimum key.
func (s *Sim) heapPop() eventKey {
	h := s.heap
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	s.heap = h
	if n > 0 {
		siftDown(h, 0)
	}
	return root
}

// enqueue routes a key to the calendar window (near events) or the far heap.
func (s *Sim) enqueue(e eventKey) {
	s.npend++
	if s.npend > s.maxPend {
		s.maxPend = s.npend
	}
	if s.calActive {
		idx := int64(e.at-s.base) / int64(s.width)
		if idx < int64(len(s.buckets)) {
			s.nearCnt++
			// An index at or before the draining bucket (including negative
			// ones, for events landing before the window base) sorts into the
			// live drain slice; later buckets stay unsorted until reached.
			if idx > int64(s.curBucket) {
				s.buckets[idx] = append(s.buckets[idx], e)
			} else {
				s.curInsert(e)
			}
			return
		}
		s.farCnt++
	}
	s.heapPush(e)
}

// curInsert places e into the sorted undrained tail of the current bucket.
func (s *Sim) curInsert(e eventKey) {
	lo, hi := s.curIdx, len(s.cur)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keyLess(&s.cur[mid], &e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.cur = append(s.cur, eventKey{})
	copy(s.cur[lo+1:], s.cur[lo:])
	s.cur[lo] = e
}

// sortKeys orders a bucket by (timestamp, sequence): insertion sort for the
// common few-event bucket, the generic sort when adaptation transients leave
// a bucket overfull (insertion sort would go quadratic there).
func sortKeys(keys []eventKey) {
	if len(keys) > 32 {
		slices.SortFunc(keys, func(a, b eventKey) int {
			if keyLess(&a, &b) {
				return -1
			}
			return 1
		})
		return
	}
	for i := 1; i < len(keys); i++ {
		e := keys[i]
		j := i - 1
		for j >= 0 && keyLess(&e, &keys[j]) {
			keys[j+1] = keys[j]
			j--
		}
		keys[j+1] = e
	}
}

// advance makes the next pending event the head of cur, rotating through
// calendar buckets and refilling from the far heap at epoch boundaries. The
// caller guarantees npend > 0.
func (s *Sim) advance() {
	for {
		if s.curIdx < len(s.cur) {
			return
		}
		if s.calActive {
			b := s.curBucket + 1
			for b < len(s.buckets) && len(s.buckets[b]) == 0 {
				b++
			}
			if b < len(s.buckets) {
				s.curBucket = b
				s.cur, s.buckets[b] = s.buckets[b], s.cur[:0]
				s.curIdx = 0
				if len(s.cur) > 64 && s.width > 1 && s.retune() {
					continue
				}
				sortKeys(s.cur)
				continue
			}
			s.calActive = false
		}
		s.refill()
	}
}

// retune reacts to an overfull bucket — the width guess was too coarse for
// the event density, which would make drains quadratic — by recomputing the
// width from the observed density and dumping the calendar back into the far
// heap (linear append + heapify) for an immediate refill at the right
// resolution. Returns false for an untunable tie cluster (the bucket spans
// almost no time), which is drained as-is instead.
func (s *Sim) retune() bool {
	lo, hi := s.cur[0].at, s.cur[0].at
	for _, e := range s.cur[1:] {
		lt := e.at < lo
		gt := e.at > hi
		if lt {
			lo = e.at
		}
		if gt {
			hi = e.at
		}
	}
	if hi-lo < time.Duration(len(s.cur)/64) {
		return false
	}
	// Target a few events per bucket at the density this bucket revealed.
	w := (hi - lo) * 4 / time.Duration(len(s.cur))
	if w <= 0 {
		w = 1
	}
	if w >= s.width {
		w = s.width / 2
	}
	s.width = w
	h := s.heap
	h = append(h, s.cur...)
	s.cur = s.cur[:0]
	for b := s.curBucket + 1; b < len(s.buckets); b++ {
		h = append(h, s.buckets[b]...)
		s.buckets[b] = s.buckets[b][:0]
	}
	s.heap = h
	for i := (len(h) - 2) >> 2; i >= 0; i-- {
		siftDown(h, i)
	}
	s.calActive = false
	s.nearCnt, s.farCnt = 0, 0
	return true
}

// refill opens a new calendar epoch at the far heap's minimum: it sizes the
// bucket array to the pending population, adapts the bucket width toward a
// few events per bucket, and migrates every in-window event out of the heap
// with one linear partition pass (re-heapifying the remainder) instead of
// log-cost pops.
func (s *Sim) refill() {
	want := minCalBuckets
	for want < s.maxPend && want < maxCalBuckets {
		want <<= 1
	}
	s.maxPend = s.npend
	// Hysteresis: resizing discards every bucket's accumulated capacity, so
	// only grow, or shrink once the population falls well below the array.
	if want > len(s.buckets) || want < len(s.buckets)/4 {
		s.buckets = make([][]eventKey, want)
	}
	nb := len(s.buckets)
	// Adapt width so the window catches most scheduling delays: grow while
	// more than a fifth of in-epoch enqueues overflow to the heap, shrink
	// when nearly none do (occupancy then drifts toward ~1 per bucket, since
	// the bucket count tracks the pending population). Outlier far-future
	// events stay in the heap, which is exactly what the far tier is for.
	if tot := s.nearCnt + s.farCnt; tot > 64 {
		if s.farCnt > tot/5 {
			if s.width < 1<<40 {
				s.width *= 2
			}
		} else if s.farCnt < tot/50 {
			s.width /= 2
			if s.width <= 0 {
				s.width = 1
			}
		}
	}
	s.nearCnt, s.farCnt = 0, 0
	s.base = s.heap[0].at
	s.curBucket = -1
	s.cur = s.cur[:0]
	s.curIdx = 0
	horizon := s.base + s.width*time.Duration(nb)
	if horizon < s.base { // overflow far beyond any model horizon
		horizon = 1<<63 - 1
	}
	keep := s.heap[:0]
	for _, e := range s.heap {
		if e.at < horizon {
			idx := int64(e.at-s.base) / int64(s.width)
			s.buckets[idx] = append(s.buckets[idx], e)
		} else {
			keep = append(keep, e)
		}
	}
	s.heap = keep
	for i := (len(keep) - 2) >> 2; i >= 0; i-- {
		siftDown(keep, i)
	}
	s.calActive = true
}

// siftDown restores the 4-ary heap property at index i.
func siftDown(h []eventKey, i int) {
	n := len(h)
	e := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if keyLess(&h[j], &h[m]) {
				m = j
			}
		}
		if !keyLess(&h[m], &e) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = e
}

// next removes and returns the minimum pending key; the caller guarantees
// npend > 0.
func (s *Sim) next() eventKey {
	if s.curIdx >= len(s.cur) {
		s.advance()
	}
	e := s.cur[s.curIdx]
	s.curIdx++
	s.npend--
	return e
}

// peekAt reports the minimum pending timestamp; the caller guarantees
// npend > 0. It may rotate the calendar cursor but executes nothing.
func (s *Sim) peekAt() time.Duration {
	if s.curIdx >= len(s.cur) {
		s.advance()
	}
	return s.cur[s.curIdx].at
}

// fire releases the popped key's payload slot and invokes its callback. The
// slot is freed before the callback runs, so callbacks scheduling new events
// reuse it immediately.
func (s *Sim) fire(ref int32) {
	p := &s.pay[ref]
	fn, h, arg := p.fn, p.h, p.arg
	p.fn, p.h = nil, nil
	p.next = s.free
	s.free = ref
	if h != nil {
		h.Fire(arg)
	} else {
		fn()
	}
}

// At schedules fn to run at absolute virtual time t; scheduling in the past
// panics, as that is always a model bug.
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", t, s.now))
	}
	s.enqueue(s.key(t, s.alloc(fn, nil, 0)))
}

// AtCall schedules h.Fire(arg) at absolute virtual time t without allocating
// a closure; scheduling in the past panics.
func (s *Sim) AtCall(t time.Duration, h Handler, arg int) {
	if t < s.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", t, s.now))
	}
	s.enqueue(s.key(t, s.alloc(nil, h, arg)))
}

// After schedules fn to run d from now; negative d panics.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("event: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// AfterCall schedules h.Fire(arg) to run d from now; negative d panics.
func (s *Sim) AfterCall(d time.Duration, h Handler, arg int) {
	if d < 0 {
		panic(fmt.Sprintf("event: negative delay %v", d))
	}
	s.AtCall(s.now+d, h, arg)
}

// Run executes events until the queue empties or the limit of executed
// events is reached (0 = no limit). It returns the number executed.
func (s *Sim) Run(limit uint64) uint64 {
	var n uint64
	for s.npend > 0 {
		if limit > 0 && n >= limit {
			break
		}
		e := s.next()
		s.now = e.at
		s.events++
		n++
		s.fire(e.ref())
	}
	return n
}

// RunUntil executes events with timestamps <= deadline; later events remain
// queued and the clock advances to exactly deadline.
func (s *Sim) RunUntil(deadline time.Duration) {
	for s.npend > 0 && s.peekAt() <= deadline {
		e := s.next()
		s.now = e.at
		s.events++
		s.fire(e.ref())
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// ---------------------------------------------------------------------------

// Ring is a growable FIFO ring buffer. The zero value is ready to use. It
// replaces the append-and-reslice queue idiom, which leaks capacity at the
// head and copies on growth, with O(1) amortized push/pop and stable memory.
type Ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Len reports queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Push appends v at the tail.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Pop removes and returns the head element; it panics on an empty ring.
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("event: pop of empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// Front returns a pointer to the head element without removing it; it panics
// on an empty ring. The pointer is invalidated by the next Push or Pop.
func (r *Ring[T]) Front() *T {
	if r.n == 0 {
		panic("event: front of empty ring")
	}
	return &r.buf[r.head]
}

// grow doubles capacity (power of two, so indexing stays a mask) and
// linearizes the live elements to the front.
func (r *Ring[T]) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]T, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// ---------------------------------------------------------------------------

// Station is a first-come-first-served queueing resource with c servers and
// a per-request service time: the model of the central JETS dispatcher (one
// server, per-message service cost) and of filesystem metadata servers.
type Station struct {
	sim     *Sim
	servers int
	busy    int
	queue   Ring[stationReq]
	// slots holds in-service completions on a freelist so a request in
	// service costs no allocation; free links the free slots.
	slots []stationSlot
	free  int

	requested uint64
	served    uint64

	// Busy time accounting for utilization reporting.
	busyTime   time.Duration
	lastChange time.Duration

	// MaxQueue tracks the high-water mark of the wait queue.
	MaxQueue int
}

type stationReq struct {
	service time.Duration
	done    func()
	h       Handler
	arg     int
}

type stationSlot struct {
	done func()
	h    Handler
	arg  int
	next int
}

// NewStation creates a station with the given server count.
func NewStation(sim *Sim, servers int) *Station {
	if servers <= 0 {
		panic("event: station needs at least one server")
	}
	return &Station{sim: sim, servers: servers, free: -1}
}

// Request enqueues work needing the given service time; done runs when the
// service completes.
func (st *Station) Request(service time.Duration, done func()) {
	st.request(stationReq{service: service, done: done})
}

// RequestCall is Request with a Handler/arg completion instead of a closure.
func (st *Station) RequestCall(service time.Duration, h Handler, arg int) {
	st.request(stationReq{service: service, h: h, arg: arg})
}

func (st *Station) request(r stationReq) {
	if r.service < 0 {
		panic("event: negative service time")
	}
	st.requested++
	if st.busy < st.servers {
		st.start(r)
		return
	}
	st.queue.Push(r)
	if st.queue.Len() > st.MaxQueue {
		st.MaxQueue = st.queue.Len()
	}
}

func (st *Station) start(r stationReq) {
	st.account()
	st.busy++
	slot := st.free
	if slot < 0 {
		st.slots = append(st.slots, stationSlot{})
		slot = len(st.slots) - 1
	} else {
		st.free = st.slots[slot].next
	}
	st.slots[slot] = stationSlot{done: r.done, h: r.h, arg: r.arg, next: -1}
	st.sim.AfterCall(r.service, st, slot)
}

// Fire completes the service occupying the given slot: accounting, freeing
// the server (starting the next queued request, as the legacy core did,
// before the completion callback runs), then the callback.
func (st *Station) Fire(slot int) {
	sl := &st.slots[slot]
	done, h, arg := sl.done, sl.h, sl.arg
	sl.done, sl.h = nil, nil
	sl.next = st.free
	st.free = slot
	st.account()
	st.busy--
	st.served++
	if st.queue.Len() > 0 {
		st.start(st.queue.Pop())
	}
	if done != nil {
		done()
	} else if h != nil {
		h.Fire(arg)
	}
}

// account accumulates busy time in server-weighted units (dt x busy servers);
// BusyTime divides by the server count on read, keeping integer division out
// of the twice-per-service hot path.
func (st *Station) account() {
	dt := st.sim.Now() - st.lastChange
	st.busyTime += dt * time.Duration(st.busy)
	st.lastChange = st.sim.Now()
}

// BusyTime returns accumulated normalized busy time (virtual seconds a
// fully-busy station would accumulate).
func (st *Station) BusyTime() time.Duration {
	st.account()
	return st.busyTime / time.Duration(st.servers)
}

// QueueLen reports requests waiting (not in service).
func (st *Station) QueueLen() int { return st.queue.Len() }

// InService reports requests currently being served.
func (st *Station) InService() int { return st.busy }

// Requested reports requests ever enqueued (the conservation invariant is
// Requested == Served + QueueLen + InService at every instant).
func (st *Station) Requested() uint64 { return st.requested }

// Served reports completed services.
func (st *Station) Served() uint64 { return st.served }

// ---------------------------------------------------------------------------

// Pool is a counting-token resource: acquire blocks (queues) until a token
// frees. It models bounded resources like worker slots.
type Pool struct {
	tokens  int
	waiters Ring[poolWaiter]
}

type poolWaiter struct {
	fn  func()
	h   Handler
	arg int
}

// NewPool creates a pool with n tokens.
func NewPool(sim *Sim, n int) *Pool {
	if n < 0 {
		panic("event: negative pool size")
	}
	_ = sim // kept for API symmetry with NewStation
	return &Pool{tokens: n}
}

// Acquire runs fn (immediately, this event) once a token is available.
func (p *Pool) Acquire(fn func()) {
	if p.tokens > 0 {
		p.tokens--
		fn()
		return
	}
	p.waiters.Push(poolWaiter{fn: fn})
}

// AcquireCall is Acquire with a Handler/arg callback instead of a closure.
func (p *Pool) AcquireCall(h Handler, arg int) {
	if p.tokens > 0 {
		p.tokens--
		h.Fire(arg)
		return
	}
	p.waiters.Push(poolWaiter{h: h, arg: arg})
}

// Release returns a token, handing it to the oldest waiter if any.
func (p *Pool) Release() {
	if p.waiters.Len() > 0 {
		w := p.waiters.Pop()
		if w.fn != nil {
			w.fn()
		} else {
			w.h.Fire(w.arg)
		}
		return
	}
	p.tokens++
}

// Available reports free tokens.
func (p *Pool) Available() int { return p.tokens }

// Waiting reports queued acquirers.
func (p *Pool) Waiting() int { return p.waiters.Len() }

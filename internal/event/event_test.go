package event

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(3*time.Second, func() { order = append(order, 3) })
	s.At(1*time.Second, func() { order = append(order, 1) })
	s.At(2*time.Second, func() { order = append(order, 2) })
	s.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order=%v", order)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("now=%v", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var hits []time.Duration
	s.At(time.Second, func() {
		s.After(500*time.Millisecond, func() {
			hits = append(hits, s.Now())
		})
	})
	s.Run(0)
	if len(hits) != 1 || hits[0] != 1500*time.Millisecond {
		t.Fatalf("hits=%v", hits)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(0, func() {})
	})
	s.Run(0)
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	s.After(-time.Second, func() {})
}

func TestRunLimit(t *testing.T) {
	s := New(1)
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		s.After(time.Millisecond, reschedule)
	}
	s.After(0, reschedule)
	n := s.Run(100)
	if n != 100 || count != 100 {
		t.Fatalf("n=%d count=%d", n, count)
	}
	if s.Pending() == 0 {
		t.Fatal("limit should leave events pending")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		d := d * time.Second
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2500 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired=%v", fired)
	}
	if s.Now() != 2500*time.Millisecond {
		t.Fatalf("now=%v", s.Now())
	}
	s.RunUntil(10 * time.Second)
	if len(fired) != 4 {
		t.Fatalf("fired=%v", fired)
	}
}

func TestStationSingleServer(t *testing.T) {
	s := New(1)
	st := NewStation(s, 1)
	var done []time.Duration
	// Three requests at t=0 with 1s service each: complete at 1, 2, 3.
	for i := 0; i < 3; i++ {
		st.Request(time.Second, func() { done = append(done, s.Now()) })
	}
	s.Run(0)
	want := []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second}
	if len(done) != 3 {
		t.Fatalf("done=%v", done)
	}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done=%v want %v", done, want)
		}
	}
	if st.MaxQueue != 2 {
		t.Fatalf("maxqueue=%d", st.MaxQueue)
	}
	if bt := st.BusyTime(); bt != 3*time.Second {
		t.Fatalf("busy=%v", bt)
	}
}

func TestStationMultiServer(t *testing.T) {
	s := New(1)
	st := NewStation(s, 2)
	var last time.Duration
	for i := 0; i < 4; i++ {
		st.Request(time.Second, func() { last = s.Now() })
	}
	s.Run(0)
	if last != 2*time.Second {
		t.Fatalf("4 reqs on 2 servers should finish at 2s, got %v", last)
	}
}

func TestStationPanics(t *testing.T) {
	s := New(1)
	func() {
		defer func() { recover() }()
		NewStation(s, 0)
		t.Error("zero servers accepted")
	}()
	st := NewStation(s, 1)
	defer func() {
		if recover() == nil {
			t.Error("negative service accepted")
		}
	}()
	st.Request(-time.Second, nil)
}

func TestPool(t *testing.T) {
	s := New(1)
	p := NewPool(s, 2)
	got := 0
	for i := 0; i < 5; i++ {
		p.Acquire(func() { got++ })
	}
	if got != 2 || p.Waiting() != 3 {
		t.Fatalf("got=%d waiting=%d", got, p.Waiting())
	}
	p.Release()
	if got != 3 {
		t.Fatalf("release did not hand off: got=%d", got)
	}
	p.Release()
	p.Release()
	if got != 5 || p.Waiting() != 0 {
		t.Fatalf("got=%d waiting=%d", got, p.Waiting())
	}
	p.Release()
	if p.Available() != 1 {
		t.Fatalf("avail=%d", p.Available())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		s := New(42)
		var out []time.Duration
		for i := 0; i < 50; i++ {
			d := time.Duration(s.Rand().Intn(1000)) * time.Millisecond
			s.At(d, func() { out = append(out, s.Now()) })
		}
		s.Run(0)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: events always execute in nondecreasing time order.
func TestMonotonicTimeProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		ok := true
		last := time.Duration(-1)
		for _, d := range delays {
			s.At(time.Duration(d)*time.Millisecond, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a single-server station serializes: total completion time of n
// identical requests equals n * service.
func TestStationSerializationProperty(t *testing.T) {
	f := func(nRaw, svcRaw uint8) bool {
		n := int(nRaw%20) + 1
		svc := time.Duration(int(svcRaw)+1) * time.Millisecond
		s := New(3)
		st := NewStation(s, 1)
		var last time.Duration
		for i := 0; i < n; i++ {
			st.Request(svc, func() { last = s.Now() })
		}
		s.Run(0)
		return last == time.Duration(n)*svc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

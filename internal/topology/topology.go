// Package topology models the interconnects of the paper's machines for the
// discrete-event simulator: the Blue Gene/P 3-D torus (carrying both the
// vendor-native DCMF traffic and the ZeptoOS IP-over-torus sockets JETS
// uses) and flat-switched Ethernet clusters (Breadboard, Eureka).
//
// The latency model is the standard linear one: latency + bytes/bandwidth,
// with per-hop cost on the torus. Parameters are calibrated so the
// native-vs-sockets comparison reproduces the Fig. 8 shape: TCP adds large
// fixed per-message overhead; bandwidth is mildly reduced.
package topology

import (
	"fmt"
	"time"
)

// Network computes message transfer times between nodes.
type Network interface {
	// Latency returns the one-way delivery time of a message of size bytes
	// between nodes a and b.
	Latency(a, b NodeID, bytes int) time.Duration
	// Name identifies the model in reports.
	Name() string
}

// NodeID identifies a node in a network.
type NodeID int

// Torus3D is a 3-dimensional torus (Blue Gene/P: 8x8x16 per rack).
type Torus3D struct {
	X, Y, Z int
	// PerHop is the per-hop router latency.
	PerHop time.Duration
	// Base is the fixed software overhead per message (injection +
	// reception).
	Base time.Duration
	// BytesPerSec is the link bandwidth.
	BytesPerSec float64
	name        string
}

// NewTorus3D builds a torus network model.
func NewTorus3D(name string, x, y, z int, base, perHop time.Duration, bytesPerSec float64) (*Torus3D, error) {
	if x <= 0 || y <= 0 || z <= 0 {
		return nil, fmt.Errorf("topology: invalid torus dims %dx%dx%d", x, y, z)
	}
	if bytesPerSec <= 0 {
		return nil, fmt.Errorf("topology: invalid bandwidth %v", bytesPerSec)
	}
	return &Torus3D{X: x, Y: y, Z: z, PerHop: perHop, Base: base, BytesPerSec: bytesPerSec, name: name}, nil
}

// Name implements Network.
func (t *Torus3D) Name() string { return t.name }

// Nodes returns the node count.
func (t *Torus3D) Nodes() int { return t.X * t.Y * t.Z }

// Coord maps a node ID to torus coordinates.
func (t *Torus3D) Coord(n NodeID) (x, y, z int) {
	i := int(n)
	x = i % t.X
	y = (i / t.X) % t.Y
	z = i / (t.X * t.Y)
	return
}

// CoordSlice returns the coordinates as a slice, in the form workers report
// at registration.
func (t *Torus3D) CoordSlice(n NodeID) []int {
	x, y, z := t.Coord(n)
	return []int{x, y, z}
}

// wrapDist is the distance along one ring dimension.
func wrapDist(a, b, size int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if w := size - d; w < d {
		d = w
	}
	return d
}

// Hops returns the minimal routed hop count between two nodes.
func (t *Torus3D) Hops(a, b NodeID) int {
	ax, ay, az := t.Coord(a)
	bx, by, bz := t.Coord(b)
	return wrapDist(ax, bx, t.X) + wrapDist(ay, by, t.Y) + wrapDist(az, bz, t.Z)
}

// Latency implements Network.
func (t *Torus3D) Latency(a, b NodeID, bytes int) time.Duration {
	if a == b {
		return t.Base / 2 // loopback: software overhead only
	}
	hops := t.Hops(a, b)
	transfer := time.Duration(float64(bytes) / t.BytesPerSec * float64(time.Second))
	return t.Base + time.Duration(hops)*t.PerHop + transfer
}

// Ethernet is a flat switched network: constant base latency plus
// serialization time, independent of placement.
type Ethernet struct {
	Base        time.Duration
	BytesPerSec float64
	name        string
}

// NewEthernet builds a switched-Ethernet model.
func NewEthernet(name string, base time.Duration, bytesPerSec float64) (*Ethernet, error) {
	if bytesPerSec <= 0 {
		return nil, fmt.Errorf("topology: invalid bandwidth %v", bytesPerSec)
	}
	return &Ethernet{Base: base, BytesPerSec: bytesPerSec, name: name}, nil
}

// Name implements Network.
func (e *Ethernet) Name() string { return e.name }

// Latency implements Network.
func (e *Ethernet) Latency(a, b NodeID, bytes int) time.Duration {
	transfer := time.Duration(float64(bytes) / e.BytesPerSec * float64(time.Second))
	if a == b {
		return e.Base/10 + transfer
	}
	return e.Base + transfer
}

// ---------------------------------------------------------------------------
// Calibrated instances (paper hardware).

// BGPNative models the vendor DCMF stack on the BG/P torus: ~3 us one-way
// small-message latency, ~370 MB/s effective per-link bandwidth.
func BGPNative(x, y, z int) *Torus3D {
	t, err := NewTorus3D("bgp-native", x, y, z, 2500*time.Nanosecond, 100*time.Nanosecond, 370e6)
	if err != nil {
		panic(err)
	}
	return t
}

// BGPSockets models MPICH2 over the ZeptoOS IP-over-torus device: TCP adds
// roughly two orders of magnitude of fixed per-message cost (~250 us) and
// reduces attainable bandwidth (~200 MB/s), the penalty Fig. 8 quantifies.
func BGPSockets(x, y, z int) *Torus3D {
	t, err := NewTorus3D("bgp-sockets", x, y, z, 250*time.Microsecond, 150*time.Nanosecond, 200e6)
	if err != nil {
		panic(err)
	}
	return t
}

// ClusterEthernet models the Breadboard/Eureka gigabit fabric: ~60 us TCP
// latency, ~110 MB/s.
func ClusterEthernet() *Ethernet {
	e, err := NewEthernet("cluster-eth", 60*time.Microsecond, 110e6)
	if err != nil {
		panic(err)
	}
	return e
}

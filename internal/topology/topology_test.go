package topology

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTorusCoordRoundTrip(t *testing.T) {
	tor := BGPNative(8, 8, 16)
	if tor.Nodes() != 1024 {
		t.Fatalf("nodes=%d", tor.Nodes())
	}
	for _, n := range []NodeID{0, 1, 7, 8, 63, 64, 1023} {
		x, y, z := tor.Coord(n)
		back := NodeID(x + y*tor.X + z*tor.X*tor.Y)
		if back != n {
			t.Errorf("node %d -> (%d,%d,%d) -> %d", n, x, y, z, back)
		}
	}
}

func TestCoordSlice(t *testing.T) {
	tor := BGPNative(8, 8, 16)
	c := tor.CoordSlice(9)
	if len(c) != 3 || c[0] != 1 || c[1] != 1 || c[2] != 0 {
		t.Fatalf("coord=%v", c)
	}
}

func TestWrapDist(t *testing.T) {
	if d := wrapDist(0, 7, 8); d != 1 {
		t.Errorf("wrap 0-7 in ring 8: %d", d)
	}
	if d := wrapDist(2, 5, 8); d != 3 {
		t.Errorf("2-5: %d", d)
	}
	if d := wrapDist(3, 3, 8); d != 0 {
		t.Errorf("same: %d", d)
	}
}

func TestHopsSymmetric(t *testing.T) {
	tor := BGPNative(8, 8, 16)
	f := func(a, b uint16) bool {
		na := NodeID(int(a) % tor.Nodes())
		nb := NodeID(int(b) % tor.Nodes())
		return tor.Hops(na, nb) == tor.Hops(nb, na)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	tor := BGPNative(4, 4, 4)
	f := func(a, b, c uint8) bool {
		na := NodeID(int(a) % tor.Nodes())
		nb := NodeID(int(b) % tor.Nodes())
		nc := NodeID(int(c) % tor.Nodes())
		return tor.Hops(na, nc) <= tor.Hops(na, nb)+tor.Hops(nb, nc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyMonotoneInSize(t *testing.T) {
	nets := []Network{BGPNative(8, 8, 16), BGPSockets(8, 8, 16), ClusterEthernet()}
	for _, n := range nets {
		prev := time.Duration(0)
		for _, size := range []int{1, 64, 4096, 1 << 20} {
			l := n.Latency(0, 5, size)
			if l < prev {
				t.Errorf("%s: latency decreased at size %d", n.Name(), size)
			}
			prev = l
		}
	}
}

func TestNativeVsSocketsShape(t *testing.T) {
	// Fig. 8 shape: sockets mode is dominated by fixed overhead for small
	// messages (orders of magnitude slower) but within ~2x for large ones.
	native := BGPNative(8, 8, 16)
	sockets := BGPSockets(8, 8, 16)
	small := float64(sockets.Latency(0, 1, 1)) / float64(native.Latency(0, 1, 1))
	if small < 20 {
		t.Errorf("small-message sockets/native ratio %.1f; want >> 1", small)
	}
	big := float64(sockets.Latency(0, 1, 4<<20)) / float64(native.Latency(0, 1, 4<<20))
	if big > 3 || big < 1 {
		t.Errorf("large-message ratio %.2f; want mildly > 1", big)
	}
}

func TestLoopbackCheaper(t *testing.T) {
	for _, n := range []Network{BGPSockets(8, 8, 16), ClusterEthernet()} {
		if n.Latency(3, 3, 100) >= n.Latency(3, 4, 100) {
			t.Errorf("%s: self-latency not cheaper", n.Name())
		}
	}
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewTorus3D("x", 0, 8, 8, 0, 0, 1e9); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := NewTorus3D("x", 8, 8, 8, 0, 0, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := NewEthernet("x", 0, -5); err == nil {
		t.Error("negative bandwidth accepted")
	}
}

func TestEthernetPlacementIndependent(t *testing.T) {
	e := ClusterEthernet()
	if e.Latency(0, 1, 1000) != e.Latency(5, 99, 1000) {
		t.Error("ethernet latency should not depend on placement")
	}
}

// Property: torus hop count bounded by sum of half-dimensions.
func TestHopsBoundProperty(t *testing.T) {
	tor := BGPNative(8, 8, 16)
	maxHops := 8/2 + 8/2 + 16/2
	f := func(a, b uint16) bool {
		na := NodeID(int(a) % tor.Nodes())
		nb := NodeID(int(b) % tor.Nodes())
		h := tor.Hops(na, nb)
		return h >= 0 && h <= maxHops
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package namd

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleConf = `
# NMA benchmark segment
structure       nma.psf
coordinates     nma.pdb
parameters      par_all27.prm
temperature     310
numsteps        10
numatoms        44992
seed            7919
outputname      out/nma-seg1
`

func TestParseConf(t *testing.T) {
	c, err := ParseConf(strings.NewReader(sampleConf))
	if err != nil {
		t.Fatal(err)
	}
	if c.Config.Atoms != 44992 || c.Config.Steps != 10 ||
		c.Config.Temperature != 310 || c.Config.Seed != 7919 {
		t.Fatalf("config %+v", c.Config)
	}
	if c.Extra["structure"] != "nma.psf" || c.Extra["outputname"] != "out/nma-seg1" {
		t.Fatalf("extra %v", c.Extra)
	}
	files := c.InputFiles()
	if len(files) != 3 { // structure, coordinates, parameters
		t.Fatalf("input files %v", files)
	}
}

func TestParseConfDefaults(t *testing.T) {
	c, err := ParseConf(strings.NewReader("temperature 305\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Config.Atoms != NMAAtoms || c.Config.Steps != 10 {
		t.Fatalf("defaults not applied: %+v", c.Config)
	}
}

func TestParseConfErrors(t *testing.T) {
	for _, in := range []string{
		"numsteps\n",         // keyword without value
		"numatoms notanum\n", // bad int
		"temperature hot\n",  // bad float
		"numatoms 0\n",       // fails validation
		"temperature -4\n",   // fails validation
	} {
		if _, err := ParseConf(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestConfRoundTrip(t *testing.T) {
	c1, err := ParseConf(strings.NewReader(sampleConf))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteConf(&buf, c1); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseConf(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if c2.Config != c1.Config {
		t.Fatalf("config drift: %+v vs %+v", c1.Config, c2.Config)
	}
	for k, v := range c1.Extra {
		if c2.Extra[k] != v {
			t.Fatalf("extra %q drift: %q vs %q", k, c1.Extra[k], v)
		}
	}
}

func TestConfFlagInApp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.conf")
	if err := os.WriteFile(path, []byte("numatoms 128\nnumsteps 3\ntemperature 320\nseed 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, _, _, err := parseArgs([]string{"-scale", "0.5", "-conf", path})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Atoms != 128 || cfg.Steps != 3 || cfg.Temperature != 320 {
		t.Fatalf("conf not applied: %+v", cfg)
	}
	// -scale before -conf survives (conf has no workscale).
	if cfg.WorkScale != 0.5 {
		t.Fatalf("workscale %v", cfg.WorkScale)
	}
	// Flags after -conf override it.
	cfg, _, _, err = parseArgs([]string{"-conf", path, "-steps", "9"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Steps != 9 || cfg.Atoms != 128 {
		t.Fatalf("override failed: %+v", cfg)
	}
	if _, _, _, err := parseArgs([]string{"-conf", filepath.Join(dir, "missing.conf")}); err == nil {
		t.Fatal("missing conf accepted")
	}
}

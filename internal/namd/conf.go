package namd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// NAMD-style configuration files: whitespace-separated keyword/value lines
// with '#' comments, as the real application consumes ("structure nma.psf",
// "temperature 300", ...). The REM workflows of the paper drive NAMD by
// rewriting these files between segments.

// Conf is a parsed configuration: the simulation parameters this engine
// understands plus every other keyword preserved verbatim (file references
// like structure/coordinates/parameters, which the paper's 5-input-file I/O
// profile comes from).
type Conf struct {
	Config Config
	// Extra holds keywords not interpreted by the engine, e.g. structure,
	// coordinates, parameters, outputname.
	Extra map[string]string
}

// ParseConf reads a NAMD-style configuration.
func ParseConf(r io.Reader) (*Conf, error) {
	c := &Conf{
		Config: Config{Atoms: NMAAtoms, Steps: 10, Temperature: 300, Seed: 1},
		Extra:  map[string]string{},
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("namd: conf line %d: keyword %q without value", lineNo, fields[0])
		}
		key := strings.ToLower(fields[0])
		val := strings.Join(fields[1:], " ")
		var err error
		switch key {
		case "numatoms", "atoms":
			c.Config.Atoms, err = strconv.Atoi(val)
		case "numsteps", "steps":
			c.Config.Steps, err = strconv.Atoi(val)
		case "temperature":
			c.Config.Temperature, err = strconv.ParseFloat(val, 64)
		case "seed":
			c.Config.Seed, err = strconv.ParseInt(val, 10, 64)
		case "workscale":
			c.Config.WorkScale, err = strconv.ParseFloat(val, 64)
		default:
			c.Extra[key] = val
		}
		if err != nil {
			return nil, fmt.Errorf("namd: conf line %d: bad value for %s: %v", lineNo, key, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := c.Config.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// WriteConf renders the configuration in NAMD keyword/value form with
// deterministic ordering.
func WriteConf(w io.Writer, c *Conf) error {
	if _, err := fmt.Fprintf(w, "numatoms     %d\nnumsteps     %d\ntemperature  %g\nseed         %d\n",
		c.Config.Atoms, c.Config.Steps, c.Config.Temperature, c.Config.Seed); err != nil {
		return err
	}
	if c.Config.WorkScale != 0 {
		if _, err := fmt.Fprintf(w, "workscale    %g\n", c.Config.WorkScale); err != nil {
			return err
		}
	}
	keys := make([]string, 0, len(c.Extra))
	for k := range c.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%-12s %s\n", k, c.Extra[k]); err != nil {
			return err
		}
	}
	return nil
}

// InputFiles lists the file references a configuration names (the keywords
// real NAMD loads as inputs), used to model the 5-file input profile.
func (c *Conf) InputFiles() []string {
	var out []string
	for _, k := range []string{"structure", "coordinates", "parameters", "velocities", "extendedsystem"} {
		if v, ok := c.Extra[k]; ok {
			out = append(out, v)
		}
	}
	return out
}

// Package namd is a synthetic stand-in for the NAMD molecular dynamics code
// used by the paper's REM application (§6.1.6, §6.2.2). The paper needs only
// NAMD's external behaviour: an N-process MPI job that simulates a fixed
// number of timesteps over a molecular system (the 44,992-atom NMA case),
// reads ~14.8 MB of input, writes ~2.2 MB of output plus ~11 KB of standard
// output, exhibits the heavy-tailed wall-time distribution of Fig. 11, and
// restarts from coordinate/velocity/extended-system files so replicas can
// exchange state.
//
// The implementation does real floating-point work: each rank integrates its
// partition of the atoms with a deterministic pairwise-interaction kernel
// and the ranks allreduce the system energy every timestep, so launching it
// through JETS exercises exactly the communication pattern of the real
// application.
package namd

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"jets/internal/mpi"
)

// NMAAtoms is the atom count of the paper's NMA benchmark system.
const NMAAtoms = 44992

// Paper I/O volumes (§6.1.6).
const (
	InputBytes  = 14_800_000 // 5 files totaling 14.8 MB
	OutputBytes = 2_200_000  // 3 files totaling 2.2 MB
	StdoutBytes = 11_000     // ~11 KB application statistics
)

// Config describes one NAMD segment invocation.
type Config struct {
	Atoms       int
	Steps       int
	Temperature float64 // Kelvin
	Seed        int64
	// WorkScale multiplies the per-step compute kernel size; 1.0 is
	// calibrated so a 4-process NMA segment takes O(100 ms) on a laptop —
	// the paper's ~100 s scaled by 1000x for testability.
	WorkScale float64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Atoms <= 0 {
		return fmt.Errorf("namd: atoms must be positive, got %d", c.Atoms)
	}
	if c.Steps <= 0 {
		return fmt.Errorf("namd: steps must be positive, got %d", c.Steps)
	}
	if c.Temperature <= 0 {
		return fmt.Errorf("namd: temperature must be positive, got %v", c.Temperature)
	}
	return nil
}

// State is the restartable part of a replica trajectory: the conventional
// NAMD coordinates/velocities/extended-system triple, reduced to the values
// the exchange actually needs.
type State struct {
	Step        int
	Energy      float64
	Temperature float64
	// Coords summarizes per-rank coordinates (checksum vector); real NAMD
	// writes full binary restart files — we carry enough to make exchanges
	// observable and deterministic.
	Coords []float64
}

// Result reports one segment execution.
type Result struct {
	Energy   float64
	Steps    int
	Atoms    int
	Elapsed  time.Duration
	Stdout   int // bytes of statistics emitted
	FinalTmp float64
}

// Run executes one MD segment across the communicator. Every rank computes
// forces for its atom partition; energies are combined with an allreduce per
// timestep (the dominant NAMD communication pattern at small scale). The
// returned Result is identical on every rank.
func Run(comm *mpi.Comm, cfg Config, restart *State, stdout io.Writer) (Result, *State, error) {
	var res Result
	if err := cfg.Validate(); err != nil {
		return res, nil, err
	}
	start := time.Now()
	rank, size := comm.Rank(), comm.Size()

	// Partition atoms.
	per := cfg.Atoms / size
	lo := rank * per
	hi := lo + per
	if rank == size-1 {
		hi = cfg.Atoms
	}
	n := hi - lo

	// Deterministic initial conditions (or restart).
	rng := rand.New(rand.NewSource(cfg.Seed + int64(rank)*7919))
	pos := make([]float64, n)
	vel := make([]float64, n)
	for i := range pos {
		pos[i] = rng.NormFloat64()
		vel[i] = rng.NormFloat64() * math.Sqrt(cfg.Temperature/300.0)
	}
	startStep := 0
	if restart != nil {
		startStep = restart.Step
		// Perturb from the restart checksum so exchanged trajectories
		// diverge, as resuming from a neighbour's files would.
		if len(restart.Coords) > 0 {
			seed := restart.Coords[rank%len(restart.Coords)]
			for i := range pos {
				pos[i] += 1e-3 * math.Sin(seed+float64(i))
			}
		}
	}

	// Kernel size calibration: interactions per atom per step.
	workScale := cfg.WorkScale
	if workScale <= 0 {
		workScale = 1
	}
	k := int(64 * workScale)
	if k < 1 {
		k = 1
	}

	if err := comm.Barrier(); err != nil {
		return res, nil, err
	}
	var energy float64
	dt := 0.002
	for step := 0; step < cfg.Steps; step++ {
		local := 0.0
		for i := 0; i < n; i++ {
			f := 0.0
			x := pos[i]
			// Pairwise-style kernel against k pseudo-neighbours.
			for j := 1; j <= k; j++ {
				r := x - pos[(i+j)%n]
				r2 := r*r + 0.01
				f += r / (r2 * r2) // Lennard-Jones-ish repulsion gradient
				local += 1.0 / r2
			}
			vel[i] += dt * f
			pos[i] += dt * vel[i]
			local += 0.5 * vel[i] * vel[i]
		}
		sum, err := comm.AllreduceFloat64(mpi.OpSum, []float64{local})
		if err != nil {
			return res, nil, err
		}
		energy = sum[0]
		if rank == 0 && stdout != nil {
			fmt.Fprintf(stdout, "ENERGY: %6d %18.4f %10.2f\n", startStep+step, energy, cfg.Temperature)
		}
	}
	if err := comm.Barrier(); err != nil {
		return res, nil, err
	}

	// Per-rank coordinate checksum gathered so rank 0's state matches the
	// files real NAMD would write; broadcast back so all ranks return it.
	chk := 0.0
	for i, x := range pos {
		chk += x * math.Cos(float64(i))
	}
	all, err := comm.Allgather(mpi.Float64sToBytes([]float64{chk}))
	if err != nil {
		return res, nil, err
	}
	coords := make([]float64, size)
	for i, b := range all {
		v, err := mpi.BytesToFloat64s(b)
		if err != nil || len(v) != 1 {
			return res, nil, fmt.Errorf("namd: bad checksum from rank %d", i)
		}
		coords[i] = v[0]
	}

	state := &State{
		Step:        startStep + cfg.Steps,
		Energy:      energy,
		Temperature: cfg.Temperature,
		Coords:      coords,
	}
	res = Result{
		Energy:   energy,
		Steps:    cfg.Steps,
		Atoms:    cfg.Atoms,
		Elapsed:  time.Since(start),
		FinalTmp: cfg.Temperature,
	}
	return res, state, nil
}

// SampleWallTime draws a segment wall time from the Fig. 11 distribution:
// the bulk of 4-processor NMA segments take 100-120 s with a tail running to
// ~160 s. Used by the discrete-event simulator's NAMD model.
func SampleWallTime(rng *rand.Rand) time.Duration {
	base := 100 + 20*rng.Float64()
	if rng.Float64() < 0.30 {
		base += rng.ExpFloat64() * 12
	}
	if base > 165 {
		base = 165
	}
	return time.Duration(base * float64(time.Second))
}

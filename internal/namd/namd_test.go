package namd

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jets/internal/hydra"
	"jets/internal/metrics"
	"jets/internal/mpi"
	"jets/internal/proto"
)

func testCfg(atoms int) Config {
	return Config{Atoms: atoms, Steps: 3, Temperature: 300, Seed: 42, WorkScale: 0.02}
}

func TestConfigValidate(t *testing.T) {
	cases := []Config{
		{Atoms: 0, Steps: 1, Temperature: 300},
		{Atoms: 10, Steps: 0, Temperature: 300},
		{Atoms: 10, Steps: 1, Temperature: 0},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
	good := testCfg(100)
	if err := good.Validate(); err != nil {
		t.Errorf("rejected %+v: %v", good, err)
	}
}

func TestRunDeterministicAcrossRanks(t *testing.T) {
	var energies []float64
	var mu = make(chan float64, 8)
	err := mpi.RunLocal(4, func(c *mpi.Comm) error {
		res, state, err := Run(c, testCfg(400), nil, io.Discard)
		if err != nil {
			return err
		}
		if state == nil || state.Step != 3 {
			return fmt.Errorf("state %+v", state)
		}
		mu <- res.Energy
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	close(mu)
	for e := range mu {
		energies = append(energies, e)
	}
	if len(energies) != 4 {
		t.Fatalf("energies=%v", energies)
	}
	for _, e := range energies[1:] {
		if e != energies[0] {
			t.Fatalf("ranks disagree on energy: %v", energies)
		}
	}
	if math.IsNaN(energies[0]) || energies[0] == 0 {
		t.Fatalf("suspicious energy %v", energies[0])
	}
}

func TestRunReproducible(t *testing.T) {
	run := func() float64 {
		var out float64
		err := mpi.RunLocal(2, func(c *mpi.Comm) error {
			res, _, err := Run(c, testCfg(200), nil, io.Discard)
			if c.Rank() == 0 {
				out = res.Energy
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced %v then %v", a, b)
	}
}

func TestRestartDiverges(t *testing.T) {
	// Running from a restart state must give a different trajectory than a
	// cold start — the mechanism by which exchanged replicas take over.
	var cold, warm float64
	err := mpi.RunLocal(2, func(c *mpi.Comm) error {
		res, state, err := Run(c, testCfg(200), nil, io.Discard)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			cold = res.Energy
		}
		state.Coords[0] += 10 // a neighbour's different coordinates
		res2, _, err := Run(c, testCfg(200), state, io.Discard)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			warm = res2.Energy
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cold == warm {
		t.Fatalf("restart had no effect: %v", cold)
	}
}

func TestStdoutStatistics(t *testing.T) {
	var buf bytes.Buffer
	err := mpi.RunLocal(2, func(c *mpi.Comm) error {
		var w io.Writer = io.Discard
		if c.Rank() == 0 {
			w = &buf
		}
		_, _, err := Run(c, testCfg(100), nil, w)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "ENERGY:")
	if lines != 3 {
		t.Fatalf("expected 3 ENERGY lines, got %d:\n%s", lines, buf.String())
	}
}

func TestUnevenPartition(t *testing.T) {
	// Atom count not divisible by ranks: last rank absorbs the remainder.
	err := mpi.RunLocal(3, func(c *mpi.Comm) error {
		_, _, err := Run(c, testCfg(100), nil, io.Discard)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleWallTimeDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := metrics.NewHistogram(100, 160, 6)
	for i := 0; i < 5000; i++ {
		h.Add(SampleWallTime(rng).Seconds())
	}
	if h.Under != 0 {
		t.Fatalf("samples below 100s: %d", h.Under)
	}
	// Fig 11 shape: bulk in 100-120, visible tail beyond, none past ~165.
	bulk := h.Counts[0] + h.Counts[1]
	tail := h.N - bulk - h.Over
	if float64(bulk)/float64(h.N) < 0.55 {
		t.Fatalf("bulk fraction %.2f too small: %v", float64(bulk)/float64(h.N), h.Counts)
	}
	if tail == 0 {
		t.Fatal("no tail samples")
	}
	if h.Max() > 166 {
		t.Fatalf("max %.1f beyond clip", h.Max())
	}
}

func TestStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r1.state")
	st := &State{Step: 10, Energy: -1234.5, Temperature: 310, Coords: []float64{1, 2, 3}}
	if err := SaveState(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 10 || got.Energy != -1234.5 || len(got.Coords) != 3 {
		t.Fatalf("got %+v", got)
	}
	if _, err := LoadState(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing state accepted")
	}
}

func TestParseArgs(t *testing.T) {
	cfg, in, out, err := parseArgs([]string{"-atoms", "128", "-steps", "5", "-temp", "310.5",
		"-seed", "9", "-in", "a.state", "-out", "b.state"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Atoms != 128 || cfg.Steps != 5 || cfg.Temperature != 310.5 || cfg.Seed != 9 {
		t.Fatalf("cfg %+v", cfg)
	}
	if in != "a.state" || out != "b.state" {
		t.Fatalf("in=%q out=%q", in, out)
	}
	for _, bad := range [][]string{
		{"-atoms"}, {"-atoms", "x"}, {"-bogus", "1"}, {"positional"},
	} {
		if _, _, _, err := parseArgs(bad); err == nil {
			t.Errorf("accepted %v", bad)
		}
	}
}

// TestAppThroughHydra runs namd2 through the full proxy launch path.
func TestAppThroughHydra(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "seg.state")
	runner := hydra.NewFuncRunner()
	RegisterApp(runner, 0.02)
	m, err := hydra.StartMPIExec(hydra.JobSpec{
		JobID: "namd-test", NProcs: 4, Cmd: AppName,
		Args: []string{"-atoms", "400", "-steps", "2", "-seed", "3", "-out", out},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	results := make(chan proto.Result, 4)
	for _, task := range m.ProxyTasks() {
		go func(task proto.Task) {
			results <- hydra.RunProxy(context.Background(), &task, runner, io.Discard)
		}(task)
	}
	for i := 0; i < 4; i++ {
		r := <-results
		if r.ExitCode != 0 {
			t.Fatalf("rank failed: %+v", r)
		}
	}
	if err := m.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	st, err := LoadState(out)
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != 2 || len(st.Coords) != 4 {
		t.Fatalf("state %+v", st)
	}
}

package namd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"jets/internal/hydra"
	"jets/internal/mpi"
)

// This file packages the MD engine as a JETS-launchable application
// ("namd2"), the role the namd2.sh wrapper plays in the paper's input files:
//
//	MPI: 4 namd2 -atoms 44992 -steps 10 -seed 7 -in prev.state -out next.state
//
// State files are JSON renderings of State, standing in for NAMD's
// coordinate/velocity/extended-system triple.

// AppName is the command name RegisterApp installs.
const AppName = "namd2"

// RegisterApp installs the namd2 application in a FuncRunner. workScale
// tunes the compute kernel (1.0 ~ 100 ms for a 4-proc NMA segment; tests use
// much smaller values).
func RegisterApp(runner *hydra.FuncRunner, workScale float64) {
	runner.Register(AppName, func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return appMain(args, env, stdout, workScale)
	})
}

func appMain(args []string, env map[string]string, stdout io.Writer, workScale float64) int {
	cfg, inPath, outPath, err := parseArgs(args)
	if err != nil {
		fmt.Fprintf(stdout, "namd2: %v\n", err)
		return 2
	}
	if cfg.WorkScale == 0 {
		cfg.WorkScale = workScale
	}

	comm, err := mpi.InitEnvFrom(env)
	if err != nil {
		fmt.Fprintf(stdout, "namd2: MPI init: %v\n", err)
		return 1
	}
	defer comm.Close()

	var restart *State
	if inPath != "" {
		st, err := LoadState(inPath)
		if err != nil {
			fmt.Fprintf(stdout, "namd2: restart: %v\n", err)
			return 1
		}
		restart = st
	}

	res, state, err := Run(comm, cfg, restart, stdout)
	if err != nil {
		fmt.Fprintf(stdout, "namd2: run: %v\n", err)
		return 1
	}
	if comm.Rank() == 0 {
		fmt.Fprintf(stdout, "WallClock: %.6f  Energy: %.4f  Steps: %d\n",
			res.Elapsed.Seconds(), res.Energy, res.Steps)
		if outPath != "" {
			if err := SaveState(outPath, state); err != nil {
				fmt.Fprintf(stdout, "namd2: save: %v\n", err)
				return 1
			}
		}
	}
	return 0
}

func parseArgs(args []string) (cfg Config, inPath, outPath string, err error) {
	cfg = Config{Atoms: NMAAtoms, Steps: 10, Temperature: 300, Seed: 1}
	for i := 0; i < len(args); i++ {
		flag := args[i]
		if !strings.HasPrefix(flag, "-") {
			return cfg, "", "", fmt.Errorf("unexpected argument %q", flag)
		}
		if i+1 >= len(args) {
			return cfg, "", "", fmt.Errorf("flag %s needs a value", flag)
		}
		val := args[i+1]
		i++
		switch flag {
		case "-conf":
			// NAMD-style configuration file; flags appearing after -conf
			// override its values.
			f, ferr := os.Open(val)
			if ferr != nil {
				return cfg, "", "", fmt.Errorf("conf: %v", ferr)
			}
			conf, perr := ParseConf(f)
			f.Close()
			if perr != nil {
				return cfg, "", "", perr
			}
			ws := cfg.WorkScale
			cfg = conf.Config
			if cfg.WorkScale == 0 {
				cfg.WorkScale = ws
			}
		case "-atoms":
			cfg.Atoms, err = strconv.Atoi(val)
		case "-steps":
			cfg.Steps, err = strconv.Atoi(val)
		case "-temp":
			cfg.Temperature, err = strconv.ParseFloat(val, 64)
		case "-seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "-scale":
			cfg.WorkScale, err = strconv.ParseFloat(val, 64)
		case "-in":
			inPath = val
		case "-out":
			outPath = val
		default:
			return cfg, "", "", fmt.Errorf("unknown flag %s", flag)
		}
		if err != nil {
			return cfg, "", "", fmt.Errorf("bad value for %s: %v", flag, err)
		}
	}
	return cfg, inPath, outPath, nil
}

// SaveState writes a state file (the exchangeable replica snapshot).
func SaveState(path string, st *State) error {
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadState reads a state file written by SaveState.
func LoadState(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("namd: corrupt state file %s: %w", path, err)
	}
	return &st, nil
}

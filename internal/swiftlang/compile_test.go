package swiftlang

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jets/internal/core"
	"jets/internal/hydra"
)

// TestCompiledProgramReuse compiles once and runs the result twice; a
// CompiledProgram must be stateless across runs.
func TestCompiledProgramReuse(t *testing.T) {
	prog, err := Parse(loadScript(t, "gen.swift"))
	if err != nil {
		t.Fatal(err)
	}
	cp := Compile(prog)
	for run := 0; run < 2; run++ {
		exec := NewFuncExecutor()
		exec.Register("gen", func(ctx context.Context, inv AppInvocation) error { return nil })
		err := cp.Run(context.Background(), Config{
			Executor: exec, WorkDir: t.TempDir(), Args: map[string]string{"n": "25"},
		})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if got := len(exec.Calls()); got != 25 {
			t.Fatalf("run %d: %d invocations, want 25", run, got)
		}
	}
	if compileNanos.Load() <= 0 {
		t.Fatal("compile duration gauge not recorded")
	}
}

func startJETS(t *testing.T, workers int) (*JETSExecutor, *core.Engine) {
	t.Helper()
	runner := hydra.NewFuncRunner()
	runner.Register("gen", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	exec := NewJETSExecutor()
	eng, err := core.NewEngine(core.Options{
		LocalWorkers: workers, Runner: runner, OnOutput: exec.OutputSink,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	exec.Bind(eng)
	return exec, eng
}

// TestCompiledJETSBatch drives a compiled generator script through the real
// engine with batched submission and checks every task completes.
func TestCompiledJETSBatch(t *testing.T) {
	exec, eng := startJETS(t, 4)
	exec.BatchMax = 16
	src := `
int n = toInt(arg("n", "60"));
app () gen (int i) {
    "gen" i;
}
foreach i in [1:n] {
    gen(i);
}
`
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err := RunScript(ctx, src, Config{
		Executor: exec, WorkDir: t.TempDir(), Compile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Dispatcher().Stats().JobsCompleted; got != 60 {
		t.Fatalf("completed %d jobs, want 60", got)
	}
}

// TestExecuteAsyncFlushTimer checks that submissions below BatchMax still
// flush once BatchDelay elapses.
func TestExecuteAsyncFlushTimer(t *testing.T) {
	exec, _ := startJETS(t, 2)
	exec.BatchMax = 1000
	exec.BatchDelay = 10 * time.Millisecond
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		inv := AppInvocation{App: "gen", Tokens: []string{"gen", fmt.Sprint(i)}}
		exec.ExecuteAsync(context.Background(), inv, func(err error) {
			if err == nil {
				done.Add(1)
			}
			wg.Done()
		})
	}
	ok := make(chan struct{})
	go func() { wg.Wait(); close(ok) }()
	select {
	case <-ok:
	case <-time.After(30 * time.Second):
		t.Fatal("timer flush never completed the batch")
	}
	if done.Load() != 3 {
		t.Fatalf("%d/3 submissions succeeded", done.Load())
	}
}

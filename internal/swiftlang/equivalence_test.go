package swiftlang

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
	"time"
)

// equivCommands covers every command token the testdata scripts emit; each
// records its invocation and succeeds.
var equivCommands = []string{"synthetic", "namd", "exchange", "mkinput", "process", "combine", "gen"}

type equivResult struct {
	invs  []string
	trace []string
	err   string
}

func runScriptMode(t *testing.T, src string, compile bool) equivResult {
	t.Helper()
	exec := NewFuncExecutor()
	for _, cmd := range equivCommands {
		exec.Register(cmd, func(ctx context.Context, inv AppInvocation) error { return nil })
	}
	var out bytes.Buffer
	wd := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err := RunScript(ctx, src, Config{
		Executor: exec, Stdout: &out, WorkDir: wd, Compile: compile,
		Args: map[string]string{"njobs": "5", "nodes": "2", "waitms": "1", "nreps": "4", "rounds": "2", "n": "6"},
	})
	res := equivResult{}
	if err != nil {
		res.err = err.Error()
	}
	for _, inv := range exec.Calls() {
		s := fmt.Sprintf("%s|%d|%v|%s|%v", inv.App, inv.NProcs, inv.Tokens, inv.StdoutFile, inv.OutFiles)
		// Auto-mapped paths embed the per-run workdir and a mint order that
		// concurrency may permute; normalize both.
		s = strings.ReplaceAll(s, wd, "WORK")
		res.invs = append(res.invs, s)
	}
	sort.Strings(res.invs)
	for _, line := range strings.Split(out.String(), "\n") {
		if line != "" {
			res.trace = append(res.trace, line)
		}
	}
	sort.Strings(res.trace)
	return res
}

// TestCompiledEquivalence runs every testdata script under both the
// interpreter and the compiled runtime and requires identical invocation
// multisets, identical trace output, and (for err_ scripts) identical
// failure messages.
func TestCompiledEquivalence(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".swift") {
			continue
		}
		t.Run(name, func(t *testing.T) {
			src := loadScript(t, name)
			interp := runScriptMode(t, src, false)
			compiled := runScriptMode(t, src, true)
			if strings.HasPrefix(name, "err_") {
				if interp.err == "" || compiled.err == "" {
					t.Fatalf("expected both modes to fail: interp=%q compiled=%q", interp.err, compiled.err)
				}
				if interp.err != compiled.err {
					t.Fatalf("error mismatch:\ninterp:   %s\ncompiled: %s", interp.err, compiled.err)
				}
				return
			}
			if interp.err != "" || compiled.err != "" {
				t.Fatalf("unexpected failure: interp=%q compiled=%q", interp.err, compiled.err)
			}
			if !equalStrings(interp.invs, compiled.invs) {
				t.Fatalf("invocation sets differ:\ninterp (%d):   %v\ncompiled (%d): %v",
					len(interp.invs), interp.invs, len(compiled.invs), compiled.invs)
			}
			if !equalStrings(interp.trace, compiled.trace) {
				t.Fatalf("trace output differs:\ninterp:   %v\ncompiled: %v", interp.trace, compiled.trace)
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package swiftlang

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func runScript(t *testing.T, src string, exec Executor) *bytes.Buffer {
	t.Helper()
	var out bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := RunScript(ctx, src, Config{Executor: exec, Stdout: &out, WorkDir: t.TempDir()})
	if err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	return &out
}

// ---------------------------------------------------------------------------
// Lexer

func TestLexerBasics(t *testing.T) {
	toks, err := newLexer(`int x = 3; // comment
# hash comment
/* block
comment */ string s = "a\nb";`).lex()
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.kind != tokEOF {
			texts = append(texts, tok.text)
		}
	}
	want := []string{"int", "x", "=", "3", ";", "string", "s", "=", "a\nb", ";"}
	if len(texts) != len(want) {
		t.Fatalf("got %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("tok %d: %q want %q", i, texts[i], want[i])
		}
	}
}

func TestLexerOperators(t *testing.T) {
	toks, err := newLexer(`a %% b == c != d <= e >= f && g || h`).lex()
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.kind == tokPunct {
			ops = append(ops, tok.text)
		}
	}
	want := []string{"%%", "==", "!=", "<=", ">=", "&&", "||"}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops=%v", ops)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "/* open", `"bad \q escape"`, "`"} {
		if _, err := newLexer(src).lex(); err == nil {
			t.Errorf("lexed %q", src)
		}
	}
}

func TestLexerFloatVsMember(t *testing.T) {
	toks, _ := newLexer("3.25 4").lex()
	if toks[0].kind != tokFloat || toks[0].text != "3.25" {
		t.Fatalf("got %v", toks[0])
	}
	if toks[1].kind != tokInt {
		t.Fatalf("got %v", toks[1])
	}
}

// ---------------------------------------------------------------------------
// Parser

func TestParseAppDecl(t *testing.T) {
	p := mustParse(t, `
type file;
app (file o) simulate (int steps, file input) mpi 4 {
    "namd2" "-steps" steps "-in" @input stdout=@o;
}
`)
	app := p.Apps["simulate"]
	if app == nil {
		t.Fatal("app missing")
	}
	if len(app.Outs) != 1 || app.Outs[0].Type != TFile {
		t.Fatalf("outs %+v", app.Outs)
	}
	if len(app.Ins) != 2 || app.Ins[0].Type != TInt || app.Ins[1].Type != TFile {
		t.Fatalf("ins %+v", app.Ins)
	}
	if app.MPI == nil {
		t.Fatal("mpi size missing")
	}
	if len(app.Tokens) != 6 {
		t.Fatalf("tokens %d", len(app.Tokens))
	}
	if app.Tokens[4].FileOf == nil {
		t.Fatal("@input not parsed as file reference")
	}
	if app.Tokens[5].StdoutOf == nil {
		t.Fatal("stdout redirect not parsed")
	}
}

func TestParseStatements(t *testing.T) {
	p := mustParse(t, `
int n = 4;
file f <"out.txt">;
file c[] <"c_%d.dat">;
if (n %% 2 == 0) { trace("even"); } else { trace("odd"); }
foreach i in [0:n] { trace(i); }
(a, b) = twoOut(n);
app (file x, file y) twoOut (int k) { "cmd" k; }
`)
	if len(p.Stmts) != 6 {
		t.Fatalf("stmts=%d", len(p.Stmts))
	}
	if _, ok := p.Stmts[2].(*VarDecl); !ok {
		t.Fatalf("stmt2 %T", p.Stmts[2])
	}
	fe, ok := p.Stmts[4].(*Foreach)
	if !ok || fe.RangeLo == nil {
		t.Fatalf("stmt4 %T", p.Stmts[4])
	}
	as, ok := p.Stmts[5].(*Assign)
	if !ok || len(as.Targets) != 2 {
		t.Fatalf("stmt5 %T %+v", p.Stmts[5], as)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`int;`,
		`app (file o) f (int x) { }`, // empty command
		`app (file o) f (int x) { "cmd"`,
		`foreach i [0:3] { }`,
		`if n > 2 { }`,
		`x = ;`,
		`unknowntype y;`,
		`app (file o) f () { "c"; } app (file o) f () { "c"; }`, // dup
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("parsed %q", src)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	p := mustParse(t, `int x = 1 + 2 * 3;`)
	d := p.Stmts[0].(*VarDecl)
	b := d.Init.(*Binary)
	if b.Op != "+" {
		t.Fatalf("top op %s", b.Op)
	}
	if inner := b.R.(*Binary); inner.Op != "*" {
		t.Fatalf("inner op %s", inner.Op)
	}
}

// ---------------------------------------------------------------------------
// Interpreter

func TestTraceAndArithmetic(t *testing.T) {
	exec := NewFuncExecutor()
	out := runScript(t, `
int a = 6;
int b = a * 7;
trace("answer", b);
trace("mod", b %% 5);
trace("str", strcat("x=", a));
float f = 1.5 + a;
trace("float", f);
trace("cmp", a < b, a == 6, !false);
`, exec)
	for _, want := range []string{"answer 42", "mod 2", "str x=6", "float 7.5", "cmp true true true"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in:\n%s", want, out.String())
		}
	}
}

func TestDataflowOrderIndependence(t *testing.T) {
	// b is used before (textually) it is produced: dataflow must resolve it.
	exec := NewFuncExecutor()
	out := runScript(t, `
int a;
trace("got", a + 1);
a = 41;
`, exec)
	if !strings.Contains(out.String(), "got 42") {
		t.Fatalf("out=%s", out.String())
	}
}

func TestForeachRangeInclusive(t *testing.T) {
	exec := NewFuncExecutor()
	var n atomic.Int64
	exec.Register("tick", func(ctx context.Context, inv AppInvocation) error {
		n.Add(1)
		return nil
	})
	runScript(t, `
app () tick (int i) { "tick" i; }
foreach i in [0:4] { tick(i); }
`, exec)
	if n.Load() != 5 {
		t.Fatalf("ticks=%d (range should be inclusive)", n.Load())
	}
}

func TestForeachIndexVar(t *testing.T) {
	exec := NewFuncExecutor()
	out := runScript(t, `
foreach v, i in [10:12] { trace(v, i); }
`, exec)
	for _, want := range []string{"10 0", "11 1", "12 2"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q: %s", want, out.String())
		}
	}
}

func TestIfParityWithModulus(t *testing.T) {
	exec := NewFuncExecutor()
	out := runScript(t, `
foreach j in [0:3] {
    if (j %% 2 == 0) { trace("even", j); } else { trace("odd", j); }
}
`, exec)
	for _, want := range []string{"even 0", "odd 1", "even 2", "odd 3"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestArrayDataflowAcrossIterations(t *testing.T) {
	// Classic Swift pipeline: a[i] depends on a[i-1]; iterations are
	// submitted concurrently and sequenced purely by dataflow.
	exec := NewFuncExecutor()
	out := runScript(t, `
int a[];
a[0] = 1;
foreach i in [1:6] {
    a[i] = a[i-1] * 2;
}
trace("last", a[6]);
`, exec)
	if !strings.Contains(out.String(), "last 64") {
		t.Fatalf("out=%s", out.String())
	}
}

func TestAppCallWithFiles(t *testing.T) {
	exec := NewFuncExecutor()
	var got AppInvocation
	var mu sync.Mutex
	exec.Register("gen", func(ctx context.Context, inv AppInvocation) error {
		mu.Lock()
		got = inv
		mu.Unlock()
		return nil
	})
	exec.Register("consume", func(ctx context.Context, inv AppInvocation) error { return nil })
	runScript(t, `
app (file o) gen (int n) { "gen" n stdout=@o; }
app () consume (file x) { "consume" @x; }
file f <"data/out.bin">;
f = gen(9);
consume(f);
`, exec)
	mu.Lock()
	defer mu.Unlock()
	if got.StdoutFile != "data/out.bin" {
		t.Fatalf("stdout=%q", got.StdoutFile)
	}
	if len(got.OutFiles) != 1 || got.OutFiles[0] != "data/out.bin" {
		t.Fatalf("outfiles=%v", got.OutFiles)
	}
	calls := exec.Calls()
	if len(calls) != 2 {
		t.Fatalf("calls=%d", len(calls))
	}
	// consume must run after gen (dataflow), and see the file path.
	if calls[0].App != "gen" || calls[1].App != "consume" {
		t.Fatalf("order %v, %v", calls[0].App, calls[1].App)
	}
	if calls[1].Tokens[1] != "data/out.bin" {
		t.Fatalf("consume tokens %v", calls[1].Tokens)
	}
}

func TestMPISizeFromParameter(t *testing.T) {
	exec := NewFuncExecutor()
	var sizes []int
	var mu sync.Mutex
	exec.Register("sim", func(ctx context.Context, inv AppInvocation) error {
		mu.Lock()
		sizes = append(sizes, inv.NProcs)
		mu.Unlock()
		return nil
	})
	runScript(t, `
app () sim (int n) mpi n*2 { "sim" n; }
sim(3);
`, exec)
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 1 || sizes[0] != 6 {
		t.Fatalf("sizes=%v", sizes)
	}
}

func TestTupleAssignFromApp(t *testing.T) {
	exec := NewFuncExecutor()
	exec.Register("two", func(ctx context.Context, inv AppInvocation) error { return nil })
	out := runScript(t, `
app (file a, file b) two (int n) { "two" n; }
file x <"xa">;
file y <"yb">;
(x, y) = two(1);
trace("paths", @x, @y);
`, exec)
	if !strings.Contains(out.String(), "paths xa yb") {
		t.Fatalf("out=%s", out.String())
	}
}

func TestFileArrayPattern(t *testing.T) {
	exec := NewFuncExecutor()
	var mu sync.Mutex
	var produced []string
	exec.Register("mk", func(ctx context.Context, inv AppInvocation) error {
		mu.Lock()
		produced = append(produced, inv.OutFiles[0])
		mu.Unlock()
		return nil
	})
	runScript(t, `
app (file o) mk (int i) { "mk" i; }
file c[] <"seg_%d.dat">;
foreach i in [0:2] {
    c[i] = mk(i);
}
`, exec)
	mu.Lock()
	defer mu.Unlock()
	if len(produced) != 3 {
		t.Fatalf("produced=%v", produced)
	}
	want := map[string]bool{"seg_0.dat": true, "seg_1.dat": true, "seg_2.dat": true}
	for _, p := range produced {
		if !want[p] {
			t.Fatalf("unexpected path %q in %v", p, produced)
		}
	}
}

// TestREMCoreLoop runs a reduced Fig.-17-style REM dataflow: segments per
// replica chained by files, alternating-parity exchanges gating the next
// segment.
func TestREMCoreLoop(t *testing.T) {
	exec := NewFuncExecutor()
	var mu sync.Mutex
	order := []string{}
	log := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	exec.Register("namd", func(ctx context.Context, inv AppInvocation) error {
		log("namd " + strings.Join(inv.Tokens[1:], ","))
		return nil
	})
	exec.Register("exchange", func(ctx context.Context, inv AppInvocation) error {
		log("exchange " + strings.Join(inv.Tokens[1:], ","))
		return nil
	})
	src := `
int nreps = 4;
int rounds = 2;
app (file co) namd (int rep, int seg, file ci) mpi 2 { "namd" rep seg @ci; }
app (file xo) exchange (file a, file b) { "exchange" @a @b; }

file c[] <"c_%d.file">;
file x[] <"x_%d.file">;

# initial conditions: segment index = rep*10 + round
foreach r in [0:nreps-1] {
    c[r*10] = namd(r, 0, init);
}
file init <"init.file">;
init = seed();
app (file o) seed () { "namd" 99 99 "none"; }

foreach r in [0:nreps-1] {
    foreach j in [1:rounds] {
        # exchange between r and its parity partner gates this segment
        if (r %% 2 == 0) {
            x[(j-1)*100+r] = exchange(c[r*10+j-1], c[(r+1)*10+j-1]);
        }
        c[r*10+j] = namd(r, j, xfile(r, j));
    }
}
app (file o) xfile (int r, int j) { "namd" r j "noop"; }
`
	// The above uses an app as a helper; simplify: direct dependency via x
	// array instead. Use a cleaner equivalent script.
	src = `
int nreps = 4;
app (file co) namd (int rep, int seg, file ci) mpi 2 { "namd" rep seg @ci; }
app (file xo) exchange (file a, file b) { "exchange" @a @b; }

file c[] <"c_%d.file">;
file x[] <"x_%d.file">;
file init <"init.file">;
init = seedapp();
app (file o) seedapp () { "namd" 99 99 "seed"; }

foreach r in [0:nreps-1] {
    c[r*10] = namd(r, 0, init);
}
foreach r in [0:nreps-1] {
    if (r %% 2 == 0) {
        x[r] = exchange(c[r*10], c[(r+1)*10]);
        c[r*10+1] = namd(r, 1, x[r]);
        c[(r+1)*10+1] = namd(r+1, 1, x[r]);
    }
}
trace("done", @c[1], @c[11], @c[21], @c[31]);
`
	_ = src
	out := runScript(t, src, exec)
	if !strings.Contains(out.String(), "done") {
		t.Fatalf("out=%s", out.String())
	}
	mu.Lock()
	defer mu.Unlock()
	// 1 seed + 4 segment-0 + 2 exchanges + 4 segment-1 = 11 operations.
	if len(order) != 11 {
		t.Fatalf("ops=%d: %v", len(order), order)
	}
	// Every exchange must appear after both partner segment-0 runs and
	// before the dependent segment-1 runs.
	pos := map[string]int{}
	for i, s := range order {
		pos[s] = i
	}
	for _, pair := range [][2]int{{0, 1}, {2, 3}} {
		ex := fmt.Sprintf("exchange c_%d.file,c_%d.file", pair[0]*10, pair[1]*10)
		if _, ok := pos[ex]; !ok {
			t.Fatalf("missing %q in %v", ex, order)
		}
		seg0a := fmt.Sprintf("namd %d,0,init.file", pair[0])
		seg0b := fmt.Sprintf("namd %d,0,init.file", pair[1])
		if pos[ex] < pos[seg0a] || pos[ex] < pos[seg0b] {
			t.Fatalf("exchange ran before inputs: %v", order)
		}
		seg1 := fmt.Sprintf("namd %d,1,x_%d.file", pair[0], pair[0])
		if pos[seg1] < pos[ex] {
			t.Fatalf("segment 1 ran before exchange: %v", order)
		}
	}
}

func TestArgBuiltin(t *testing.T) {
	exec := NewFuncExecutor()
	var out bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := RunScript(ctx, `
trace("steps", toInt(arg("steps")));
trace("mode", arg("mode", "fast"));
`, Config{Executor: exec, Stdout: &out, WorkDir: t.TempDir(),
		Args: map[string]string{"steps": "25"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "steps 25") || !strings.Contains(out.String(), "mode fast") {
		t.Fatalf("out=%s", out.String())
	}
	// Missing required argument errors.
	err = RunScript(ctx, `trace(arg("absent"));`, Config{Executor: exec, WorkDir: t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), "absent") {
		t.Fatalf("err=%v", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	exec := NewFuncExecutor()
	cases := []string{
		`trace(undeclared);`,
		`int x = 1 / 0;`,
		`int x = 5 %% 0;`,
		`int a[]; trace(a);`,
		`int x; x = 1; x = 2;`,
		`if (3) { trace("x"); }`,
		`foreach i in [0:"x"] { }`,
		`unknownfn(3);`,
		`app () f (int n) { "missing" n; } f(1);`, // no registered function
	}
	for _, src := range cases {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := RunScript(ctx, src, Config{Executor: exec, WorkDir: t.TempDir()})
		cancel()
		if err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestAppFailurePropagates(t *testing.T) {
	exec := NewFuncExecutor()
	boom := errors.New("task exploded")
	exec.Register("bad", func(ctx context.Context, inv AppInvocation) error { return boom })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := RunScript(ctx, `
app () bad () { "bad"; }
bad();
`, Config{Executor: exec, WorkDir: t.TempDir()})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
}

func TestDeadlockDetectedByTimeout(t *testing.T) {
	// x depends on itself through y: no execution order exists. The engine
	// must fail via the context rather than hang forever.
	exec := NewFuncExecutor()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	err := RunScript(ctx, `
int x;
int y;
x = y + 1;
y = x + 1;
`, Config{Executor: exec, WorkDir: t.TempDir()})
	if err == nil {
		t.Fatal("circular dependency not detected")
	}
}

func TestConcurrencyActuallyParallel(t *testing.T) {
	// Two independent 100ms apps must overlap: total << 200ms serial time.
	exec := NewFuncExecutor()
	var running, peak atomic.Int64
	exec.Register("slow", func(ctx context.Context, inv AppInvocation) error {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
		running.Add(-1)
		return nil
	})
	runScript(t, `
app () slow (int i) { "slow" i; }
foreach i in [0:3] { slow(i); }
`, exec)
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d; statements did not overlap", peak.Load())
	}
}

package swiftlang

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// builtinHost is the runtime state the builtin library needs — shared by the
// tree-walking interpreter and the compiled runtime so both produce
// byte-identical behavior and error messages. Arguments arrive already
// evaluated; each caller owns its own evaluation strategy.
type builtinHost struct {
	mu     sync.Mutex
	stdout io.Writer
	args   map[string]string
}

// call applies builtin name to evaluated arguments.
func (h *builtinHost) call(name string, args []interface{}, line int) (interface{}, error) {
	switch name {
	case "strcat":
		var b strings.Builder
		for _, a := range args {
			b.WriteString(toDisplay(a))
		}
		return b.String(), nil
	case "trace":
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = toDisplay(a)
		}
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.stdout != nil {
			fmt.Fprintln(h.stdout, strings.Join(parts, " "))
		}
		return nil, nil
	case "toInt":
		if len(args) != 1 {
			return nil, rtErrf(line, "toInt takes one argument")
		}
		switch x := args[0].(type) {
		case int64:
			return x, nil
		case float64:
			return int64(x), nil
		case string:
			n, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
			if err != nil {
				return nil, rtErrf(line, "toInt: %v", err)
			}
			return n, nil
		}
		return nil, rtErrf(line, "toInt cannot convert %T", args[0])
	case "toString":
		if len(args) != 1 {
			return nil, rtErrf(line, "toString takes one argument")
		}
		return toDisplay(args[0]), nil
	case "arg":
		// arg(name) or arg(name, default): named script arguments.
		if len(args) != 1 && len(args) != 2 {
			return nil, rtErrf(line, "arg takes a name and an optional default")
		}
		name, ok := args[0].(string)
		if !ok {
			return nil, rtErrf(line, "arg name must be a string, got %T", args[0])
		}
		if v, ok := h.args[name]; ok {
			return v, nil
		}
		if len(args) == 2 {
			return args[1], nil
		}
		return nil, rtErrf(line, "missing required script argument %q", name)
	case "filename":
		if len(args) != 1 {
			return nil, rtErrf(line, "filename takes one argument")
		}
		f, ok := args[0].(FileVal)
		if !ok {
			return nil, rtErrf(line, "filename needs a file, got %T", args[0])
		}
		return f.Path, nil
	}
	return nil, rtErrf(line, "unknown function %q", name)
}

// builtinFoldable reports whether a builtin over constant arguments can be
// folded at compile time. trace has an effect, and arg depends on per-run
// Config.Args, so both must stay runtime calls.
func builtinFoldable(name string) bool {
	switch name {
	case "strcat", "toInt", "toString", "filename":
		return true
	}
	return false
}

// applyUnary evaluates a unary operator — shared by both runtimes.
func applyUnary(op string, v interface{}) (interface{}, error) {
	switch op {
	case "!":
		b, ok := v.(bool)
		if !ok {
			return nil, rtErrf(0, "! needs a boolean, got %T", v)
		}
		return !b, nil
	case "-":
		switch n := v.(type) {
		case int64:
			return -n, nil
		case float64:
			return -n, nil
		}
		return nil, rtErrf(0, "unary - needs a number, got %T", v)
	}
	return nil, rtErrf(0, "unknown unary operator %q", op)
}

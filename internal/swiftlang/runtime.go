package swiftlang

// The compiled runtime (crt): frame-based execution with an inline
// non-blocking fast path. A generator-style script — declarations whose
// inputs are already set, foreach over resolved bounds, app calls whose
// arguments are immediate — runs entirely on the caller's goroutine,
// submitting tasks through the batched executor without ever parking.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"jets/internal/dataflow"
)

// crt is the state of one compiled-program run.
type crt struct {
	cfg  Config
	eng  *dataflow.Engine
	exec AsyncExecutor
	root *frame
	host builtinHost
	fast *ectx // shared non-blocking evaluation context
	seq  atomic.Int64

	// pend tracks in-flight submissions so a canceled run can abandon their
	// engine holds, mirroring the interpreter's goroutines abandoning their
	// Done() waits on cancellation.
	pendMu  sync.Mutex
	pend    map[int64]func(error)
	pendSeq int64
	drained bool
}

func (rt *crt) nextSeq() int64 { return rt.seq.Add(1) }

// Run executes the compiled program to completion under dataflow semantics.
func (p *CompiledProgram) Run(ctx context.Context, cfg Config) error {
	if cfg.Executor == nil {
		return fmt.Errorf("swift: no executor configured")
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = "swift-work"
	}
	eng := dataflow.NewEngine(ctx)
	rt := &crt{cfg: cfg, eng: eng, pend: map[int64]func(error){}}
	rt.host.stdout = cfg.Stdout
	rt.host.args = cfg.Args
	rt.fast = &ectx{ctx: eng.Context(), rt: rt, blocking: false}
	if ax, ok := cfg.Executor.(AsyncExecutor); ok {
		rt.exec = ax
	} else {
		rt.exec = goAsync{ex: cfg.Executor, eng: eng}
	}
	go rt.drainOnCancel()
	rootFr := newFrame(p.root, nil, rt)
	rt.root = rootFr
	if err := rt.runBlock(p.root, rootFr); err != nil {
		eng.Fail(err)
	}
	// The whole graph has been walked: push out whatever the executor still
	// buffers (suspended statements submit later and ride the flush timer).
	if fl, ok := cfg.Executor.(Flusher); ok {
		fl.Flush()
	}
	return eng.Wait()
}

// runBlock launches a compiled block's statements against fr. Fast
// statements run inline in non-blocking mode; one that reaches an unset
// future retries on a blocking goroutine — the interpreter's cost model for
// the suspended subset only.
func (rt *crt) runBlock(bp *blockBP, fr *frame) error {
	for i := range bp.stmts {
		st := &bp.stmts[i]
		if st.fast {
			err := st.exec(fr, rt.fast)
			if err == nil {
				continue
			}
			if err != errWouldBlock {
				return err
			}
		}
		exec := st.exec
		rt.eng.Go(func(ctx context.Context) error {
			return exec(fr, &ectx{ctx: ctx, rt: rt, blocking: true})
		})
	}
	return nil
}

// dispatchApp is phase B of an app invocation: register an engine hold, hand
// the invocation to the async executor, and return. The completion callback
// sets the output futures; an execution failure is wrapped exactly as the
// interpreter wraps it. With notify set (expression-position calls), the
// outcome goes to the channel instead of the engine.
func (rt *crt) dispatchApp(inv AppInvocation, outFuts []*dataflow.Future, outVals []FileVal, appName string, line int, notify chan<- error) {
	release := rt.eng.Hold()
	untrack := rt.track(release)
	done := func(execErr error) {
		untrack()
		var err error
		if execErr != nil {
			err = fmt.Errorf("swift: app %s (line %d): %w", appName, line, execErr)
		} else {
			for i, fut := range outFuts {
				if serr := fut.Set(outVals[i]); serr != nil {
					err = serr
					break
				}
			}
		}
		if notify != nil {
			release(nil)
			notify <- err
			return
		}
		release(err)
	}
	rt.exec.ExecuteAsync(rt.eng.Context(), inv, done)
}

// track registers an in-flight submission's release for cancellation drain.
func (rt *crt) track(release func(error)) func() {
	rt.pendMu.Lock()
	if rt.drained {
		rt.pendMu.Unlock()
		release(nil)
		return func() {}
	}
	rt.pendSeq++
	id := rt.pendSeq
	rt.pend[id] = release
	rt.pendMu.Unlock()
	return func() {
		rt.pendMu.Lock()
		delete(rt.pend, id)
		rt.pendMu.Unlock()
	}
}

// drainOnCancel abandons the holds of still-running submissions once the
// run's context ends. Their jobs keep running on the dispatcher; late
// completion callbacks become no-ops through the holds' once guards.
func (rt *crt) drainOnCancel() {
	<-rt.eng.Context().Done()
	rt.pendMu.Lock()
	rels := make([]func(error), 0, len(rt.pend))
	for _, r := range rt.pend {
		rels = append(rels, r)
	}
	rt.pend = nil
	rt.drained = true
	rt.pendMu.Unlock()
	for _, r := range rels {
		r(nil)
	}
}

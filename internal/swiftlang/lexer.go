// Package swiftlang implements a compact interpreter for the subset of the
// Swift parallel scripting language that the paper's workflows use (Figs. 14
// and 17): single-assignment typed variables (int, float, string, boolean,
// file), sparse arrays, app declarations that map to JETS-launched (possibly
// MPI) executables, foreach loops, if/else with the %% modulus operator, and
// file mappers. Statements execute concurrently under dataflow semantics:
// each runs as soon as its inputs are closed.
package swiftlang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokPunct // single/multi char punctuation and operators
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of script"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

// SyntaxError reports a lexing or parsing failure with position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("swift: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// multi-char operators, longest first.
var operators = []string{
	"%%", "==", "!=", "<=", ">=", "&&", "||",
	"(", ")", "{", "}", "[", "]", "<", ">", ",", ";", ":", "=",
	"+", "-", "*", "/", "!", "@", ".",
}

func (l *lexer) lex() ([]token, error) {
	var toks []token
	for {
		// Skip whitespace and comments.
		for l.pos < len(l.src) {
			r := l.peek()
			if unicode.IsSpace(r) {
				l.advance()
				continue
			}
			if r == '/' && l.peek2() == '/' {
				for l.pos < len(l.src) && l.peek() != '\n' {
					l.advance()
				}
				continue
			}
			if r == '#' {
				for l.pos < len(l.src) && l.peek() != '\n' {
					l.advance()
				}
				continue
			}
			if r == '/' && l.peek2() == '*' {
				l.advance()
				l.advance()
				for l.pos < len(l.src) && !(l.peek() == '*' && l.peek2() == '/') {
					l.advance()
				}
				if l.pos >= len(l.src) {
					return nil, l.errf("unterminated block comment")
				}
				l.advance()
				l.advance()
				continue
			}
			break
		}
		if l.pos >= len(l.src) {
			toks = append(toks, token{kind: tokEOF, line: l.line, col: l.col})
			return toks, nil
		}
		line, col := l.line, l.col
		r := l.peek()
		switch {
		case unicode.IsLetter(r) || r == '_':
			var b strings.Builder
			for l.pos < len(l.src) {
				r := l.peek()
				if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
					b.WriteRune(l.advance())
					continue
				}
				break
			}
			toks = append(toks, token{kind: tokIdent, text: b.String(), line: line, col: col})
		case unicode.IsDigit(r):
			var b strings.Builder
			isFloat := false
			for l.pos < len(l.src) {
				r := l.peek()
				if unicode.IsDigit(r) {
					b.WriteRune(l.advance())
					continue
				}
				// A '.' starts a fraction only if a digit follows; otherwise
				// it is member/punctuation.
				if r == '.' && !isFloat && unicode.IsDigit(l.peek2()) {
					isFloat = true
					b.WriteRune(l.advance())
					continue
				}
				break
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind: kind, text: b.String(), line: line, col: col})
		case r == '"':
			l.advance()
			var b strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, l.errf("unterminated string literal")
				}
				r := l.advance()
				if r == '"' {
					break
				}
				if r == '\\' {
					if l.pos >= len(l.src) {
						return nil, l.errf("unterminated escape")
					}
					esc := l.advance()
					switch esc {
					case 'n':
						b.WriteRune('\n')
					case 't':
						b.WriteRune('\t')
					case '"', '\\':
						b.WriteRune(esc)
					default:
						return nil, l.errf("unknown escape \\%c", esc)
					}
					continue
				}
				b.WriteRune(r)
			}
			toks = append(toks, token{kind: tokString, text: b.String(), line: line, col: col})
		default:
			matched := false
			for _, op := range operators {
				if l.hasPrefix(op) {
					for range op {
						l.advance()
					}
					toks = append(toks, token{kind: tokPunct, text: op, line: line, col: col})
					matched = true
					break
				}
			}
			if !matched {
				return nil, l.errf("unexpected character %q", r)
			}
		}
	}
}

func (l *lexer) hasPrefix(s string) bool {
	if l.pos+len(s) > len(l.src) {
		return false
	}
	for i, r := range s {
		if l.src[l.pos+i] != r {
			return false
		}
	}
	return true
}

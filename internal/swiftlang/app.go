package swiftlang

import (
	"context"
	"fmt"

	"jets/internal/dataflow"
)

// invokeApp performs one app call: wait for input values, resolve output
// file paths, evaluate the command line in the app's scope, hand the
// invocation to the executor, and set the output futures.
func (in *interp) invokeApp(ctx context.Context, ev *env, call *Call, targets []LValue, line int) error {
	app := in.prog.Apps[call.Name]
	if len(call.Args) != len(app.Ins) {
		return rtErrf(line, "app %s takes %d arguments, got %d", app.Name, len(app.Ins), len(call.Args))
	}
	if len(targets) != len(app.Outs) {
		return rtErrf(line, "app %s produces %d outputs, assignment has %d targets", app.Name, len(app.Outs), len(targets))
	}

	// App scope: parameters shadow the global scope, which stays visible —
	// Swift app blocks may reference global variables (Fig. 14's script uses
	// a global in the app's mpi clause).
	appEnv := newEnv(in.root)

	// Bind inputs: evaluation blocks until each argument's producers finish,
	// which is the dataflow dependency edge.
	for i, p := range app.Ins {
		if p.IsArray {
			return rtErrf(line, "app %s: array parameters are not supported", app.Name)
		}
		v, err := in.eval(ctx, ev, call.Args[i])
		if err != nil {
			return err
		}
		if p.Type == TFile {
			if _, ok := v.(FileVal); !ok {
				return rtErrf(line, "app %s: argument %s must be a file, got %T", app.Name, p.Name, v)
			}
		}
		sl := &slot{typ: p.Type, fut: dataflow.NewFuture(p.Name)}
		sl.fut.Set(v)
		if err := appEnv.declare(p.Name, sl); err != nil {
			return rtErrf(line, "%v", err)
		}
	}

	// Bind outputs: the concrete paths come from the caller's target file
	// variables; their futures are set only after the app completes.
	outFutures := make([]*dataflow.Future, len(targets))
	outVals := make([]FileVal, len(targets))
	var outPaths []string
	for i, p := range app.Outs {
		if p.Type != TFile {
			return rtErrf(line, "app %s: output %s must be a file", app.Name, p.Name)
		}
		path, fut, err := in.targetFilePath(ctx, ev, targets[i], line)
		if err != nil {
			return err
		}
		outFutures[i] = fut
		outVals[i] = FileVal{Path: path}
		outPaths = append(outPaths, path)
		sl := &slot{typ: TFile, fut: dataflow.NewFuture(p.Name)}
		sl.fut.Set(outVals[i])
		if err := appEnv.declare(p.Name, sl); err != nil {
			return rtErrf(line, "%v", err)
		}
	}

	inv := AppInvocation{App: app.Name, OutFiles: outPaths}

	// MPI size (may reference the app's parameters, e.g. "mpi n").
	if app.MPI != nil {
		v, err := in.eval(ctx, appEnv, app.MPI)
		if err != nil {
			return err
		}
		n, ok := v.(int64)
		if !ok || n < 1 {
			return rtErrf(line, "app %s: mpi size must be a positive int, got %v", app.Name, v)
		}
		inv.NProcs = int(n)
	}

	// Command line.
	for _, tok := range app.Tokens {
		switch {
		case tok.StdoutOf != nil:
			v, err := in.eval(ctx, appEnv, &FileOf{X: tok.StdoutOf})
			if err != nil {
				return err
			}
			inv.StdoutFile = v.(string)
		case tok.FileOf != nil:
			v, err := in.eval(ctx, appEnv, &FileOf{X: tok.FileOf})
			if err != nil {
				return err
			}
			inv.Tokens = append(inv.Tokens, v.(string))
		default:
			v, err := in.eval(ctx, appEnv, tok.Expr)
			if err != nil {
				return err
			}
			inv.Tokens = append(inv.Tokens, toDisplay(v))
		}
	}
	if len(inv.Tokens) == 0 {
		return rtErrf(line, "app %s resolved to an empty command", app.Name)
	}

	if err := in.cfg.Executor.Execute(ctx, inv); err != nil {
		return fmt.Errorf("swift: app %s (line %d): %w", app.Name, line, err)
	}

	for i, fut := range outFutures {
		if err := fut.Set(outVals[i]); err != nil {
			return err
		}
	}
	return nil
}

package swiftlang

// Batched submission. The compiled runtime hands invocations to an
// AsyncExecutor; the JETS-backed implementation coalesces them into grouped
// dispatcher submits (core.Engine.SubmitBatch) riding the wire protocol's
// write coalescing, with a shared completion demux (dispatch.Handle.OnDone)
// instead of one goroutine parked per job.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"jets/internal/dataflow"
	"jets/internal/dispatch"
	"jets/internal/hydra"
)

// AsyncExecutor is an Executor with a non-blocking submission path. done is
// called when the invocation completes; the compiled runtime tolerates late
// calls (a canceled run abandons its waits first, as the interpreter
// abandons Done() waits).
type AsyncExecutor interface {
	Executor
	ExecuteAsync(ctx context.Context, inv AppInvocation, done func(error))
}

// Flusher is implemented by executors that buffer submissions; the compiled
// runtime flushes once the whole program has been walked.
type Flusher interface {
	Flush()
}

// goAsync adapts a synchronous Executor with a goroutine per call — the
// compiled runtime's fallback, cost-equivalent to the interpreter's
// per-statement goroutine.
type goAsync struct {
	ex  Executor
	eng *dataflow.Engine
}

func (g goAsync) Execute(ctx context.Context, inv AppInvocation) error {
	return g.ex.Execute(ctx, inv)
}

func (g goAsync) ExecuteAsync(ctx context.Context, inv AppInvocation, done func(error)) {
	g.eng.Go(func(ctx context.Context) error {
		done(g.ex.Execute(ctx, inv))
		return nil
	})
}

// Batching defaults; see the corresponding JETSExecutor fields.
const (
	defaultBatchMax   = 256
	defaultBatchDelay = 2 * time.Millisecond
)

type pendingSubmit struct {
	jobID string
	job   dispatch.Job
	done  func(error)
	f     *os.File // stdout redirect, registered at enqueue
}

// ExecuteAsync implements AsyncExecutor: the invocation is buffered and
// submitted with the next batch — when the buffer reaches BatchMax or the
// flush timer (BatchDelay after the first pending entry) fires, whichever
// comes first.
func (x *JETSExecutor) ExecuteAsync(ctx context.Context, inv AppInvocation, done func(error)) {
	if x.eng == nil {
		done(fmt.Errorf("swift: JETS executor not bound to an engine"))
		return
	}
	job, f, err := x.buildJob(inv)
	if err != nil {
		done(err)
		return
	}
	swiftTasksSubmitted.Add(1)
	x.bmu.Lock()
	x.pending = append(x.pending, pendingSubmit{jobID: job.Spec.JobID, job: job, done: done, f: f})
	n := len(x.pending)
	if n == 1 {
		delay := x.BatchDelay
		if delay <= 0 {
			delay = defaultBatchDelay
		}
		x.timer = time.AfterFunc(delay, x.Flush)
	}
	max := x.BatchMax
	if max <= 0 {
		max = defaultBatchMax
	}
	x.bmu.Unlock()
	if n >= max {
		x.Flush()
	}
}

// Flush submits every buffered invocation as one dispatcher batch and wires
// each handle's completion callback.
func (x *JETSExecutor) Flush() {
	x.bmu.Lock()
	pend := x.pending
	x.pending = nil
	if x.timer != nil {
		x.timer.Stop()
		x.timer = nil
	}
	x.bmu.Unlock()
	if len(pend) == 0 {
		return
	}
	swiftBatchSize.Observe(time.Duration(len(pend)) * time.Second)
	jobs := make([]dispatch.Job, len(pend))
	for i := range pend {
		jobs[i] = pend[i].job
	}
	handles, err := x.eng.SubmitBatch(jobs)
	if err != nil {
		for i := range pend {
			p := pend[i]
			x.releaseStdout(p.jobID, p.f)
			p.done(err)
		}
		return
	}
	for i, h := range handles {
		p := pend[i]
		h.OnDone(func(res dispatch.JobResult) {
			x.releaseStdout(p.jobID, p.f)
			if res.Failed {
				p.done(fmt.Errorf("job %s failed: %s", p.jobID, res.Err))
				return
			}
			p.done(nil)
		})
	}
}

// buildJob resolves one invocation into a dispatcher job, creating the
// stdout redirect file and output directories.
func (x *JETSExecutor) buildJob(inv AppInvocation) (dispatch.Job, *os.File, error) {
	jobID := fmt.Sprintf("swift-%s-%d", inv.App, x.seq.Add(1))
	var f *os.File
	if inv.StdoutFile != "" {
		if err := os.MkdirAll(filepath.Dir(inv.StdoutFile), 0o755); err != nil {
			return dispatch.Job{}, nil, err
		}
		var err error
		f, err = os.Create(inv.StdoutFile)
		if err != nil {
			return dispatch.Job{}, nil, err
		}
		x.mu.Lock()
		x.stdouts[jobID] = f
		x.mu.Unlock()
	}
	for _, out := range inv.OutFiles {
		if dir := filepath.Dir(out); dir != "." && dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				x.releaseStdout(jobID, f)
				return dispatch.Job{}, nil, err
			}
		}
	}
	job := dispatch.Job{
		Spec: hydra.JobSpec{
			JobID:  jobID,
			NProcs: 1,
			Cmd:    inv.Tokens[0],
			Args:   inv.Tokens[1:],
		},
		Type: dispatch.Sequential,
	}
	if inv.NProcs > 0 {
		job.Type = dispatch.MPI
		job.Spec.NProcs = inv.NProcs
	}
	return job, f, nil
}

// releaseStdout unregisters and closes a job's stdout redirect.
func (x *JETSExecutor) releaseStdout(jobID string, f *os.File) {
	if f == nil {
		return
	}
	x.mu.Lock()
	delete(x.stdouts, jobID)
	x.mu.Unlock()
	f.Close()
}

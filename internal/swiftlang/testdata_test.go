package swiftlang

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func loadScript(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestFig14Script runs the §6.2.1 synthetic-workload script shape.
func TestFig14Script(t *testing.T) {
	src := loadScript(t, "fig14.swift")
	exec := NewFuncExecutor()
	var mu sync.Mutex
	sizes := map[int]int{}
	exec.Register("synthetic", func(ctx context.Context, inv AppInvocation) error {
		mu.Lock()
		sizes[inv.NProcs]++
		mu.Unlock()
		return nil
	})
	var out bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := RunScript(ctx, src, Config{
		Executor: exec, Stdout: &out, WorkDir: t.TempDir(),
		Args: map[string]string{"njobs": "6", "nodes": "3", "waitms": "1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if sizes[3] != 6 {
		t.Fatalf("sizes=%v; want 6 jobs of 3 nodes", sizes)
	}
	if !strings.Contains(out.String(), "generated 6 MPI jobs of 3 nodes") {
		t.Fatalf("out=%s", out.String())
	}
}

// TestFig17Script runs the REM core-loop script and checks the dataflow
// ordering constraints the paper describes.
func TestFig17Script(t *testing.T) {
	src := loadScript(t, "fig17.swift")
	exec := NewFuncExecutor()
	var mu sync.Mutex
	var ops []string
	exec.Register("namd", func(ctx context.Context, inv AppInvocation) error {
		mu.Lock()
		ops = append(ops, "namd "+strings.Join(inv.Tokens[1:], " "))
		mu.Unlock()
		return nil
	})
	exec.Register("exchange", func(ctx context.Context, inv AppInvocation) error {
		mu.Lock()
		ops = append(ops, "exchange "+strings.Join(inv.Tokens[1:], " "))
		mu.Unlock()
		return nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err := RunScript(ctx, src, Config{
		Executor: exec, WorkDir: t.TempDir(),
		Args: map[string]string{"nreps": "4", "rounds": "2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// 4 initial segments + per round (2 exchanges + 4 segments) x 2 rounds.
	wantOps := 4 + 2*(2+4)
	if len(ops) != wantOps {
		t.Fatalf("ops=%d want %d: %v", len(ops), wantOps, ops)
	}
	pos := map[string]int{}
	for i, op := range ops {
		pos[op] = i
	}
	// Round-0 exchange of pair (0,1) must come after both initial segments
	// and before both round-1 segments of those replicas.
	ex := "exchange c_0.file c_100.file"
	if _, ok := pos[ex]; !ok {
		t.Fatalf("missing %q in %v", ex, ops)
	}
	for _, before := range []string{"namd 0 0 cold-start", "namd 1 0 cold-start"} {
		if pos[ex] < pos[before] {
			t.Fatalf("%q ran before %q", ex, before)
		}
	}
	for _, after := range []string{
		fmt.Sprintf("namd 0 1 x_%d.file", 0),
		fmt.Sprintf("namd 1 1 x_%d.file", 1),
	} {
		if pos[after] < pos[ex] {
			t.Fatalf("%q ran before %q", after, ex)
		}
	}
	// Odd round wraps: exchange of pair (3,0) must exist in round 1.
	wrap := "exchange c_301.file c_1.file"
	if _, ok := pos[wrap]; !ok {
		t.Fatalf("missing wrap-around exchange %q in %v", wrap, ops)
	}
}

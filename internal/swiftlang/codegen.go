package swiftlang

import (
	"context"
	"errors"
	"fmt"

	"jets/internal/dataflow"
)

// Expression lowering. Each expression compiles once into a cexpr closure
// that evaluates against a frame chain; variable references are resolved to
// (depth, slot) indices at compile time, so evaluation never walks an
// environment map or takes a scope lock. Pure constant subtrees fold to
// their value during compilation.

// errWouldBlock is the non-blocking fast path's signal: evaluation reached
// an unset future. Statements perform all reads before any side effect, so
// the caller can safely retry the whole statement on a blocking goroutine.
var errWouldBlock = errors.New("swift: evaluation would block")

// ectx is one evaluation context: the engine's cancellation context, the
// run state, and whether future reads may block.
type ectx struct {
	ctx      context.Context
	rt       *crt
	blocking bool
}

// cexpr is a compiled expression.
type cexpr func(fr *frame, ec *ectx) (interface{}, error)

// cval carries a compiled expression plus the compile-time facts statement
// lowering needs: a folded constant value when the subtree was pure, and
// whether evaluation can perform a side effect (trace output or an app
// invocation) — effectful expressions are kept off the inline fast path
// because a would-block retry would repeat the effect.
type cval struct {
	fn        cexpr
	k         interface{}
	isK       bool
	effectful bool
}

func constVal(v interface{}) cval {
	return cval{fn: func(*frame, *ectx) (interface{}, error) { return v, nil }, k: v, isK: true}
}

// errVal defers a compile-time-detected semantic error to run time, where
// the interpreter would raise it — keeping failure messages and laziness
// identical between modes.
func errVal(err error) cval {
	return cval{fn: func(*frame, *ectx) (interface{}, error) { return nil, err }}
}

// readFut reads a future under the evaluation mode.
func readFut(f *dataflow.Future, ec *ectx) (interface{}, error) {
	if v, ok := f.TryGet(); ok {
		return v, nil
	}
	if !ec.blocking {
		return nil, errWouldBlock
	}
	return f.Get(ec.ctx)
}

// frameAt hops depth frames up the chain.
func frameAt(fr *frame, depth int) *frame {
	for ; depth > 0; depth-- {
		fr = fr.parent
	}
	return fr
}

func (c *compiler) compileExpr(sc *cscope, e Expr) cval {
	switch x := e.(type) {
	case *Lit:
		return constVal(x.Val)

	case *Ident:
		scope, idx, depth := sc.resolve(x.Name)
		if scope == nil {
			return errVal(rtErrf(x.Line, "undeclared variable %q", x.Name))
		}
		sb := &scope.bp.slots[idx]
		if sb.kind == kArr {
			return errVal(rtErrf(x.Line, "array %q used as a scalar", x.Name))
		}
		if sb.kind == kImm {
			return cval{fn: func(fr *frame, ec *ectx) (interface{}, error) {
				return frameAt(fr, depth).slots[idx].imm, nil
			}}
		}
		return cval{fn: func(fr *frame, ec *ectx) (interface{}, error) {
			return readFut(frameAt(fr, depth).slots[idx].fut, ec)
		}}

	case *Index:
		id, ok := x.Arr.(*Ident)
		if !ok {
			return errVal(rtErrf(0, "only named arrays can be indexed"))
		}
		scope, idx, depth := sc.resolve(id.Name)
		if scope == nil {
			return errVal(rtErrf(id.Line, "undeclared variable %q", id.Name))
		}
		if scope.bp.slots[idx].kind != kArr {
			return errVal(rtErrf(id.Line, "%q is not an array", id.Name))
		}
		iv := c.compileExpr(sc, x.Index)
		line := id.Line
		return cval{effectful: iv.effectful, fn: func(fr *frame, ec *ectx) (interface{}, error) {
			i, err := evalIndex(iv.fn, fr, ec, line)
			if err != nil {
				return nil, err
			}
			return readFut(frameAt(fr, depth).slots[idx].arr.Elem(int(i)), ec)
		}}

	case *Call:
		cv, _ := c.compileCall(sc, x)
		return cv

	case *Unary:
		xv := c.compileExpr(sc, x.X)
		if xv.isK {
			v, err := applyUnary(x.Op, xv.k)
			if err != nil {
				return errVal(err)
			}
			return constVal(v)
		}
		op := x.Op
		return cval{effectful: xv.effectful, fn: func(fr *frame, ec *ectx) (interface{}, error) {
			v, err := xv.fn(fr, ec)
			if err != nil {
				return nil, err
			}
			return applyUnary(op, v)
		}}

	case *Binary:
		l := c.compileExpr(sc, x.L)
		r := c.compileExpr(sc, x.R)
		if l.isK && r.isK {
			v, err := binaryOp(x.Op, l.k, r.k)
			if err != nil {
				return errVal(err)
			}
			return constVal(v)
		}
		op := x.Op
		return cval{effectful: l.effectful || r.effectful, fn: func(fr *frame, ec *ectx) (interface{}, error) {
			lv, err := l.fn(fr, ec)
			if err != nil {
				return nil, err
			}
			rv, err := r.fn(fr, ec)
			if err != nil {
				return nil, err
			}
			return binaryOp(op, lv, rv)
		}}

	case *FileOf:
		xv := c.compileExpr(sc, x.X)
		return cval{effectful: xv.effectful, fn: func(fr *frame, ec *ectx) (interface{}, error) {
			v, err := xv.fn(fr, ec)
			if err != nil {
				return nil, err
			}
			f, ok := v.(FileVal)
			if !ok {
				return nil, rtErrf(0, "@ needs a file value, got %T", v)
			}
			return f.Path, nil
		}}
	}
	return errVal(fmt.Errorf("swift: unknown expression %T", e))
}

// compileCall lowers a call expression: app invocations become a submit-and-
// wait (expression position is rare; statement position uses the async path
// in compile.go), builtins bind to the shared host. The second result
// reports whether any ARGUMENT is effectful, which an ExprStmt uses for its
// fast-path decision: a top-level trace's own print happens after all reads,
// so only nested effects force the goroutine path.
func (c *compiler) compileCall(sc *cscope, call *Call) (cval, bool) {
	if _, isApp := c.prog.Apps[call.Name]; isApp {
		ac := c.compileAppCall(sc, call, nil, call.Line)
		return cval{effectful: true, fn: func(fr *frame, ec *ectx) (interface{}, error) {
			return nil, ac.invokeWait(fr, ec)
		}}, true
	}
	args := make([]cval, len(call.Args))
	allK := true
	argsEffectful := false
	for i, a := range call.Args {
		args[i] = c.compileExpr(sc, a)
		allK = allK && args[i].isK
		argsEffectful = argsEffectful || args[i].effectful
	}
	if allK && builtinFoldable(call.Name) {
		kargs := make([]interface{}, len(args))
		for i := range args {
			kargs[i] = args[i].k
		}
		v, err := (&builtinHost{}).call(call.Name, kargs, call.Line)
		if err != nil {
			return errVal(err), false
		}
		return constVal(v), false
	}
	name, line := call.Name, call.Line
	selfEffect := name == "trace"
	return cval{effectful: selfEffect || argsEffectful, fn: func(fr *frame, ec *ectx) (interface{}, error) {
		vals := make([]interface{}, len(args))
		for i := range args {
			v, err := args[i].fn(fr, ec)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return ec.rt.host.call(name, vals, line)
	}}, argsEffectful
}

// evalIndex evaluates an array subscript to an int.
func evalIndex(fn cexpr, fr *frame, ec *ectx, line int) (int64, error) {
	v, err := fn(fr, ec)
	if err != nil {
		return 0, err
	}
	i, ok := v.(int64)
	if !ok {
		return 0, rtErrf(line, "array index must be int, got %T", v)
	}
	return i, nil
}

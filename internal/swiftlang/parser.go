package swiftlang

import (
	"fmt"
	"strconv"
)

// Parse compiles a mini-Swift script into a Program.
func Parse(src string) (*Program, error) {
	toks, err := newLexer(src).lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	t := p.cur()
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) isPunct(s string) bool {
	return p.cur().kind == tokPunct && p.cur().text == s
}

func (p *parser) isIdent(s string) bool {
	return p.cur().kind == tokIdent && p.cur().text == s
}

func (p *parser) accept(s string) bool {
	if p.isPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if !p.accept(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	if p.cur().kind != tokIdent {
		return token{}, p.errf("expected identifier, found %s", p.cur())
	}
	return p.next(), nil
}

var typeNames = map[string]Type{
	"int": TInt, "float": TFloat, "string": TString,
	"boolean": TBool, "bool": TBool, "file": TFile,
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{Apps: map[string]*AppDecl{}}
	for p.cur().kind != tokEOF {
		switch {
		case p.isIdent("type"):
			// "type file;" style declarations: accepted, no effect (file is
			// built in).
			p.next()
			if _, err := p.expectIdent(); err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		case p.isIdent("app"):
			app, err := p.parseApp()
			if err != nil {
				return nil, err
			}
			if _, dup := prog.Apps[app.Name]; dup {
				return nil, &SyntaxError{Line: app.Line, Msg: fmt.Sprintf("duplicate app %q", app.Name)}
			}
			prog.Apps[app.Name] = app
		default:
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			prog.Stmts = append(prog.Stmts, s)
		}
	}
	return prog, nil
}

func (p *parser) parseParams() ([]Param, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out []Param
	if p.accept(")") {
		return out, nil
	}
	for {
		tt, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typ, ok := typeNames[tt.text]
		if !ok {
			return nil, p.errf("unknown type %q", tt.text)
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		param := Param{Type: typ, Name: name.text}
		if p.accept("[") {
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			param.IsArray = true
		}
		out = append(out, param)
		if p.accept(")") {
			return out, nil
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseApp() (*AppDecl, error) {
	line := p.cur().line
	p.next() // "app"
	outs, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	app := &AppDecl{Name: name.text, Outs: outs, Ins: ins, Line: line}
	if p.isIdent("mpi") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		app.MPI = e
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	// Command line: tokens until ';', then '}'.
	for !p.isPunct(";") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated app body")
		}
		tok, err := p.parseCmdToken()
		if err != nil {
			return nil, err
		}
		app.Tokens = append(app.Tokens, tok)
	}
	p.next() // ';'
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	if len(app.Tokens) == 0 {
		return nil, &SyntaxError{Line: line, Msg: fmt.Sprintf("app %q has an empty command", app.Name)}
	}
	return app, nil
}

func (p *parser) parseCmdToken() (CmdToken, error) {
	// stdout=@expr
	if p.isIdent("stdout") && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "=" {
		p.next()
		p.next()
		if !p.accept("@") {
			return CmdToken{}, p.errf("stdout= must name a file with @")
		}
		e, err := p.parsePrimary()
		if err != nil {
			return CmdToken{}, err
		}
		return CmdToken{StdoutOf: e}, nil
	}
	if p.accept("@") {
		e, err := p.parsePostfix()
		if err != nil {
			return CmdToken{}, err
		}
		return CmdToken{FileOf: e}, nil
	}
	// A command token is a full expression, so "-temp" 300+rep*20 works;
	// adjacent tokens stay separate because no operator joins them.
	e, err := p.parseExpr()
	if err != nil {
		return CmdToken{}, err
	}
	return CmdToken{Expr: e}, nil
}

var stmtKeywords = map[string]bool{"if": true, "foreach": true}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	if p.isIdent("if") {
		return p.parseIf()
	}
	if p.isIdent("foreach") {
		return p.parseForeach()
	}
	if t.kind == tokIdent {
		if _, ok := typeNames[t.text]; ok {
			return p.parseVarDecl()
		}
	}
	if p.isPunct("(") {
		return p.parseTupleAssign()
	}
	if t.kind == tokIdent && !stmtKeywords[t.text] {
		// Could be an assignment (ident [index] =) or an expression
		// statement (a call).
		save := p.pos
		lv, err := p.tryParseLValue()
		if err == nil && p.accept("=") {
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			return &Assign{Targets: []LValue{lv}, RHS: rhs, Line: t.line}, nil
		}
		p.pos = save
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: e, Line: t.line}, nil
	}
	return nil, p.errf("unexpected %s at statement start", t)
}

func (p *parser) tryParseLValue() (LValue, error) {
	name, err := p.expectIdent()
	if err != nil {
		return LValue{}, err
	}
	lv := LValue{Name: name.text}
	if p.accept("[") {
		idx, err := p.parseExpr()
		if err != nil {
			return LValue{}, err
		}
		if err := p.expect("]"); err != nil {
			return LValue{}, err
		}
		lv.Index = idx
	}
	return lv, nil
}

func (p *parser) parseVarDecl() (Stmt, error) {
	t := p.next() // type keyword
	typ := typeNames[t.text]
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Type: typ, Name: name.text, Line: t.line}
	if p.accept("[") {
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		d.IsArray = true
	}
	if p.accept("<") {
		// The mapper is a primary expression (string literal or call such as
		// strcat(...)) — binary operators would be ambiguous with the
		// closing '>'.
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		d.Mapper = e
		if err := p.expect(">"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseTupleAssign() (Stmt, error) {
	line := p.cur().line
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var targets []LValue
	for {
		lv, err := p.tryParseLValue()
		if err != nil {
			return nil, err
		}
		targets = append(targets, lv)
		if p.accept(")") {
			break
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return &Assign{Targets: targets, RHS: rhs, Line: line}, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) parseIf() (Stmt, error) {
	line := p.next().line // "if"
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node := &If{Cond: cond, Then: then, Line: line}
	if p.isIdent("else") {
		p.next()
		if p.isIdent("if") {
			s, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			node.Else = []Stmt{s}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
	}
	return node, nil
}

func (p *parser) parseForeach() (Stmt, error) {
	line := p.next().line // "foreach"
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	node := &Foreach{Var: v.text, Line: line}
	if p.accept(",") {
		iv, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		node.IndexVar = iv.text
	}
	if !p.isIdent("in") {
		return nil, p.errf("expected 'in', found %s", p.cur())
	}
	p.next()
	if p.accept("[") {
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		node.RangeLo, node.RangeHi = lo, hi
	} else {
		src, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		node.Source = src
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node.Body = body
	return node, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%%": 6,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next().text
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, L: lhs, R: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.isPunct("!") || p.isPunct("-") {
		op := p.next().text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.accept("[") {
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		e = &Index{Arr: e, Index: idx}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return &Lit{Val: v}, nil
	case tokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", t.text)
		}
		return &Lit{Val: v}, nil
	case tokString:
		p.next()
		return &Lit{Val: t.text}, nil
	case tokIdent:
		switch t.text {
		case "true":
			p.next()
			return &Lit{Val: true}, nil
		case "false":
			p.next()
			return &Lit{Val: false}, nil
		}
		p.next()
		if p.isPunct("(") {
			p.next()
			call := &Call{Name: t.text, Line: t.line}
			if !p.accept(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if p.accept(")") {
						break
					}
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
			return call, nil
		}
		return &Ident{Name: t.text, Line: t.line}, nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "@" {
			p.next()
			e, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			return &FileOf{X: e}, nil
		}
	}
	return nil, p.errf("unexpected %s in expression", t)
}

package swiftlang

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jets/internal/core"
)

// JETSExecutor submits app invocations to a JETS engine — the
// MPICH/Coasters form of §5.2: Swift produces the task, JETS decomposes and
// launches it. Asynchronous submissions (ExecuteAsync, used by the compiled
// runtime) are coalesced into dispatcher batches; see batch.go.
type JETSExecutor struct {
	// BatchMax caps how many pending async submissions accumulate before a
	// forced flush; BatchDelay bounds how long the first pending submission
	// waits for company. Zero values select the package defaults.
	BatchMax   int
	BatchDelay time.Duration

	eng *core.Engine
	seq atomic.Int64

	mu      sync.Mutex
	stdouts map[string]*os.File // jobID -> open redirect target

	bmu     sync.Mutex
	pending []pendingSubmit
	timer   *time.Timer
}

// NewJETSExecutor wraps an engine. Wire OutputSink into the engine's
// OnOutput option to make stdout=@file redirection functional:
//
//	exec := swiftlang.NewJETSExecutor()
//	eng, _ := core.NewEngine(core.Options{..., OnOutput: exec.OutputSink})
//	exec.Bind(eng)
func NewJETSExecutor() *JETSExecutor {
	return &JETSExecutor{stdouts: map[string]*os.File{}}
}

// Bind attaches the engine (two-phase construction because the engine needs
// the executor's OutputSink at creation).
func (x *JETSExecutor) Bind(eng *core.Engine) { x.eng = eng }

// OutputSink routes task output chunks into any registered stdout redirect
// file, reproducing the application -> proxy -> mpiexec -> JETS -> file
// path.
func (x *JETSExecutor) OutputSink(taskID, stream string, data []byte) {
	jobID := taskID
	if i := strings.IndexByte(taskID, '/'); i >= 0 {
		jobID = taskID[:i]
	}
	x.mu.Lock()
	f := x.stdouts[jobID]
	x.mu.Unlock()
	if f != nil {
		n, err := f.Write(data)
		if err != nil {
			swiftRedirectDrops.Add(int64(len(data) - n))
		}
	}
}

// Execute implements Executor.
func (x *JETSExecutor) Execute(ctx context.Context, inv AppInvocation) error {
	if x.eng == nil {
		return fmt.Errorf("swift: JETS executor not bound to an engine")
	}
	job, f, err := x.buildJob(inv)
	if err != nil {
		return err
	}
	jobID := job.Spec.JobID
	defer x.releaseStdout(jobID, f)
	swiftTasksSubmitted.Add(1)
	h, err := x.eng.Submit(job)
	if err != nil {
		return err
	}
	select {
	case <-h.Done():
	case <-ctx.Done():
		return ctx.Err()
	}
	res, _ := h.TryResult()
	if res.Failed {
		return fmt.Errorf("job %s failed: %s", jobID, res.Err)
	}
	return nil
}

// FuncExecutor runs invocations as registered Go functions, for tests and
// dry runs of scripts.
type FuncExecutor struct {
	mu    sync.Mutex
	fns   map[string]func(ctx context.Context, inv AppInvocation) error
	calls []AppInvocation
}

// NewFuncExecutor creates an empty function executor.
func NewFuncExecutor() *FuncExecutor {
	return &FuncExecutor{fns: map[string]func(context.Context, AppInvocation) error{}}
}

// Register installs fn for invocations whose first command token equals cmd.
func (x *FuncExecutor) Register(cmd string, fn func(ctx context.Context, inv AppInvocation) error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.fns[cmd] = fn
}

// Calls returns a copy of every invocation executed, in completion order.
func (x *FuncExecutor) Calls() []AppInvocation {
	x.mu.Lock()
	defer x.mu.Unlock()
	return append([]AppInvocation(nil), x.calls...)
}

// Execute implements Executor.
func (x *FuncExecutor) Execute(ctx context.Context, inv AppInvocation) error {
	x.mu.Lock()
	fn, ok := x.fns[inv.Tokens[0]]
	x.mu.Unlock()
	if !ok {
		return fmt.Errorf("no function registered for command %q", inv.Tokens[0])
	}
	if err := fn(ctx, inv); err != nil {
		return err
	}
	x.mu.Lock()
	x.calls = append(x.calls, inv)
	x.mu.Unlock()
	return nil
}

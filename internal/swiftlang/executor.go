package swiftlang

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"jets/internal/core"
	"jets/internal/dispatch"
	"jets/internal/hydra"
)

// JETSExecutor submits app invocations to a JETS engine — the
// MPICH/Coasters form of §5.2: Swift produces the task, JETS decomposes and
// launches it.
type JETSExecutor struct {
	eng *core.Engine
	seq atomic.Int64

	mu      sync.Mutex
	stdouts map[string]*os.File // jobID -> open redirect target
}

// NewJETSExecutor wraps an engine. Wire OutputSink into the engine's
// OnOutput option to make stdout=@file redirection functional:
//
//	exec := swiftlang.NewJETSExecutor()
//	eng, _ := core.NewEngine(core.Options{..., OnOutput: exec.OutputSink})
//	exec.Bind(eng)
func NewJETSExecutor() *JETSExecutor {
	return &JETSExecutor{stdouts: map[string]*os.File{}}
}

// Bind attaches the engine (two-phase construction because the engine needs
// the executor's OutputSink at creation).
func (x *JETSExecutor) Bind(eng *core.Engine) { x.eng = eng }

// OutputSink routes task output chunks into any registered stdout redirect
// file, reproducing the application -> proxy -> mpiexec -> JETS -> file
// path.
func (x *JETSExecutor) OutputSink(taskID, stream string, data []byte) {
	jobID := taskID
	if i := indexByte(taskID, '/'); i >= 0 {
		jobID = taskID[:i]
	}
	x.mu.Lock()
	f := x.stdouts[jobID]
	x.mu.Unlock()
	if f != nil {
		f.Write(data)
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Execute implements Executor.
func (x *JETSExecutor) Execute(ctx context.Context, inv AppInvocation) error {
	if x.eng == nil {
		return fmt.Errorf("swift: JETS executor not bound to an engine")
	}
	jobID := fmt.Sprintf("swift-%s-%d", inv.App, x.seq.Add(1))

	if inv.StdoutFile != "" {
		if err := os.MkdirAll(filepath.Dir(inv.StdoutFile), 0o755); err != nil {
			return err
		}
		f, err := os.Create(inv.StdoutFile)
		if err != nil {
			return err
		}
		x.mu.Lock()
		x.stdouts[jobID] = f
		x.mu.Unlock()
		defer func() {
			x.mu.Lock()
			delete(x.stdouts, jobID)
			x.mu.Unlock()
			f.Close()
		}()
	}
	for _, out := range inv.OutFiles {
		if dir := filepath.Dir(out); dir != "." && dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}

	job := dispatch.Job{
		Spec: hydra.JobSpec{
			JobID:  jobID,
			NProcs: 1,
			Cmd:    inv.Tokens[0],
			Args:   inv.Tokens[1:],
		},
		Type: dispatch.Sequential,
	}
	if inv.NProcs > 0 {
		job.Type = dispatch.MPI
		job.Spec.NProcs = inv.NProcs
	}
	h, err := x.eng.Submit(job)
	if err != nil {
		return err
	}
	select {
	case <-h.Done():
	case <-ctx.Done():
		return ctx.Err()
	}
	res, _ := h.TryResult()
	if res.Failed {
		return fmt.Errorf("job %s failed: %s", jobID, res.Err)
	}
	return nil
}

// FuncExecutor runs invocations as registered Go functions, for tests and
// dry runs of scripts.
type FuncExecutor struct {
	mu    sync.Mutex
	fns   map[string]func(ctx context.Context, inv AppInvocation) error
	calls []AppInvocation
}

// NewFuncExecutor creates an empty function executor.
func NewFuncExecutor() *FuncExecutor {
	return &FuncExecutor{fns: map[string]func(context.Context, AppInvocation) error{}}
}

// Register installs fn for invocations whose first command token equals cmd.
func (x *FuncExecutor) Register(cmd string, fn func(ctx context.Context, inv AppInvocation) error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.fns[cmd] = fn
}

// Calls returns a copy of every invocation executed, in completion order.
func (x *FuncExecutor) Calls() []AppInvocation {
	x.mu.Lock()
	defer x.mu.Unlock()
	return append([]AppInvocation(nil), x.calls...)
}

// Execute implements Executor.
func (x *FuncExecutor) Execute(ctx context.Context, inv AppInvocation) error {
	x.mu.Lock()
	fn, ok := x.fns[inv.Tokens[0]]
	x.mu.Unlock()
	if !ok {
		return fmt.Errorf("no function registered for command %q", inv.Tokens[0])
	}
	if err := fn(ctx, inv); err != nil {
		return err
	}
	x.mu.Lock()
	x.calls = append(x.calls, inv)
	x.mu.Unlock()
	return nil
}

package swiftlang

// AST node definitions for the mini-Swift language.

// Type is a mini-Swift static type.
type Type int

// Scalar types; arrays are Type plus the IsArray flag on declarations.
const (
	TInt Type = iota
	TFloat
	TString
	TBool
	TFile
)

func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	case TBool:
		return "boolean"
	case TFile:
		return "file"
	}
	return "?"
}

// Program is a parsed script.
type Program struct {
	Apps  map[string]*AppDecl
	Stmts []Stmt
}

// Param is one formal parameter of an app.
type Param struct {
	Type    Type
	IsArray bool
	Name    string
}

// AppDecl declares an external application:
//
//	app (file o) namd (file c, int steps) mpi 4 {
//	    "namd2" "-in" @c "-steps" steps stdout=@o;
//	}
type AppDecl struct {
	Name   string
	Outs   []Param
	Ins    []Param
	MPI    Expr // process count; nil for sequential apps
	Tokens []CmdToken
	Line   int
}

// CmdToken is one token of an app command line.
type CmdToken struct {
	// Expr evaluates to the token text (string/int/float/bool).
	Expr Expr
	// FileOf, when set, means the token is @ident: the filename of the
	// referenced file variable.
	FileOf Expr
	// StdoutOf, when set, redirects the task's standard output to the
	// referenced file (stdout=@f).
	StdoutOf Expr
}

// Stmt is a statement.
type Stmt interface{ stmtNode() }

// VarDecl declares (and optionally initializes) a variable:
//
//	int x = 3;
//	file f <"out.txt">;
//	file c[] <"c_%d.dat">;
type VarDecl struct {
	Type    Type
	IsArray bool
	Name    string
	Mapper  Expr // optional path (or %d pattern for arrays)
	Init    Expr // optional initializer (may be a Call)
	Line    int
}

// Assign writes one or more lvalues from an expression or app call:
//
//	x = f(1);
//	(a, b[i]) = twoOutputs(c);
type Assign struct {
	Targets []LValue
	RHS     Expr
	Line    int
}

// LValue is an assignable reference.
type LValue struct {
	Name  string
	Index Expr // nil for scalars
}

// If executes one branch once the condition's inputs are available.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// Foreach iterates a range or an array:
//
//	foreach i in [0:n] { ... }
//	foreach v, i in a { ... }
type Foreach struct {
	Var      string
	IndexVar string // optional second identifier
	RangeLo  Expr   // range form when non-nil
	RangeHi  Expr
	Source   Expr // array form when non-nil
	Body     []Stmt
	Line     int
}

// ExprStmt evaluates an expression for effect (e.g. trace(...)).
type ExprStmt struct {
	X    Expr
	Line int
}

func (*VarDecl) stmtNode()  {}
func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*Foreach) stmtNode()  {}
func (*ExprStmt) stmtNode() {}

// Expr is an expression.
type Expr interface{ exprNode() }

// Lit is a literal (int64, float64, string, bool).
type Lit struct{ Val interface{} }

// Ident references a variable.
type Ident struct {
	Name string
	Line int
}

// Index is a[i].
type Index struct {
	Arr   Expr
	Index Expr
}

// Call invokes an app or builtin.
type Call struct {
	Name string
	Args []Expr
	Line int
}

// Unary is !x or -x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is x op y.
type Binary struct {
	Op   string
	L, R Expr
}

// FileOf is @f inside an expression context (the filename of a file value).
type FileOf struct{ X Expr }

func (*Lit) exprNode()    {}
func (*Ident) exprNode()  {}
func (*Index) exprNode()  {}
func (*Call) exprNode()   {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}
func (*FileOf) exprNode() {}

package swiftlang

// compile.go lowers a parsed Program into a static dataflow graph executed
// by a compiled runtime (crt). The one-shot pass resolves every variable
// reference to a (depth, slot) index, folds constant subtrees, specializes
// each foreach body into one compiled blueprint instantiated per index, and
// emits AppInvocations directly. At run time, statements whose reads all
// precede their side effects execute inline without blocking; only
// statements suspended on an unset future fall back to the interpreter's
// goroutine-per-statement cost model.

import (
	"fmt"
	"path/filepath"
	"time"

	"jets/internal/dataflow"
)

// ---------------------------------------------------------------------------
// Blueprints: the compile-time shape of blocks and slots

type slotKind uint8

const (
	kImm slotKind = iota // value written by the runtime before statements launch
	kFut                 // single-assignment scalar
	kArr                 // sparse single-assignment array
)

type pathKind uint8

const (
	pathNone    pathKind = iota
	pathAuto             // auto-mapped: concrete path minted at frame init
	pathConst            // mapper folded to a constant string
	pathRuntime          // mapper evaluated by a statement, through a future
)

// slotBP is the compile-time layout of one declared variable.
type slotBP struct {
	name       string
	typ        Type
	kind       slotKind
	futIdx     int         // index into the frame's bulk future slice (kFut)
	immVal     interface{} // kImm slots with a literal initializer
	path       pathKind
	constPath  string
	pathFutIdx int
}

// blockBP is the blueprint of one lexical block: slot layout plus lowered
// statements. One blueprint serves every frame instantiated from it — a
// foreach body compiles once and is stamped out per index.
type blockBP struct {
	slots    []slotBP
	futNames []string
	stmts    []cstmt
}

// cstmt is one lowered statement. fast statements perform all future reads
// before any side effect, so the runtime may attempt them inline in
// non-blocking mode and retry on a goroutine if they would block.
type cstmt struct {
	fast bool
	exec func(fr *frame, ec *ectx) error
}

func errStmt(err error) cstmt {
	return cstmt{fast: true, exec: func(*frame, *ectx) error { return err }}
}

// ---------------------------------------------------------------------------
// Frames: the runtime instantiation of a blueprint

type frame struct {
	parent *frame
	slots  []rslot
}

type rslot struct {
	imm     interface{}
	fut     *dataflow.Future
	arr     *dataflow.Array
	path    string           // concrete path (or %d pattern), when known at init
	pathFut *dataflow.Future // set by the mapper statement at run time
}

// getPath returns the slot's file path or pattern.
func (rs *rslot) getPath(ec *ectx) (string, error) {
	if rs.pathFut == nil {
		return rs.path, nil
	}
	v, err := readFut(rs.pathFut, ec)
	if err != nil {
		return "", err
	}
	return v.(string), nil
}

// newFrame materializes a frame from its blueprint: immediates copied,
// future-backed slots drawn from one bulk allocation, arrays created, and
// auto-mapped paths minted.
func newFrame(bp *blockBP, parent *frame, rt *crt) *frame {
	fr := &frame{parent: parent, slots: make([]rslot, len(bp.slots))}
	var futs []*dataflow.Future
	if len(bp.futNames) > 0 {
		futs = dataflow.NewFutures(bp.futNames)
	}
	for i := range bp.slots {
		sb := &bp.slots[i]
		rs := &fr.slots[i]
		switch sb.kind {
		case kImm:
			rs.imm = sb.immVal
		case kFut:
			rs.fut = futs[sb.futIdx]
		case kArr:
			rs.arr = dataflow.NewArray(sb.name)
		}
		switch sb.path {
		case pathAuto:
			if sb.kind == kArr {
				rs.path = filepath.Join(rt.cfg.WorkDir, fmt.Sprintf("%s_%d_%%d", sb.name, rt.nextSeq()))
			} else {
				rs.path = filepath.Join(rt.cfg.WorkDir, fmt.Sprintf("%s_%d", sb.name, rt.nextSeq()))
			}
		case pathConst:
			rs.path = sb.constPath
		case pathRuntime:
			rs.pathFut = futs[sb.pathFutIdx]
		}
	}
	return fr
}

// ---------------------------------------------------------------------------
// Compiler

type compiler struct {
	prog *Program
	apps map[string]*capp
}

// cscope is the compile-time mirror of the runtime frame chain.
type cscope struct {
	parent *cscope
	vars   map[string]int
	bp     *blockBP
}

// resolve walks the scope chain for name, returning the owning scope, the
// slot index, and the frame depth.
func (s *cscope) resolve(name string) (*cscope, int, int) {
	depth := 0
	for sc := s; sc != nil; sc = sc.parent {
		if i, ok := sc.vars[name]; ok {
			return sc, i, depth
		}
		depth++
	}
	return nil, 0, 0
}

// CompiledProgram is a script lowered to slot-resolved closures; one
// compiled program can Run any number of times.
type CompiledProgram struct {
	root *blockBP
}

// Compile lowers a parsed program into a static dataflow graph. Semantic
// errors the interpreter raises lazily (undeclared variables, shape
// mismatches, bad mappers) are preserved as runtime-error closures with
// identical messages, so compiled and interpreted runs fail identically.
func Compile(prog *Program) *CompiledProgram {
	start := time.Now()
	c := &compiler{prog: prog, apps: map[string]*capp{}}
	// App shells first: call sites compiled anywhere below hold the *capp
	// pointer; bodies are filled before any Run.
	for name, app := range prog.Apps {
		ca := &capp{decl: app}
		if app.MPI != nil && c.exprEffect(app.MPI) {
			ca.effectful = true
		}
		for _, tok := range app.Tokens {
			switch {
			case tok.StdoutOf != nil:
				ca.effectful = ca.effectful || c.exprEffect(tok.StdoutOf)
			case tok.FileOf != nil:
				ca.effectful = ca.effectful || c.exprEffect(tok.FileOf)
			default:
				ca.effectful = ca.effectful || c.exprEffect(tok.Expr)
			}
		}
		c.apps[name] = ca
	}
	rootBP := &blockBP{}
	rootSc := &cscope{vars: map[string]int{}, bp: rootBP}
	decls := c.declareBlock(prog.Stmts, rootSc)
	for _, ca := range c.apps {
		c.fillApp(ca, rootSc)
	}
	rootBP.stmts = c.compileStmts(prog.Stmts, rootSc, decls)
	compileNanos.Store(time.Since(start).Nanoseconds())
	return &CompiledProgram{root: rootBP}
}

// exprEffect reports whether evaluating e can perform a side effect (trace
// output or an app invocation) — a syntactic scan usable before closures
// exist.
func (c *compiler) exprEffect(e Expr) bool {
	switch x := e.(type) {
	case *Lit, *Ident:
		return false
	case *Index:
		return c.exprEffect(x.Index)
	case *Unary:
		return c.exprEffect(x.X)
	case *Binary:
		return c.exprEffect(x.L) || c.exprEffect(x.R)
	case *FileOf:
		return c.exprEffect(x.X)
	case *Call:
		if _, isApp := c.prog.Apps[x.Name]; isApp {
			return true
		}
		if x.Name == "trace" {
			return true
		}
		for _, a := range x.Args {
			if c.exprEffect(a) {
				return true
			}
		}
		return false
	}
	return true
}

// declareBlock populates the block's slot table from its VarDecls — the
// compile-time analogue of execBlock's synchronous declares. Every
// declaration of a block is visible to every statement of the block; the
// interpreter reaches the same fixpoint through goroutine launch order, the
// compiler resolves it lexically. Returns each decl's slot index, -1 for
// duplicates (which lower to the interpreter's runtime error).
func (c *compiler) declareBlock(stmts []Stmt, sc *cscope) map[*VarDecl]int {
	decls := map[*VarDecl]int{}
	for _, s := range stmts {
		d, ok := s.(*VarDecl)
		if !ok {
			continue
		}
		if _, dup := sc.vars[d.Name]; dup {
			decls[d] = -1
			continue
		}
		sb := slotBP{name: d.Name, typ: d.Type}
		switch {
		case d.IsArray:
			sb.kind = kArr
		case isImmDecl(d):
			sb.kind = kImm
			sb.immVal = d.Init.(*Lit).Val
		default:
			sb.kind = kFut
			sb.futIdx = len(sc.bp.futNames)
			sc.bp.futNames = append(sc.bp.futNames, d.Name)
		}
		if d.Type == TFile && d.Mapper == nil {
			sb.path = pathAuto
		}
		idx := len(sc.bp.slots)
		sc.bp.slots = append(sc.bp.slots, sb)
		sc.vars[d.Name] = idx
		decls[d] = idx
	}
	return decls
}

// isImmDecl reports whether a decl lowers to an immediate slot: a
// literal-initialized non-file scalar needs no future and never blocks.
func isImmDecl(d *VarDecl) bool {
	if d.IsArray || d.Type == TFile || d.Init == nil {
		return false
	}
	_, ok := d.Init.(*Lit)
	return ok
}

// compileBlock declares and lowers a nested block (if branch, foreach body
// extends an existing scope via compileStmts instead).
func (c *compiler) compileBlock(stmts []Stmt, parent *cscope) *blockBP {
	bp := &blockBP{}
	sc := &cscope{parent: parent, vars: map[string]int{}, bp: bp}
	decls := c.declareBlock(stmts, sc)
	bp.stmts = c.compileStmts(stmts, sc, decls)
	return bp
}

// compileStmts lowers the statements of one block, in source order.
func (c *compiler) compileStmts(stmts []Stmt, sc *cscope, decls map[*VarDecl]int) []cstmt {
	out := make([]cstmt, 0, len(stmts))
	for _, s := range stmts {
		switch st := s.(type) {
		case *VarDecl:
			if cs, emit := c.compileDecl(st, sc, decls[st]); emit {
				out = append(out, cs)
			}
		case *Assign:
			out = append(out, c.compileAssignTo(sc, st.Targets, st.RHS, st.Line))
		case *If:
			out = append(out, c.compileIf(sc, st))
		case *Foreach:
			out = append(out, c.compileForeach(sc, st))
		case *ExprStmt:
			out = append(out, c.compileExprStmt(sc, st))
		default:
			out = append(out, errStmt(fmt.Errorf("swift: unknown statement %T", s)))
		}
	}
	return out
}

// compileDecl lowers a declaration's runtime work: mapper resolution and the
// initializer, executed sequentially like the interpreter's initDecl. A
// declaration with neither emits no statement.
func (c *compiler) compileDecl(d *VarDecl, sc *cscope, idx int) (cstmt, bool) {
	if idx < 0 {
		return errStmt(rtErrf(d.Line, "swift: duplicate declaration of %q", d.Name)), true
	}
	var mapperExec func(fr *frame, ec *ectx) error
	mapperFast := true
	if d.Type == TFile && d.Mapper != nil {
		mv := c.compileExpr(sc, d.Mapper)
		sb := &sc.bp.slots[idx]
		if mv.isK {
			if s, ok := mv.k.(string); ok {
				sb.path = pathConst
				sb.constPath = s
			} else {
				// Wrong-typed constant mapper: path future stays unset (as in
				// the interpreter) and the decl statement raises the error.
				sb.path = pathRuntime
				sb.pathFutIdx = len(sc.bp.futNames)
				sc.bp.futNames = append(sc.bp.futNames, d.Name+".path")
				err := rtErrf(d.Line, "mapper for %s must be a string, got %T", d.Name, mv.k)
				mapperExec = func(*frame, *ectx) error { return err }
			}
		} else {
			sb.path = pathRuntime
			sb.pathFutIdx = len(sc.bp.futNames)
			sc.bp.futNames = append(sc.bp.futNames, d.Name+".path")
			slotIdx := idx
			name, line := d.Name, d.Line
			mapperExec = func(fr *frame, ec *ectx) error {
				v, err := mv.fn(fr, ec)
				if err != nil {
					return err
				}
				path, ok := v.(string)
				if !ok {
					return rtErrf(line, "mapper for %s must be a string, got %T", name, v)
				}
				return fr.slots[slotIdx].pathFut.Set(path)
			}
			mapperFast = !mv.effectful
		}
	}
	var initStmt cstmt
	hasInit := false
	if d.Init != nil && sc.bp.slots[idx].kind != kImm {
		hasInit = true
		if d.IsArray {
			initStmt = errStmt(rtErrf(d.Line, "array %s cannot have a scalar initializer", d.Name))
		} else {
			initStmt = c.compileAssignTo(sc, []LValue{{Name: d.Name}}, d.Init, d.Line)
		}
	}
	switch {
	case mapperExec == nil && !hasInit:
		return cstmt{}, false
	case mapperExec == nil:
		return initStmt, true
	case !hasInit:
		return cstmt{fast: mapperFast, exec: mapperExec}, true
	default:
		// Mapper then init in one statement, like initDecl. A would-block in
		// the init would re-run the mapper's Set on retry, so never fast.
		initExec := initStmt.exec
		return cstmt{fast: false, exec: func(fr *frame, ec *ectx) error {
			if err := mapperExec(fr, ec); err != nil {
				return err
			}
			return initExec(fr, ec)
		}}, true
	}
}

// ctarget is a compiled assignment target.
type ctarget struct {
	err        error // compile-time-detected, raised lazily
	imm        bool  // immediate slot: assignment is a double-write
	name       string
	depth, idx int
	indexFn    cexpr // nil for scalars
	line       int
	effectful  bool
}

func (t *ctarget) resolve(fr *frame, ec *ectx) (*dataflow.Future, error) {
	if t.err != nil {
		return nil, t.err
	}
	if t.imm {
		return nil, fmt.Errorf("%w: %s", dataflow.ErrAlreadySet, t.name)
	}
	rs := &frameAt(fr, t.depth).slots[t.idx]
	if t.indexFn == nil {
		return rs.fut, nil
	}
	i, err := evalIndex(t.indexFn, fr, ec, t.line)
	if err != nil {
		return nil, err
	}
	return rs.arr.Elem(int(i)), nil
}

// compileTarget mirrors the interpreter's resolveTarget.
func (c *compiler) compileTarget(sc *cscope, lv LValue, line int) ctarget {
	scope, idx, depth := sc.resolve(lv.Name)
	if scope == nil {
		return ctarget{err: rtErrf(line, "undeclared variable %q", lv.Name)}
	}
	sb := &scope.bp.slots[idx]
	t := ctarget{name: lv.Name, depth: depth, idx: idx, line: line}
	if lv.Index == nil {
		if sb.kind == kArr {
			t.err = rtErrf(line, "%s is an array; index it", lv.Name)
			return t
		}
		t.imm = sb.kind == kImm
		return t
	}
	if sb.kind != kArr {
		t.err = rtErrf(line, "%s is not an array", lv.Name)
		return t
	}
	iv := c.compileExpr(sc, lv.Index)
	t.indexFn = iv.fn
	t.effectful = iv.effectful
	return t
}

// compileAssignTo routes an assignment exactly like the interpreter's
// assignTo: app calls dispatch asynchronously; plain expressions set one
// target future.
func (c *compiler) compileAssignTo(sc *cscope, targets []LValue, rhs Expr, line int) cstmt {
	if call, ok := rhs.(*Call); ok {
		if _, isApp := c.prog.Apps[call.Name]; isApp {
			return c.compileAppStmt(sc, call, targets, line)
		}
	}
	if len(targets) != 1 {
		return errStmt(rtErrf(line, "tuple assignment requires an app call on the right-hand side"))
	}
	rv := c.compileExpr(sc, rhs)
	tgt := c.compileTarget(sc, targets[0], line)
	return cstmt{fast: !rv.effectful && !tgt.effectful, exec: func(fr *frame, ec *ectx) error {
		v, err := rv.fn(fr, ec)
		if err != nil {
			return err
		}
		fut, err := tgt.resolve(fr, ec)
		if err != nil {
			return err
		}
		return fut.Set(v)
	}}
}

func (c *compiler) compileIf(sc *cscope, st *If) cstmt {
	cond := c.compileExpr(sc, st.Cond)
	thenBP := c.compileBlock(st.Then, sc)
	var elseBP *blockBP
	if st.Else != nil {
		elseBP = c.compileBlock(st.Else, sc)
	}
	line := st.Line
	return cstmt{fast: !cond.effectful, exec: func(fr *frame, ec *ectx) error {
		cv, err := cond.fn(fr, ec)
		if err != nil {
			return err
		}
		b, ok := cv.(bool)
		if !ok {
			return rtErrf(line, "if condition must be boolean, got %T", cv)
		}
		if b {
			return ec.rt.runBlock(thenBP, newFrame(thenBP, fr, ec.rt))
		}
		if elseBP != nil {
			return ec.rt.runBlock(elseBP, newFrame(elseBP, fr, ec.rt))
		}
		return nil
	}}
}

// compileForeach specializes the body into a single blueprint instantiated
// per index; the loop variable(s) are immediate slots, so iteration never
// allocates futures or channels for them.
func (c *compiler) compileForeach(sc *cscope, st *Foreach) cstmt {
	if st.Source != nil {
		return errStmt(rtErrf(st.Line, "foreach over arrays is not supported; iterate a [lo:hi] range"))
	}
	lo := c.compileExpr(sc, st.RangeLo)
	hi := c.compileExpr(sc, st.RangeHi)
	bodyBP := &blockBP{}
	bodySc := &cscope{parent: sc, vars: map[string]int{}, bp: bodyBP}
	bodyBP.slots = append(bodyBP.slots, slotBP{name: st.Var, typ: TInt, kind: kImm})
	bodySc.vars[st.Var] = 0
	var loopErr error
	hasIdx := st.IndexVar != ""
	if hasIdx {
		if st.IndexVar == st.Var {
			loopErr = rtErrf(st.Line, "swift: duplicate declaration of %q", st.IndexVar)
		} else {
			bodyBP.slots = append(bodyBP.slots, slotBP{name: st.IndexVar, typ: TInt, kind: kImm})
			bodySc.vars[st.IndexVar] = 1
		}
	}
	decls := c.declareBlock(st.Body, bodySc)
	bodyBP.stmts = c.compileStmts(st.Body, bodySc, decls)
	line := st.Line
	return cstmt{fast: !lo.effectful && !hi.effectful, exec: func(fr *frame, ec *ectx) error {
		lov, err := lo.fn(fr, ec)
		if err != nil {
			return err
		}
		hiv, err := hi.fn(fr, ec)
		if err != nil {
			return err
		}
		l, ok1 := lov.(int64)
		h, ok2 := hiv.(int64)
		if !ok1 || !ok2 {
			return rtErrf(line, "range bounds must be int, got %T and %T", lov, hiv)
		}
		if loopErr != nil && l <= h {
			return loopErr
		}
		// Swift ranges are inclusive: [0:2] is 0, 1, 2.
		for i := l; i <= h; i++ {
			sub := newFrame(bodyBP, fr, ec.rt)
			sub.slots[0].imm = i
			if hasIdx {
				sub.slots[1].imm = i - l
			}
			if err := ec.rt.runBlock(bodyBP, sub); err != nil {
				return err
			}
		}
		return nil
	}}
}

func (c *compiler) compileExprStmt(sc *cscope, st *ExprStmt) cstmt {
	if call, ok := st.X.(*Call); ok {
		if _, isApp := c.prog.Apps[call.Name]; isApp {
			return c.compileAppStmt(sc, call, nil, st.Line)
		}
		// A top-level builtin's own effect (trace's print) happens after all
		// its reads, so only effectful arguments force the goroutine path.
		cv, argsEffectful := c.compileCall(sc, call)
		return cstmt{fast: !argsEffectful, exec: func(fr *frame, ec *ectx) error {
			_, err := cv.fn(fr, ec)
			return err
		}}
	}
	cv := c.compileExpr(sc, st.X)
	return cstmt{fast: !cv.effectful, exec: func(fr *frame, ec *ectx) error {
		_, err := cv.fn(fr, ec)
		return err
	}}
}

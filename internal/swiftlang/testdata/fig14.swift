# Fig. 14 — the synthetic Swift/Coasters workload script (§6.2.1), in
# mini-Swift form: a loop generating MPI tasks that barrier, sleep, write
# their rank, and barrier again. Nodes-per-job and PPN arrive as script
# arguments, as the paper's test suite sweeps them.

int njobs = toInt(arg("njobs", "8"));
int nodes = toInt(arg("nodes", "2"));
int waitms = toInt(arg("waitms", "10"));

app () synthetic_task (int ms, int jobid) mpi nodes {
    "synthetic" ms jobid;
}

foreach i in [1:njobs] {
    synthetic_task(waitms, i);
}
trace("generated", njobs, "MPI jobs of", nodes, "nodes");

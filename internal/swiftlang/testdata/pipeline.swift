# Chained three-stage pipeline with explicit mappers and stdout capture:
# every cooked[i] depends on raw[i], and the combine step depends on the
# first and last cooked outputs. Exercises file arrays, @-dereference,
# stdout=@ redirection, and arithmetic in index expressions.

int n = toInt(arg("n", "4"));

app (file o) mkinput (int i) {
    "mkinput" i stdout=@o;
}
app (file o) process (file a, int i) {
    "process" @a i stdout=@o;
}
app (file o) combine (file a, file b) {
    "combine" @a @b stdout=@o;
}

file raw[] <"raw_%d.file">;
file cooked[] <"cooked_%d.file">;
file final <"final.file">;

foreach i in [0:n-1] {
    raw[i] = mkinput(i);
    cooked[i] = process(raw[i], i * 2);
}
final = combine(cooked[0], cooked[n-1]);
trace("pipeline", n, strcat("w", toString(n)));

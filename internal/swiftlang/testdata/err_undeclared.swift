# Error case: a variable that was never declared.
trace(nope);

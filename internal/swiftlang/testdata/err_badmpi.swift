# Error case: an MPI size that is not positive.
app () bad (int i) mpi 0 {
    "gen" i;
}
bad(1);

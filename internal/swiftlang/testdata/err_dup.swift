# Error case: duplicate declaration in one scope.
int a = 1;
int a = 2;

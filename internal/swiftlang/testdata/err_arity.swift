# Error case: wrong argument count at an app call site.
app () one (int i) {
    "gen" i;
}
one(1, 2);

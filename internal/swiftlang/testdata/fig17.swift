# Fig. 17 — the REM core loop (§6.2.2), in mini-Swift form. Segment (i,j)
# depends on its replica's previous segment and on the alternating-parity
# neighbour exchange; all statements execute concurrently, limited only by
# these dataflow edges. Segment index: i*100 + j. nreps must be even.

int nreps = toInt(arg("nreps", "4"));
int total = toInt(arg("rounds", "2"));

app (file co) namd (int rep, int seg, file ci) mpi 2 {
    "namd" rep seg @ci stdout=@co;
}
app (file co) namd_init (int rep) mpi 2 {
    "namd" rep 0 "cold-start" stdout=@co;
}
app (file xa, file xb, file tok) exchange (file a, file b) {
    "exchange" @a @b stdout=@tok;
}

file c[] <"c_%d.file">;    # segment outputs
file x[] <"x_%d.file">;    # post-exchange restart files
file tk[] <"tok_%d.file">; # exchange tokens

foreach i in [0:nreps-1] {
    c[i*100] = namd_init(i);
}

foreach j in [0:total-1] {
    foreach i in [0:nreps-1] {
        # The %% operator determines the parity of the exchange; odd
        # exchanges wrap around the replica ring (paper Fig. 17 narrative).
        if (i %% 2 == j %% 2) {
            int neighbor = (i+1) %% nreps;
            (x[j*1000+i], x[j*1000+neighbor], tk[j*100+i]) =
                exchange(c[i*100+j], c[neighbor*100+j]);
        }
        c[i*100+j+1] = namd(i, j+1, x[j*1000+i]);
    }
}

# Many-task generator: n independent app calls, the §6 "sleep 0" shape.
# Used by the compile-smoke CI run and BenchmarkSwiftGenerate; n and the
# MPI size arrive as script arguments.

int n = toInt(arg("n", "100"));
int size = toInt(arg("size", "1"));

app () gen (int i, int sz) mpi size {
    "gen" i sz;
}

foreach i in [1:n] {
    gen(i, size);
}
trace("generated", n, "tasks");

# Error case: the executor rejects the command, so the failure surfaces
# through the app-invocation error wrap.
app () nosuch (int i) {
    "nosuchcmd" i;
}
nosuch(1);

package swiftlang

import (
	"context"
	"fmt"
	"strconv"
)

// Expression evaluation. Evaluation blocks on unset single-assignment
// variables, which is exactly how Swift sequencing works: a statement runs
// as far as its inputs allow.

func (in *interp) eval(ctx context.Context, ev *env, e Expr) (interface{}, error) {
	switch x := e.(type) {
	case *Lit:
		return x.Val, nil
	case *Ident:
		sl := ev.lookup(x.Name)
		if sl == nil {
			return nil, rtErrf(x.Line, "undeclared variable %q", x.Name)
		}
		if sl.isArray {
			return nil, rtErrf(x.Line, "array %q used as a scalar", x.Name)
		}
		return sl.fut.Get(ctx)
	case *Index:
		id, ok := x.Arr.(*Ident)
		if !ok {
			return nil, rtErrf(0, "only named arrays can be indexed")
		}
		sl := ev.lookup(id.Name)
		if sl == nil {
			return nil, rtErrf(id.Line, "undeclared variable %q", id.Name)
		}
		if !sl.isArray {
			return nil, rtErrf(id.Line, "%q is not an array", id.Name)
		}
		iv, err := in.eval(ctx, ev, x.Index)
		if err != nil {
			return nil, err
		}
		i, ok := iv.(int64)
		if !ok {
			return nil, rtErrf(id.Line, "array index must be int, got %T", iv)
		}
		return sl.arr.Elem(int(i)).Get(ctx)
	case *Call:
		return in.evalCallOrExpr(ctx, ev, x, nil, x.Line)
	case *Unary:
		v, err := in.eval(ctx, ev, x.X)
		if err != nil {
			return nil, err
		}
		return applyUnary(x.Op, v)
	case *Binary:
		l, err := in.eval(ctx, ev, x.L)
		if err != nil {
			return nil, err
		}
		r, err := in.eval(ctx, ev, x.R)
		if err != nil {
			return nil, err
		}
		return binaryOp(x.Op, l, r)
	case *FileOf:
		v, err := in.eval(ctx, ev, x.X)
		if err != nil {
			return nil, err
		}
		f, ok := v.(FileVal)
		if !ok {
			return nil, rtErrf(0, "@ needs a file value, got %T", v)
		}
		return f.Path, nil
	}
	return nil, fmt.Errorf("swift: unknown expression %T", e)
}

// evalCallOrExpr evaluates an expression that may be an app call used for
// effect (targets nil) or a builtin.
func (in *interp) evalCallOrExpr(ctx context.Context, ev *env, e Expr, targets []LValue, line int) (interface{}, error) {
	call, ok := e.(*Call)
	if !ok {
		return in.eval(ctx, ev, e)
	}
	if _, isApp := in.prog.Apps[call.Name]; isApp {
		return nil, in.invokeApp(ctx, ev, call, targets, line)
	}
	return in.callBuiltin(ctx, ev, call)
}

func binaryOp(op string, l, r interface{}) (interface{}, error) {
	switch op {
	case "&&", "||":
		lb, ok1 := l.(bool)
		rb, ok2 := r.(bool)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("swift: %s needs booleans, got %T and %T", op, l, r)
		}
		if op == "&&" {
			return lb && rb, nil
		}
		return lb || rb, nil
	}
	// String concatenation and comparisons.
	if ls, ok := l.(string); ok {
		rs, ok := r.(string)
		if !ok {
			if op == "+" {
				return ls + toDisplay(r), nil
			}
			return nil, fmt.Errorf("swift: %s mixes string and %T", op, r)
		}
		switch op {
		case "+":
			return ls + rs, nil
		case "==":
			return ls == rs, nil
		case "!=":
			return ls != rs, nil
		case "<":
			return ls < rs, nil
		case "<=":
			return ls <= rs, nil
		case ">":
			return ls > rs, nil
		case ">=":
			return ls >= rs, nil
		}
		return nil, fmt.Errorf("swift: operator %s not defined on strings", op)
	}
	if _, ok := r.(string); ok && op == "+" {
		return toDisplay(l) + r.(string), nil
	}
	// Numeric: promote to float64 when either side is float.
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, fmt.Errorf("swift: division by zero")
			}
			return li / ri, nil
		case "%%":
			if ri == 0 {
				return nil, fmt.Errorf("swift: modulus by zero")
			}
			return li % ri, nil
		case "==":
			return li == ri, nil
		case "!=":
			return li != ri, nil
		case "<":
			return li < ri, nil
		case "<=":
			return li <= ri, nil
		case ">":
			return li > ri, nil
		case ">=":
			return li >= ri, nil
		}
		return nil, fmt.Errorf("swift: unknown operator %q", op)
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		return nil, fmt.Errorf("swift: %s needs numbers, got %T and %T", op, l, r)
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("swift: division by zero")
		}
		return lf / rf, nil
	case "==":
		return lf == rf, nil
	case "!=":
		return lf != rf, nil
	case "<":
		return lf < rf, nil
	case "<=":
		return lf <= rf, nil
	case ">":
		return lf > rf, nil
	case ">=":
		return lf >= rf, nil
	case "%%":
		return nil, fmt.Errorf("swift: %%%% needs integers")
	}
	return nil, fmt.Errorf("swift: unknown operator %q", op)
}

func toFloat(v interface{}) (float64, bool) {
	switch n := v.(type) {
	case int64:
		return float64(n), true
	case float64:
		return n, true
	}
	return 0, false
}

// toDisplay renders a value for trace/strcat.
func toDisplay(v interface{}) string {
	switch x := v.(type) {
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	case FileVal:
		return x.Path
	case nil:
		return "<nil>"
	}
	return fmt.Sprint(v)
}

// callBuiltin evaluates the arguments and dispatches the shared builtin
// library (builtins.go).
func (in *interp) callBuiltin(ctx context.Context, ev *env, call *Call) (interface{}, error) {
	args := make([]interface{}, len(call.Args))
	for i, a := range call.Args {
		v, err := in.eval(ctx, ev, a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return in.host.call(call.Name, args, call.Line)
}

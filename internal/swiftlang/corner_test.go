package swiftlang

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestElseIfChain(t *testing.T) {
	exec := NewFuncExecutor()
	out := runScript(t, `
foreach x in [0:3] {
    if (x == 0) { trace("zero"); }
    else if (x == 1) { trace("one"); }
    else if (x == 2) { trace("two"); }
    else { trace("many", x); }
}
`, exec)
	for _, want := range []string{"zero", "one", "two", "many 3"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in %q", want, out.String())
		}
	}
}

func TestEmptyRangeRunsNothing(t *testing.T) {
	exec := NewFuncExecutor()
	out := runScript(t, `
foreach i in [5:2] { trace("never", i); }
trace("done");
`, exec)
	if strings.Contains(out.String(), "never") {
		t.Fatalf("empty range executed: %s", out.String())
	}
	if !strings.Contains(out.String(), "done") {
		t.Fatalf("out=%s", out.String())
	}
}

func TestNestedForeachShadowing(t *testing.T) {
	exec := NewFuncExecutor()
	out := runScript(t, `
int total[];
foreach i in [0:1] {
    foreach j in [0:1] {
        total[i*2+j] = i*10 + j;
    }
}
trace("vals", total[0], total[1], total[2], total[3]);
`, exec)
	if !strings.Contains(out.String(), "vals 0 1 10 11") {
		t.Fatalf("out=%s", out.String())
	}
}

func TestLoopVariableRedeclarationRejected(t *testing.T) {
	exec := NewFuncExecutor()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := RunScript(ctx, `
foreach i in [0:2] {
    int i = 5;
    trace(i);
}
`, Config{Executor: exec, WorkDir: t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err=%v", err)
	}
}

func TestStringEscapesAndConcat(t *testing.T) {
	exec := NewFuncExecutor()
	out := runScript(t, `
string s = "a\tb" + "\n" + strcat("x", 1, true);
trace(s);
`, exec)
	if !strings.Contains(out.String(), "a\tb\nx1true") {
		t.Fatalf("out=%q", out.String())
	}
}

func TestFileOfInExpression(t *testing.T) {
	exec := NewFuncExecutor()
	exec.Register("mk", func(ctx context.Context, inv AppInvocation) error { return nil })
	out := runScript(t, `
app (file o) mk () { "mk"; }
file f <"alpha.dat">;
f = mk();
string backup = strcat(@f, ".bak");
trace("backup", backup);
trace("fn", filename(f));
`, exec)
	if !strings.Contains(out.String(), "backup alpha.dat.bak") {
		t.Fatalf("out=%s", out.String())
	}
	if !strings.Contains(out.String(), "fn alpha.dat") {
		t.Fatalf("out=%s", out.String())
	}
}

func TestMapperFromExpression(t *testing.T) {
	exec := NewFuncExecutor()
	exec.Register("mk", func(ctx context.Context, inv AppInvocation) error { return nil })
	out := runScript(t, `
app (file o) mk () { "mk"; }
int run = 7;
file f <strcat("run-", run, ".out")>;
f = mk();
trace("path", @f);
`, exec)
	if !strings.Contains(out.String(), "path run-7.out") {
		t.Fatalf("out=%s", out.String())
	}
}

func TestAutoMappedFilesUnique(t *testing.T) {
	exec := NewFuncExecutor()
	var paths []string
	exec.Register("mk", func(ctx context.Context, inv AppInvocation) error {
		paths = append(paths, inv.OutFiles[0])
		return nil
	})
	// Without explicit mappers, two file variables must not collide. The
	// sequential executor (FuncExecutor is called under dataflow but appends
	// under its own lock) collects both paths.
	runScript(t, `
app (file o) mk () { "mk"; }
file a;
file b;
a = mk();
b = mk();
trace("ok", @a, @b);
`, exec)
	calls := exec.Calls()
	if len(calls) != 2 {
		t.Fatalf("calls=%d", len(calls))
	}
	if calls[0].OutFiles[0] == calls[1].OutFiles[0] {
		t.Fatalf("auto paths collided: %v", calls[0].OutFiles)
	}
}

func TestUnaryMinusAndNot(t *testing.T) {
	exec := NewFuncExecutor()
	out := runScript(t, `
int x = -3;
trace("neg", x, -x, -(1+2));
trace("not", !(x > 0));
float y = -1.5;
trace("negf", -y);
`, exec)
	for _, want := range []string{"neg -3 3 -3", "not true", "negf 1.5"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in %s", want, out.String())
		}
	}
}

func TestAppArityMismatch(t *testing.T) {
	exec := NewFuncExecutor()
	exec.Register("f", func(ctx context.Context, inv AppInvocation) error { return nil })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, src := range []string{
		`app () f (int a) { "f" a; } f();`,      // too few args
		`app () f (int a) { "f" a; } f(1, 2);`,  // too many args
		`app (file o) f () { "f"; } f();`,       // outputs dropped
		`app () f () { "f"; } file x; x = f();`, // no outputs to assign
	} {
		if err := RunScript(ctx, src, Config{Executor: exec, WorkDir: t.TempDir()}); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestBooleanShortForms(t *testing.T) {
	exec := NewFuncExecutor()
	out := runScript(t, `
boolean a = true;
bool b = false;
if (a && !b) { trace("logic ok"); }
`, exec)
	if !strings.Contains(out.String(), "logic ok") {
		t.Fatalf("out=%s", out.String())
	}
}

func TestCommentsEverywhere(t *testing.T) {
	exec := NewFuncExecutor()
	out := runScript(t, `
// line comment
# hash comment
/* block
   comment */ trace("survived"); // trailing
`, exec)
	if !strings.Contains(out.String(), "survived") {
		t.Fatalf("out=%s", out.String())
	}
}

func TestDeepDependencyChain(t *testing.T) {
	// 200-element chain: stress the goroutine-per-statement model.
	exec := NewFuncExecutor()
	out := runScript(t, `
int a[];
a[0] = 0;
foreach i in [1:200] {
    a[i] = a[i-1] + 1;
}
trace("sum", a[200]);
`, exec)
	if !strings.Contains(out.String(), "sum 200") {
		t.Fatalf("out=%s", out.String())
	}
}

package swiftlang

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"

	"jets/internal/dataflow"
)

// FileVal is the runtime value of a file variable: a handle to a concrete
// path. The variable's future being set means the file has been produced.
type FileVal struct {
	Path string
}

// AppInvocation is one resolved app execution handed to the Executor.
type AppInvocation struct {
	App        string
	NProcs     int // 0 => sequential
	Tokens     []string
	StdoutFile string
	OutFiles   []string
}

// Executor runs app invocations; implementations submit to JETS
// (exec_jets.go), to the Coasters service, or to in-process functions for
// tests.
type Executor interface {
	Execute(ctx context.Context, inv AppInvocation) error
}

// Config parameterizes a script run.
type Config struct {
	Executor Executor
	// WorkDir holds automatically mapped files; default "swift-work".
	WorkDir string
	// Stdout receives trace() output; nil discards it.
	Stdout io.Writer
	// Args are named script arguments available through the arg() builtin
	// (Swift's @arg), e.g. swiftrun -arg steps=10.
	Args map[string]string
	// Compile lowers the program to a static dataflow graph before running it
	// (constant folding, slot-resolved variables, batched submission). The
	// tree-walking interpreter remains the Compile=false reference.
	Compile bool
}

// Run executes a parsed program to completion under dataflow semantics and
// returns the first error.
func Run(ctx context.Context, prog *Program, cfg Config) error {
	if cfg.Compile {
		cp := Compile(prog)
		return cp.Run(ctx, cfg)
	}
	if cfg.Executor == nil {
		return fmt.Errorf("swift: no executor configured")
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = "swift-work"
	}
	in := &interp{prog: prog, cfg: cfg, eng: dataflow.NewEngine(ctx)}
	in.host.stdout = cfg.Stdout
	in.host.args = cfg.Args
	root := newEnv(nil)
	in.root = root
	in.execBlock(root, prog.Stmts)
	return in.eng.Wait()
}

// RunScript parses and runs a script source.
func RunScript(ctx context.Context, src string, cfg Config) error {
	prog, err := Parse(src)
	if err != nil {
		return err
	}
	return Run(ctx, prog, cfg)
}

// RuntimeError is an execution failure with script position when known.
type RuntimeError struct {
	Line int
	Msg  string
}

func (e *RuntimeError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("swift: line %d: %s", e.Line, e.Msg)
	}
	return "swift: " + e.Msg
}

func rtErrf(line int, format string, args ...interface{}) error {
	return &RuntimeError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// ---------------------------------------------------------------------------
// Environment

// slot is one declared variable.
type slot struct {
	typ     Type
	isArray bool
	fut     *dataflow.Future // scalars
	arr     *dataflow.Array  // arrays
	// For file variables, the concrete path (or %d pattern for arrays)
	// resolves asynchronously from the mapper expression.
	pathFut *dataflow.Future
}

type env struct {
	parent *env
	mu     sync.Mutex
	vars   map[string]*slot
}

func newEnv(parent *env) *env {
	return &env{parent: parent, vars: map[string]*slot{}}
}

func (e *env) lookup(name string) *slot {
	for s := e; s != nil; s = s.parent {
		s.mu.Lock()
		v, ok := s.vars[name]
		s.mu.Unlock()
		if ok {
			return v
		}
	}
	return nil
}

func (e *env) declare(name string, s *slot) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.vars[name]; dup {
		return fmt.Errorf("swift: duplicate declaration of %q", name)
	}
	e.vars[name] = s
	return nil
}

// ---------------------------------------------------------------------------
// Interpreter

type interp struct {
	prog *Program
	cfg  Config
	eng  *dataflow.Engine
	root *env // global scope, visible from app bodies
	seq  atomic.Int64
	host builtinHost
}

func (in *interp) nextSeq() int64 { return in.seq.Add(1) }

// execBlock registers declarations synchronously (so later statements can
// reference them) and launches every statement concurrently.
func (in *interp) execBlock(ev *env, stmts []Stmt) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *VarDecl:
			sl, err := in.declare(ev, st)
			if err != nil {
				in.eng.Go(func(context.Context) error { return err })
				continue
			}
			in.eng.Go(func(ctx context.Context) error { return in.initDecl(ctx, ev, st, sl) })
		case *Assign:
			in.eng.Go(func(ctx context.Context) error { return in.execAssign(ctx, ev, st) })
		case *If:
			in.eng.Go(func(ctx context.Context) error { return in.execIf(ctx, ev, st) })
		case *Foreach:
			in.eng.Go(func(ctx context.Context) error { return in.execForeach(ctx, ev, st) })
		case *ExprStmt:
			in.eng.Go(func(ctx context.Context) error {
				_, err := in.evalCallOrExpr(ctx, ev, st.X, nil, st.Line)
				return err
			})
		default:
			in.eng.Go(func(context.Context) error {
				return fmt.Errorf("swift: unknown statement %T", s)
			})
		}
	}
}

func (in *interp) declare(ev *env, d *VarDecl) (*slot, error) {
	sl := &slot{typ: d.Type, isArray: d.IsArray}
	if d.IsArray {
		sl.arr = dataflow.NewArray(d.Name)
	} else {
		sl.fut = dataflow.NewFuture(d.Name)
	}
	if d.Type == TFile {
		sl.pathFut = dataflow.NewFuture(d.Name + ".path")
		if d.Mapper == nil {
			// Auto-map into the work directory.
			if d.IsArray {
				sl.pathFut.Set(filepath.Join(in.cfg.WorkDir, fmt.Sprintf("%s_%d_%%d", d.Name, in.nextSeq())))
			} else {
				sl.pathFut.Set(filepath.Join(in.cfg.WorkDir, fmt.Sprintf("%s_%d", d.Name, in.nextSeq())))
			}
		}
	}
	if err := ev.declare(d.Name, sl); err != nil {
		return nil, rtErrf(d.Line, "%v", err)
	}
	return sl, nil
}

// initDecl resolves the mapper and runs the initializer.
func (in *interp) initDecl(ctx context.Context, ev *env, d *VarDecl, sl *slot) error {
	if d.Type == TFile && d.Mapper != nil {
		v, err := in.eval(ctx, ev, d.Mapper)
		if err != nil {
			return err
		}
		path, ok := v.(string)
		if !ok {
			return rtErrf(d.Line, "mapper for %s must be a string, got %T", d.Name, v)
		}
		if err := sl.pathFut.Set(path); err != nil {
			return err
		}
	}
	if d.Init == nil {
		return nil
	}
	if d.IsArray {
		return rtErrf(d.Line, "array %s cannot have a scalar initializer", d.Name)
	}
	target := LValue{Name: d.Name}
	return in.assignTo(ctx, ev, []LValue{target}, d.Init, d.Line)
}

func (in *interp) execAssign(ctx context.Context, ev *env, a *Assign) error {
	return in.assignTo(ctx, ev, a.Targets, a.RHS, a.Line)
}

// assignTo routes an assignment: app calls set their declared outputs; plain
// expressions set a single target.
func (in *interp) assignTo(ctx context.Context, ev *env, targets []LValue, rhs Expr, line int) error {
	if call, ok := rhs.(*Call); ok {
		if _, isApp := in.prog.Apps[call.Name]; isApp {
			return in.invokeApp(ctx, ev, call, targets, line)
		}
	}
	if len(targets) != 1 {
		return rtErrf(line, "tuple assignment requires an app call on the right-hand side")
	}
	v, err := in.eval(ctx, ev, rhs)
	if err != nil {
		return err
	}
	fut, err := in.resolveTarget(ctx, ev, targets[0], line)
	if err != nil {
		return err
	}
	return fut.Set(v)
}

// resolveTarget returns the future a target lvalue designates.
func (in *interp) resolveTarget(ctx context.Context, ev *env, lv LValue, line int) (*dataflow.Future, error) {
	sl := ev.lookup(lv.Name)
	if sl == nil {
		return nil, rtErrf(line, "undeclared variable %q", lv.Name)
	}
	if lv.Index == nil {
		if sl.isArray {
			return nil, rtErrf(line, "%s is an array; index it", lv.Name)
		}
		return sl.fut, nil
	}
	if !sl.isArray {
		return nil, rtErrf(line, "%s is not an array", lv.Name)
	}
	iv, err := in.eval(ctx, ev, lv.Index)
	if err != nil {
		return nil, err
	}
	i, ok := iv.(int64)
	if !ok {
		return nil, rtErrf(line, "array index must be int, got %T", iv)
	}
	return sl.arr.Elem(int(i)), nil
}

// targetFilePath resolves the concrete path of a file-typed target before
// its future is set (the executor needs it as the output location).
func (in *interp) targetFilePath(ctx context.Context, ev *env, lv LValue, line int) (string, *dataflow.Future, error) {
	sl := ev.lookup(lv.Name)
	if sl == nil {
		return "", nil, rtErrf(line, "undeclared variable %q", lv.Name)
	}
	if sl.typ != TFile {
		return "", nil, rtErrf(line, "app output %q must be a file", lv.Name)
	}
	pv, err := sl.pathFut.Get(ctx)
	if err != nil {
		return "", nil, err
	}
	pattern := pv.(string)
	if lv.Index == nil {
		if sl.isArray {
			return "", nil, rtErrf(line, "%s is a file array; index it", lv.Name)
		}
		return pattern, sl.fut, nil
	}
	iv, err := in.eval(ctx, ev, lv.Index)
	if err != nil {
		return "", nil, err
	}
	i, ok := iv.(int64)
	if !ok {
		return "", nil, rtErrf(line, "array index must be int, got %T", iv)
	}
	return fmt.Sprintf(pattern, i), sl.arr.Elem(int(i)), nil
}

func (in *interp) execIf(ctx context.Context, ev *env, s *If) error {
	cv, err := in.eval(ctx, ev, s.Cond)
	if err != nil {
		return err
	}
	b, ok := cv.(bool)
	if !ok {
		return rtErrf(s.Line, "if condition must be boolean, got %T", cv)
	}
	// Branch statements run under a child scope, concurrently; errors
	// propagate through the shared engine.
	if b {
		in.execBlock(newEnv(ev), s.Then)
	} else if s.Else != nil {
		in.execBlock(newEnv(ev), s.Else)
	}
	return nil
}

func (in *interp) execForeach(ctx context.Context, ev *env, s *Foreach) error {
	if s.Source != nil {
		return rtErrf(s.Line, "foreach over arrays is not supported; iterate a [lo:hi] range")
	}
	lov, err := in.eval(ctx, ev, s.RangeLo)
	if err != nil {
		return err
	}
	hiv, err := in.eval(ctx, ev, s.RangeHi)
	if err != nil {
		return err
	}
	lo, ok1 := lov.(int64)
	hi, ok2 := hiv.(int64)
	if !ok1 || !ok2 {
		return rtErrf(s.Line, "range bounds must be int, got %T and %T", lov, hiv)
	}
	// Swift ranges are inclusive: [0:2] is 0, 1, 2.
	for i := lo; i <= hi; i++ {
		iter := newEnv(ev)
		vslot := &slot{typ: TInt, fut: dataflow.NewFuture(s.Var)}
		vslot.fut.Set(i)
		if err := iter.declare(s.Var, vslot); err != nil {
			return rtErrf(s.Line, "%v", err)
		}
		if s.IndexVar != "" {
			islot := &slot{typ: TInt, fut: dataflow.NewFuture(s.IndexVar)}
			islot.fut.Set(i - lo)
			if err := iter.declare(s.IndexVar, islot); err != nil {
				return rtErrf(s.Line, "%v", err)
			}
		}
		in.execBlock(iter, s.Body)
	}
	return nil
}

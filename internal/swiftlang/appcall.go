package swiftlang

// Compiled app invocations. A call site lowers into two phases: phase A is
// pure — it evaluates arguments, resolves output paths, and builds the
// AppInvocation without any side effect, so the fast path may retry it after
// a would-block. Phase B hands the invocation to the async executor and
// returns immediately; the completion callback sets the output futures under
// an engine hold, replacing the interpreter's goroutine parked per app call.

import (
	"fmt"

	"jets/internal/dataflow"
)

const (
	tokExpr uint8 = iota
	tokFile
	tokStdout
)

type ctok struct {
	kind uint8
	fn   cval
}

// capp is a compiled app declaration, shared by every call site. The mpi and
// command-token expressions compile once against the app's parameter frame
// (whose parent is the global frame, matching the interpreter's appEnv).
type capp struct {
	decl      *AppDecl
	mpi       *cval
	tokens    []ctok
	effectful bool // mpi/token expressions can have effects
}

// fillApp compiles the app's body against the completed root scope.
func (c *compiler) fillApp(ca *capp, rootSc *cscope) {
	app := ca.decl
	bp := &blockBP{}
	sc := &cscope{parent: rootSc, vars: map[string]int{}, bp: bp}
	declare := func(p Param) {
		if _, dup := sc.vars[p.Name]; dup {
			return // first declaration wins; call sites raise the dup error
		}
		idx := len(bp.slots)
		bp.slots = append(bp.slots, slotBP{name: p.Name, typ: p.Type, kind: kImm})
		sc.vars[p.Name] = idx
	}
	for _, p := range app.Ins {
		declare(p)
	}
	for _, p := range app.Outs {
		declare(p)
	}
	if app.MPI != nil {
		mv := c.compileExpr(sc, app.MPI)
		ca.mpi = &mv
	}
	ca.tokens = make([]ctok, 0, len(app.Tokens))
	for _, tok := range app.Tokens {
		switch {
		case tok.StdoutOf != nil:
			ca.tokens = append(ca.tokens, ctok{kind: tokStdout, fn: c.compileExpr(sc, &FileOf{X: tok.StdoutOf})})
		case tok.FileOf != nil:
			ca.tokens = append(ca.tokens, ctok{kind: tokFile, fn: c.compileExpr(sc, &FileOf{X: tok.FileOf})})
		default:
			ca.tokens = append(ca.tokens, ctok{kind: tokExpr, fn: c.compileExpr(sc, tok.Expr)})
		}
	}
}

// cinArg is one compiled input binding. The error fields preserve the
// interpreter's exact check order: preErr before the argument evaluates,
// postErr (duplicate parameter) after.
type cinArg struct {
	preErr  error
	arg     cval
	isFile  bool
	pname   string
	postErr error
}

// coutArg is one compiled output binding.
type coutArg struct {
	preErr  error
	target  ctarget
	postErr error
}

// cAppCall is a fully lowered call site.
type cAppCall struct {
	app          *capp
	name         string
	line         int
	arityErr     error
	ins          []cinArg
	outs         []coutArg
	nIns, nOuts  int
	argsEffectul bool
}

// fast reports whether phase A is retry-safe: no effectful expression
// anywhere among arguments, target indices, mpi, or command tokens.
func (a *cAppCall) fast() bool {
	return !a.argsEffectul && !a.app.effectful
}

func (c *compiler) compileAppCall(sc *cscope, call *Call, targets []LValue, line int) *cAppCall {
	app := c.prog.Apps[call.Name]
	ac := &cAppCall{app: c.apps[call.Name], name: call.Name, line: line,
		nIns: len(app.Ins), nOuts: len(app.Outs)}
	if len(call.Args) != len(app.Ins) {
		ac.arityErr = rtErrf(line, "app %s takes %d arguments, got %d", app.Name, len(app.Ins), len(call.Args))
		return ac
	}
	if len(targets) != len(app.Outs) {
		ac.arityErr = rtErrf(line, "app %s produces %d outputs, assignment has %d targets", app.Name, len(app.Outs), len(targets))
		return ac
	}
	seen := map[string]bool{}
	ac.ins = make([]cinArg, len(app.Ins))
	for i, p := range app.Ins {
		ia := &ac.ins[i]
		ia.pname = p.Name
		if p.IsArray {
			ia.preErr = rtErrf(line, "app %s: array parameters are not supported", app.Name)
		}
		ia.arg = c.compileExpr(sc, call.Args[i])
		ac.argsEffectul = ac.argsEffectul || ia.arg.effectful
		ia.isFile = p.Type == TFile
		if seen[p.Name] {
			ia.postErr = rtErrf(line, "swift: duplicate declaration of %q", p.Name)
		}
		seen[p.Name] = true
	}
	ac.outs = make([]coutArg, len(app.Outs))
	for i, p := range app.Outs {
		oa := &ac.outs[i]
		if p.Type != TFile {
			oa.preErr = rtErrf(line, "app %s: output %s must be a file", app.Name, p.Name)
		}
		oa.target = c.compileFileTarget(sc, targets[i], line)
		ac.argsEffectul = ac.argsEffectul || oa.target.effectful
		if seen[p.Name] {
			oa.postErr = rtErrf(line, "swift: duplicate declaration of %q", p.Name)
		}
		seen[p.Name] = true
	}
	return ac
}

// compileFileTarget mirrors the interpreter's targetFilePath: the target
// must be a declared file variable; its concrete path (resolved at run time
// from the slot's mapper) is the executor's output location.
func (c *compiler) compileFileTarget(sc *cscope, lv LValue, line int) ctarget {
	scope, idx, depth := sc.resolve(lv.Name)
	if scope == nil {
		return ctarget{err: rtErrf(line, "undeclared variable %q", lv.Name)}
	}
	sb := &scope.bp.slots[idx]
	if sb.typ != TFile {
		return ctarget{err: rtErrf(line, "app output %q must be a file", lv.Name)}
	}
	t := ctarget{name: lv.Name, depth: depth, idx: idx, line: line}
	if lv.Index == nil {
		if sb.kind == kArr {
			t.err = rtErrf(line, "%s is a file array; index it", lv.Name)
		}
		return t
	}
	if sb.kind != kArr {
		t.err = rtErrf(line, "%s is not an array", lv.Name)
		return t
	}
	iv := c.compileExpr(sc, lv.Index)
	t.indexFn = iv.fn
	t.effectful = iv.effectful
	return t
}

// resolveFile returns the concrete output path and the future set on
// completion.
func (t *ctarget) resolveFile(fr *frame, ec *ectx) (string, *dataflow.Future, error) {
	if t.err != nil {
		return "", nil, t.err
	}
	rs := &frameAt(fr, t.depth).slots[t.idx]
	pattern, err := rs.getPath(ec)
	if err != nil {
		return "", nil, err
	}
	if t.indexFn == nil {
		return pattern, rs.fut, nil
	}
	i, err := evalIndex(t.indexFn, fr, ec, t.line)
	if err != nil {
		return "", nil, err
	}
	return fmt.Sprintf(pattern, i), rs.arr.Elem(int(i)), nil
}

// phaseA performs every read and check of one invocation — argument values,
// output paths, mpi size, command tokens — and builds the AppInvocation. It
// has no side effects, so a would-block can be retried wholesale.
func (a *cAppCall) phaseA(fr *frame, ec *ectx) (AppInvocation, []*dataflow.Future, []FileVal, error) {
	var zero AppInvocation
	if a.arityErr != nil {
		return zero, nil, nil, a.arityErr
	}
	appFr := &frame{parent: ec.rt.root, slots: make([]rslot, a.nIns+a.nOuts)}
	for i := range a.ins {
		in := &a.ins[i]
		if in.preErr != nil {
			return zero, nil, nil, in.preErr
		}
		v, err := in.arg.fn(fr, ec)
		if err != nil {
			return zero, nil, nil, err
		}
		if in.isFile {
			if _, ok := v.(FileVal); !ok {
				return zero, nil, nil, rtErrf(a.line, "app %s: argument %s must be a file, got %T", a.name, in.pname, v)
			}
		}
		if in.postErr != nil {
			return zero, nil, nil, in.postErr
		}
		appFr.slots[i].imm = v
	}
	outFuts := make([]*dataflow.Future, len(a.outs))
	outVals := make([]FileVal, len(a.outs))
	var outPaths []string
	for i := range a.outs {
		out := &a.outs[i]
		if out.preErr != nil {
			return zero, nil, nil, out.preErr
		}
		path, fut, err := out.target.resolveFile(fr, ec)
		if err != nil {
			return zero, nil, nil, err
		}
		if out.postErr != nil {
			return zero, nil, nil, out.postErr
		}
		outFuts[i] = fut
		outVals[i] = FileVal{Path: path}
		outPaths = append(outPaths, path)
		appFr.slots[a.nIns+i].imm = outVals[i]
	}
	inv := AppInvocation{App: a.name, OutFiles: outPaths}
	if a.app.mpi != nil {
		v, err := a.app.mpi.fn(appFr, ec)
		if err != nil {
			return zero, nil, nil, err
		}
		n, ok := v.(int64)
		if !ok || n < 1 {
			return zero, nil, nil, rtErrf(a.line, "app %s: mpi size must be a positive int, got %v", a.name, v)
		}
		inv.NProcs = int(n)
	}
	for _, tok := range a.app.tokens {
		v, err := tok.fn.fn(appFr, ec)
		if err != nil {
			return zero, nil, nil, err
		}
		switch tok.kind {
		case tokStdout:
			inv.StdoutFile = v.(string)
		case tokFile:
			inv.Tokens = append(inv.Tokens, v.(string))
		default:
			inv.Tokens = append(inv.Tokens, toDisplay(v))
		}
	}
	if len(inv.Tokens) == 0 {
		return zero, nil, nil, rtErrf(a.line, "app %s resolved to an empty command", a.name)
	}
	return inv, outFuts, outVals, nil
}

// compileAppStmt lowers a statement-position app call: phase A inline (or on
// the retry goroutine), phase B fire-and-forget — no goroutine parks waiting
// for the job.
func (c *compiler) compileAppStmt(sc *cscope, call *Call, targets []LValue, line int) cstmt {
	ac := c.compileAppCall(sc, call, targets, line)
	return cstmt{fast: ac.fast(), exec: func(fr *frame, ec *ectx) error {
		inv, outFuts, outVals, err := ac.phaseA(fr, ec)
		if err != nil {
			return err
		}
		ec.rt.dispatchApp(inv, outFuts, outVals, ac.name, ac.line, nil)
		return nil
	}}
}

// invokeWait is the expression-position form: submit, then block until the
// invocation completes, like the interpreter's synchronous invokeApp. Only
// reached on the blocking path (app calls are always effectful).
func (a *cAppCall) invokeWait(fr *frame, ec *ectx) error {
	inv, outFuts, outVals, err := a.phaseA(fr, ec)
	if err != nil {
		return err
	}
	ch := make(chan error, 1)
	ec.rt.dispatchApp(inv, outFuts, outVals, a.name, a.line, ch)
	select {
	case err := <-ch:
		return err
	case <-ec.ctx.Done():
		return ec.ctx.Err()
	}
}

package swiftlang

import (
	"sync/atomic"
	"time"

	"jets/internal/obs"
)

// Client-tier instrumentation: how many tasks the script layer produced, how
// well batching coalesces them, and what compilation costs. Package-level
// instruments following hydra's detached-counter idiom; RegisterMetrics
// exports them through a registry (and the /metrics endpoint).
var (
	swiftTasksSubmitted = obs.NewCounter("swift_tasks_submitted_total",
		"app invocations handed to the JETS executor by the script layer")
	// The histogram is duration-based; batch sizes are encoded as 1s == 1
	// task so bucket edges render as integer task counts.
	swiftBatchSize = obs.NewHist("swift_batch_size",
		"tasks per batched engine submit (1s == 1 task)", batchSizeBounds)
	swiftRedirectDrops = obs.NewCounter("swift_redirect_dropped_bytes_total",
		"stdout-redirect bytes lost to file write errors")
	compileNanos atomic.Int64
)

var batchSizeBounds = []time.Duration{
	1 * time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
	16 * time.Second, 32 * time.Second, 64 * time.Second, 128 * time.Second,
	256 * time.Second, 512 * time.Second,
}

// RegisterMetrics exports the script layer's instrumentation through reg.
func RegisterMetrics(reg *obs.Registry) {
	reg.Register(swiftTasksSubmitted, swiftBatchSize, swiftRedirectDrops)
	reg.GaugeFunc("swift_compile_seconds",
		"wall time of the most recent script compilation", func() float64 {
			return float64(compileNanos.Load()) / 1e9
		})
}

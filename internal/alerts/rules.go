package alerts

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"jets/internal/coasters"
	"jets/internal/dispatch"
	"jets/internal/obs"
)

// ForDispatcher is the curated default rule set for a live dispatcher,
// covering the §6.1.5 fault regimes an operator must detect without an
// external scraper:
//
//   - worker-loss-rate (critical): any worker declared dead inside the
//     trailing window — the shrinking-allocation signature of the fault
//     experiments, and the precursor of a retry storm.
//   - no-workers (critical): work queued or running with an empty worker
//     pool — the §6.1.5 endpoint where the allocation has shrunk to zero.
//     For debounces engine startup, where jobs legitimately land before the
//     first worker registers.
//   - queue-wait-p99 (warning): the trailing-window p99 of submit-to-seat
//     latency, the dispatcher's primary backpressure signal.
//   - idle-starvation (warning): idle workers coexisting with queued jobs
//     for a sustained period — head-of-line blocking by a too-wide MPI job,
//     or a scheduling stall.
//   - queue-depth (warning): sustained deep backlog.
//   - trace-drops (warning): lifecycle trace events lost to observer
//     backpressure inside the window.
//   - journal-errors (critical): journal records dropped inside the window —
//     the WAL's degraded-mode buffer overflowed, so job state written during
//     the outage is not durable and a crash there loses work.
func ForDispatcher(d *dispatch.Dispatcher) []Rule {
	return []Rule{
		{
			Name: "worker-loss-rate", Severity: Critical,
			Counter:   func() int64 { return int64(d.Stats().WorkersLost) },
			Op:        Above,
			Threshold: 0,
			Window:    30 * time.Second,
			Hold:      10 * time.Second,
		},
		{
			Name: "no-workers", Severity: Critical,
			Gauge: func() float64 {
				if d.Workers() == 0 && d.QueuedJobs()+d.RunningJobs() > 0 {
					return 1
				}
				return 0
			},
			Op: Above, Threshold: 0,
			For:  5 * time.Second,
			Hold: 5 * time.Second,
		},
		{
			Name: "queue-wait-p99", Severity: Warning,
			Hist: d.QueueWaitHist(), Q: 0.99,
			Op: Above, Threshold: 5.0,
			Window: 30 * time.Second,
			Hold:   10 * time.Second,
		},
		{
			Name: "idle-starvation", Severity: Warning,
			Gauge: func() float64 {
				if d.IdleWorkers() > 0 && d.QueuedJobs() > 0 {
					return 1
				}
				return 0
			},
			Op: Above, Threshold: 0,
			For:  10 * time.Second,
			Hold: 10 * time.Second,
		},
		{
			Name: "queue-depth", Severity: Warning,
			Gauge:     func() float64 { return float64(d.QueuedJobs()) },
			Op:        Above,
			Threshold: 10000,
			For:       30 * time.Second,
			Hold:      30 * time.Second,
		},
		{
			Name: "trace-drops", Severity: Warning,
			Counter:   func() int64 { return int64(d.DroppedEvents()) },
			Op:        Above,
			Threshold: 0,
			Window:    30 * time.Second,
			Hold:      10 * time.Second,
		},
		{
			Name: "journal-errors", Severity: Critical,
			Counter:   func() int64 { return int64(d.Stats().JournalErrors) },
			Op:        Above,
			Threshold: 0,
			Window:    30 * time.Second,
			Hold:      10 * time.Second,
		},
	}
}

// ForCoasters extends the dispatcher defaults with data-plane rules for an
// embedded Coasters service.
func ForCoasters(s *coasters.Service) []Rule {
	return []Rule{
		{
			Name: "dataplane-drops", Severity: Warning,
			Counter:   s.DroppedOutputs,
			Op:        Above,
			Threshold: 0,
			Window:    30 * time.Second,
			Hold:      10 * time.Second,
		},
	}
}

// Sources a rule file can reference: instruments exposing a sampled int64
// (Counter, CounterFunc, Gauge) or float64 (GaugeFunc) value.
type int64Source interface{ Value() int64 }
type floatSource interface{ Value() float64 }

// ParseRules reads the -alert-rules file format: one rule per line, blank
// lines and '#' comments ignored.
//
//	[name:] <severity> <kind> <series> <op> <threshold> [window <dur>] [for <dur>] [hold <dur>]
//
// severity is "critical" or "warn"; kind is "gauge", "rate", or a quantile
// like "p99" / "p99.9" (requires a histogram series); op is ">" or "<";
// threshold parses as a Go duration ("500ms", converted to seconds) or a
// plain number. series names resolve against the registry at parse time,
// including labeled serieses like jets_shard_queued_jobs{shard="0"}, so a
// typo fails fast instead of silently watching nothing.
//
//	# fire while any worker was lost in the trailing 30s
//	critical rate jets_workers_lost_total > 0 window 30s hold 10s
//	slow-seat: warn p99 jets_dispatch_queue_wait_seconds > 2500ms window 60s
func ParseRules(r io.Reader, reg *obs.Registry) ([]Rule, error) {
	var rules []Rule
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := parseRuleLine(line, reg)
		if err != nil {
			return nil, fmt.Errorf("alerts: line %d: %w", lineNo, err)
		}
		rules = append(rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("alerts: reading rules: %w", err)
	}
	return rules, nil
}

func parseRuleLine(line string, reg *obs.Registry) (Rule, error) {
	fields := strings.Fields(line)
	var rule Rule
	if strings.HasSuffix(fields[0], ":") {
		rule.Name = strings.TrimSuffix(fields[0], ":")
		fields = fields[1:]
	}
	if len(fields) < 5 {
		return rule, fmt.Errorf("want [name:] <severity> <kind> <series> <op> <threshold> ..., got %q", line)
	}
	switch fields[0] {
	case "critical":
		rule.Severity = Critical
	case "warn", "warning":
		rule.Severity = Warning
	default:
		return rule, fmt.Errorf("unknown severity %q (want critical or warn)", fields[0])
	}
	kind, series := fields[1], fields[2]
	m := reg.Lookup(series)
	if m == nil {
		return rule, fmt.Errorf("unknown series %q", series)
	}
	switch {
	case kind == "gauge":
		switch src := m.(type) {
		case floatSource:
			rule.Gauge = src.Value
		case int64Source:
			rule.Gauge = func() float64 { return float64(src.Value()) }
		default:
			return rule, fmt.Errorf("series %q cannot back a gauge rule", series)
		}
	case kind == "rate":
		src, ok := m.(int64Source)
		if !ok {
			return rule, fmt.Errorf("series %q is not a counter; rate rules need one", series)
		}
		rule.Counter = src.Value
	case strings.HasPrefix(kind, "p"):
		pct, err := strconv.ParseFloat(kind[1:], 64)
		if err != nil || pct <= 0 || pct >= 100 {
			return rule, fmt.Errorf("bad quantile %q (want e.g. p50, p99)", kind)
		}
		h, ok := m.(*obs.Hist)
		if !ok {
			return rule, fmt.Errorf("series %q is not a histogram; quantile rules need one", series)
		}
		rule.Hist, rule.Q = h, pct/100
	default:
		return rule, fmt.Errorf("unknown rule kind %q (want gauge, rate, or pNN)", kind)
	}
	switch fields[3] {
	case ">":
		rule.Op = Above
	case "<":
		rule.Op = Below
	default:
		return rule, fmt.Errorf("unknown op %q (want > or <)", fields[3])
	}
	thr, err := parseThreshold(fields[4])
	if err != nil {
		return rule, err
	}
	rule.Threshold = thr
	rest := fields[5:]
	for len(rest) > 0 {
		if len(rest) < 2 {
			return rule, fmt.Errorf("dangling option %q", rest[0])
		}
		d, err := time.ParseDuration(rest[1])
		if err != nil {
			return rule, fmt.Errorf("bad %s duration %q: %v", rest[0], rest[1], err)
		}
		switch rest[0] {
		case "window":
			rule.Window = d
		case "for":
			rule.For = d
		case "hold":
			rule.Hold = d
		default:
			return rule, fmt.Errorf("unknown option %q (want window, for, or hold)", rest[0])
		}
		rest = rest[2:]
	}
	if rule.Name == "" {
		rule.Name = kind + "(" + series + ")"
	}
	return rule, nil
}

// parseThreshold accepts a plain number or a Go duration (as seconds).
func parseThreshold(s string) (float64, error) {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		return d.Seconds(), nil
	}
	return 0, fmt.Errorf("bad threshold %q (want a number or duration)", s)
}

package alerts

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"jets/internal/obs"
)

// collector captures OnAlert transitions for assertions.
type collector struct {
	mu     sync.Mutex
	alerts []Alert
}

func (c *collector) hook(a Alert) {
	c.mu.Lock()
	c.alerts = append(c.alerts, a)
	c.mu.Unlock()
}

func (c *collector) take() []Alert {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.alerts
	c.alerts = nil
	return out
}

// newTestEngine builds an engine with a capture hook, not started: tests
// drive Eval with synthetic times for deterministic hysteresis.
func newTestEngine(t *testing.T, cfg Config, rules ...Rule) (*Engine, *collector) {
	t.Helper()
	col := &collector{}
	cfg.OnAlert = col.hook
	e, err := NewEngine(cfg, rules...)
	if err != nil {
		t.Fatal(err)
	}
	return e, col
}

func TestGaugeThresholdHysteresis(t *testing.T) {
	var level float64
	var mu sync.Mutex
	set := func(v float64) { mu.Lock(); level = v; mu.Unlock() }
	get := func() float64 { mu.Lock(); defer mu.Unlock(); return level }
	e, col := newTestEngine(t, Config{}, Rule{
		Name: "deep-queue", Severity: Critical,
		Gauge: get, Op: Above, Threshold: 10,
		For: 3 * time.Second, Hold: 2 * time.Second,
	})
	t0 := time.Unix(1000, 0)
	at := func(d time.Duration) time.Time { return t0.Add(d) }

	// Clean evaluations: nothing fires.
	e.Eval(at(0))
	set(50) // violating from t=1s
	e.Eval(at(1 * time.Second))
	e.Eval(at(3 * time.Second)) // held 2s < For 3s: still pending
	if e.IsFiring("deep-queue") || len(col.take()) != 0 {
		t.Fatal("rule fired before For elapsed")
	}
	e.Eval(at(4 * time.Second)) // held 3s >= For: fires
	if !e.IsFiring("deep-queue") {
		t.Fatal("rule must fire once the violation held For")
	}
	got := col.take()
	if len(got) != 1 || !got[0].Firing || got[0].Rule != "deep-queue" || got[0].Value != 50 {
		t.Fatalf("firing transition = %+v", got)
	}
	if got[0].Severity != Critical {
		t.Fatalf("severity = %v", got[0].Severity)
	}
	if err := e.Health(); err == nil || !strings.Contains(err.Error(), "deep-queue") {
		t.Fatalf("Health() = %v, want critical failure naming the rule", err)
	}

	// A brief dip below threshold must not clear before Hold.
	set(5)
	e.Eval(at(5 * time.Second))
	if !e.IsFiring("deep-queue") {
		t.Fatal("rule cleared before Hold elapsed")
	}
	// The dip ends: violation resets the clear timer.
	set(50)
	e.Eval(at(6 * time.Second))
	set(5)
	e.Eval(at(7 * time.Second))
	e.Eval(at(8 * time.Second)) // clear for 1s < Hold 2s
	if !e.IsFiring("deep-queue") {
		t.Fatal("flap must restart the Hold timer")
	}
	e.Eval(at(9 * time.Second)) // clear for 2s >= Hold: resolves
	if e.IsFiring("deep-queue") {
		t.Fatal("rule must resolve after Hold of clean evaluations")
	}
	got = col.take()
	if len(got) != 1 || got[0].Firing {
		t.Fatalf("resolving transition = %+v", got)
	}
	if err := e.Health(); err != nil {
		t.Fatalf("Health() after resolve = %v, want nil", err)
	}
	if len(e.Firing()) != 0 {
		t.Fatalf("Firing() = %v, want empty", e.Firing())
	}
}

func TestCounterRateRule(t *testing.T) {
	c := obs.NewCounter("jets_lost_total", "t")
	e, col := newTestEngine(t, Config{}, Rule{
		Name: "loss-rate", Counter: c.Value,
		Op: Above, Threshold: 0,
		Window: 10 * time.Second,
	})
	t0 := time.Unix(2000, 0)
	at := func(d time.Duration) time.Time { return t0.Add(d) }

	// First evaluation is the baseline: a single sample has no rate.
	c.Add(100)
	e.Eval(at(0))
	if e.IsFiring("loss-rate") {
		t.Fatal("baseline evaluation must not fire")
	}
	// Flat counter: rate 0, still clean.
	e.Eval(at(1 * time.Second))
	if e.IsFiring("loss-rate") {
		t.Fatal("flat counter must not fire a rate rule")
	}
	// An increment inside the window fires (For 0).
	c.Inc()
	e.Eval(at(2 * time.Second))
	if !e.IsFiring("loss-rate") {
		t.Fatal("in-window increment must fire")
	}
	if got := col.take(); len(got) != 1 || got[0].Value <= 0 {
		t.Fatalf("firing transition = %+v", got)
	}
	// The increment ages out of the 10s window; the rule clears (Hold 0)
	// within one evaluation of the window passing.
	e.Eval(at(13 * time.Second))
	if e.IsFiring("loss-rate") {
		t.Fatal("rule must clear once the increment leaves the window")
	}
}

func TestCounterResetRestartsWindow(t *testing.T) {
	var v int64
	var mu sync.Mutex
	set := func(x int64) { mu.Lock(); v = x; mu.Unlock() }
	e, _ := newTestEngine(t, Config{}, Rule{
		Name: "rate", Counter: func() int64 { mu.Lock(); defer mu.Unlock(); return v },
		Op: Above, Threshold: 0, Window: 30 * time.Second,
	})
	t0 := time.Unix(3000, 0)
	set(1000)
	e.Eval(t0)
	// The source restarts: its counter drops. A naive delta would be hugely
	// negative (or, against a fresh baseline, spuriously positive).
	set(2)
	e.Eval(t0.Add(1 * time.Second))
	if e.IsFiring("rate") {
		t.Fatal("counter reset must restart the window, not fire")
	}
	// Growth after the reset is a real rate again.
	set(10)
	e.Eval(t0.Add(2 * time.Second))
	if !e.IsFiring("rate") {
		t.Fatal("post-reset growth must fire")
	}
}

func TestQuantileRule(t *testing.T) {
	h := obs.NewHist("jets_wait_seconds", "t", []time.Duration{
		100 * time.Millisecond, time.Second, 10 * time.Second,
	})
	e, _ := newTestEngine(t, Config{}, Rule{
		Name: "wait-p99", Hist: h, Q: 0.99,
		Op: Above, Threshold: 0.5, // seconds
		Window: 10 * time.Second,
	})
	t0 := time.Unix(4000, 0)
	at := func(d time.Duration) time.Time { return t0.Add(d) }

	// Slow samples from before the engine started must not fire: the first
	// evaluation only records the baseline.
	for i := 0; i < 50; i++ {
		h.Observe(5 * time.Second)
	}
	e.Eval(at(0))
	if e.IsFiring("wait-p99") {
		t.Fatal("pre-engine samples must not fire (baseline evaluation)")
	}
	// No new samples: empty window, still clean.
	e.Eval(at(1 * time.Second))
	if e.IsFiring("wait-p99") {
		t.Fatal("empty window must not fire")
	}
	// Slow observations inside the window fire.
	for i := 0; i < 20; i++ {
		h.Observe(5 * time.Second)
	}
	e.Eval(at(2 * time.Second))
	if !e.IsFiring("wait-p99") {
		t.Fatal("slow in-window samples must fire the quantile rule")
	}
	// Recovery: the slow samples age out of the 10s window and only the
	// baseline-aged history remains; the rule clears on the next evaluation
	// past the boundary even though the lifetime p99 is still terrible.
	e.Eval(at(7 * time.Second))
	e.Eval(at(13 * time.Second))
	if e.IsFiring("wait-p99") {
		t.Fatal("rule must clear within one evaluation after the window drains")
	}
	if lifetime := h.Quantile(0.99); lifetime.Seconds() < 0.5 {
		t.Fatalf("sanity: lifetime p99 = %v, expected slow", lifetime)
	}
}

func TestBelowOp(t *testing.T) {
	var level float64 = 10
	e, _ := newTestEngine(t, Config{}, Rule{
		Name: "starved", Gauge: func() float64 { return level },
		Op: Below, Threshold: 1,
	})
	t0 := time.Unix(5000, 0)
	e.Eval(t0)
	if e.IsFiring("starved") {
		t.Fatal("value above threshold must not fire a Below rule")
	}
	level = 0
	e.Eval(t0.Add(time.Second))
	if !e.IsFiring("starved") {
		t.Fatal("value below threshold must fire a Below rule")
	}
}

func TestEngineRegistryExport(t *testing.T) {
	reg := obs.NewRegistry()
	var level float64
	var mu sync.Mutex
	e, _ := newTestEngine(t, Config{Registry: reg}, Rule{
		Name: "exported", Severity: Critical,
		Gauge: func() float64 { mu.Lock(); defer mu.Unlock(); return level },
		Op:    Above, Threshold: 0,
	})
	scrape := func() string {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if !strings.Contains(scrape(), `jets_alert_firing{rule="exported",severity="critical"} 0`) {
		t.Fatalf("firing gauge must export 0 before firing:\n%s", scrape())
	}
	t0 := time.Unix(6000, 0)
	mu.Lock()
	level = 1
	mu.Unlock()
	e.Eval(t0)
	out := scrape()
	if !strings.Contains(out, `jets_alert_firing{rule="exported",severity="critical"} 1`) {
		t.Fatalf("firing gauge must export 1 while firing:\n%s", out)
	}
	if !strings.Contains(out, "jets_alerts_transitions_total 1") {
		t.Fatalf("transition counter must export:\n%s", out)
	}
	mu.Lock()
	level = 0
	mu.Unlock()
	e.Eval(t0.Add(time.Second))
	if !strings.Contains(scrape(), `jets_alert_firing{rule="exported",severity="critical"} 0`) {
		t.Fatalf("firing gauge must drop to 0 after resolve:\n%s", scrape())
	}
}

func TestHealthzIntegration(t *testing.T) {
	reg := obs.NewRegistry()
	var bad float64
	var mu sync.Mutex
	e, _ := newTestEngine(t, Config{Registry: reg}, Rule{
		Name: "critical-down", Severity: Critical,
		Gauge: func() float64 { mu.Lock(); defer mu.Unlock(); return bad },
		Op:    Above, Threshold: 0,
	}, Rule{
		// A firing warning must NOT fail /healthz.
		Name: "noisy-warning", Severity: Warning,
		Gauge: func() float64 { return 1 },
		Op:    Above, Threshold: 0,
	})
	srv, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetHealth(e.Health)

	get := func() int {
		resp, err := http.Get("http://" + srv.Addr() + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	t0 := time.Unix(7000, 0)
	e.Eval(t0) // warning fires, critical does not
	if !e.IsFiring("noisy-warning") {
		t.Fatal("warning rule should be firing")
	}
	if code := get(); code != 200 {
		t.Fatalf("/healthz with only a warning firing = %d, want 200", code)
	}
	mu.Lock()
	bad = 1
	mu.Unlock()
	e.Eval(t0.Add(time.Second))
	if code := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with a critical rule firing = %d, want 503", code)
	}
	mu.Lock()
	bad = 0
	mu.Unlock()
	e.Eval(t0.Add(2 * time.Second))
	if code := get(); code != 200 {
		t.Fatalf("/healthz after recovery = %d, want 200", code)
	}
}

func TestRuleValidation(t *testing.T) {
	gauge := func() float64 { return 0 }
	counter := func() int64 { return 0 }
	h := obs.NewHist("jets_v_seconds", "v", nil)
	cases := []struct {
		name string
		rule Rule
	}{
		{"no source", Rule{Name: "x"}},
		{"two sources", Rule{Name: "x", Gauge: gauge, Counter: counter}},
		{"empty name", Rule{Gauge: gauge}},
		{"quantile out of range", Rule{Name: "x", Hist: h, Q: 1.5}},
		{"quantile zero", Rule{Name: "x", Hist: h}},
	}
	for _, tc := range cases {
		if _, err := NewEngine(Config{}, tc.rule); err == nil {
			t.Errorf("%s: NewEngine accepted invalid rule %+v", tc.name, tc.rule)
		}
	}
	e, _ := newTestEngine(t, Config{}, Rule{Name: "dup", Gauge: gauge})
	if err := e.Add(Rule{Name: "dup", Gauge: gauge}); err == nil {
		t.Error("duplicate rule name must be rejected")
	}
	e.Start()
	defer e.Close()
	if err := e.Add(Rule{Name: "late", Gauge: gauge}); err == nil {
		t.Error("Add after Start must be rejected")
	}
}

func TestTickerLifecycleRaceClean(t *testing.T) {
	reg := obs.NewRegistry()
	c := obs.NewCounter("jets_ticker_total", "t")
	reg.Register(c)
	e, _ := newTestEngine(t, Config{Interval: time.Millisecond, Registry: reg}, Rule{
		Name: "busy", Counter: c.Value, Op: Above, Threshold: 0, Window: time.Second,
	})
	e.Start()
	e.Start() // idempotent
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			c.Inc()
			e.Firing()
			e.IsFiring("busy")
			e.Health()
			var b strings.Builder
			reg.WritePrometheus(&b)
			time.Sleep(time.Millisecond)
		}
	}()
	<-done
	e.Close()
	// After Close the evaluation goroutine is gone; Eval stays callable.
	e.Eval(time.Unix(8000, 0))
}

func TestParseRules(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("jets_lost_total", "c").Add(1)
	reg.Gauge("jets_depth", "g").Set(3)
	reg.GaugeFunc("jets_idle", "gf", func() float64 { return 2 })
	reg.Hist("jets_wait_seconds", "h", nil)
	reg.GaugeFuncL("jets_shard_queued", `shard="0"`, "lg", func() float64 { return 7 })

	src := `
# comment, then a blank line

critical rate jets_lost_total > 0 window 30s hold 10s
slow-seat: warn p99 jets_wait_seconds > 2500ms window 60s
warn gauge jets_depth > 10000 for 30s
warn gauge jets_idle < 0.5
sharded: warn gauge jets_shard_queued{shard="0"} > 100
`
	rules, err := ParseRules(strings.NewReader(src), reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(rules))
	}
	r := rules[0]
	if r.Severity != Critical || r.Counter == nil || r.Window != 30*time.Second ||
		r.Hold != 10*time.Second || r.Name != "rate(jets_lost_total)" {
		t.Fatalf("rate rule = %+v", r)
	}
	r = rules[1]
	if r.Name != "slow-seat" || r.Hist == nil || r.Q != 0.99 ||
		r.Threshold != 2.5 || r.Window != 60*time.Second {
		t.Fatalf("quantile rule = %+v", r)
	}
	r = rules[2]
	if r.Gauge == nil || r.Threshold != 10000 || r.For != 30*time.Second {
		t.Fatalf("gauge rule = %+v", r)
	}
	if rules[3].Op != Below {
		t.Fatalf("below rule = %+v", rules[3])
	}
	if v := rules[4].Gauge(); v != 7 {
		t.Fatalf("labeled series gauge read %v, want 7", v)
	}

	// Parsed rules drive a real engine.
	e, err := NewEngine(Config{Registry: reg, OnAlert: func(Alert) {}}, rules...)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(9000, 0)
	e.Eval(t0)
	e.Eval(t0.Add(time.Second))
	if e.IsFiring("gauge(jets_idle)") {
		t.Errorf("below-op idle rule must not fire: value 2 is not < 0.5")
	}
}

func TestParseRulesErrors(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("jets_c_total", "c")
	reg.Hist("jets_h_seconds", "h", nil)
	cases := []struct {
		line, wantErr string
	}{
		{"critical rate jets_nope_total > 0", "unknown series"},
		{"fatal rate jets_c_total > 0", "unknown severity"},
		{"critical p99 jets_c_total > 0", "not a histogram"},
		{"critical rate jets_h_seconds > 0", "not a counter"},
		{"critical gauge jets_c_total >= 0", "unknown op"},
		{"critical rate jets_c_total > banana", "bad threshold"},
		{"critical rate jets_c_total > 0 window", "dangling option"},
		{"critical rate jets_c_total > 0 jitter 5s", "unknown option"},
		{"critical rate jets_c_total > 0 window soon", "bad window duration"},
		{"critical p0 jets_h_seconds > 0", "bad quantile"},
		{"critical blend jets_c_total > 0", "unknown rule kind"},
		{"critical rate", "want [name:]"},
	}
	for _, tc := range cases {
		_, err := ParseRules(strings.NewReader(tc.line), reg)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseRules(%q) = %v, want error containing %q", tc.line, err, tc.wantErr)
		}
	}
}

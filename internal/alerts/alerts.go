// Package alerts is the dispatcher's self-monitoring layer: a rule engine
// evaluated on a ticker over the live obs instruments, so the regimes the
// paper's §6.1.5 fault experiments expose (worker churn, retry storms,
// starved allocations) are detected in-process — the way Falkon's dispatcher
// health monitoring and the Coasters service's block-health heuristics ship
// their own watchdogs — rather than delegated to an external Prometheus.
//
// A Rule watches one value source — a gauge level, a counter's rate over a
// sliding window, or a histogram quantile over a sliding window — against a
// threshold, with firing/clearing hysteresis (For/Hold durations) so a
// flapping series does not spam the operator. The Engine evaluates every
// rule on one ticker, reports transitions through a pluggable hook
// (structured Alert values; the default hook logs), exports firing states
// back into the registry as jets_alert_firing{rule=...} gauges, and backs
// the /healthz endpoint on the obs listener: 503 while any critical rule
// fires.
//
// Evaluation is entirely off the dispatch hot path: sources are the same
// atomics and preallocated bucket arrays the instruments already maintain,
// sampled once per tick by the engine's own goroutine.
package alerts

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"jets/internal/obs"
)

// Severity ranks a rule's impact: Warning rules only log and export;
// Critical rules additionally fail /healthz while firing.
type Severity uint8

const (
	Warning Severity = iota
	Critical
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Critical {
		return "critical"
	}
	return "warning"
}

// Op is the comparison direction of a rule.
type Op uint8

const (
	// Above fires while value > threshold.
	Above Op = iota
	// Below fires while value < threshold.
	Below
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == Below {
		return "<"
	}
	return ">"
}

// Rule is one monitored condition. Exactly one of Gauge, Counter, or Hist
// must be set; it determines the rule kind:
//
//   - Gauge (threshold rule): the sampled level is compared directly.
//   - Counter (rate rule): the per-second increase over the trailing Window
//     is compared (a counter reset restarts the window).
//   - Hist (quantile rule): the Q-quantile of the observations made during
//     the trailing Window is compared, in seconds.
type Rule struct {
	// Name identifies the rule in logs, /healthz, and the firing gauge's
	// rule label. Required, unique within an engine.
	Name string
	// Severity defaults to Warning.
	Severity Severity

	Gauge   func() float64
	Counter func() int64
	Hist    *obs.Hist
	// Q is the quantile in (0, 1) for Hist rules, e.g. 0.99.
	Q float64

	// Op and Threshold define the violation condition (see Op). For Hist
	// rules Threshold is in seconds.
	Op        Op
	Threshold float64

	// Window is the sliding window for rate and quantile rules; default
	// 30s. Threshold rules ignore it.
	Window time.Duration
	// For is how long the condition must hold continuously before the rule
	// fires; 0 fires on the first violating evaluation.
	For time.Duration
	// Hold is how long the condition must stay clear before a firing rule
	// resolves; 0 clears on the first clean evaluation. Hysteresis: For
	// debounces firing, Hold debounces clearing.
	Hold time.Duration
}

// validate checks the rule is well formed.
func (r *Rule) validate() error {
	n := 0
	if r.Gauge != nil {
		n++
	}
	if r.Counter != nil {
		n++
	}
	if r.Hist != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("alerts: rule %q must have exactly one of Gauge, Counter, Hist (has %d)", r.Name, n)
	}
	if r.Hist != nil && (r.Q <= 0 || r.Q >= 1) {
		return fmt.Errorf("alerts: rule %q quantile %g outside (0, 1)", r.Name, r.Q)
	}
	if r.Name == "" {
		return fmt.Errorf("alerts: rule with empty name")
	}
	return nil
}

// Alert is one rule transition, delivered to the OnAlert hook.
type Alert struct {
	Rule     string
	Severity Severity
	// Firing is true on the firing edge, false on the resolving edge.
	Firing bool
	// Value is the evaluated value at the transition; Threshold and Op
	// restate the rule's condition for self-contained log lines.
	Value     float64
	Threshold float64
	Op        Op
	At        time.Time
}

// String renders the transition as a one-line operator message.
func (a Alert) String() string {
	state := "RESOLVED"
	if a.Firing {
		state = "FIRING"
	}
	return fmt.Sprintf("%s [%s] %s: value %.4g (threshold %s %.4g)",
		state, a.Severity, a.Rule, a.Value, a.Op, a.Threshold)
}

// Config parameterizes an Engine.
type Config struct {
	// Interval between evaluations; default 1s.
	Interval time.Duration
	// OnAlert receives each firing/resolving transition; default logs via
	// the standard logger. The hook runs on the engine goroutine outside
	// the engine lock; it must not call back into the engine.
	OnAlert func(Alert)
	// Registry, when non-nil, exports one jets_alert_firing{rule=...}
	// gauge per rule (1 while firing) and a transition counter.
	Registry *obs.Registry
}

// sample is one (time, counter value) observation for rate windows.
type sample struct {
	t time.Time
	v int64
}

// hsnap is one (time, bucket counts) snapshot for quantile windows.
type hsnap struct {
	t      time.Time
	counts []int64
}

// ruleState is a rule plus its evaluation state. Window state is owned by
// the engine goroutine under mu; firing is atomic so the exported gauges
// read it without locking.
type ruleState struct {
	r      Rule
	firing atomic.Bool

	badSince  time.Time
	goodSince time.Time

	samples []sample
	snaps   []hsnap
}

// Engine evaluates a rule set on a ticker.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	rules   []*ruleState
	byName  map[string]*ruleState
	started bool

	critical    atomic.Int64 // number of critical rules currently firing
	transitions *obs.Counter

	stop chan struct{}
	done chan struct{}
}

// NewEngine creates an engine over the given rules (more can be added with
// Add before Start). Call Start to begin evaluation.
func NewEngine(cfg Config, rules ...Rule) (*Engine, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.OnAlert == nil {
		cfg.OnAlert = func(a Alert) { log.Printf("alerts: %s", a) }
	}
	e := &Engine{
		cfg:    cfg,
		byName: make(map[string]*ruleState),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	e.transitions = obs.NewCounter("jets_alerts_transitions_total",
		"alert rule firing/resolving transitions")
	cfg.Registry.Register(e.transitions)
	if err := e.Add(rules...); err != nil {
		return nil, err
	}
	return e, nil
}

// Add registers rules. Must be called before Start.
func (e *Engine) Add(rules ...Rule) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return fmt.Errorf("alerts: Add after Start")
	}
	for _, r := range rules {
		r := r
		if r.Window <= 0 {
			r.Window = 30 * time.Second
		}
		if err := r.validate(); err != nil {
			return err
		}
		if _, dup := e.byName[r.Name]; dup {
			return fmt.Errorf("alerts: duplicate rule name %q", r.Name)
		}
		st := &ruleState{r: r}
		e.rules = append(e.rules, st)
		e.byName[r.Name] = st
		if e.cfg.Registry != nil {
			e.cfg.Registry.GaugeFuncL("jets_alert_firing",
				fmt.Sprintf("rule=%q,severity=%q", r.Name, r.Severity),
				"1 while the alert rule is firing", func() float64 {
					if st.firing.Load() {
						return 1
					}
					return 0
				})
		}
	}
	return nil
}

// Rules reports the number of registered rules.
func (e *Engine) Rules() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.rules)
}

// Start begins ticker evaluation. Close stops it.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()
	go func() {
		defer close(e.done)
		t := time.NewTicker(e.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case now := <-t.C:
				e.Eval(now)
			}
		}
	}()
}

// Close stops the evaluation goroutine. Idempotent only via sync guard at
// caller; call once.
func (e *Engine) Close() {
	e.mu.Lock()
	started := e.started
	e.started = false
	e.mu.Unlock()
	close(e.stop)
	if started {
		<-e.done
	}
}

// Eval runs one evaluation pass at the given time. Start's ticker calls it
// once per interval; tests (and callers that want deterministic stepping)
// may drive it directly instead of calling Start.
func (e *Engine) Eval(now time.Time) {
	var fired []Alert
	e.mu.Lock()
	crit := int64(0)
	for _, st := range e.rules {
		value := st.eval(now)
		violating := st.r.Op == Above && value > st.r.Threshold ||
			st.r.Op == Below && value < st.r.Threshold
		if violating {
			st.goodSince = time.Time{}
			if st.badSince.IsZero() {
				st.badSince = now
			}
			if !st.firing.Load() && now.Sub(st.badSince) >= st.r.For {
				st.firing.Store(true)
				fired = append(fired, e.alertFor(st, true, value, now))
			}
		} else {
			st.badSince = time.Time{}
			if st.goodSince.IsZero() {
				st.goodSince = now
			}
			if st.firing.Load() && now.Sub(st.goodSince) >= st.r.Hold {
				st.firing.Store(false)
				fired = append(fired, e.alertFor(st, false, value, now))
			}
		}
		if st.r.Severity == Critical && st.firing.Load() {
			crit++
		}
	}
	e.critical.Store(crit)
	e.mu.Unlock()
	// Hooks run outside the lock so they can scrape engine state freely.
	for _, a := range fired {
		e.transitions.Inc()
		e.cfg.OnAlert(a)
	}
}

func (e *Engine) alertFor(st *ruleState, firing bool, value float64, now time.Time) Alert {
	return Alert{
		Rule: st.r.Name, Severity: st.r.Severity, Firing: firing,
		Value: value, Threshold: st.r.Threshold, Op: st.r.Op, At: now,
	}
}

// eval computes the rule's current value. Engine lock held.
func (st *ruleState) eval(now time.Time) float64 {
	r := &st.r
	switch {
	case r.Gauge != nil:
		return r.Gauge()
	case r.Counter != nil:
		return st.evalRate(now, r.Counter())
	default:
		return st.evalQuantile(now)
	}
}

// evalRate maintains the sliding sample window and returns the per-second
// increase across it.
func (st *ruleState) evalRate(now time.Time, v int64) float64 {
	if n := len(st.samples); n > 0 && v < st.samples[n-1].v {
		// Counter reset (source restarted): restart the window.
		st.samples = st.samples[:0]
	}
	st.samples = append(st.samples, sample{t: now, v: v})
	// Keep one sample at or beyond the window boundary so the rate always
	// spans (up to) the full window.
	cut := now.Add(-st.r.Window)
	for len(st.samples) > 1 && !st.samples[1].t.After(cut) {
		st.samples = st.samples[1:]
	}
	first, last := st.samples[0], st.samples[len(st.samples)-1]
	dt := last.t.Sub(first.t).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(last.v-first.v) / dt
}

// evalQuantile maintains the sliding bucket-snapshot window and returns the
// rule quantile, in seconds, of the observations inside it. The first
// evaluation only records the baseline (returns 0), so samples from before
// the engine started cannot fire a rule.
func (st *ruleState) evalQuantile(now time.Time) float64 {
	cur := st.r.Hist.Buckets(nil)
	cut := now.Add(-st.r.Window)
	for len(st.snaps) > 1 && !st.snaps[1].t.After(cut) {
		st.snaps = st.snaps[1:]
	}
	var v float64
	if len(st.snaps) > 0 {
		v = st.r.Hist.QuantileOfDelta(st.snaps[0].counts, cur, st.r.Q).Seconds()
	}
	st.snaps = append(st.snaps, hsnap{t: now, counts: cur})
	return v
}

// Firing returns the names of currently firing rules (all severities),
// sorted by registration order.
func (e *Engine) Firing() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, st := range e.rules {
		if st.firing.Load() {
			out = append(out, st.r.Name)
		}
	}
	return out
}

// IsFiring reports whether the named rule is currently firing.
func (e *Engine) IsFiring(name string) bool {
	e.mu.Lock()
	st := e.byName[name]
	e.mu.Unlock()
	return st != nil && st.firing.Load()
}

// Health implements the /healthz contract: nil while no critical rule
// fires, an error naming the firing critical rules otherwise. Wire it with
// obs.Server.SetHealth.
func (e *Engine) Health() error {
	if e.critical.Load() == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var names []string
	for _, st := range e.rules {
		if st.r.Severity == Critical && st.firing.Load() {
			names = append(names, st.r.Name)
		}
	}
	if len(names) == 0 {
		return nil
	}
	return fmt.Errorf("critical alert firing: %v", names)
}

package faults

import (
	"context"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"jets/internal/alerts"
	"jets/internal/core"
	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/obs"
)

// TestAlertsFireDuringChurnAndClear runs the §6.1.5 churn harness under the
// self-monitoring engine: the curated dispatcher rules must fire while
// workers are being killed mid-batch and resolve once the churn stops and
// the sliding windows drain. The engine is driven with synthetic times (not
// Start's ticker) so the default 30s windows evaluate deterministically; the
// value sources are the live dispatcher instruments.
func TestAlertsFireDuringChurnAndClear(t *testing.T) {
	const nWorkers = 4
	runner := hydra.NewFuncRunner()
	block := make(chan struct{})
	runner.Register("linger", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		select {
		case <-block:
			return 0
		case <-ctx.Done():
			return 1
		}
	})
	eng, err := core.NewEngine(core.Options{
		LocalWorkers:     nWorkers,
		Runner:           runner,
		HeartbeatTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d := eng.Dispatcher()

	rules := alerts.ForDispatcher(d)
	for i := range rules {
		// The curated queue-wait threshold is operator-scale (5s); scale it
		// to the ~100ms waits this test can afford while keeping the rule's
		// source, quantile, window, and hysteresis intact.
		if rules[i].Name == "queue-wait-p99" {
			rules[i].Threshold = 0.05
		}
	}
	reg := obs.NewRegistry()
	ae, err := alerts.NewEngine(alerts.Config{Registry: reg, OnAlert: func(alerts.Alert) {}}, rules...)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(100000, 0)
	ae.Eval(t0) // baseline: pre-churn state cannot fire anything

	// A batch wide enough that jobs queue behind the four 1-core workers.
	var handles []*dispatch.Handle
	for i := 0; i < 30; i++ {
		h, err := eng.Submit(dispatch.Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("l%d", i), NProcs: 1, Cmd: "linger"},
			Type: dispatch.Sequential,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.RunningJobs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Inject the churn: two pilot jobs die mid-batch.
	inj := NewInjector(eng.Workers(), time.Hour, 7)
	inj.KillOne()
	inj.KillOne()
	deadline = time.Now().Add(5 * time.Second)
	for d.Stats().WorkersLost < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("worker loss not detected: stats %+v", d.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	// Let queue waits accrue past the scaled p99 threshold, then release
	// the batch and let the surviving workers drain it.
	time.Sleep(100 * time.Millisecond)
	close(block)
	for _, h := range handles {
		h.Wait() // jobs on killed workers fail (no retries); the rest finish
	}

	// During churn: worker loss and queue waits are inside the windows.
	ae.Eval(t0.Add(time.Second))
	if !ae.IsFiring("worker-loss-rate") {
		t.Fatalf("worker-loss-rate must fire during churn; firing=%v", ae.Firing())
	}
	if !ae.IsFiring("queue-wait-p99") {
		t.Fatalf("queue-wait-p99 must fire during churn; firing=%v", ae.Firing())
	}
	if err := ae.Health(); err == nil || !strings.Contains(err.Error(), "worker-loss-rate") {
		t.Fatalf("Health() = %v, want critical worker-loss-rate failure", err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `jets_alert_firing{rule="worker-loss-rate",severity="critical"} 1`) {
		t.Fatalf("firing gauge must export during churn:\n%s", b.String())
	}

	// Recovery: the churn stopped and the batch drained. Once the loss
	// counter increment and the slow seat-wait samples age out of the 30s
	// windows, one clean evaluation starts Hold and a second past Hold
	// resolves both rules.
	ae.Eval(t0.Add(40 * time.Second)) // windows drained: condition clean, Hold starts
	ae.Eval(t0.Add(51 * time.Second)) // Hold (10s) elapsed: resolved
	if ae.IsFiring("worker-loss-rate") || ae.IsFiring("queue-wait-p99") {
		t.Fatalf("rules must clear after recovery; firing=%v", ae.Firing())
	}
	if err := ae.Health(); err != nil {
		t.Fatalf("Health() after recovery = %v, want nil", err)
	}
}

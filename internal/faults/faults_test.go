package faults

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"jets/internal/core"
	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/metrics"
)

func TestKillOneDrainsAll(t *testing.T) {
	runner := hydra.NewFuncRunner()
	eng, err := core.NewEngine(core.Options{LocalWorkers: 5, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	inj := NewInjector(eng.Workers(), time.Hour, 3)
	for i := 5; i > 0; i-- {
		if inj.Alive() != i {
			t.Fatalf("alive=%d want %d", inj.Alive(), i)
		}
		if !inj.KillOne() {
			t.Fatal("KillOne false with workers remaining")
		}
	}
	if inj.KillOne() {
		t.Fatal("KillOne true with none remaining")
	}
	if inj.Killed() != 5 {
		t.Fatalf("killed=%d", inj.Killed())
	}
}

// TestFaultyUtilization reproduces the §6.1.5 scenario at reduced scale:
// workers are killed one at a time while a large sequential batch runs; the
// dispatcher must keep the surviving workers busy and the batch of jobs
// completed on live workers must track the shrinking allocation.
func TestFaultyUtilization(t *testing.T) {
	const nWorkers = 8
	runner := hydra.NewFuncRunner()
	runner.Register("tick", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		select {
		case <-time.After(10 * time.Millisecond):
			return 0
		case <-ctx.Done():
			return 1
		}
	})
	eng, err := core.NewEngine(core.Options{
		LocalWorkers:     nWorkers,
		Runner:           runner,
		HeartbeatTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Enough work to outlast the faults.
	var handles []*dispatch.Handle
	for i := 0; i < 400; i++ {
		h, err := eng.Submit(dispatch.Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("t%d", i), NProcs: 1, Cmd: "tick"},
			Type: dispatch.Sequential,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}

	inj := NewInjector(eng.Workers(), 60*time.Millisecond, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go inj.Run(ctx)

	// Wait until all workers are dead.
	for inj.Alive() > 0 {
		select {
		case <-ctx.Done():
			t.Fatal("injector did not finish")
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
	// With all workers dead, any job still queued will never run; wait only
	// for in-flight work to settle, then count terminal handles.
	settle := time.Now().Add(10 * time.Second)
	for eng.Dispatcher().RunningJobs() > 0 && time.Now().Before(settle) {
		time.Sleep(10 * time.Millisecond)
	}
	completed, failed := 0, 0
	for _, h := range handles {
		res, done := h.TryResult()
		if !done {
			continue // legitimately stranded in the queue
		}
		if res.Failed {
			failed++
		} else {
			completed++
		}
	}
	if completed == 0 {
		t.Fatal("no jobs completed under fault injection")
	}
	st := eng.Dispatcher().Stats()
	if st.WorkersLost != nWorkers {
		t.Fatalf("workers lost=%d want %d", st.WorkersLost, nWorkers)
	}
	// Fig. 10's claim: while workers remained, completed jobs kept flowing —
	// the records' load level should have been positive until near the end.
	recs := eng.Dispatcher().Records()
	if len(recs) == 0 {
		t.Fatal("no job records")
	}
	load := metrics.LoadLevel(recs)
	if load.Max() == 0 {
		t.Fatal("load level never positive")
	}
	t.Logf("completed=%d failed=%d records=%d maxload=%v", completed, failed, len(recs), load.Max())
}

func TestHistoryRecorded(t *testing.T) {
	runner := hydra.NewFuncRunner()
	eng, err := core.NewEngine(core.Options{LocalWorkers: 3, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	inj := NewInjector(eng.Workers(), 20*time.Millisecond, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	inj.Run(ctx) // runs to exhaustion (3 kills)
	h := inj.History()
	if len(h) != 3 {
		t.Fatalf("history=%v", h)
	}
	for i := 1; i < len(h); i++ {
		if h[i] < h[i-1] {
			t.Fatalf("history not monotone: %v", h)
		}
	}
}

// Package faults implements the fault-injection harness of §6.1.5: a script
// run on the submit site "that terminated randomly selected pilot jobs, one
// at a time, at regular 10-s intervals", so that the dispatcher's handling
// of dead workers can be observed as the allocation shrinks to zero.
package faults

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"jets/internal/worker"
)

// Injector kills one random live worker per interval.
type Injector struct {
	Interval time.Duration
	rng      *rand.Rand

	mu      sync.Mutex
	alive   []*worker.Worker
	killed  int
	history []time.Duration // offsets from Start
	start   time.Time
}

// NewInjector creates an injector over the given workers.
func NewInjector(workers []*worker.Worker, interval time.Duration, seed int64) *Injector {
	return &Injector{
		Interval: interval,
		rng:      rand.New(rand.NewSource(seed)),
		alive:    append([]*worker.Worker(nil), workers...),
	}
}

// Run kills one worker per interval until none remain or ctx ends. It
// blocks; run it in a goroutine alongside the workload.
func (inj *Injector) Run(ctx context.Context) {
	inj.mu.Lock()
	inj.start = time.Now()
	inj.mu.Unlock()
	t := time.NewTicker(inj.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if !inj.KillOne() {
				return
			}
		}
	}
}

// KillOne kills one random live worker now, reporting false when none
// remain.
func (inj *Injector) KillOne() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if len(inj.alive) == 0 {
		return false
	}
	i := inj.rng.Intn(len(inj.alive))
	w := inj.alive[i]
	inj.alive = append(inj.alive[:i], inj.alive[i+1:]...)
	w.Kill()
	inj.killed++
	if !inj.start.IsZero() {
		inj.history = append(inj.history, time.Since(inj.start))
	}
	return true
}

// Killed reports how many workers have been killed.
func (inj *Injector) Killed() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.killed
}

// Alive reports how many workers remain.
func (inj *Injector) Alive() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return len(inj.alive)
}

// History returns kill times as offsets from Run start (empty for manual
// KillOne use before Run).
func (inj *Injector) History() []time.Duration {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]time.Duration(nil), inj.history...)
}

package router

// Router-tier tests (ISSUE 9): consistent-hash placement, the federation-
// global duplicate check, steal rebalancing between instances, the
// 64-worker × 4-dispatcher churn test, and in-process routing-table
// recovery. The federated kill -9 test with real processes lives at the
// repository root (federation_recovery_test.go).

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/journal"
	"jets/internal/obs"
	"jets/internal/worker"
)

// fedCluster is N in-process dispatcher instances, each with its own worker
// pool sharing one runner, behind one Router — the in-process federation the
// core engine assembles, minus core, so tests can reach into members.
type fedCluster struct {
	r       *Router
	insts   []*dispatch.Dispatcher
	addrs   []string
	runner  *hydra.FuncRunner
	workers []*worker.Worker
	wg      sync.WaitGroup
	cancel  context.CancelFunc
}

// startFed brings up nInst instances with workersPer workers each. rcfg is
// the router config skeleton (Local is filled in here); dcfg the per-
// instance dispatcher config skeleton (Addr/Instance filled in here).
func startFed(t *testing.T, nInst, workersPer int, rcfg Config, dcfg dispatch.Config) *fedCluster {
	t.Helper()
	fc := &fedCluster{runner: hydra.NewFuncRunner()}
	for i := 0; i < nInst; i++ {
		c := dcfg
		c.Instance = fmt.Sprintf("inst%d", i)
		d := dispatch.New(c)
		addr, err := d.Start()
		if err != nil {
			t.Fatal(err)
		}
		fc.insts = append(fc.insts, d)
		fc.addrs = append(fc.addrs, addr)
	}
	rcfg.Local = fc.insts
	r, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	fc.r = r
	ctx, cancel := context.WithCancel(context.Background())
	fc.cancel = cancel
	for i := 0; i < nInst*workersPer; i++ {
		home := i % nInst
		w, err := worker.New(worker.Config{
			ID:                fmt.Sprintf("w%d", i),
			Host:              fmt.Sprintf("node%d", i),
			Cores:             1,
			Coord:             []int{i % 8, (i / 8) % 8, i / 64},
			DispatcherAddr:    fc.addrs[home],
			Runner:            fc.runner,
			HeartbeatInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		fc.workers = append(fc.workers, w)
		fc.wg.Add(1)
		go func(w *worker.Worker) {
			defer fc.wg.Done()
			w.Run(ctx)
		}(w)
	}
	t.Cleanup(func() {
		fc.r.Close()
		for _, d := range fc.insts {
			d.Close()
		}
		cancel()
		fc.wg.Wait()
	})
	deadline := time.Now().Add(10 * time.Second)
	for _, d := range fc.insts {
		for d.IdleWorkers() < workersPer {
			if time.Now().After(deadline) {
				t.Fatalf("instance %s: %d/%d workers idle", d.Instance(), d.IdleWorkers(), workersPer)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return fc
}

func seqJob(id string) dispatch.Job {
	return dispatch.Job{
		Spec: hydra.JobSpec{JobID: id, NProcs: 1, Cmd: "app", Args: []string{id}},
		Type: dispatch.Sequential,
	}
}

func TestRingDeterministicAndCovering(t *testing.T) {
	names := []string{"inst0", "inst1", "inst2", "inst3"}
	r1, r2 := newRing(names), newRing(names)
	counts := make([]int, len(names))
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("job-%d", i)
		a, b := r1.owner(key), r2.owner(key)
		if a != b {
			t.Fatalf("owner(%q) nondeterministic: %d vs %d", key, a, b)
		}
		counts[a]++
	}
	// Consistent hashing with 64 vnodes/member is not uniform, but every
	// member must carry a real share of the keyspace.
	for i, c := range counts {
		if c < 500 { // 5% of 10k; expected ~2500
			t.Errorf("member %d owns only %d/10000 keys: %v", i, c, counts)
		}
	}
	// Single member owns everything.
	solo := newRing([]string{"only"})
	for i := 0; i < 100; i++ {
		if solo.owner(fmt.Sprintf("k%d", i)) != 0 {
			t.Fatal("single-member ring routed off-ring")
		}
	}
}

func TestRouterRoutesAndCompletesAcrossInstances(t *testing.T) {
	fc := startFed(t, 2, 2, Config{}, dispatch.Config{})
	var mu sync.Mutex
	ran := map[string]bool{}
	fc.runner.Register("app", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		mu.Lock()
		ran[args[0]] = true
		mu.Unlock()
		return 0
	})
	var handles []*dispatch.Handle
	for i := 0; i < 40; i++ {
		h, err := fc.r.Submit(seqJob(fmt.Sprintf("route-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		if res := h.Wait(); res.Failed {
			t.Fatalf("job %s failed: %s", res.JobID, res.Err)
		}
	}
	mu.Lock()
	n := len(ran)
	mu.Unlock()
	if n != 40 {
		t.Fatalf("ran %d/40", n)
	}
	// Hash placement must have used both instances for 40 distinct keys.
	for _, d := range fc.insts {
		if d.Stats().JobsCompleted == 0 {
			t.Fatalf("instance %s completed nothing; routing is not partitioning", d.Instance())
		}
	}
	if fc.r.LiveJobs() != 0 {
		t.Fatalf("routing table not empty: %d", fc.r.LiveJobs())
	}
}

func TestRouterSubmitBatch(t *testing.T) {
	fc := startFed(t, 2, 2, Config{}, dispatch.Config{})
	fc.runner.Register("app", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	jobs := make([]dispatch.Job, 30)
	for i := range jobs {
		jobs[i] = seqJob(fmt.Sprintf("batch-%d", i))
	}
	handles, err := fc.r.SubmitBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range handles {
		if res := h.Wait(); res.Failed {
			t.Fatalf("job %s failed: %s", res.JobID, res.Err)
		}
	}
	// A batch containing a duplicate is refused whole, and the rollback
	// leaves every non-duplicate ID submittable again.
	block := make(chan struct{})
	fc.runner.Register("blocker", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		<-block
		return 0
	})
	defer close(block)
	held, err := fc.r.Submit(dispatch.Job{
		Spec: hydra.JobSpec{JobID: "held", NProcs: 1, Cmd: "blocker"},
		Type: dispatch.Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = held
	if _, err := fc.r.SubmitBatch([]dispatch.Job{seqJob("fresh-a"), seqJob("held"), seqJob("fresh-b")}); err == nil {
		t.Fatal("batch with duplicate accepted")
	}
	hs, err := fc.r.SubmitBatch([]dispatch.Job{seqJob("fresh-a"), seqJob("fresh-b")})
	if err != nil {
		t.Fatalf("rollback left IDs reserved: %v", err)
	}
	for _, h := range hs {
		if res := h.Wait(); res.Failed {
			t.Fatalf("job %s failed: %s", res.JobID, res.Err)
		}
	}
}

// TestDuplicateIDAcrossInstancesRejected is the satellite-4 regression: the
// per-instance reservation map (PR 7) cannot see an ID that is live on a
// *different* instance, so the router's table must perform the federation-
// global check. pickOverride forces the two submissions toward different
// members — exactly the case where per-instance reservation alone accepts
// the duplicate and two handles race one completion.
func TestDuplicateIDAcrossInstancesRejected(t *testing.T) {
	fc := startFed(t, 2, 1, Config{StealInterval: -1}, dispatch.Config{})
	block := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(block) }) }
	fc.runner.Register("blocker", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		<-block
		return 0
	})
	defer unblock()

	target := 0
	fc.r.pickOverride = func(string) (int, bool) { return target, true }
	h, err := fc.r.Submit(dispatch.Job{
		Spec: hydra.JobSpec{JobID: "dup-x", NProcs: 1, Cmd: "blocker"},
		Type: dispatch.Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The instance-level view: instance 1 has never heard of dup-x, so its
	// own reservation would happily accept it — the gap this fix closes.
	if _, ok := fc.insts[1].HandleOf("dup-x"); ok {
		t.Fatal("test setup broken: dup-x should live only on instance 0")
	}

	target = 1 // hash the duplicate toward the other member
	if _, err := fc.r.Submit(dispatch.Job{
		Spec: hydra.JobSpec{JobID: "dup-x", NProcs: 1, Cmd: "blocker"},
		Type: dispatch.Sequential,
	}); err == nil {
		t.Fatal("duplicate job id accepted across instances")
	}

	unblock()
	if res := h.Wait(); res.Failed {
		t.Fatalf("original job failed: %s", res.Err)
	}
	// Once the original completed, the ID is free again federation-wide.
	fc.runner.Register("quick", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	h2, err := fc.r.Submit(dispatch.Job{
		Spec: hydra.JobSpec{JobID: "dup-x", NProcs: 1, Cmd: "quick"},
		Type: dispatch.Sequential,
	})
	if err != nil {
		t.Fatalf("completed ID still reserved: %v", err)
	}
	if res := h2.Wait(); res.Failed {
		t.Fatalf("resubmitted job failed: %s", res.Err)
	}
}

// TestDuplicateIDOfSpilledJobRejected: the federation-global duplicate check
// must also cover jobs whose specs have been spilled to an instance's cold
// queue tail — a cold job is as live as a hot one, on either side of the
// router (instance-level reservation and routing-table check).
func TestDuplicateIDOfSpilledJobRejected(t *testing.T) {
	fc := startFed(t, 2, 0, Config{StealInterval: -1},
		dispatch.Config{HotQueueJobs: 1, Shards: 1})
	target := 0
	fc.r.pickOverride = func(string) (int, bool) { return target, true }
	for i := 0; i < 4; i++ {
		if _, err := fc.r.Submit(dispatch.Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("fill-%d", i), NProcs: 1, Cmd: "noop"},
			Type: dispatch.Sequential,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fc.r.Submit(dispatch.Job{
		Spec: hydra.JobSpec{JobID: "cold-dup", NProcs: 1, Cmd: "noop"},
		Type: dispatch.Sequential,
	}); err != nil {
		t.Fatal(err)
	}
	if fc.insts[0].SpilledJobs() == 0 {
		t.Fatal("test setup broken: nothing spilled on instance 0")
	}
	// Same instance: the per-instance reservation must see the cold job.
	if _, err := fc.r.Submit(dispatch.Job{
		Spec: hydra.JobSpec{JobID: "cold-dup", NProcs: 1, Cmd: "noop"},
		Type: dispatch.Sequential,
	}); err == nil {
		t.Fatal("duplicate of a spilled job accepted on the same instance")
	}
	// Other instance: only the router's federation-global table can see it.
	target = 1
	if _, err := fc.r.Submit(dispatch.Job{
		Spec: hydra.JobSpec{JobID: "cold-dup", NProcs: 1, Cmd: "noop"},
		Type: dispatch.Sequential,
	}); err == nil {
		t.Fatal("duplicate of a spilled job accepted across instances")
	}
}

// TestStealRebalancesBacklog: everything is forced onto instance 0 (one
// worker, occupied), instance 1 (four workers) sits idle. The steal pass
// must migrate queued jobs over; all complete through their original
// handles.
func TestStealRebalancesBacklog(t *testing.T) {
	fc := startFed(t, 2, 0, Config{StealInterval: 5 * time.Millisecond, StealBatch: 8}, dispatch.Config{})
	// Asymmetric pools: one worker on inst0, four on inst1.
	addWorkers := func(inst, n int, idBase string) {
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		for i := 0; i < n; i++ {
			w, err := worker.New(worker.Config{
				ID: fmt.Sprintf("%s%d", idBase, i), Cores: 1,
				DispatcherAddr:    fc.addrs[inst],
				Runner:            fc.runner,
				HeartbeatInterval: 20 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			fc.wg.Add(1)
			go func(w *worker.Worker) {
				defer fc.wg.Done()
				w.Run(ctx)
			}(w)
		}
		deadline := time.Now().Add(10 * time.Second)
		for fc.insts[inst].IdleWorkers() < n {
			if time.Now().After(deadline) {
				t.Fatalf("inst%d workers idle %d/%d", inst, fc.insts[inst].IdleWorkers(), n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	addWorkers(0, 1, "a")
	addWorkers(1, 4, "b")

	release := make(chan struct{})
	fc.runner.Register("hold", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return 0
	})
	fc.runner.Register("app", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		time.Sleep(time.Millisecond)
		return 0
	})

	fc.r.pickOverride = func(string) (int, bool) { return 0, true }
	hold, err := fc.r.Submit(dispatch.Job{
		Spec: hydra.JobSpec{JobID: "hold", NProcs: 1, Cmd: "hold"},
		Type: dispatch.Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fc.insts[0].RunningJobs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hold job never started")
		}
		time.Sleep(time.Millisecond)
	}
	var handles []*dispatch.Handle
	for i := 0; i < 20; i++ {
		h, err := fc.r.Submit(seqJob(fmt.Sprintf("steal-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// Stop forcing placements so the steal pass (and any re-place) is free.
	fc.r.pickOverride = nil

	for _, h := range handles {
		if res := h.Wait(); res.Failed {
			t.Fatalf("job %s failed: %s", res.JobID, res.Err)
		}
	}
	close(release)
	if res := hold.Wait(); res.Failed {
		t.Fatalf("hold failed: %s", res.Err)
	}
	if got := fc.r.stats.steals.Load(); got == 0 {
		t.Fatal("no steals recorded; the idle instance never rebalanced the backlog")
	}
	if done := fc.insts[1].Stats().JobsCompleted; done == 0 {
		t.Fatal("idle instance completed nothing despite a 20-job backlog next door")
	}
}

// TestFederatedChurn64x4 is the tentpole's churn target: 4 dispatcher
// instances × 16 workers each, saturating waves of jobs, a quarter of the
// pool killed mid-flight, everything completing through router handles.
// Run under -race in CI's tier-1 pass. The shared registry must hold every
// instance's series (the satellite-1 collision surfaced here first).
func TestFederatedChurn64x4(t *testing.T) {
	if testing.Short() {
		t.Skip("churn test is heavyweight")
	}
	const nInst, perInst = 4, 16
	reg := obs.NewRegistry()
	fc := startFed(t, nInst, perInst,
		Config{Obs: reg, StealInterval: 10 * time.Millisecond},
		dispatch.Config{Obs: reg, MaxJobRetries: 5, HeartbeatTimeout: 30 * time.Second})
	fc.runner.Register("app", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		time.Sleep(time.Millisecond)
		return 0
	})

	var handles []*dispatch.Handle
	submitWave := func(wave, n int) {
		for i := 0; i < n; i++ {
			h, err := fc.r.Submit(seqJob(fmt.Sprintf("churn-w%d-%d", wave, i)))
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
	}
	submitWave(0, 60)
	// Kill a quarter of the pool, spread across instances, while the first
	// wave is in flight; retries plus rebalancing must absorb it.
	for i := 0; i < nInst*perInst; i += 4 {
		fc.workers[i].Kill()
	}
	submitWave(1, 60)
	submitWave(2, 60)
	for _, h := range handles {
		if res := h.Wait(); res.Failed {
			t.Fatalf("job %s failed after churn: %s", res.JobID, res.Err)
		}
	}
	if fc.r.LiveJobs() != 0 {
		t.Fatalf("routing table not drained: %d", fc.r.LiveJobs())
	}
	// Every instance's instrumentation survived the shared registry.
	for i := 0; i < nInst; i++ {
		series := fmt.Sprintf("jets_jobs_completed_total{instance=%q}", fmt.Sprintf("inst%d", i))
		if reg.Lookup(series) == nil {
			t.Errorf("series %s missing from the shared registry", series)
		}
	}
	if reg.Lookup("jets_router_jobs_routed_total") == nil {
		t.Error("router series missing from the shared registry")
	}
}

// TestRouterRecoversRoutingTableFromJournal: a journaled router is closed
// with jobs still live (no workers); a second router over the same WAL and
// fresh instances recovers them, and they complete once workers arrive.
func TestRouterRecoversRoutingTableFromJournal(t *testing.T) {
	dir := t.TempDir()
	openWAL := func() journal.Journal {
		w, err := journal.OpenWAL(journal.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	// Life 1: no workers, jobs stay queued; Close strands the handles
	// without journaling completions.
	d1 := dispatch.New(dispatch.Config{Instance: "inst0"})
	r1, err := New(Config{Local: []*dispatch.Dispatcher{d1}, Journal: openWAL()})
	if err != nil {
		t.Fatal(err)
	}
	var firstHandles []*dispatch.Handle
	for i := 0; i < 6; i++ {
		h, err := r1.Submit(seqJob(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		firstHandles = append(firstHandles, h)
	}
	r1.Close()
	d1.Close()
	for _, h := range firstHandles {
		if res := h.Wait(); !res.Failed {
			t.Fatal("stranded handle did not fail on close")
		}
	}

	// Life 2: same WAL, a fresh instance with workers this time. The app is
	// registered before any worker starts — recovery resubmits at New, and
	// the jobs run the moment workers register.
	runner := hydra.NewFuncRunner()
	runner.Register("app", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	d2 := dispatch.New(dispatch.Config{Instance: "inst0"})
	addr, err := d2.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	r2, err := New(Config{Local: []*dispatch.Dispatcher{d2}, Journal: openWAL()})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()
	for i := 0; i < 2; i++ {
		w, err := worker.New(worker.Config{
			ID: fmt.Sprintf("w%d", i), Cores: 1,
			DispatcherAddr:    addr,
			Runner:            runner,
			HeartbeatInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w *worker.Worker) {
			defer wg.Done()
			w.Run(ctx)
		}(w)
	}
	if err := r2.RecoveryError(); err != nil {
		t.Fatalf("recovery error: %v", err)
	}
	rec := r2.RecoveredJobs()
	if len(rec) != 6 {
		t.Fatalf("recovered %d jobs, want 6", len(rec))
	}
	for _, h := range rec {
		select {
		case <-h.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("recovered job %s never completed", h.JobID())
		}
		if res, ok := h.TryResult(); !ok || res.Failed {
			t.Fatalf("recovered job %s failed: %+v", h.JobID(), res)
		}
	}
	if r2.LiveJobs() != 0 {
		t.Fatalf("routing table not drained after recovery: %d", r2.LiveJobs())
	}
}

// TestRemotePeerFederation drives the wire path the in-process tests skip:
// the router attaches to dispatcher instances over TCP (KindPeerAttach on
// the worker listener), places jobs via PeerSubmit, and receives JobDone
// frames back.
func TestRemotePeerFederation(t *testing.T) {
	runner := hydra.NewFuncRunner()
	runner.Register("app", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	var insts []*dispatch.Dispatcher
	var addrs []string
	for i := 0; i < 2; i++ {
		d := dispatch.New(dispatch.Config{Instance: fmt.Sprintf("remote%d", i)})
		addr, err := d.Start()
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		insts = append(insts, d)
		addrs = append(addrs, addr)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()
	for i := 0; i < 4; i++ {
		w, err := worker.New(worker.Config{
			ID: fmt.Sprintf("rw%d", i), Cores: 1,
			DispatcherAddr:    addrs[i%2],
			Runner:            runner,
			HeartbeatInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w *worker.Worker) {
			defer wg.Done()
			w.Run(ctx)
		}(w)
	}
	deadline := time.Now().Add(10 * time.Second)
	for insts[0].IdleWorkers() < 2 || insts[1].IdleWorkers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never registered")
		}
		time.Sleep(time.Millisecond)
	}

	r, err := New(Config{Peers: addrs, LoadEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Peer attach and the first load report are asynchronous; wait until
	// every link is up AND reporting idle workers, or early placements all
	// fall back to whichever member reported first.
	deadline = time.Now().Add(10 * time.Second)
	for {
		ready := 0
		for _, m := range r.members {
			if lr, ok := m.peer.sample(); ok && lr.Idle > 0 {
				ready++
			}
		}
		if ready == len(r.members) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d peer links reporting idle workers", ready, len(r.members))
		}
		time.Sleep(time.Millisecond)
	}
	var handles []*dispatch.Handle
	for i := 0; i < 20; i++ {
		h, err := r.Submit(seqJob(fmt.Sprintf("wire-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		select {
		case <-h.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("remote job %s never completed", h.JobID())
		}
		if res, ok := h.TryResult(); !ok || res.Failed {
			t.Fatalf("remote job failed: %+v", res)
		}
	}
	if insts[0].Stats().JobsCompleted == 0 || insts[1].Stats().JobsCompleted == 0 {
		t.Fatalf("wire federation did not partition: %d / %d",
			insts[0].Stats().JobsCompleted, insts[1].Stats().JobsCompleted)
	}
}

// TestRemotePeerOutputRelay covers the output path the first remote-peer
// drive missed: a job placed on an out-of-process member runs there, but the
// client sits behind the router — its stdout must relay back over the peer
// link (KindOutput frames) into Config.OnOutput, not strand on the executing
// instance.
func TestRemotePeerOutputRelay(t *testing.T) {
	runner := hydra.NewFuncRunner()
	runner.Register("say", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		fmt.Fprintf(stdout, "hello-%s", args[0])
		return 0
	})
	d := dispatch.New(dispatch.Config{Instance: "remote-out"})
	addr, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()
	w, err := worker.New(worker.Config{
		ID: "row0", Cores: 1,
		DispatcherAddr:    addr,
		Runner:            runner,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Run(ctx)
	}()

	var mu sync.Mutex
	got := map[string]string{}
	r, err := New(Config{
		Peers:     []string{addr},
		LoadEvery: 10 * time.Millisecond,
		OnOutput: func(taskID, stream string, data []byte) {
			mu.Lock()
			got[taskID] += string(data)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if lr, ok := r.members[0].peer.sample(); ok && lr.Idle > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peer link never reported an idle worker")
		}
		time.Sleep(time.Millisecond)
	}

	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("out-%d", i)
		job := dispatch.Job{Type: dispatch.Sequential}
		job.Spec.JobID = id
		job.Spec.NProcs = 1
		job.Spec.Cmd = "say"
		job.Spec.Args = []string{id}
		h, err := r.Submit(job)
		if err != nil {
			t.Fatal(err)
		}
		// Output frames precede the task result on the worker link, the
		// relay preserves enqueue order, and the router's recv loop fires
		// OnOutput before resolving the handle — so by Wait the chunks for
		// this job have been delivered.
		if res := h.Wait(); res.Failed {
			t.Fatalf("job %s failed: %+v", id, res)
		}
		mu.Lock()
		out := got[id+"/seq"]
		mu.Unlock()
		if want := "hello-" + id; out != want {
			t.Fatalf("job %s output = %q, want %q", id, out, want)
		}
	}
}

package router

import (
	"errors"
	"sync"
	"time"

	"jets/internal/dispatch"
	"jets/internal/proto"
)

// errPeerDown marks a placement attempt against a disconnected peer; the
// router rotates the job to another member rather than failing it.
var errPeerDown = errors.New("router: peer link down")

// peerLink maintains the router's connection to one out-of-process
// dispatcher instance. It dials, attaches with the router's outstanding-job
// set for that member, reconciles (re-placing jobs the instance no longer
// knows — its journal recovery keeps the rest), and then relays frames until
// the connection drops, at which point it redials with backoff. The attach
// handshake makes restarts transparent: a kill -9'd instance comes back,
// replays its own WAL, and the re-attach re-subscribes the router to every
// recovered job while resubmitting the ones that missed the journal's group
// commit — at-least-once execution, exactly-once completion per router
// handle.
type peerLink struct {
	r    *Router
	idx  int
	addr string

	mu        sync.Mutex
	codec     *proto.Codec
	connected bool
	load      proto.LoadReport
	loadAt    time.Time

	stealCh chan []dispatch.StolenJob

	quit chan struct{}
}

func newPeerLink(r *Router, idx int, addr string) *peerLink {
	p := &peerLink{
		r:       r,
		idx:     idx,
		addr:    addr,
		stealCh: make(chan []dispatch.StolenJob, 1),
		quit:    make(chan struct{}),
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		p.run()
	}()
	return p
}

func (p *peerLink) stop() {
	select {
	case <-p.quit:
	default:
		close(p.quit)
	}
	p.mu.Lock()
	if p.codec != nil {
		p.codec.Close()
	}
	p.mu.Unlock()
}

// send relays one envelope if the link is up. A send error drops the
// connection; the run loop's reconcile-on-reattach resubmits anything the
// instance never received, so callers only need to handle errPeerDown.
func (p *peerLink) send(env *proto.Envelope) error {
	p.mu.Lock()
	codec, ok := p.codec, p.connected
	p.mu.Unlock()
	if !ok {
		return errPeerDown
	}
	if err := codec.Send(env); err != nil {
		codec.Close() // recv loop notices and redials
		return errPeerDown
	}
	return nil
}

// sample returns the last load report; ok is false when the link is down or
// the report is stale (the instance stopped talking), which removes the
// member from placement and steal consideration.
func (p *peerLink) sample() (proto.LoadReport, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.connected || time.Since(p.loadAt) > 2*time.Second {
		return proto.LoadReport{}, false
	}
	return p.load, true
}

// steal asks the peer for up to max queued jobs destined for member dest.
// One request is in flight at a time (only the router's steal pass calls
// this), so the reply channel needs no correlation.
func (p *peerLink) steal(max int, dest string) []dispatch.StolenJob {
	select { // drop a stale reply from a timed-out earlier request
	case <-p.stealCh:
	default:
	}
	err := p.send(&proto.Envelope{Kind: proto.KindStealRequest, StealRequest: &proto.StealRequest{Max: max, Dest: dest}})
	if err != nil {
		return nil
	}
	select {
	case jobs := <-p.stealCh:
		return jobs
	case <-time.After(500 * time.Millisecond):
		return nil
	case <-p.quit:
		return nil
	}
}

func (p *peerLink) run() {
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-p.quit:
			return
		default:
		}
		codec, err := p.dialAttach()
		if err != nil {
			select {
			case <-time.After(backoff):
			case <-p.quit:
				return
			}
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			continue
		}
		backoff = 50 * time.Millisecond
		p.recvLoop(codec)
		p.mu.Lock()
		p.connected = false
		p.codec = nil
		p.mu.Unlock()
		codec.Close()
	}
}

// dialAttach establishes one attached session: dial, send PeerAttach with
// our outstanding set for this member, and reconcile against the live set
// the instance reports.
func (p *peerLink) dialAttach() (*proto.Codec, error) {
	codec, err := proto.Dial(p.addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	outstanding := p.r.assignedTo(p.idx)
	err = codec.Send(&proto.Envelope{
		Kind:  proto.KindPeerAttach,
		Proto: proto.MaxVersion,
		PeerAttach: &proto.PeerAttach{
			PeerID:      p.r.id,
			Outstanding: outstanding,
			LoadEvery:   p.r.cfg.LoadEvery,
		},
	})
	if err != nil {
		codec.Close()
		return nil, err
	}
	reply, err := codec.Recv()
	if err != nil || reply.Kind != proto.KindPeerAttached || reply.PeerInfo == nil {
		codec.Close()
		if err == nil {
			err = errors.New("router: unexpected attach reply")
		}
		return nil, err
	}
	if proto.Negotiate(reply.Proto) >= proto.VersionBinary {
		codec.EnableBinary()
	}
	p.mu.Lock()
	p.codec = codec
	p.connected = true
	p.loadAt = time.Now() // grace period until the first report
	p.mu.Unlock()
	p.r.reconcile(p.idx, reply.PeerInfo.Live)
	return codec, nil
}

func (p *peerLink) recvLoop(codec *proto.Codec) {
	for {
		env, err := codec.Recv()
		if err != nil {
			return
		}
		switch env.Kind {
		case proto.KindJobDone:
			if jd := env.JobDone; jd != nil {
				p.r.jobDone(p.idx, jd.JobID, dispatch.JobResult{
					JobID:   jd.JobID,
					Failed:  jd.Failed,
					Err:     jd.Err,
					Retries: jd.Retries,
				}, jd.Rejected)
			}
		case proto.KindOutput:
			if out := env.Output; out != nil && p.r.cfg.OnOutput != nil {
				p.r.cfg.OnOutput(out.TaskID, out.Stream, out.Data)
			}
		case proto.KindLoadReport:
			if env.LoadReport != nil {
				p.mu.Lock()
				p.load = *env.LoadReport
				p.loadAt = time.Now()
				p.mu.Unlock()
			}
		case proto.KindStealReply:
			if env.StealReply == nil {
				continue
			}
			jobs := make([]dispatch.StolenJob, len(env.StealReply.Jobs))
			for i := range env.StealReply.Jobs {
				jobs[i] = stolenJobOf(&env.StealReply.Jobs[i])
			}
			select {
			case p.stealCh <- jobs:
			default:
				// The requester timed out: these jobs left the victim and
				// must not be dropped. Adopt them directly.
				p.r.adoptStolen(p.idx, jobs)
			}
		default:
		}
	}
}

// stolenJobOf rebuilds a job from its wire form (mirror of the dispatch
// side's conversion).
func stolenJobOf(ps *proto.PeerSubmit) dispatch.StolenJob {
	sj := dispatch.StolenJob{
		Type:     dispatch.JobType(ps.JobType),
		Priority: ps.Priority,
		Retries:  ps.Retries,
	}
	sj.Spec.JobID = ps.JobID
	sj.Spec.NProcs = ps.NProcs
	sj.Spec.Cmd = ps.Cmd
	sj.Spec.Args = ps.Args
	sj.Spec.Env = ps.Env
	sj.Spec.Dir = ps.Dir
	sj.Spec.WallLimit = ps.WallLimit
	return sj
}

// peerSubmitEnv flattens a placement into its wire form.
func peerSubmitEnv(sj dispatch.StolenJob, stolen bool) *proto.Envelope {
	return &proto.Envelope{Kind: proto.KindPeerSubmit, PeerSubmit: &proto.PeerSubmit{
		JobID:     sj.Spec.JobID,
		JobType:   int(sj.Type),
		Priority:  sj.Priority,
		NProcs:    sj.Spec.NProcs,
		Cmd:       sj.Spec.Cmd,
		Args:      sj.Spec.Args,
		Env:       sj.Spec.Env,
		Dir:       sj.Spec.Dir,
		WallLimit: sj.Spec.WallLimit,
		Stolen:    stolen,
		Retries:   sj.Retries,
	}}
}

package router

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jets/internal/dispatch"
	"jets/internal/journal"
	"jets/internal/obs"
)

// Config configures a Router.
type Config struct {
	// Local lists in-process dispatcher instances; the router calls them
	// directly (no wire round trip). Names come from each instance's
	// Config.Instance, falling back to "inst<i>".
	Local []*dispatch.Dispatcher
	// LocalNames overrides the member name per Local entry (must be stable
	// across restarts — the routing-table journal records placements by
	// member name).
	LocalNames []string
	// Peers lists out-of-process dispatcher addresses; the router attaches
	// over the wire protocol and redials with backoff when a link drops.
	Peers []string
	// Journal, when non-nil, makes the routing table durable: accepted jobs
	// and their current placement replay on restart, and the router
	// re-attaches each member to reconcile. The router takes ownership and
	// closes it.
	Journal journal.Journal
	// Obs, when non-nil, exports the router's instrumentation.
	Obs *obs.Registry
	// StealInterval is the rebalancing cadence: each tick may move queued
	// jobs from the most backlogged member to an idle one. 0 defaults to
	// 25ms; negative disables stealing.
	StealInterval time.Duration
	// StealBatch bounds the jobs moved per steal pass (default 16).
	StealBatch int
	// CompactSegments triggers an online routing-table checkpoint once the
	// journal exceeds that many segment files, bounding WAL growth on
	// long-lived federations (the startup-only Compact never ran again).
	// 0 defaults to 8; negative disables online compaction.
	CompactSegments int
	// LoadEvery is the cadence remote instances report load at (default
	// 50ms). Local instances are sampled directly.
	LoadEvery time.Duration
	// OnOutput receives task output chunks relayed back from out-of-process
	// members for jobs this router placed there; nil discards them. Local
	// members deliver output through their own dispatch.Config.OnOutput.
	OnOutput func(taskID, stream string, data []byte)
}

// member is one federated dispatcher: exactly one of local/peer is set.
type member struct {
	name  string
	local *dispatch.Dispatcher
	peer  *peerLink
}

// entry is one routed job's routing-table state. The handle is the stable
// client-facing handle; instance-level handles are rewired underneath it as
// the job migrates, and exactly one completion resolves it (the done flag
// arbitrates between a live completion, a stale link's duplicate, and a
// post-recovery re-execution).
type entry struct {
	sj       dispatch.StolenJob
	h        *dispatch.Handle
	member   int
	stolen   bool // placed via the front-of-queue stolen path at least once
	attempts int  // placement attempts; bounds the re-place rotation
	done     bool
}

// Router partitions work across dispatcher instances. See the package
// comment for the placement and rebalancing model.
type Router struct {
	cfg     Config
	id      string
	members []*member
	ring    *ring
	jnl     journal.Journal

	mu        sync.Mutex
	table     map[string]*entry
	recovered []*dispatch.Handle

	recoveryErr    error
	journalLogOnce sync.Once

	checkpointMu      sync.Mutex // serializes online checkpoints
	checkpointLogOnce sync.Once

	draining atomic.Bool
	closed   atomic.Bool
	quit     chan struct{}
	wg       sync.WaitGroup

	// pickOverride, when set (tests), forces placement of a job ID to a
	// member index, bypassing ring+load. The duplicate-ID check still runs
	// first — that is what the override exists to prove.
	pickOverride func(jobID string) (int, bool)

	stats struct {
		routed        atomic.Int64
		completed     atomic.Int64
		steals        atomic.Int64
		rejects       atomic.Int64
		journalErrors atomic.Int64
	}
}

// New builds the federation: recovers the routing table from the journal
// (if any), connects every member, reconciles local members immediately
// (remote ones reconcile as their links attach), and starts the steal pass.
func New(cfg Config) (*Router, error) {
	if len(cfg.Local)+len(cfg.Peers) == 0 {
		return nil, errors.New("router: no members configured")
	}
	if cfg.StealInterval == 0 {
		cfg.StealInterval = 25 * time.Millisecond
	}
	if cfg.StealBatch <= 0 {
		cfg.StealBatch = 16
	}
	if cfg.LoadEvery <= 0 {
		cfg.LoadEvery = 50 * time.Millisecond
	}
	if cfg.CompactSegments == 0 {
		cfg.CompactSegments = 8
	}
	r := &Router{
		cfg:   cfg,
		id:    "router",
		jnl:   cfg.Journal,
		table: make(map[string]*entry),
		quit:  make(chan struct{}),
	}
	var names []string
	for i, d := range cfg.Local {
		name := ""
		if i < len(cfg.LocalNames) {
			name = cfg.LocalNames[i]
		}
		if name == "" {
			name = d.Instance()
		}
		if name == "" {
			name = fmt.Sprintf("inst%d", i)
		}
		names = append(names, name)
		r.members = append(r.members, &member{name: name, local: d})
	}
	for _, addr := range cfg.Peers {
		names = append(names, addr)
		r.members = append(r.members, &member{name: addr})
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			return nil, fmt.Errorf("router: duplicate member name %q", n)
		}
		seen[n] = true
	}
	r.ring = newRing(names)

	if r.jnl != nil {
		r.recoverJournal()
	}

	// Local members reconcile synchronously: wire completion callbacks for
	// the jobs the instance recovered itself, resubmit the ones it lost.
	for i, m := range r.members {
		if m.local == nil {
			continue
		}
		outstanding := r.assignedTo(i)
		var live []string
		for _, id := range outstanding {
			if h, ok := m.local.HandleOf(id); ok {
				live = append(live, id)
				r.mu.Lock()
				e := r.table[id]
				r.mu.Unlock()
				if e != nil {
					r.wire(e, i, h)
				}
			}
		}
		r.reconcile(i, live)
	}
	// Peer links attach (and reconcile) on their own goroutines.
	for i, m := range r.members {
		if m.local == nil {
			m.peer = newPeerLink(r, i, m.name)
		}
	}

	if cfg.StealInterval > 0 {
		r.wg.Add(1)
		go r.stealLoop()
	}
	if cfg.Obs != nil {
		r.registerObs(cfg.Obs)
	}
	return r, nil
}

func (r *Router) registerObs(reg *obs.Registry) {
	reg.CounterFunc("jets_router_jobs_routed_total", "jobs accepted and placed by the router", r.stats.routed.Load)
	reg.CounterFunc("jets_router_jobs_completed_total", "router-level job completions delivered", r.stats.completed.Load)
	reg.CounterFunc("jets_router_steals_total", "jobs migrated between instances by the steal pass", r.stats.steals.Load)
	reg.CounterFunc("jets_router_rejects_total", "placements refused by an instance and re-placed", r.stats.rejects.Load)
	reg.CounterFunc("jets_router_journal_errors_total", "routing-table journal records dropped after a write failure", r.stats.journalErrors.Load)
	reg.GaugeFunc("jets_router_live_jobs", "jobs in the routing table awaiting completion", func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return float64(len(r.table))
	})
	reg.GaugeFunc("jets_router_members", "configured federation members", func() float64 {
		return float64(len(r.members))
	})
	reg.GaugeFunc("jets_router_journal_segments", "routing-table WAL segment files on disk (checkpointing keeps this bounded)", func() float64 {
		return float64(r.JournalSegments())
	})
}

// JournalSegments reports the routing-table WAL's segment-file count (0
// without a segmented journal).
func (r *Router) JournalSegments() int {
	if ck, ok := r.jnl.(journal.Checkpointer); ok {
		return ck.Segments()
	}
	return 0
}

// maybeCheckpoint runs an online routing-table checkpoint when the journal
// has grown past the configured segment threshold. Mirrors the dispatcher's
// online compaction: the startup Compact only ever ran once, so a long-lived
// router's WAL grew without bound (two records per accepted job, one per
// migration) until restart.
func (r *Router) maybeCheckpoint() {
	if r.jnl == nil || r.cfg.CompactSegments < 0 {
		return
	}
	ck, ok := r.jnl.(journal.Checkpointer)
	if !ok || ck.Segments() <= r.cfg.CompactSegments {
		return
	}
	r.checkpointMu.Lock()
	defer r.checkpointMu.Unlock()
	err := ck.Checkpoint(func(emit func(journal.Record) error) error {
		// Snapshot under r.mu, emit after: the checkpoint holds the WAL's
		// commit lock, so any append racing this snapshot lands as a pending
		// record flushed after it — replay applies it on top, last-wins.
		type snap struct {
			sj   dispatch.StolenJob
			node string
		}
		r.mu.Lock()
		snaps := make([]snap, 0, len(r.table))
		for _, e := range r.table {
			if e.done {
				continue
			}
			snaps = append(snaps, snap{sj: e.sj, node: r.members[e.member].name})
		}
		r.mu.Unlock()
		for _, s := range snaps {
			if err := emit(submittedRecord(s.sj)); err != nil {
				return err
			}
			if err := emit(journal.Record{Kind: journal.Migrated, JobID: s.sj.Spec.JobID, Node: s.node}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		r.checkpointLogOnce.Do(func() {
			log.Printf("router: online journal checkpoint failed (will retry): %v", err)
		})
	}
}

// Members reports the federation size.
func (r *Router) Members() int { return len(r.members) }

// ConnectedMembers reports how many members can take placements right now:
// every in-process instance, plus each remote peer whose attach handshake is
// currently up. Callers that submit immediately after New can poll this to
// avoid burning a job's placement rotation against still-dialing links.
func (r *Router) ConnectedMembers() int {
	n := 0
	for _, m := range r.members {
		if m.peer == nil {
			n++
			continue
		}
		m.peer.mu.Lock()
		if m.peer.connected {
			n++
		}
		m.peer.mu.Unlock()
	}
	return n
}

// MemberName returns the stable name of member i.
func (r *Router) MemberName(i int) string { return r.members[i].name }

// RecoveredJobs returns the handles of jobs rebuilt from the routing-table
// journal at startup, in original submission order.
func (r *Router) RecoveredJobs() []*dispatch.Handle {
	return append([]*dispatch.Handle(nil), r.recovered...)
}

// RecoveryError reports a journal replay failure during New (best-effort
// past the error point, like dispatch.RecoveryError).
func (r *Router) RecoveryError() error { return r.recoveryErr }

// LiveJobs reports the routing-table population.
func (r *Router) LiveJobs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.table)
}

func (r *Router) journalLocked(rec journal.Record) {
	if r.jnl == nil {
		return
	}
	if err := r.jnl.Append(rec); err != nil {
		r.stats.journalErrors.Add(1)
		r.journalLogOnce.Do(func() {
			log.Printf("router: journal append failed, routing table is no longer durable: %v", err)
		})
	}
}

func submittedRecord(sj dispatch.StolenJob) journal.Record {
	return journal.Record{
		Kind:      journal.Submitted,
		JobID:     sj.Spec.JobID,
		JobType:   int(sj.Type),
		Priority:  sj.Priority,
		NProcs:    sj.Spec.NProcs,
		Cmd:       sj.Spec.Cmd,
		Args:      sj.Spec.Args,
		Env:       sj.Spec.Env,
		Dir:       sj.Spec.Dir,
		WallLimit: sj.Spec.WallLimit,
	}
}

// recoverJournal rebuilds the routing table. Record semantics: Submitted
// carries the job spec, Migrated carries the current placement (last record
// wins — initial placement and every migration append one), Completed is
// terminal. Keeping placement out of the Submitted record means the WAL's
// per-kind encoding stays unchanged from the dispatcher's (old journals
// remain decodable); the pairing costs one extra small record per accept.
func (r *Router) recoverJournal() {
	type st struct {
		sj   dispatch.StolenJob
		node string
	}
	var order []string
	live := make(map[string]*st)
	r.recoveryErr = r.jnl.Replay(func(rec journal.Record) error {
		switch rec.Kind {
		case journal.Submitted:
			sj := dispatch.StolenJob{Type: dispatch.JobType(rec.JobType), Priority: rec.Priority}
			sj.Spec.JobID = rec.JobID
			sj.Spec.NProcs = rec.NProcs
			sj.Spec.Cmd = rec.Cmd
			sj.Spec.Args = rec.Args
			sj.Spec.Env = rec.Env
			sj.Spec.Dir = rec.Dir
			sj.Spec.WallLimit = rec.WallLimit
			if _, seen := live[rec.JobID]; !seen {
				order = append(order, rec.JobID)
			}
			live[rec.JobID] = &st{sj: sj}
		case journal.Migrated:
			if s := live[rec.JobID]; s != nil {
				s.node = rec.Node
			}
		case journal.Completed:
			delete(live, rec.JobID)
		}
		return nil
	})
	for _, id := range order {
		s, ok := live[id]
		if !ok {
			continue // completed in a previous life
		}
		delete(live, id) // resubmitted-after-complete IDs recover once
		mi := r.memberIndex(s.node)
		if mi < 0 {
			// Placement names a member no longer configured: reassign.
			mi = r.ring.owner(id)
		}
		e := &entry{sj: s.sj, h: dispatch.NewHandle(id), member: mi, stolen: true}
		r.table[id] = e
		r.recovered = append(r.recovered, e.h)
		r.journalLocked(submittedRecord(s.sj))
		r.journalLocked(journal.Record{Kind: journal.Migrated, JobID: id, Node: r.members[mi].name})
	}
	// Same compaction gate as dispatcher recovery: only drop the replayed
	// history once the re-journaled table is durable.
	if err := r.jnl.Sync(); err != nil {
		r.recoveryErr = errors.Join(r.recoveryErr,
			fmt.Errorf("router: re-journaled routing table not durable, keeping replayed segments: %w", err))
		return
	}
	if err := r.jnl.Compact(); err != nil {
		r.recoveryErr = errors.Join(r.recoveryErr,
			fmt.Errorf("router: compacting replayed journal segments: %w", err))
	}
}

func (r *Router) memberIndex(name string) int {
	for i, m := range r.members {
		if m.name == name {
			return i
		}
	}
	return -1
}

// assignedTo snapshots the IDs currently placed on member mi (the attach
// handshake's outstanding set).
func (r *Router) assignedTo(mi int) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ids []string
	for id, e := range r.table {
		if e.member == mi && !e.done {
			ids = append(ids, id)
		}
	}
	return ids
}

// sample returns a member's load; ok is false for members that should not
// receive placements (disconnected peer, draining local instance).
func (r *Router) sample(mi int) (queued, running, idle, workers int, ok bool) {
	m := r.members[mi]
	if m.local != nil {
		if m.local.Draining() {
			return 0, 0, 0, 0, false
		}
		// Placement and stealing only need queue depth and idle count, both
		// advisory atomic sums; d.Load() would take the instance's scheduler
		// lock on every routed job — the very contention federation splits.
		return m.local.QueuedJobs(), 0, m.local.IdleWorkers(), 0, true
	}
	lr, ok := m.peer.sample()
	return lr.Queued, lr.Running, lr.Idle, lr.Workers, ok
}

// pickLocked chooses the member for a fresh submission: the consistent-hash
// owner unless it is unavailable or has no idle workers while another member
// does, in which case the most-idle available member takes it (least-loaded
// fallback). Caller holds r.mu.
func (r *Router) pickLocked(id string) int {
	if r.pickOverride != nil {
		if mi, ok := r.pickOverride(id); ok {
			return mi
		}
	}
	owner := r.ring.owner(id)
	_, _, ownerIdle, _, ownerOK := r.sample(owner)
	if ownerOK && ownerIdle > 0 {
		return owner
	}
	best, bestIdle, bestQueued := -1, -1, 0
	for i := range r.members {
		q, ru, idle, _, ok := r.sample(i)
		if !ok {
			continue
		}
		if idle > bestIdle || (idle == bestIdle && q+ru < bestQueued) {
			best, bestIdle, bestQueued = i, idle, q+ru
		}
	}
	switch {
	case best < 0:
		return owner // nobody reachable: keep hash affinity, the link retry resubmits
	case ownerOK && bestIdle <= 0:
		return owner // everyone saturated: hash affinity wins
	default:
		return best
	}
}

// Submit accepts one job and routes it. The returned handle is stable
// across migrations and instance restarts; it resolves exactly once.
//
// The duplicate check is federation-global: the routing table holds every
// live routed job regardless of which instance it currently sits on, so a
// duplicate ID is rejected even when hashing (or rebalancing) would have
// landed the two copies on different instances — the per-instance
// reservation alone cannot see that case.
func (r *Router) Submit(job dispatch.Job) (*dispatch.Handle, error) {
	if err := job.Spec.Validate(); err != nil {
		return nil, err
	}
	if job.Type == dispatch.Sequential && job.Spec.NProcs != 1 {
		return nil, fmt.Errorf("router: sequential job %q must have NProcs 1", job.Spec.JobID)
	}
	if r.closed.Load() || r.draining.Load() {
		return nil, errors.New("router: router is shut down")
	}
	id := job.Spec.JobID
	sj := dispatch.StolenJob{Spec: job.Spec, Type: job.Type, Priority: job.Priority}
	r.mu.Lock()
	if _, dup := r.table[id]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("router: duplicate job id %q", id)
	}
	mi := r.pickLocked(id)
	e := &entry{sj: sj, h: dispatch.NewHandle(id), member: mi}
	r.table[id] = e
	r.journalLocked(submittedRecord(sj))
	r.journalLocked(journal.Record{Kind: journal.Migrated, JobID: id, Node: r.members[mi].name})
	r.mu.Unlock()
	r.stats.routed.Add(1)
	// First placement goes straight to the member picked above — no point
	// re-locking to read back the fields this call just wrote.
	r.placeFrom(e, mi, sj, false)
	return e.h, nil
}

// SubmitBatch accepts a group of jobs as a whole (all-or-nothing
// validation and duplicate checking, like dispatch.SubmitBatch) and routes
// them with one table-lock acquisition, batching the per-member placements
// for local members so federation keeps the submit-side batching win.
func (r *Router) SubmitBatch(jobs []dispatch.Job) ([]*dispatch.Handle, error) {
	for i := range jobs {
		if err := jobs[i].Spec.Validate(); err != nil {
			return nil, err
		}
		if jobs[i].Type == dispatch.Sequential && jobs[i].Spec.NProcs != 1 {
			return nil, fmt.Errorf("router: sequential job %q must have NProcs 1", jobs[i].Spec.JobID)
		}
	}
	if r.closed.Load() || r.draining.Load() {
		return nil, errors.New("router: router is shut down")
	}
	handles := make([]*dispatch.Handle, len(jobs))
	entries := make([]*entry, len(jobs))
	perMember := make([][]int, len(r.members))
	r.mu.Lock()
	for i := range jobs {
		id := jobs[i].Spec.JobID
		if _, dup := r.table[id]; dup {
			for k := 0; k < i; k++ {
				delete(r.table, jobs[k].Spec.JobID)
			}
			r.mu.Unlock()
			return nil, fmt.Errorf("router: duplicate job id %q", id)
		}
		sj := dispatch.StolenJob{Spec: jobs[i].Spec, Type: jobs[i].Type, Priority: jobs[i].Priority}
		mi := r.pickLocked(id)
		e := &entry{sj: sj, h: dispatch.NewHandle(id), member: mi}
		r.table[id] = e
		entries[i] = e
		handles[i] = e.h
		perMember[mi] = append(perMember[mi], i)
	}
	for i := range jobs {
		r.journalLocked(submittedRecord(entries[i].sj))
		r.journalLocked(journal.Record{Kind: journal.Migrated, JobID: jobs[i].Spec.JobID, Node: r.members[entries[i].member].name})
	}
	r.mu.Unlock()
	r.stats.routed.Add(int64(len(jobs)))

	for mi, idxs := range perMember {
		if len(idxs) == 0 {
			continue
		}
		m := r.members[mi]
		if m.local != nil {
			group := make([]dispatch.Job, len(idxs))
			for k, i := range idxs {
				group[k] = jobs[i]
			}
			hs, err := m.local.SubmitBatch(group)
			if err == nil {
				for k, h := range hs {
					r.wire(entries[idxs[k]], mi, h)
				}
				continue
			}
			// The instance refused the batch as a whole (duplicate against a
			// directly submitted job, draining): fall through to per-entry
			// placement, which classifies and rotates per job.
		}
		for _, i := range idxs {
			r.place(entries[i])
		}
	}
	return handles, nil
}

// wire subscribes the router to an instance-level handle's completion. The
// callback captures the entry so the hot local-completion path skips the
// table lookup jobDone does for by-ID remote frames.
func (r *Router) wire(e *entry, mi int, h *dispatch.Handle) {
	h.OnDone(func(res dispatch.JobResult) {
		r.entryDone(e, mi, res, false)
	})
}

// place pushes an entry to its current member, rotating to the next member
// on a retryable refusal (draining instance, downed link) and failing the
// handle after every member has been tried twice or on a non-retryable
// error. Exits silently once the entry completes or the router closes.
func (r *Router) place(e *entry) {
	r.mu.Lock()
	if e.done || r.closed.Load() {
		r.mu.Unlock()
		return
	}
	mi, sj, stolen := e.member, e.sj, e.stolen
	r.mu.Unlock()
	r.placeFrom(e, mi, sj, stolen)
}

// placeFrom is place with the first attempt's target and payload already in
// hand — Submit calls it directly so the hot path does not reacquire the
// table lock just to read back fields it wrote moments earlier.
func (r *Router) placeFrom(e *entry, mi int, sj dispatch.StolenJob, stolen bool) {
	for {
		m := r.members[mi]
		var err error
		if m.local != nil {
			var h *dispatch.Handle
			if stolen {
				h, err = m.local.SubmitStolen(sj)
			} else {
				h, err = m.local.Submit(dispatch.Job{Spec: sj.Spec, Type: sj.Type, Priority: sj.Priority})
			}
			if err == nil {
				r.wire(e, mi, h)
				return
			}
			if isDuplicateErr(err) {
				// The instance already has this ID live: a link retry or
				// recovery resubmission raced an earlier copy. Re-subscribe
				// instead of failing — the live copy's completion is the one
				// the handle is waiting for.
				if h, ok := m.local.HandleOf(sj.Spec.JobID); ok {
					r.wire(e, mi, h)
					return
				}
			}
		} else {
			if err = m.peer.send(peerSubmitEnv(sj, stolen)); err == nil {
				return
			}
		}
		if !r.rotate(e, err) {
			return
		}
		r.mu.Lock()
		if e.done || r.closed.Load() {
			r.mu.Unlock()
			return
		}
		mi, sj, stolen = e.member, e.sj, e.stolen
		r.mu.Unlock()
	}
}

// rotate moves a refused entry to the next member, reporting whether
// another placement attempt should run. When the rotation budget is spent
// or the refusal is not retryable, the handle fails — journaled as
// Completed, so a restart does not resurrect a job every member refused.
func (r *Router) rotate(e *entry, err error) bool {
	retryable := errors.Is(err, dispatch.ErrDraining) || errors.Is(err, errPeerDown) || retryableMsg(err.Error())
	r.mu.Lock()
	if e.done {
		r.mu.Unlock()
		return false
	}
	e.attempts++
	if !retryable || e.attempts >= 2*len(r.members) {
		id := e.sj.Spec.JobID
		e.done = true
		delete(r.table, id)
		r.journalLocked(journal.Record{Kind: journal.Completed, JobID: id, Failed: true})
		r.mu.Unlock()
		r.stats.completed.Add(1)
		e.h.Complete(dispatch.JobResult{JobID: id, Failed: true, Err: err.Error(), Retries: e.sj.Retries})
		return false
	}
	e.member = (e.member + 1) % len(r.members)
	e.stolen = true // re-placements go to the front: the job is not new work
	r.journalLocked(journal.Record{Kind: journal.Migrated, JobID: e.sj.Spec.JobID, Node: r.members[e.member].name})
	r.mu.Unlock()
	r.stats.rejects.Add(1)
	return true
}

// retryableMsg classifies a remote rejection string the way rotate
// classifies local errors (the error crossed the wire, so errors.Is cannot).
func retryableMsg(msg string) bool {
	return strings.Contains(msg, "draining") || strings.Contains(msg, "shut down")
}

func isDuplicateErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "duplicate job id")
}

// jobDone resolves a completion that arrived by ID — remote JobDone frames,
// which carry no entry reference. Local completions go straight to
// entryDone through the closure wire installed.
func (r *Router) jobDone(mi int, id string, res dispatch.JobResult, rejected bool) {
	r.mu.Lock()
	e := r.table[id]
	r.mu.Unlock()
	if e == nil {
		return
	}
	r.entryDone(e, mi, res, rejected)
}

// entryDone is the single completion sink: local handles (via wire) and
// remote JobDone frames both land here. The entry's done flag makes
// delivery exactly-once per router handle no matter how many placements,
// link retries, or recoveries the job went through.
func (r *Router) entryDone(e *entry, mi int, res dispatch.JobResult, rejected bool) {
	r.mu.Lock()
	if e.done {
		r.mu.Unlock()
		return
	}
	if rejected {
		if e.member != mi {
			// A stale placement's verdict: the job has since moved on.
			r.mu.Unlock()
			return
		}
		r.mu.Unlock()
		if r.rotate(e, errors.New(res.Err)) {
			r.place(e)
		}
		return
	}
	e.done = true
	id := e.sj.Spec.JobID
	delete(r.table, id)
	r.journalLocked(journal.Record{Kind: journal.Completed, JobID: id, Failed: res.Failed})
	r.mu.Unlock()
	r.stats.completed.Add(1)
	e.h.Complete(res)
}

// reconcile runs after a member (re)attaches: every table entry placed on
// it that the instance does not report live was lost (crash before the
// journal's group commit, or a submit that never arrived) and is
// resubmitted — at-least-once execution, exactly-once handle completion.
func (r *Router) reconcile(mi int, live []string) {
	set := make(map[string]struct{}, len(live))
	for _, id := range live {
		set[id] = struct{}{}
	}
	var lost []*entry
	r.mu.Lock()
	for id, e := range r.table {
		if e.member != mi || e.done {
			continue
		}
		if _, ok := set[id]; !ok {
			e.stolen = true // recovered work re-places at the front
			lost = append(lost, e)
		}
	}
	r.mu.Unlock()
	for _, e := range lost {
		r.place(e)
	}
}

// adoptStolen re-places jobs that left a victim after the steal pass
// stopped waiting for them (late StealReply). They are already out of the
// victim's state, so they must be placed somewhere; the ring owner of each
// is as good a home as any.
func (r *Router) adoptStolen(victim int, jobs []dispatch.StolenJob) {
	for _, sj := range jobs {
		r.migrateTo(victim, r.ring.owner(sj.Spec.JobID), sj)
	}
}

// migrateTo updates the table for one stolen job and places it on the
// thief. Jobs stolen from an instance but absent from the table (submitted
// directly to the instance, not through the router) are adopted with a
// detached handle so the work is not lost.
func (r *Router) migrateTo(victim, thief int, sj dispatch.StolenJob) {
	id := sj.Spec.JobID
	r.mu.Lock()
	e := r.table[id]
	if e == nil {
		e = &entry{sj: sj, h: dispatch.NewHandle(id)}
		r.table[id] = e
		r.journalLocked(submittedRecord(sj))
	}
	if e.done {
		r.mu.Unlock()
		return
	}
	e.sj.Retries = sj.Retries // the victim's accounting is current
	e.member = thief
	e.stolen = true
	r.journalLocked(journal.Record{Kind: journal.Migrated, JobID: id, Node: r.members[thief].name})
	r.mu.Unlock()
	r.stats.steals.Add(1)
	r.place(e)
}

func (r *Router) stealLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.StealInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.stealOnce()
			r.maybeCheckpoint()
		case <-r.quit:
			return
		}
	}
}

// stealOnce runs one rebalancing pass: the most idle member with an empty
// queue steals up to StealBatch of the oldest queued jobs from the most
// backlogged member. Running jobs never move.
func (r *Router) stealOnce() {
	if len(r.members) < 2 {
		return
	}
	thief, thiefIdle := -1, 0
	victim, victimQueued := -1, 0
	for i := range r.members {
		q, _, idle, _, ok := r.sample(i)
		if !ok {
			continue
		}
		if q == 0 && idle > thiefIdle {
			thief, thiefIdle = i, idle
		}
		if q > victimQueued {
			victim, victimQueued = i, q
		}
	}
	if thief < 0 || victim < 0 || thief == victim {
		return
	}
	max := victimQueued
	if max > r.cfg.StealBatch {
		max = r.cfg.StealBatch
	}
	m := r.members[victim]
	var jobs []dispatch.StolenJob
	if m.local != nil {
		jobs = m.local.StealQueued(max, r.members[thief].name)
	} else {
		jobs = m.peer.steal(max, r.members[thief].name)
	}
	for _, sj := range jobs {
		r.migrateTo(victim, thief, sj)
	}
}

// Drain blocks until the routing table is empty (every accepted job
// delivered its completion), or ctx ends.
func (r *Router) Drain(ctx context.Context) error {
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		if r.LiveJobs() == 0 {
			return nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Shutdown stops accepting submissions, drains the routing table (bounded
// by ctx), and closes the router. Member instances are not shut down — the
// owner that built them decides their fate (core.Engine shuts local
// instances down after the router).
func (r *Router) Shutdown(ctx context.Context) error {
	r.draining.Store(true)
	err := r.Drain(ctx)
	r.Close()
	return err
}

// Close stops the steal pass and every peer link, resolves still-live
// handles with ErrDispatcherClosed — without Completed records, so a
// journal-backed router resurrects them on the next start — and closes the
// journal.
func (r *Router) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(r.quit)
	for _, m := range r.members {
		if m.peer != nil {
			m.peer.stop()
		}
	}
	r.wg.Wait()
	var stranded []*entry
	r.mu.Lock()
	for id, e := range r.table {
		if !e.done {
			e.done = true
			stranded = append(stranded, e)
		}
		delete(r.table, id)
	}
	r.mu.Unlock()
	for _, e := range stranded {
		e.h.Complete(dispatch.JobResult{
			JobID:   e.sj.Spec.JobID,
			Failed:  true,
			Err:     dispatch.ErrDispatcherClosed.Error(),
			Retries: e.sj.Retries,
		})
	}
	if r.jnl != nil {
		return r.jnl.Close()
	}
	return nil
}

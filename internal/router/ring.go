// Package router is the dispatcher-of-dispatchers tier: it partitions
// submitted jobs across N dispatcher instances and rebalances queued work
// between them, generalizing the intra-dispatcher shard steal one level up.
// The paper's single dispatcher saturates around one process's scheduling
// throughput; federating instances behind a router multiplies that while
// workers and clients keep speaking the existing wire protocol — a router
// attaches to an instance the same way a worker does, distinguished only by
// its first frame (proto.KindPeerAttach).
//
// Placement is consistent hashing on the job ID — the same FNV-1a scheme
// internal/dht partitions its keyspace with — over a ring of virtual nodes,
// with a least-loaded fallback when the ring owner has no idle workers. A
// periodic steal pass moves *queued* (never running) jobs from the most
// backlogged instance to an idle one; per-submitter FIFO stays observable
// because victims always give up their oldest queued work and thieves place
// it at the front of their queues. Completions route back through the
// router's stable per-job handle no matter how many times the job migrated.
package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerMember is the virtual-node fan-out. 64 points per member keeps
// the keyspace split within a few percent of even for small member counts
// while the ring stays tiny (N*64 points, binary-searched per placement).
const vnodesPerMember = 64

// ring is a consistent-hash ring over member indices: FNV-1a (the
// internal/dht partitioning hash) positions vnodesPerMember points per
// member, and a key is owned by the first point clockwise from its hash.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	h   uint32
	idx int
}

func newRing(names []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(names)*vnodesPerMember)}
	for i, name := range names {
		for v := 0; v < vnodesPerMember; v++ {
			r.points = append(r.points, ringPoint{h: hash32(fmt.Sprintf("%s#%d", name, v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].h != r.points[b].h {
			return r.points[a].h < r.points[b].h
		}
		// Deterministic tie-break so equal hashes order the same on every
		// restart (member names, and therefore assignments, must be stable).
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// owner returns the member index owning key.
func (r *ring) owner(key string) int {
	h := hash32(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].idx
}

// hash32 is FNV-1a (the internal/dht key hash) with a murmur3-style
// finalizer. Raw FNV-1a has no avalanche: job IDs that differ only in a
// trailing counter ("job-0".."job-19") land in one tiny arc of the ring and
// a single member ends up owning the whole batch. The mixer spreads those
// tails across the keyspace while staying deterministic across restarts.
func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	x := h.Sum32()
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

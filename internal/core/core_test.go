package core

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/mpi"
)

func TestParseInput(t *testing.T) {
	in := `
# replica exchange batch
MPI: 4 namd2.sh input-1.pdb output-1.log
MPI: 8 namd2.sh input-2.pdb output-2.log

SEQ: exchange.sh snap-1 snap-2
hostname -f
`
	jobs, err := ParseInput(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("jobs=%d", len(jobs))
	}
	if jobs[0].Type != dispatch.MPI || jobs[0].Spec.NProcs != 4 ||
		jobs[0].Spec.Cmd != "namd2.sh" || len(jobs[0].Spec.Args) != 2 {
		t.Fatalf("job0 %+v", jobs[0])
	}
	if jobs[1].Spec.NProcs != 8 {
		t.Fatalf("job1 %+v", jobs[1])
	}
	if jobs[2].Type != dispatch.Sequential || jobs[2].Spec.Cmd != "exchange.sh" {
		t.Fatalf("job2 %+v", jobs[2])
	}
	if jobs[3].Type != dispatch.Sequential || jobs[3].Spec.Cmd != "hostname" ||
		jobs[3].Spec.Args[0] != "-f" {
		t.Fatalf("job3 %+v", jobs[3])
	}
	// IDs come from line numbers and must be unique.
	seen := map[string]bool{}
	for _, j := range jobs {
		if seen[j.Spec.JobID] {
			t.Fatalf("duplicate id %s", j.Spec.JobID)
		}
		seen[j.Spec.JobID] = true
	}
}

func TestParseInputErrors(t *testing.T) {
	for _, in := range []string{
		"MPI: x cmd",
		"MPI: -3 cmd",
		"MPI: 4",
		"SEQ:",
	} {
		if _, err := ParseInput(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func newTestEngine(t *testing.T, workers int) (*Engine, *hydra.FuncRunner) {
	t.Helper()
	runner := hydra.NewFuncRunner()
	e, err := NewEngine(Options{
		LocalWorkers:   workers,
		CoresPerWorker: 4,
		Runner:         runner,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e, runner
}

func TestEngineRunFile(t *testing.T) {
	e, runner := newTestEngine(t, 8)
	var seqRuns, mpiRuns atomic.Int64
	runner.Register("work.sh", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		if _, isMPI := env["PMI_PORT"]; isMPI {
			comm, err := mpi.InitEnvFrom(env)
			if err != nil {
				return 1
			}
			defer comm.Close()
			if err := comm.Barrier(); err != nil {
				return 1
			}
			mpiRuns.Add(1)
			return 0
		}
		seqRuns.Add(1)
		return 0
	})
	in := `
MPI: 4 work.sh a
MPI: 2 work.sh b
SEQ: work.sh c
work.sh d
`
	rep, err := e.RunFile(context.Background(), strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 0 {
		t.Fatalf("failed=%d results=%+v", rep.Failed(), rep.Results)
	}
	if got := mpiRuns.Load(); got != 6 { // 4 + 2 ranks
		t.Fatalf("mpi rank executions=%d", got)
	}
	if got := seqRuns.Load(); got != 2 {
		t.Fatalf("seq executions=%d", got)
	}
	if rep.Summary.Jobs != 4 {
		t.Fatalf("summary %+v", rep.Summary)
	}
	if rep.Allocation != 8 {
		t.Fatalf("allocation=%d", rep.Allocation)
	}
}

func TestEngineUtilizationReasonable(t *testing.T) {
	e, runner := newTestEngine(t, 4)
	const taskMS = 30
	runner.Register("sleep.sh", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		time.Sleep(taskMS * time.Millisecond)
		return 0
	})
	var jobs []dispatch.Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, dispatch.Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("s%d", i), NProcs: 1, Cmd: "sleep.sh"},
			Type: dispatch.Sequential,
		})
	}
	rep, err := e.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 0 {
		t.Fatal("jobs failed")
	}
	// 20 x 30ms jobs on 4 workers: ideal makespan 150ms. Allow generous
	// slack but demand >50% utilization — the pilot-job model's whole point.
	if rep.Summary.Utilization < 0.5 {
		t.Fatalf("utilization %.2f too low (makespan %v)", rep.Summary.Utilization, rep.Summary.Makespan)
	}
}

func TestEngineBatchWithFailure(t *testing.T) {
	e, runner := newTestEngine(t, 2)
	runner.Register("maybe.sh", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		if len(args) > 0 && args[0] == "fail" {
			return 1
		}
		return 0
	})
	jobs := []dispatch.Job{
		{Spec: hydra.JobSpec{JobID: "ok", NProcs: 1, Cmd: "maybe.sh"}, Type: dispatch.Sequential},
		{Spec: hydra.JobSpec{JobID: "bad", NProcs: 1, Cmd: "maybe.sh", Args: []string{"fail"}}, Type: dispatch.Sequential},
	}
	rep, err := e.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 1 {
		t.Fatalf("failed=%d", rep.Failed())
	}
}

func TestEngineContextCancel(t *testing.T) {
	e, runner := newTestEngine(t, 1)
	runner.Register("forever.sh", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		<-ctx.Done()
		return 1
	})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := e.RunBatch(ctx, []dispatch.Job{
		{Spec: hydra.JobSpec{JobID: "f", NProcs: 1, Cmd: "forever.sh"}, Type: dispatch.Sequential},
	})
	if err == nil {
		t.Fatal("want context error")
	}
}

func TestFormatReport(t *testing.T) {
	e, runner := newTestEngine(t, 2)
	runner.Register("n", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int { return 0 })
	rep, err := e.RunBatch(context.Background(), []dispatch.Job{
		{Spec: hydra.JobSpec{JobID: "a", NProcs: 1, Cmd: "n"}, Type: dispatch.Sequential},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatReport(rep)
	for _, want := range []string{"jobs:", "utilization:", "allocation:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestStageFileThroughEngine(t *testing.T) {
	e, runner := newTestEngine(t, 1)
	_ = runner
	// Local workers have no cache dir, so staging is a no-op that must not
	// crash or wedge the engine.
	e.StageFile("lib.so", []byte("x"))
	runner.Register("n", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int { return 0 })
	rep, err := e.RunBatch(context.Background(), []dispatch.Job{
		{Spec: hydra.JobSpec{JobID: "a", NProcs: 1, Cmd: "n"}, Type: dispatch.Sequential},
	})
	if err != nil || rep.Failed() != 0 {
		t.Fatalf("err=%v failed=%d", err, rep.Failed())
	}
}

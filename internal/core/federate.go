package core

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/journal"
	"jets/internal/router"
	"jets/internal/worker"
)

// newFederatedEngine builds the Options.Federate form of the engine: N
// in-process dispatcher instances (plus any FederatePeers) behind a work
// router. Each instance listens on its own ephemeral endpoint and carries an
// instance label so the shared obs registry keeps every instance's series
// distinct; local workers spread across the instances round-robin, each
// handed the full address rotation for failover.
func newFederatedEngine(opts Options) (*Engine, error) {
	n := opts.Federate
	if n < 1 {
		n = 1
	}
	if opts.Journal != nil {
		return nil, fmt.Errorf("core: Options.Journal is single-dispatcher only; use DataDir for federated durability")
	}

	e := &Engine{}
	fail := func(err error) (*Engine, error) {
		if e.rtr != nil {
			e.rtr.Close()
		}
		for _, d := range e.insts {
			d.Close()
		}
		return nil, err
	}

	for i := 0; i < n; i++ {
		name := fmt.Sprintf("inst%d", i)
		var jnl journal.Journal
		if opts.DataDir != "" {
			w, err := journal.OpenWAL(journal.Options{Dir: filepath.Join(opts.DataDir, name)})
			if err != nil {
				return fail(fmt.Errorf("core: open %s journal: %w", name, err))
			}
			jnl = w
		}
		listen := ""
		if i == 0 {
			listen = opts.ListenAddr // a fixed endpoint can only go to one instance
		}
		spill := ""
		if opts.DataDir != "" {
			spill = spillDir(filepath.Join(opts.DataDir, name))
		}
		d := dispatch.New(dispatch.Config{
			Addr:             listen,
			Instance:         name,
			HeartbeatTimeout: opts.HeartbeatTimeout,
			MaxJobRetries:    opts.MaxJobRetries,
			RetryBackoff:     opts.RetryBackoff,
			RetryBackoffMax:  opts.RetryBackoffMax,
			Queue:            opts.Queue,
			NewQueue:         opts.NewQueue,
			Shards:           opts.Shards,
			Group:            opts.Group,
			JobTimeout:       opts.JobTimeout,
			OnOutput:         opts.OnOutput,
			OnOutputFrame:    opts.OnOutputFrame,
			OnEvent:          opts.OnEvent,
			WriteCoalesce:    opts.WriteCoalesce,
			Obs:              opts.Obs,
			Journal:          jnl,
			HotQueueJobs:     opts.HotQueueJobs,
			CompactSegments:  opts.CompactSegments,
			SpillDir:         spill,
		})
		addr, err := d.Start()
		if err != nil {
			return fail(err)
		}
		e.insts = append(e.insts, d)
		e.addrs = append(e.addrs, addr)
	}
	e.d = e.insts[0]
	e.addr = e.addrs[0]

	var rjnl journal.Journal
	if opts.DataDir != "" {
		w, err := journal.OpenWAL(journal.Options{Dir: filepath.Join(opts.DataDir, "router")})
		if err != nil {
			return fail(fmt.Errorf("core: open router journal: %w", err))
		}
		rjnl = w
	}
	rtr, err := router.New(router.Config{
		Local:    e.insts,
		Peers:    opts.FederatePeers,
		Journal:  rjnl,
		Obs:      opts.Obs,
		OnOutput: opts.OnOutput,
	})
	if err != nil {
		if rjnl != nil {
			rjnl.Close()
		}
		return fail(err)
	}
	e.rtr = rtr

	if opts.Obs != nil {
		hydra.RegisterMetrics(opts.Obs)
		worker.RegisterMetrics(opts.Obs)
		journal.RegisterMetrics(opts.Obs)
	}

	ctx, cancel := context.WithCancel(context.Background())
	e.cancel = cancel
	cores := opts.CoresPerWorker
	if cores <= 0 {
		cores = 1
	}
	for i := 0; i < opts.LocalWorkers; i++ {
		// Home instance by round-robin; the rest of the rotation follows in
		// order, so a worker whose instance dies fails over to the next one.
		home := i % len(e.addrs)
		rotation := make([]string, 0, len(e.addrs)-1)
		for k := 1; k < len(e.addrs); k++ {
			rotation = append(rotation, e.addrs[(home+k)%len(e.addrs)])
		}
		w, err := worker.New(worker.Config{
			ID:                fmt.Sprintf("local-%d", i),
			Host:              fmt.Sprintf("localhost/%d", i),
			Cores:             cores,
			Coord:             []int{i % 8, (i / 8) % 8, i / 64},
			DispatcherAddr:    e.addrs[home],
			DispatcherAddrs:   rotation,
			Runner:            opts.Runner,
			HeartbeatInterval: 250 * time.Millisecond,
			JSONOnly:          opts.JSONWire,
		})
		if err != nil {
			e.Close()
			return nil, err
		}
		e.workers = append(e.workers, w)
		e.wg.Add(1)
		go func(w *worker.Worker) {
			defer e.wg.Done()
			w.Run(ctx)
		}(w)
	}
	deadline := time.Now().Add(10 * time.Second)
	for e.workerTotal() < opts.LocalWorkers {
		if time.Now().After(deadline) {
			e.Close()
			return nil, fmt.Errorf("core: only %d/%d local workers registered", e.workerTotal(), opts.LocalWorkers)
		}
		time.Sleep(time.Millisecond)
	}
	return e, nil
}

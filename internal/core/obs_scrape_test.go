package core

// End-to-end scrape test for the observability endpoint: a real engine with
// local workers runs a mixed batch while an obs.Server serves the registry,
// and the /metrics exposition must carry live values from every layer —
// dispatcher counters and histograms, PMI wire-up, and worker counters.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/mpi"
	"jets/internal/obs"
)

// metricValue extracts an unlabeled series' value from an exposition body.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("unparseable value for %s: %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition", name)
	return 0
}

func scrape(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsScrapeLiveEngine(t *testing.T) {
	reg := obs.NewRegistry()
	runner := hydra.NewFuncRunner()
	runner.Register("mpi-app", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		comm, err := mpi.InitEnvFrom(env)
		if err != nil {
			return 1
		}
		defer comm.Close()
		if err := comm.Barrier(); err != nil {
			return 2
		}
		return 0
	})
	runner.Register("seq-app", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		fmt.Fprintln(stdout, "ok")
		return 0
	})
	eng, err := NewEngine(Options{LocalWorkers: 2, Runner: runner, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	srv, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The hydra/PMI/worker instruments are process-global (shared by every
	// engine in this test binary), so assert their growth across the batch
	// rather than absolute values.
	before := scrape(t, srv.Addr(), "/metrics")

	jobs := []dispatch.Job{
		{Spec: hydra.JobSpec{JobID: "m1", NProcs: 2, Cmd: "mpi-app"}, Type: dispatch.MPI},
		{Spec: hydra.JobSpec{JobID: "s1", NProcs: 1, Cmd: "seq-app"}, Type: dispatch.Sequential},
		{Spec: hydra.JobSpec{JobID: "s2", NProcs: 1, Cmd: "seq-app"}, Type: dispatch.Sequential},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := eng.RunBatch(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 0 {
		t.Fatalf("batch failures: %+v", rep.Results)
	}

	body := scrape(t, srv.Addr(), "/metrics")
	for _, want := range []string{
		// Dispatcher counters sampled from the stats atomics.
		"jets_jobs_submitted_total 3",
		"jets_jobs_completed_total 3",
		"jets_jobs_failed_total 0",
		"jets_tasks_dispatched_total 4",
		"jets_workers_joined_total 2",
		// Live gauges: workers still registered, nothing queued or running.
		"jets_workers 2",
		"jets_queued_jobs 0",
		"jets_running_jobs 0",
		// Histograms observed every job.
		"jets_dispatch_queue_wait_seconds_count 3",
		"jets_dispatch_assembly_seconds_count 3",
		"jets_job_duration_seconds_count 3",
		// Per-shard labeled series exist.
		`jets_shard_idle_workers{shard="0"}`,
		// Exposition-format headers.
		"# TYPE jets_job_duration_seconds histogram",
		"# TYPE jets_workers gauge",
		"# TYPE jets_jobs_submitted_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Cross-layer deltas: one mpiexec and PMI wire-up for the MPI job, four
	// tasks executed by the local workers, and no aborts.
	for _, d := range []struct {
		name string
		want float64
	}{
		{"jets_pmi_wireup_seconds_count", 1},
		{"jets_mpiexec_starts_total", 1},
		{"jets_mpiexec_aborts_total", 0},
		{"jets_worker_tasks_executed_total", 4},
	} {
		got := metricValue(t, body, d.name) - metricValue(t, before, d.name)
		if got != d.want {
			t.Errorf("%s grew by %g across the batch, want %g", d.name, got, d.want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}
	if !strings.Contains(scrape(t, srv.Addr(), "/debug/vars"), `"jets"`) {
		t.Error("/debug/vars missing jets snapshot")
	}
	if !strings.Contains(scrape(t, srv.Addr(), "/debug/pprof/goroutine?debug=1"), "goroutine") {
		t.Error("/debug/pprof/goroutine not serving")
	}
}

package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/proto"
)

// failAfter is a writer standing in for a client that disconnects
// mid-stream: the first n writes succeed, every later one errors.
type failAfter struct {
	buf  bytes.Buffer
	n    int
	errs int
}

var errClientGone = errors.New("client disconnected")

// syncBuf is a mutex-guarded buffer so the test can poll while the router
// writes from dispatcher goroutines.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		w.errs++
		return 0, errClientGone
	}
	w.n--
	return w.buf.Write(p)
}

func TestOutputRouterChunkOrdering(t *testing.T) {
	r := NewOutputRouter()
	var a, b bytes.Buffer
	r.Attach("ta", &a)
	r.Attach("tb", &b)
	// Interleave two tasks' numbered chunks; each task's stream must come
	// out in exactly arrival order.
	for i := 0; i < 50; i++ {
		r.HandleChunk("ta", "stdout", []byte(fmt.Sprintf("a%02d.", i)))
		r.HandleChunk("tb", "stdout", []byte(fmt.Sprintf("b%02d.", i)))
	}
	for name, got := range map[string]string{"a": a.String(), "b": b.String()} {
		want := ""
		for i := 0; i < 50; i++ {
			want += fmt.Sprintf("%s%02d.", name, i)
		}
		if got != want {
			t.Fatalf("task %s stream out of order:\ngot  %q\nwant %q", name, got, want)
		}
	}
}

func TestOutputRouterConcurrentTasksKeepPerTaskOrder(t *testing.T) {
	r := NewOutputRouter()
	const tasks, chunks = 8, 200
	bufs := make([]*bytes.Buffer, tasks)
	for i := range bufs {
		bufs[i] = &bytes.Buffer{}
		r.Attach(fmt.Sprintf("t%d", i), bufs[i])
	}
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("t%d", i)
			for j := 0; j < chunks; j++ {
				r.HandleChunk(id, "stdout", []byte{byte(j)})
			}
		}(i)
	}
	wg.Wait()
	for i, buf := range bufs {
		got := buf.Bytes()
		if len(got) != chunks {
			t.Fatalf("task %d: %d chunks", i, len(got))
		}
		for j := 0; j < chunks; j++ {
			if got[j] != byte(j) {
				t.Fatalf("task %d: chunk %d reordered (got %d)", i, j, got[j])
			}
		}
	}
}

func TestOutputRouterTruncationOnDisconnect(t *testing.T) {
	r := NewOutputRouter()
	w := &failAfter{n: 3}
	var healthy bytes.Buffer
	r.Attach("gone", w)
	r.Attach("fine", &healthy)
	for i := 0; i < 10; i++ {
		r.HandleChunk("gone", "stdout", []byte{byte('0' + i)})
		r.HandleChunk("fine", "stdout", []byte{byte('0' + i)})
	}
	if got := w.buf.String(); got != "012" {
		t.Fatalf("truncated stream delivered %q, want the 3 pre-disconnect chunks", got)
	}
	if w.errs != 1 {
		t.Fatalf("writer hit %d times after failing; truncation must stop retries", w.errs)
	}
	err, cut := r.Truncated("gone")
	if !cut || !errors.Is(err, errClientGone) {
		t.Fatalf("Truncated = (%v, %v)", err, cut)
	}
	if _, cut := r.Truncated("fine"); cut {
		t.Fatal("healthy task marked truncated")
	}
	if healthy.String() != "0123456789" {
		t.Fatalf("healthy stream disturbed: %q", healthy.String())
	}
	// Re-attaching (a client reconnect) clears the truncation.
	var again bytes.Buffer
	r.Attach("gone", &again)
	r.HandleChunk("gone", "stdout", []byte("x"))
	if again.String() != "x" {
		t.Fatalf("reattached stream got %q", again.String())
	}
}

func TestOutputRouterFallbackAndDetach(t *testing.T) {
	r := NewOutputRouter()
	var fb bytes.Buffer
	r.Fallback = &fb
	r.HandleChunk("unknown", "stdout", []byte("lost?"))
	if fb.String() != "lost?" {
		t.Fatalf("fallback got %q", fb.String())
	}
	var w bytes.Buffer
	r.Attach("t", &w)
	r.HandleChunk("t", "stdout", []byte("a"))
	r.Detach("t")
	r.HandleChunk("t", "stdout", []byte("b"))
	if w.String() != "a" || fb.String() != "lost?b" {
		t.Fatalf("writer=%q fallback=%q", w.String(), fb.String())
	}
}

func TestOutputRouterHandleFrame(t *testing.T) {
	r := NewOutputRouter()
	var w bytes.Buffer
	r.Attach("tf", &w)
	a, b := proto.Pipe()
	defer a.Close()
	defer b.Close()
	a.EnableBinary()
	errc := make(chan error, 1)
	go func() {
		errc <- a.Send(&proto.Envelope{Kind: proto.KindOutput, Output: &proto.Output{
			TaskID: "tf", Stream: "stdout", Data: []byte("framed"),
		}})
	}()
	f, err := b.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	r.HandleFrame(f)
	f.Release()
	if w.String() != "framed" {
		t.Fatalf("got %q", w.String())
	}
}

// TestEngineOutputThroughRouter drives the full output path: worker stdout
// -> dispatcher -> Options hooks -> router -> per-task buffer, with a
// disconnecting client truncating one task while another completes.
func TestEngineOutputThroughRouter(t *testing.T) {
	r := NewOutputRouter()
	runner := hydra.NewFuncRunner()
	runner.Register("say", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		io.WriteString(stdout, args[0])
		return 0
	})
	eng, err := NewEngine(Options{
		LocalWorkers:  2,
		Runner:        runner,
		OnOutputFrame: r.HandleFrame,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var ok syncBuf
	cut := &failAfter{n: 0} // disconnected before the first chunk
	r.Attach("good/seq", &ok)
	r.Attach("bad/seq", cut)
	for _, spec := range []struct{ id, msg string }{{"good", "kept"}, {"bad", "dropped"}} {
		h, serr := eng.Submit(dispatch.Job{
			Spec: hydra.JobSpec{JobID: spec.id, NProcs: 1, Cmd: "say", Args: []string{spec.msg}},
			Type: dispatch.Sequential,
		})
		if serr != nil {
			t.Fatal(serr)
		}
		if res := h.Wait(); res.Failed {
			t.Fatalf("%s failed: %s", spec.id, res.Err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for ok.String() != "kept" {
		if time.Now().After(deadline) {
			t.Fatalf("good task output %q", ok.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Output frames are asynchronous; the bad task's first (and truncating)
	// chunk may land after the job result does.
	for {
		if _, truncated := r.Truncated("bad/seq"); truncated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("disconnected client's task not marked truncated")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if cut.buf.Len() != 0 {
		t.Fatalf("truncated task delivered %q", cut.buf.String())
	}
}

// Package core is the JETS engine: the stand-alone form of the system
// (paper §5.1). It wires the central dispatcher to a set of pilot-job
// workers, parses the paper's input-file format
//
//	MPI: 4 namd2.sh input-1.pdb output-1.log
//	MPI: 8 namd2.sh input-2.pdb output-2.log
//
// and runs batches to completion, reporting per-job results and the Eq. (1)
// utilization summary. Hostnames are never part of a job specification: the
// engine assembles groups dynamically from whichever workers are available,
// which is the essential JETS property.
package core

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/journal"
	"jets/internal/metrics"
	"jets/internal/obs"
	"jets/internal/proto"
	"jets/internal/router"
	"jets/internal/worker"
)

// Options configures an Engine.
type Options struct {
	// LocalWorkers, when positive, starts that many in-process worker
	// agents connected over loopback TCP — the single-machine form of an
	// allocation. Zero means workers join externally (cmd/jets-worker).
	LocalWorkers int
	// CoresPerWorker is reported by local workers at registration.
	CoresPerWorker int
	// Runner executes user processes on local workers; defaults to
	// hydra.ExecRunner (real subprocesses).
	Runner hydra.Runner
	// Queue and Group select scheduling policies (defaults: FIFO, FCFS).
	// Setting Queue forces single-shard scheduling (one policy instance
	// cannot be split); use NewQueue to combine a policy with sharding.
	Queue dispatch.QueuePolicy
	Group dispatch.GroupPolicy
	// NewQueue constructs one queue policy per scheduling shard.
	NewQueue func() dispatch.QueuePolicy
	// Shards is the scheduling-shard count; 0 derives it from GOMAXPROCS.
	Shards int
	// ListenAddr is the dispatcher's listen endpoint for external workers;
	// empty binds an ephemeral loopback port.
	ListenAddr string
	// MaxJobRetries for worker-fault resubmission.
	MaxJobRetries int
	// RetryBackoff/RetryBackoffMax shape the capped per-attempt delay
	// before a faulted job is requeued (see dispatch.Config.RetryBackoff).
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// HeartbeatTimeout for declaring workers dead; default 10s.
	HeartbeatTimeout time.Duration
	// JobTimeout bounds each job; 0 disables.
	JobTimeout time.Duration
	// OnOutput receives task output; nil discards.
	OnOutput func(taskID, stream string, data []byte)
	// OnOutputFrame receives each raw output frame before OnOutput, for
	// zero-copy relay (borrow semantics — see dispatch.Config.OnOutputFrame).
	OnOutputFrame func(*proto.Frame)
	// OnEvent receives dispatcher trace events; nil disables tracing.
	OnEvent func(dispatch.Event)
	// WriteCoalesce batches up to N outbound frames per flush on each
	// worker connection under backlog; <= 1 flushes every frame.
	WriteCoalesce int
	// JSONWire forces local workers onto the v1 JSON wire format instead
	// of negotiating the binary fast path (A/B measurement, interop tests).
	JSONWire bool
	// Obs, when non-nil, exports the dispatcher's instrumentation plus the
	// hydra/PMI and worker package metrics through the registry, ready for
	// obs.Serve.
	Obs *obs.Registry
	// Journal, when non-nil, makes dispatcher job state durable and recovers
	// prior state at startup (see dispatch.Config.Journal). The dispatcher
	// takes ownership and closes it. Takes precedence over DataDir.
	Journal journal.Journal
	// DataDir, when non-empty and Journal is nil, opens (creating the
	// directory if needed) a write-ahead journal there — the stand-alone
	// tool's -data-dir flag. Jobs accepted by a previous run that never
	// completed are rebuilt at startup; RecoveredJobs exposes their handles.
	DataDir string
	// HotQueueJobs bounds the fully-hydrated in-memory queue window per
	// scheduling shard; the excess backlog spills to disk as a cold tail
	// (see dispatch.Config.HotQueueJobs). 0 uses the dispatcher default;
	// negative disables spilling.
	HotQueueJobs int
	// CompactSegments triggers an online journal checkpoint once the WAL
	// exceeds that many segment files (see dispatch.Config.CompactSegments).
	// 0 uses the dispatcher default; negative disables online compaction.
	CompactSegments int
	// Federate, when >= 2, runs that many dispatcher instances in this
	// process behind a work router (internal/router): submissions partition
	// across the instances by consistent hash with least-loaded fallback,
	// queued work rebalances between them, and local workers spread across
	// the instances round-robin (each carrying the full address rotation for
	// failover). With DataDir set, each instance journals under
	// DataDir/inst<i> and the router's routing table under DataDir/router,
	// so any subset of the federation recovers after a crash. 0 or 1 keeps
	// the single-dispatcher engine unchanged.
	Federate int
	// FederatePeers adds out-of-process dispatcher instances (by address) to
	// the federation; the router attaches to them over the wire protocol.
	FederatePeers []string
}

// Engine is a running JETS instance — or, with Options.Federate, a running
// federation of instances behind one router presenting the same API.
type Engine struct {
	d     *dispatch.Dispatcher   // first (or only) instance
	insts []*dispatch.Dispatcher // all instances; len > 1 when federated
	rtr   *router.Router         // nil in single-dispatcher mode
	addr  string
	addrs []string // every instance's worker endpoint

	cancel  context.CancelFunc
	wg      sync.WaitGroup
	workers []*worker.Worker
}

// NewEngine starts the dispatcher(s) and any local workers.
func NewEngine(opts Options) (*Engine, error) {
	if opts.Federate >= 2 || len(opts.FederatePeers) > 0 {
		return newFederatedEngine(opts)
	}
	jnl := opts.Journal
	if jnl == nil && opts.DataDir != "" {
		w, err := journal.OpenWAL(journal.Options{Dir: opts.DataDir})
		if err != nil {
			return nil, fmt.Errorf("core: open journal: %w", err)
		}
		jnl = w
	}
	d := dispatch.New(dispatch.Config{
		Addr:             opts.ListenAddr,
		HeartbeatTimeout: opts.HeartbeatTimeout,
		MaxJobRetries:    opts.MaxJobRetries,
		RetryBackoff:     opts.RetryBackoff,
		RetryBackoffMax:  opts.RetryBackoffMax,
		Queue:            opts.Queue,
		NewQueue:         opts.NewQueue,
		Shards:           opts.Shards,
		Group:            opts.Group,
		JobTimeout:       opts.JobTimeout,
		OnOutput:         opts.OnOutput,
		OnOutputFrame:    opts.OnOutputFrame,
		OnEvent:          opts.OnEvent,
		WriteCoalesce:    opts.WriteCoalesce,
		Obs:              opts.Obs,
		Journal:          jnl,
		HotQueueJobs:     opts.HotQueueJobs,
		CompactSegments:  opts.CompactSegments,
		SpillDir:         spillDir(opts.DataDir),
	})
	if opts.Obs != nil {
		hydra.RegisterMetrics(opts.Obs)
		worker.RegisterMetrics(opts.Obs)
		journal.RegisterMetrics(opts.Obs)
	}
	addr, err := d.Start()
	if err != nil {
		return nil, err
	}
	e := &Engine{d: d, insts: []*dispatch.Dispatcher{d}, addr: addr, addrs: []string{addr}}
	ctx, cancel := context.WithCancel(context.Background())
	e.cancel = cancel

	cores := opts.CoresPerWorker
	if cores <= 0 {
		cores = 1
	}
	for i := 0; i < opts.LocalWorkers; i++ {
		w, err := worker.New(worker.Config{
			ID:                fmt.Sprintf("local-%d", i),
			Host:              fmt.Sprintf("localhost/%d", i),
			Cores:             cores,
			Coord:             []int{i % 8, (i / 8) % 8, i / 64},
			DispatcherAddr:    addr,
			Runner:            opts.Runner,
			HeartbeatInterval: 250 * time.Millisecond,
			JSONOnly:          opts.JSONWire,
		})
		if err != nil {
			cancel()
			d.Close()
			return nil, err
		}
		e.workers = append(e.workers, w)
		e.wg.Add(1)
		go func(w *worker.Worker) {
			defer e.wg.Done()
			w.Run(ctx)
		}(w)
	}
	// Wait for local workers to come up so the first batch does not race
	// registration.
	deadline := time.Now().Add(10 * time.Second)
	for d.Workers() < opts.LocalWorkers {
		if time.Now().After(deadline) {
			e.Close()
			return nil, fmt.Errorf("core: only %d/%d local workers registered", d.Workers(), opts.LocalWorkers)
		}
		time.Sleep(time.Millisecond)
	}
	return e, nil
}

// spillDir derives the cold-queue spill directory from a data directory:
// specs spilled to disk live beside the journal they are referenced from, so
// recovery after a restart finds both or neither. Empty (no DataDir) keeps
// the dispatcher's ephemeral temp-dir store.
func spillDir(dataDir string) string {
	if dataDir == "" {
		return ""
	}
	return filepath.Join(dataDir, "spill")
}

// Addr returns the dispatcher endpoint for external workers (the first
// instance's, when federated; Addrs has them all).
func (e *Engine) Addr() string { return e.addr }

// Addrs returns every instance's worker endpoint.
func (e *Engine) Addrs() []string { return append([]string(nil), e.addrs...) }

// Dispatcher exposes the underlying dispatcher (the first instance, when
// federated) for advanced composition.
func (e *Engine) Dispatcher() *dispatch.Dispatcher { return e.d }

// Dispatchers exposes every federated instance (a single-element slice in
// single-dispatcher mode).
func (e *Engine) Dispatchers() []*dispatch.Dispatcher {
	return append([]*dispatch.Dispatcher(nil), e.insts...)
}

// Router exposes the federation router; nil in single-dispatcher mode.
func (e *Engine) Router() *router.Router { return e.rtr }

// Workers returns the engine's local worker agents (for fault injection in
// tests and experiments).
func (e *Engine) Workers() []*worker.Worker { return e.workers }

// RecoveredJobs returns the handles of jobs rebuilt from the journal at
// startup (empty without a journal). A restarted engine waits on them to
// finish the workload it inherited. Federated engines report the router's
// recovered routing table — the handles clients were waiting on.
func (e *Engine) RecoveredJobs() []*dispatch.Handle {
	if e.rtr != nil {
		return e.rtr.RecoveredJobs()
	}
	return e.d.RecoveredJobs()
}

// RecoveryError reports a journal replay failure during startup; recovery is
// best-effort past the error point (see dispatch.RecoveryError).
func (e *Engine) RecoveryError() error {
	var errs []error
	for _, d := range e.insts {
		errs = append(errs, d.RecoveryError())
	}
	if e.rtr != nil {
		errs = append(errs, e.rtr.RecoveryError())
	}
	return errors.Join(errs...)
}

// Submit enqueues one job, through the router when federated.
func (e *Engine) Submit(job dispatch.Job) (*dispatch.Handle, error) {
	if e.rtr != nil {
		return e.rtr.Submit(job)
	}
	return e.d.Submit(job)
}

// SubmitBatch enqueues a group of jobs in one dispatcher pass; see
// dispatch.SubmitBatch.
func (e *Engine) SubmitBatch(jobs []dispatch.Job) ([]*dispatch.Handle, error) {
	if e.rtr != nil {
		return e.rtr.SubmitBatch(jobs)
	}
	return e.d.SubmitBatch(jobs)
}

// StageFile pushes a file to every worker's local cache (every instance's
// workers, when federated).
func (e *Engine) StageFile(name string, data []byte) {
	for _, d := range e.insts {
		d.StageFile(name, data)
	}
}

// Close shuts the engine down without draining: router first (stops
// rebalancing and fails un-routed handles), then every instance.
func (e *Engine) Close() {
	if e.rtr != nil {
		e.rtr.Close()
	}
	for _, d := range e.insts {
		d.Close()
	}
	e.cancel()
	e.wg.Wait()
}

// workerTotal sums registered workers across instances.
func (e *Engine) workerTotal() int {
	n := 0
	for _, d := range e.insts {
		n += d.Workers()
	}
	return n
}

// records merges per-instance job records (submission interleaving across
// instances has no global order; callers summarize, they don't sequence).
func (e *Engine) records() []metrics.JobRecord {
	if len(e.insts) == 1 {
		return e.d.Records()
	}
	var recs []metrics.JobRecord
	for _, d := range e.insts {
		recs = append(recs, d.Records()...)
	}
	return recs
}

// BatchReport summarizes one batch execution.
type BatchReport struct {
	Results []dispatch.JobResult
	Records []metrics.JobRecord
	Summary metrics.Summary
	// Allocation is the worker count used for the utilization summary.
	Allocation int
	Elapsed    time.Duration
}

// Failed counts failed jobs.
func (r *BatchReport) Failed() int {
	n := 0
	for _, res := range r.Results {
		if res.Failed {
			n++
		}
	}
	return n
}

// RunBatch submits all jobs and waits for completion (bounded by ctx).
func (e *Engine) RunBatch(ctx context.Context, jobs []dispatch.Job) (*BatchReport, error) {
	start := time.Now()
	handles := make([]*dispatch.Handle, 0, len(jobs))
	for _, j := range jobs {
		h, err := e.Submit(j)
		if err != nil {
			return nil, fmt.Errorf("core: submit %s: %w", j.Spec.JobID, err)
		}
		handles = append(handles, h)
	}
	report := &BatchReport{Allocation: e.workerTotal()}
	for _, h := range handles {
		select {
		case <-h.Done():
		case <-ctx.Done():
			return report, ctx.Err()
		}
		res, _ := h.TryResult()
		report.Results = append(report.Results, res)
	}
	report.Elapsed = time.Since(start)
	report.Records = e.records()
	report.Summary = metrics.Summarize(report.Records, report.Allocation)
	return report, nil
}

// RunFile parses the stand-alone input format and runs the batch.
func (e *Engine) RunFile(ctx context.Context, r io.Reader) (*BatchReport, error) {
	jobs, err := ParseInput(r)
	if err != nil {
		return nil, err
	}
	return e.RunBatch(ctx, jobs)
}

// ParseInput reads the stand-alone JETS input format: one job per line.
//
//	MPI: <nprocs> <cmd> [args...]   — an MPI job on nprocs nodes
//	SEQ: <cmd> [args...]            — a sequential task
//	<cmd> [args...]                 — shorthand for SEQ:
//
// Blank lines and lines starting with '#' are ignored. Job IDs are assigned
// from the line order.
func ParseInput(r io.Reader) ([]dispatch.Job, error) {
	var jobs []dispatch.Job
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		job, err := parseLine(line, lineNo)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: reading input: %w", err)
	}
	return jobs, nil
}

func parseLine(line string, lineNo int) (dispatch.Job, error) {
	id := fmt.Sprintf("job%d", lineNo)
	switch {
	case strings.HasPrefix(line, "MPI:"):
		fields := strings.Fields(strings.TrimPrefix(line, "MPI:"))
		if len(fields) < 2 {
			return dispatch.Job{}, fmt.Errorf("core: line %d: MPI line needs <nprocs> <cmd>", lineNo)
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil || n <= 0 {
			return dispatch.Job{}, fmt.Errorf("core: line %d: bad process count %q", lineNo, fields[0])
		}
		return dispatch.Job{
			Spec: hydra.JobSpec{JobID: id, NProcs: n, Cmd: fields[1], Args: fields[2:]},
			Type: dispatch.MPI,
		}, nil
	case strings.HasPrefix(line, "SEQ:"):
		fields := strings.Fields(strings.TrimPrefix(line, "SEQ:"))
		if len(fields) < 1 {
			return dispatch.Job{}, fmt.Errorf("core: line %d: SEQ line needs <cmd>", lineNo)
		}
		return dispatch.Job{
			Spec: hydra.JobSpec{JobID: id, NProcs: 1, Cmd: fields[0], Args: fields[1:]},
			Type: dispatch.Sequential,
		}, nil
	default:
		fields := strings.Fields(line)
		return dispatch.Job{
			Spec: hydra.JobSpec{JobID: id, NProcs: 1, Cmd: fields[0], Args: fields[1:]},
			Type: dispatch.Sequential,
		}, nil
	}
}

// FormatReport renders a batch report in the jets tool's output style.
func FormatReport(r *BatchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "jobs:        %d (%d failed)\n", len(r.Results), r.Failed())
	fmt.Fprintf(&b, "allocation:  %d workers\n", r.Allocation)
	fmt.Fprintf(&b, "makespan:    %v\n", r.Summary.Makespan.Round(time.Millisecond))
	fmt.Fprintf(&b, "mean run:    %v\n", r.Summary.MeanRun.Round(time.Millisecond))
	fmt.Fprintf(&b, "rate:        %.1f jobs/s\n", r.Summary.Rate)
	fmt.Fprintf(&b, "utilization: %.1f%%\n", 100*r.Summary.Utilization)
	return b.String()
}

package core

import (
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"jets/internal/dispatch"
	"jets/internal/hydra"
)

func TestJSONHandlerParse(t *testing.T) {
	in := `
# comment
{"id":"a","type":"mpi","nprocs":4,"cmd":"namd2","args":["-steps","10"],"priority":2,"wall_ms":5000}

{"type":"seq","cmd":"hostname"}
{"cmd":"date"}
`
	jobs, err := JSONHandler{}.Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("jobs=%d", len(jobs))
	}
	a := jobs[0]
	if a.Type != dispatch.MPI || a.Spec.NProcs != 4 || a.Priority != 2 ||
		a.Spec.WallLimit != 5*time.Second || len(a.Spec.Args) != 2 {
		t.Fatalf("job a %+v", a)
	}
	if jobs[1].Type != dispatch.Sequential || jobs[1].Spec.NProcs != 1 {
		t.Fatalf("job b %+v", jobs[1])
	}
	if jobs[2].Spec.JobID == "" || jobs[2].Spec.Cmd != "date" {
		t.Fatalf("job c %+v", jobs[2])
	}
}

func TestJSONHandlerErrors(t *testing.T) {
	for _, in := range []string{
		`{"cmd":"x","bogus":1}`,               // unknown field
		`{"type":"mpi","cmd":"x"}`,            // mpi without nprocs
		`{"type":"seq","cmd":"x","nprocs":3}`, // seq with nprocs
		`{"type":"weird","cmd":"x"}`,          // unknown type
		`{"type":"seq"}`,                      // missing cmd
		`{not json}`,                          // malformed
	} {
		if _, err := (JSONHandler{}).Parse(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestHandlerFor(t *testing.T) {
	if h, err := HandlerFor(""); err != nil || h.Name() != "lines" {
		t.Fatalf("default handler %v %v", h, err)
	}
	if h, err := HandlerFor("json"); err != nil || h.Name() != "json" {
		t.Fatalf("json handler %v %v", h, err)
	}
	if _, err := HandlerFor("xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunHandlerEndToEnd(t *testing.T) {
	runner := hydra.NewFuncRunner()
	runner.Register("ok", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	eng, err := NewEngine(Options{LocalWorkers: 2, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	in := `{"type":"mpi","nprocs":2,"cmd":"ok"}
{"cmd":"ok"}`
	rep, err := eng.RunHandler(context.Background(), JSONHandler{}, strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 0 || rep.Summary.Jobs != 2 {
		t.Fatalf("report %+v", rep.Summary)
	}
}

package core

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/proto"
)

// Handler parses one job-source format. The paper (§5) structures the
// dispatcher input as "multiple scheduler components called handlers. Each
// handler has a specific input file format, which is basically a list of
// literal command lines." Two handlers ship here: the classic line format
// and a JSON-lines format carrying the full job specification.
type Handler interface {
	// Name identifies the format ("lines", "json").
	Name() string
	// Parse reads the complete job list.
	Parse(r io.Reader) ([]dispatch.Job, error)
}

// LineHandler parses the stand-alone format of §5.1 (MPI:/SEQ:/bare lines).
type LineHandler struct{}

// Name implements Handler.
func (LineHandler) Name() string { return "lines" }

// Parse implements Handler.
func (LineHandler) Parse(r io.Reader) ([]dispatch.Job, error) { return ParseInput(r) }

// JSONHandler parses one JSON object per line:
//
//	{"id":"j1","type":"mpi","nprocs":4,"cmd":"namd2","args":["-steps","10"],
//	 "env":["X=1"],"priority":2,"wall_ms":60000}
//
// Unknown fields are rejected so typos fail loudly.
type JSONHandler struct{}

// Name implements Handler.
func (JSONHandler) Name() string { return "json" }

type jsonJob struct {
	ID       string   `json:"id"`
	Type     string   `json:"type"` // "mpi" or "seq" (default)
	NProcs   int      `json:"nprocs"`
	Cmd      string   `json:"cmd"`
	Args     []string `json:"args"`
	Env      []string `json:"env"`
	Dir      string   `json:"dir"`
	Priority int      `json:"priority"`
	WallMS   int64    `json:"wall_ms"`
}

// Parse implements Handler.
func (JSONHandler) Parse(r io.Reader) ([]dispatch.Job, error) {
	var jobs []dispatch.Job
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		var j jsonJob
		if err := dec.Decode(&j); err != nil {
			return nil, fmt.Errorf("core: json line %d: %w", lineNo, err)
		}
		if j.Cmd == "" {
			return nil, fmt.Errorf("core: json line %d: missing cmd", lineNo)
		}
		id := j.ID
		if id == "" {
			id = fmt.Sprintf("job%d", lineNo)
		}
		job := dispatch.Job{
			Spec: hydra.JobSpec{
				JobID: id, Cmd: j.Cmd, Args: j.Args, Env: j.Env, Dir: j.Dir,
			},
			Priority: j.Priority,
		}
		if j.WallMS > 0 {
			job.Spec.WallLimit = time.Duration(j.WallMS) * time.Millisecond
		}
		switch strings.ToLower(j.Type) {
		case "mpi":
			job.Type = dispatch.MPI
			job.Spec.NProcs = j.NProcs
			if j.NProcs <= 0 {
				return nil, fmt.Errorf("core: json line %d: mpi job needs nprocs", lineNo)
			}
		case "", "seq", "sequential":
			job.Type = dispatch.Sequential
			job.Spec.NProcs = 1
			if j.NProcs > 1 {
				return nil, fmt.Errorf("core: json line %d: sequential job with nprocs %d", lineNo, j.NProcs)
			}
		default:
			return nil, fmt.Errorf("core: json line %d: unknown type %q", lineNo, j.Type)
		}
		jobs = append(jobs, job)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return jobs, nil
}

// HandlerFor selects a handler by format name.
func HandlerFor(format string) (Handler, error) {
	switch strings.ToLower(format) {
	case "", "lines":
		return LineHandler{}, nil
	case "json":
		return JSONHandler{}, nil
	}
	return nil, fmt.Errorf("core: unknown input format %q (want lines or json)", format)
}

// RunHandler parses r with the handler and runs the batch.
func (e *Engine) RunHandler(ctx context.Context, h Handler, r io.Reader) (*BatchReport, error) {
	jobs, err := h.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("core: %s handler: %w", h.Name(), err)
	}
	return e.RunBatch(ctx, jobs)
}

// OutputRouter is the output-side counterpart of the input handlers: it
// fans task output chunks to per-task writers (the paper's application ->
// proxy -> mpiexec -> JETS -> file routing ends here). Chunks are written
// in arrival order per task, and a task whose writer fails — a client that
// disconnected mid-stream — is truncated: the error is recorded, the writer
// detached, and every later chunk for that task dropped instead of wedging
// the batch.
//
// HandleChunk matches Options.OnOutput and HandleFrame matches
// Options.OnOutputFrame, so a router plugs into an Engine directly.
type OutputRouter struct {
	mu        sync.Mutex
	writers   map[string]io.Writer
	truncated map[string]error
	// Fallback receives chunks for tasks with no attached writer; nil
	// discards them.
	Fallback io.Writer
}

// NewOutputRouter returns an empty router.
func NewOutputRouter() *OutputRouter {
	return &OutputRouter{
		writers:   map[string]io.Writer{},
		truncated: map[string]error{},
	}
}

// Attach routes a task's future chunks to w, clearing any truncation state
// from a previous attachment under the same ID.
func (r *OutputRouter) Attach(taskID string, w io.Writer) {
	r.mu.Lock()
	r.writers[taskID] = w
	delete(r.truncated, taskID)
	r.mu.Unlock()
}

// Detach stops routing a task; later chunks fall through to Fallback.
func (r *OutputRouter) Detach(taskID string) {
	r.mu.Lock()
	delete(r.writers, taskID)
	r.mu.Unlock()
}

// Truncated reports the writer error that cut a task's stream short, if any.
func (r *OutputRouter) Truncated(taskID string) (error, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	err, ok := r.truncated[taskID]
	return err, ok
}

// HandleChunk routes one decoded output chunk (Options.OnOutput shape).
// The router lock spans the write, so chunks for one task are written in
// exactly their arrival order even when callers race.
func (r *OutputRouter) HandleChunk(taskID, stream string, data []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, cut := r.truncated[taskID]; cut {
		return
	}
	w, ok := r.writers[taskID]
	if !ok {
		if r.Fallback != nil {
			r.Fallback.Write(data)
		}
		return
	}
	if _, err := w.Write(data); err != nil {
		r.truncated[taskID] = err
		delete(r.writers, taskID)
	}
}

// HandleFrame routes one raw output frame (Options.OnOutputFrame shape,
// borrow semantics): it decodes within the call and never retains the frame.
func (r *OutputRouter) HandleFrame(f *proto.Frame) {
	env, err := f.Envelope()
	if err != nil || env.Output == nil {
		return
	}
	r.HandleChunk(env.Output.TaskID, env.Output.Stream, env.Output.Data)
}

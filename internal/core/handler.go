package core

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"jets/internal/dispatch"
	"jets/internal/hydra"
)

// Handler parses one job-source format. The paper (§5) structures the
// dispatcher input as "multiple scheduler components called handlers. Each
// handler has a specific input file format, which is basically a list of
// literal command lines." Two handlers ship here: the classic line format
// and a JSON-lines format carrying the full job specification.
type Handler interface {
	// Name identifies the format ("lines", "json").
	Name() string
	// Parse reads the complete job list.
	Parse(r io.Reader) ([]dispatch.Job, error)
}

// LineHandler parses the stand-alone format of §5.1 (MPI:/SEQ:/bare lines).
type LineHandler struct{}

// Name implements Handler.
func (LineHandler) Name() string { return "lines" }

// Parse implements Handler.
func (LineHandler) Parse(r io.Reader) ([]dispatch.Job, error) { return ParseInput(r) }

// JSONHandler parses one JSON object per line:
//
//	{"id":"j1","type":"mpi","nprocs":4,"cmd":"namd2","args":["-steps","10"],
//	 "env":["X=1"],"priority":2,"wall_ms":60000}
//
// Unknown fields are rejected so typos fail loudly.
type JSONHandler struct{}

// Name implements Handler.
func (JSONHandler) Name() string { return "json" }

type jsonJob struct {
	ID       string   `json:"id"`
	Type     string   `json:"type"` // "mpi" or "seq" (default)
	NProcs   int      `json:"nprocs"`
	Cmd      string   `json:"cmd"`
	Args     []string `json:"args"`
	Env      []string `json:"env"`
	Dir      string   `json:"dir"`
	Priority int      `json:"priority"`
	WallMS   int64    `json:"wall_ms"`
}

// Parse implements Handler.
func (JSONHandler) Parse(r io.Reader) ([]dispatch.Job, error) {
	var jobs []dispatch.Job
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		var j jsonJob
		if err := dec.Decode(&j); err != nil {
			return nil, fmt.Errorf("core: json line %d: %w", lineNo, err)
		}
		if j.Cmd == "" {
			return nil, fmt.Errorf("core: json line %d: missing cmd", lineNo)
		}
		id := j.ID
		if id == "" {
			id = fmt.Sprintf("job%d", lineNo)
		}
		job := dispatch.Job{
			Spec: hydra.JobSpec{
				JobID: id, Cmd: j.Cmd, Args: j.Args, Env: j.Env, Dir: j.Dir,
			},
			Priority: j.Priority,
		}
		if j.WallMS > 0 {
			job.Spec.WallLimit = time.Duration(j.WallMS) * time.Millisecond
		}
		switch strings.ToLower(j.Type) {
		case "mpi":
			job.Type = dispatch.MPI
			job.Spec.NProcs = j.NProcs
			if j.NProcs <= 0 {
				return nil, fmt.Errorf("core: json line %d: mpi job needs nprocs", lineNo)
			}
		case "", "seq", "sequential":
			job.Type = dispatch.Sequential
			job.Spec.NProcs = 1
			if j.NProcs > 1 {
				return nil, fmt.Errorf("core: json line %d: sequential job with nprocs %d", lineNo, j.NProcs)
			}
		default:
			return nil, fmt.Errorf("core: json line %d: unknown type %q", lineNo, j.Type)
		}
		jobs = append(jobs, job)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return jobs, nil
}

// HandlerFor selects a handler by format name.
func HandlerFor(format string) (Handler, error) {
	switch strings.ToLower(format) {
	case "", "lines":
		return LineHandler{}, nil
	case "json":
		return JSONHandler{}, nil
	}
	return nil, fmt.Errorf("core: unknown input format %q (want lines or json)", format)
}

// RunHandler parses r with the handler and runs the batch.
func (e *Engine) RunHandler(ctx context.Context, h Handler, r io.Reader) (*BatchReport, error) {
	jobs, err := h.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("core: %s handler: %w", h.Name(), err)
	}
	return e.RunBatch(ctx, jobs)
}

package proto

// Wire protocol v2: a compact binary encoding for the hot frame kinds.
//
// The JSON framing (v1) spends most of its per-frame cost in
// json.Marshal/Unmarshal and the base64 round trip for []byte payloads. At
// the dispatch rates the paper targets (thousands of proxy launches per
// second streamed to thousands of workers) that encode cost, not the
// network, bounds throughput. v2 keeps the 4-byte big-endian length prefix
// and replaces the payload of the five high-frequency kinds — work-request,
// task, result, output, heartbeat — with a varint-based binary layout.
//
// Negotiation happens at register time: the worker announces its maximum
// supported version in the register envelope's "proto" field, the
// dispatcher confirms the negotiated version in the registered ack, and
// only then do both sides start emitting binary frames. Old peers omit the
// field (zero value), so they negotiate v1 and never see a binary frame.
//
// Decoding needs no negotiation state at all: a JSON envelope always
// begins with '{' (0x7B), and every binary payload begins with the magic
// byte 0xBF, so Recv distinguishes the formats per frame. v2.1 extends the
// binary layout to the cold kinds register/registered/stage/staged/error —
// stage payloads are the largest frames on the wire and previously shipped
// base64-in-JSON. no-work and shutdown remain JSON on every connection,
// which keeps the wire debuggable and the fallback path continuously
// exercised. Frame-level relays use frame.go: a received frame's raw bytes
// can be forwarded to another connection without decode/re-encode.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Protocol versions negotiated at register time.
const (
	// VersionJSON is the seed wire format: length-prefixed JSON frames.
	VersionJSON uint8 = 1
	// VersionBinary adds the compact binary fast path for hot frame kinds.
	// v2.1 (same negotiated version: decoding is per-frame self-describing,
	// so adding kinds is backward compatible) extends the binary layout to
	// the cold kinds register, registered, stage, staged, and error, which
	// moves stage payloads — the largest frames on the wire — off
	// base64-in-JSON.
	VersionBinary uint8 = 2
	// MaxVersion is the highest version this build speaks.
	MaxVersion = VersionBinary
)

// Negotiate returns the version to use with a peer that announced the
// given maximum. Zero (a peer predating negotiation) and any unknown
// future version degrade safely: the former to JSON, the latter to the
// highest version this build speaks.
func Negotiate(peerMax uint8) uint8 {
	if peerMax >= VersionBinary {
		return VersionBinary
	}
	return VersionJSON
}

// binMagic is the first payload byte of every binary frame. JSON envelopes
// always start with '{', so the two formats are self-describing.
const binMagic = 0xBF

// ErrCorruptFrame is returned when a binary frame fails to decode.
var ErrCorruptFrame = errors.New("proto: corrupt binary frame")

// Binary kind codes. The hot kinds (1-5) shipped with v2; the cold kinds
// (6-10) with v2.1; the federation hot pair (11-12) with the router tier
// (decoding stays per-frame self-describing, so no version bump). Kinds
// without a code (no-work, shutdown, the federation control kinds) ride the
// JSON fallback, which keeps that path continuously exercised on every
// connection.
const (
	binWorkRequest = 1
	binTask        = 2
	binResult      = 3
	binOutput      = 4
	binHeartbeat   = 5
	binRegister    = 6
	binRegistered  = 7
	binStage       = 8
	binStaged      = 9
	binError       = 10
	binPeerSubmit  = 11
	binJobDone     = 12
)

// binKindOf maps a binary kind code to its Kind without decoding the frame
// body, so a relay can classify a frame from its first two payload bytes.
func binKindOf(code byte) (Kind, bool) {
	switch code {
	case binWorkRequest:
		return KindWorkRequest, true
	case binTask:
		return KindTask, true
	case binResult:
		return KindResult, true
	case binOutput:
		return KindOutput, true
	case binHeartbeat:
		return KindHeartbeat, true
	case binRegister:
		return KindRegister, true
	case binRegistered:
		return KindRegistered, true
	case binStage:
		return KindStage, true
	case binStaged:
		return KindStaged, true
	case binError:
		return KindError, true
	case binPeerSubmit:
		return KindPeerSubmit, true
	case binJobDone:
		return KindJobDone, true
	}
	return "", false
}

// appendBinary encodes e into buf if its kind has a binary form, returning
// the extended buffer and true. Kinds without a binary form (or hot kinds
// missing their payload) report false and the caller falls back to JSON.
func appendBinary(buf []byte, e *Envelope) ([]byte, bool) {
	switch e.Kind {
	case KindWorkRequest:
		buf = append(buf, binMagic, binWorkRequest)
		buf = appendUvarint(buf, e.Seq)
		return buf, true
	case KindTask:
		if e.Task == nil {
			return buf, false
		}
		t := e.Task
		buf = append(buf, binMagic, binTask)
		buf = appendUvarint(buf, e.Seq)
		buf = appendString(buf, t.TaskID)
		buf = appendString(buf, t.JobID)
		buf = appendString(buf, t.Cmd)
		buf = appendString(buf, t.Dir)
		buf = appendString(buf, t.Control)
		buf = appendString(buf, t.KVS)
		buf = appendStrings(buf, t.Args)
		buf = appendStrings(buf, t.Env)
		buf = appendVarint(buf, int64(t.Rank))
		buf = appendVarint(buf, int64(t.Size))
		buf = appendVarint(buf, int64(t.WallLimit))
		return buf, true
	case KindResult:
		if e.Result == nil {
			return buf, false
		}
		r := e.Result
		buf = append(buf, binMagic, binResult)
		buf = appendUvarint(buf, e.Seq)
		buf = appendString(buf, r.TaskID)
		buf = appendString(buf, r.JobID)
		buf = appendString(buf, r.Err)
		buf = appendVarint(buf, int64(r.ExitCode))
		buf = appendVarint(buf, int64(r.Elapsed))
		return buf, true
	case KindOutput:
		if e.Output == nil {
			return buf, false
		}
		o := e.Output
		buf = append(buf, binMagic, binOutput)
		buf = appendUvarint(buf, e.Seq)
		buf = appendString(buf, o.TaskID)
		buf = appendString(buf, o.Stream)
		buf = appendByteSlice(buf, o.Data)
		return buf, true
	case KindHeartbeat:
		if e.Heartbeat == nil {
			return buf, false
		}
		h := e.Heartbeat
		buf = append(buf, binMagic, binHeartbeat)
		buf = appendUvarint(buf, e.Seq)
		buf = appendString(buf, h.WorkerID)
		buf = appendBool(buf, h.Busy)
		buf = appendVarint(buf, int64(h.Uptime))
		return buf, true
	case KindRegister:
		if e.Register == nil {
			return buf, false
		}
		reg := e.Register
		buf = append(buf, binMagic, binRegister)
		buf = appendUvarint(buf, e.Seq)
		buf = append(buf, e.Proto)
		buf = appendString(buf, reg.WorkerID)
		buf = appendString(buf, reg.Host)
		buf = appendVarint(buf, int64(reg.Cores))
		buf = appendInts(buf, reg.Coord)
		return buf, true
	case KindRegistered:
		buf = append(buf, binMagic, binRegistered)
		buf = appendUvarint(buf, e.Seq)
		buf = append(buf, e.Proto)
		return buf, true
	case KindStage, KindStaged:
		if e.Stage == nil {
			return buf, false
		}
		s := e.Stage
		code := byte(binStage)
		if e.Kind == KindStaged {
			code = binStaged
		}
		buf = append(buf, binMagic, code)
		buf = appendUvarint(buf, e.Seq)
		buf = appendString(buf, s.Name)
		buf = appendString(buf, s.Path)
		buf = appendByteSlice(buf, s.Data)
		return buf, true
	case KindError:
		buf = append(buf, binMagic, binError)
		buf = appendUvarint(buf, e.Seq)
		buf = appendString(buf, e.Error)
		return buf, true
	case KindPeerSubmit:
		if e.PeerSubmit == nil {
			return buf, false
		}
		p := e.PeerSubmit
		buf = append(buf, binMagic, binPeerSubmit)
		buf = appendUvarint(buf, e.Seq)
		buf = appendString(buf, p.JobID)
		buf = appendString(buf, p.Cmd)
		buf = appendString(buf, p.Dir)
		buf = appendStrings(buf, p.Args)
		buf = appendStrings(buf, p.Env)
		buf = appendVarint(buf, int64(p.JobType))
		buf = appendVarint(buf, int64(p.Priority))
		buf = appendVarint(buf, int64(p.NProcs))
		buf = appendVarint(buf, int64(p.WallLimit))
		buf = appendVarint(buf, int64(p.Retries))
		buf = appendBool(buf, p.Stolen)
		return buf, true
	case KindJobDone:
		if e.JobDone == nil {
			return buf, false
		}
		jd := e.JobDone
		buf = append(buf, binMagic, binJobDone)
		buf = appendUvarint(buf, e.Seq)
		buf = appendString(buf, jd.JobID)
		buf = appendString(buf, jd.Err)
		buf = appendVarint(buf, int64(jd.Retries))
		buf = appendBool(buf, jd.Failed)
		buf = appendBool(buf, jd.Rejected)
		return buf, true
	default:
		return buf, false
	}
}

// decodeBinary parses one binary payload (including the magic byte). All
// []byte payloads are copied out of buf, so the caller may reuse it.
func decodeBinary(buf []byte) (*Envelope, error) {
	r := binReader{buf: buf, off: 2} // magic + kind checked below
	if len(buf) < 2 || buf[0] != binMagic {
		return nil, ErrCorruptFrame
	}
	e := &Envelope{}
	e.Seq = r.uvarint()
	switch buf[1] {
	case binWorkRequest:
		e.Kind = KindWorkRequest
	case binTask:
		e.Kind = KindTask
		t := &Task{}
		t.TaskID = r.str()
		t.JobID = r.str()
		t.Cmd = r.str()
		t.Dir = r.str()
		t.Control = r.str()
		t.KVS = r.str()
		t.Args = r.strs()
		t.Env = r.strs()
		t.Rank = int(r.varint())
		t.Size = int(r.varint())
		t.WallLimit = time.Duration(r.varint())
		e.Task = t
	case binResult:
		e.Kind = KindResult
		res := &Result{}
		res.TaskID = r.str()
		res.JobID = r.str()
		res.Err = r.str()
		res.ExitCode = int(r.varint())
		res.Elapsed = time.Duration(r.varint())
		e.Result = res
	case binOutput:
		e.Kind = KindOutput
		o := &Output{}
		o.TaskID = r.str()
		o.Stream = r.str()
		o.Data = r.byteSlice()
		e.Output = o
	case binHeartbeat:
		e.Kind = KindHeartbeat
		h := &Heartbeat{}
		h.WorkerID = r.str()
		h.Busy = r.bool()
		h.Uptime = time.Duration(r.varint())
		e.Heartbeat = h
	case binRegister:
		e.Kind = KindRegister
		e.Proto = r.byte()
		reg := &Register{}
		reg.WorkerID = r.str()
		reg.Host = r.str()
		reg.Cores = int(r.varint())
		reg.Coord = r.ints()
		e.Register = reg
	case binRegistered:
		e.Kind = KindRegistered
		e.Proto = r.byte()
	case binStage, binStaged:
		e.Kind = KindStage
		if buf[1] == binStaged {
			e.Kind = KindStaged
		}
		s := &Stage{}
		s.Name = r.str()
		s.Path = r.str()
		s.Data = r.byteSlice()
		e.Stage = s
	case binError:
		e.Kind = KindError
		e.Error = r.str()
	case binPeerSubmit:
		e.Kind = KindPeerSubmit
		p := &PeerSubmit{}
		p.JobID = r.str()
		p.Cmd = r.str()
		p.Dir = r.str()
		p.Args = r.strs()
		p.Env = r.strs()
		p.JobType = int(r.varint())
		p.Priority = int(r.varint())
		p.NProcs = int(r.varint())
		p.WallLimit = time.Duration(r.varint())
		p.Retries = int(r.varint())
		p.Stolen = r.bool()
		e.PeerSubmit = p
	case binJobDone:
		e.Kind = KindJobDone
		jd := &JobDone{}
		jd.JobID = r.str()
		jd.Err = r.str()
		jd.Retries = int(r.varint())
		jd.Failed = r.bool()
		jd.Rejected = r.bool()
		e.JobDone = jd
	default:
		return nil, fmt.Errorf("%w: unknown kind code %d", ErrCorruptFrame, buf[1])
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptFrame, len(buf)-r.off)
	}
	return e, nil
}

// ---------------------------------------------------------------------------
// Encoding primitives: uvarint lengths, zigzag varints for signed fields.

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendByteSlice(b, p []byte) []byte {
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = appendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func appendInts(b []byte, vs []int) []byte {
	b = appendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = appendVarint(b, int64(v))
	}
	return b
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// binReader decodes the primitives with sticky-error accumulation: the
// first malformed field poisons the reader and every later read returns a
// zero value, so decode call sites stay linear.
type binReader struct {
	buf []byte
	off int
	err error
}

func (r *binReader) fail() {
	if r.err == nil {
		r.err = ErrCorruptFrame
	}
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *binReader) byteSlice() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	p := make([]byte, n)
	copy(p, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return p
}

func (r *binReader) strs() []string {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) { // each entry needs at least 1 length byte
		r.fail()
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.str())
		if r.err != nil {
			return nil
		}
	}
	return out
}

func (r *binReader) ints() []int {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) { // each entry needs at least 1 byte
		r.fail()
		return nil
	}
	out := make([]int, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, int(r.varint()))
		if r.err != nil {
			return nil
		}
	}
	return out
}

func (r *binReader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail()
		return false
	}
	v := r.buf[r.off]
	r.off++
	return v != 0
}

func (r *binReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

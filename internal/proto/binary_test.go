package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// hotEnvelopes covers every kind with a binary form, with both zero-ish and
// fully populated payloads.
func hotEnvelopes() []*Envelope {
	return []*Envelope{
		{Kind: KindWorkRequest},
		{Kind: KindTask, Task: &Task{
			TaskID: "j1/rank3", JobID: "j1", Cmd: "namd2.sh",
			Args: []string{"in.pdb", "out.log", ""}, Env: []string{"A=1", "B="},
			Dir: "/tmp/x", Rank: 3, Size: 8,
			Control: "127.0.0.1:5001", KVS: "kvs_j1_1",
			WallLimit: 90 * time.Second,
		}},
		{Kind: KindTask, Task: &Task{TaskID: "t", JobID: "j", Cmd: "c"}},
		{Kind: KindResult, Result: &Result{
			TaskID: "j1/rank3", JobID: "j1", ExitCode: -1,
			Err: "worker lost", Elapsed: 1234567 * time.Nanosecond,
		}},
		{Kind: KindResult, Result: &Result{TaskID: "t", JobID: "j"}},
		{Kind: KindOutput, Output: &Output{
			TaskID: "j1/rank3", Stream: "stdout", Data: []byte("hello\x00world"),
		}},
		{Kind: KindOutput, Output: &Output{TaskID: "t", Stream: "stderr"}},
		{Kind: KindHeartbeat, Heartbeat: &Heartbeat{
			WorkerID: "w17", Busy: true, Uptime: 3 * time.Minute,
		}},
	}
}

func TestBinaryRoundTripAllHotKinds(t *testing.T) {
	for _, want := range hotEnvelopes() {
		var buf bytes.Buffer
		c := NewCodec(&buf)
		c.EnableBinary()
		if err := c.Send(want); err != nil {
			t.Fatalf("%s: send: %v", want.Kind, err)
		}
		// The frame payload must actually be binary, not JSON fallback.
		raw := buf.Bytes()
		if len(raw) < 5 || raw[4] != binMagic {
			t.Fatalf("%s: frame not binary-encoded: % x", want.Kind, raw[:min(len(raw), 8)])
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("%s: recv: %v", want.Kind, err)
		}
		got.Seq = 0
		want.Seq = 0
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: got %+v want %+v", want.Kind, got, want)
		}
	}
}

func TestColdKindsStayJSONOnBinaryCodec(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf)
	c.EnableBinary()
	if err := c.Send(&Envelope{Kind: KindStage, Stage: &Stage{Name: "lib.so", Data: []byte{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	if raw := buf.Bytes(); raw[4] != '{' {
		t.Fatalf("cold kind not JSON: % x", raw[:8])
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindStage || got.Stage == nil || got.Stage.Name != "lib.so" {
		t.Fatalf("got %+v", got)
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		peer uint8
		want uint8
	}{
		{0, VersionJSON}, // pre-negotiation peer
		{VersionJSON, VersionJSON},
		{VersionBinary, VersionBinary},
		{99, VersionBinary}, // unknown future version caps at ours
	}
	for _, tc := range cases {
		if got := Negotiate(tc.peer); got != tc.want {
			t.Errorf("Negotiate(%d)=%d want %d", tc.peer, got, tc.want)
		}
	}
}

// sendRaw frames an arbitrary payload the way Send would.
func sendRaw(t *testing.T, buf *bytes.Buffer, payload []byte) {
	t.Helper()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
}

func TestBinaryCorruptFrames(t *testing.T) {
	// Build one valid task frame to mutate.
	var ref bytes.Buffer
	c := NewCodec(&ref)
	c.EnableBinary()
	if err := c.Send(hotEnvelopes()[1]); err != nil {
		t.Fatal(err)
	}
	valid := append([]byte(nil), ref.Bytes()[4:]...)

	cases := map[string][]byte{
		"unknown kind code":  {binMagic, 0x7E, 0x01},
		"magic only":         {binMagic},
		"truncated payload":  valid[:len(valid)/2],
		"trailing bytes":     append(append([]byte(nil), valid...), 0xAA, 0xBB),
		"length overrun":     {binMagic, binTask, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		"string past buffer": {binMagic, binOutput, 0x01, 0x01, 'x', 0x01, 's', 0x20},
	}
	for name, payload := range cases {
		var buf bytes.Buffer
		sendRaw(t, &buf, payload)
		rc := NewCodec(&buf)
		if _, err := rc.Recv(); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("%s: got %v want ErrCorruptFrame", name, err)
		}
	}
}

func TestBinarySendOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf)
	c.EnableBinary()
	e := &Envelope{Kind: KindOutput, Output: &Output{
		TaskID: "t", Stream: "stdout", Data: make([]byte, MaxFrame),
	}}
	if err := c.Send(e); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v want ErrFrameTooLarge", err)
	}
}

func TestRecvMaxFrameBoundary(t *testing.T) {
	// A header of exactly MaxFrame must not trip the size guard (the body
	// read fails on the empty stream instead, proving we got past it).
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame)
	buf.Write(hdr[:])
	c := NewCodec(nopRW{&buf})
	if _, err := c.Recv(); err == nil || errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("MaxFrame header: got %v", err)
	}
	// One past the limit is rejected before any body read.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	c = NewCodec(nopRW{&buf})
	if _, err := c.Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("MaxFrame+1 header: got %v want ErrFrameTooLarge", err)
	}
}

// TestConcurrentBinarySenders exercises the send path from many goroutines
// with mixed hot and cold kinds; run under -race it guards the seq counter,
// the shared buffer pool, and the EnableBinary switch.
func TestConcurrentBinarySenders(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	const n = 64
	envs := hotEnvelopes()
	var wg sync.WaitGroup
	wg.Add(n + 1)
	go func() {
		defer wg.Done()
		a.EnableBinary() // race against in-flight sends on purpose
	}()
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			src := envs[i%len(envs)]
			e := *src // shallow copy: Send mutates Seq
			if err := a.Send(&e); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}(i)
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		e, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
	wg.Wait()
}

// TestPooledBuffersDoNotAlias verifies that payload bytes survive buffer
// reuse: the decoded Output.Data of one frame must stay intact after later
// frames recycle the pool's buffers.
func TestPooledBuffersDoNotAlias(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf)
	c.EnableBinary()
	first := []byte("first-payload")
	if err := c.Send(&Envelope{Kind: KindOutput, Output: &Output{TaskID: "a", Stream: "stdout", Data: first}}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := c.Send(&Envelope{Kind: KindOutput, Output: &Output{TaskID: "b", Stream: "stdout", Data: bytes.Repeat([]byte{0xEE}, 64)}}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got.Output.Data, first) {
		t.Fatalf("payload corrupted by buffer reuse: %q", got.Output.Data)
	}
}

package proto

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// hotEnvelopes covers every kind with a binary form, with both zero-ish and
// fully populated payloads. The name predates v2.1: the list now includes
// the cold kinds register/registered/stage/staged/error too.
func hotEnvelopes() []*Envelope {
	return []*Envelope{
		{Kind: KindWorkRequest},
		{Kind: KindTask, Task: &Task{
			TaskID: "j1/rank3", JobID: "j1", Cmd: "namd2.sh",
			Args: []string{"in.pdb", "out.log", ""}, Env: []string{"A=1", "B="},
			Dir: "/tmp/x", Rank: 3, Size: 8,
			Control: "127.0.0.1:5001", KVS: "kvs_j1_1",
			WallLimit: 90 * time.Second,
		}},
		{Kind: KindTask, Task: &Task{TaskID: "t", JobID: "j", Cmd: "c"}},
		{Kind: KindResult, Result: &Result{
			TaskID: "j1/rank3", JobID: "j1", ExitCode: -1,
			Err: "worker lost", Elapsed: 1234567 * time.Nanosecond,
		}},
		{Kind: KindResult, Result: &Result{TaskID: "t", JobID: "j"}},
		{Kind: KindOutput, Output: &Output{
			TaskID: "j1/rank3", Stream: "stdout", Data: []byte("hello\x00world"),
		}},
		{Kind: KindOutput, Output: &Output{TaskID: "t", Stream: "stderr"}},
		{Kind: KindHeartbeat, Heartbeat: &Heartbeat{
			WorkerID: "w17", Busy: true, Uptime: 3 * time.Minute,
		}},
		{Kind: KindRegister, Proto: MaxVersion, Register: &Register{
			WorkerID: "ion-17-worker-4", Host: "ion-17", Cores: 4,
			Coord: []int{3, 0, -1},
		}},
		{Kind: KindRegister, Register: &Register{WorkerID: "w"}},
		{Kind: KindRegistered, Proto: VersionBinary},
		{Kind: KindRegistered},
		{Kind: KindStage, Stage: &Stage{
			Name: "namd2.sh", Path: "bin/namd2.sh", Data: []byte("\x7fELF\x00raw bytes"),
		}},
		{Kind: KindStage, Stage: &Stage{Name: "empty"}},
		{Kind: KindStaged, Stage: &Stage{Name: "namd2.sh"}},
		{Kind: KindError, Error: "duplicate worker id w4"},
		{Kind: KindError},
	}
}

func TestBinaryRoundTripAllHotKinds(t *testing.T) {
	for _, want := range hotEnvelopes() {
		var buf bytes.Buffer
		c := NewCodec(&buf)
		c.EnableBinary()
		if err := c.Send(want); err != nil {
			t.Fatalf("%s: send: %v", want.Kind, err)
		}
		// The frame payload must actually be binary, not JSON fallback.
		raw := buf.Bytes()
		if len(raw) < 5 || raw[4] != binMagic {
			t.Fatalf("%s: frame not binary-encoded: % x", want.Kind, raw[:min(len(raw), 8)])
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("%s: recv: %v", want.Kind, err)
		}
		got.Seq = 0
		want.Seq = 0
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: got %+v want %+v", want.Kind, got, want)
		}
	}
}

func TestCodelessKindsStayJSONOnBinaryCodec(t *testing.T) {
	// no-work and shutdown have no binary kind code: they keep the JSON
	// fallback exercised on every connection. Payload-less hot/cold kinds
	// (a stage frame with a nil Stage) fall back too.
	for _, e := range []*Envelope{
		{Kind: KindNoWork},
		{Kind: KindShutdown},
		{Kind: KindStage}, // nil payload
	} {
		var buf bytes.Buffer
		c := NewCodec(&buf)
		c.EnableBinary()
		if err := c.Send(e); err != nil {
			t.Fatal(err)
		}
		if raw := buf.Bytes(); raw[4] != '{' {
			t.Fatalf("%s: not JSON: % x", e.Kind, raw[:8])
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != e.Kind {
			t.Fatalf("got %+v", got)
		}
	}
}

func TestStagePayloadHasNoBase64(t *testing.T) {
	// The v2.1 headline: stage payloads on a binary connection carry their
	// bytes raw. The payload below is binary data whose base64 encoding
	// would appear in a JSON frame; the binary frame must instead contain
	// the raw bytes verbatim and no base64 expansion.
	data := []byte{0x00, 0x01, 0xFE, 0xFF, 0xBF, 0x7B, 0x22, 0x00}
	env := &Envelope{Kind: KindStage, Stage: &Stage{Name: "blob", Data: data}}

	var jbuf bytes.Buffer
	jc := NewCodec(&jbuf)
	if err := jc.Send(env); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(jbuf.Bytes(), []byte(base64.StdEncoding.EncodeToString(data))) {
		t.Fatal("JSON stage frame does not base64 its payload?")
	}

	var bbuf bytes.Buffer
	bc := NewCodec(&bbuf)
	bc.EnableBinary()
	if err := bc.Send(env); err != nil {
		t.Fatal(err)
	}
	raw := bbuf.Bytes()
	if raw[4] != binMagic {
		t.Fatalf("stage frame not binary: % x", raw[:8])
	}
	if !bytes.Contains(raw, data) {
		t.Fatal("binary stage frame does not contain the raw payload bytes")
	}
	if bytes.Contains(raw, []byte(base64.StdEncoding.EncodeToString(data))) {
		t.Fatal("binary stage frame still contains base64")
	}
	// And the size win is structural: binary framing overhead is a few
	// bytes, JSON+base64 inflates the payload by ~4/3.
	if len(raw) >= jbuf.Len() {
		t.Fatalf("binary stage frame (%dB) not smaller than JSON (%dB)", len(raw), jbuf.Len())
	}
	got, err := bc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Stage.Data, data) {
		t.Fatalf("round trip: %x", got.Stage.Data)
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		peer uint8
		want uint8
	}{
		{0, VersionJSON}, // pre-negotiation peer
		{VersionJSON, VersionJSON},
		{VersionBinary, VersionBinary},
		{99, VersionBinary}, // unknown future version caps at ours
	}
	for _, tc := range cases {
		if got := Negotiate(tc.peer); got != tc.want {
			t.Errorf("Negotiate(%d)=%d want %d", tc.peer, got, tc.want)
		}
	}
}

// sendRaw frames an arbitrary payload the way Send would.
func sendRaw(t *testing.T, buf *bytes.Buffer, payload []byte) {
	t.Helper()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
}

func TestBinaryCorruptFrames(t *testing.T) {
	// Build one valid task frame to mutate.
	var ref bytes.Buffer
	c := NewCodec(&ref)
	c.EnableBinary()
	if err := c.Send(hotEnvelopes()[1]); err != nil {
		t.Fatal(err)
	}
	valid := append([]byte(nil), ref.Bytes()[4:]...)

	cases := map[string][]byte{
		"unknown kind code":  {binMagic, 0x7E, 0x01},
		"magic only":         {binMagic},
		"truncated payload":  valid[:len(valid)/2],
		"trailing bytes":     append(append([]byte(nil), valid...), 0xAA, 0xBB),
		"length overrun":     {binMagic, binTask, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		"string past buffer": {binMagic, binOutput, 0x01, 0x01, 'x', 0x01, 's', 0x20},
	}
	for name, payload := range cases {
		var buf bytes.Buffer
		sendRaw(t, &buf, payload)
		rc := NewCodec(&buf)
		if _, err := rc.Recv(); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("%s: got %v want ErrCorruptFrame", name, err)
		}
	}
}

func TestBinarySendOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf)
	c.EnableBinary()
	e := &Envelope{Kind: KindOutput, Output: &Output{
		TaskID: "t", Stream: "stdout", Data: make([]byte, MaxFrame),
	}}
	if err := c.Send(e); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v want ErrFrameTooLarge", err)
	}
}

func TestRecvMaxFrameBoundary(t *testing.T) {
	// A header of exactly MaxFrame must not trip the size guard (the body
	// read fails on the empty stream instead, proving we got past it).
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame)
	buf.Write(hdr[:])
	c := NewCodec(nopRW{&buf})
	if _, err := c.Recv(); err == nil || errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("MaxFrame header: got %v", err)
	}
	// One past the limit is rejected before any body read.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	c = NewCodec(nopRW{&buf})
	if _, err := c.Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("MaxFrame+1 header: got %v want ErrFrameTooLarge", err)
	}
}

// TestConcurrentBinarySenders exercises the send path from many goroutines
// with mixed hot and cold kinds; run under -race it guards the seq counter,
// the shared buffer pool, and the EnableBinary switch.
func TestConcurrentBinarySenders(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	const n = 64
	envs := hotEnvelopes()
	var wg sync.WaitGroup
	wg.Add(n + 1)
	go func() {
		defer wg.Done()
		a.EnableBinary() // race against in-flight sends on purpose
	}()
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			src := envs[i%len(envs)]
			e := *src // shallow copy: Send mutates Seq
			if err := a.Send(&e); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}(i)
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		e, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
	wg.Wait()
}

// TestPooledBuffersDoNotAlias verifies that payload bytes survive buffer
// reuse: the decoded Output.Data of one frame must stay intact after later
// frames recycle the pool's buffers.
func TestPooledBuffersDoNotAlias(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf)
	c.EnableBinary()
	first := []byte("first-payload")
	if err := c.Send(&Envelope{Kind: KindOutput, Output: &Output{TaskID: "a", Stream: "stdout", Data: first}}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := c.Send(&Envelope{Kind: KindOutput, Output: &Output{TaskID: "b", Stream: "stdout", Data: bytes.Repeat([]byte{0xEE}, 64)}}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got.Output.Data, first) {
		t.Fatalf("payload corrupted by buffer reuse: %q", got.Output.Data)
	}
}

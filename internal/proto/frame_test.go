package proto

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestRecvFrameClassifiesWithoutDecode(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf)
	c.EnableBinary()
	for _, e := range hotEnvelopes() {
		if err := c.Send(e); err != nil {
			t.Fatal(err)
		}
		f, err := c.RecvFrame()
		if err != nil {
			t.Fatalf("%s: %v", e.Kind, err)
		}
		if f.Kind() != e.Kind || !f.Binary() {
			t.Fatalf("%s: kind=%s binary=%v", e.Kind, f.Kind(), f.Binary())
		}
		env, err := f.Envelope()
		if err != nil || env.Kind != e.Kind {
			t.Fatalf("%s: envelope %+v, %v", e.Kind, env, err)
		}
		f.Release()
	}
}

func TestRecvFrameJSON(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf) // JSON send side
	if err := c.Send(&Envelope{Kind: KindOutput, Output: &Output{TaskID: "t", Stream: "stdout", Data: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	f, err := c.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	if f.Kind() != KindOutput || f.Binary() {
		t.Fatalf("kind=%s binary=%v", f.Kind(), f.Binary())
	}
	if f.Payload()[0] != '{' {
		t.Fatalf("payload not raw JSON: %q", f.Payload()[:1])
	}
	env, err := f.Envelope()
	if err != nil || string(env.Output.Data) != "x" {
		t.Fatalf("envelope %+v, %v", env, err)
	}
}

// TestSendRawRelayByteIdentical verifies the zero-copy contract: the bytes a
// relay forwards with SendRaw are exactly the bytes the origin peer put on
// the wire, for binary and JSON origin frames alike.
func TestSendRawRelayByteIdentical(t *testing.T) {
	for _, binWire := range []bool{true, false} {
		var origin bytes.Buffer
		oc := NewCodec(&origin)
		if binWire {
			oc.EnableBinary()
		}
		payload := []byte{0x00, 0xBF, 0x7B, 0xFF, 0xDB}
		if err := oc.Send(&Envelope{Kind: KindOutput, Output: &Output{TaskID: "t7", Stream: "stdout", Data: payload}}); err != nil {
			t.Fatal(err)
		}
		wire := append([]byte(nil), origin.Bytes()...)

		f, err := oc.RecvFrame()
		if err != nil {
			t.Fatal(err)
		}
		var relayed bytes.Buffer
		rc := NewCodec(&relayed)
		if err := rc.SendRaw(f.Payload()); err != nil {
			t.Fatal(err)
		}
		f.Release()
		if !bytes.Equal(relayed.Bytes(), wire) {
			t.Fatalf("binary=%v: relayed frame differs from origin\n% x\n% x", binWire, relayed.Bytes(), wire)
		}
		got, err := rc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Output.Data, payload) {
			t.Fatalf("binary=%v: payload %x", binWire, got.Output.Data)
		}
	}
}

func TestFrameRefcountAndPoison(t *testing.T) {
	PoisonFrames(true)
	defer PoisonFrames(false)

	var buf bytes.Buffer
	c := NewCodec(&buf)
	c.EnableBinary()
	data := bytes.Repeat([]byte{0x11}, 256)
	if err := c.Send(&Envelope{Kind: KindOutput, Output: &Output{TaskID: "t", Stream: "stdout", Data: data}}); err != nil {
		t.Fatal(err)
	}
	f, err := c.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	f.Retain()
	payload := f.Payload()
	f.Release() // refs 2 -> 1: buffer must survive
	if bytes.Contains(payload, bytes.Repeat([]byte{poisonByte}, 8)) {
		t.Fatal("payload poisoned while a reference was held")
	}
	env, err := f.Envelope()
	if err != nil {
		t.Fatal(err)
	}
	f.Release() // final: poison + recycle
	if !bytes.Contains(payload, bytes.Repeat([]byte{poisonByte}, 8)) {
		t.Fatal("released buffer not poisoned (poison hook inert)")
	}
	// The decoded envelope copied its bytes out, so it survives the release.
	if !bytes.Equal(env.Output.Data, data) {
		t.Fatal("decoded envelope aliased the pooled buffer")
	}
}

func TestFrameOverReleasePanics(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf)
	c.EnableBinary()
	if err := c.Send(&Envelope{Kind: KindWorkRequest}); err != nil {
		t.Fatal(err)
	}
	f, err := c.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	f.Release()
}

func TestRecvFrameCorrupt(t *testing.T) {
	for name, payload := range map[string][]byte{
		"magic only":   {binMagic},
		"unknown kind": {binMagic, 0x7E, 0x01},
		"bad json":     []byte(`{"kind":`),
	} {
		var buf bytes.Buffer
		sendRaw(t, &buf, payload)
		c := NewCodec(&buf)
		if _, err := c.RecvFrame(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A binary frame with a valid kind prefix but corrupt body classifies
	// fine (relays may forward it) but fails on Envelope().
	var buf bytes.Buffer
	sendRaw(t, &buf, []byte{binMagic, binOutput, 0x01, 0x01, 'x', 0x01, 's', 0x20})
	c := NewCodec(&buf)
	f, err := c.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	if _, err := f.Envelope(); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("corrupt body: got %v", err)
	}
}

// TestFrameConcurrentEnvelopeAndRelease hammers the decode-once cache and
// refcount from many goroutines; run under -race it guards the Frame's
// internal synchronization.
func TestFrameConcurrentEnvelopeAndRelease(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf)
	c.EnableBinary()
	for i := 0; i < 64; i++ {
		if err := c.Send(&Envelope{Kind: KindOutput, Output: &Output{
			TaskID: fmt.Sprintf("t%d", i), Stream: "stdout", Data: bytes.Repeat([]byte{byte(i)}, 128),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		f, err := c.RecvFrame()
		if err != nil {
			t.Fatal(err)
		}
		const holders = 8
		for h := 0; h < holders; h++ {
			f.Retain()
		}
		var wg sync.WaitGroup
		for h := 0; h < holders; h++ {
			wg.Add(1)
			go func(want byte) {
				defer wg.Done()
				env, err := f.Envelope()
				if err != nil {
					t.Errorf("decode: %v", err)
				} else if env.Output.Data[0] != want {
					t.Errorf("payload %x want %x", env.Output.Data[0], want)
				}
				f.Release()
			}(byte(i))
		}
		f.Release()
		wg.Wait()
	}
}

// Package proto defines the JETS wire protocol: a length-prefixed JSON
// message framing used on every TCP connection in the system — worker agents
// talking to the central dispatcher, Hydra proxies talking to the mpiexec
// control process, and Coasters clients talking to the CoasterService.
//
// The paper's architecture principle 2 ("separate service pipeline processes
// through simple interfaces") is realized here: socket management is a thin,
// uniform layer and every higher component exchanges typed messages through
// it.
package proto

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame is the largest frame the codec accepts. Oversized frames indicate
// a corrupt stream or a protocol mismatch, not legitimate traffic.
const MaxFrame = 64 << 20

// ErrFrameTooLarge is returned when a peer announces a frame larger than
// MaxFrame.
var ErrFrameTooLarge = errors.New("proto: frame exceeds maximum size")

// Kind identifies a message type on the wire.
type Kind string

// Message kinds. The dispatcher/worker cycle follows the paper's Fig. 4:
// workers register, report readiness (work request), receive proxy tasks,
// stream output, and report completion.
const (
	KindRegister    Kind = "register"     // worker -> dispatcher: here I am
	KindRegistered  Kind = "registered"   // dispatcher -> worker: accepted
	KindWorkRequest Kind = "work-request" // worker -> dispatcher: ready for a task
	KindTask        Kind = "task"         // dispatcher -> worker: run this
	KindNoWork      Kind = "no-work"      // dispatcher -> worker: drained, retry or exit
	KindResult      Kind = "result"       // worker -> dispatcher: task finished
	KindOutput      Kind = "output"       // worker -> dispatcher: task stdout/stderr chunk
	KindHeartbeat   Kind = "heartbeat"    // worker -> dispatcher: liveness
	KindShutdown    Kind = "shutdown"     // dispatcher -> worker: exit cleanly
	KindStage       Kind = "stage"        // dispatcher -> worker: cache file locally
	KindStaged      Kind = "staged"       // worker -> dispatcher: cache ack
	KindError       Kind = "error"        // either direction: protocol-level failure
)

// Envelope is the frame carried on every connection. Exactly one payload
// field is populated according to Kind.
type Envelope struct {
	Kind Kind   `json:"kind"`
	Seq  uint64 `json:"seq,omitempty"`

	// Proto carries wire-version negotiation (see binary.go): on a
	// register frame it announces the sender's maximum supported version,
	// on the registered ack it confirms the negotiated version. Zero on
	// every other frame and when talking to pre-v2 peers.
	Proto uint8 `json:"proto,omitempty"`

	Register  *Register  `json:"register,omitempty"`
	Task      *Task      `json:"task,omitempty"`
	Result    *Result    `json:"result,omitempty"`
	Output    *Output    `json:"output,omitempty"`
	Heartbeat *Heartbeat `json:"heartbeat,omitempty"`
	Stage     *Stage     `json:"stage,omitempty"`
	Error     string     `json:"error,omitempty"`

	// Federation payloads (federate.go): router <-> dispatcher traffic.
	PeerAttach   *PeerAttach   `json:"peer_attach,omitempty"`
	PeerInfo     *PeerInfo     `json:"peer_info,omitempty"`
	PeerSubmit   *PeerSubmit   `json:"peer_submit,omitempty"`
	JobDone      *JobDone      `json:"job_done,omitempty"`
	LoadReport   *LoadReport   `json:"load_report,omitempty"`
	StealRequest *StealRequest `json:"steal_request,omitempty"`
	StealReply   *StealReply   `json:"steal_reply,omitempty"`
}

// Register announces a worker to the dispatcher.
type Register struct {
	WorkerID string `json:"worker_id"`
	Host     string `json:"host"`
	Cores    int    `json:"cores"`
	// Rank coordinates on the interconnect, used by topology-aware grouping.
	Coord []int `json:"coord,omitempty"`
}

// Task is one unit of work sent to a worker: either a plain sequential
// command or one Hydra proxy of a decomposed MPI job.
type Task struct {
	TaskID string   `json:"task_id"`
	JobID  string   `json:"job_id"`
	Cmd    string   `json:"cmd"`
	Args   []string `json:"args,omitempty"`
	Env    []string `json:"env,omitempty"` // KEY=VALUE pairs
	Dir    string   `json:"dir,omitempty"`

	// MPI-decomposition fields (zero for sequential tasks).
	Rank    int    `json:"rank,omitempty"`
	Size    int    `json:"size,omitempty"`
	Control string `json:"control,omitempty"` // mpiexec control endpoint to dial back
	KVS     string `json:"kvs,omitempty"`     // PMI key-value-space name

	// WallLimit, when positive, is the time after which the worker kills
	// the task and reports failure.
	WallLimit time.Duration `json:"wall_limit,omitempty"`
}

// Result reports task completion.
type Result struct {
	TaskID   string        `json:"task_id"`
	JobID    string        `json:"job_id"`
	ExitCode int           `json:"exit_code"`
	Err      string        `json:"err,omitempty"`
	Elapsed  time.Duration `json:"elapsed"`
}

// Output carries a chunk of task stdout or stderr back through the service,
// mirroring the paper's standard-output routing (application -> proxy ->
// mpiexec -> JETS -> file).
type Output struct {
	TaskID string `json:"task_id"`
	Stream string `json:"stream"` // "stdout" or "stderr"
	Data   []byte `json:"data"`
}

// Heartbeat is a periodic liveness report.
type Heartbeat struct {
	WorkerID string        `json:"worker_id"`
	Busy     bool          `json:"busy"`
	Uptime   time.Duration `json:"uptime"`
}

// Stage asks a worker to copy a file into node-local storage (the paper's
// local-storage optimization for proxy/user binaries and data).
type Stage struct {
	Name string `json:"name"`
	Data []byte `json:"data,omitempty"`
	Path string `json:"path,omitempty"` // destination hint inside the cache
}

// Codec frames Envelopes over an io.ReadWriter with a 4-byte big-endian
// length prefix. A Codec is safe for one concurrent reader and one
// concurrent writer; writes are additionally serialized internally so many
// goroutines may Send.
type Codec struct {
	r  *bufio.Reader
	w  *bufio.Writer
	wc io.Closer

	mu     sync.Mutex // guards w, seq, binary
	seq    uint64
	binary bool // emit the v2 fast path for hot kinds (see EnableBinary)
}

// bufPool recycles frame scratch buffers across Send and Recv calls. The
// pool holds pointers so Put does not allocate a header for the slice.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4<<10)
		return &b
	},
}

// NewCodec wraps a connection. If rw implements io.Closer, Close will close
// it.
func NewCodec(rw io.ReadWriter) *Codec {
	c := &Codec{
		r: bufio.NewReaderSize(rw, 32<<10),
		w: bufio.NewWriterSize(rw, 32<<10),
	}
	if cl, ok := rw.(io.Closer); ok {
		c.wc = cl
	}
	return c
}

// RemoteAddr reports the peer address when the underlying transport is a
// net.Conn, and "" otherwise (in-process pipes, test harnesses).
func (c *Codec) RemoteAddr() string {
	if conn, ok := c.wc.(net.Conn); ok {
		return conn.RemoteAddr().String()
	}
	return ""
}

// EnableBinary switches the send side to the v2 binary fast path for hot
// frame kinds. Call it only after the peer has negotiated VersionBinary at
// register time; the receive side needs no switch because frames are
// self-describing (see binary.go).
func (c *Codec) EnableBinary() {
	c.mu.Lock()
	c.binary = true
	c.mu.Unlock()
}

// BinaryEnabled reports whether the send side uses the v2 fast path.
func (c *Codec) BinaryEnabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.binary
}

// writeLocked encodes and buffers one envelope. Caller holds c.mu.
func (c *Codec) writeLocked(e *Envelope) error {
	c.seq++
	e.Seq = c.seq

	bp := bufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	var ok bool
	if c.binary {
		buf, ok = appendBinary(buf, e)
	}
	if !ok {
		j, err := json.Marshal(e)
		if err != nil {
			bufPool.Put(bp)
			return fmt.Errorf("proto: marshal: %w", err)
		}
		buf = append(buf, j...)
	}
	err := c.writeFrameLocked(buf)
	*bp = buf[:0]
	bufPool.Put(bp)
	return err
}

func (c *Codec) writeFrameLocked(buf []byte) error {
	if len(buf) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(buf)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.w.Write(buf)
	return err
}

// Send marshals and writes one envelope, assigning it the next sequence
// number, and flushes.
func (c *Codec) Send(e *Envelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.writeLocked(e); err != nil {
		return err
	}
	return c.w.Flush()
}

// SendBuffered writes one envelope into the codec's write buffer without
// flushing. A batching writer (the dispatcher's per-worker goroutine) calls
// it N times and then Flush once, amortizing the syscall per flush rather
// than per frame. Interleaving with Send is safe; Send simply flushes
// whatever is buffered along with its own frame.
func (c *Codec) SendBuffered(e *Envelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeLocked(e)
}

// Flush pushes buffered frames to the connection.
func (c *Codec) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.w.Flush()
}

// readFrame reads one length-prefixed frame into a pooled buffer and
// returns the pool entry plus the payload slice. The caller owns the entry
// and must return it with putBuf.
func (c *Codec) readFrame() (*[]byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, nil, ErrFrameTooLarge
	}
	bp := bufPool.Get().(*[]byte)
	buf := *bp
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(c.r, buf); err != nil {
		putBuf(bp, buf)
		return nil, nil, err
	}
	return bp, buf, nil
}

// putBuf returns a frame buffer to the pool, scribbling over the payload
// first when poisoning is enabled (see PoisonFrames).
func putBuf(bp *[]byte, buf []byte) {
	if poisonFrames.Load() {
		for i := range buf {
			buf[i] = poisonByte
		}
	}
	*bp = buf[:0]
	bufPool.Put(bp)
}

// Recv reads one envelope, blocking until a full frame arrives. Binary and
// JSON payloads are distinguished by their first byte, so a codec can
// receive both regardless of what its send side negotiated.
func (c *Codec) Recv() (*Envelope, error) {
	bp, buf, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	var e *Envelope
	if len(buf) > 0 && buf[0] == binMagic {
		e, err = decodeBinary(buf)
	} else {
		e = &Envelope{}
		if jerr := json.Unmarshal(buf, e); jerr != nil {
			err = fmt.Errorf("proto: unmarshal: %w", jerr)
		}
	}
	putBuf(bp, buf)
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Close closes the underlying connection if it is closable.
func (c *Codec) Close() error {
	if c.wc != nil {
		return c.wc.Close()
	}
	return nil
}

// Dial connects to a JETS endpoint and returns a codec over the connection.
func Dial(addr string, timeout time.Duration) (*Codec, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewCodec(conn), nil
}

// Pipe returns a connected pair of codecs over an in-memory duplex pipe,
// used by tests and the in-process runtime.
func Pipe() (*Codec, *Codec) {
	a, b := net.Pipe()
	return NewCodec(a), NewCodec(b)
}

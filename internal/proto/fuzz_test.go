package proto

// Native fuzz targets for the wire codec (run in CI as a 20s smoke pass,
// see .github/workflows/ci.yml). Two properties are load-bearing for the
// relay data plane:
//
//  1. decode never panics: the dispatcher feeds every byte a worker sends
//     into decodeBinary, so any panic is a remote crash.
//  2. binary and JSON agree: a frame relayed raw to a binary peer and the
//     same frame decoded and re-encoded as JSON for a v1 peer must deliver
//     identical payloads, for every kind.
//
// The seed corpus lives in testdata/fuzz/<Target>/ (the native corpus
// location); regenerate it with
//
//	JETS_REGEN_CORPUS=1 go test -run TestRegenerateFuzzCorpus ./internal/proto

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fuzzKinds is the fixed order FuzzRoundTrip maps its kind selector onto;
// corpus files encode indexes into it.
var fuzzKinds = []Kind{
	KindWorkRequest, KindTask, KindResult, KindOutput, KindHeartbeat,
	KindRegister, KindRegistered, KindStage, KindStaged, KindError,
}

// canonEnvelope normalizes the representations the two encodings cannot
// distinguish: empty and nil slices (both encode as length 0 / omitted).
func canonEnvelope(e *Envelope) *Envelope {
	if e.Task != nil {
		t := *e.Task
		if len(t.Args) == 0 {
			t.Args = nil
		}
		if len(t.Env) == 0 {
			t.Env = nil
		}
		e.Task = &t
	}
	if e.Output != nil {
		o := *e.Output
		if len(o.Data) == 0 {
			o.Data = nil
		}
		e.Output = &o
	}
	if e.Register != nil {
		r := *e.Register
		if len(r.Coord) == 0 {
			r.Coord = nil
		}
		e.Register = &r
	}
	if e.Stage != nil {
		s := *e.Stage
		if len(s.Data) == 0 {
			s.Data = nil
		}
		e.Stage = &s
	}
	return e
}

// FuzzDecodeBinary asserts decode-never-panics on arbitrary payloads, and
// that anything that decodes successfully re-encodes to an equal envelope
// (the decoder accepts only envelopes the encoder can reproduce).
func FuzzDecodeBinary(f *testing.F) {
	for _, e := range hotEnvelopes() {
		if payload, ok := appendBinary(nil, e); ok {
			f.Add(payload)
		}
	}
	f.Add([]byte{binMagic})
	f.Add([]byte{binMagic, 0x7E, 0x01})
	f.Add([]byte{binMagic, binOutput, 0x01, 0x01, 'x', 0x01, 's', 0x20})
	f.Add([]byte(`{"kind":"task"}`))
	f.Fuzz(func(t *testing.T, payload []byte) {
		e, err := decodeBinary(payload) // must not panic
		if err != nil {
			return
		}
		enc, ok := appendBinary(nil, e)
		if !ok {
			t.Fatalf("decoded envelope has no binary form: %+v", e)
		}
		e2, err := decodeBinary(enc)
		if err != nil {
			t.Fatalf("re-encoded frame fails to decode: %v", err)
		}
		if !reflect.DeepEqual(canonEnvelope(e), canonEnvelope(e2)) {
			t.Fatalf("decode(encode(decode(x))) diverged:\n%+v\n%+v", e, e2)
		}
	})
}

// FuzzRoundTrip builds an envelope of every kind from fuzzed fields and
// asserts the binary and JSON wire formats decode to the same envelope, so
// a v1 peer and a v2 peer observe identical payloads.
func FuzzRoundTrip(f *testing.F) {
	f.Add(byte(1), "j1/rank3", "j1", "namd2.sh", []byte("hello\x00world"), int64(3), int64(90e9), uint64(7), true)
	f.Add(byte(3), "t", "stdout", "", []byte{}, int64(-1), int64(0), uint64(0), false)
	f.Add(byte(7), "namd2.sh", "bin/x", "", []byte{0xBF, 0x7B, 0xFF}, int64(4), int64(1), uint64(1), true)
	f.Add(byte(9), "boom", "", "", []byte(nil), int64(0), int64(0), uint64(2), false)
	f.Fuzz(func(t *testing.T, kindSel byte, s1, s2, s3 string, blob []byte, n1, n2 int64, seq uint64, flag bool) {
		// JSON replaces invalid UTF-8 with U+FFFD; that is a property of
		// encoding/json, not a codec divergence, so compare on valid UTF-8.
		s1 = strings.ToValidUTF8(s1, "�")
		s2 = strings.ToValidUTF8(s2, "�")
		s3 = strings.ToValidUTF8(s3, "�")

		e := &Envelope{Kind: fuzzKinds[int(kindSel)%len(fuzzKinds)], Seq: seq}
		switch e.Kind {
		case KindTask:
			e.Task = &Task{
				TaskID: s1, JobID: s2, Cmd: s3,
				Args: []string{s1, s3}, Env: []string{s2},
				Dir: s3, Rank: int(int32(n1)), Size: int(int32(n2)),
				Control: s2, KVS: s1, WallLimit: time.Duration(n2),
			}
		case KindResult:
			e.Result = &Result{TaskID: s1, JobID: s2, ExitCode: int(int32(n1)), Err: s3, Elapsed: time.Duration(n2)}
		case KindOutput:
			e.Output = &Output{TaskID: s1, Stream: s2, Data: blob}
		case KindHeartbeat:
			e.Heartbeat = &Heartbeat{WorkerID: s1, Busy: flag, Uptime: time.Duration(n1)}
		case KindRegister:
			e.Proto = byte(seq)
			e.Register = &Register{WorkerID: s1, Host: s2, Cores: int(int32(n1)), Coord: []int{int(int32(n1)), int(int32(n2))}}
		case KindRegistered:
			e.Proto = byte(n1)
		case KindStage, KindStaged:
			e.Stage = &Stage{Name: s1, Path: s2, Data: blob}
		case KindError:
			e.Error = s1
		}

		enc, ok := appendBinary(nil, e)
		if !ok {
			t.Fatalf("%s: no binary form", e.Kind)
		}
		fromBin, err := decodeBinary(enc)
		if err != nil {
			t.Fatalf("%s: binary decode: %v", e.Kind, err)
		}
		j, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("%s: json marshal: %v", e.Kind, err)
		}
		fromJSON := &Envelope{}
		if err := json.Unmarshal(j, fromJSON); err != nil {
			t.Fatalf("%s: json unmarshal: %v", e.Kind, err)
		}
		if !reflect.DeepEqual(canonEnvelope(fromBin), canonEnvelope(fromJSON)) {
			t.Fatalf("%s: binary and JSON round trips diverged:\nbinary: %+v\njson:   %+v",
				e.Kind, fromBin, fromJSON)
		}
		if !reflect.DeepEqual(canonEnvelope(fromBin), canonEnvelope(e)) {
			t.Fatalf("%s: binary round trip lost data:\nsent: %+v\ngot:  %+v", e.Kind, e, fromBin)
		}
	})
}

// TestRegenerateFuzzCorpus rewrites the checked-in seed corpus from
// hotEnvelopes when JETS_REGEN_CORPUS=1; by default it only verifies the
// corpus directories exist and are non-empty.
func TestRegenerateFuzzCorpus(t *testing.T) {
	decodeDir := filepath.Join("testdata", "fuzz", "FuzzDecodeBinary")
	roundDir := filepath.Join("testdata", "fuzz", "FuzzRoundTrip")
	if os.Getenv("JETS_REGEN_CORPUS") == "" {
		for _, dir := range []string{decodeDir, roundDir} {
			ents, err := os.ReadDir(dir)
			if err != nil || len(ents) == 0 {
				t.Fatalf("seed corpus missing under %s (regenerate with JETS_REGEN_CORPUS=1): %v", dir, err)
			}
		}
		return
	}
	for _, dir := range []string{decodeDir, roundDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i, e := range hotEnvelopes() {
		payload, ok := appendBinary(nil, e)
		if !ok {
			continue
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(payload)))
		if err := os.WriteFile(filepath.Join(decodeDir, fmt.Sprintf("seed-%02d-%s", i, e.Kind)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// One corrupt seed so the decoder's error paths stay in the corpus.
	corrupt := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string([]byte{binMagic, binTask, 0x01, 0xFF})))
	if err := os.WriteFile(filepath.Join(decodeDir, "seed-corrupt-task"), []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	for i, k := range fuzzKinds {
		var b bytes.Buffer
		b.WriteString("go test fuzz v1\n")
		fmt.Fprintf(&b, "byte(%d)\n", i)
		fmt.Fprintf(&b, "string(%s)\n", strconv.Quote("j1/rank3"))
		fmt.Fprintf(&b, "string(%s)\n", strconv.Quote("stdout"))
		fmt.Fprintf(&b, "string(%s)\n", strconv.Quote("namd2.sh"))
		fmt.Fprintf(&b, "[]byte(%s)\n", strconv.Quote("payload\x00\xbf\x7b"))
		b.WriteString("int64(-3)\nint64(90000000000)\nuint64(7)\nbool(true)\n")
		if err := os.WriteFile(filepath.Join(roundDir, fmt.Sprintf("seed-%02d-%s", i, k)), b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	want := &Envelope{
		Kind: KindTask,
		Task: &Task{
			TaskID:  "t1",
			JobID:   "j1",
			Cmd:     "namd2.sh",
			Args:    []string{"input-1.pdb", "output-1.log"},
			Env:     []string{"PMI_RANK=0"},
			Rank:    0,
			Size:    4,
			Control: "127.0.0.1:5000",
			KVS:     "kvs_0",
		},
	}
	var got *Envelope
	var recvErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, recvErr = b.Recv()
	}()
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	<-done
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	if got.Kind != want.Kind || !reflect.DeepEqual(got.Task, want.Task) {
		t.Fatalf("got %+v want %+v", got.Task, want.Task)
	}
}

func TestSequenceNumbers(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		for i := 0; i < 3; i++ {
			a.Send(&Envelope{Kind: KindHeartbeat, Heartbeat: &Heartbeat{WorkerID: "w"}})
		}
	}()
	for i := uint64(1); i <= 3; i++ {
		e, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if e.Seq != i {
			t.Fatalf("seq=%d want %d", e.Seq, i)
		}
	}
}

func TestConcurrentSenders(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.Send(&Envelope{Kind: KindWorkRequest})
		}()
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		e, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
	wg.Wait()
}

func TestOversizedFrameRejectedOnRecv(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	c := NewCodec(nopRW{&buf})
	if _, err := c.Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v want ErrFrameTooLarge", err)
	}
}

type nopRW struct{ *bytes.Buffer }

func (nopRW) Write(p []byte) (int, error) { return len(p), nil }

func TestRecvEOF(t *testing.T) {
	c := NewCodec(nopRW{bytes.NewBuffer(nil)})
	if _, err := c.Recv(); err != io.EOF {
		t.Fatalf("got %v want EOF", err)
	}
}

func TestRecvTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("short")
	c := NewCodec(nopRW{&buf})
	if _, err := c.Recv(); err == nil {
		t.Fatal("want error on truncated frame")
	}
}

func TestRecvCorruptJSON(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	c := NewCodec(nopRW{&buf})
	if _, err := c.Recv(); err == nil {
		t.Fatal("want error on corrupt JSON")
	}
}

func TestDialRealTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan *Envelope, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c := NewCodec(conn)
		defer c.Close()
		e, err := c.Recv()
		if err != nil {
			return
		}
		done <- e
	}()
	c, err := Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(&Envelope{Kind: KindRegister, Register: &Register{WorkerID: "w0", Host: "n0", Cores: 4}}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-done:
		if e.Register == nil || e.Register.WorkerID != "w0" {
			t.Fatalf("bad register: %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Fatal("want error dialing closed port")
	}
}

// Property: any Task payload survives a frame round trip.
func TestTaskRoundTripProperty(t *testing.T) {
	f := func(id, job, cmd string, args []string, rank, size uint8) bool {
		a, b := Pipe()
		defer a.Close()
		defer b.Close()
		want := &Task{TaskID: id, JobID: job, Cmd: cmd, Args: args,
			Rank: int(rank), Size: int(size)}
		errc := make(chan error, 1)
		go func() { errc <- a.Send(&Envelope{Kind: KindTask, Task: want}) }()
		got, err := b.Recv()
		if err != nil || <-errc != nil {
			return false
		}
		if got.Task.TaskID != want.TaskID || got.Task.Cmd != want.Cmd ||
			got.Task.Rank != want.Rank || got.Task.Size != want.Size {
			return false
		}
		if len(got.Task.Args) != len(want.Args) {
			// JSON turns empty slices into nil; tolerate that but nothing else.
			return len(want.Args) == 0 && len(got.Task.Args) == 0
		}
		for i := range want.Args {
			if got.Task.Args[i] != want.Args[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

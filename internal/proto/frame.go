package proto

// Zero-copy frame relay (wire protocol v2.1).
//
// The dispatcher's output and stage paths are pure relays: bytes produced
// by one peer are delivered verbatim to another. Decoding a frame into an
// Envelope only to re-encode the identical payload costs an allocation and
// two copies per frame on the largest frames in the system. A Frame keeps
// the raw payload bytes in the pooled receive buffer and reference-counts
// the buffer, so a relay can classify the frame from its first two bytes,
// queue it for any number of outbound connections, and write the original
// bytes with Codec.SendRaw — the pool gets the buffer back only after the
// last holder releases it.
//
// Ownership rules (see DESIGN.md "v2.1 cold kinds & zero-copy relay"):
//
//   - RecvFrame returns a Frame holding one reference; the receiver owns it
//     and must Release exactly once.
//   - A handler that hands the frame to another goroutine (a relay queue, a
//     per-connection writer) calls Retain first; that goroutine Releases
//     after its write completes. SendRaw copies the payload into the
//     connection's write buffer before returning, so releasing immediately
//     after it returns is safe.
//   - Payload and Envelope must only be called while holding a reference.
//     Envelope decodes lazily, copies all byte slices out of the pooled
//     buffer, and caches the result, so a decoded envelope stays valid
//     after the final Release.
//
// PoisonFrames makes violations loud: with poisoning enabled every buffer
// returned to the pool is first overwritten with poisonByte, so a relay
// reading after release observes corrupt data instead of silently racing.

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
)

// poisonByte overwrites released frame buffers when poisoning is on.
const poisonByte = 0xDB

var poisonFrames atomic.Bool

// PoisonFrames toggles poison-on-release for every pooled frame buffer in
// the process: released buffers are filled with 0xDB before reuse. It is a
// test hook for buffer-lifetime hardening — a use-after-release that would
// otherwise be a silent data race surfaces as poisoned payload bytes.
func PoisonFrames(on bool) { poisonFrames.Store(on) }

// Frame is one received wire frame: its kind, whether it is binary-encoded,
// and the raw payload bytes backed by a reference-counted pooled buffer.
type Frame struct {
	kind Kind
	bin  bool
	bp   *[]byte // pooled backing entry; recycled on final Release
	data []byte  // payload as read off the wire (no length prefix)
	refs atomic.Int32

	dec    sync.Once
	env    *Envelope
	envErr error
}

// Kind reports the frame's message kind, known without decoding the body.
func (f *Frame) Kind() Kind { return f.kind }

// Binary reports whether the payload is v2 binary-encoded. A binary frame
// may be relayed raw only to a peer that negotiated VersionBinary; a JSON
// frame may be relayed raw to any peer, since every receiver accepts JSON.
func (f *Frame) Binary() bool { return f.bin }

// Payload returns the raw frame bytes, valid until the final Release.
func (f *Frame) Payload() []byte { return f.data }

// Retain adds a reference. Call it before handing the frame to another
// goroutine; pair every Retain with exactly one Release.
func (f *Frame) Retain() { f.refs.Add(1) }

// Release drops one reference; the last release recycles the pooled buffer
// (poisoning it first if PoisonFrames is on). Releasing more times than
// Retain+RecvFrame granted references panics: an over-release would hand
// the same buffer to the pool twice and corrupt an unrelated frame.
func (f *Frame) Release() {
	n := f.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("proto: Frame released more times than retained")
	}
	if f.bp != nil {
		putBuf(f.bp, f.data)
		f.bp, f.data = nil, nil
	}
}

// Envelope decodes the frame into a typed envelope, caching the result.
// Byte-slice payloads are copied out of the pooled buffer, so the returned
// envelope remains valid after the frame's final Release. Safe for
// concurrent callers; must first be called while holding a reference. The
// envelope is shared by every caller of this frame and must be treated as
// read-only — a relay re-sending it through a Codec must pass a shallow
// copy, because Send stamps its per-connection Seq on the envelope it is
// given.
func (f *Frame) Envelope() (*Envelope, error) {
	f.dec.Do(func() {
		if f.env != nil { // pre-decoded (JSON receive path)
			return
		}
		f.env, f.envErr = decodeBinary(f.data)
	})
	return f.env, f.envErr
}

// RecvFrame reads one frame and classifies it without decoding the body
// when it is binary (the kind comes from the two-byte prefix); JSON frames
// are decoded eagerly, since JSON carries the kind only inside the payload.
// The returned frame holds one reference that the caller must Release.
func (c *Codec) RecvFrame() (*Frame, error) {
	bp, buf, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	f := &Frame{bp: bp, data: buf}
	f.refs.Store(1)
	if len(buf) > 0 && buf[0] == binMagic {
		if len(buf) < 2 {
			f.Release()
			return nil, ErrCorruptFrame
		}
		kind, ok := binKindOf(buf[1])
		if !ok {
			f.Release()
			return nil, fmt.Errorf("%w: unknown kind code %d", ErrCorruptFrame, buf[1])
		}
		f.kind, f.bin = kind, true
		return f, nil
	}
	env := &Envelope{}
	if jerr := json.Unmarshal(buf, env); jerr != nil {
		f.Release()
		return nil, fmt.Errorf("proto: unmarshal: %w", jerr)
	}
	f.kind, f.env = env.Kind, env
	return f, nil
}

// SendRaw writes a pre-encoded frame payload (from Frame.Payload) and
// flushes. The bytes are copied into the connection's write buffer before
// SendRaw returns, so the caller may Release the frame immediately after.
// The payload keeps its origin sequence number: relayed frames carry the
// producer's seq, which is diagnostic only.
func (c *Codec) SendRaw(p []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.writeFrameLocked(p); err != nil {
		return err
	}
	return c.w.Flush()
}

// SendRawBuffered writes a pre-encoded frame payload into the write buffer
// without flushing, for batching relays (pair with Flush). Like SendRaw,
// the bytes are copied before it returns.
func (c *Codec) SendRawBuffered(p []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeFrameLocked(p)
}

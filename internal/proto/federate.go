package proto

import "time"

// Federation frame kinds: the dispatcher↔dispatcher (router tier) protocol.
// A router attaches to a dispatcher instance over the same listener workers
// use — the first frame's kind selects the peer service path instead of the
// worker path — and the same v2 negotiation applies: the attach announces the
// router's maximum version, the attached ack confirms it, and the hot pair
// (peer-submit, job-done) then rides the binary fast path. The control kinds
// (attach, load reports, steal traffic) stay JSON: they are rare, and keeping
// them on the fallback path keeps it continuously exercised, mirroring
// no-work/shutdown on worker connections.
const (
	KindPeerAttach   Kind = "peer-attach"   // router -> dispatcher: serve me as a federation peer
	KindPeerAttached Kind = "peer-attached" // dispatcher -> router: accepted, here is my live set
	KindPeerSubmit   Kind = "peer-submit"   // router -> dispatcher: run this job
	KindJobDone      Kind = "job-done"      // dispatcher -> router: a routed job reached a terminal state
	KindLoadReport   Kind = "load-report"   // dispatcher -> router: periodic backlog/idle sample
	KindStealRequest Kind = "steal-request" // router -> dispatcher: give up queued jobs
	KindStealReply   Kind = "steal-reply"   // dispatcher -> router: the jobs stolen
)

// PeerAttach opens a federation link. Outstanding lists the job IDs the
// router believes it has routed to this instance and not yet seen complete —
// after an instance restart the attached reply's Live set tells the router
// which of them survived in the instance's journal (watch those) and which
// were lost (resubmit those).
type PeerAttach struct {
	PeerID string `json:"peer_id"`
	// Outstanding job IDs the router is still waiting on at this instance.
	Outstanding []string `json:"outstanding,omitempty"`
	// LoadEvery requests a load-report cadence; 0 means the server default.
	LoadEvery time.Duration `json:"load_every,omitempty"`
}

// PeerInfo is the attach acknowledgement payload.
type PeerInfo struct {
	// Live is the instance's current live job set (queued, running, or
	// retry-pending), including jobs recovered from its journal.
	Live []string `json:"live,omitempty"`
}

// PeerSubmit carries one job from the router to an instance: the same fields
// the journal's Submitted record persists, so a routed job and a recovered
// job are built from identical material.
type PeerSubmit struct {
	JobID     string        `json:"job_id"`
	JobType   int           `json:"job_type,omitempty"`
	Priority  int           `json:"priority,omitempty"`
	NProcs    int           `json:"nprocs"`
	Cmd       string        `json:"cmd"`
	Args      []string      `json:"args,omitempty"`
	Env       []string      `json:"env,omitempty"`
	Dir       string        `json:"dir,omitempty"`
	WallLimit time.Duration `json:"wall_limit,omitempty"`
	// Stolen marks a transfer of an already-accepted job (steal rebalancing):
	// the instance places it at the queue front under the draining gate and
	// preserves the retry budget, instead of treating it as a fresh submit.
	Stolen  bool `json:"stolen,omitempty"`
	Retries int  `json:"retries,omitempty"`
}

// JobDone reports the terminal state of a routed job back to the router.
type JobDone struct {
	JobID   string `json:"job_id"`
	Failed  bool   `json:"failed,omitempty"`
	Err     string `json:"err,omitempty"`
	Retries int    `json:"retries,omitempty"`
	// Rejected means the submit itself was refused (duplicate ID, draining
	// instance): the job never ran, so the router may re-place it.
	Rejected bool `json:"rejected,omitempty"`
}

// LoadReport is an instance's periodic backlog sample, the router's input
// for least-loaded placement and steal decisions.
type LoadReport struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Idle    int `json:"idle"`
	Workers int `json:"workers"`
}

// StealRequest asks an instance to give up queued (never running) jobs.
type StealRequest struct {
	// Max bounds how many jobs the instance may release.
	Max int `json:"max"`
	// Dest names the instance the jobs are being moved to, recorded in the
	// victim's journal Migrated records for forensics.
	Dest string `json:"dest,omitempty"`
}

// StealReply returns the stolen jobs, oldest first.
type StealReply struct {
	Jobs []PeerSubmit `json:"jobs,omitempty"`
}

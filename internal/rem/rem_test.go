package rem

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"jets/internal/core"
	"jets/internal/hydra"
	"jets/internal/namd"
)

func TestNewEnsembleLadder(t *testing.T) {
	e, err := NewEnsemble(4, 300, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Replicas) != 4 {
		t.Fatalf("replicas=%d", len(e.Replicas))
	}
	if math.Abs(e.Replicas[0].Temperature-300) > 1e-9 {
		t.Errorf("t0=%v", e.Replicas[0].Temperature)
	}
	if math.Abs(e.Replicas[3].Temperature-400) > 1e-6 {
		t.Errorf("t3=%v", e.Replicas[3].Temperature)
	}
	// geometric: constant ratio
	r1 := e.Replicas[1].Temperature / e.Replicas[0].Temperature
	r2 := e.Replicas[2].Temperature / e.Replicas[1].Temperature
	if math.Abs(r1-r2) > 1e-9 {
		t.Errorf("ladder not geometric: %v vs %v", r1, r2)
	}
}

func TestNewEnsembleValidation(t *testing.T) {
	if _, err := NewEnsemble(1, 300, 400, 1); err == nil {
		t.Error("single replica accepted")
	}
	if _, err := NewEnsemble(4, 400, 300, 1); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewEnsemble(4, 0, 300, 1); err == nil {
		t.Error("zero tmin accepted")
	}
}

func TestPairsAlternation(t *testing.T) {
	// Even round, 6 replicas: (0,1)(2,3)(4,5)
	p := Pairs(6, 0)
	want := [][2]int{{0, 1}, {2, 3}, {4, 5}}
	if len(p) != len(want) {
		t.Fatalf("even pairs %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("even pairs %v", p)
		}
	}
	// Odd round, 6 replicas: (1,2)(3,4)(5,0) — wrap-around.
	p = Pairs(6, 1)
	want = [][2]int{{1, 2}, {3, 4}, {5, 0}}
	if len(p) != len(want) {
		t.Fatalf("odd pairs %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("odd pairs %v", p)
		}
	}
}

func TestPairsOddCount(t *testing.T) {
	// 5 replicas, odd round: (1,2)(3,4), no wrap (n odd).
	p := Pairs(5, 1)
	if len(p) != 2 || p[0] != [2]int{1, 2} || p[1] != [2]int{3, 4} {
		t.Fatalf("pairs %v", p)
	}
	if got := Pairs(1, 0); len(got) != 0 {
		t.Fatalf("single replica pairs %v", got)
	}
}

// Property: within a round no replica appears in two pairs, and pair members
// are adjacent on the ring.
func TestPairsDisjointProperty(t *testing.T) {
	f := func(nRaw, roundRaw uint8) bool {
		n := int(nRaw%16) + 2
		round := int(roundRaw)
		seen := map[int]bool{}
		for _, p := range Pairs(n, round) {
			if seen[p[0]] || seen[p[1]] {
				return false
			}
			seen[p[0]], seen[p[1]] = true, true
			d := (p[1] - p[0] + n) % n
			if d != 1 && (p[0]-p[1]+n)%n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptCriterion(t *testing.T) {
	// Downhill (higher-T replica has lower energy): always accept.
	if !Accept(100, 300, 50, 400, 0.999) {
		t.Error("favourable exchange rejected")
	}
	// Same temperatures: delta 0, accept.
	if !Accept(10, 300, 20, 300, 0.999) {
		t.Error("zero-delta exchange rejected")
	}
	// Strongly unfavourable with u near 1: reject.
	if Accept(0, 300, 1e9, 301, 0.999) {
		t.Error("hugely unfavourable exchange accepted")
	}
	// Unfavourable but u=0: accept (Metropolis).
	if !Accept(0, 300, 10, 301, 0.0) {
		t.Error("metropolis tail rejected at u=0")
	}
}

func TestExchangeRoundSwapsStates(t *testing.T) {
	e, _ := NewEnsemble(2, 300, 400, 1)
	// Arrange a guaranteed-accept configuration: hot replica has lower
	// energy.
	e.Replicas[0].State = &namd.State{Energy: 100}
	e.Replicas[1].State = &namd.State{Energy: 50}
	acc := e.ExchangeRound(0)
	if acc != 1 {
		t.Fatalf("accepted=%d", acc)
	}
	if e.Replicas[0].State.Energy != 50 || e.Replicas[1].State.Energy != 100 {
		t.Fatal("states not swapped")
	}
	if e.AcceptanceRate() != 1 {
		t.Fatalf("rate=%v", e.AcceptanceRate())
	}
}

func TestExchangeRoundSkipsNilStates(t *testing.T) {
	e, _ := NewEnsemble(2, 300, 400, 1)
	if n := e.ExchangeRound(0); n != 0 {
		t.Fatalf("exchanged without states: %d", n)
	}
	if e.Attempted != 0 {
		t.Fatalf("attempted=%d", e.Attempted)
	}
}

func TestRunStandaloneEndToEnd(t *testing.T) {
	runner := hydra.NewFuncRunner()
	namd.RegisterApp(runner, 0.01)
	eng, err := core.NewEngine(core.Options{LocalWorkers: 4, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	dir := t.TempDir()
	rep, err := RunStandalone(context.Background(), eng, DriverConfig{
		Replicas:        4,
		Exchanges:       3,
		ProcsPerReplica: 2,
		Atoms:           200,
		StepsPerSegment: 2,
		WorkScale:       0.01,
		Seed:            11,
		Dir:             dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 3 || rep.SegmentsRun != 12 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Attempted == 0 {
		t.Fatal("no exchanges attempted")
	}
	if len(rep.FinalEnergies) != 4 {
		t.Fatalf("energies %v", rep.FinalEnergies)
	}
	for _, e := range rep.FinalEnergies {
		if math.IsNaN(e) || e == 0 {
			t.Fatalf("bad final energy %v", rep.FinalEnergies)
		}
	}
	if rep.Elapsed <= 0 || rep.Elapsed > time.Minute {
		t.Fatalf("elapsed %v", rep.Elapsed)
	}
}

func TestRunStandaloneValidation(t *testing.T) {
	runner := hydra.NewFuncRunner()
	namd.RegisterApp(runner, 0.01)
	eng, err := core.NewEngine(core.Options{LocalWorkers: 2, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := RunStandalone(context.Background(), eng, DriverConfig{Replicas: 1, Exchanges: 1, Dir: t.TempDir()}); err == nil {
		t.Error("1 replica accepted")
	}
	if _, err := RunStandalone(context.Background(), eng, DriverConfig{Replicas: 2, Exchanges: 0, Dir: t.TempDir()}); err == nil {
		t.Error("0 exchanges accepted")
	}
	if _, err := RunStandalone(context.Background(), eng, DriverConfig{Replicas: 2, Exchanges: 1}); err == nil {
		t.Error("missing dir accepted")
	}
}

package rem

import (
	"testing"
	"testing/quick"

	"jets/internal/namd"
)

func TestWalkIdentityWithoutSwaps(t *testing.T) {
	w, err := NewWalk(4)
	if err != nil {
		t.Fatal(err)
	}
	w.EndRound()
	w.EndRound()
	for traj := 0; traj < 4; traj++ {
		for _, slot := range w.TrajectoryAt(traj) {
			if slot != traj {
				t.Fatalf("traj %d moved without swaps: %v", traj, w.TrajectoryAt(traj))
			}
		}
	}
}

func TestWalkSwapTracksTrajectories(t *testing.T) {
	w, _ := NewWalk(3)
	// Trajectory 0 starts in slot 0. Swap slots 0 and 1: trajectory 0 is
	// now in slot 1 and trajectory 1 in slot 0.
	if err := w.ApplySwap(0, 1); err != nil {
		t.Fatal(err)
	}
	w.EndRound()
	if w.SlotOf(0) != 1 || w.SlotOf(1) != 0 || w.SlotOf(2) != 2 {
		t.Fatalf("slots: %d %d %d", w.SlotOf(0), w.SlotOf(1), w.SlotOf(2))
	}
	// Swap slots 1 and 2: trajectory 0 (in slot 1) moves to slot 2.
	if err := w.ApplySwap(1, 2); err != nil {
		t.Fatal(err)
	}
	w.EndRound()
	if w.SlotOf(0) != 2 {
		t.Fatalf("traj 0 slot %d", w.SlotOf(0))
	}
	if got := w.TrajectoryAt(0); got[0] != 1 || got[1] != 2 {
		t.Fatalf("trajectory %v", got)
	}
}

func TestWalkInvalidSwap(t *testing.T) {
	w, _ := NewWalk(2)
	for _, p := range [][2]int{{0, 0}, {-1, 1}, {0, 5}} {
		if err := w.ApplySwap(p[0], p[1]); err == nil {
			t.Errorf("swap %v accepted", p)
		}
	}
	if _, err := NewWalk(1); err == nil {
		t.Error("1-trajectory walk accepted")
	}
}

func TestRoundTrips(t *testing.T) {
	w, _ := NewWalk(3)
	// Drive trajectory 0 up the ladder and back down, twice.
	script := [][2]int{{0, 1}, {1, 2}, {1, 2}, {0, 1}, {0, 1}, {1, 2}, {1, 2}, {0, 1}}
	for _, s := range script {
		if err := w.ApplySwap(s[0], s[1]); err != nil {
			t.Fatal(err)
		}
		w.EndRound()
	}
	if got := w.RoundTrips(0); got != 2 {
		t.Fatalf("round trips %d want 2 (trajectory %v)", got, w.TrajectoryAt(0))
	}
}

// Property: a walk is always a permutation — every slot occupied by exactly
// one trajectory.
func TestWalkPermutationProperty(t *testing.T) {
	f := func(swaps []uint8, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		w, err := NewWalk(n)
		if err != nil {
			return false
		}
		for _, s := range swaps {
			a := int(s) % n
			b := (a + 1) % n
			if a == b {
				continue
			}
			if err := w.ApplySwap(a, b); err != nil {
				return false
			}
		}
		seen := make([]bool, n)
		for traj := 0; traj < n; traj++ {
			slot := w.SlotOf(traj)
			if slot < 0 || slot >= n || seen[slot] {
				return false
			}
			seen[slot] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrackedExchangeRound(t *testing.T) {
	e, err := NewEnsemble(4, 300, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWalk(4)
	// Guarantee acceptance on pair (0,1): hot has lower energy.
	e.Replicas[0].State = &namd.State{Energy: 100}
	e.Replicas[1].State = &namd.State{Energy: 10}
	e.Replicas[2].State = &namd.State{Energy: 10}
	e.Replicas[3].State = &namd.State{Energy: 1e9} // pair (2,3) strongly unfavourable
	acc, err := e.TrackedExchangeRound(0, w)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 1 {
		t.Fatalf("accepted=%d", acc)
	}
	if w.Rounds() != 1 {
		t.Fatalf("rounds=%d", w.Rounds())
	}
	// Trajectory 0 must have moved iff pair (0,1) accepted — it did.
	if w.SlotOf(0) != 1 || w.SlotOf(1) != 0 {
		t.Fatalf("walk slots %d %d", w.SlotOf(0), w.SlotOf(1))
	}
}

func TestOccupancyMixesOverManyRounds(t *testing.T) {
	// With identical energies every exchange is accepted (delta = 0), so
	// trajectories sweep the ladder deterministically; occupancy must be
	// spread across slots, and round trips occur.
	const n, rounds = 4, 64
	e, err := NewEnsemble(n, 300, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range e.Replicas {
		r.State = &namd.State{Energy: 42}
	}
	w, _ := NewWalk(n)
	for round := 0; round < rounds; round++ {
		if _, err := e.TrackedExchangeRound(round, w); err != nil {
			t.Fatal(err)
		}
	}
	occ := w.Occupancy()
	for traj := 0; traj < n; traj++ {
		visited := 0
		for slot := 0; slot < n; slot++ {
			if occ[traj][slot] > 0 {
				visited++
			}
		}
		if visited < n {
			t.Fatalf("trajectory %d visited only %d/%d slots: %v", traj, visited, n, occ[traj])
		}
	}
	trips := 0
	for traj := 0; traj < n; traj++ {
		trips += w.RoundTrips(traj)
	}
	if trips == 0 {
		t.Fatal("no round trips in a fully-accepting ensemble")
	}
}

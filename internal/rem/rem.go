// Package rem implements the replica exchange method (REM) of the paper's
// motivating use case (§3, Fig. 2): an ensemble of molecular dynamics
// trajectories at different temperatures that are periodically stopped,
// compared under the Metropolis criterion, and restarted from neighbouring
// replicas' snapshots.
//
// Two drivers use this package: the stand-alone bag-of-tasks form
// (RunStandalone, §6.1.6) and the Swift dataflow form (examples/rem,
// §6.2.2), which expresses the same exchange logic as a mini-Swift script.
package rem

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"time"

	"jets/internal/core"
	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/namd"
)

// Replica is one trajectory in the ensemble.
type Replica struct {
	ID          int
	Temperature float64
	State       *namd.State
}

// Ensemble is the set of replicas plus exchange statistics.
type Ensemble struct {
	Replicas []*Replica
	rng      *rand.Rand

	Attempted int
	Accepted  int
}

// NewEnsemble builds n replicas on a geometric temperature ladder from tmin
// to tmax (the standard REM spacing).
func NewEnsemble(n int, tmin, tmax float64, seed int64) (*Ensemble, error) {
	if n < 2 {
		return nil, fmt.Errorf("rem: ensemble needs >= 2 replicas, got %d", n)
	}
	if tmin <= 0 || tmax <= tmin {
		return nil, fmt.Errorf("rem: invalid temperature range [%v, %v]", tmin, tmax)
	}
	e := &Ensemble{rng: rand.New(rand.NewSource(seed))}
	ratio := math.Pow(tmax/tmin, 1/float64(n-1))
	temp := tmin
	for i := 0; i < n; i++ {
		e.Replicas = append(e.Replicas, &Replica{ID: i, Temperature: temp})
		temp *= ratio
	}
	return e, nil
}

// Pairs returns the neighbour pairs exchanged in the given round: even
// rounds pair (0,1),(2,3),...; odd rounds pair (1,2),(3,4),... including the
// wrap-around pair (n-1, 0) when n is even — the "%%"-driven alternation of
// the paper's Swift script (Fig. 17).
func Pairs(n, round int) [][2]int {
	var out [][2]int
	if n < 2 {
		return out
	}
	if round%2 == 0 {
		for i := 0; i+1 < n; i += 2 {
			out = append(out, [2]int{i, i + 1})
		}
		return out
	}
	for i := 1; i+1 < n; i += 2 {
		out = append(out, [2]int{i, i + 1})
	}
	if n%2 == 0 && n > 2 {
		out = append(out, [2]int{n - 1, 0}) // odd exchanges wrap around
	}
	return out
}

// Accept evaluates the Metropolis exchange criterion for two replicas with
// energies e1, e2 at temperatures t1, t2 (reduced units, kB = 1): the
// exchange is accepted with probability min(1, exp(-Δ)) where
// Δ = (1/t1 - 1/t2)(e2 - e1).
func Accept(e1, t1, e2, t2 float64, u float64) bool {
	delta := (1/t1 - 1/t2) * (e2 - e1)
	if delta <= 0 {
		return true
	}
	return u < math.Exp(-delta)
}

// ExchangeRound attempts the round's neighbour exchanges, swapping replica
// states on acceptance. It returns the number accepted. Replicas without
// state (never run) are skipped.
func (e *Ensemble) ExchangeRound(round int) int {
	accepted := 0
	for _, p := range Pairs(len(e.Replicas), round) {
		a, b := e.Replicas[p[0]], e.Replicas[p[1]]
		if a.State == nil || b.State == nil {
			continue
		}
		e.Attempted++
		if Accept(a.State.Energy, a.Temperature, b.State.Energy, b.Temperature, e.rng.Float64()) {
			a.State, b.State = b.State, a.State
			e.Accepted++
			accepted++
		}
	}
	return accepted
}

// AcceptanceRate reports the fraction of attempted exchanges accepted.
func (e *Ensemble) AcceptanceRate() float64 {
	if e.Attempted == 0 {
		return 0
	}
	return float64(e.Accepted) / float64(e.Attempted)
}

// ---------------------------------------------------------------------------
// Stand-alone driver (§6.1.6 style): synchronous rounds of NAMD segments
// followed by an exchange step.

// DriverConfig parameterizes a stand-alone REM run.
type DriverConfig struct {
	Replicas        int
	Exchanges       int // rounds of segment+exchange
	ProcsPerReplica int
	Atoms           int
	StepsPerSegment int
	WorkScale       float64
	TMin, TMax      float64
	Seed            int64
	// Dir holds the replica state files; empty uses in-memory states only.
	Dir string
}

func (c *DriverConfig) defaults() {
	if c.Atoms == 0 {
		c.Atoms = namd.NMAAtoms
	}
	if c.StepsPerSegment == 0 {
		c.StepsPerSegment = 10
	}
	if c.ProcsPerReplica == 0 {
		c.ProcsPerReplica = 4
	}
	if c.TMin == 0 {
		c.TMin = 300
	}
	if c.TMax == 0 {
		c.TMax = 400
	}
	if c.WorkScale == 0 {
		c.WorkScale = 0.05
	}
}

// Report summarizes a stand-alone REM run.
type Report struct {
	Rounds         int
	SegmentsRun    int
	Accepted       int
	Attempted      int
	AcceptanceRate float64
	Elapsed        time.Duration
	// FinalEnergies per replica, in ladder order.
	FinalEnergies []float64
}

// RunStandalone executes the synchronous REM workflow on a JETS engine whose
// runner has namd2 registered (namd.RegisterApp). Each round submits one
// NAMD segment per replica as an MPI job, waits for the batch, then performs
// the exchanges — the structure of Fig. 2.
func RunStandalone(ctx context.Context, eng *core.Engine, cfg DriverConfig) (*Report, error) {
	cfg.defaults()
	if cfg.Replicas < 2 {
		return nil, fmt.Errorf("rem: need >= 2 replicas")
	}
	if cfg.Exchanges < 1 {
		return nil, fmt.Errorf("rem: need >= 1 exchange round")
	}
	ens, err := NewEnsemble(cfg.Replicas, cfg.TMin, cfg.TMax, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("rem: state directory required for the stand-alone driver")
	}

	start := time.Now()
	rep := &Report{}
	for round := 0; round < cfg.Exchanges; round++ {
		var jobs []dispatch.Job
		for _, r := range ens.Replicas {
			out := statePath(cfg.Dir, r.ID, round)
			args := []string{
				"-atoms", fmt.Sprint(cfg.Atoms),
				"-steps", fmt.Sprint(cfg.StepsPerSegment),
				"-temp", fmt.Sprintf("%.4f", r.Temperature),
				"-seed", fmt.Sprint(cfg.Seed + int64(r.ID) + int64(round)*1000),
				"-scale", fmt.Sprintf("%.6f", cfg.WorkScale),
				"-out", out,
			}
			if round > 0 {
				args = append(args, "-in", statePath(cfg.Dir, r.ID, round-1))
			}
			jobs = append(jobs, dispatch.Job{
				Spec: hydra.JobSpec{
					JobID:  fmt.Sprintf("rem-r%d-seg%d", r.ID, round),
					NProcs: cfg.ProcsPerReplica,
					Cmd:    namd.AppName,
					Args:   args,
				},
				Type: dispatch.MPI,
			})
		}
		batch, err := eng.RunBatch(ctx, jobs)
		if err != nil {
			return rep, err
		}
		if n := batch.Failed(); n > 0 {
			return rep, fmt.Errorf("rem: round %d: %d segments failed", round, n)
		}
		rep.SegmentsRun += len(jobs)
		// Load the fresh states and exchange.
		for _, r := range ens.Replicas {
			st, err := namd.LoadState(statePath(cfg.Dir, r.ID, round))
			if err != nil {
				return rep, fmt.Errorf("rem: round %d replica %d: %w", round, r.ID, err)
			}
			r.State = st
		}
		ens.ExchangeRound(round)
		// Persist exchanged states so the next round restarts from them.
		for _, r := range ens.Replicas {
			if err := namd.SaveState(statePath(cfg.Dir, r.ID, round), r.State); err != nil {
				return rep, err
			}
		}
		rep.Rounds++
	}
	rep.Accepted = ens.Accepted
	rep.Attempted = ens.Attempted
	rep.AcceptanceRate = ens.AcceptanceRate()
	rep.Elapsed = time.Since(start)
	for _, r := range ens.Replicas {
		rep.FinalEnergies = append(rep.FinalEnergies, r.State.Energy)
	}
	return rep, nil
}

func statePath(dir string, replica, round int) string {
	return filepath.Join(dir, fmt.Sprintf("replica-%d-round-%d.state", replica, round))
}

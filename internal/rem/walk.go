package rem

import "fmt"

// Replica-exchange diagnostics. The quality of an REM simulation is usually
// judged by how freely replicas random-walk the temperature ladder: a
// trajectory should visit both ends of the ladder repeatedly ("round
// trips"). These analytics operate on the exchange history and are used by
// the REM example and tests to check that the Metropolis machinery actually
// mixes.

// Walk tracks which temperature slot each trajectory occupies over rounds.
// In state-exchange REM the trajectory follows its State: when two replicas
// swap states, the underlying trajectories swap temperature slots.
type Walk struct {
	n int
	// slotOf[traj] = current ladder slot of trajectory traj.
	slotOf []int
	// history[round][traj] = slot after that round's exchanges.
	history [][]int
}

// NewWalk starts tracking n trajectories, trajectory i starting in slot i.
func NewWalk(n int) (*Walk, error) {
	if n < 2 {
		return nil, fmt.Errorf("rem: walk needs >= 2 trajectories, got %d", n)
	}
	w := &Walk{n: n, slotOf: make([]int, n)}
	for i := range w.slotOf {
		w.slotOf[i] = i
	}
	return w, nil
}

// ApplySwap records that the trajectories currently in ladder slots a and b
// exchanged (an accepted Metropolis move).
func (w *Walk) ApplySwap(a, b int) error {
	if a < 0 || a >= w.n || b < 0 || b >= w.n || a == b {
		return fmt.Errorf("rem: invalid swap slots (%d, %d)", a, b)
	}
	ta, tb := -1, -1
	for traj, slot := range w.slotOf {
		if slot == a {
			ta = traj
		}
		if slot == b {
			tb = traj
		}
	}
	w.slotOf[ta], w.slotOf[tb] = b, a
	return nil
}

// EndRound snapshots the current assignment into the history.
func (w *Walk) EndRound() {
	snap := append([]int(nil), w.slotOf...)
	w.history = append(w.history, snap)
}

// Rounds reports recorded rounds.
func (w *Walk) Rounds() int { return len(w.history) }

// SlotOf returns trajectory traj's current ladder slot.
func (w *Walk) SlotOf(traj int) int { return w.slotOf[traj] }

// TrajectoryAt returns the slot sequence of one trajectory across rounds.
func (w *Walk) TrajectoryAt(traj int) []int {
	out := make([]int, len(w.history))
	for r, snap := range w.history {
		out[r] = snap[traj]
	}
	return out
}

// RoundTrips counts completed bottom-to-top-to-bottom ladder excursions of
// one trajectory — the standard REM mixing metric.
func (w *Walk) RoundTrips(traj int) int {
	const (
		seekTop = iota
		seekBottom
	)
	state := seekTop
	trips := 0
	for _, slot := range w.TrajectoryAt(traj) {
		switch state {
		case seekTop:
			if slot == w.n-1 {
				state = seekBottom
			}
		case seekBottom:
			if slot == 0 {
				state = seekTop
				trips++
			}
		}
	}
	return trips
}

// Occupancy returns how many rounds each (trajectory, slot) pair was
// observed; a well-mixed run approaches uniform occupancy.
func (w *Walk) Occupancy() [][]int {
	occ := make([][]int, w.n)
	for i := range occ {
		occ[i] = make([]int, w.n)
	}
	for _, snap := range w.history {
		for traj, slot := range snap {
			occ[traj][slot]++
		}
	}
	return occ
}

// TrackedExchangeRound performs an exchange round on the ensemble while
// recording accepted swaps into the walk, then snapshots the round.
func (e *Ensemble) TrackedExchangeRound(round int, w *Walk) (int, error) {
	accepted := 0
	for _, p := range Pairs(len(e.Replicas), round) {
		a, b := e.Replicas[p[0]], e.Replicas[p[1]]
		if a.State == nil || b.State == nil {
			continue
		}
		e.Attempted++
		if Accept(a.State.Energy, a.Temperature, b.State.Energy, b.Temperature, e.rng.Float64()) {
			a.State, b.State = b.State, a.State
			e.Accepted++
			accepted++
			if err := w.ApplySwap(p[0], p[1]); err != nil {
				return accepted, err
			}
		}
	}
	w.EndRound()
	return accepted, nil
}

package pmi

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func startServer(t *testing.T, size int) (*Server, string) {
	t.Helper()
	s, err := NewServer("kvs_test", size)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestRecordParseFormat(t *testing.T) {
	r, err := parseRecord("cmd=put kvsname=k key=a value=b")
	if err != nil {
		t.Fatal(err)
	}
	if r.cmd() != "put" || r["key"] != "a" || r["value"] != "b" {
		t.Fatalf("parsed %v", r)
	}
	out := formatRecord(r)
	if !strings.HasPrefix(out, "cmd=put ") || !strings.HasSuffix(out, "\n") {
		t.Fatalf("formatted %q", out)
	}
	// round trip
	r2, err := parseRecord(strings.TrimSuffix(out, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range r {
		if r2[k] != v {
			t.Fatalf("round trip lost %s=%s: %v", k, v, r2)
		}
	}
}

func TestRecordParseErrors(t *testing.T) {
	if _, err := parseRecord("cmd=x bad-field"); err == nil {
		t.Error("want error on field without =")
	}
	if _, err := parseRecord("key=value"); err == nil {
		t.Error("want error on record without cmd")
	}
}

func TestInitHandshake(t *testing.T) {
	_, addr := startServer(t, 1)
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rank() != 0 || c.Size() != 1 || c.KVSName() != "kvs_test" {
		t.Fatalf("rank=%d size=%d kvs=%q", c.Rank(), c.Size(), c.KVSName())
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
}

func TestInitBadRank(t *testing.T) {
	_, addr := startServer(t, 2)
	if _, err := Dial(addr, 5); err == nil {
		t.Fatal("want rejection for out-of-range rank")
	}
	if _, err := Dial(addr, -1); err == nil {
		t.Fatal("want rejection for negative rank")
	}
}

func TestPutGet(t *testing.T) {
	_, addr := startServer(t, 1)
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Finalize()
	if err := c.Put("addr-0", "10.0.0.1:9999"); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("addr-0")
	if err != nil {
		t.Fatal(err)
	}
	if v != "10.0.0.1:9999" {
		t.Fatalf("got %q", v)
	}
	if _, err := c.Get("missing"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("got %v want ErrKeyNotFound", err)
	}
}

func TestPutRejectsInvalidTokens(t *testing.T) {
	_, addr := startServer(t, 1)
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Finalize()
	for _, kv := range [][2]string{{"a b", "v"}, {"k", "v v"}, {"", "v"}, {"k", ""}, {"k=x", "v"}} {
		if err := c.Put(kv[0], kv[1]); err == nil {
			t.Errorf("Put(%q,%q) accepted", kv[0], kv[1])
		}
	}
}

// TestWireUp exercises the full MPI bootstrap pattern: every rank puts its
// address, barriers, then gets every other rank's address.
func TestWireUp(t *testing.T) {
	const n = 8
	_, addr := startServer(t, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := Dial(addr, rank)
			if err != nil {
				errs <- err
				return
			}
			defer c.Finalize()
			if err := c.Put(fmt.Sprintf("addr-%d", rank), fmt.Sprintf("host%d:100%d", rank, rank)); err != nil {
				errs <- err
				return
			}
			if err := c.Barrier(); err != nil {
				errs <- err
				return
			}
			for peer := 0; peer < n; peer++ {
				v, err := c.Get(fmt.Sprintf("addr-%d", peer))
				if err != nil {
					errs <- fmt.Errorf("rank %d get addr-%d: %w", rank, peer, err)
					return
				}
				want := fmt.Sprintf("host%d:100%d", peer, peer)
				if v != want {
					errs <- fmt.Errorf("rank %d got %q want %q", rank, v, want)
					return
				}
			}
		}(rank)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMultipleBarriers(t *testing.T) {
	const n, rounds = 4, 5
	_, addr := startServer(t, n)
	var wg sync.WaitGroup
	var counter sync.Map
	errs := make(chan error, n)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := Dial(addr, rank)
			if err != nil {
				errs <- err
				return
			}
			defer c.Finalize()
			for round := 0; round < rounds; round++ {
				key := fmt.Sprintf("r%d-rank%d", round, rank)
				if err := c.Put(key, "x"); err != nil {
					errs <- err
					return
				}
				if err := c.Barrier(); err != nil {
					errs <- err
					return
				}
				// After the barrier every rank's key for this round must exist.
				for p := 0; p < n; p++ {
					if _, err := c.Get(fmt.Sprintf("r%d-rank%d", round, p)); err != nil {
						errs <- fmt.Errorf("round %d rank %d: peer %d key missing: %w", round, rank, p, err)
						return
					}
				}
				counter.Store(fmt.Sprintf("%d-%d", round, rank), true)
			}
		}(rank)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerDone(t *testing.T) {
	s, addr := startServer(t, 2)
	for rank := 0; rank < 2; rank++ {
		go func(rank int) {
			c, err := Dial(addr, rank)
			if err != nil {
				return
			}
			c.Finalize()
		}(rank)
	}
	if err := s.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Done():
	default:
		t.Fatal("Done channel not closed")
	}
}

func TestServerWaitTimeout(t *testing.T) {
	s, _ := startServer(t, 2)
	if err := s.Wait(50 * time.Millisecond); err == nil {
		t.Fatal("want timeout error")
	}
}

func TestFinalizeTwice(t *testing.T) {
	_, addr := startServer(t, 1)
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := c.Finalize(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second finalize: got %v want ErrClosed", err)
	}
}

func TestEnvRendering(t *testing.T) {
	env := Env("127.0.0.1:1234", 3, 8, "kvs_9")
	want := []string{"PMI_PORT=127.0.0.1:1234", "PMI_RANK=3", "PMI_SIZE=8", "PMI_KVSNAME=kvs_9"}
	if len(env) != len(want) {
		t.Fatalf("env=%v", env)
	}
	for i := range want {
		if env[i] != want[i] {
			t.Errorf("env[%d]=%q want %q", i, env[i], want[i])
		}
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer("has space", 4); err == nil {
		t.Error("want error for kvs name with space")
	}
	if _, err := NewServer("ok", 0); err == nil {
		t.Error("want error for size 0")
	}
}

// Property: any valid token pair survives a put/get cycle.
func TestKVSRoundTripProperty(t *testing.T) {
	_, addr := startServer(t, 1)
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Finalize()
	i := 0
	f := func(suffix uint16, val uint32) bool {
		i++
		key := fmt.Sprintf("k%d-%d", i, suffix)
		value := fmt.Sprintf("v%d", val)
		if err := c.Put(key, value); err != nil {
			return false
		}
		got, err := c.Get(key)
		return err == nil && got == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

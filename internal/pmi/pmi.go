// Package pmi implements a PMI-1-style Process Management Interface: the
// protocol an MPI process uses to talk to its process manager during startup.
// MPICH2's Hydra proxies carry exactly this service in the systems the paper
// builds on; here the server side is embedded in our mpiexec equivalent
// (internal/hydra) and the client side in our MPI library (internal/mpi).
//
// The wire format follows PMI-1: newline-terminated records of
// space-separated key=value pairs, beginning with cmd=<name>. One server
// instance serves exactly one job (one key-value space, one barrier group),
// mirroring the one-mpiexec-per-job structure of JETS.
package pmi

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"jets/internal/obs"
)

// Package-level instrumentation, shared by every PMI server in the process
// (one per in-flight MPI job). The histograms work detached; RegisterMetrics
// exports them through a registry.
var (
	wireupHist = obs.NewHist("jets_pmi_wireup_seconds",
		"time from PMI listen to all ranks connected (MPI_Init wire-up)", nil)
	barrierHist = obs.NewHist("jets_pmi_barrier_seconds",
		"PMI barrier span from first barrier_in to the release broadcast", nil)
)

// RegisterMetrics exports this package's PMI instrumentation.
func RegisterMetrics(reg *obs.Registry) { reg.Register(wireupHist, barrierHist) }

// Environment variable names used to bootstrap a PMI client, following the
// PMI_RANK convention the paper exposes to wrapper scripts (§5.2).
const (
	EnvPort = "PMI_PORT"
	EnvRank = "PMI_RANK"
	EnvSize = "PMI_SIZE"
	EnvKVS  = "PMI_KVSNAME"
)

// ErrKeyNotFound is returned by Get when the key has not been Put. Clients
// are expected to Barrier between the put and get phases of wire-up.
var ErrKeyNotFound = errors.New("pmi: key not found")

// ErrClosed is returned on operations after Finalize or server shutdown.
var ErrClosed = errors.New("pmi: connection closed")

// record is one parsed wire line.
type record map[string]string

func (r record) cmd() string { return r["cmd"] }

func parseRecord(line string) (record, error) {
	r := record{}
	for _, f := range strings.Fields(line) {
		i := strings.IndexByte(f, '=')
		if i < 0 {
			return nil, fmt.Errorf("pmi: malformed field %q", f)
		}
		r[f[:i]] = f[i+1:]
	}
	if _, ok := r["cmd"]; !ok {
		return nil, fmt.Errorf("pmi: record missing cmd: %q", line)
	}
	return r, nil
}

func formatRecord(r record) string {
	// cmd first, then sorted keys for determinism.
	var b strings.Builder
	b.WriteString("cmd=")
	b.WriteString(r["cmd"])
	keys := make([]string, 0, len(r))
	for k := range r {
		if k != "cmd" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(r[k])
	}
	b.WriteByte('\n')
	return b.String()
}

func validToken(s string) bool {
	return s != "" && !strings.ContainsAny(s, " \t\n=")
}

// ---------------------------------------------------------------------------
// Server

// Server is the process-manager side of PMI for a single job.
type Server struct {
	kvsName string
	size    int

	ln net.Listener

	mu           sync.Mutex
	kvs          map[string]string
	barrierN     int
	barrierStart time.Time
	conns        map[int]*serverConn // by rank
	finalized    int
	closed       bool
	listenAt     time.Time
	wired        bool   // every rank has connected at least once
	onWired      func() // fired once, outside mu, when wired flips

	doneCh chan struct{} // closed when all ranks finalize
	once   sync.Once
}

type serverConn struct {
	rank int
	conn net.Conn
	wmu  sync.Mutex
	w    *bufio.Writer
}

func (sc *serverConn) send(r record) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	if _, err := sc.w.WriteString(formatRecord(r)); err != nil {
		return err
	}
	return sc.w.Flush()
}

// NewServer creates a PMI server for a job of the given size. kvsName must
// be a token without spaces.
func NewServer(kvsName string, size int) (*Server, error) {
	if !validToken(kvsName) {
		return nil, fmt.Errorf("pmi: invalid kvs name %q", kvsName)
	}
	if size <= 0 {
		return nil, fmt.Errorf("pmi: invalid size %d", size)
	}
	return &Server{
		kvsName: kvsName,
		size:    size,
		kvs:     make(map[string]string),
		conns:   make(map[int]*serverConn),
		doneCh:  make(chan struct{}),
	}, nil
}

// Listen binds the server to addr (use "127.0.0.1:0" for an ephemeral port)
// and starts accepting clients. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.mu.Lock()
	s.listenAt = time.Now()
	s.mu.Unlock()
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

// serveConn handles one client connection until EOF or finalize.
func (s *Server) serveConn(conn net.Conn) {
	sc := &serverConn{rank: -1, conn: conn, w: bufio.NewWriter(conn)}
	r := bufio.NewReader(conn)
	defer func() {
		conn.Close()
		s.mu.Lock()
		if sc.rank >= 0 && s.conns[sc.rank] == sc {
			delete(s.conns, sc.rank)
		}
		s.mu.Unlock()
	}()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		rec, err := parseRecord(strings.TrimSuffix(line, "\n"))
		if err != nil {
			sc.send(record{"cmd": "error", "msg": err.Error()})
			return
		}
		if done := s.dispatch(sc, rec); done {
			return
		}
	}
}

func (s *Server) dispatch(sc *serverConn, rec record) (done bool) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		// The job was aborted; drop the connection so the client's next
		// read fails instead of waiting on a barrier that can never
		// complete.
		return true
	}
	switch rec.cmd() {
	case "init":
		rank, err := strconv.Atoi(rec["pmiid"])
		if err != nil || rank < 0 || rank >= s.size {
			sc.send(record{"cmd": "response_to_init", "rc": "-1", "msg": "bad pmiid"})
			return true
		}
		sc.rank = rank
		s.mu.Lock()
		s.conns[rank] = sc
		var fire func()
		if !s.wired && len(s.conns) == s.size {
			s.wired = true
			wireupHist.Observe(time.Since(s.listenAt))
			fire = s.onWired
		}
		s.mu.Unlock()
		sc.send(record{"cmd": "response_to_init", "rc": "0",
			"size": strconv.Itoa(s.size), "rank": strconv.Itoa(rank)})
		if fire != nil {
			fire()
		}
	case "get_maxes":
		sc.send(record{"cmd": "maxes", "kvsname_max": "256", "keylen_max": "256", "vallen_max": "1024"})
	case "get_appnum":
		sc.send(record{"cmd": "appnum", "appnum": "0"})
	case "get_my_kvsname":
		sc.send(record{"cmd": "my_kvsname", "kvsname": s.kvsName})
	case "get_universe_size":
		sc.send(record{"cmd": "universe_size", "size": strconv.Itoa(s.size)})
	case "put":
		if rec["kvsname"] != s.kvsName {
			sc.send(record{"cmd": "put_result", "rc": "-1", "msg": "unknown kvs"})
			return false
		}
		s.mu.Lock()
		s.kvs[rec["key"]] = rec["value"]
		s.mu.Unlock()
		sc.send(record{"cmd": "put_result", "rc": "0"})
	case "get":
		s.mu.Lock()
		v, ok := s.kvs[rec["key"]]
		s.mu.Unlock()
		if rec["kvsname"] != s.kvsName || !ok {
			sc.send(record{"cmd": "get_result", "rc": "-1"})
			return false
		}
		sc.send(record{"cmd": "get_result", "rc": "0", "value": v})
	case "barrier_in":
		s.barrierIn()
	case "finalize":
		sc.send(record{"cmd": "finalize_ack"})
		s.mu.Lock()
		s.finalized++
		all := s.finalized >= s.size
		s.mu.Unlock()
		if all {
			s.once.Do(func() { close(s.doneCh) })
		}
		return true
	default:
		sc.send(record{"cmd": "error", "msg": "unknown command " + rec.cmd()})
	}
	return false
}

func (s *Server) barrierIn() {
	s.mu.Lock()
	if s.barrierN == 0 {
		s.barrierStart = time.Now()
	}
	s.barrierN++
	if s.barrierN < s.size {
		s.mu.Unlock()
		return
	}
	s.barrierN = 0
	barrierHist.Observe(time.Since(s.barrierStart))
	conns := make([]*serverConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.send(record{"cmd": "barrier_out"})
	}
}

// Done returns a channel closed once every rank has finalized.
func (s *Server) Done() <-chan struct{} { return s.doneCh }

// Wait blocks until all ranks finalize or the timeout elapses.
func (s *Server) Wait(timeout time.Duration) error {
	// An explicit timer, stopped on return: time.After would pin its timer
	// (and channel) until expiry even when all ranks finalize promptly, which
	// at many-parallel-task rates accumulates into real memory held for the
	// full timeout window.
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-s.doneCh:
		return nil
	case <-t.C:
		return fmt.Errorf("pmi: server wait timed out after %v", timeout)
	}
}

// OnWired registers fn to run once every rank has connected (the MPI_Init
// wire-up point). If the server is already wired, fn runs immediately. The
// callback executes outside the server lock.
func (s *Server) OnWired(fn func()) {
	s.mu.Lock()
	if s.wired {
		s.mu.Unlock()
		if fn != nil {
			fn()
		}
		return
	}
	s.onWired = fn
	s.mu.Unlock()
}

// KVSLen reports the number of keys in the key-value space (for tests and
// diagnostics).
func (s *Server) KVSLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.kvs)
}

// Close shuts the listener and all client connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.conn.Close()
	}
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Client

// Client is the MPI-process side of PMI.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	wmu  sync.Mutex
	w    *bufio.Writer

	rank    int
	size    int
	kvsName string

	mu       sync.Mutex
	pending  []record // non-barrier responses that arrived while waiting
	barriers int      // barrier_out records banked while waiting for other replies
	closed   bool
}

// Dial connects to a PMI server and performs the init handshake for the
// given rank.
func Dial(addr string, rank int) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), rank: rank}
	resp, err := c.call(record{"cmd": "init", "pmiid": strconv.Itoa(rank)}, "response_to_init")
	if err != nil {
		conn.Close()
		return nil, err
	}
	if resp["rc"] != "0" {
		conn.Close()
		return nil, fmt.Errorf("pmi: init rejected: %s", resp["msg"])
	}
	c.size, err = strconv.Atoi(resp["size"])
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("pmi: bad size in init response: %v", err)
	}
	kvs, err := c.call(record{"cmd": "get_my_kvsname"}, "my_kvsname")
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.kvsName = kvs["kvsname"]
	return c, nil
}

// DialEnv connects using the PMI_* environment variables, as a user process
// launched by a Hydra proxy would.
func DialEnv() (*Client, error) {
	port := os.Getenv(EnvPort)
	if port == "" {
		return nil, errors.New("pmi: " + EnvPort + " not set")
	}
	rank, err := strconv.Atoi(os.Getenv(EnvRank))
	if err != nil {
		return nil, fmt.Errorf("pmi: bad %s: %v", EnvRank, err)
	}
	return Dial(port, rank)
}

// Env renders the client bootstrap environment for a child process.
func Env(addr string, rank, size int, kvsName string) []string {
	return []string{
		EnvPort + "=" + addr,
		EnvRank + "=" + strconv.Itoa(rank),
		EnvSize + "=" + strconv.Itoa(size),
		EnvKVS + "=" + kvsName,
	}
}

func (c *Client) send(r record) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.WriteString(formatRecord(r)); err != nil {
		return err
	}
	return c.w.Flush()
}

// call sends a request and waits for a response with the given cmd,
// banking any barrier_out records that arrive in between (the server may
// broadcast a barrier release while this client is mid-request).
func (c *Client) call(req record, wantCmd string) (record, error) {
	if err := c.send(req); err != nil {
		return nil, err
	}
	return c.await(wantCmd)
}

func (c *Client) await(wantCmd string) (record, error) {
	c.mu.Lock()
	if wantCmd == "barrier_out" && c.barriers > 0 {
		c.barriers--
		c.mu.Unlock()
		return record{"cmd": "barrier_out"}, nil
	}
	for i, p := range c.pending {
		if p.cmd() == wantCmd {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.mu.Unlock()
			return p, nil
		}
	}
	c.mu.Unlock()
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("pmi: read: %w", err)
		}
		rec, err := parseRecord(strings.TrimSuffix(line, "\n"))
		if err != nil {
			return nil, err
		}
		if rec.cmd() == wantCmd {
			return rec, nil
		}
		c.mu.Lock()
		if rec.cmd() == "barrier_out" {
			c.barriers++
		} else {
			c.pending = append(c.pending, rec)
		}
		c.mu.Unlock()
	}
}

// Rank returns this process's rank in the job.
func (c *Client) Rank() int { return c.rank }

// Size returns the number of processes in the job.
func (c *Client) Size() int { return c.size }

// KVSName returns the job's key-value-space name.
func (c *Client) KVSName() string { return c.kvsName }

// Put stores key=value in the job KVS. Keys and values must be tokens
// without whitespace or '='.
func (c *Client) Put(key, value string) error {
	if !validToken(key) || !validToken(value) {
		return fmt.Errorf("pmi: invalid token in put %q=%q", key, value)
	}
	resp, err := c.call(record{"cmd": "put", "kvsname": c.kvsName, "key": key, "value": value}, "put_result")
	if err != nil {
		return err
	}
	if resp["rc"] != "0" {
		return fmt.Errorf("pmi: put rejected: %s", resp["msg"])
	}
	return nil
}

// Get fetches a key from the job KVS, returning ErrKeyNotFound if no rank
// has put it yet.
func (c *Client) Get(key string) (string, error) {
	resp, err := c.call(record{"cmd": "get", "kvsname": c.kvsName, "key": key}, "get_result")
	if err != nil {
		return "", err
	}
	if resp["rc"] != "0" {
		return "", ErrKeyNotFound
	}
	return resp["value"], nil
}

// Barrier blocks until all ranks in the job have entered the barrier.
func (c *Client) Barrier() error {
	if err := c.send(record{"cmd": "barrier_in"}); err != nil {
		return err
	}
	_, err := c.await("barrier_out")
	return err
}

// Finalize tells the server this rank is done and closes the connection.
func (c *Client) Finalize() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	c.mu.Unlock()
	_, err := c.call(record{"cmd": "finalize"}, "finalize_ack")
	c.conn.Close()
	return err
}

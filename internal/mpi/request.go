package mpi

import "sync"

// Nonblocking operations in the MPI_Isend/MPI_Irecv style. Go's goroutines
// make the implementation trivial compared to real MPI progress engines,
// but the API matters: applications ported from MPI expect to post
// receives early and overlap communication with computation.

// Request tracks one outstanding nonblocking operation.
type Request struct {
	once sync.Once
	done chan struct{}
	msg  Message
	err  error
}

func newRequest() *Request { return &Request{done: make(chan struct{})} }

func (r *Request) complete(m Message, err error) {
	r.once.Do(func() {
		r.msg = m
		r.err = err
		close(r.done)
	})
}

// Wait blocks until the operation completes, returning the received message
// (zero for sends).
func (r *Request) Wait() (Message, error) {
	<-r.done
	return r.msg, r.err
}

// Test reports whether the operation has completed, without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a nonblocking send. Because sends are eager the operation
// completes quickly, but the Request form lets callers issue batches and
// collect errors uniformly.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	r := newRequest()
	// Copy before returning so the caller may immediately reuse the buffer,
	// as with a completed MPI_Isend.
	cp := make([]byte, len(data))
	copy(cp, data)
	go func() {
		r.complete(Message{}, c.Send(dst, tag, cp))
	}()
	return r
}

// Irecv posts a nonblocking receive.
func (c *Comm) Irecv(src, tag int) *Request {
	r := newRequest()
	go func() {
		m, err := c.Recv(src, tag)
		r.complete(m, err)
	}()
	return r
}

// WaitAll waits for every request and returns the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WaitAny waits until at least one request completes and returns its index.
func WaitAny(reqs ...*Request) int {
	if len(reqs) == 0 {
		return -1
	}
	type hit struct{ i int }
	ch := make(chan hit, len(reqs))
	for i, r := range reqs {
		go func(i int, r *Request) {
			<-r.done
			ch <- hit{i}
		}(i, r)
	}
	return (<-ch).i
}

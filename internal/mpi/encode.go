package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Payload encoding helpers. MPI messages are byte slices; these convert the
// numeric vectors used by reductions and by applications.

// Float64sToBytes encodes a float64 vector little-endian.
func Float64sToBytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// BytesToFloat64s decodes a vector produced by Float64sToBytes.
func BytesToFloat64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mpi: float64 payload length %d not a multiple of 8", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// Int64sToBytes encodes an int64 vector little-endian.
func Int64sToBytes(v []int64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// BytesToInt64s decodes a vector produced by Int64sToBytes.
func BytesToInt64s(b []byte) ([]int64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mpi: int64 payload length %d not a multiple of 8", len(b))
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// packParts encodes a slice of byte slices as length-prefixed concatenation.
func packParts(parts [][]byte) []byte {
	n := 4
	for _, p := range parts {
		n += 4 + len(p)
	}
	out := make([]byte, 0, n)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(parts)))
	out = append(out, hdr[:]...)
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out
}

// unpackParts decodes packParts output, validating the expected count.
func unpackParts(blob []byte, want int) ([][]byte, error) {
	if len(blob) < 4 {
		return nil, fmt.Errorf("mpi: truncated parts blob")
	}
	n := int(binary.LittleEndian.Uint32(blob))
	if n != want {
		return nil, fmt.Errorf("mpi: parts count %d, want %d", n, want)
	}
	blob = blob[4:]
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		if len(blob) < 4 {
			return nil, fmt.Errorf("mpi: truncated part header at %d", i)
		}
		l := int(binary.LittleEndian.Uint32(blob))
		blob = blob[4:]
		if len(blob) < l {
			return nil, fmt.Errorf("mpi: truncated part %d: need %d have %d", i, l, len(blob))
		}
		out[i] = append([]byte(nil), blob[:l]...)
		blob = blob[l:]
	}
	return out, nil
}

package mpi

import "fmt"

// Collectives are implemented over point-to-point messages in a reserved
// (negative) tag space, using the standard binomial-tree and dissemination
// algorithms. All ranks of a communicator must call each collective in the
// same order, as in MPI.

// Barrier blocks until every rank has entered it (dissemination algorithm:
// ceil(log2(size)) rounds of pairwise exchange).
func (c *Comm) Barrier() error {
	base := c.nextCollTag()
	if c.size == 1 {
		return nil
	}
	for k, round := 1, 0; k < c.size; k, round = k<<1, round+1 {
		to := (c.rank + k) % c.size
		from := (c.rank - k + c.size) % c.size
		tag := base - round
		if err := c.isend(to, tag, nil); err != nil {
			return err
		}
		if _, err := c.irecv(from, tag); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's data to every rank along a binomial tree and
// returns the received (or original, on root) payload.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("mpi: bcast invalid root %d", root)
	}
	tag := c.nextCollTag()
	if c.size == 1 {
		return data, nil
	}
	rel := (c.rank - root + c.size) % c.size
	// Receive phase: a non-root rank receives from its tree parent.
	mask := 1
	for mask < c.size {
		if rel&mask != 0 {
			src := (rel - mask + root) % c.size
			m, err := c.irecv(src, tag)
			if err != nil {
				return nil, err
			}
			data = m.Data
			break
		}
		mask <<= 1
	}
	// Send phase: forward down the tree.
	mask >>= 1
	for mask > 0 {
		if rel+mask < c.size {
			dst := (rel + mask + root) % c.size
			if err := c.isend(dst, tag, data); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// Gather collects each rank's data at root. Root receives a slice indexed by
// rank; other ranks receive nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("mpi: gather invalid root %d", root)
	}
	tag := c.nextCollTag()
	if c.rank != root {
		return nil, c.isend(root, tag, data)
	}
	out := make([][]byte, c.size)
	cp := make([]byte, len(data))
	copy(cp, data)
	out[c.rank] = cp
	for i := 0; i < c.size-1; i++ {
		m, err := c.irecv(AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[m.Src] = m.Data
	}
	return out, nil
}

// Allgather collects each rank's data at every rank.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	parts, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	// Broadcast the gathered set from root. Encode as length-prefixed
	// concatenation.
	var blob []byte
	if c.rank == 0 {
		blob = packParts(parts)
	}
	blob, err = c.Bcast(0, blob)
	if err != nil {
		return nil, err
	}
	return unpackParts(blob, c.size)
}

// Scatter distributes parts[i] from root to rank i and returns this rank's
// part. Only root's parts argument is consulted; it must have length Size.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("mpi: scatter invalid root %d", root)
	}
	tag := c.nextCollTag()
	if c.rank == root {
		if len(parts) != c.size {
			return nil, fmt.Errorf("mpi: scatter needs %d parts, got %d", c.size, len(parts))
		}
		for dst := 0; dst < c.size; dst++ {
			if dst == root {
				continue
			}
			if err := c.isend(dst, tag, parts[dst]); err != nil {
				return nil, err
			}
		}
		cp := make([]byte, len(parts[root]))
		copy(cp, parts[root])
		return cp, nil
	}
	m, err := c.irecv(root, tag)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// Alltoall sends parts[j] to rank j and returns the slice of received
// payloads indexed by source rank. parts must have length Size on every
// rank.
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	if len(parts) != c.size {
		return nil, fmt.Errorf("mpi: alltoall needs %d parts, got %d", c.size, len(parts))
	}
	tag := c.nextCollTag()
	out := make([][]byte, c.size)
	cp := make([]byte, len(parts[c.rank]))
	copy(cp, parts[c.rank])
	out[c.rank] = cp
	for dst := 0; dst < c.size; dst++ {
		if dst == c.rank {
			continue
		}
		if err := c.isend(dst, tag, parts[dst]); err != nil {
			return nil, err
		}
	}
	for i := 0; i < c.size-1; i++ {
		m, err := c.irecv(AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[m.Src] = m.Data
	}
	return out, nil
}

// Op is a reduction operator.
type Op int

// Supported reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

func (op Op) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpProd:
		return "prod"
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

func reduceFloat64(op Op, acc, in []float64) error {
	if len(acc) != len(in) {
		return fmt.Errorf("mpi: reduce length mismatch %d vs %d", len(acc), len(in))
	}
	switch op {
	case OpSum:
		for i := range acc {
			acc[i] += in[i]
		}
	case OpMax:
		for i := range acc {
			if in[i] > acc[i] {
				acc[i] = in[i]
			}
		}
	case OpMin:
		for i := range acc {
			if in[i] < acc[i] {
				acc[i] = in[i]
			}
		}
	case OpProd:
		for i := range acc {
			acc[i] *= in[i]
		}
	default:
		return fmt.Errorf("mpi: unknown op %v", op)
	}
	return nil
}

func reduceInt64(op Op, acc, in []int64) error {
	if len(acc) != len(in) {
		return fmt.Errorf("mpi: reduce length mismatch %d vs %d", len(acc), len(in))
	}
	switch op {
	case OpSum:
		for i := range acc {
			acc[i] += in[i]
		}
	case OpMax:
		for i := range acc {
			if in[i] > acc[i] {
				acc[i] = in[i]
			}
		}
	case OpMin:
		for i := range acc {
			if in[i] < acc[i] {
				acc[i] = in[i]
			}
		}
	case OpProd:
		for i := range acc {
			acc[i] *= in[i]
		}
	default:
		return fmt.Errorf("mpi: unknown op %v", op)
	}
	return nil
}

// ReduceFloat64 combines in element-wise across ranks with op, delivering
// the result at root (other ranks get nil). Binomial-tree reduction.
func (c *Comm) ReduceFloat64(root int, op Op, in []float64) ([]float64, error) {
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("mpi: reduce invalid root %d", root)
	}
	tag := c.nextCollTag()
	acc := append([]float64(nil), in...)
	rel := (c.rank - root + c.size) % c.size
	for mask := 1; mask < c.size; mask <<= 1 {
		if rel&mask != 0 {
			dst := ((rel & ^mask) + root) % c.size
			if err := c.isend(dst, tag, Float64sToBytes(acc)); err != nil {
				return nil, err
			}
			return nil, nil
		}
		src := rel | mask
		if src < c.size {
			m, err := c.irecv((src+root)%c.size, tag)
			if err != nil {
				return nil, err
			}
			other, err := BytesToFloat64s(m.Data)
			if err != nil {
				return nil, err
			}
			if err := reduceFloat64(op, acc, other); err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// AllreduceFloat64 is ReduceFloat64 to rank 0 followed by a broadcast; every
// rank receives the combined result.
func (c *Comm) AllreduceFloat64(op Op, in []float64) ([]float64, error) {
	acc, err := c.ReduceFloat64(0, op, in)
	if err != nil {
		return nil, err
	}
	var blob []byte
	if c.rank == 0 {
		blob = Float64sToBytes(acc)
	}
	blob, err = c.Bcast(0, blob)
	if err != nil {
		return nil, err
	}
	return BytesToFloat64s(blob)
}

// ReduceInt64 is the int64 variant of ReduceFloat64.
func (c *Comm) ReduceInt64(root int, op Op, in []int64) ([]int64, error) {
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("mpi: reduce invalid root %d", root)
	}
	tag := c.nextCollTag()
	acc := append([]int64(nil), in...)
	rel := (c.rank - root + c.size) % c.size
	for mask := 1; mask < c.size; mask <<= 1 {
		if rel&mask != 0 {
			dst := ((rel & ^mask) + root) % c.size
			if err := c.isend(dst, tag, Int64sToBytes(acc)); err != nil {
				return nil, err
			}
			return nil, nil
		}
		src := rel | mask
		if src < c.size {
			m, err := c.irecv((src+root)%c.size, tag)
			if err != nil {
				return nil, err
			}
			other, err := BytesToInt64s(m.Data)
			if err != nil {
				return nil, err
			}
			if err := reduceInt64(op, acc, other); err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// AllreduceInt64 is the int64 variant of AllreduceFloat64.
func (c *Comm) AllreduceInt64(op Op, in []int64) ([]int64, error) {
	acc, err := c.ReduceInt64(0, op, in)
	if err != nil {
		return nil, err
	}
	var blob []byte
	if c.rank == 0 {
		blob = Int64sToBytes(acc)
	}
	blob, err = c.Bcast(0, blob)
	if err != nil {
		return nil, err
	}
	return BytesToInt64s(blob)
}

package mpi

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// UndefinedColor excludes the calling rank from any resulting communicator
// (MPI_UNDEFINED).
const UndefinedColor = -1

// Split partitions the communicator: ranks passing the same non-negative
// color form a new communicator, ordered by (key, old rank), exactly as
// MPI_Comm_split. Ranks passing UndefinedColor participate in the collective
// exchange but receive a nil communicator.
//
// Subcommunicators share the parent's transport under a fresh context ID,
// so traffic never crosses between them; Close on a subcommunicator is a
// local no-op.
func (c *Comm) Split(color, key int) (*Comm, error) {
	if color < 0 && color != UndefinedColor {
		return nil, fmt.Errorf("mpi: invalid split color %d", color)
	}
	// The split sequence number advances identically on every rank because
	// Split is a collective; the derived context ID therefore agrees.
	c.mu.Lock()
	c.splitSeq++
	seq := c.splitSeq
	c.mu.Unlock()
	newCtx := deriveCtx(c.ctx, seq)

	// Exchange (color, key) across the parent communicator.
	var mine [16]byte
	binary.LittleEndian.PutUint64(mine[0:8], uint64(int64(color)))
	binary.LittleEndian.PutUint64(mine[8:16], uint64(int64(key)))
	parts, err := c.Allgather(mine[:])
	if err != nil {
		return nil, err
	}
	if color == UndefinedColor {
		return nil, nil
	}
	type member struct {
		key       int
		localRank int
	}
	var members []member
	for r, p := range parts {
		if len(p) != 16 {
			return nil, fmt.Errorf("mpi: corrupt split exchange from rank %d", r)
		}
		pcolor := int(int64(binary.LittleEndian.Uint64(p[0:8])))
		pkey := int(int64(binary.LittleEndian.Uint64(p[8:16])))
		if pcolor == color {
			members = append(members, member{key: pkey, localRank: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].localRank < members[j].localRank
	})

	group := make([]int, len(members))
	toLocal := make(map[int]int, len(members))
	myNewRank := -1
	for newRank, m := range members {
		world := c.worldRank(m.localRank)
		group[newRank] = world
		toLocal[world] = newRank
		if m.localRank == c.rank {
			myNewRank = newRank
		}
	}
	if myNewRank < 0 {
		return nil, fmt.Errorf("mpi: split lost the calling rank")
	}
	return &Comm{
		rank:    myNewRank,
		size:    len(members),
		ctx:     newCtx,
		q:       c.q,
		tr:      c.tr,
		start:   c.start,
		group:   group,
		toLocal: toLocal,
	}, nil
}

// deriveCtx produces a context ID that every member computes identically.
func deriveCtx(parent uint32, seq int) uint32 {
	h := fnv.New32a()
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[0:4], parent)
	binary.LittleEndian.PutUint64(buf[4:12], uint64(seq))
	h.Write(buf[:])
	v := h.Sum32()
	if v == 0 { // 0 is reserved for the world communicator
		v = 1
	}
	return v
}

// Dup returns a communicator with the same group under a fresh context, the
// MPI_Comm_dup analogue: libraries use it to keep their traffic separate
// from application traffic.
func (c *Comm) Dup() (*Comm, error) {
	return c.Split(0, c.rank)
}

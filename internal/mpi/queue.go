package mpi

import (
	"errors"
	"sync"
)

// ErrCommClosed is returned by operations on a finalized communicator.
var ErrCommClosed = errors.New("mpi: communicator closed")

// Message is one received point-to-point message. Src is expressed in the
// receiving communicator's rank space. Ctx is the communicator context
// identifier that isolates subcommunicators created by Split; users never
// set it.
type Message struct {
	Ctx  uint32
	Src  int
	Tag  int
	Data []byte
}

// matchQueue is the unexpected-message queue of one process: incoming
// messages are pushed by transport readers and popped by Recv with
// (source, tag) matching, preserving per-(src,tag) FIFO order as MPI
// requires.
type matchQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	msgs   []Message
	closed bool
}

func newMatchQueue() *matchQueue {
	q := &matchQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *matchQueue) push(m Message) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.msgs = append(q.msgs, m)
	q.mu.Unlock()
	q.cond.Broadcast()
}

func matches(m Message, ctx uint32, src, tag int) bool {
	return m.Ctx == ctx && (src == AnySource || m.Src == src) && (tag == AnyTag || m.Tag == tag)
}

// pop blocks until a message matching (src, tag) is available and removes
// it. It returns ErrCommClosed once the queue is closed and drained of
// matching messages.
func (q *matchQueue) pop(ctx uint32, src, tag int) (Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for i, m := range q.msgs {
			if matches(m, ctx, src, tag) {
				q.msgs = append(q.msgs[:i], q.msgs[i+1:]...)
				return m, nil
			}
		}
		if q.closed {
			return Message{}, ErrCommClosed
		}
		q.cond.Wait()
	}
}

// peek reports whether a message matching (src, tag) is queued, without
// removing it.
func (q *matchQueue) peek(ctx uint32, src, tag int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, m := range q.msgs {
		if matches(m, ctx, src, tag) {
			return true
		}
	}
	return false
}

// tryPop is pop without blocking; ok reports whether a match was found.
func (q *matchQueue) tryPop(ctx uint32, src, tag int) (Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, m := range q.msgs {
		if matches(m, ctx, src, tag) {
			q.msgs = append(q.msgs[:i], q.msgs[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

func (q *matchQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *matchQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.msgs)
}
